package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"db4ml"
	"db4ml/internal/storage"
)

// demoInc is the sharded demo's sub-transaction: bump one counter row
// per iteration until it reaches its target, the quickstart's PageRank
// stand-in.
type demoInc struct {
	tbl    *db4ml.Table
	row    db4ml.RowID
	target float64
	rec    *storage.IterativeRecord
	buf    db4ml.Payload
	cur    float64
}

func (s *demoInc) Begin(ctx *db4ml.Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(db4ml.Payload, 2)
}

func (s *demoInc) Execute(ctx *db4ml.Ctx) {
	ctx.Read(s.rec, s.buf)
	s.cur = s.buf.Float64(1) + 1
	s.buf.SetFloat64(1, s.cur)
	ctx.Write(s.rec, s.buf)
}

func (s *demoInc) Validate(ctx *db4ml.Ctx) db4ml.Action {
	if s.cur >= s.target {
		return db4ml.Done
	}
	return db4ml.Commit
}

// serveSharded opens a live N-shard database with the cluster-wide debug
// server on addr, runs one distributed ML job, one scattered query, and a
// fuzzy checkpoint so every endpoint has data — the merged Chrome trace on
// /debug/trace, per-shard breakdowns on /debug/shards, the query's plan on
// /debug/query, and the wal/checkpoint/2PC metric families on /metrics —
// then keeps serving until interrupted. This is what the CI smoke scrapes.
func serveSharded(shards int, addr string) error {
	walDir, err := os.MkdirTemp("", "db4ml-demo-wal")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)

	db := db4ml.OpenSharded(
		db4ml.WithShards(shards),
		db4ml.WithShardScheme(db4ml.ShardRoundRobin),
		db4ml.WithDebugServer(addr),
		db4ml.WithWAL(walDir),
		db4ml.WithWALSync(db4ml.WALSyncAlways),
	)
	defer db.Close()

	const n = 64
	tbl, err := db.CreateTable("Counter",
		db4ml.Column{Name: "ID", Type: db4ml.Int64},
		db4ml.Column{Name: "Value", Type: db4ml.Float64})
	if err != nil {
		return err
	}
	rows := make([]db4ml.Payload, n)
	for i := range rows {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		rows[i] = p
	}
	if err := db.BulkLoad(tbl, rows); err != nil {
		return err
	}

	subs := make([]db4ml.IterativeTransaction, n)
	for i := range subs {
		subs[i] = &demoInc{tbl: tbl, row: db4ml.RowID(i), target: 4}
	}
	if _, err := db.RunML(db4ml.MLRun{
		Label:     "demo",
		Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
		Attach:    []db4ml.Attachment{{Table: tbl}},
		Subs:      subs,
	}); err != nil {
		return err
	}
	if _, err := db.RunQuery(context.Background(), db4ml.QueryRun{
		Plan: db4ml.Filter(db4ml.Scan(tbl), db4ml.FloatCmp("Value", db4ml.Gt, 0)),
	}); err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr,
		"db4ml-bench: %d-shard demo served on http://%s (/metrics, /debug/trace, /debug/shards, /debug/query, /debug/jobs) — interrupt to exit\n",
		shards, db.DebugAddr())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	return nil
}

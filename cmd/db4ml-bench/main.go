// Command db4ml-bench regenerates the tables and figures of the paper's
// evaluation (Section 7). Each experiment prints the same rows/series the
// paper reports, at a laptop-friendly scale (see DESIGN.md for the
// dataset substitutions).
//
// Usage:
//
//	db4ml-bench -list
//	db4ml-bench -exp fig8
//	db4ml-bench -exp all -workers 16 -runs 5
//	db4ml-bench -exp fig12 -quick
//	db4ml-bench -exp fig9 -quick -telemetry
//	db4ml-bench -exp concurrent -telemetry
//	db4ml-bench -exp chaos -seeds 8
//
// With -telemetry, each instrumented job appends one labelled JSON
// telemetry snapshot (per-worker counters, queue gauges, convergence
// series) after its experiment's table; concurrent jobs get one snapshot
// each, tagged with the job's label. An -exp all run executes every
// experiment even when one fails and exits nonzero if any did.
package main

import (
	"flag"
	"fmt"
	"os"

	"db4ml/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or all to run every experiment (failures are aggregated; exit is nonzero if any failed)")
	workers := flag.Int("workers", 0, "maximum worker count for core sweeps (default 2×GOMAXPROCS, min 8)")
	runs := flag.Int("runs", 0, "repetitions per timed configuration (default 3)")
	quick := flag.Bool("quick", false, "shrink datasets and sweeps for a fast smoke run")
	telemetry := flag.Bool("telemetry", false, "attach an engine observer to selected configurations and print one labelled telemetry snapshot (JSON) per job after each experiment")
	seeds := flag.Int("seeds", 0, "fault schedules per isolation level for -exp chaos (default 8, 4 with -quick)")
	deadline := flag.Duration("deadline", 0, "per-job wall-clock budget for -exp resilience (default 300ms, 200ms with -quick)")
	retries := flag.Int("retries", 0, "whole-job retry budget after a failed attempt for -exp resilience (default 3)")
	maxinflight := flag.Int("maxinflight", 0, "admitted concurrent ML jobs for -exp resilience (default 3)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiments.Options{
		Out:         os.Stdout,
		MaxWorkers:  *workers,
		Runs:        *runs,
		Quick:       *quick,
		Telemetry:   *telemetry,
		Seeds:       *seeds,
		Deadline:    *deadline,
		Retries:     *retries,
		MaxInflight: *maxinflight,
	}
	if err := experiments.Run(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "db4ml-bench:", err)
		os.Exit(1)
	}
}

// Command db4ml-bench regenerates the tables and figures of the paper's
// evaluation (Section 7). Each experiment prints the same rows/series the
// paper reports, at a laptop-friendly scale (see DESIGN.md for the
// dataset substitutions).
//
// Usage:
//
//	db4ml-bench -list
//	db4ml-bench -exp fig8
//	db4ml-bench -exp all -workers 16 -runs 5
//	db4ml-bench -exp fig12 -quick
//	db4ml-bench -exp fig9 -quick -telemetry
//	db4ml-bench -exp concurrent -telemetry
//	db4ml-bench -exp chaos -seeds 8
//	db4ml-bench -explain
//
// With -telemetry, each instrumented job appends one labelled JSON
// telemetry snapshot (per-worker counters, queue gauges, convergence
// series) after its experiment's table; concurrent jobs get one snapshot
// each, tagged with the job's label. An -exp all run executes every
// experiment even when one fails and exits nonzero if any did.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"db4ml/internal/experiments"
	"db4ml/internal/introspect"
	"db4ml/internal/trace"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or all to run every experiment (failures are aggregated; exit is nonzero if any failed)")
	workers := flag.Int("workers", 0, "maximum worker count for core sweeps (default 2×GOMAXPROCS, min 8)")
	runs := flag.Int("runs", 0, "repetitions per timed configuration (default 3)")
	quick := flag.Bool("quick", false, "shrink datasets and sweeps for a fast smoke run")
	telemetry := flag.Bool("telemetry", false, "attach an engine observer to selected configurations and print one labelled telemetry snapshot (JSON) per job after each experiment")
	seeds := flag.Int("seeds", 0, "fault schedules per isolation level for -exp chaos (default 8, 4 with -quick)")
	deadline := flag.Duration("deadline", 0, "per-job wall-clock budget for -exp resilience (default 300ms, 200ms with -quick)")
	retries := flag.Int("retries", 0, "whole-job retry budget after a failed attempt for -exp resilience (default 3)")
	maxinflight := flag.Int("maxinflight", 0, "admitted concurrent ML jobs for -exp resilience (default 3)")
	benchjson := flag.String("benchjson", "", "write the experiment's machine-readable result (currently -exp gc) to this JSON file, e.g. BENCH_GC.json")
	httpAddr := flag.String("http", "", "serve the live debug endpoints on this address (e.g. :6060): /metrics (Prometheus), /debug/trace (Chrome trace_event JSON for Perfetto/about:tracing), /debug/pprof; the process keeps serving after the experiments until interrupted")
	explain := flag.Bool("explain", false, "shorthand for -exp explain: print EXPLAIN and EXPLAIN ANALYZE for the star query and verify the planner's promises against measured execution")
	shards := flag.Int("shards", 0, "with -http: serve the cluster-wide debug surface from a live N-shard database running a demo workload (merged /debug/trace, /debug/shards, /debug/query) instead of the single-kernel experiment plumbing")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Describe(id))
		}
		return
	}
	if *explain && *exp == "" {
		*exp = "explain"
	}
	if *shards > 0 {
		if *httpAddr == "" {
			fmt.Fprintln(os.Stderr, "db4ml-bench: -shards requires -http")
			os.Exit(2)
		}
		if err := serveSharded(*shards, *httpAddr); err != nil {
			fmt.Fprintln(os.Stderr, "db4ml-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiments.Options{
		Out:         os.Stdout,
		MaxWorkers:  *workers,
		Runs:        *runs,
		Quick:       *quick,
		Telemetry:   *telemetry,
		Seeds:       *seeds,
		Deadline:    *deadline,
		Retries:     *retries,
		MaxInflight: *maxinflight,
		BenchFile:   *benchjson,
	}

	var srv *introspect.Server
	if *httpAddr != "" {
		// One tracer and one aggregator span every experiment the process
		// runs; worker indexes past the sized ring count fold into ring 0,
		// so sizing to the sweep ceiling is enough.
		rings := *workers
		if rings <= 0 {
			rings = 2 * runtime.GOMAXPROCS(0)
		}
		opts.Tracer = trace.New(rings, 0)
		opts.Aggregator = introspect.NewAggregator()
		s, err := introspect.Start(introspect.Config{
			Addr:    *httpAddr,
			Metrics: opts.Aggregator.Snapshot,
			Tracer:  opts.Tracer,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "db4ml-bench:", err)
			os.Exit(1)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "db4ml-bench: debug server on http://%s (/metrics, /debug/trace, /debug/pprof)\n", s.Addr())
	}

	err := experiments.Run(*exp, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "db4ml-bench:", err)
	}
	if srv != nil {
		// Keep the endpoints up so the finished run can still be scraped and
		// its trace downloaded; Ctrl-C (or SIGTERM from a harness) exits.
		fmt.Fprintf(os.Stderr, "db4ml-bench: experiments done; still serving http://%s — interrupt to exit\n", srv.Addr())
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		_ = srv.Close()
	}
	if err != nil {
		os.Exit(1)
	}
}

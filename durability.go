package db4ml

// This file is the durability facade: WithWAL arms a write-ahead log of
// uber-commit redo records (internal/wal), WithCheckpointEvery adds fuzzy
// incremental checkpoints (internal/checkpoint) taken on a pool maintenance
// goroutine, and Open/OpenSharded recover state from the newest valid
// checkpoint plus the WAL tail before serving traffic.
//
// Durability ordering is publish-then-log: a commit becomes visible in
// memory first, its redo record is appended (and fsynced per the sync
// policy) second, and the caller is acknowledged only after the append. A
// crash between publish and append therefore loses only an unacknowledged
// commit — the committed-exactly-or-absent contract internal/crashsim
// proves across every kill-point.
//
// Replay is idempotent: records apply in commit-timestamp order at their
// ORIGINAL timestamps (txn.Prepared.CommitAt), per-row installs are skipped
// when the chain head is already at or past the record's timestamp, loads
// carry their first row id and skip already-present rows, and table
// creations skip existing tables. Replaying the same tail twice yields
// bit-identical tables.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/checkpoint"
	"db4ml/internal/obs"
	"db4ml/internal/shard"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/trace"
	"db4ml/internal/txn"
	"db4ml/internal/wal"
)

type (
	// WALSyncPolicy selects when the WAL's group-commit batcher fsyncs; see
	// WALSyncAlways, WALSyncInterval, WALSyncNone.
	WALSyncPolicy = wal.SyncPolicy
	// CrashKiller arms exactly one simulated crash point; see WithCrashPoints
	// and NewCrashKiller. Test/experiment only, like FaultInjector.
	CrashKiller = chaos.Killer
	// CrashPoint identifies one simulated crash location on the durability
	// path.
	CrashPoint = chaos.CrashPoint
)

// WAL fsync policies (WithWALSync).
const (
	// WALSyncAlways fsyncs once per group-commit batch before acknowledging
	// it: every acknowledged commit is on disk.
	WALSyncAlways = wal.SyncAlways
	// WALSyncInterval acknowledges after the buffered write and fsyncs on a
	// timer: a crash loses at most one interval of acknowledged commits.
	WALSyncInterval = wal.SyncInterval
	// WALSyncNone never fsyncs; the OS flushes on its own schedule.
	WALSyncNone = wal.SyncNone
)

// Simulated crash points (WithCrashPoints / NewCrashKiller).
const (
	CrashBeforePrepare       = chaos.CrashBeforePrepare
	CrashAfterPrepare        = chaos.CrashAfterPrepare
	CrashBetweenShardCommits = chaos.CrashBetweenShardCommits
	CrashMidWALAppend        = chaos.CrashMidWALAppend
	CrashAfterWALAppend      = chaos.CrashAfterWALAppend
	CrashMidCheckpoint       = chaos.CrashMidCheckpoint
)

// ErrCrashed reports a simulated crash: the database froze its WAL and the
// in-flight operation was never acknowledged. Recover by reopening the
// database over the same WithWAL directory.
var ErrCrashed = chaos.ErrCrashed

// NewCrashKiller arms one crash point for WithCrashPoints. The killer fires
// exactly once; after it fires the WAL is frozen and every subsequent
// durable operation fails with ErrCrashed, exactly as if the process died.
func NewCrashKiller(p CrashPoint) *CrashKiller { return chaos.NewKiller(p) }

// WithWAL enables durability: every table creation, bulk load, and
// uber-commit is logged to an append-only write-ahead log under dir, and
// Open/OpenSharded recover the database from the newest valid checkpoint in
// dir plus the WAL tail. Torn log tails (a crash mid-append) are truncated,
// not fatal.
func WithWAL(dir string) Option { return func(c *openConfig) { c.walDir = dir } }

// WithWALSync selects the WAL fsync policy (default WALSyncAlways).
func WithWALSync(p WALSyncPolicy) Option { return func(c *openConfig) { c.walPolicy = p } }

// WithWALSyncInterval sets the timer for WALSyncInterval (default 2ms).
func WithWALSyncInterval(d time.Duration) Option {
	return func(c *openConfig) { c.walInterval = d }
}

// WithCheckpointEvery runs a fuzzy incremental checkpoint every interval on
// a pool maintenance goroutine: workers are never stalled (the snapshot is
// pinned, not locked), unchanged tables reuse their previously encoded
// sections, and the WAL is truncated below the checkpoint's LSN after the
// checkpoint file is durably in place. Requires WithWAL.
func WithCheckpointEvery(d time.Duration) Option {
	return func(c *openConfig) { c.ckptEvery = d }
}

// WithCrashPoints arms a simulated crash at one durability kill-point; the
// crash surfaces as ErrCrashed and freezes the WAL. Test/experiment only —
// internal/crashsim drives the full kill-point matrix through it.
func WithCrashPoints(k *CrashKiller) Option { return func(c *openConfig) { c.crash = k } }

// errNoWAL rejects checkpoint requests on a database opened without WithWAL.
var errNoWAL = fmt.Errorf("db4ml: checkpointing requires WithWAL")

// durability is the shared durable-state machinery behind a DB or ShardedDB:
// the open WAL, the crash killer, the checkpoint directory and section
// cache, and the observer/tracer the subsystem reports into.
type durability struct {
	log    *wal.Log
	dir    string
	crash  *chaos.Killer
	obs    *obs.Observer
	tracer *trace.Tracer

	// mu serializes checkpoints (the timer and manual Checkpoint calls);
	// cache maps table name -> section bytes keyed by the table's mutation
	// counter, so unchanged tables are not re-encoded or re-scanned.
	mu    sync.Mutex
	cache map[string]ckptSection
}

type ckptSection struct {
	muts  uint64
	bytes []byte
}

// killed fires the given crash point if armed: the WAL freezes (the process
// "died", so nothing later reaches disk) and the caller must fail its
// operation with ErrCrashed instead of acknowledging it. nil-safe.
func (d *durability) killed(p chaos.CrashPoint) bool {
	if d == nil || d.crash == nil || !d.crash.At(p) {
		return false
	}
	if d.log != nil {
		d.log.Freeze()
	}
	return true
}

// freeze halts the WAL after an externally detected crash (the shard
// coordinator's kill-points fire inside internal/shard). nil-safe.
func (d *durability) freeze() {
	if d != nil && d.log != nil {
		d.log.Freeze()
	}
}

// appendCreate logs one table creation.
func (d *durability) appendCreate(name string, cols []Column) error {
	return d.log.Append(&wal.Record{Kind: wal.KindCreateTable, Table: name, Cols: cols})
}

// appendLoad logs one bulk load published at ts, starting at firstRow.
func (d *durability) appendLoad(name string, ts Timestamp, firstRow int, rows []Payload) error {
	return d.log.Append(&wal.Record{
		Kind: wal.KindLoad, TS: ts, Table: name,
		FirstRow: uint64(firstRow), Rows: rows,
	})
}

// appendCommit logs one uber-commit published at ts: for every distinct
// table the run attached, the full-row after-image of every row whose
// current version begins exactly at ts. Tables and rows untouched by the
// commit contribute nothing. A commit that published no rows logs nothing.
// The traceID (0 if untraced) correlates the in-memory WAL batch span
// with the uber-transaction that produced the commit.
func (d *durability) appendCommit(ts Timestamp, tables []*table.Table, traceID uint64) error {
	rec := &wal.Record{Kind: wal.KindCommit, TS: ts, Trace: traceID}
	for _, tbl := range tables {
		tu := wal.TableUpdate{Table: tbl.Name()}
		n := tbl.NumRows()
		for row := 0; row < n; row++ {
			chain := tbl.Chain(RowID(row))
			if chain == nil {
				continue
			}
			r := chain.VisibleAt(ts)
			if r == nil || r.Begin() != ts {
				continue
			}
			tu.Rows = append(tu.Rows, wal.RowUpdate{Row: uint64(row), Payload: r.Payload})
		}
		if len(tu.Rows) > 0 {
			rec.Tables = append(rec.Tables, tu)
		}
	}
	if len(rec.Tables) == 0 {
		return nil
	}
	return d.log.Append(rec)
}

// distinctTables resolves a run's attachments to their unique tables.
func distinctTables(attach []Attachment) []*table.Table {
	var out []*table.Table
	for _, a := range attach {
		dup := false
		for _, t := range out {
			if t == a.Table {
				dup = true
				break
			}
		}
		if !dup && a.Table != nil {
			out = append(out, a.Table)
		}
	}
	return out
}

// ckptSource is one table's contribution to a checkpoint: its name, its
// mutation counter read AFTER the snapshot was pinned (so counter-equality
// between checkpoints proves the cached section is still exact), and an
// encoder producing the section at the pinned timestamp.
type ckptSource struct {
	name   string
	muts   uint64
	encode func() []byte
}

// writeCheckpoint renders the sections (reusing cached bytes for tables
// whose mutation counter has not moved), durably writes the checkpoint
// file, and truncates the WAL below the checkpoint's LSN. Callers hold
// d.mu and have already pinned the snapshot meta.TS was scanned at.
func (d *durability) writeCheckpoint(meta checkpoint.Meta, srcs []ckptSource, pause time.Duration) error {
	ckptStart := time.Now()
	ckptAt := d.tracer.Now()
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].name < srcs[j].name })
	sections := make([][]byte, len(srcs))
	var written, reused uint64
	for i, s := range srcs {
		secAt := d.tracer.Now()
		if c, ok := d.cache[s.name]; ok && c.muts == s.muts {
			sections[i] = c.bytes
			reused++
			d.tracer.Span(0, trace.KindCkptSection, 0, 1, secAt, d.tracer.Now()-secAt)
			continue
		}
		b := s.encode()
		d.cache[s.name] = ckptSection{muts: s.muts, bytes: b}
		sections[i] = b
		written++
		d.tracer.Span(0, trace.KindCkptSection, 0, 0, secAt, d.tracer.Now()-secAt)
	}
	seq, err := checkpoint.NextSeq(d.dir)
	if err != nil {
		return err
	}
	if d.crash != nil && d.crash.At(chaos.CrashMidCheckpoint) {
		// A real crash mid-write can only leave a torn file under the FINAL
		// name if rename-into-place is interrupted by power loss after a
		// partial journal flush; simulate the worst case directly so
		// recovery's LatestValid torn-file fallback is actually exercised.
		var buf bytes.Buffer
		_ = checkpoint.WriteStream(&buf, meta, sections)
		torn := buf.Bytes()[:buf.Len()/2]
		_ = os.WriteFile(filepath.Join(d.dir, checkpoint.FileName(seq)), torn, 0o644)
		d.log.Freeze()
		return chaos.ErrCrashed
	}
	if _, err := checkpoint.WriteFile(d.dir, seq, meta, sections); err != nil {
		return err
	}
	if _, err := d.log.TruncateBelow(meta.LSN); err != nil {
		return err
	}
	if d.obs != nil {
		d.obs.Add(0, obs.Checkpoints, 1)
		d.obs.Add(0, obs.CkptSectionsWritten, written)
		d.obs.Add(0, obs.CkptSectionsReused, reused)
		d.obs.RecordLatency(0, obs.CheckpointPauseLatency, int64(pause))
		d.obs.RecordLatency(0, obs.CheckpointDuration, time.Since(ckptStart).Nanoseconds())
	}
	d.tracer.Span(0, trace.KindCheckpoint, 0, int64(len(sections)), ckptAt, d.tracer.Now()-ckptAt)
	return nil
}

// replayOrder selects and orders the records recovery applies: records
// covered by the checkpoint (LSN below the checkpoint's, or committed at or
// before the checkpoint timestamp — the fuzzy-overlap window) are dropped,
// and the survivors sort by commit timestamp (ties by LSN). Timestamp order
// — not LSN order — is the apply order because concurrent commits append
// out of timestamp order, and CommitAt requires a monotone stable watermark.
// Table creations (timestamp 0) sort first, before anything touches them.
func replayOrder(recs []*wal.Record, ckptLSN uint64, ckptTS Timestamp) []*wal.Record {
	out := make([]*wal.Record, 0, len(recs))
	for _, r := range recs {
		if r.LSN < ckptLSN {
			continue
		}
		if r.Kind != wal.KindCreateTable && r.TS <= ckptTS {
			continue
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].LSN < out[j].LSN
	})
	return out
}

// installReplay applies one commit record's after-images onto a table's
// chains at ts, skipping rows whose head version is already at or past ts —
// the per-row idempotence guard that makes double replay a no-op.
func installReplay(tbl *table.Table, tu wal.TableUpdate, ts Timestamp) {
	installed := false
	for _, ru := range tu.Rows {
		chain := tbl.Chain(RowID(ru.Row))
		if chain == nil {
			continue
		}
		head := chain.Head()
		if head != nil && head.Begin() >= ts {
			continue
		}
		chain.Install(head, storage.NewRecord(ts, ru.Payload))
		installed = true
	}
	if installed {
		tbl.NoteMutation()
	}
}

// --- single-kernel wiring ---

// restore runs single-kernel recovery and arms durability: load the newest
// valid checkpoint, open the WAL (truncating any torn tail), replay the
// records the checkpoint does not cover, and restore the stable watermark.
// Called from Open before the database serves anything; hard I/O errors
// panic, matching Open's WithDebugServer convention — an unusable WAL
// directory is a configuration error, not a degraded mode.
func (db *DB) restore(oc openConfig) {
	loaded, err := checkpoint.LatestValid(oc.walDir)
	if err != nil {
		panic("db4ml: recovery: " + err.Error())
	}
	var ckptLSN uint64
	var ckptTS Timestamp
	if loaded != nil {
		for _, dec := range loaded.Tables {
			tbl, err := dec.Build(loaded.Meta.TS)
			if err != nil {
				panic("db4ml: recovery: " + err.Error())
			}
			db.tables[dec.Name] = tbl
		}
		db.mgr.RestoreStable(loaded.Meta.TS)
		ckptLSN, ckptTS = loaded.Meta.LSN, loaded.Meta.TS
	}

	var durObs *obs.Observer
	if db.agg != nil {
		durObs = obs.New()
		db.agg.Attach(durObs)
	}
	log, err := wal.Open(wal.Options{
		Dir:      oc.walDir,
		Policy:   oc.walPolicy,
		Interval: oc.walInterval,
		Observer: durObs,
		Tracer:   db.tracer,
		Killer:   oc.crash,
	})
	if err != nil {
		panic("db4ml: recovery: " + err.Error())
	}
	recs, err := wal.Records(oc.walDir)
	if err != nil {
		panic("db4ml: recovery: " + err.Error())
	}

	maxTS := ckptTS
	replayed := 0
	for _, rec := range replayOrder(recs, ckptLSN, ckptTS) {
		replayAt := db.tracer.Now()
		switch rec.Kind {
		case wal.KindCreateTable:
			if db.tables[rec.Table] != nil {
				continue
			}
			schema, err := table.NewSchema(rec.Cols...)
			if err != nil {
				panic("db4ml: recovery: " + err.Error())
			}
			db.tables[rec.Table] = table.New(rec.Table, schema)
		case wal.KindLoad:
			tbl := db.tables[rec.Table]
			if tbl == nil {
				panic(fmt.Sprintf("db4ml: recovery: load record for unknown table %q", rec.Table))
			}
			have := uint64(tbl.NumRows())
			if have >= rec.FirstRow+uint64(len(rec.Rows)) {
				continue
			}
			start := 0
			if have > rec.FirstRow {
				start = int(have - rec.FirstRow)
			}
			rows := rec.Rows[start:]
			db.mgr.Prepare().CommitAt(rec.TS, func(ts Timestamp) {
				for _, p := range rows {
					if _, err := tbl.Append(ts, p); err != nil {
						panic("db4ml: recovery: " + err.Error())
					}
				}
			})
		case wal.KindCommit:
			db.mgr.Prepare().CommitAt(rec.TS, func(ts Timestamp) {
				for _, tu := range rec.Tables {
					if tbl := db.tables[tu.Table]; tbl != nil {
						installReplay(tbl, tu, ts)
					}
				}
			})
		}
		if rec.TS > maxTS {
			maxTS = rec.TS
		}
		replayed++
		db.tracer.Span(0, trace.KindReplay, 0, int64(rec.LSN), replayAt, db.tracer.Now()-replayAt)
	}
	if maxTS > 0 {
		db.mgr.RestoreStable(maxTS)
	}
	if durObs != nil && replayed > 0 {
		durObs.Add(0, obs.RecoveryReplays, uint64(replayed))
	}

	db.dur = &durability{
		log:    log,
		dir:    oc.walDir,
		crash:  oc.crash,
		obs:    durObs,
		tracer: db.tracer,
		cache:  make(map[string]ckptSection),
	}
}

// Checkpoint takes one fuzzy checkpoint now: it rolls the WAL, pins the
// current stable snapshot (no worker stalls — commits keep flowing), writes
// every table's snapshot at that timestamp to a new durable checkpoint
// file, and truncates the WAL below the roll point. Tables unchanged since
// the previous checkpoint reuse their encoded sections without a re-scan.
// Requires WithWAL.
func (db *DB) Checkpoint() error {
	d := db.dur
	if d == nil {
		return errNoWAL
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	// Roll first, then capture the boundary LSN, then pin: every record
	// below the boundary was appended — and therefore published — before
	// the pin, so the pinned snapshot covers it and truncation is safe.
	if err := d.log.Roll(); err != nil {
		return err
	}
	lsn := d.log.NextLSN()
	start := time.Now()
	ts := db.mgr.PinSnapshot()
	pause := time.Since(start)
	defer db.mgr.UnpinSnapshot(ts)

	tables := db.tableList()
	srcs := make([]ckptSource, len(tables))
	for i, tbl := range tables {
		tbl := tbl
		// Counter read after the pin: if it matches the cached value, no
		// publish happened since that section was encoded, so the snapshot
		// at any later pinned timestamp is bit-identical.
		srcs[i] = ckptSource{
			name:   tbl.Name(),
			muts:   tbl.Mutations(),
			encode: func() []byte { return checkpoint.EncodeTable(tbl, ts) },
		}
	}
	return d.writeCheckpoint(checkpoint.Meta{TS: ts, LSN: lsn}, srcs, pause)
}

// --- sharded wiring ---

// restoreSharded is restore for the sharded facade. The checkpoint's tables
// are re-sharded by the database's placement scheme and loaded across the
// cluster at the checkpoint timestamp; commit records replay onto the view
// tables' chains (shared with the owning shards' locals) under an all-shard
// prepared publish, so the recovered state exists at one timestamp on every
// shard just as the original commits did.
func (db *ShardedDB) restoreSharded(oc openConfig) {
	loaded, err := checkpoint.LatestValid(oc.walDir)
	if err != nil {
		panic("db4ml: recovery: " + err.Error())
	}
	var ckptLSN uint64
	var ckptTS Timestamp
	if loaded != nil {
		for _, dec := range loaded.Tables {
			st := db.registerTable(dec.Name, dec.Cols)
			if len(dec.Rows) > 0 {
				if err := st.LoadAt(db.cluster, loaded.Meta.TS, dec.Rows); err != nil {
					panic("db4ml: recovery: " + err.Error())
				}
			}
			for _, col := range dec.HashIdx {
				if err := st.View().CreateHashIndex(col); err != nil {
					panic("db4ml: recovery: " + err.Error())
				}
			}
			for _, col := range dec.TreeIdx {
				if err := st.View().CreateTreeIndex(col); err != nil {
					panic("db4ml: recovery: " + err.Error())
				}
			}
		}
		for s := 0; s < db.cluster.Shards(); s++ {
			db.cluster.Kernel(s).Mgr().RestoreStable(loaded.Meta.TS)
		}
		ckptLSN, ckptTS = loaded.Meta.LSN, loaded.Meta.TS
	}

	var durObs *obs.Observer
	if db.agg != nil {
		durObs = obs.New()
		// Durability telemetry is cluster-level; it lives on shard 0's
		// aggregator, like the coordinator's.
		db.agg.Shard(0).Attach(durObs)
	}
	log, err := wal.Open(wal.Options{
		Dir:      oc.walDir,
		Policy:   oc.walPolicy,
		Interval: oc.walInterval,
		Observer: durObs,
		Tracer:   db.coTracer,
		Killer:   oc.crash,
	})
	if err != nil {
		panic("db4ml: recovery: " + err.Error())
	}
	recs, err := wal.Records(oc.walDir)
	if err != nil {
		panic("db4ml: recovery: " + err.Error())
	}

	maxTS := ckptTS
	replayed := 0
	for _, rec := range replayOrder(recs, ckptLSN, ckptTS) {
		replayAt := db.coTracer.Now()
		switch rec.Kind {
		case wal.KindCreateTable:
			if db.tables[rec.Table] != nil {
				continue
			}
			db.registerTable(rec.Table, rec.Cols)
		case wal.KindLoad:
			st := db.tables[rec.Table]
			if st == nil {
				panic(fmt.Sprintf("db4ml: recovery: load record for unknown table %q", rec.Table))
			}
			have := uint64(st.NumRows())
			if have >= rec.FirstRow+uint64(len(rec.Rows)) {
				continue
			}
			start := 0
			if have > rec.FirstRow {
				start = int(have - rec.FirstRow)
			}
			if err := st.LoadAt(db.cluster, rec.TS, rec.Rows[start:]); err != nil {
				panic("db4ml: recovery: " + err.Error())
			}
		case wal.KindCommit:
			rec := rec
			err := db.cluster.PublishAllAt(rec.TS, func(shard int, ts Timestamp) error {
				if shard != 0 {
					return nil // installs are chain-global; run them once
				}
				for _, tu := range rec.Tables {
					if st := db.tables[tu.Table]; st != nil {
						installReplay(st.View(), tu, ts)
					}
				}
				return nil
			})
			if err != nil {
				panic("db4ml: recovery: " + err.Error())
			}
		}
		if rec.TS > maxTS {
			maxTS = rec.TS
		}
		replayed++
		db.coTracer.Span(0, trace.KindReplay, 0, int64(rec.LSN), replayAt, db.coTracer.Now()-replayAt)
	}
	if maxTS > 0 {
		for s := 0; s < db.cluster.Shards(); s++ {
			db.cluster.Kernel(s).Mgr().RestoreStable(maxTS)
		}
	}
	if durObs != nil && replayed > 0 {
		durObs.Add(0, obs.RecoveryReplays, uint64(replayed))
	}

	if oc.crash != nil {
		db.co.SetCrash(oc.crash)
	}
	db.dur = &durability{
		log:    log,
		dir:    oc.walDir,
		crash:  oc.crash,
		obs:    durObs,
		tracer: db.coTracer,
		cache:  make(map[string]ckptSection),
	}
}

// registerTable creates and registers one sharded table (no logging, no
// locking — Open-time recovery and locked CreateTable are the only callers).
func (db *ShardedDB) registerTable(name string, cols []Column) *ShardedTable {
	schema, err := table.NewSchema(cols...)
	if err != nil {
		panic("db4ml: recovery: " + err.Error())
	}
	router := shard.NewRouter(db.scheme, db.cluster.Shards(), 0)
	st := shard.NewTable(name, schema, router)
	db.tables[name] = st
	db.byView[st.View()] = st
	return st
}

// Checkpoint takes one fuzzy checkpoint of the sharded database now: the
// WAL rolls, a cross-shard consistent cut is taken by briefly holding every
// shard's commit lock (in shard-id order, the coordinator's own order, so
// the two cannot deadlock) while reading the shared oracle, each shard pins
// that timestamp, the locks drop, and the view tables are scanned at the
// cut without stalling any worker. Requires WithWAL.
func (db *ShardedDB) Checkpoint() error {
	d := db.dur
	if d == nil {
		return errNoWAL
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	if err := d.log.Roll(); err != nil {
		return err
	}
	lsn := d.log.NextLSN()

	// Consistent cut: with every shard's commit lock held no publish is in
	// flight anywhere, so the oracle's current value is a timestamp at which
	// every shard is fully published. Prepared.Abort releases the locks
	// without publishing; the pins keep each shard's GC above the cut.
	n := db.cluster.Shards()
	start := time.Now()
	preps := make([]*txn.Prepared, n)
	for i := 0; i < n; i++ {
		preps[i] = db.cluster.Kernel(i).Mgr().Prepare()
	}
	ts := db.cluster.Oracle().Current()
	for i := 0; i < n; i++ {
		db.cluster.Kernel(i).Mgr().PinAt(ts)
	}
	for i := 0; i < n; i++ {
		preps[i].Abort()
	}
	pause := time.Since(start)
	defer func() {
		for i := 0; i < n; i++ {
			db.cluster.Kernel(i).Mgr().UnpinSnapshot(ts)
		}
	}()

	db.tblMu.RLock()
	srcs := make([]ckptSource, 0, len(db.tables))
	for _, st := range db.tables {
		st := st
		// A sharded table's commits bump the owning locals' counters (the
		// uber-transaction attaches locals), while loads bump the view's;
		// the sum moves exactly when any of them changes.
		muts := st.View().Mutations()
		for s := 0; s < n; s++ {
			muts += st.Local(s).Mutations()
		}
		srcs = append(srcs, ckptSource{
			name:   st.Name(),
			muts:   muts,
			encode: func() []byte { return checkpoint.EncodeTable(st.View(), ts) },
		})
	}
	db.tblMu.RUnlock()
	return d.writeCheckpoint(checkpoint.Meta{TS: ts, LSN: lsn}, srcs, pause)
}

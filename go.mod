module db4ml

go 1.22

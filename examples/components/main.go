// Connected components via min-label propagation — a third ML algorithm
// implemented on DB4ML's iterative-transaction model (after PageRank and
// SGD), demonstrating the synchronous level's converge-together barrier:
// a node's label can be momentarily stable while a smaller label is still
// several hops away, so nodes must retire together at the global fixpoint.
// The result is validated against a union-find reference.
package main

import (
	"fmt"
	"log"

	"db4ml/internal/exec"
	"db4ml/internal/graph"
	"db4ml/internal/isolation"
	"db4ml/internal/ml/labelprop"
	"db4ml/internal/txn"
)

func main() {
	// A sparse random graph: n edges ≈ n nodes leaves many components.
	g := graph.ErdosRenyi(5000, 5500, 42)
	mgr := txn.NewManager()
	tbl, err := labelprop.LoadTable(mgr, g)
	if err != nil {
		log.Fatal(err)
	}

	res, err := labelprop.Run(mgr, tbl, g, labelprop.Config{
		Exec:      exec.Config{Workers: 4},
		Isolation: isolation.Options{Level: isolation.Synchronous},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected components: %d (in %d rounds, %v)\n",
		res.Components, res.Stats.Rounds, res.Stats.Elapsed.Round(1000))

	// Validate against the sequential union-find reference.
	ref := labelprop.RefComponents(g)
	for v := range ref {
		if res.Labels[v] != ref[v] {
			log.Fatalf("node %d: label %d, reference %d", v, res.Labels[v], ref[v])
		}
	}
	fmt.Println("labels match the union-find reference exactly")

	// Size distribution of the largest components.
	sizes := map[int64]int{}
	for _, l := range res.Labels {
		sizes[l]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("largest component: %d of %d nodes\n", largest, g.NumNodes())
}

// OLTP + ML coexistence: the property that distinguishes DB4ML from
// specialized ML engines (Section 2.1). A bank-account ML-table serves
// concurrent transfer transactions under snapshot isolation while an ML
// algorithm runs over a second table in the same database; transactions
// that collide with the ML uber-transaction's in-flight state abort
// cleanly and retry.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"db4ml"
	"db4ml/internal/storage"
)

// smoother is the ML side: each row repeatedly averages itself with its
// ring neighbor until the whole table converges to the mean.
type smoother struct {
	tbl         *db4ml.Table
	row, nbr    db4ml.RowID
	rec, nbrRec *storage.IterativeRecord
	buf, nbuf   db4ml.Payload
	delta       float64
}

func (s *smoother) Begin(ctx *db4ml.Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.nbrRec = s.tbl.IterRecord(s.nbr)
	s.buf = make(db4ml.Payload, 2)
	s.nbuf = make(db4ml.Payload, 2)
}

func (s *smoother) Execute(ctx *db4ml.Ctx) {
	ctx.Read(s.rec, s.buf)
	ctx.Read(s.nbrRec, s.nbuf)
	mine, theirs := s.buf.Float64(1), s.nbuf.Float64(1)
	avg := (mine + theirs) / 2
	s.delta = mine - avg
	s.buf.SetFloat64(1, avg)
	ctx.Write(s.rec, s.buf)
}

func (s *smoother) Validate(ctx *db4ml.Ctx) db4ml.Action {
	if s.delta < 1e-6 && s.delta > -1e-6 && ctx.Iteration() > 3 {
		return db4ml.Done
	}
	return db4ml.Commit
}

func main() {
	db := db4ml.Open()
	defer db.Close()
	accounts, err := db.CreateTable("Account",
		db4ml.Column{Name: "ID", Type: db4ml.Int64},
		db4ml.Column{Name: "Balance", Type: db4ml.Float64})
	if err != nil {
		log.Fatal(err)
	}
	signals, err := db.CreateTable("Signal",
		db4ml.Column{Name: "ID", Type: db4ml.Int64},
		db4ml.Column{Name: "V", Type: db4ml.Float64})
	if err != nil {
		log.Fatal(err)
	}

	const nAccounts = 64
	const initial = 1000.0
	var rows []db4ml.Payload
	for i := 0; i < nAccounts; i++ {
		p := accounts.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetFloat64(1, initial)
		rows = append(rows, p)
	}
	if err := db.BulkLoad(accounts, rows); err != nil {
		log.Fatal(err)
	}
	rows = rows[:0]
	for i := 0; i < 128; i++ {
		p := signals.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetFloat64(1, float64(i))
		rows = append(rows, p)
	}
	if err := db.BulkLoad(signals, rows); err != nil {
		log.Fatal(err)
	}

	// OLTP load: 4 clients × 500 random transfers, retrying on conflict.
	var committed, conflicts atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 500; i++ {
				from := db4ml.RowID(rng.Intn(nAccounts))
				to := db4ml.RowID(rng.Intn(nAccounts))
				if from == to {
					continue
				}
				amount := float64(rng.Intn(50) + 1)
				for {
					tx := db.Begin()
					a, _ := tx.Read(accounts, from)
					b, _ := tx.Read(accounts, to)
					a.SetFloat64(1, a.Float64(1)-amount)
					b.SetFloat64(1, b.Float64(1)+amount)
					if err := tx.Write(accounts, from, a); err != nil {
						log.Fatal(err)
					}
					if err := tx.Write(accounts, to, b); err != nil {
						log.Fatal(err)
					}
					err := tx.Commit()
					if err == nil {
						committed.Add(1)
						break
					}
					if !errors.Is(err, db4ml.ErrConflict) {
						log.Fatal(err)
					}
					conflicts.Add(1)
				}
			}
		}(c)
	}

	// ML load, concurrently, over the Signal table.
	subs := make([]db4ml.IterativeTransaction, 128)
	for i := range subs {
		subs[i] = &smoother{tbl: signals, row: db4ml.RowID(i), nbr: db4ml.RowID((i + 1) % 128)}
	}
	stats, err := db.RunML(db4ml.MLRun{
		Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
		Workers:   2,
		Attach:    []db4ml.Attachment{{Table: signals}},
		Subs:      subs,
	})
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	// Invariant: transfers conserve total balance exactly.
	tx := db.Begin()
	total := 0.0
	for i := 0; i < nAccounts; i++ {
		p, _ := tx.Read(accounts, db4ml.RowID(i))
		total += p.Float64(1)
	}
	fmt.Printf("OLTP: %d transfers committed, %d conflicts retried\n", committed.Load(), conflicts.Load())
	fmt.Printf("balance invariant: total = %.1f (want %.1f)\n", total, float64(nAccounts)*initial)
	fmt.Printf("ML (concurrent): %d commits in %v\n", stats.Commits, stats.Elapsed.Round(1000))
	p0, _ := tx.Read(signals, 0)
	p64, _ := tx.Read(signals, 64)
	fmt.Printf("smoothed signal: row0=%.3f row64=%.3f (converging toward the mean 63.5)\n",
		p0.Float64(1), p64.Float64(1))
}

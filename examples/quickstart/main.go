// Quickstart: open a DB4ML database, create an ML-table, run classical
// OLTP transactions against it, then run a tiny user-defined ML algorithm
// (a fixed-point halving iteration) as iterative transactions — all
// through the public API.
package main

import (
	"fmt"
	"log"

	"db4ml"
	"db4ml/internal/storage"
)

// halver is a user-defined iterative transaction: every iteration it
// halves its row's value, converging when the value drops below 1.
type halver struct {
	tbl *db4ml.Table
	row db4ml.RowID

	// tx_state, cached in Begin and reused each iteration.
	rec *storage.IterativeRecord
	buf db4ml.Payload
	cur float64
}

func (h *halver) Begin(ctx *db4ml.Ctx) {
	h.rec = h.tbl.IterRecord(h.row)
	h.buf = make(db4ml.Payload, 2)
}

func (h *halver) Execute(ctx *db4ml.Ctx) {
	ctx.Read(h.rec, h.buf)
	h.cur = h.buf.Float64(1) / 2
	h.buf.SetFloat64(1, h.cur)
	ctx.Write(h.rec, h.buf)
}

func (h *halver) Validate(ctx *db4ml.Ctx) db4ml.Action {
	if h.cur < 1 {
		return db4ml.Done
	}
	return db4ml.Commit
}

func main() {
	db := db4ml.Open()
	defer db.Close()

	// 1. Create an ML-table and bulk load it.
	values, err := db.CreateTable("Values",
		db4ml.Column{Name: "ID", Type: db4ml.Int64},
		db4ml.Column{Name: "V", Type: db4ml.Float64},
	)
	if err != nil {
		log.Fatal(err)
	}
	var rows []db4ml.Payload
	for i := 0; i < 8; i++ {
		p := values.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetFloat64(1, float64(100+i*50))
		rows = append(rows, p)
	}
	if err := db.BulkLoad(values, rows); err != nil {
		log.Fatal(err)
	}

	// 2. Classical OLTP: transfer 25 units from row 0 to row 1,
	// atomically under snapshot isolation.
	tx := db.Begin()
	a, _ := tx.Read(values, 0)
	b, _ := tx.Read(values, 1)
	a.SetFloat64(1, a.Float64(1)-25)
	b.SetFloat64(1, b.Float64(1)+25)
	if err := tx.Write(values, 0, a); err != nil {
		log.Fatal(err)
	}
	if err := tx.Write(values, 1, b); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after OLTP transfer:")
	printAll(db, values)

	// 3. User-defined ML: halve every value until all drop below 1. The
	// intermediate state is invisible to other transactions until the
	// uber-transaction commits.
	subs := make([]db4ml.IterativeTransaction, 8)
	for i := range subs {
		subs[i] = &halver{tbl: values, row: db4ml.RowID(i)}
	}
	stats, err := db.RunML(db4ml.MLRun{
		Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
		Workers:   4,
		Attach:    []db4ml.Attachment{{Table: values}},
		Subs:      subs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nML run: %d iterations committed in %v\n", stats.Commits, stats.Elapsed.Round(1000))
	fmt.Println("after ML run (all values < 1):")
	printAll(db, values)
}

func printAll(db *db4ml.DB, tbl *db4ml.Table) {
	tx := db.Begin()
	for i := 0; i < tbl.NumRows(); i++ {
		p, _ := tx.Read(tbl, db4ml.RowID(i))
		fmt.Printf("  row %d: %.4f\n", i, p.Float64(1))
	}
}

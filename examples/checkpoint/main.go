// Checkpoint: train a model inside DB4ML, persist the committed
// parameter table to disk, restore it in a fresh database instance, and
// verify the restored model predicts identically. This exercises the
// disk-persistence extension (internal/checkpoint) on top of the paper's
// in-memory kernel.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"db4ml"
	"db4ml/internal/checkpoint"
	"db4ml/internal/exec"
	"db4ml/internal/ml/sgd"
	"db4ml/internal/svm"
	"db4ml/internal/txn"
)

func main() {
	const features = 40
	train, test := svm.Generate(svm.GenSpec{
		Train: 8000, Test: 2000, Features: features, Density: 1, Noise: 0.05, Seed: 3,
	})

	// Train inside DB4ML (use case 2 of the paper).
	mgr := txn.NewManager()
	tables, err := sgd.LoadTables(mgr, train, features, 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sgd.Run(mgr, tables, sgd.Config{
		Exec:   exec.Config{Workers: 4},
		Epochs: 10, Lambda: 1e-5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	acc := svm.Accuracy(res.Model, test)
	fmt.Printf("trained model: test accuracy %.4f (%d epochs committed)\n", acc, res.Stats.Commits)

	// Persist the committed GlobalParameter table.
	path := filepath.Join(os.TempDir(), "db4ml-model.ckpt")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := checkpoint.Save(f, tables.Params, res.CommitTS); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("checkpoint written: %s (%d bytes)\n", path, info.Size())

	// Restore into a brand-new database instance.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	db2 := db4ml.Open()
	defer db2.Close()
	restored, err := checkpoint.Load(f, db2.Manager())
	if err != nil {
		log.Fatal(err)
	}

	// Read the restored model through a normal transaction and verify it
	// predicts identically.
	tx := db2.Begin()
	w := make(svm.VecModel, features)
	for i := 0; i < features; i++ {
		p, ok := tx.Read(restored, db4ml.RowID(i))
		if !ok {
			log.Fatalf("restored parameter %d unreadable", i)
		}
		w[i] = p.Float64(1)
	}
	restoredAcc := svm.Accuracy(w, test)
	fmt.Printf("restored model: test accuracy %.4f\n", restoredAcc)
	if restoredAcc != acc {
		log.Fatalf("restored model differs: %.6f vs %.6f", restoredAcc, acc)
	}
	fmt.Println("restored model is bit-identical to the trained one")
	_ = os.Remove(path)
}

// Hogwild!-style SGD as a user-defined ML algorithm in DB4ML (the paper's
// second use case, Section 6.2), written against the public API: the
// parameter vector lives in a GlobalParameter ML-table (one row per
// coordinate), each worker core runs one iterative sub-transaction over
// its key range of the shuffled training data, and model updates flow
// through the asynchronous isolation level — lock-free and immediately
// visible, exactly like Hogwild!.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"db4ml"
	"db4ml/internal/storage"
	"db4ml/internal/svm"
)

const (
	colValue  = 1
	epochs    = 12
	stepSize  = 5e-2
	stepDecay = 0.8
	lambda    = 1e-5
)

// sgdSub trains on one partition of the samples; one Execute call is one
// epoch (Algorithm 4 of the paper).
type sgdSub struct {
	params  *db4ml.Table
	samples []svm.Sample // this sub's partition
	seed    int64

	recs  []*storage.IterativeRecord
	rng   *rand.Rand
	gamma float64
}

func (s *sgdSub) Begin(ctx *db4ml.Ctx) {
	s.recs = make([]*storage.IterativeRecord, s.params.NumRows())
	for i := range s.recs {
		s.recs[i] = s.params.IterRecord(db4ml.RowID(i))
	}
	s.rng = rand.New(rand.NewSource(s.seed))
	s.gamma = stepSize
}

// model adapts the parameter table to svm.Model through the context.
type model struct {
	ctx  *db4ml.Ctx
	recs []*storage.IterativeRecord
}

func (m *model) Get(i int32) float64 {
	return math.Float64frombits(m.ctx.ReadCol(m.recs[i], colValue))
}

func (m *model) Add(i int32, delta float64) {
	m.ctx.WriteCol(m.recs[i], colValue, math.Float64bits(m.Get(i)+delta))
}

func (s *sgdSub) Execute(ctx *db4ml.Ctx) {
	m := &model{ctx: ctx, recs: s.recs}
	for range s.samples {
		sample := s.samples[s.rng.Intn(len(s.samples))]
		svm.Step(m, sample, s.gamma, lambda)
	}
	s.gamma *= stepDecay
}

func (s *sgdSub) Validate(ctx *db4ml.Ctx) db4ml.Action {
	if ctx.Iteration()+1 >= epochs {
		return db4ml.Done
	}
	return db4ml.Commit
}

func main() {
	const features = 100
	train, test := svm.Generate(svm.GenSpec{
		Train: 20000, Test: 4000, Features: features, Density: 0.3, Noise: 0.05, Seed: 7,
	})
	svm.Shuffle(train, 7)

	db := db4ml.Open()
	defer db.Close()
	params, err := db.CreateTable("GlobalParameter",
		db4ml.Column{Name: "ParamID", Type: db4ml.Int64},
		db4ml.Column{Name: "Value", Type: db4ml.Float64})
	if err != nil {
		log.Fatal(err)
	}
	rows := make([]db4ml.Payload, features)
	for i := range rows {
		p := params.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		rows[i] = p
	}
	if err := db.BulkLoad(params, rows); err != nil {
		log.Fatal(err)
	}

	// One sub-transaction per worker, each owning a contiguous partition
	// of the shuffled samples (Algorithm 3 of the paper).
	const workers = 4
	per := len(train) / workers
	subs := make([]db4ml.IterativeTransaction, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if w == workers-1 {
			hi = len(train)
		}
		subs[w] = &sgdSub{params: params, samples: train[lo:hi], seed: int64(w + 1)}
	}

	stats, err := db.RunML(db4ml.MLRun{
		Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
		Workers:   workers,
		Attach:    []db4ml.Attachment{{Table: params}},
		Subs:      subs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SGD: %d epochs committed across %d workers in %v\n",
		stats.Commits, workers, stats.Elapsed.Round(1000))

	// Evaluate the committed model via a normal transaction.
	tx := db.Begin()
	w := make(svm.VecModel, features)
	for i := 0; i < features; i++ {
		p, _ := tx.Read(params, db4ml.RowID(i))
		w[i] = p.Float64(colValue)
	}
	fmt.Printf("test accuracy: %.4f (train %.4f)\n",
		svm.Accuracy(w, test), svm.Accuracy(w, train))
}

// PageRank as a user-defined ML algorithm in DB4ML (the paper's first use
// case, Section 6.1), written against the public API: a Node and an Edge
// ML-table, one iterative sub-transaction per node evaluating Equation (1)
// per iteration, and an uber-transaction (db.RunML) that publishes the
// converged ranks atomically. The result is validated against a
// sequential reference implementation.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"db4ml"
	"db4ml/internal/graph"
	"db4ml/internal/storage"
)

const (
	colNodeID = 0
	colPR     = 1
	damping   = 0.85
	epsilon   = 1e-10
)

// prSub computes one node's PageRank per iteration (Algorithm 2 of the
// paper). Its tx_state caches the node's own record handle, the
// in-neighbors' handles, and their out-degrees.
type prSub struct {
	nodeTbl *db4ml.Table
	row     db4ml.RowID
	inRows  []db4ml.RowID
	outDegs []float64
	base    float64

	myRec     *storage.IterativeRecord
	neighbors []*storage.IterativeRecord
	pr, oldPR float64
	buf       db4ml.Payload
}

func (s *prSub) Begin(ctx *db4ml.Ctx) {
	s.myRec = s.nodeTbl.IterRecord(s.row)
	s.neighbors = make([]*storage.IterativeRecord, len(s.inRows))
	for i, r := range s.inRows {
		s.neighbors[i] = s.nodeTbl.IterRecord(r)
	}
	s.buf = make(db4ml.Payload, 2)
	s.buf.SetInt64(colNodeID, int64(s.row))
}

func (s *prSub) Execute(ctx *db4ml.Ctx) {
	sum := 0.0
	for i, rec := range s.neighbors {
		sum += math.Float64frombits(ctx.ReadCol(rec, colPR)) / s.outDegs[i]
	}
	s.oldPR = s.pr
	s.pr = s.base + damping*sum
	s.buf.SetFloat64(colPR, s.pr)
	ctx.Write(s.myRec, s.buf)
}

func (s *prSub) Validate(ctx *db4ml.Ctx) db4ml.Action {
	if d := s.pr - s.oldPR; d < epsilon && d > -epsilon && ctx.Iteration() > 0 {
		return db4ml.Done
	}
	return db4ml.Commit
}

func main() {
	// A small scale-free graph standing in for a web/social graph.
	g := graph.BarabasiAlbert(2000, 8, 42)
	db := db4ml.Open()
	defer db.Close()

	node, err := db.CreateTable("Node",
		db4ml.Column{Name: "NodeID", Type: db4ml.Int64},
		db4ml.Column{Name: "PR", Type: db4ml.Float64})
	if err != nil {
		log.Fatal(err)
	}
	edge, err := db.CreateTable("Edge",
		db4ml.Column{Name: "NID_From", Type: db4ml.Int64},
		db4ml.Column{Name: "NID_To", Type: db4ml.Int64})
	if err != nil {
		log.Fatal(err)
	}

	n := g.NumNodes()
	nodeRows := make([]db4ml.Payload, n)
	for v := 0; v < n; v++ {
		p := node.Schema().NewPayload()
		p.SetInt64(colNodeID, int64(v))
		p.SetFloat64(colPR, 1/float64(n))
		nodeRows[v] = p
	}
	if err := db.BulkLoad(node, nodeRows); err != nil {
		log.Fatal(err)
	}
	var edgeRows []db4ml.Payload
	for v := int32(0); int(v) < n; v++ {
		for _, to := range g.OutNeighbors(v) {
			p := edge.Schema().NewPayload()
			p.SetInt64(0, int64(v))
			p.SetInt64(1, int64(to))
			edgeRows = append(edgeRows, p)
		}
	}
	if err := db.BulkLoad(edge, edgeRows); err != nil {
		log.Fatal(err)
	}

	// Build one sub-transaction per node; the in-neighbor lists come
	// straight from the graph here (the engine-internal implementation
	// resolves them through the Edge table's NID_To index instead).
	subs := make([]db4ml.IterativeTransaction, n)
	for v := 0; v < n; v++ {
		ins := g.InNeighbors(int32(v))
		inRows := make([]db4ml.RowID, len(ins))
		degs := make([]float64, len(ins))
		for i, u := range ins {
			inRows[i] = db4ml.RowID(u)
			degs[i] = float64(g.OutDegree(u))
		}
		subs[v] = &prSub{
			nodeTbl: node, row: db4ml.RowID(v),
			inRows: inRows, outDegs: degs,
			base: (1 - damping) / float64(n),
		}
	}

	observer := db4ml.NewObserver()
	stats, err := db.RunML(db4ml.MLRun{
		Isolation: db4ml.MLOptions{Level: db4ml.Synchronous},
		Workers:   4,
		Attach:    []db4ml.Attachment{{Table: node}},
		Subs:      subs,
		// PageRank needs Galois-style global convergence: a node's rank
		// can move again after a quiet round while upstream still changes.
		ConvergeTogether: true,
		Observer:         observer,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank converged: %d rounds, %d commits, %v\n",
		stats.Rounds, stats.Commits, stats.Elapsed.Round(1000))

	// The observer saw the whole run: print how many sub-transactions were
	// still live after each round (the engine's convergence curve).
	snap := observer.Snapshot()
	fmt.Print("live sub-transactions per round:")
	for _, s := range snap.Convergence {
		fmt.Printf(" %d", s.Live)
	}
	fmt.Printf("\nworkers %d, executions %d, commit rate %.1f%%\n",
		snap.Workers, snap.Counters.Executions,
		100*float64(snap.Counters.Commits)/float64(snap.Counters.Executions))

	// Read the committed ranks back through a normal transaction and
	// compare with the sequential reference.
	tx := db.Begin()
	ranks := make([]float64, n)
	for v := 0; v < n; v++ {
		p, _ := tx.Read(node, db4ml.RowID(v))
		ranks[v] = p.Float64(colPR)
	}
	ref, _ := graph.PageRankRef(g, damping, 1e-12, 500)
	maxDiff := 0.0
	for v := range ranks {
		if d := math.Abs(ranks[v] - ref[v]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |DB4ML - reference| = %.2e\n", maxDiff)

	type ranked struct {
		id int
		pr float64
	}
	top := make([]ranked, n)
	for v := range ranks {
		top[v] = ranked{v, ranks[v]}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].pr > top[j].pr })
	fmt.Println("top 10 nodes:")
	for _, r := range top[:10] {
		fmt.Printf("  node %4d  pr %.6f\n", r.id, r.pr)
	}
}

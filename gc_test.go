package db4ml

import (
	"testing"
	"time"
)

// retainedVersions counts every version still reachable in tbl's chains —
// the quantity the version GC must keep flat under sustained traffic.
func retainedVersions(tbl *Table) int {
	n := 0
	for r := 0; r < tbl.NumRows(); r++ {
		if c := tbl.Chain(RowID(r)); c != nil {
			n += c.Len()
		}
	}
	return n
}

// soakOnce drives one ML run counting every row up by bump.
func soakOnce(t *testing.T, db *DB, tbl *Table, n int, target float64) {
	t.Helper()
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: target}
	}
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: BoundedStaleness, Staleness: 1},
		BatchSize: 4,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSoakVersionCountFlatWithGC is the PR's gate: across >= 50
// consecutive ML runs the retained-version count stays flat (±1 epoch)
// with GC enabled, and grows monotonically — one version per row per run —
// without it.
func TestSoakVersionCountFlatWithGC(t *testing.T) {
	const (
		rows = 8
		runs = 50
	)

	// Control: no GC — the leak this PR fixes, still observable on demand.
	db, tbl := openWithCounters(t, rows)
	defer db.Close()
	for k := 1; k <= runs; k++ {
		soakOnce(t, db, tbl, rows, float64(k))
		if got, want := retainedVersions(tbl), rows*(k+1); got != want {
			t.Fatalf("run %d without GC: retained = %d, want %d (monotone growth)", k, got, want)
		}
	}

	// With GC: a pass after every run keeps the count flat at one live
	// version per row, forever.
	db2, tbl2 := openWithCounters(t, rows)
	defer db2.Close()
	peak := 0
	for k := 1; k <= runs; k++ {
		soakOnce(t, db2, tbl2, rows, float64(k))
		db2.PruneNow()
		if got := retainedVersions(tbl2); got > peak {
			peak = got
		}
	}
	if peak > rows {
		t.Fatalf("retained versions peaked at %d with GC on, want <= %d (flat)", peak, rows)
	}
	passes, pruned := db2.GCStats()
	if passes != runs || pruned == 0 {
		t.Fatalf("GCStats = (%d passes, %d pruned)", passes, pruned)
	}
	// Both soaks computed the same final state; GC changed nothing visible.
	for r := 0; r < rows; r++ {
		a, _ := db.Begin().Read(tbl, RowID(r))
		b, _ := db2.Begin().Read(tbl2, RowID(r))
		if a.Float64(1) != float64(runs) || b.Float64(1) != float64(runs) {
			t.Fatalf("row %d final = (%v, %v), want %d", r, a.Float64(1), b.Float64(1), runs)
		}
	}
}

// TestWithVersionGCBackgroundReclaims: the background reclaimer configured
// at Open prunes without any manual call.
func TestWithVersionGCBackgroundReclaims(t *testing.T) {
	db := Open(WithVersionGC(time.Millisecond))
	defer db.Close()
	tbl, err := db.CreateTable("G", Column{Name: "V", Type: Int64})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BulkLoad(tbl, []Payload{{0}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tx := db.Begin()
		p, _ := tx.Read(tbl, 0)
		p.SetInt64(0, int64(i+1))
		if err := tx.Write(tbl, 0, p); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for retainedVersions(tbl) > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("background GC never reclaimed: %d versions retained", retainedVersions(tbl))
		}
		time.Sleep(time.Millisecond)
	}
	if got, _ := db.Begin().Read(tbl, 0); got.Int64(0) != 10 {
		t.Fatalf("read after background GC = %v", got.Int64(0))
	}
}

// TestPruneNowRespectsPinnedSnapshot: the facade's manual pass goes
// through the same clamping as the background reclaimer.
func TestPruneNowRespectsPinnedSnapshot(t *testing.T) {
	db, tbl := openWithCounters(t, 1)
	defer db.Close()
	write := func(v float64) {
		tx := db.Begin()
		p, _ := tx.Read(tbl, 0)
		p.SetFloat64(1, v)
		if err := tx.Write(tbl, 0, p); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	write(1)
	reader := db.Begin()
	write(2)
	write(3)
	db.PruneNow()
	if p, ok := reader.Read(tbl, 0); !ok || p.Float64(1) != 1 {
		t.Fatalf("pinned read after PruneNow = (%v, %v), want 1", p, ok)
	}
	reader.Abort()
	if pruned := db.PruneNow(); pruned == 0 {
		t.Fatal("post-unpin PruneNow reclaimed nothing")
	}
	if retainedVersions(tbl) != 1 {
		t.Fatalf("retained = %d after full GC", retainedVersions(tbl))
	}
}

package db4ml

import (
	"errors"
	"math"
	"testing"

	"db4ml/internal/storage"
)

func openWithCounters(t *testing.T, n int) (*DB, *Table) {
	t.Helper()
	db := Open()
	tbl, err := db.CreateTable("Counter",
		Column{Name: "ID", Type: Int64},
		Column{Name: "Value", Type: Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Payload, n)
	for i := range rows {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetFloat64(1, 0)
		rows[i] = p
	}
	if err := db.BulkLoad(tbl, rows); err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestCreateTableDuplicate(t *testing.T) {
	db := Open()
	if _, err := db.CreateTable("T", Column{Name: "a", Type: Int64}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("T", Column{Name: "a", Type: Int64}); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if db.Table("T") == nil || db.Table("missing") != nil {
		t.Fatal("Table lookup wrong")
	}
}

func TestCreateTableInvalidSchema(t *testing.T) {
	db := Open()
	if _, err := db.CreateTable("T"); err != nil {
		t.Fatal("empty schema should be allowed:", err)
	}
	if _, err := db.CreateTable("U", Column{Name: "", Type: Int64}); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestOLTPRoundTrip(t *testing.T) {
	db, tbl := openWithCounters(t, 3)
	tx := db.Begin()
	p, ok := tx.Read(tbl, 1)
	if !ok {
		t.Fatal("bulk-loaded row invisible")
	}
	p.SetFloat64(1, 5)
	if err := tx.Write(tbl, 1, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Begin().Read(tbl, 1)
	if got.Float64(1) != 5 {
		t.Fatalf("committed value = %v", got.Float64(1))
	}
}

// incSub bumps its row's value by 1 per iteration until reaching target —
// a minimal user-defined iterative transaction through the public API.
type incSub struct {
	tbl    *Table
	row    RowID
	target float64
	rec    *storage.IterativeRecord
	buf    Payload
	cur    float64
}

func (s *incSub) Begin(ctx *Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(Payload, 2)
}

func (s *incSub) Execute(ctx *Ctx) {
	ctx.Read(s.rec, s.buf)
	s.cur = s.buf.Float64(1) + 1
	s.buf.SetFloat64(1, s.cur)
	ctx.Write(s.rec, s.buf)
}

func (s *incSub) Validate(ctx *Ctx) Action {
	if s.cur >= s.target {
		return Done
	}
	return Commit
}

func TestRunMLEndToEnd(t *testing.T) {
	const n = 40
	db, tbl := openWithCounters(t, n)
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: 7}
	}
	stats, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Workers:   4,
		BatchSize: 8,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Commits != n*7 {
		t.Fatalf("commits = %d, want %d", stats.Commits, n*7)
	}
	for i := 0; i < n; i++ {
		p, _ := db.Begin().Read(tbl, RowID(i))
		if p.Float64(1) != 7 {
			t.Fatalf("row %d = %v after ML run", i, p.Float64(1))
		}
	}
}

func TestRunMLInvalidIsolation(t *testing.T) {
	db, tbl := openWithCounters(t, 1)
	_, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: 99},
		Attach:    []Attachment{{Table: tbl}},
	})
	if err == nil {
		t.Fatal("invalid isolation accepted")
	}
}

func TestRunMLAttachFailureAborts(t *testing.T) {
	db, tbl := openWithCounters(t, 2)
	// Attach the same table twice: the second StartIterative must fail and
	// the first must be rolled back so the table is reusable.
	_, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}, {Table: tbl}},
	})
	if err == nil {
		t.Fatal("double attach accepted")
	}
	// Table is clean again: a fresh run works.
	subs := []IterativeTransaction{&incSub{tbl: tbl, row: 0, target: 1}}
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Workers:   2,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	}); err != nil {
		t.Fatalf("table unusable after failed attach: %v", err)
	}
}

func TestRunMLSynchronousDeterministic(t *testing.T) {
	const n = 16
	run := func(workers int) []float64 {
		db, tbl := openWithCounters(t, n)
		subs := make([]IterativeTransaction, n)
		for i := range subs {
			subs[i] = &incSub{tbl: tbl, row: RowID(i), target: 5}
		}
		if _, err := db.RunML(MLRun{
			Isolation: MLOptions{Level: Synchronous},
			Workers:   workers,
			Attach:    []Attachment{{Table: tbl}},
			Subs:      subs,
		}); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, n)
		for i := range out {
			p, _ := db.Begin().Read(tbl, RowID(i))
			out[i] = p.Float64(1)
		}
		return out
	}
	a, b := run(1), run(4)
	for i := range a {
		if a[i] != b[i] || math.IsNaN(a[i]) {
			t.Fatalf("sync results differ across worker counts: %v vs %v", a, b)
		}
	}
}

func TestOLTPConflictsWithRunningML(t *testing.T) {
	db, tbl := openWithCounters(t, 1)
	// Simulate an in-flight uber-transaction by attaching manually via
	// RunML with a sub that spins once; simpler: start iterative directly.
	if err := tbl.StartIterative(db.Stable(), 1, nil); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	p, _ := tx.Read(tbl, 0)
	p.SetFloat64(1, 9)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("OLTP write over in-flight ML state: %v, want ErrConflict", err)
	}
}

package db4ml

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"db4ml/internal/oltpbench"
)

func loadCounters(t *testing.T, db *DB, name string, n int) *Table {
	t.Helper()
	tbl, err := db.CreateTable(name,
		Column{Name: "ID", Type: Int64},
		Column{Name: "Value", Type: Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Payload, n)
	for i := range rows {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetFloat64(1, 0)
		rows[i] = p
	}
	if err := db.BulkLoad(tbl, rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func submitCounterJob(t *testing.T, db *DB, tbl *Table, n int, target float64, label string, o *Observer) *JobHandle {
	t.Helper()
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: target}
	}
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Label:     label,
		BatchSize: 8,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
		Observer:  o,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestSubmitMLConcurrentJobsWithOLTP is the headline scenario of the
// persistent engine: one DB, whose pool was started once at Open, drives
// two ML uber-transactions concurrently while a SmallBank OLTP workload
// hammers unrelated tables of the same database. Both jobs must converge
// with exact per-job stats and disjoint, correctly labelled telemetry.
func TestSubmitMLConcurrentJobsWithOLTP(t *testing.T) {
	db := Open(WithWorkers(4))
	defer db.Close()

	const nA, targetA = 48, 9.0
	const nB, targetB = 32, 6.0
	tblA := loadCounters(t, db, "A", nA)
	tblB := loadCounters(t, db, "B", nB)

	bank, err := oltpbench.Setup(db.Manager(), 64, 1000)
	if err != nil {
		t.Fatal(err)
	}
	before := bank.TotalBalance()

	oa, ob := NewObserver(), NewObserver()
	ha := submitCounterJob(t, db, tblA, nA, targetA, "job-a", oa)
	hb := submitCounterJob(t, db, tblB, nB, targetB, "job-b", ob)

	// The classical side keeps committing while both ML jobs are in flight.
	var wg sync.WaitGroup
	var oltp oltpbench.Stats
	var oltpErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		oltp, oltpErr = bank.Run(4, 200, oltpbench.Mix{TransferPct: 100}, 11)
	}()

	statsA, errA := ha.Wait()
	statsB, errB := hb.Wait()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatalf("job errors: a=%v b=%v", errA, errB)
	}
	if oltpErr != nil {
		t.Fatalf("oltp: %v", oltpErr)
	}

	// Per-job stats are disjoint and exact: every sub commits once per
	// increment, nothing bleeds between jobs.
	if statsA.Commits != nA*uint64(targetA) {
		t.Fatalf("job-a commits = %d, want %d", statsA.Commits, nA*int(targetA))
	}
	if statsB.Commits != nB*uint64(targetB) {
		t.Fatalf("job-b commits = %d, want %d", statsB.Commits, nB*int(targetB))
	}

	// Telemetry snapshots are per job: right label, right commit count.
	snapA, snapB := oa.Snapshot(), ob.Snapshot()
	if snapA.Job != "job-a" || snapB.Job != "job-b" {
		t.Fatalf("snapshot labels %q/%q", snapA.Job, snapB.Job)
	}
	if snapA.Counters.Commits != statsA.Commits || snapB.Counters.Commits != statsB.Commits {
		t.Fatalf("telemetry bled between jobs: a=%d/%d b=%d/%d",
			snapA.Counters.Commits, statsA.Commits, snapB.Counters.Commits, statsB.Commits)
	}

	// Both results are published and correct.
	for i := 0; i < nA; i++ {
		if p, _ := db.Begin().Read(tblA, RowID(i)); p.Float64(1) != targetA {
			t.Fatalf("tblA row %d = %v", i, p.Float64(1))
		}
	}
	for i := 0; i < nB; i++ {
		if p, _ := db.Begin().Read(tblB, RowID(i)); p.Float64(1) != targetB {
			t.Fatalf("tblB row %d = %v", i, p.Float64(1))
		}
	}

	// The OLTP side committed everything and transfers conserved money.
	if oltp.Committed != 4*200 {
		t.Fatalf("oltp committed %d of %d", oltp.Committed, 4*200)
	}
	if after := bank.TotalBalance(); after != before {
		t.Fatalf("transfer mix leaked money: %v -> %v", before, after)
	}
}

// TestSubmitMLContextCancel: cancelling the context aborts the
// uber-transaction — the job stops early, Wait reports the context error,
// and no updates become visible.
func TestSubmitMLContextCancel(t *testing.T) {
	db := Open(WithWorkers(2))
	defer db.Close()
	tbl := loadCounters(t, db, "C", 4)

	subs := make([]IterativeTransaction, 4)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: 1 << 40}
	}
	ctx, cancel := context.WithCancel(context.Background())
	h, err := db.SubmitML(ctx, MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		BatchSize: 1,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	})
	if err != nil {
		t.Fatal(err)
	}
	for h.Stats().Commits == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if _, err := h.Wait(); err != context.Canceled {
		t.Fatalf("Wait after ctx cancel = %v, want context.Canceled", err)
	}
	// Aborted: the table still reads its bulk-loaded zeros.
	if p, _ := db.Begin().Read(tbl, 0); p.Float64(1) != 0 {
		t.Fatalf("cancelled run leaked writes: row 0 = %v", p.Float64(1))
	}
	// The table is reusable by a fresh run.
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      []IterativeTransaction{&incSub{tbl: tbl, row: 0, target: 2}},
	}); err != nil {
		t.Fatalf("table unusable after cancelled run: %v", err)
	}
}

// TestDBCloseDrainsAndRejects: Close waits for in-flight jobs, then
// further submissions fail with ErrClosed.
func TestDBCloseDrainsAndRejects(t *testing.T) {
	db := Open(WithWorkers(2), WithRegions(2))
	tbl := loadCounters(t, db, "D", 8)
	subs := make([]IterativeTransaction, 8)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: 5}
	}
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		BatchSize: 2,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if stats, err := h.Wait(); err != nil || stats.Commits != 8*5 {
		t.Fatalf("drained job: stats=%+v err=%v", stats, err)
	}
	if _, err := db.SubmitML(context.Background(), MLRun{Isolation: MLOptions{Level: Asynchronous}}); err != ErrClosed {
		t.Fatalf("SubmitML after Close = %v, want ErrClosed", err)
	}
	if _, err := db.RunML(MLRun{Isolation: MLOptions{Level: Asynchronous}}); err != ErrClosed {
		t.Fatalf("RunML after Close = %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
}

// TestDBCloseRacesSubmitAndCancel hammers the Close/SubmitML/Cancel
// triangle under the race detector: several goroutines submit and cancel
// jobs while two concurrent closers shut the database down. The invariant
// under test: the moment any Close returns, every accepted job's
// uber-transaction has finished its commit or abort — no publish is still
// in flight — and every table is in a terminal state (fully committed or
// untouched). Close used to return after draining the pool but before the
// handle goroutines published, and a second concurrent Close returned
// immediately without waiting for the first's drain.
func TestDBCloseRacesSubmitAndCancel(t *testing.T) {
	const submitters, jobsPer, rows = 4, 6, 4
	const target = 3.0
	db := Open(WithWorkers(4), WithRegions(2))

	tables := make([][]*Table, submitters)
	for s := range tables {
		tables[s] = make([]*Table, jobsPer)
		for j := range tables[s] {
			tables[s][j] = loadCounters(t, db, fmt.Sprintf("race-%d-%d", s, j), rows)
		}
	}

	var mu sync.Mutex
	var handles []*JobHandle
	var wg sync.WaitGroup
	start := make(chan struct{})
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			<-start
			for j := 0; j < jobsPer; j++ {
				tbl := tables[s][j]
				subs := make([]IterativeTransaction, rows)
				for i := range subs {
					subs[i] = &incSub{tbl: tbl, row: RowID(i), target: target}
				}
				h, err := db.SubmitML(context.Background(), MLRun{
					Isolation: MLOptions{Level: Asynchronous},
					BatchSize: 1,
					Attach:    []Attachment{{Table: tbl}},
					Subs:      subs,
				})
				if err != nil {
					if err != ErrClosed {
						t.Errorf("submitter %d job %d: %v", s, j, err)
					}
					return // database closed under us: expected
				}
				if j%2 == 1 {
					h.Cancel()
				}
				mu.Lock()
				handles = append(handles, h)
				mu.Unlock()
			}
		}(s)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			runtime.Gosched()
			if err := db.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	// Every handle here was accepted before Close marked the database
	// closed, so Close's return guarantees its commit/abort completed.
	mu.Lock()
	defer mu.Unlock()
	for i, h := range handles {
		select {
		case <-h.Done():
		default:
			t.Fatalf("handle %d still in flight after Close returned", i)
		}
	}
	for s := range tables {
		for j, tbl := range tables[s] {
			p, ok := db.Begin().Read(tbl, 0)
			if !ok {
				t.Fatalf("table %d-%d unreadable after Close", s, j)
			}
			if v := p.Float64(1); v != 0 && v != target {
				t.Fatalf("table %d-%d in non-terminal state %v (want 0 or %v)", s, j, v, target)
			}
		}
	}
}

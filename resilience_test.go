package db4ml

// End-to-end tests of the supervision layer through the public API: panic
// containment, watchdog convictions, deadline retirement, abort-retry, and
// admission control — including the ISSUE acceptance scenarios (a planted
// panicking sub-transaction yields ErrJobPanicked from Wait; a planted
// non-convergent job is retired within its deadline; a chaos schedule with
// retries converges to exactly the fault-free result).

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/resilience"
	"db4ml/internal/storage"
)

// flakySub is incSub with a shared budget of planted panics: while
// panicsLeft > 0, Execute panics (and decrements); afterwards it counts its
// row up to target like a healthy sub-transaction. Because a retry
// resubmits the same sub instances, the budget spans attempts: a budget of
// 1 makes exactly the first attempt fail.
type flakySub struct {
	tbl        *Table
	row        RowID
	target     float64
	panicsLeft *atomic.Int64
	rec        *storage.IterativeRecord
	buf        Payload
	cur        float64
}

func (s *flakySub) Begin(ctx *Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(Payload, 2)
}

func (s *flakySub) Execute(ctx *Ctx) {
	if s.panicsLeft != nil && s.panicsLeft.Load() > 0 && s.panicsLeft.Add(-1) >= 0 {
		panic("planted facade panic")
	}
	ctx.Read(s.rec, s.buf)
	s.cur = s.buf.Float64(1) + 1
	s.buf.SetFloat64(1, s.cur)
	ctx.Write(s.rec, s.buf)
}

func (s *flakySub) Validate(ctx *Ctx) Action {
	if s.cur >= s.target {
		return Done
	}
	return Commit
}

// wedgeSub blocks inside Execute until release is closed — a worker wedged
// in user code, the watchdog's prey.
type wedgeSub struct {
	release chan struct{}
	blocked chan struct{}
	once    sync.Once
}

func (s *wedgeSub) Begin(ctx *Ctx) {}
func (s *wedgeSub) Execute(ctx *Ctx) {
	s.once.Do(func() { close(s.blocked) })
	<-s.release
}
func (s *wedgeSub) Validate(ctx *Ctx) Action { return Done }

// loopSub never converges: it keeps committing increments forever.
type loopSub struct {
	tbl *Table
	row RowID
	rec *storage.IterativeRecord
	buf Payload
}

func (s *loopSub) Begin(ctx *Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(Payload, 2)
}
func (s *loopSub) Execute(ctx *Ctx) {
	ctx.Read(s.rec, s.buf)
	s.buf.SetFloat64(1, s.buf.Float64(1)+1)
	ctx.Write(s.rec, s.buf)
}
func (s *loopSub) Validate(ctx *Ctx) Action { return Commit }

func flakySubs(tbl *Table, n int, target float64, panics int64) ([]IterativeTransaction, *atomic.Int64) {
	budget := &atomic.Int64{}
	budget.Store(panics)
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &flakySub{tbl: tbl, row: RowID(i), target: target, panicsLeft: budget}
	}
	return subs, budget
}

func readCounters(t *testing.T, db *DB, tbl *Table, n int) []float64 {
	t.Helper()
	tx := db.Begin()
	out := make([]float64, n)
	for i := range out {
		p, ok := tx.Read(tbl, RowID(i))
		if !ok {
			t.Fatalf("row %d unreadable", i)
		}
		out[i] = p.Float64(1)
	}
	return out
}

// TestSubmitMLPanicContained: the acceptance scenario — a planted panicking
// sub-transaction yields ErrJobPanicked (with the stack) from Wait, the
// uber-transaction aborts so the tables are untouched, and the database
// keeps serving runs afterwards.
func TestSubmitMLPanicContained(t *testing.T) {
	const n = 8
	db, tbl := openWithCounters(t, n)
	defer db.Close()

	subs, _ := flakySubs(tbl, n, 5, 1<<40) // panics forever, no retry
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		BatchSize: 2,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := h.Wait()
	if !errors.Is(werr, ErrJobPanicked) {
		t.Fatalf("Wait = %v, want ErrJobPanicked", werr)
	}
	var pe *resilience.PanicError
	if !errors.As(werr, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("error %v carries no stack evidence", werr)
	}
	for i, v := range readCounters(t, db, tbl, n) {
		if v != 0 {
			t.Fatalf("row %d = %v after aborted job, want 0", i, v)
		}
	}

	// The engine survived: a healthy run still commits.
	healthy, _ := flakySubs(tbl, n, 3, 0)
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      healthy,
	}); err != nil {
		t.Fatalf("database unusable after contained panic: %v", err)
	}
}

// TestRetrySucceedsAfterPanic: a one-shot planted panic aborts the first
// attempt; the retry policy resubmits and the second attempt commits the
// full result. Telemetry reports the resubmission.
func TestRetrySucceedsAfterPanic(t *testing.T) {
	const n, target = 16, 6.0
	db, tbl := openWithCounters(t, n)
	defer db.Close()

	subs, budget := flakySubs(tbl, n, target, 1)
	o := NewObserver()
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		BatchSize: 4,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
		Observer:  o,
		Retry:     &RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := h.Wait(); werr != nil {
		t.Fatalf("retried run failed: %v", werr)
	}
	if got := h.Attempts(); got != 2 {
		t.Fatalf("Attempts = %d, want 2", got)
	}
	if budget.Load() > 0 {
		t.Fatal("planted panic never fired")
	}
	for i, v := range readCounters(t, db, tbl, n) {
		if v != target {
			t.Fatalf("row %d = %v, want %v", i, v, target)
		}
	}
	if snap := o.Snapshot(); snap.Counters.Retries != 1 {
		t.Fatalf("telemetry Retries = %d, want 1", snap.Counters.Retries)
	}
}

// TestStallConvictedThroughFacade: a wedged sub-transaction must surface as
// ErrJobStalled from Wait instead of hanging it, with nothing published.
func TestStallConvictedThroughFacade(t *testing.T) {
	db, tbl := openWithCounters(t, 1)
	ws := &wedgeSub{release: make(chan struct{}), blocked: make(chan struct{})}
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation:    MLOptions{Level: Asynchronous},
		Attach:       []Attachment{{Table: tbl}},
		Subs:         []IterativeTransaction{ws},
		StallTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ws.blocked
	if _, werr := h.Wait(); !errors.Is(werr, ErrJobStalled) {
		t.Fatalf("Wait = %v, want ErrJobStalled", werr)
	}
	close(ws.release)
	db.Close()
}

// TestDeadlineRetiresThroughFacade: the acceptance scenario — a planted
// non-convergent job under a database-default deadline (WithDeadline) is
// retired with ErrJobDeadline within its budget, and its work is aborted.
func TestDeadlineRetiresThroughFacade(t *testing.T) {
	const deadline = 150 * time.Millisecond
	db := Open(WithWorkers(4), WithDeadline(deadline))
	defer db.Close()
	tbl, err := db.CreateTable("C", Column{Name: "ID", Type: Int64}, Column{Name: "V", Type: Float64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	rows := make([]Payload, n)
	for i := range rows {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		rows[i] = p
	}
	if err := db.BulkLoad(tbl, rows); err != nil {
		t.Fatal(err)
	}
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &loopSub{tbl: tbl, row: RowID(i)}
	}
	start := time.Now()
	_, werr := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		BatchSize: 2,
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	})
	if !errors.Is(werr, ErrJobDeadline) {
		t.Fatalf("RunML = %v, want ErrJobDeadline", werr)
	}
	if e := time.Since(start); e > 10*deadline {
		t.Fatalf("deadline enforced only after %v", e)
	}
	for i, v := range readCounters(t, db, tbl, n) {
		if v != 0 {
			t.Fatalf("row %d = %v after retired job, want 0", i, v)
		}
	}
}

// TestOverloadShedding: at the WithMaxInflight limit, SubmitML fast-fails
// with ErrOverloaded (counted in telemetry), and admission recovers once
// the in-flight job finishes.
func TestOverloadShedding(t *testing.T) {
	db2 := Open(WithWorkers(2), WithMaxInflight(1))
	defer db2.Close()
	tbl2, err := db2.CreateTable("C", Column{Name: "ID", Type: Int64}, Column{Name: "V", Type: Float64})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.BulkLoad(tbl2, []Payload{tbl2.Schema().NewPayload()}); err != nil {
		t.Fatal(err)
	}

	ws := &wedgeSub{release: make(chan struct{}), blocked: make(chan struct{})}
	h, err := db2.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Subs:      []IterativeTransaction{ws},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ws.blocked

	o := NewObserver()
	healthy, _ := flakySubs(tbl2, 1, 2, 0)
	if _, err := db2.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl2}},
		Subs:      healthy,
		Observer:  o,
	}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("SubmitML at limit = %v, want ErrOverloaded", err)
	}
	if snap := o.Snapshot(); snap.Counters.LoadSheds != 1 {
		t.Fatalf("telemetry LoadSheds = %d, want 1", snap.Counters.LoadSheds)
	}

	close(ws.release)
	if _, err := h.Wait(); err != nil {
		t.Fatalf("wedged job after release: %v", err)
	}
	if _, err := db2.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl2}},
		Subs:      healthy,
	}); err != nil {
		t.Fatalf("admission did not recover: %v", err)
	}
}

// TestAdmissionWaitBlocksInsteadOfShedding: with WithAdmissionWait, a
// SubmitML at the limit parks until a slot frees, then proceeds.
func TestAdmissionWaitBlocksInsteadOfShedding(t *testing.T) {
	db := Open(WithWorkers(2), WithMaxInflight(1), WithAdmissionWait())
	defer db.Close()
	tbl, err := db.CreateTable("C", Column{Name: "ID", Type: Int64}, Column{Name: "V", Type: Float64})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BulkLoad(tbl, []Payload{tbl.Schema().NewPayload()}); err != nil {
		t.Fatal(err)
	}

	ws := &wedgeSub{release: make(chan struct{}), blocked: make(chan struct{})}
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Subs:      []IterativeTransaction{ws},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ws.blocked

	admitted := make(chan error, 1)
	go func() {
		healthy, _ := flakySubs(tbl, 1, 2, 0)
		_, err := db.RunML(MLRun{
			Isolation: MLOptions{Level: Asynchronous},
			Attach:    []Attachment{{Table: tbl}},
			Subs:      healthy,
		})
		admitted <- err
	}()
	select {
	case err := <-admitted:
		t.Fatalf("second submission did not wait (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(ws.release)
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("waited submission failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waited submission never admitted")
	}

	// Cancelling the waiter's ctx must release it with the ctx error.
	ws2 := &wedgeSub{release: make(chan struct{}), blocked: make(chan struct{})}
	h2, err := db.SubmitML(context.Background(), MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Subs:      []IterativeTransaction{ws2},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ws2.blocked
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := db.SubmitML(ctx, MLRun{Isolation: MLOptions{Level: Asynchronous}}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled waiter = %v, want DeadlineExceeded", err)
	}
	close(ws2.release)
	if _, err := h2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultDegradation pins the built-in degradation curve.
func TestDefaultDegradation(t *testing.T) {
	cases := []struct {
		pressure float64
		batch    int
		want     int
	}{
		{0, 256, 256},
		{0.49, 256, 256},
		{0.5, 256, 128},
		{0.75, 256, 64},
		{1, 256, 64},
		{0.9, 40, 16},
		{0.9, 8, 16},
	}
	for _, c := range cases {
		if got := DefaultDegradation(c.pressure, c.batch); got != c.want {
			t.Errorf("DefaultDegradation(%v, %d) = %d, want %d", c.pressure, c.batch, got, c.want)
		}
	}
}

// TestSubmitMLNoGoroutineLeak: the regression test for the ctx watcher —
// submitting with a cancellable ctx that is never cancelled must not leave
// goroutines behind after the jobs complete.
func TestSubmitMLNoGoroutineLeak(t *testing.T) {
	db, tbl := openWithCounters(t, 4)
	defer db.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		subs, _ := flakySubs(tbl, 4, 3, 0)
		h, err := db.SubmitML(ctx, MLRun{
			Isolation: MLOptions{Level: Asynchronous},
			Attach:    []Attachment{{Table: tbl}},
			Subs:      subs,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRetryScheduleDeterministic: same (seed, policy) ⇒ identical backoff
// schedule through the public alias; a different seed reshuffles it.
func TestRetryScheduleDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, Jitter: 0.5, Seed: 42}
	a, b := p.Schedule(), p.Schedule()
	if len(a) != 5 {
		t.Fatalf("schedule length %d, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	p2 := p
	p2.Seed = 43
	c := p2.Schedule()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jittered schedules")
	}
}

// wedgeOnceSub wedges on its first Execute only; once released it behaves
// like a healthy counter sub. Exercises the stall-convict → quiesce → retry
// path: the retry must re-begin the same instance safely.
type wedgeOnceSub struct {
	tbl     *Table
	row     RowID
	target  float64
	release chan struct{}
	blocked chan struct{}
	wedged  atomic.Bool
	rec     *storage.IterativeRecord
	buf     Payload
	cur     float64
}

func (s *wedgeOnceSub) Begin(ctx *Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(Payload, 2)
}

func (s *wedgeOnceSub) Execute(ctx *Ctx) {
	if s.wedged.CompareAndSwap(false, true) {
		close(s.blocked)
		<-s.release
		return // convicted attempt: write nothing
	}
	ctx.Read(s.rec, s.buf)
	s.cur = s.buf.Float64(1) + 1
	s.buf.SetFloat64(1, s.cur)
	ctx.Write(s.rec, s.buf)
}

func (s *wedgeOnceSub) Validate(ctx *Ctx) Action {
	if s.cur >= s.target {
		return Done
	}
	return Commit
}

// TestStallRetryAfterQuiesce: a transiently wedged first attempt is convicted
// by the watchdog, the supervisor waits for the woken worker to acknowledge
// the cancellation, and the retry — re-beginning the same sub instances on
// freshly installed iterative records — commits the full result.
func TestStallRetryAfterQuiesce(t *testing.T) {
	const target = 4.0
	db, tbl := openWithCounters(t, 1)
	defer db.Close()

	ws := &wedgeOnceSub{tbl: tbl, row: 0, target: target,
		release: make(chan struct{}), blocked: make(chan struct{})}
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation:    MLOptions{Level: Asynchronous},
		Attach:       []Attachment{{Table: tbl}},
		Subs:         []IterativeTransaction{ws},
		StallTimeout: 60 * time.Millisecond,
		Retry:        &RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ws.blocked
	// Hold the worker wedged past the conviction, then let it wake so the
	// supervisor's quiesce succeeds and the retry proceeds.
	time.Sleep(150 * time.Millisecond)
	close(ws.release)
	if _, werr := h.Wait(); werr != nil {
		t.Fatalf("retried stalled run failed: %v", werr)
	}
	if got := h.Attempts(); got != 2 {
		t.Fatalf("Attempts = %d, want 2", got)
	}
	if v := readCounters(t, db, tbl, 1)[0]; v != target {
		t.Fatalf("row 0 = %v, want %v", v, target)
	}
}

// TestWedgedForeverStallNotRetried: when the wedged worker never
// acknowledges the cancellation, resubmitting the same sub instances would
// be unsafe — the supervisor must resolve terminally with ErrJobStalled
// after a single attempt instead of retrying underneath the wedge.
func TestWedgedForeverStallNotRetried(t *testing.T) {
	db, tbl := openWithCounters(t, 1)
	ws := &wedgeSub{release: make(chan struct{}), blocked: make(chan struct{})}
	h, err := db.SubmitML(context.Background(), MLRun{
		Isolation:    MLOptions{Level: Asynchronous},
		Attach:       []Attachment{{Table: tbl}},
		Subs:         []IterativeTransaction{ws},
		StallTimeout: 60 * time.Millisecond,
		Retry:        &RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-ws.blocked
	if _, werr := h.Wait(); !errors.Is(werr, ErrJobStalled) {
		t.Fatalf("Wait = %v, want ErrJobStalled", werr)
	}
	if got := h.Attempts(); got != 1 {
		t.Fatalf("Attempts = %d, want 1 (no retry under a live wedge)", got)
	}
	close(ws.release)
	db.Close()
}

// TestChaosRetryMatchesControl: the acceptance sweep — under a hostile
// chaos schedule plus planted panics, a retried run's committed result
// must equal a fault-free control run's, for every seed. Uber-transaction
// atomicity is what makes this hold: each failed attempt aborted without
// publishing, so the committing attempt saw pristine state.
func TestChaosRetryMatchesControl(t *testing.T) {
	const n, target = 24, 5.0
	ref := func() []float64 {
		db, tbl := openWithCounters(t, n)
		defer db.Close()
		subs, _ := flakySubs(tbl, n, target, 0)
		if _, err := db.RunML(MLRun{
			Isolation: MLOptions{Level: Asynchronous},
			BatchSize: 4,
			Attach:    []Attachment{{Table: tbl}},
			Subs:      subs,
		}); err != nil {
			t.Fatalf("control run failed: %v", err)
		}
		return readCounters(t, db, tbl, n)
	}()

	for _, seed := range []int64{1, 7, 1337} {
		db, tbl := openWithCounters(t, n)
		inj := chaos.NewSeeded(seed, 4, chaos.DefaultConfig())
		subs, _ := flakySubs(tbl, n, target, 2) // first two attempts panic
		h, err := db.SubmitML(context.Background(), MLRun{
			Isolation: MLOptions{Level: Asynchronous},
			BatchSize: 4,
			Attach:    []Attachment{{Table: tbl}},
			Subs:      subs,
			Chaos:     inj,
			Retry:     &RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, Seed: seed},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, werr := h.Wait(); werr != nil {
			t.Fatalf("seed %d: retried run failed terminally: %v", seed, werr)
		}
		if got := h.Attempts(); got != 3 {
			t.Fatalf("seed %d: Attempts = %d, want 3", seed, got)
		}
		got := readCounters(t, db, tbl, n)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("seed %d: row %d = %v, control = %v", seed, i, got[i], ref[i])
			}
		}
		if inj.Faults() == 0 {
			t.Fatalf("seed %d: chaos injected nothing — trial vacuous", seed)
		}
		db.Close()
	}
}

package db4ml

import (
	"context"
	"errors"
	"testing"
	"time"

	"db4ml/internal/exec"
	"db4ml/internal/graph"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/ml/pagerank"
	"db4ml/internal/storage"
)

// loadQueryTable fills a (ID, K, V) table: K = ID % groups, V = float64(ID).
func loadQueryTable(t *testing.T, db *DB, rows, groups int) *Table {
	t.Helper()
	tbl, err := db.CreateTable("Fact",
		Column{Name: "ID", Type: Int64},
		Column{Name: "K", Type: Int64},
		Column{Name: "V", Type: Float64})
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([]Payload, rows)
	for i := range payloads {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetInt64(1, int64(i%groups))
		p.SetFloat64(2, float64(i))
		payloads[i] = p
	}
	if err := db.BulkLoad(tbl, payloads); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestRunQueryEndToEnd(t *testing.T) {
	db := Open()
	defer db.Close()
	tbl := loadQueryTable(t, db, 500, 5)

	// SELECT K, SUM(V) FROM Fact WHERE K >= 3 GROUP BY K ORDER BY sum DESC
	q := Limit(SortBy(
		Aggregate(Filter(Scan(tbl), IntCmp("K", Ge, 3)),
			Sum, "K", "total", Col("V")),
		"total", true), 2)
	out, err := db.RunQuery(context.Background(), QueryRun{Plan: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (groups 3 and 4)", len(out.Rows))
	}
	// Group 4 sums higher than group 3 (V = ID, same count per group).
	if out.Rows[0].Int64(0) != 4 || out.Rows[1].Int64(0) != 3 {
		t.Fatalf("ordering wrong: %v", out.Rows)
	}
	var want3, want4 float64
	for i := 0; i < 500; i++ {
		switch i % 5 {
		case 3:
			want3 += float64(i)
		case 4:
			want4 += float64(i)
		}
	}
	if out.Rows[0].Float64(1) != want4 || out.Rows[1].Float64(1) != want3 {
		t.Fatalf("sums wrong: %v (want %g, %g)", out.Rows, want4, want3)
	}
}

func TestPrepareQueryStreamingCursor(t *testing.T) {
	db := Open()
	defer db.Close()
	tbl := loadQueryTable(t, db, 100, 4)
	prep, err := db.PrepareQuery(Filter(Scan(tbl), IntCmp("K", Eq, 1)))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := prep.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		tup, ok := cur.Next()
		if !ok {
			break
		}
		if tup.Int64(1) != 1 {
			t.Fatalf("filter leaked row %v", tup)
		}
		n++
	}
	cur.Close()
	if n != 25 {
		t.Fatalf("streamed %d rows, want 25", n)
	}
	if db.Manager().ActiveSnapshots() != 0 {
		t.Fatal("cursor Close leaked a snapshot pin")
	}
}

func TestSubmitQueryErrors(t *testing.T) {
	db := Open()
	tbl := loadQueryTable(t, db, 10, 2)

	// A broken plan fails synchronously at Prepare.
	if _, err := db.SubmitQuery(context.Background(), QueryRun{
		Plan: Filter(Scan(tbl), IntCmp("NoSuchCol", Eq, 0)),
	}); err == nil {
		t.Fatal("bad column must fail SubmitQuery synchronously")
	}

	db.Close()
	if _, err := db.SubmitQuery(context.Background(), QueryRun{Plan: Scan(tbl)}); err != ErrClosed {
		t.Fatalf("after Close: err = %v, want ErrClosed", err)
	}
}

// slowQuery is a plan whose opaque predicate sleeps per row, giving the
// supervision tests something to cancel and deadline against. Rows must
// comfortably exceed the cursor's context-check stride (256).
func slowQuery(tbl *Table, perRow time.Duration) *Plan {
	return Filter(Scan(tbl), TuplePred(func(Tuple) bool {
		time.Sleep(perRow)
		return true
	}))
}

func TestSubmitQueryDeadline(t *testing.T) {
	db := Open()
	defer db.Close()
	tbl := loadQueryTable(t, db, 600, 2)
	h, err := db.SubmitQuery(context.Background(), QueryRun{
		Plan:     slowQuery(tbl, 100*time.Microsecond),
		Deadline: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := h.Wait(); !errors.Is(werr, ErrJobDeadline) {
		t.Fatalf("err = %v, want ErrJobDeadline", werr)
	}
}

func TestSubmitQueryCancel(t *testing.T) {
	db := Open()
	defer db.Close()
	tbl := loadQueryTable(t, db, 600, 2)
	h, err := db.SubmitQuery(context.Background(), QueryRun{
		Plan: slowQuery(tbl, 100*time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Cancel()
	if _, werr := h.Wait(); !errors.Is(werr, ErrJobCancelled) {
		t.Fatalf("err = %v, want ErrJobCancelled", werr)
	}
}

// queryFlakySub panics on every execution until the shared gate flips — the
// retry test's injected transient fault.
type queryFlakySub struct {
	tbl  *Table
	row  RowID
	fail bool
	rec  *storage.IterativeRecord
	buf  Payload
}

func (s *queryFlakySub) Begin(ctx *Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(Payload, 2)
	s.buf.SetInt64(0, int64(s.row))
}

func (s *queryFlakySub) Execute(ctx *Ctx) {
	if s.fail {
		panic("transient fault")
	}
	s.buf.SetFloat64(1, 42)
	ctx.Write(s.rec, s.buf)
}

func (s *queryFlakySub) Validate(ctx *Ctx) Action { return Done }

// TestSubmitQueryRetriesIterate: a query whose iterate job panics on the
// first attempt must be retried under the policy (the failed attempt's
// uber-transaction aborted, so the rerun starts clean) and succeed on the
// second.
func TestSubmitQueryRetriesIterate(t *testing.T) {
	db := Open()
	defer db.Close()
	tbl, err := db.CreateTable("State",
		Column{Name: "ID", Type: Int64},
		Column{Name: "X", Type: Float64})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Payload, 8)
	for i := range rows {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		rows[i] = p
	}
	if err := db.BulkLoad(tbl, rows); err != nil {
		t.Fatal(err)
	}

	builds := 0
	spec := IterateSpec{
		Table:     tbl,
		Isolation: MLOptions{Level: Asynchronous},
		Build: func(ts Timestamp) ([]itx.Sub, func(int) int, error) {
			// Each retry attempt rebuilds from scratch; only the first
			// attempt's subs carry the injected fault.
			builds++
			subs := make([]itx.Sub, tbl.NumRows())
			for i := range subs {
				subs[i] = &queryFlakySub{tbl: tbl, row: RowID(i), fail: builds == 1}
			}
			return subs, nil, nil
		},
	}
	h, err := db.SubmitQuery(context.Background(), QueryRun{
		Plan:  Iterate(spec),
		Retry: &RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, werr := h.Wait()
	if werr != nil {
		t.Fatalf("retried query failed: %v", werr)
	}
	if h.Attempts() != 2 {
		t.Fatalf("attempts = %d, want 2", h.Attempts())
	}
	if len(out.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(out.Rows))
	}
	for _, r := range out.Rows {
		if r.Float64(1) != 42 {
			t.Fatalf("iterate output not converged state: %v", r)
		}
	}
	if len(h.IterStats()) != 1 || h.IterStats()[0].CommitTS == 0 {
		t.Fatalf("iterate stats missing: %+v", h.IterStats())
	}
}

// TestPageRankViaIterateMatchesDirectExactly is the tentpole acceptance
// check: PageRank run through the plan layer's iterate node must produce
// bit-identical ranks to the same configuration submitted directly as an
// ML job. Both paths share pagerank.Normalized + pagerank.BuildSubs, run
// under the synchronous level (deterministic bulk-synchronous rounds with
// global convergence), and read the converged table at the job's own
// commit timestamp.
func TestPageRankViaIterateMatchesDirectExactly(t *testing.T) {
	g := graph.ErdosRenyi(300, 1800, 7)
	cfg := pagerank.Config{
		Exec:      exec.Config{Workers: 4},
		Isolation: MLOptions{Level: Synchronous},
	}

	// Path 1: direct submission (pagerank.Run drives the uber-transaction).
	dbA := Open(WithWorkers(4))
	defer dbA.Close()
	nodeA, edgeA, err := pagerank.LoadTables(dbA.Manager(), g)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := pagerank.Run(dbA.Manager(), nodeA, edgeA, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Path 2: the same job as an iterate plan node, composed with a
	// relational consumer (sort by rank, keep all rows) so the result
	// flows through the full operator path.
	dbB := Open(WithWorkers(4))
	defer dbB.Close()
	nodeB, edgeB, err := pagerank.LoadTables(dbB.Manager(), g)
	if err != nil {
		t.Fatal(err)
	}
	ncfg := cfg.Normalized()
	q := Iterate(IterateSpec{
		Table:     nodeB,
		Versions:  ncfg.Versions,
		Isolation: ncfg.Isolation,
		Exec:      ncfg.Exec,
		Build: func(ts Timestamp) ([]itx.Sub, func(int) int, error) {
			return pagerank.BuildSubs(nodeB, edgeB, ts, ncfg)
		},
	})
	out, err := db4mlRunPlanOnPool(t, dbB, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != g.NumNodes() {
		t.Fatalf("iterate emitted %d rows, want %d", len(out.Rows), g.NumNodes())
	}
	for _, r := range out.Rows {
		v := r.Int64(pagerank.ColNodeID)
		if got, want := r.Float64(pagerank.ColPR), direct.Ranks[v]; got != want {
			t.Fatalf("node %d: plan-path PR %.17g != direct PR %.17g", v, got, want)
		}
	}

	// The committed table states agree too: a plain snapshot read after
	// both runs sees identical ranks.
	if dbA.Stable() == 0 || dbB.Stable() == 0 {
		t.Fatal("commits not published")
	}
}

// db4mlRunPlanOnPool runs q on db's shared pool via the supervised path.
func db4mlRunPlanOnPool(t *testing.T, db *DB, q *Plan) (*Relation, error) {
	t.Helper()
	return db.RunQuery(context.Background(), QueryRun{Plan: q})
}

// TestIterateComposesWithRelationalOps: top-3 PageRank nodes as ONE plan —
// the paper-motivating composition of iterative ML and relational
// operators in a single execution path.
func TestIterateComposesWithRelationalOps(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 11)
	db := Open(WithWorkers(4))
	defer db.Close()
	node, edge, err := pagerank.LoadTables(db.Manager(), g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pagerank.Config{
		Exec:      exec.Config{Workers: 4},
		Isolation: isolation.Options{Level: Synchronous},
	}.Normalized()
	q := Limit(SortBy(Iterate(IterateSpec{
		Table:     node,
		Isolation: cfg.Isolation,
		Exec:      cfg.Exec,
		Build: func(ts Timestamp) ([]itx.Sub, func(int) int, error) {
			return pagerank.BuildSubs(node, edge, ts, cfg)
		},
	}), "PR", true), 3)
	out, err := db.RunQuery(context.Background(), QueryRun{Plan: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 {
		t.Fatalf("top-k rows = %d, want 3", len(out.Rows))
	}
	if out.Rows[0].Float64(1) < out.Rows[1].Float64(1) ||
		out.Rows[1].Float64(1) < out.Rows[2].Float64(1) {
		t.Fatalf("top-k not sorted: %v", out.Rows)
	}
	// Cross-check against an independent full read of the converged table.
	all, err := db.RunQuery(context.Background(), QueryRun{Plan: Scan(node)})
	if err != nil {
		t.Fatal(err)
	}
	var max float64
	for _, r := range all.Rows {
		if pr := r.Float64(1); pr > max {
			max = pr
		}
	}
	if out.Rows[0].Float64(1) != max {
		t.Fatalf("top-1 %g != table max %g", out.Rows[0].Float64(1), max)
	}
}

package db4ml

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"db4ml/internal/introspect"
	"db4ml/internal/obs"
	"db4ml/internal/plan"
	"db4ml/internal/relational"
	"db4ml/internal/resilience"
	"db4ml/internal/trace"
)

// The declarative query layer (internal/plan), re-exported. Build a
// logical plan from the node constructors, then run it through
// PrepareQuery (streaming cursor) or SubmitQuery/RunQuery (supervised,
// materialized, sharing the ML jobs' admission gate, deadline, and retry
// machinery). See DESIGN.md §14.
type (
	// Plan is one logical plan node; trees are built with Scan, Filter,
	// Join, Iterate, and friends.
	Plan = plan.Node
	// QueryPred is a filter conjunct (IntCmp, FloatCmp, RowRange, ...).
	QueryPred = plan.Pred
	// Scalar is a projection/aggregation expression (Col, Const, Add, ...).
	Scalar = plan.Scalar
	// IterateSpec describes an iterate node's embedded ML job.
	IterateSpec = plan.IterateSpec
	// PreparedQuery is a validated, rewritten plan ready to Execute.
	PreparedQuery = plan.Prepared
	// QueryCursor streams a prepared query's result tuples.
	QueryCursor = plan.Cursor
	// QueryOpStat is one operator's rows-in/rows-out account.
	QueryOpStat = plan.OpStat
	// ExplainNode is one operator of an EXPLAIN / EXPLAIN ANALYZE plan
	// tree (see DB.ExplainQuery and QueryHandle.Explain; Render formats
	// it as an indented tree).
	ExplainNode = plan.ExplainNode
	// IterStats is the executor account of one iterate node's ML job.
	IterStats = plan.IterStats
	// Relation is a materialized query result.
	Relation = relational.Relation
	// Tuple is one result row.
	Tuple = relational.Tuple
	// AggKind selects the aggregation function (Sum, Count).
	AggKind = relational.AggKind
	// CmpOp is a predicate comparison operator (Eq, Lt, Ge, ...).
	CmpOp = plan.CmpOp
)

// Plan node constructors, predicates, and expressions (see internal/plan).
var (
	Scan      = plan.Scan
	Static    = plan.Static
	Filter    = plan.Filter
	Project   = plan.Project
	Join      = plan.Join
	LeftJoin  = plan.LeftJoin
	Aggregate = plan.Aggregate
	SortBy    = plan.SortBy
	Limit     = plan.Limit
	Iterate   = plan.Iterate

	IntCmp    = plan.IntCmp
	FloatCmp  = plan.FloatCmp
	ColTest   = plan.ColTest
	TuplePred = plan.TuplePred
	RowRange  = plan.RowRange

	Col   = plan.Col
	Const = plan.Const
	Add   = plan.Add
	Sub   = plan.Sub
	Mul   = plan.Mul
	Div   = plan.Div
)

// Aggregation kinds.
const (
	Sum   = relational.Sum
	Count = relational.Count
)

// Predicate comparison operators.
const (
	Eq = plan.Eq
	Ne = plan.Ne
	Lt = plan.Lt
	Le = plan.Le
	Gt = plan.Gt
	Ge = plan.Ge
)

// QueryRun describes one supervised query execution.
type QueryRun struct {
	// Plan is the logical plan to run.
	Plan *Plan
	// Deadline is the query's wall-clock budget; past it the run is
	// cancelled and Wait reports ErrJobDeadline. 0 uses the database
	// default (WithDeadline), which may itself be disabled.
	Deadline time.Duration
	// Retry overrides the database's abort-retry policy for this query;
	// nil inherits the default. Retrying is safe: a failed execution's
	// iterate jobs aborted without publishing, and pure reads have no
	// side effects.
	Retry *RetryPolicy
	// Observer, when non-nil, receives the query's counters
	// (plan_queries, plan_rows) and latency histogram. nil keeps
	// telemetry disabled — unless a debug server auto-attaches one.
	Observer *Observer
	// Tracer, when non-nil, records the query's plan/operator spans; nil
	// inherits the debug server's shared tracer when one is enabled.
	Tracer *Tracer
	// NoPushdown disables predicate pushdown, NoPresize disables hash
	// build pre-sizing — baseline switches for comparisons.
	NoPushdown bool
	NoPresize  bool
}

// QueryHandle tracks one in-flight SubmitQuery. Like JobHandle, one handle
// spans every retry attempt and Wait resolves only when the final attempt
// produced a result or failed terminally.
type QueryHandle struct {
	done       chan struct{}
	cancelOnce sync.Once
	cancelCh   chan struct{}
	attempts   atomic.Int32

	result  *Relation
	stats   []QueryOpStat
	iters   []IterStats
	explain *ExplainNode
	err     error
}

// Wait blocks until the query finished and returns the materialized
// result.
func (h *QueryHandle) Wait() (*Relation, error) {
	<-h.done
	return h.result, h.err
}

// Cancel stops the query: streaming halts at the next stride check, any
// in-flight iterate job is cancelled and aborted, and Wait reports
// ErrJobCancelled.
func (h *QueryHandle) Cancel() { h.cancelOnce.Do(func() { close(h.cancelCh) }) }

// Attempts returns how many times the query has been executed so far.
func (h *QueryHandle) Attempts() int { return int(h.attempts.Load()) }

// Done returns a channel closed when the query is finished.
func (h *QueryHandle) Done() <-chan struct{} { return h.done }

// Stats returns the final execution's per-operator row counts; valid after
// Wait.
func (h *QueryHandle) Stats() []QueryOpStat { return h.stats }

// IterStats returns the final execution's iterate-node accounts (one per
// embedded ML job); valid after Wait.
func (h *QueryHandle) IterStats() []IterStats { return h.iters }

// Explain returns the final execution's plan tree: EXPLAIN ANALYZE — per-
// operator rows in/out, elapsed time, and the planner's pushdown/pre-size
// annotations — for single-kernel queries, and the planner's EXPLAIN tree
// for scattered queries (whose fragments report no single cursor). Valid
// after Wait; nil when the query failed before planning.
func (h *QueryHandle) Explain() *ExplainNode {
	<-h.done
	return h.explain
}

// queryEnv assembles a plan.Env from the database's engine state plus the
// per-run overrides, mirroring how SubmitML resolves its JobConfig.
func (db *DB) queryEnv(run QueryRun) plan.Env {
	env := plan.Env{
		Mgr:        db.mgr,
		Pool:       db.pool,
		Obs:        run.Observer,
		Tracer:     run.Tracer,
		Job:        db.queryID.Add(1),
		NoPushdown: run.NoPushdown,
		NoPresize:  run.NoPresize,
	}
	if env.Tracer == nil {
		env.Tracer = db.tracer
	}
	return env
}

// PrepareQuery validates and plans p against this database, returning the
// prepared form for streaming execution:
//
//	prep, _ := db.PrepareQuery(db4ml.Filter(db4ml.Scan(tbl), pred))
//	cur, _ := prep.Execute(ctx)
//	defer cur.Close()
//	for t, ok := cur.Next(); ok; t, ok = cur.Next() { ... }
//
// PrepareQuery is the unsupervised path: no admission gate, deadline, or
// retry — the caller owns the cursor's lifetime. Use SubmitQuery/RunQuery
// for supervised, materialized execution.
func (db *DB) PrepareQuery(p *Plan) (*PreparedQuery, error) {
	return plan.Prepare(p, db.queryEnv(QueryRun{}))
}

// ExplainQuery validates and rewrites p exactly as execution would —
// filter merge, predicate pushdown, pre-sizing — and returns the annotated
// operator tree without executing anything: EXPLAIN. Render the result
// with ExplainNode.Render; run the query through SubmitQuery and read
// QueryHandle.Explain for the measured EXPLAIN ANALYZE form.
func (db *DB) ExplainQuery(p *Plan) (*ExplainNode, error) {
	return plan.Explain(p, db.queryEnv(QueryRun{}))
}

// SubmitQuery starts one supervised query execution and returns without
// waiting. The query shares the ML jobs' supervision machinery: admission
// through the same WithMaxInflight gate, the database's default deadline,
// and the abort-retry policy (safe — a failed execution published
// nothing). The result is fully materialized into the handle.
func (db *DB) SubmitQuery(ctx context.Context, run QueryRun) (*QueryHandle, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.handles.Add(1)
	db.mu.Unlock()

	if err := db.gate.Acquire(ctx, db.admitWait); err != nil {
		db.handles.Done()
		if run.Observer != nil && err == resilience.ErrOverloaded {
			run.Observer.Inc(0, obs.LoadSheds)
		}
		return nil, err
	}

	env := db.queryEnv(run)
	if db.agg != nil {
		if env.Obs == nil {
			env.Obs = obs.New()
		}
		db.agg.Attach(env.Obs)
	}
	prep, err := plan.Prepare(run.Plan, env)
	if err != nil {
		if db.agg != nil {
			db.agg.Complete(env.Obs)
		}
		db.gate.Release()
		db.handles.Done()
		return nil, err
	}
	deadline := run.Deadline
	if deadline <= 0 {
		deadline = db.deadline
	}
	policy := db.retry
	if run.Retry != nil {
		policy = *run.Retry
	}

	h := &QueryHandle{done: make(chan struct{}), cancelCh: make(chan struct{})}
	go db.superviseQuery(ctx, h, prep, env, deadline, policy)
	return h, nil
}

// superviseQuery drives one SubmitQuery handle to resolution, reusing the
// supervision vocabulary of the ML path: wall-clock deadline via context,
// cancellation, and policy-driven retry with deterministic backoff.
func (db *DB) superviseQuery(ctx context.Context, h *QueryHandle, prep *PreparedQuery,
	env plan.Env, deadline time.Duration, policy RetryPolicy) {
	defer db.handles.Done()
	defer db.gate.Release()
	if db.agg != nil {
		defer db.agg.Complete(env.Obs)
	}
	started := time.Now()
	defer func() {
		rows := 0
		if h.result != nil {
			rows = len(h.result.Rows)
		}
		state := "done"
		if h.err != nil {
			state = "failed: " + h.err.Error()
		}
		info := introspect.QueryInfo{
			ID: env.Job, State: state, Rows: rows,
			Attempts:      int(h.attempts.Load()),
			ElapsedMillis: time.Since(started).Milliseconds(),
		}
		if h.explain != nil {
			info.Explain = h.explain.Render()
		}
		db.recordQuery(info)
	}()
	defer close(h.done)

	token := env.Job
	for attempt := 1; ; attempt++ {
		h.attempts.Store(int32(attempt))
		var qctx context.Context
		var cancel context.CancelFunc
		if deadline > 0 {
			qctx, cancel = context.WithTimeout(ctx, deadline)
		} else {
			qctx, cancel = context.WithCancel(ctx)
		}
		watcherDone := make(chan struct{})
		go func() {
			select {
			case <-h.cancelCh:
				cancel()
			case <-watcherDone:
			}
		}()
		rel, stats, iters, expl, err := runOnce(qctx, prep)
		close(watcherDone)
		cancel()
		if expl == nil {
			// The execution died before producing a cursor; fall back to the
			// planner's tree so Explain (and /debug/query) still show the plan.
			expl = prep.Explain()
		}
		h.explain = expl
		switch {
		case err == nil:
			h.result, h.stats, h.iters = rel, stats, iters
			return
		case cancelled(h.cancelCh):
			h.err = ErrJobCancelled
			return
		case ctx.Err() != nil:
			h.err = ctx.Err()
			return
		case errors.Is(err, context.DeadlineExceeded):
			// The per-query budget expired: same verdict as an ML job that
			// outran WithDeadline.
			if env.Obs != nil {
				env.Obs.Inc(0, obs.DeadlineAborts)
			}
			env.Tracer.Instant(0, trace.KindAbort, env.Job, trace.AbortDeadline)
			h.err = ErrJobDeadline
			return
		}
		delay, retry := policy.ShouldRetryFor(token, err, attempt)
		if !retry {
			h.err = err
			return
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			h.err = ctx.Err()
			return
		case <-h.cancelCh:
			timer.Stop()
			h.err = err
			return
		}
		if env.Obs != nil {
			env.Obs.Add(0, obs.Retries, 1)
		}
		env.Tracer.Instant(0, trace.KindRetry, env.Job, int64(attempt+1))
	}
}

// runOnce executes the prepared plan once and materializes the result,
// returning the drained cursor's EXPLAIN ANALYZE tree alongside.
func runOnce(ctx context.Context, prep *PreparedQuery) (*Relation, []QueryOpStat, []IterStats, *ExplainNode, error) {
	cur, err := prep.Execute(ctx)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	defer cur.Close()
	out := &Relation{Cols: append([]string(nil), prep.Columns()...)}
	for {
		t, ok := cur.Next()
		if !ok {
			break
		}
		out.Rows = append(out.Rows, t.Clone())
	}
	if err := cur.Err(); err != nil {
		cur.Close()
		return nil, nil, nil, cur.Explain(), err
	}
	cur.Close()
	return out, cur.Stats(), cur.IterStats(), cur.Explain(), nil
}

// queryInfos returns the recent-query table for /debug/query.
func (db *DB) queryInfos() []introspect.QueryInfo {
	db.jobsMu.Lock()
	defer db.jobsMu.Unlock()
	return append([]introspect.QueryInfo(nil), db.queries...)
}

// recordQuery appends one settled query to the /debug/query ring. No-op
// without a debug server.
func (db *DB) recordQuery(info introspect.QueryInfo) {
	if db.debug == nil {
		return
	}
	db.jobsMu.Lock()
	db.queries = append(db.queries, info)
	if len(db.queries) > maxRecentJobs {
		db.queries = db.queries[len(db.queries)-maxRecentJobs:]
	}
	db.jobsMu.Unlock()
}

// RunQuery executes one query and blocks until its materialized result is
// ready — SubmitQuery followed by Wait.
func (db *DB) RunQuery(ctx context.Context, run QueryRun) (*Relation, error) {
	h, err := db.SubmitQuery(ctx, run)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}

package db4ml

// Overhead benchmarks for the observability surface. The acceptance budget
// is <2% on the instrumented hot paths: a 2PC prepare or WAL group-commit
// flush runs tens of microseconds, so the per-event costs measured here
// (nanoseconds, zero allocations) keep the instrumentation far inside it.
// Run with -benchmem: every sub-benchmark must report 0 allocs/op.

import (
	"testing"

	"db4ml/internal/obs"
	"db4ml/internal/trace"
)

// BenchmarkDistTraceOverhead measures the distributed-tracing hot path:
// the disabled branch (nil tracer — what every instrumented call site in
// the coordinator, WAL, and checkpointer pays when tracing is off) and the
// enabled record path writing one 2PC prepare span into the ring.
func BenchmarkDistTraceOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var tr *trace.Tracer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			at := tr.Now()
			tr.Span(0, trace.KindPrepare, uint64(i), 0, at, tr.Now()-at)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		tr := trace.New(1, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			at := tr.Now()
			tr.Span(0, trace.KindPrepare, uint64(i), 0, at, tr.Now()-at)
		}
	})
}

// BenchmarkWALMetricsOverhead measures the durability metrics hot path as
// the WAL's group-commit flusher exercises it: one fsync counter bump, the
// fsync-latency histogram record, and the batch-size histogram record per
// flushed batch.
func BenchmarkWALMetricsOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var o *obs.Observer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if o != nil {
				o.Inc(0, obs.WALFsyncs)
				o.RecordLatency(0, obs.WALFsyncLatency, 1234)
				o.RecordLatency(0, obs.WALBatchRecords, 8)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		o := obs.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.Inc(0, obs.WALFsyncs)
			o.RecordLatency(0, obs.WALFsyncLatency, 1234)
			o.RecordLatency(0, obs.WALBatchRecords, 8)
		}
	})
}

package db4ml_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (each delegates to the experiment runner in quick mode; run
// `go run ./cmd/db4ml-bench -exp <id>` for the full-scale version and the
// printed paper-style tables), plus ablation benchmarks for the design
// choices called out in DESIGN.md §5 and micro-benchmarks of the hot
// storage and scheduling primitives.

import (
	"db4ml"

	"io"
	"testing"

	"db4ml/internal/exec"
	"db4ml/internal/experiments"
	"db4ml/internal/graph"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/ml/pagerank"
	"db4ml/internal/obs"
	"db4ml/internal/queue"
	"db4ml/internal/storage"
	"db4ml/internal/trace"
	"db4ml/internal/txn"
)

func quickOpts() experiments.Options {
	return experiments.Options{Out: io.Discard, Quick: true, Runs: 1, MaxWorkers: 4}
}

func benchExperiment(b *testing.B, fn func(experiments.Options) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(quickOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkFig1PageRankEngines(b *testing.B)     { benchExperiment(b, experiments.Fig1) }
func BenchmarkTable1Datasets(b *testing.B)          { benchExperiment(b, experiments.Table1) }
func BenchmarkFig8PageRankScalability(b *testing.B) { benchExperiment(b, experiments.Fig8) }
func BenchmarkFig9IsolationLevels(b *testing.B)     { benchExperiment(b, experiments.Fig9) }
func BenchmarkFig10aTxnOverhead(b *testing.B)       { benchExperiment(b, experiments.Fig10a) }
func BenchmarkFig10bBatchSizes(b *testing.B)        { benchExperiment(b, experiments.Fig10b) }
func BenchmarkFig11VersionOverhead(b *testing.B)    { benchExperiment(b, experiments.Fig11) }
func BenchmarkTable2Datasets(b *testing.B)          { benchExperiment(b, experiments.Table2) }
func BenchmarkFig12SGDEngines(b *testing.B)         { benchExperiment(b, experiments.Fig12) }
func BenchmarkFig13SGDScalability(b *testing.B)     { benchExperiment(b, experiments.Fig13) }
func BenchmarkFig14SGDMicroArch(b *testing.B)       { benchExperiment(b, experiments.Fig14) }

// --- Ablations (DESIGN.md §5) --------------------------------------------

func benchGraph() *graph.Graph { return graph.BarabasiAlbert(1500, 12, 99) }

func runPR(b *testing.B, cfg pagerank.Config, g *graph.Graph) {
	b.Helper()
	mgr := txn.NewManager()
	node, edge, err := pagerank.LoadTables(mgr, g)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pagerank.Run(mgr, node, edge, cfg); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationSingleVersionHint compares bounded-staleness PageRank
// with the single-writer hint (one version slot, relaxed installs) against
// the general multi-version seqlock storage (Section 5.1).
func BenchmarkAblationSingleVersionHint(b *testing.B) {
	g := benchGraph()
	b.Run("hint-single-version", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runPR(b, pagerank.Config{
				Exec:      exec.Config{Workers: 4, MaxIterations: 10},
				Isolation: isolation.Options{Level: isolation.BoundedStaleness, Staleness: 8},
				Epsilon:   -1,
			}, g)
		}
	})
	b.Run("general-multi-version", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runPR(b, pagerank.Config{
				Exec:      exec.Config{Workers: 4, MaxIterations: 10},
				Isolation: isolation.Options{Level: isolation.BoundedStaleness, Staleness: 8},
				Epsilon:   -1,
				Versions:  10,
			}, g)
		}
	})
}

// BenchmarkAblationQueueTopology compares per-NUMA-region queues against a
// single global queue (Regions=1) for asynchronous PageRank (Section 5.2).
func BenchmarkAblationQueueTopology(b *testing.B) {
	g := benchGraph()
	run := func(b *testing.B, regions int) {
		for i := 0; i < b.N; i++ {
			runPR(b, pagerank.Config{
				Exec: exec.Config{
					Workers:       4,
					Topology:      topo(regions, 4),
					MaxIterations: 10,
				},
				Isolation: isolation.Options{Level: isolation.Asynchronous},
				Epsilon:   -1,
			}, g)
		}
	}
	b.Run("per-region-queues", func(b *testing.B) { run(b, 2) })
	b.Run("single-global-queue", func(b *testing.B) { run(b, 1) })
}

// BenchmarkAblationSeqlock compares the general seqlock snapshot install
// against the relaxed single-version store (Section 5.1's async fast
// path).
func BenchmarkAblationSeqlock(b *testing.B) {
	payload := storage.Payload{42}
	b.Run("seqlock-install", func(b *testing.B) {
		rec := storage.NewIterativeRecord(storage.Payload{0}, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Install(payload)
		}
	})
	b.Run("relaxed-install", func(b *testing.B) {
		rec := storage.NewIterativeRecord(storage.Payload{0}, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.InstallRelaxed(payload)
		}
	})
}

// uncachedPRSub re-resolves its neighbor handles from the table on every
// iteration instead of caching them in tx_state — the access pattern the
// paper's transaction-local storage avoids (Section 2.3).
type uncachedPRSub struct {
	node    *nodeTable
	row     int
	buf     storage.Payload
	iters   uint64
	damping float64
}

type nodeTable struct {
	tbl interface {
		IterRecord(row db4ml.RowID) *storage.IterativeRecord
	}
	inOf  [][]int32
	degOf []float64
}

func (s *uncachedPRSub) Begin(ctx *itx.Ctx) { s.buf = make(storage.Payload, 2) }
func (s *uncachedPRSub) Execute(ctx *itx.Ctx) {
	sum := 0.0
	for _, u := range s.node.inOf[s.row] {
		rec := s.node.tbl.IterRecord(db4ml.RowID(u)) // re-resolve every time
		ctx.Read(rec, s.buf)
		sum += s.buf.Float64(1) / s.node.degOf[u]
	}
	rec := s.node.tbl.IterRecord(db4ml.RowID(s.row))
	s.buf.SetInt64(0, int64(s.row))
	s.buf.SetFloat64(1, 0.15+s.damping*sum)
	ctx.Write(rec, s.buf)
}
func (s *uncachedPRSub) Validate(ctx *itx.Ctx) itx.Action {
	if ctx.Iteration()+1 >= s.iters {
		return itx.Done
	}
	return itx.Commit
}

// cachedPRSub is the twin of uncachedPRSub that resolves its record
// handles once in Begin (the paper's tx_state caching) instead of per
// iteration; everything else is identical.
type cachedPRSub struct {
	node    *nodeTable
	row     int
	buf     storage.Payload
	iters   uint64
	damping float64
	myRec   *storage.IterativeRecord
	nRecs   []*storage.IterativeRecord
}

func (s *cachedPRSub) Begin(ctx *itx.Ctx) {
	s.buf = make(storage.Payload, 2)
	s.myRec = s.node.tbl.IterRecord(db4ml.RowID(s.row))
	s.nRecs = make([]*storage.IterativeRecord, len(s.node.inOf[s.row]))
	for i, u := range s.node.inOf[s.row] {
		s.nRecs[i] = s.node.tbl.IterRecord(db4ml.RowID(u))
	}
}

func (s *cachedPRSub) Execute(ctx *itx.Ctx) {
	sum := 0.0
	for i, u := range s.node.inOf[s.row] {
		ctx.Read(s.nRecs[i], s.buf)
		sum += s.buf.Float64(1) / s.node.degOf[u]
	}
	s.buf.SetInt64(0, int64(s.row))
	s.buf.SetFloat64(1, 0.15+s.damping*sum)
	ctx.Write(s.myRec, s.buf)
}

func (s *cachedPRSub) Validate(ctx *itx.Ctx) itx.Action {
	if ctx.Iteration()+1 >= s.iters {
		return itx.Done
	}
	return itx.Commit
}

// BenchmarkAblationTxStateCache compares PageRank with tx_state-cached
// record handles against an otherwise identical variant that re-resolves
// handles through the table on every iteration (Section 2.3's motivation
// for transaction-local storage).
func BenchmarkAblationTxStateCache(b *testing.B) {
	g := benchGraph()
	mkSubs := func(tbl *db4ml.Table, nt *nodeTable, cached bool) []db4ml.IterativeTransaction {
		subs := make([]db4ml.IterativeTransaction, g.NumNodes())
		for v := range subs {
			if cached {
				subs[v] = &cachedPRSub{node: nt, row: v, iters: 10, damping: 0.85}
			} else {
				subs[v] = &uncachedPRSub{node: nt, row: v, iters: 10, damping: 0.85}
			}
		}
		return subs
	}
	run := func(b *testing.B, cached bool) {
		for i := 0; i < b.N; i++ {
			db := db4ml.Open()
			tbl, err := db.CreateTable("Node",
				db4ml.Column{Name: "NodeID", Type: db4ml.Int64},
				db4ml.Column{Name: "PR", Type: db4ml.Float64})
			if err != nil {
				b.Fatal(err)
			}
			rows := make([]db4ml.Payload, g.NumNodes())
			for v := range rows {
				p := tbl.Schema().NewPayload()
				p.SetInt64(0, int64(v))
				p.SetFloat64(1, 1/float64(g.NumNodes()))
				rows[v] = p
			}
			if err := db.BulkLoad(tbl, rows); err != nil {
				b.Fatal(err)
			}
			nt := &nodeTable{tbl: tbl, inOf: make([][]int32, g.NumNodes()), degOf: make([]float64, g.NumNodes())}
			for v := int32(0); int(v) < g.NumNodes(); v++ {
				nt.inOf[v] = g.InNeighbors(v)
				nt.degOf[v] = float64(g.OutDegree(v))
				if nt.degOf[v] == 0 {
					nt.degOf[v] = 1
				}
			}
			if _, err := db.RunML(db4ml.MLRun{
				Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
				Workers:   4,
				Attach:    []db4ml.Attachment{{Table: tbl}},
				Subs:      mkSubs(tbl, nt, cached),
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cached-tx-state", func(b *testing.B) { run(b, true) })
	b.Run("uncached-lookups", func(b *testing.B) { run(b, false) })
}

// BenchmarkObserverOverhead guards the telemetry layer's cost contract:
// with Observer nil the engine's hot paths pay a single nil-check, so the
// observer-off variant must stay within noise of the pre-telemetry engine;
// observer-on shows the actual price of collection. Compare the two
// sub-benchmarks to see the overhead of enabling telemetry.
func BenchmarkObserverOverhead(b *testing.B) {
	g := benchGraph()
	run := func(b *testing.B, o *obs.Observer) {
		for i := 0; i < b.N; i++ {
			runPR(b, pagerank.Config{
				Exec:      exec.Config{Workers: 4, MaxIterations: 10, Observer: o},
				Isolation: isolation.Options{Level: isolation.Asynchronous},
				Epsilon:   -1,
			}, g)
		}
	}
	b.Run("observer-off", func(b *testing.B) { run(b, nil) })
	b.Run("observer-on", func(b *testing.B) { run(b, obs.New()) })
}

// BenchmarkTraceOverhead guards the span tracer's cost contract, mirroring
// BenchmarkObserverOverhead: with Tracer nil the hot paths pay a nil check
// (the off variant must stay within noise, documented <2% in EXPERIMENTS.md);
// tracer-on shows the price of recording batch/queue/steal spans into the
// per-worker rings.
func BenchmarkTraceOverhead(b *testing.B) {
	g := benchGraph()
	run := func(b *testing.B, tr *trace.Tracer) {
		for i := 0; i < b.N; i++ {
			runPR(b, pagerank.Config{
				Exec:      exec.Config{Workers: 4, MaxIterations: 10, Tracer: tr},
				Isolation: isolation.Options{Level: isolation.Asynchronous},
				Epsilon:   -1,
			}, g)
		}
	}
	b.Run("tracer-off", func(b *testing.B) { run(b, nil) })
	b.Run("tracer-on", func(b *testing.B) { run(b, trace.New(4, 0)) })
}

// BenchmarkHistogramOverhead measures the latency-histogram primitive the
// engine's instrumented paths call per attempt/batch/steal: one RecordLatency
// is a few atomic ops and must not allocate (the 0-alloc contract is also
// enforced by TestRecordLatencyDoesNotAllocate). Contended shows the
// worst-case false-sharing cost when several goroutines record into one
// worker's shard.
func BenchmarkHistogramOverhead(b *testing.B) {
	b.Run("record", func(b *testing.B) {
		ob := obs.New()
		ob.BeginRun(4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ob.RecordLatency(0, obs.AttemptLatency, int64(i)&0xfffff)
		}
	})
	b.Run("record-contended", func(b *testing.B) {
		ob := obs.New()
		ob.BeginRun(4)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int64(0)
			for pb.Next() {
				ob.RecordLatency(0, obs.AttemptLatency, i&0xfffff)
				i++
			}
		})
	})
	b.Run("snapshot", func(b *testing.B) {
		ob := obs.New()
		ob.BeginRun(4)
		for i := 0; i < 1<<16; i++ {
			ob.RecordLatency(i&3, obs.AttemptLatency, int64(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ob.Snapshot()
		}
	})
}

// --- Hot-path micro-benchmarks -------------------------------------------

func BenchmarkQueuePushPop(b *testing.B) {
	q := queue.New[int]()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q.Push(1)
			q.Pop()
		}
	})
}

func BenchmarkIterativeReadRecent(b *testing.B) {
	rec := storage.NewIterativeRecord(storage.Payload{1}, 4)
	rec.Install(storage.Payload{2})
	out := make(storage.Payload, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.ReadRecent(out)
	}
}

func BenchmarkIterativeReadRelaxed(b *testing.B) {
	rec := storage.NewIterativeRecord(storage.Payload{1}, 1)
	out := make(storage.Payload, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.ReadRelaxed(out)
	}
}

func BenchmarkOLTPCommit(b *testing.B) {
	db := db4ml.Open()
	tbl, err := db.CreateTable("Account",
		db4ml.Column{Name: "ID", Type: db4ml.Int64},
		db4ml.Column{Name: "Balance", Type: db4ml.Float64})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]db4ml.Payload, 1024)
	for i := range rows {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		rows[i] = p
	}
	if err := db.BulkLoad(tbl, rows); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		row := db4ml.RowID(i % 1024)
		p, _ := tx.Read(tbl, row)
		p.SetFloat64(1, p.Float64(1)+1)
		if err := tx.Write(tbl, row, p); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func topo(regions, workers int) (t db4ml.Topology) {
	t.Regions = regions
	t.Workers = workers
	return t
}

package db4ml

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"db4ml/internal/trace"
)

// chromeDoc mirrors the subset of the Chrome trace_event format the merged
// cross-shard export emits: metadata rows naming each process (one per
// trace source) and span/instant rows carrying the correlation id in args.
type chromeDoc struct {
	TraceEvents []chromeEv `json:"traceEvents"`
}

type chromeEv struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  uint64         `json:"pid"`
	Tid  int32          `json:"tid"`
	Ts   float64        `json:"ts"`
	Args map[string]any `json:"args"`
}

func parseChromeTrace(t *testing.T, body []byte) chromeDoc {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace not valid Chrome JSON: %v", err)
	}
	return doc
}

// processNames extracts pid → process_name from the metadata rows.
func processNames(doc chromeDoc) map[uint64]string {
	names := make(map[uint64]string)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			if n, ok := ev.Args["name"].(string); ok {
				names[ev.Pid] = n
			}
		}
	}
	return names
}

// metricValue parses one un-labelled sample line out of a Prometheus text
// exposition body; -1 when the family is absent.
func metricValue(body, name string) float64 {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9eE.+-]+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return -1
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return -1
	}
	return v
}

// runShardedWorkload drives one distributed ML job (every shard owns rows,
// so the uber-commit prepares on all of them) and one scattered query.
func runShardedWorkload(t *testing.T, db *ShardedDB, tbl *Table, n int) {
	t.Helper()
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: 3}
	}
	if _, err := db.RunML(MLRun{
		Label:     "obs-e2e",
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunQuery(context.Background(), QueryRun{
		Plan: Filter(Scan(tbl), FloatCmp("Value", Gt, 0)),
	}); err != nil {
		t.Fatal(err)
	}
}

// TestShardedDebugServerEndToEnd is the acceptance test for the sharded
// debug surface: a 4-shard cluster under WithDebugServer + WithWAL runs an
// ML job and a query, takes a checkpoint, and every endpoint reflects it —
// one merged Chrome trace with all shards as processes and the 2PC window
// visible, /metrics exposing the wal/checkpoint/2PC families with nonzero
// values, per-shard breakdowns on /debug/shards, shard-and-commit-ts
// columns on /debug/jobs, and the query's plan on /debug/query.
func TestShardedDebugServerEndToEnd(t *testing.T) {
	const shards, n = 4, 32
	db, tbl := openShardedCounters(t, shards, n,
		WithDebugServer("127.0.0.1:0"),
		WithWAL(t.TempDir()),
		WithWALSync(WALSyncAlways))
	defer db.Close()
	if db.DebugAddr() == "" {
		t.Fatal("DebugAddr empty with WithDebugServer")
	}
	base := "http://" + db.DebugAddr()

	runShardedWorkload(t, db, tbl, n)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// /metrics: the durability and 2PC families must exist and be nonzero.
	body := scrapeURL(t, base+"/metrics")
	for _, name := range []string{
		"db4ml_twopc_prepares_total",
		"db4ml_wal_appends_total",
		"db4ml_wal_fsyncs_total",
		"db4ml_checkpoints_total",
		"db4ml_ckpt_sections_written_total",
		"db4ml_wal_fsync_latency_seconds_count",
		"db4ml_checkpoint_duration_seconds_count",
		"db4ml_twopc_prepare_latency_seconds_count",
		"db4ml_twopc_commit_window_latency_seconds_count",
		"db4ml_wal_batch_records_count",
		"db4ml_commits_total",
	} {
		if v := metricValue(body, name); v <= 0 {
			t.Errorf("/metrics %s = %v, want > 0", name, v)
		}
	}
	// Abort counter exists even when zero (families are always rendered).
	if !strings.Contains(body, "db4ml_twopc_aborts_total") {
		t.Error("/metrics missing db4ml_twopc_aborts_total family")
	}

	// /debug/shards: one entry per shard, each a live kernel.
	var shardRows []struct {
		Shard       int    `json:"shard"`
		Workers     int    `json:"workers"`
		TraceEvents int    `json:"trace_events"`
		Stable      uint64 `json:"stable"`
	}
	if err := json.Unmarshal([]byte(scrapeURL(t, base+"/debug/shards")), &shardRows); err != nil {
		t.Fatalf("/debug/shards not valid JSON: %v", err)
	}
	if len(shardRows) != shards {
		t.Fatalf("/debug/shards rows = %d, want %d", len(shardRows), shards)
	}
	for i, r := range shardRows {
		if r.Shard != i || r.Workers <= 0 {
			t.Fatalf("shard row %d = %+v", i, r)
		}
	}

	// /debug/jobs: the settled run appears once per shard, rows carrying
	// the shard column and the uber-commit timestamp.
	var jobs []struct {
		ID       uint64 `json:"id"`
		Label    string `json:"label"`
		State    string `json:"state"`
		Shard    *int   `json:"shard"`
		CommitTS uint64 `json:"commit_ts"`
	}
	if err := json.Unmarshal([]byte(scrapeURL(t, base+"/debug/jobs")), &jobs); err != nil {
		t.Fatalf("/debug/jobs not valid JSON: %v", err)
	}
	perShard := make(map[int]int)
	for _, j := range jobs {
		if !strings.HasPrefix(j.Label, "obs-e2e") {
			continue
		}
		if j.Shard == nil {
			t.Fatalf("sharded job row missing shard column: %+v", j)
		}
		if j.CommitTS == 0 {
			t.Fatalf("settled job row missing commit_ts: %+v", j)
		}
		perShard[*j.Shard]++
	}
	if len(perShard) != shards {
		t.Fatalf("job rows cover %d shards, want %d: %v", len(perShard), shards, perShard)
	}

	// /debug/query: the scattered query is listed with its rendered plan.
	var queries []struct {
		State   string `json:"state"`
		Rows    int64  `json:"rows"`
		Explain string `json:"explain"`
	}
	if err := json.Unmarshal([]byte(scrapeURL(t, base+"/debug/query")), &queries); err != nil {
		t.Fatalf("/debug/query not valid JSON: %v", err)
	}
	if len(queries) == 0 {
		t.Fatal("/debug/query empty after a query ran")
	}
	q := queries[len(queries)-1]
	if q.State != "done" || !strings.Contains(q.Explain, "scan(Counter)") {
		t.Fatalf("query row = %+v, want done with a scan(Counter) plan", q)
	}

	// /debug/trace: one merged Chrome trace. Every shard is a named
	// process alongside the coordinator, and the distributed commit is
	// causally visible: prepare spans and the commit-window span of one
	// uber-transaction share the same correlation id.
	raw := []byte(scrapeURL(t, base+"/debug/trace"))
	doc := parseChromeTrace(t, raw)
	names := processNames(doc)
	byName := make(map[string]bool)
	for _, n := range names {
		byName[n] = true
	}
	for _, want := range []string{"coordinator", "shard0", "shard1", "shard2", "shard3"} {
		if !byName[want] {
			t.Fatalf("merged trace missing process %q; got %v", want, names)
		}
	}

	prepares := make(map[float64]int)  // correlation id → prepare span count
	windows := make(map[float64]bool)  // correlation id → commit-window seen
	kinds := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		kinds[ev.Name] = true
		id, _ := ev.Args["id"].(float64)
		switch ev.Name {
		case "prepare":
			prepares[id]++
		case "commit-window":
			windows[id] = true
		}
	}
	for _, want := range []string{"uber-begin", "prepare", "commit-window", "wal", "fsync", "checkpoint", "ckpt-section", "batch"} {
		if !kinds[want] {
			t.Fatalf("merged trace missing %q spans; got %v", want, kinds)
		}
	}
	if len(windows) == 0 {
		t.Fatal("no commit-window spans in merged trace")
	}
	for id := range windows {
		if prepares[id] != shards {
			t.Fatalf("commit-window id=%v has %d prepare spans, want %d",
				id, prepares[id], shards)
		}
	}
}

// TestShardedTraceAllShards is the regression test for the merge itself: a
// 4-shard export must contain worker spans from all four shard processes,
// not just the coordinator's 2PC skeleton.
func TestShardedTraceAllShards(t *testing.T) {
	const shards, n = 4, 32
	db, tbl := openShardedCounters(t, shards, n, WithDebugServer("127.0.0.1:0"))
	defer db.Close()

	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: 2}
	}
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.WriteChromeTraceMulti(&buf, db.traceSources()); err != nil {
		t.Fatal(err)
	}
	doc := parseChromeTrace(t, buf.Bytes())
	names := processNames(doc)
	spansPerProc := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		spansPerProc[names[ev.Pid]]++
	}
	for _, want := range []string{"shard0", "shard1", "shard2", "shard3"} {
		if spansPerProc[want] == 0 {
			t.Fatalf("export has no spans from %s: %v", want, spansPerProc)
		}
	}
	if spansPerProc["coordinator"] == 0 {
		t.Fatalf("export has no coordinator spans: %v", spansPerProc)
	}
}

// TestMergedTraceCausalOrder is the property test over the merged
// cross-shard trace: (a) within every process the exported events are
// timestamp-ordered, (b) the coordinator's commit instants are
// timestamp-ordered consistently with their commit timestamps (the trace
// order never contradicts the oracle order), and (c) every uber-commit
// window has its full complement of per-shard prepare children, matched by
// correlation id.
func TestMergedTraceCausalOrder(t *testing.T) {
	const shards, n, runs = 4, 16, 3
	db, tbl := openShardedCounters(t, shards, n, WithDebugServer("127.0.0.1:0"))
	defer db.Close()

	for r := 0; r < runs; r++ {
		subs := make([]IterativeTransaction, n)
		for i := range subs {
			subs[i] = &incSub{tbl: tbl, row: RowID(i), target: float64(r + 1)}
		}
		if _, err := db.RunML(MLRun{
			Isolation: MLOptions{Level: Asynchronous},
			Attach:    []Attachment{{Table: tbl}},
			Subs:      subs,
		}); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := trace.WriteChromeTraceMulti(&buf, db.traceSources()); err != nil {
		t.Fatal(err)
	}
	doc := parseChromeTrace(t, buf.Bytes())
	names := processNames(doc)

	// (a) per-process timestamp monotonicity of the export order.
	lastTs := make(map[uint64]float64)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if ev.Ts < lastTs[ev.Pid] {
			t.Fatalf("process %q export not ts-ordered: %v after %v",
				names[ev.Pid], ev.Ts, lastTs[ev.Pid])
		}
		lastTs[ev.Pid] = ev.Ts
	}

	// (b) coordinator commit instants: export order == commit-ts order.
	// The commit timestamp rides the event's arg, so a trace that reorders
	// two uber-commits would show a decreasing arg sequence here.
	var lastCommitTS float64 = -1
	commits := 0
	prepares := make(map[float64]int)
	windows := make(map[float64]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" || names[ev.Pid] != "coordinator" {
			continue
		}
		switch ev.Name {
		case "commit":
			ts, _ := ev.Args["arg"].(float64)
			if ts <= lastCommitTS {
				t.Fatalf("commit instants out of oracle order: ts %v after %v", ts, lastCommitTS)
			}
			lastCommitTS = ts
			commits++
		case "prepare":
			id, _ := ev.Args["id"].(float64)
			prepares[id]++
		case "commit-window":
			id, _ := ev.Args["id"].(float64)
			windows[id] = true
		}
	}
	if commits != runs {
		t.Fatalf("coordinator commit instants = %d, want %d", commits, runs)
	}

	// (c) every commit window has all per-shard prepare children.
	if len(windows) != runs {
		t.Fatalf("commit windows = %d, want %d", len(windows), runs)
	}
	for id := range windows {
		if prepares[id] != shards {
			t.Fatalf("uber-commit id=%v has %d prepares, want %d", id, prepares[id], shards)
		}
	}
}

// TestQueryExplainAnalyze covers both flavours of the plan debug surface on
// a single kernel: ExplainQuery renders the planner's decisions (estimates,
// pushdown, pre-sizing) without executing, and QueryHandle.Explain after a
// run carries measured per-operator rows and time.
func TestQueryExplainAnalyze(t *testing.T) {
	const n = 24
	db, tbl := openWithCounters(t, n)
	defer db.Close()

	// Give the filter spread: Value = ID.
	subs := make([]IterativeTransaction, n)
	for i := range subs {
		subs[i] = &incSub{tbl: tbl, row: RowID(i), target: float64(i)}
	}
	if _, err := db.RunML(MLRun{
		Isolation: MLOptions{Level: Asynchronous},
		Attach:    []Attachment{{Table: tbl}},
		Subs:      subs,
	}); err != nil {
		t.Fatal(err)
	}

	p := Project(Filter(Scan(tbl), FloatCmp("Value", Gt, 2)), []string{"ID"}, Col("ID"))

	// EXPLAIN: logical plan with the pushdown annotation, no execution.
	expl, err := db.ExplainQuery(p)
	if err != nil {
		t.Fatal(err)
	}
	logical := expl.Render()
	if !strings.Contains(logical, "scan(Counter)+pushdown") {
		t.Fatalf("EXPLAIN missing pushdown annotation:\n%s", logical)
	}
	if !strings.Contains(logical, "est=") {
		t.Fatalf("EXPLAIN missing cardinality estimates:\n%s", logical)
	}
	if expl.Analyzed {
		t.Fatal("EXPLAIN (no execution) marked as analyzed")
	}

	// EXPLAIN ANALYZE: run the query, then read measured operator stats.
	h, err := db.SubmitQuery(context.Background(), QueryRun{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	an := h.Explain()
	if an == nil || !an.Analyzed {
		t.Fatalf("QueryHandle.Explain after run = %+v, want analyzed tree", an)
	}
	rendered := an.Render()
	if !strings.Contains(rendered, "rows=") || !strings.Contains(rendered, "time=") {
		t.Fatalf("EXPLAIN ANALYZE missing measured stats:\n%s", rendered)
	}
	if !strings.Contains(rendered, "scan(Counter)+pushdown") {
		t.Fatalf("EXPLAIN ANALYZE missing pushdown annotation:\n%s", rendered)
	}
	// The root's measured output cardinality equals the relation's.
	if an.RowsOut != uint64(len(rel.Rows)) {
		t.Fatalf("root rows=%d, relation rows=%d", an.RowsOut, len(rel.Rows))
	}
	// The measured tree nests: root project has the filtered scan below.
	if len(an.Kids) == 0 {
		t.Fatalf("analyzed tree has no children:\n%s", rendered)
	}
}

// TestShardedExplainQuery pins the sharded EXPLAIN path: the facade renders
// the same planner tree for a scattered plan, and a supervised run records
// its plan on the handle (logical flavour — a scatter has no single root
// cursor to measure).
func TestShardedExplainQuery(t *testing.T) {
	const n = 12
	db, tbl := openShardedCounters(t, 2, n)
	defer db.Close()

	p := Filter(Scan(tbl), FloatCmp("Value", Gt, 0))
	expl, err := db.ExplainQuery(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expl.Render(), "scan(Counter)") {
		t.Fatalf("sharded EXPLAIN missing scan:\n%s", expl.Render())
	}

	h, err := db.SubmitQuery(context.Background(), QueryRun{Plan: p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if h.Explain() == nil {
		t.Fatal("sharded QueryHandle.Explain() nil after run")
	}
}

package db4ml

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func scrapeURL(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestDebugServerEndToEnd is the ISSUE 5 acceptance path: a bounded-staleness
// run on a database opened with WithDebugServer must be scrapeable as
// Prometheus text at /metrics and downloadable as valid Chrome trace_event
// JSON at /debug/trace — with no Observer or Tracer supplied by the caller,
// exercising the facade's auto-instrumentation.
func TestDebugServerEndToEnd(t *testing.T) {
	const n = 32
	db := Open(WithWorkers(4), WithDebugServer("127.0.0.1:0"))
	defer db.Close()
	if db.DebugAddr() == "" {
		t.Fatal("DebugAddr empty with WithDebugServer")
	}
	base := "http://" + db.DebugAddr()

	tbl, err := db.CreateTable("Counter",
		Column{Name: "ID", Type: Int64},
		Column{Name: "Value", Type: Float64})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Payload, n)
	for i := range rows {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		rows[i] = p
	}
	if err := db.BulkLoad(tbl, rows); err != nil {
		t.Fatal(err)
	}
	run := func() ExecStats {
		subs := make([]IterativeTransaction, n)
		for i := range subs {
			subs[i] = &incSub{tbl: tbl, row: RowID(i), target: 5}
		}
		stats, err := db.RunML(MLRun{
			Label:     "bounded-pr",
			Isolation: MLOptions{Level: BoundedStaleness, Staleness: 4},
			BatchSize: 8,
			Attach:    []Attachment{{Table: tbl}},
			Subs:      subs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	stats := run()

	// /metrics: Prometheus text exposition fed by the auto-attached observer.
	body := scrapeURL(t, base+"/metrics")
	for _, want := range []string{
		fmt.Sprintf("db4ml_commits_total %d", stats.Commits),
		"db4ml_executions_total ",
		"db4ml_retries_total 0",
		"# TYPE db4ml_attempt_latency_seconds histogram",
		`db4ml_attempt_latency_seconds_bucket{le="+Inf"}`,
		"db4ml_job_commit_latency_seconds_count 1",
		"db4ml_jobs_tracked 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	// A second run must only grow the totals (aggregator monotonicity).
	stats2 := run()
	body = scrapeURL(t, base+"/metrics")
	want := fmt.Sprintf("db4ml_commits_total %d", stats.Commits+stats2.Commits)
	if !strings.Contains(body, want) {
		t.Fatalf("/metrics not monotone across runs, missing %q:\n%s", want, body)
	}

	// /debug/jobs: both settled runs listed with label and terminal state.
	var jobs []struct {
		Label string `json:"label"`
		State string `json:"state"`
		Total int64  `json:"total"`
	}
	if err := json.Unmarshal([]byte(scrapeURL(t, base+"/debug/jobs")), &jobs); err != nil {
		t.Fatalf("/debug/jobs not valid JSON: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("job table rows = %d, want 2", len(jobs))
	}
	for _, j := range jobs {
		if j.Label != "bounded-pr" || j.State != "done" || j.Total != n {
			t.Fatalf("job row = %+v", j)
		}
	}

	// /debug/trace: valid Chrome trace_event JSON with spans from the run.
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(scrapeURL(t, base+"/debug/trace")), &doc); err != nil {
		t.Fatalf("/debug/trace not valid JSON: %v", err)
	}
	kinds := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		kinds[ev.Name] = true
	}
	for _, want := range []string{"job", "batch", "commit"} {
		if !kinds[want] {
			t.Fatalf("trace missing %q events; got %v", want, kinds)
		}
	}
}

package db4ml

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/exec"
	"db4ml/internal/gc"
	"db4ml/internal/introspect"
	"db4ml/internal/numa"
	"db4ml/internal/obs"
	"db4ml/internal/partition"
	"db4ml/internal/plan"
	"db4ml/internal/resilience"
	"db4ml/internal/shard"
	"db4ml/internal/table"
	"db4ml/internal/trace"
	"db4ml/internal/txn"
)

// This file is the sharded facade: OpenSharded builds N independent kernel
// instances (each with its own transaction manager, worker pool, stable
// watermark, and GC) sharing only the timestamp oracle, and runs every ML
// job as a distributed uber-transaction through the shard coordinator —
// begun and attached on every shard before any shard executes, committed
// with a two-phase protocol at one shared-oracle timestamp, aborted
// everywhere if any shard fails. See DESIGN.md §15 and internal/shard.
//
// The programming model is unchanged: tables are created and loaded the
// same way (CreateTable returns the global VIEW table, whose row ids are
// global and whose version chains are shared with the owning shards'
// locals), sub-transactions read and write through the view exactly as on
// a single kernel, and MLRun/QueryRun carry the same knobs. What sharding
// adds is placement: rows are routed to shards by the configured scheme,
// and sub-transaction i runs on the shard owning its rows (MLRun.ShardOf,
// defaulting to "sub i owns global row i of the first attached table" —
// the built-in algorithms' convention, so PageRank and SGD run unchanged).

// ShardedTable exposes a sharded table's placement surface: View, Local,
// ShardOf, Locate, LocalRows, Router. CreateTable on a sharded database
// registers one and returns its View; retrieve the full object with
// ShardedDB.ShardedTable.
type ShardedTable = shard.Table

// Partitioning schemes for WithShardScheme (the same schemes that place
// rows across NUMA regions inside one kernel; see internal/partition).
const (
	ShardRange      = partition.Range
	ShardRoundRobin = partition.RoundRobin
	ShardHash       = partition.Hash
)

// WithShards sets the shard count for OpenSharded (default 2). Each shard
// is a full kernel instance with its own worker pool of WithWorkers
// workers — total worker count scales with the shard count.
func WithShards(n int) Option { return func(c *openConfig) { c.shards = n } }

// WithShardScheme sets the row-placement scheme for tables created on a
// sharded database (default ShardHash). ShardRange keeps contiguous row
// ranges per shard (best for range scans), ShardRoundRobin interleaves
// (best for load balance), ShardHash scatters.
func WithShardScheme(s partition.Scheme) Option {
	return func(c *openConfig) { c.shardScheme = s }
}

// ShardedDB is a shard-per-node database: N kernels behind the single-
// kernel programming model. ML jobs span every shard as one distributed
// uber-transaction; queries scatter across shards and gather; OLTP reads
// pin one snapshot per shard.
type ShardedDB struct {
	cluster *shard.Cluster
	co      *shard.Coordinator
	scheme  partition.Scheme

	tblMu  sync.RWMutex
	tables map[string]*ShardedTable
	byView map[*Table]*ShardedTable

	// dur is the durability state (WAL, checkpoint cache, crash killer),
	// non-nil only under WithWAL; armed by restoreSharded after recovery.
	dur *durability

	// One version reclaimer per shard, each clamped to its own kernel's
	// oldest active snapshot and pruning only the locals that shard owns.
	reclaimers []*gc.Reclaimer

	deadline  time.Duration
	stall     time.Duration
	retry     RetryPolicy
	gate      *resilience.Gate
	admitWait bool
	degrade   func(pressure float64, batch int) int

	tracerOnce sync.Once
	runID      atomic.Uint64
	queryID    atomic.Uint64

	// Introspection state, non-nil only under WithDebugServer: the
	// coordinator's own tracer (uber-begin, per-shard prepare, 2PC commit
	// windows), one engine tracer per shard, the per-shard aggregator
	// behind the cluster-wide /metrics and the /debug/shards breakdown,
	// and the debug server itself.
	coTracer     *trace.Tracer
	shardTracers []*trace.Tracer
	agg          *introspect.ShardedAggregator
	debug        *introspect.Server

	jobsMu   sync.Mutex
	liveJobs map[*ShardedJobHandle]jobMeta
	recent   []introspect.JobInfo
	queries  []introspect.QueryInfo

	mu      sync.Mutex
	closed  bool
	handles sync.WaitGroup
}

// OpenSharded creates an empty sharded database and starts every shard's
// worker pool. All single-kernel options apply per shard (WithWorkers
// sizes each shard's pool, WithVersionGC runs one reclaimer per shard,
// supervision defaults cover distributed runs); WithDebugServer is not
// supported on a sharded database yet and panics.
func OpenSharded(opts ...Option) *ShardedDB {
	oc := openConfig{shardScheme: ShardHash}
	for _, o := range opts {
		o(&oc)
	}
	if oc.shards <= 0 {
		oc.shards = 2
	}
	cfg := exec.Config{Workers: oc.workers, Chaos: oc.chaos}
	if oc.regions > 0 {
		cfg.Topology = numa.NewTopology(oc.regions, cfg.Resolved().Workers)
	}
	cluster, err := shard.NewCluster(oc.shards, cfg)
	if err != nil {
		// Unreachable for the same reason Open's pool construction is: every
		// validated constraint is clamped before it gets here.
		panic("db4ml: " + err.Error())
	}
	db := &ShardedDB{
		cluster:   cluster,
		co:        shard.NewCoordinator(cluster),
		scheme:    oc.shardScheme,
		tables:    make(map[string]*ShardedTable),
		byView:    make(map[*Table]*ShardedTable),
		deadline:  oc.deadline,
		stall:     oc.stall,
		retry:     oc.retry,
		gate:      resilience.NewGate(oc.maxInflight),
		admitWait: oc.admitWait,
		degrade:   oc.degrade,
	}
	db.reclaimers = make([]*gc.Reclaimer, oc.shards)
	for s := 0; s < oc.shards; s++ {
		s := s
		db.reclaimers[s] = gc.New(cluster.Kernel(s).Mgr(), func() []*table.Table {
			return db.localTables(s)
		})
		if oc.gcInterval > 0 {
			cluster.Kernel(s).Pool().Maintain(oc.gcInterval, func() { db.reclaimers[s].Pass() })
		}
	}
	if oc.debugAddr != "" {
		// Cluster-wide introspection: the coordinator's 2PC spans get their
		// own tracer, each shard's engine spans its own, and /debug/trace
		// merges them into one Chrome trace with a named process per source.
		workers := cfg.Resolved().Workers
		db.coTracer = trace.New(1, 0)
		db.tracerOnce.Do(func() { db.co.SetTracer(db.coTracer) })
		db.shardTracers = make([]*trace.Tracer, oc.shards)
		for s := range db.shardTracers {
			db.shardTracers[s] = trace.New(workers, 0)
		}
		db.agg = introspect.NewShardedAggregator(oc.shards)
		db.liveJobs = make(map[*ShardedJobHandle]jobMeta)
		srv, err := introspect.Start(introspect.Config{
			Addr:    oc.debugAddr,
			Metrics: db.agg.Snapshot,
			Jobs:    db.jobInfos,
			Queries: db.queryInfos,
			Shards:  db.shardInfos,
			Sources: db.traceSources,
		})
		if err != nil {
			cluster.Close()
			panic("db4ml: " + err.Error())
		}
		db.debug = srv
	}
	if oc.walDir != "" {
		db.restoreSharded(oc)
		if oc.ckptEvery > 0 {
			// The checkpointer rides shard 0's maintenance goroutine; the
			// cut it takes spans every shard.
			cluster.Kernel(0).Pool().Maintain(oc.ckptEvery, func() { _ = db.Checkpoint() })
		}
	}
	return db
}

// DebugAddr returns the debug server's bound address (host:port), or ""
// when WithDebugServer was not used.
func (db *ShardedDB) DebugAddr() string {
	if db.debug == nil {
		return ""
	}
	return db.debug.Addr()
}

// traceSources lists the cluster's tracers for the merged /debug/trace
// export: the coordinator first, then every shard as its own named process.
func (db *ShardedDB) traceSources() []trace.Source {
	out := make([]trace.Source, 0, len(db.shardTracers)+1)
	out = append(out, trace.Source{Name: "coordinator", Tracer: db.coTracer})
	for s, t := range db.shardTracers {
		out = append(out, trace.Source{Name: fmt.Sprintf("shard%d", s), Tracer: t})
	}
	return out
}

// shardInfos assembles the /debug/shards table from the per-shard
// aggregators plus each kernel's live state.
func (db *ShardedDB) shardInfos() []introspect.ShardInfo {
	snaps := db.agg.ShardSnapshots()
	out := make([]introspect.ShardInfo, len(snaps))
	for s, snap := range snaps {
		out[s] = introspect.ShardInfo{
			Shard:       s,
			Workers:     db.cluster.Kernel(s).Pool().Workers(),
			TraceEvents: db.shardTracers[s].Len(),
			Stable:      uint64(db.cluster.Kernel(s).Mgr().Stable()),
			Counters:    snap.Cumulative,
		}
	}
	return out
}

// jobInfos assembles the sharded /debug/jobs table: one row per (job,
// shard) so per-shard progress of one distributed run reads side by side —
// all rows of one run share its correlation id.
func (db *ShardedDB) jobInfos() []introspect.JobInfo {
	db.jobsMu.Lock()
	defer db.jobsMu.Unlock()
	out := append([]introspect.JobInfo(nil), db.recent...)
	for h, m := range db.liveJobs {
		inner := h.inner.Load()
		for s := 0; s < db.cluster.Shards(); s++ {
			j := inner.ShardJob(s)
			if j == nil {
				continue
			}
			info := introspect.NewJobInfo(inner.TraceID(), j.Label(), "running",
				h.Attempts(), j.Live(), j.Total(), j.Started(), m.deadline)
			sh := s
			info.Shard = &sh
			out = append(out, info)
		}
	}
	return out
}

// settleJob moves a resolved distributed handle's per-shard rows from the
// live job table to the recent list, stamping the global commit timestamp.
// No-op without a debug server.
func (db *ShardedDB) settleJob(h *ShardedJobHandle, deadline time.Duration) {
	if db.debug == nil {
		return
	}
	inner := h.inner.Load()
	state := "done"
	if h.err != nil {
		state = "failed: " + h.err.Error()
	}
	db.jobsMu.Lock()
	delete(db.liveJobs, h)
	for s := 0; s < db.cluster.Shards(); s++ {
		j := inner.ShardJob(s)
		if j == nil {
			continue
		}
		info := introspect.NewJobInfo(inner.TraceID(), j.Label(), state,
			h.Attempts(), j.Live(), j.Total(), j.Started(), deadline)
		sh := s
		info.Shard = &sh
		info.CommitTS = uint64(h.ts)
		db.recent = append(db.recent, info)
	}
	if len(db.recent) > maxRecentJobs {
		db.recent = db.recent[len(db.recent)-maxRecentJobs:]
	}
	db.jobsMu.Unlock()
}

// queryInfos returns the recent scattered-query table for /debug/query.
func (db *ShardedDB) queryInfos() []introspect.QueryInfo {
	db.jobsMu.Lock()
	defer db.jobsMu.Unlock()
	return append([]introspect.QueryInfo(nil), db.queries...)
}

// recordQuery appends one settled query to the /debug/query ring. No-op
// without a debug server.
func (db *ShardedDB) recordQuery(info introspect.QueryInfo) {
	if db.debug == nil {
		return
	}
	db.jobsMu.Lock()
	db.queries = append(db.queries, info)
	if len(db.queries) > maxRecentJobs {
		db.queries = db.queries[len(db.queries)-maxRecentJobs:]
	}
	db.jobsMu.Unlock()
}

// localTables snapshots shard s's local tables for its reclaimer.
func (db *ShardedDB) localTables(s int) []*table.Table {
	db.tblMu.RLock()
	defer db.tblMu.RUnlock()
	out := make([]*table.Table, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Local(s))
	}
	return out
}

// Shards returns the shard count.
func (db *ShardedDB) Shards() int { return db.cluster.Shards() }

// Cluster exposes the underlying shard cluster for advanced uses (the
// experiment harness reads per-shard managers directly).
func (db *ShardedDB) Cluster() *shard.Cluster { return db.cluster }

// Close drains in-flight distributed runs — including every
// uber-transaction's two-phase commit or abort — then stops all shards'
// worker pools. Further submissions fail with ErrClosed; reads keep
// working.
func (db *ShardedDB) Close() error {
	db.mu.Lock()
	db.closed = true
	db.mu.Unlock()
	db.co.Close()
	db.handles.Wait()
	db.cluster.Close()
	if db.dur != nil {
		_ = db.dur.log.Close()
	}
	if db.debug != nil {
		_ = db.debug.Close()
	}
	return nil
}

// CreateTable adds a new, empty sharded ML-table and returns its global
// view: row ids on the returned table are global, reads and scans resolve
// the owning shards' version chains directly, and sub-transactions written
// against it run unchanged. Placement follows the database's shard scheme
// (WithShardScheme).
func (db *ShardedDB) CreateTable(name string, cols ...Column) (*Table, error) {
	schema, err := table.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	db.tblMu.Lock()
	defer db.tblMu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("db4ml: table %q already exists", name)
	}
	router := shard.NewRouter(db.scheme, db.cluster.Shards(), 0)
	st := shard.NewTable(name, schema, router)
	if db.dur != nil {
		if err := db.dur.appendCreate(name, cols); err != nil {
			return nil, err
		}
	}
	db.tables[name] = st
	db.byView[st.View()] = st
	return st.View(), nil
}

// Table returns a table's global view by name, or nil.
func (db *ShardedDB) Table(name string) *Table {
	db.tblMu.RLock()
	defer db.tblMu.RUnlock()
	if st := db.tables[name]; st != nil {
		return st.View()
	}
	return nil
}

// ShardedTable returns the full sharded table (placement surface included)
// by name, or nil.
func (db *ShardedDB) ShardedTable(name string) *ShardedTable {
	db.tblMu.RLock()
	defer db.tblMu.RUnlock()
	return db.tables[name]
}

// shardedOf resolves a view table back to its sharded table.
func (db *ShardedDB) shardedOf(view *Table) (*ShardedTable, error) {
	db.tblMu.RLock()
	defer db.tblMu.RUnlock()
	if st := db.byView[view]; st != nil {
		return st, nil
	}
	name := "<nil>"
	if view != nil {
		name = view.Name()
	}
	return nil, fmt.Errorf("db4ml: table %q is not a table of this sharded database", name)
}

// BulkLoad appends rows in one globally atomic publish: rows are routed to
// their owning shards and published everywhere at one shared-oracle
// timestamp, so the load is either visible on every shard or on none.
func (db *ShardedDB) BulkLoad(tbl *Table, rows []Payload) error {
	st, err := db.shardedOf(tbl)
	if err != nil {
		return err
	}
	firstRow := st.NumRows()
	ts, err := st.Load(db.cluster, rows)
	if err != nil {
		return err
	}
	if db.dur != nil && len(rows) > 0 {
		return db.dur.appendLoad(st.Name(), ts, firstRow, rows)
	}
	return nil
}

// Stable returns the newest timestamp at which EVERY shard is fully
// published — the cross-shard consistent snapshot bound. Individual shards
// may be ahead of it.
func (db *ShardedDB) Stable() Timestamp {
	var min Timestamp
	for s := 0; s < db.cluster.Shards(); s++ {
		ts := db.cluster.Kernel(s).Mgr().Stable()
		if s == 0 || ts < min {
			min = ts
		}
	}
	return min
}

// DistTxn is a read-only cross-shard transaction: one snapshot pinned per
// shard at Begin, each at that shard's own stable watermark. Reads route
// to the owning shard's snapshot, so a read never observes a version the
// owner's GC could reclaim and never observes a torn distributed commit
// mid-publish on the shard that owns the row. Cross-shard OLTP writes are
// not supported — writes go through single-shard transactions
// (Cluster().Kernel(i).Mgr().Begin()) or distributed ML runs.
type DistTxn struct {
	db  *ShardedDB
	txs []*txn.Txn
}

// Begin pins one read snapshot per shard.
func (db *ShardedDB) Begin() *DistTxn {
	d := &DistTxn{db: db, txs: make([]*txn.Txn, db.cluster.Shards())}
	for s := range d.txs {
		d.txs[s] = db.cluster.Kernel(s).Mgr().Begin()
	}
	return d
}

// Read returns global row's payload from its owning shard's pinned
// snapshot. tbl must be a view returned by CreateTable/Table.
func (d *DistTxn) Read(tbl *Table, row RowID) (Payload, bool) {
	st, err := d.db.shardedOf(tbl)
	if err != nil {
		return nil, false
	}
	s, local, ok := st.Locate(row)
	if !ok {
		return nil, false
	}
	return d.txs[s].Read(st.Local(s), local)
}

// BeginTS returns the snapshot timestamp pinned on the given shard.
func (d *DistTxn) BeginTS(shard int) Timestamp { return d.txs[shard].BeginTS() }

// Close releases every pinned snapshot.
func (d *DistTxn) Close() {
	for _, tx := range d.txs {
		tx.Abort()
	}
}

// PruneNow runs one version-GC pass on every shard synchronously — each
// clamped to its own kernel's oldest active snapshot — and returns the
// total number of versions reclaimed.
func (db *ShardedDB) PruneNow() int {
	total := 0
	for _, r := range db.reclaimers {
		total += r.Pass().Pruned
	}
	return total
}

// GCStats reports lifetime GC totals summed over every shard's reclaimer.
func (db *ShardedDB) GCStats() (passes, pruned uint64) {
	for _, r := range db.reclaimers {
		passes += r.Passes()
		pruned += r.TotalPruned()
	}
	return passes, pruned
}

// ShardedJobHandle tracks one in-flight distributed ML run. One handle
// spans every retry attempt (a failed attempt's uber-transaction aborted
// on every shard, so resubmission is side-effect-free) and resolves only
// when the final attempt's two-phase commit or abort settled everywhere.
type ShardedJobHandle struct {
	inner      atomic.Pointer[shard.Handle]
	attempts   atomic.Int32
	done       chan struct{}
	cancelOnce sync.Once
	cancelCh   chan struct{}
	observers  []*Observer

	stats []ExecStats
	ts    Timestamp
	err   error
}

// Wait blocks until the distributed run finished (commit or abort on every
// shard, retries included) and returns per-shard stats (index = shard id;
// zero value for shards that ran no sub-transactions).
func (h *ShardedJobHandle) Wait() ([]ExecStats, error) {
	<-h.done
	return h.stats, h.err
}

// CommitTS returns the global commit timestamp — the one timestamp every
// shard published at — or 0 if the run aborted. Valid after Wait.
func (h *ShardedJobHandle) CommitTS() Timestamp {
	<-h.done
	return h.ts
}

// Cancel asks every shard's job to stop; the distributed uber-transaction
// aborts on all shards, nothing becomes visible anywhere, and no further
// retry attempts are made.
func (h *ShardedJobHandle) Cancel() { h.cancelOnce.Do(func() { close(h.cancelCh) }) }

// Attempts returns how many times the run has been submitted so far.
func (h *ShardedJobHandle) Attempts() int { return int(h.attempts.Load()) }

// Done returns a channel closed when the run fully resolved.
func (h *ShardedJobHandle) Done() <-chan struct{} { return h.done }

// ShardObservers returns the per-shard observers (index = shard id), or
// nil when the run was submitted without MLRun.Observer. Shard 0's is the
// caller's observer; the rest were auto-attached.
func (h *ShardedJobHandle) ShardObservers() []*Observer { return h.observers }

// ShardSnapshots exports every shard's telemetry snapshot (nil without
// MLRun.Observer).
func (h *ShardedJobHandle) ShardSnapshots() []TelemetrySnapshot {
	if h.observers == nil {
		return nil
	}
	out := make([]TelemetrySnapshot, len(h.observers))
	for i, o := range h.observers {
		out[i] = o.Snapshot()
	}
	return out
}

// SubmitML starts one ML algorithm as a DISTRIBUTED uber-transaction and
// returns without waiting. Placement: sub-transaction i runs on shard
// MLRun.ShardOf(i) (default: the shard owning global row i of the first
// attached table). Every shard's slice attaches its local rows of every
// attached table; the coordinator begins and attaches all shards before
// any shard executes, so cross-shard reads through the view always find
// sibling shards' iterative records in place. On success the result
// publishes atomically on every shard at one timestamp; on any shard's
// failure the run aborts everywhere. Under the synchronous level the
// per-shard barriers are tied into one global rendezvous, so "reads see
// exactly the previous iteration" holds across shards too.
func (db *ShardedDB) SubmitML(ctx context.Context, run MLRun) (*ShardedJobHandle, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.handles.Add(1)
	db.mu.Unlock()

	if err := db.gate.Acquire(ctx, db.admitWait); err != nil {
		db.handles.Done()
		if run.Observer != nil && err == resilience.ErrOverloaded {
			run.Observer.Inc(0, obs.LoadSheds)
		}
		return nil, err
	}
	fail := func(err error) (*ShardedJobHandle, error) {
		db.gate.Release()
		db.handles.Done()
		return nil, err
	}

	if run.Workers > 0 || run.Regions > 0 {
		return fail(fmt.Errorf("db4ml: per-run private pools (MLRun.Workers/Regions) are not supported on a sharded database"))
	}
	if len(run.Attach) == 0 {
		return fail(fmt.Errorf("db4ml: a sharded ML run must attach at least one table"))
	}

	n := db.cluster.Shards()

	// Resolve every attachment to its sharded table and split its row sets
	// into per-shard locals. Every shard attaches (and votes in the
	// two-phase commit) even when it runs no sub-transactions.
	sharded := make([]*ShardedTable, len(run.Attach))
	attach := make([][]shard.Attachment, n)
	for ai, a := range run.Attach {
		st, err := db.shardedOf(a.Table)
		if err != nil {
			return fail(err)
		}
		sharded[ai] = st
		locals, err := st.LocalRows(a.Rows)
		if err != nil {
			return fail(err)
		}
		for s := 0; s < n; s++ {
			attach[s] = append(attach[s], shard.Attachment{
				Table:    st.Local(s),
				Rows:     locals[s],
				Versions: a.Versions,
			})
		}
	}

	// Placement: group the sub-transactions by shard.
	primary := sharded[0]
	shardOf := run.ShardOf
	if shardOf == nil {
		shardOf = func(i int) int { return primary.ShardOf(RowID(i)) }
	}
	subs := make([][]IterativeTransaction, n)
	for i, sub := range run.Subs {
		s := shardOf(i)
		if s < 0 || s >= n {
			return fail(fmt.Errorf("db4ml: sub-transaction %d routed to shard %d of %d (is the first attached table loaded?)", i, s, n))
		}
		subs[s] = append(subs[s], sub)
	}

	// Per-shard job configuration: resolved exactly like the single-kernel
	// path, with per-shard labels and observers.
	deadline := run.Deadline
	if deadline <= 0 {
		deadline = db.deadline
	}
	stall := run.StallTimeout
	if stall <= 0 {
		stall = db.stall
	}
	policy := db.retry
	if run.Retry != nil {
		policy = *run.Retry
	}
	batch := run.BatchSize
	if db.degrade != nil {
		if batch <= 0 {
			batch = exec.DefaultBatchSize
		}
		batch = db.degrade(db.gate.Pressure(), batch)
	}
	var observers []*Observer
	if run.Observer != nil || db.agg != nil {
		observers = make([]*Observer, n)
		observers[0] = run.Observer
		if observers[0] == nil {
			// The debug server aggregates across runs; give uninstrumented
			// runs observers so /metrics and /debug/shards reflect them too.
			observers[0] = obs.New()
		}
		for s := 1; s < n; s++ {
			observers[s] = obs.New()
		}
	}
	if db.agg != nil {
		for s, o := range observers {
			db.agg.Shard(s).Attach(o)
		}
	}
	if run.Tracer != nil {
		// Coordinator-level spans (the global commit instant) go to the
		// first tracer any run brings; per-shard engine spans go to each
		// run's own tracer below.
		db.tracerOnce.Do(func() { db.co.SetTracer(run.Tracer) })
	}

	plans := make([]shard.Plan, n)
	for s := 0; s < n; s++ {
		label := run.Label
		if label != "" {
			label = fmt.Sprintf("%s@s%d", run.Label, s)
		}
		tracer := run.Tracer
		if tracer == nil && db.shardTracers != nil {
			// Each shard's engine spans land on that shard's own ring, so
			// the merged /debug/trace shows them as separate processes.
			tracer = db.shardTracers[s]
		}
		cfg := exec.JobConfig{
			BatchSize:        batch,
			MaxIterations:    run.MaxIterations,
			Deadline:         deadline,
			StallTimeout:     stall,
			RegionOf:         run.RegionOf,
			IterationHook:    run.IterationHook,
			ConvergeTogether: run.ConvergeTogether,
			Tracer:           tracer,
			Label:            label,
			Chaos:            run.Chaos,
			Recorder:         run.Recorder,
		}
		if observers != nil {
			cfg.Observer = observers[s]
		}
		plans[s] = shard.Plan{Attach: attach[s], Subs: subs[s], Config: cfg}
	}

	uber := shard.UberRun{
		Isolation: run.Isolation,
		Plans:     plans,
		// The synchronous level's contract is global: no shard may enter a
		// round before every shard finished the previous one.
		GlobalBarrier: run.Isolation.Level == Synchronous,
	}
	inner, err := db.co.Submit(uber)
	if err != nil {
		if errors.Is(err, shard.ErrClosed) || errors.Is(err, exec.ErrPoolClosed) {
			err = ErrClosed
		}
		return fail(err)
	}

	h := &ShardedJobHandle{
		done:      make(chan struct{}),
		cancelCh:  make(chan struct{}),
		observers: observers,
	}
	h.inner.Store(inner)
	h.attempts.Store(1)
	if db.debug != nil {
		db.jobsMu.Lock()
		db.liveJobs[h] = jobMeta{deadline: deadline}
		db.jobsMu.Unlock()
	}
	// The supervisor logs commits from the global views (their chains are
	// the locals' chains, so after-images read identically), deduplicated
	// here since attachments may repeat a table.
	views := make([]*Table, 0, len(sharded))
	for _, st := range sharded {
		dup := false
		for _, v := range views {
			if v == st.View() {
				dup = true
				break
			}
		}
		if !dup {
			views = append(views, st.View())
		}
	}
	go db.superviseSharded(ctx, h, uber, policy, views, deadline)
	return h, nil
}

// superviseSharded drives one distributed handle to resolution: wait on
// the coordinator's handle, retry per policy on retryable failures (the
// coordinator aborted the failed attempt on every shard, so resubmission
// re-begins from scratch), resolve terminally otherwise.
func (db *ShardedDB) superviseSharded(ctx context.Context, h *ShardedJobHandle,
	uber shard.UberRun, policy RetryPolicy, views []*Table, deadline time.Duration) {
	defer db.handles.Done()
	defer db.gate.Release()
	if db.agg != nil {
		defer func() {
			for s, o := range h.observers {
				db.agg.Shard(s).Complete(o)
			}
		}()
	}
	defer db.settleJob(h, deadline)
	defer close(h.done)

	token := db.runID.Add(1)
	for attempt := 1; ; attempt++ {
		inner := h.inner.Load()
		select {
		case <-ctx.Done():
			inner.Cancel()
		case <-h.cancelCh:
			inner.Cancel()
		case <-inner.Done():
		}
		stats, ts, err := inner.Wait()
		h.stats = stats
		if err == nil {
			if db.dur != nil {
				if werr := db.dur.appendCommit(ts, views, inner.TraceID()); werr != nil {
					// Durably uncertain commits are never acknowledged.
					h.err = werr
					return
				}
			}
			h.ts = ts
			return
		}
		if errors.Is(err, chaos.ErrCrashed) {
			// A coordinator kill-point fired: the "process" is dead.
			// Freeze the WAL and resolve terminally — recovery, not retry,
			// is what follows a crash.
			db.dur.freeze()
			h.err = err
			return
		}
		if errors.Is(err, exec.ErrJobCancelled) && ctx.Err() != nil {
			err = ctx.Err()
		}
		delay, retry := policy.ShouldRetryFor(token, err, attempt)
		if !retry || ctx.Err() != nil || cancelled(h.cancelCh) {
			h.err = err
			return
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			h.err = ctx.Err()
			return
		case <-h.cancelCh:
			timer.Stop()
			h.err = err
			return
		}
		next, serr := db.co.Submit(uber)
		if serr != nil {
			if errors.Is(serr, shard.ErrClosed) || errors.Is(serr, exec.ErrPoolClosed) {
				serr = ErrClosed
			}
			h.err = serr
			return
		}
		h.inner.Store(next)
		h.attempts.Store(int32(attempt + 1))
	}
}

// RunML executes one ML algorithm as a distributed uber-transaction and
// blocks until it finished, returning per-shard stats.
func (db *ShardedDB) RunML(run MLRun) ([]ExecStats, error) {
	h, err := db.SubmitML(context.Background(), run)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}

// shardEnvs assembles one plan.Env per shard for a scattered query: each
// fragment pins its snapshot in its own shard's manager. One observer and
// tracer serve all fragments (counters accumulate across shards).
func (db *ShardedDB) shardEnvs(run QueryRun) []plan.Env {
	id := db.queryID.Add(1)
	envs := make([]plan.Env, db.cluster.Shards())
	for s := range envs {
		tracer := run.Tracer
		if tracer == nil && db.shardTracers != nil {
			tracer = db.shardTracers[s]
		}
		envs[s] = plan.Env{
			Mgr:        db.cluster.Kernel(s).Mgr(),
			Pool:       db.cluster.Kernel(s).Pool(),
			Obs:        run.Observer,
			Tracer:     tracer,
			Job:        id,
			NoPushdown: run.NoPushdown,
			NoPresize:  run.NoPresize,
		}
	}
	return envs
}

// rebindScan maps a scanned view table to a shard's local table for the
// scatter stage, or nil for tables this database does not shard.
func (db *ShardedDB) rebindScan(tbl *table.Table, s int) *table.Table {
	db.tblMu.RLock()
	defer db.tblMu.RUnlock()
	if st := db.byView[tbl]; st != nil {
		return st.Local(s)
	}
	return nil
}

// SubmitQuery starts one supervised distributed query and returns without
// waiting. The plan's scan/filter/project pipeline scatters — each shard's
// fragment runs at that shard's own pinned snapshot over only the rows it
// owns — and aggregates, sorts, and limits gather over the concatenated
// fragment results. Joins, iterate nodes, and RowRange predicates cannot
// run sharded and fail at submission. Supervision matches the single-
// kernel path: the same admission gate, default deadline, and retry
// policy. Per-operator stats are not reported for scattered queries
// (QueryHandle.Stats returns nil).
func (db *ShardedDB) SubmitQuery(ctx context.Context, run QueryRun) (*QueryHandle, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	db.handles.Add(1)
	db.mu.Unlock()

	if err := db.gate.Acquire(ctx, db.admitWait); err != nil {
		db.handles.Done()
		if run.Observer != nil && err == resilience.ErrOverloaded {
			run.Observer.Inc(0, obs.LoadSheds)
		}
		return nil, err
	}

	deadline := run.Deadline
	if deadline <= 0 {
		deadline = db.deadline
	}
	policy := db.retry
	if run.Retry != nil {
		policy = *run.Retry
	}
	envs := db.shardEnvs(run)
	if db.agg != nil {
		qobs := run.Observer
		if qobs == nil {
			qobs = obs.New()
		}
		// One observer serves every shard's fragment; it lives on shard 0's
		// aggregator (the fragments' counters are a cluster-wide account).
		for i := range envs {
			envs[i].Obs = qobs
		}
		db.agg.Shard(0).Attach(qobs)
	}

	h := &QueryHandle{done: make(chan struct{}), cancelCh: make(chan struct{})}
	go db.superviseShardedQuery(ctx, h, run.Plan, envs, deadline, policy)
	return h, nil
}

// ExplainQuery prepares p with the same rewrite pipeline a scattered
// execution uses and returns the planner's annotated tree (EXPLAIN —
// pushdown and pre-sizing decisions, no execution).
func (db *ShardedDB) ExplainQuery(p *Plan) (*ExplainNode, error) {
	return plan.Explain(p, db.shardEnvs(QueryRun{})[0])
}

// superviseShardedQuery drives one scattered query to resolution with the
// same deadline/cancel/retry vocabulary as the single-kernel query path.
func (db *ShardedDB) superviseShardedQuery(ctx context.Context, h *QueryHandle,
	p *Plan, envs []plan.Env, deadline time.Duration, policy RetryPolicy) {
	defer db.handles.Done()
	defer db.gate.Release()
	if db.agg != nil {
		defer db.agg.Shard(0).Complete(envs[0].Obs)
	}
	started := time.Now()
	// Scattered execution has no single root cursor, so the handle carries
	// the planner's EXPLAIN tree instead of a measured ANALYZE one.
	if expl, err := plan.Explain(p, envs[0]); err == nil {
		h.explain = expl
	}
	defer func() {
		rows := 0
		if h.result != nil {
			rows = len(h.result.Rows)
		}
		state := "done"
		if h.err != nil {
			state = "failed: " + h.err.Error()
		}
		info := introspect.QueryInfo{
			ID: envs[0].Job, State: state, Rows: rows,
			Attempts:      int(h.attempts.Load()),
			ElapsedMillis: time.Since(started).Milliseconds(),
		}
		if h.explain != nil {
			info.Explain = h.explain.Render()
		}
		db.recordQuery(info)
	}()
	defer close(h.done)

	token := envs[0].Job
	for attempt := 1; ; attempt++ {
		h.attempts.Store(int32(attempt))
		var qctx context.Context
		var cancel context.CancelFunc
		if deadline > 0 {
			qctx, cancel = context.WithTimeout(ctx, deadline)
		} else {
			qctx, cancel = context.WithCancel(ctx)
		}
		watcherDone := make(chan struct{})
		go func() {
			select {
			case <-h.cancelCh:
				cancel()
			case <-watcherDone:
			}
		}()
		rel, err := plan.ScatterGather(qctx, p, envs, db.rebindScan)
		close(watcherDone)
		cancel()
		switch {
		case err == nil:
			h.result = rel
			return
		case cancelled(h.cancelCh):
			h.err = ErrJobCancelled
			return
		case ctx.Err() != nil:
			h.err = ctx.Err()
			return
		case errors.Is(err, context.DeadlineExceeded):
			h.err = ErrJobDeadline
			return
		}
		delay, retry := policy.ShouldRetryFor(token, err, attempt)
		if !retry {
			h.err = err
			return
		}
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			h.err = ctx.Err()
			return
		case <-h.cancelCh:
			timer.Stop()
			h.err = err
			return
		}
	}
}

// RunQuery executes one distributed query and blocks until its
// materialized result is ready.
func (db *ShardedDB) RunQuery(ctx context.Context, run QueryRun) (*Relation, error) {
	h, err := db.SubmitQuery(ctx, run)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}

package relational

import "sort"

// sortOp materializes its child on Open and emits tuples in key order —
// the ORDER BY of the mini engine (MADlib-style drivers use it for top-k
// result inspection; it is also what the PageRank examples' "top 10 nodes"
// query would run through).
type sortOp struct {
	child Op
	less  func(a, b Tuple) bool
	rows  []Tuple
	pos   int
}

// NewSort returns an operator emitting the child's tuples ordered by less.
// The child is fully materialized on Open.
func NewSort(child Op, less func(a, b Tuple) bool) Op {
	return &sortOp{child: child, less: less}
}

// NewSortByFloat orders by the float64 column col, descending when desc.
func NewSortByFloat(child Op, col int, desc bool) Op {
	return NewSort(child, func(a, b Tuple) bool {
		if desc {
			return a.Float64(col) > b.Float64(col)
		}
		return a.Float64(col) < b.Float64(col)
	})
}

func (s *sortOp) Open() {
	s.child.Open()
	s.rows = s.rows[:0]
	for {
		t, ok := s.child.Next()
		if !ok {
			break
		}
		s.rows = append(s.rows, t.Clone())
	}
	s.child.Close()
	sort.SliceStable(s.rows, func(i, j int) bool { return s.less(s.rows[i], s.rows[j]) })
	s.pos = 0
}

func (s *sortOp) Close()            {}
func (s *sortOp) Columns() []string { return s.child.Columns() }

func (s *sortOp) Next() (Tuple, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	t := s.rows[s.pos]
	s.pos++
	return t, true
}

// limitOp truncates the stream after n tuples (LIMIT n).
type limitOp struct {
	child Op
	n     int
	seen  int
}

// NewLimit returns an operator passing through at most n tuples.
func NewLimit(child Op, n int) Op {
	return &limitOp{child: child, n: n}
}

func (l *limitOp) Open() {
	l.child.Open()
	l.seen = 0
}

func (l *limitOp) Close()            { l.child.Close() }
func (l *limitOp) Columns() []string { return l.child.Columns() }

func (l *limitOp) Next() (Tuple, bool) {
	if l.seen >= l.n {
		return nil, false
	}
	t, ok := l.child.Next()
	if !ok {
		return nil, false
	}
	l.seen++
	return t, true
}

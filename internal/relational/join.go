package relational

// hashJoin is an equi-join: the build side is hashed on Open, the probe
// side streams. Output tuples are probe columns followed by build columns.
// In left-outer mode, probe tuples without a match are emitted with
// zero-valued build columns.
type hashJoin struct {
	build, probe       Op
	buildKey, probeKey func(Tuple) int64
	outer              bool

	hint       Hints
	table      map[int64][]Tuple
	buildWidth int
	cols       []string
	buf        Tuple

	pending []Tuple // remaining build matches for the current probe tuple
	current Tuple   // current probe tuple
}

// NewHashJoin returns an inner equi-join of probe ⨝ build.
func NewHashJoin(probe, build Op, probeKey, buildKey func(Tuple) int64) Op {
	return newJoin(probe, build, probeKey, buildKey, false)
}

// NewHashLeftJoin returns a left-outer equi-join: every probe tuple is
// emitted at least once, with zeroed build columns when unmatched (SQL
// NULLs coalesced to 0, which is what the MADlib PageRank query needs for
// nodes without incoming edges).
func NewHashLeftJoin(probe, build Op, probeKey, buildKey func(Tuple) int64) Op {
	return newJoin(probe, build, probeKey, buildKey, true)
}

func newJoin(probe, build Op, probeKey, buildKey func(Tuple) int64, outer bool) Op {
	cols := append([]string(nil), probe.Columns()...)
	cols = append(cols, build.Columns()...)
	return &hashJoin{
		build: build, probe: probe,
		buildKey: buildKey, probeKey: probeKey,
		outer:      outer,
		buildWidth: len(build.Columns()),
		cols:       cols,
		buf:        make(Tuple, len(cols)),
	}
}

// OpenWith lets the planner pre-size the build-side hash table from its
// cardinality estimate, so Open's build phase never rehashes.
func (j *hashJoin) OpenWith(h Hints) {
	j.hint = h
	j.Open()
	j.hint = Hints{}
}

func (j *hashJoin) Open() {
	j.build.Open()
	j.table = make(map[int64][]Tuple, j.hint.BuildRows)
	for {
		t, ok := j.build.Next()
		if !ok {
			break
		}
		k := j.buildKey(t)
		j.table[k] = append(j.table[k], t.Clone())
	}
	j.build.Close()
	j.probe.Open()
	j.pending, j.current = nil, nil
}

func (j *hashJoin) Close()            { j.probe.Close() }
func (j *hashJoin) Columns() []string { return j.cols }

func (j *hashJoin) Next() (Tuple, bool) {
	for {
		if len(j.pending) > 0 {
			match := j.pending[0]
			j.pending = j.pending[1:]
			copy(j.buf, j.current)
			copy(j.buf[len(j.current):], match)
			return j.buf, true
		}
		t, ok := j.probe.Next()
		if !ok {
			return nil, false
		}
		matches := j.table[j.probeKey(t)]
		if len(matches) == 0 {
			if !j.outer {
				continue
			}
			copy(j.buf, t)
			for i := len(t); i < len(j.buf); i++ {
				j.buf[i] = 0
			}
			return j.buf, true
		}
		// Copy the probe tuple: it may alias a child buffer that the next
		// probe call overwrites while matches remain pending.
		j.current = append(j.current[:0], t...)
		j.pending = matches
	}
}

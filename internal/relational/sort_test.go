package relational

import "testing"

func TestSortByFloatAscDesc(t *testing.T) {
	in := rel([]string{"id", "v"}, []float64{1, 3}, []float64{2, 1}, []float64{3, 2})
	asc := Collect(NewSortByFloat(NewScan(in), 1, false))
	if asc.Rows[0].Float64(1) != 1 || asc.Rows[2].Float64(1) != 3 {
		t.Fatalf("asc order wrong: %v", asc.Rows)
	}
	desc := Collect(NewSortByFloat(NewScan(in), 1, true))
	if desc.Rows[0].Float64(1) != 3 || desc.Rows[2].Float64(1) != 1 {
		t.Fatalf("desc order wrong: %v", desc.Rows)
	}
	if desc.Cols[1] != "v" {
		t.Fatalf("columns lost: %v", desc.Cols)
	}
}

func TestSortStable(t *testing.T) {
	in := rel([]string{"id", "v"}, []float64{1, 5}, []float64{2, 5}, []float64{3, 5})
	out := Collect(NewSortByFloat(NewScan(in), 1, false))
	for i, want := range []int64{1, 2, 3} {
		if out.Rows[i].Int64(0) != want {
			t.Fatalf("stable order broken: %v", out.Rows)
		}
	}
}

func TestSortEmptyAndReopen(t *testing.T) {
	in := rel([]string{"id", "v"})
	op := NewSort(NewScan(in), func(a, b Tuple) bool { return a.Float64(1) < b.Float64(1) })
	out := Collect(op)
	if len(out.Rows) != 0 {
		t.Fatal("sorted empty input produced rows")
	}
	// Re-Open after adding rows re-materializes.
	p := make(Tuple, 2)
	p.SetInt64(0, 9)
	in.Rows = append(in.Rows, p)
	out = Collect(op)
	if len(out.Rows) != 1 {
		t.Fatal("sort did not re-materialize on reopen")
	}
}

func TestLimit(t *testing.T) {
	in := rel([]string{"id", "v"}, []float64{1, 1}, []float64{2, 2}, []float64{3, 3})
	out := Collect(NewLimit(NewScan(in), 2))
	if len(out.Rows) != 2 || out.Rows[1].Int64(0) != 2 {
		t.Fatalf("limit output: %v", out.Rows)
	}
	if got := Collect(NewLimit(NewScan(in), 0)); len(got.Rows) != 0 {
		t.Fatal("LIMIT 0 emitted rows")
	}
	if got := Collect(NewLimit(NewScan(in), 10)); len(got.Rows) != 3 {
		t.Fatal("limit larger than input truncated")
	}
}

func TestTopKPipeline(t *testing.T) {
	// SELECT id, v ORDER BY v DESC LIMIT 2 — the top-k idiom.
	in := rel([]string{"id", "v"}, []float64{1, 0.1}, []float64{2, 0.9}, []float64{3, 0.5}, []float64{4, 0.7})
	out := Collect(NewLimit(NewSortByFloat(NewScan(in), 1, true), 2))
	if len(out.Rows) != 2 || out.Rows[0].Int64(0) != 2 || out.Rows[1].Int64(0) != 4 {
		t.Fatalf("top-2 = %v", out.Rows)
	}
}

package relational

import (
	"sync"
	"testing"
	"time"

	"db4ml/internal/gc"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// pinFixture loads a Val-column table, takes a snapshot, then supersedes
// every row so the snapshot's versions are prunable the moment nothing
// pins them.
func pinFixture(t *testing.T, rows int) (*txn.Manager, *table.Table, storage.Timestamp, *gc.Reclaimer) {
	t.Helper()
	m := txn.NewManager()
	tbl := table.New("T", table.MustSchema(
		table.Column{Name: "ID", Type: table.Int64},
		table.Column{Name: "Val", Type: table.Float64},
	))
	m.PublishAt(func(ts storage.Timestamp) {
		p := tbl.Schema().NewPayload()
		for i := 0; i < rows; i++ {
			p.SetInt64(0, int64(i))
			p.SetFloat64(1, 1)
			if _, err := tbl.Append(ts, p); err != nil {
				t.Fatal(err)
			}
		}
	})
	snap := m.Stable()
	tx := m.Begin()
	for i := 0; i < rows; i++ {
		p, ok := tx.Read(tbl, table.RowID(i))
		if !ok {
			t.Fatalf("row %d unreadable", i)
		}
		p.SetFloat64(1, 2)
		if err := tx.Write(tbl, table.RowID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r := gc.New(m, func() []*table.Table { return []*table.Table{tbl} })
	return m, tbl, snap, r
}

// TestTableScanPinsSnapshotAgainstGC is the conviction test for the scan
// pinning bugfix: a GC pass in the middle of an open snapshot scan must
// not reclaim the versions the scan still has to visit. Before the fix,
// NewTableScan read at a fixed timestamp without registering it in the
// manager's active-snapshot registry, so the reclaimer's watermark (which
// only saw transactions) advanced past the scan and Prune cut the very
// versions it was reading — rows silently vanished mid-scan.
func TestTableScanPinsSnapshotAgainstGC(t *testing.T) {
	const rows = 64
	m, tbl, snap, r := pinFixture(t, rows)

	scan := NewTableScan(m, tbl, snap)
	scan.Open()
	seen := 0
	for ; seen < rows/2; seen++ {
		tup, ok := scan.Next()
		if !ok {
			t.Fatalf("scan ended early at %d", seen)
		}
		if got := tup.Float64(1); got != 1 {
			t.Fatalf("row %d: Val = %v, want snapshot value 1", seen, got)
		}
	}

	// Mid-scan GC pass: the scan's pin must clamp the watermark to snap.
	if st := r.Pass(); st.Pruned != 0 {
		t.Fatalf("reclaimer pruned %d versions under a pinned scan", st.Pruned)
	}
	if w := m.SafeWatermark(); w > snap {
		t.Fatalf("safe watermark %d advanced past pinned scan snapshot %d", w, snap)
	}

	for {
		tup, ok := scan.Next()
		if !ok {
			break
		}
		if got := tup.Float64(1); got != 1 {
			t.Fatalf("row %d: Val = %v after GC pass, want 1", seen, got)
		}
		seen++
	}
	if seen != rows {
		t.Fatalf("scan saw %d rows, want %d (GC reclaimed under the scan)", seen, rows)
	}
	scan.Close()

	// Close released the pin: now the superseded versions are fair game.
	if st := r.Pass(); st.Pruned == 0 {
		t.Fatal("reclaimer pruned nothing after the scan unpinned")
	}
}

// TestSlowScanSurvivesAggressiveReclaimer hammers a deliberately slow scan
// with a reclaimer pass every 100µs — the satellite's conviction setup.
// With the lifetime pin this can never lose a row; on the unpinned code it
// reliably did.
func TestSlowScanSurvivesAggressiveReclaimer(t *testing.T) {
	const rows = 48
	m, tbl, snap, r := pinFixture(t, rows)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(100 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				r.Pass()
			}
		}
	}()

	scan := NewTableScan(m, tbl, snap)
	scan.Open()
	seen := 0
	for {
		tup, ok := scan.Next()
		if !ok {
			break
		}
		if got := tup.Float64(1); got != 1 {
			t.Fatalf("row %d: Val = %v, want snapshot value 1", seen, got)
		}
		seen++
		time.Sleep(200 * time.Microsecond) // slow consumer: many GC passes per scan
	}
	scan.Close()
	close(stop)
	wg.Wait()
	if seen != rows {
		t.Fatalf("slow scan saw %d rows, want %d", seen, rows)
	}
}

// Package relational is a small Volcano-style relational query engine used
// by the MADlib baseline. MADlib runs ML algorithms as driver programs that
// issue one bulk SQL query per iteration against PostgreSQL (Section 1 and
// 8 of the paper); this package supplies the corresponding executor —
// table scans over ML-table snapshots, filter, project, hash join (inner
// and left outer), and hash aggregation — with full materialization
// between iterations, which is exactly the bulk-synchronous execution
// model whose overhead Figure 1 quantifies.
package relational

import (
	"fmt"

	"db4ml/internal/storage"
	"db4ml/internal/table"
)

// Tuple is one row flowing through the operator tree; columns use the same
// 64-bit bit-cast encoding as the storage layer.
type Tuple = storage.Payload

// Relation is a fully materialized intermediate result.
type Relation struct {
	Cols []string
	Rows []Tuple
}

// ColIndex returns the position of the named column.
func (r *Relation) ColIndex(name string) (int, error) {
	for i, c := range r.Cols {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("relational: no column %q", name)
}

// Op is a Volcano-style pull iterator. Next returns ok=false at the end of
// the stream. Returned tuples may alias operator-internal buffers and are
// valid only until the following Next call; Collect copies them.
type Op interface {
	Open()
	Next() (Tuple, bool)
	Close()
	Columns() []string
}

// Collect drains op into a materialized relation.
func Collect(op Op) *Relation {
	op.Open()
	defer op.Close()
	out := &Relation{Cols: append([]string(nil), op.Columns()...)}
	for {
		t, ok := op.Next()
		if !ok {
			return out
		}
		out.Rows = append(out.Rows, t.Clone())
	}
}

// scan iterates a materialized relation.
type scan struct {
	rel *Relation
	pos int
}

// NewScan returns an operator streaming rel's rows.
func NewScan(rel *Relation) Op { return &scan{rel: rel} }

func (s *scan) Open()             { s.pos = 0 }
func (s *scan) Close()            {}
func (s *scan) Columns() []string { return s.rel.Cols }
func (s *scan) Next() (Tuple, bool) {
	if s.pos >= len(s.rel.Rows) {
		return nil, false
	}
	t := s.rel.Rows[s.pos]
	s.pos++
	return t, true
}

// tableScan streams the snapshot of an ML-table at a fixed timestamp —
// the in-database access path of the MADlib baseline.
type tableScan struct {
	tbl  *table.Table
	ts   storage.Timestamp
	pos  int
	n    int
	cols []string
}

// NewTableScan returns an operator streaming the version of every row of
// tbl visible at ts.
func NewTableScan(tbl *table.Table, ts storage.Timestamp) Op {
	cols := make([]string, tbl.Schema().Width())
	for i, c := range tbl.Schema().Columns() {
		cols[i] = c.Name
	}
	return &tableScan{tbl: tbl, ts: ts, cols: cols}
}

func (s *tableScan) Open() {
	s.pos = 0
	s.n = s.tbl.NumRows()
}
func (s *tableScan) Close()            {}
func (s *tableScan) Columns() []string { return s.cols }
func (s *tableScan) Next() (Tuple, bool) {
	for s.pos < s.n {
		row := table.RowID(s.pos)
		s.pos++
		if p, ok := s.tbl.Read(row, s.ts); ok {
			return p, true
		}
	}
	return nil, false
}

// filter drops tuples failing a predicate.
type filter struct {
	child Op
	pred  func(Tuple) bool
}

// NewFilter returns a selection operator.
func NewFilter(child Op, pred func(Tuple) bool) Op {
	return &filter{child: child, pred: pred}
}

func (f *filter) Open()             { f.child.Open() }
func (f *filter) Close()            { f.child.Close() }
func (f *filter) Columns() []string { return f.child.Columns() }
func (f *filter) Next() (Tuple, bool) {
	for {
		t, ok := f.child.Next()
		if !ok {
			return nil, false
		}
		if f.pred(t) {
			return t, true
		}
	}
}

// project maps tuples through scalar expressions.
type project struct {
	child Op
	cols  []string
	exprs []func(Tuple) uint64
	buf   Tuple
}

// NewProject returns a projection computing each output column with the
// corresponding expression.
func NewProject(child Op, cols []string, exprs []func(Tuple) uint64) Op {
	if len(cols) != len(exprs) {
		panic("relational: project columns/exprs mismatch")
	}
	return &project{child: child, cols: cols, exprs: exprs, buf: make(Tuple, len(cols))}
}

func (p *project) Open()             { p.child.Open() }
func (p *project) Close()            { p.child.Close() }
func (p *project) Columns() []string { return p.cols }
func (p *project) Next() (Tuple, bool) {
	t, ok := p.child.Next()
	if !ok {
		return nil, false
	}
	for i, e := range p.exprs {
		p.buf[i] = e(t)
	}
	return p.buf, true
}

// Package relational is a small Volcano-style relational query engine used
// by the MADlib baseline. MADlib runs ML algorithms as driver programs that
// issue one bulk SQL query per iteration against PostgreSQL (Section 1 and
// 8 of the paper); this package supplies the corresponding executor —
// table scans over ML-table snapshots, filter, project, hash join (inner
// and left outer), and hash aggregation — with full materialization
// between iterations, which is exactly the bulk-synchronous execution
// model whose overhead Figure 1 quantifies.
package relational

import (
	"fmt"
	"sync"

	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// Tuple is one row flowing through the operator tree; columns use the same
// 64-bit bit-cast encoding as the storage layer.
type Tuple = storage.Payload

// Relation is a fully materialized intermediate result.
type Relation struct {
	Cols []string
	Rows []Tuple

	// colIdx memoizes Cols name→position on first ColIndex call. Plan
	// building resolves every expression through ColIndex, so the lookup
	// must not be a linear search per expression.
	colOnce sync.Once
	colIdx  map[string]int
}

// ColIndex returns the position of the named column. The name→index map is
// built once on first use; callers must not mutate Cols afterwards.
func (r *Relation) ColIndex(name string) (int, error) {
	r.colOnce.Do(func() {
		r.colIdx = make(map[string]int, len(r.Cols))
		for i, c := range r.Cols {
			if _, dup := r.colIdx[c]; !dup {
				r.colIdx[c] = i
			}
		}
	})
	if i, ok := r.colIdx[name]; ok {
		return i, nil
	}
	return 0, fmt.Errorf("relational: no column %q", name)
}

// Op is a Volcano-style pull iterator. Next returns ok=false at the end of
// the stream. Returned tuples may alias operator-internal buffers and are
// valid only until the following Next call; Collect copies them.
type Op interface {
	Open()
	Next() (Tuple, bool)
	Close()
	Columns() []string
}

// Hints carries planner-derived execution hints into an operator's Open.
// Operators that can exploit them implement HintedOp; all hints are
// advisory — a zero Hints behaves exactly like a plain Open.
type Hints struct {
	// BuildRows estimates the row count an operator will buffer on Open —
	// the build side of a hash join, the group universe of a hash
	// aggregate — so the hash table is allocated once at its final size
	// instead of growing through rehashes.
	BuildRows int
}

// HintedOp is the grown operator API: OpenWith is Open plus planner hints.
// Callers that hold plain Ops use OpenHinted, which falls back to Open.
type HintedOp interface {
	Op
	OpenWith(Hints)
}

// OpenHinted opens op with hints when it supports them, else plainly.
func OpenHinted(op Op, h Hints) {
	if ho, ok := op.(HintedOp); ok {
		ho.OpenWith(h)
		return
	}
	op.Open()
}

// Collect drains op into a materialized relation.
func Collect(op Op) *Relation {
	op.Open()
	defer op.Close()
	out := &Relation{Cols: append([]string(nil), op.Columns()...)}
	for {
		t, ok := op.Next()
		if !ok {
			return out
		}
		out.Rows = append(out.Rows, t.Clone())
	}
}

// scan iterates a materialized relation.
type scan struct {
	rel *Relation
	pos int
}

// NewScan returns an operator streaming rel's rows.
func NewScan(rel *Relation) Op { return &scan{rel: rel} }

func (s *scan) Open()             { s.pos = 0 }
func (s *scan) Close()            {}
func (s *scan) Columns() []string { return s.rel.Cols }
func (s *scan) Next() (Tuple, bool) {
	if s.pos >= len(s.rel.Rows) {
		return nil, false
	}
	t := s.rel.Rows[s.pos]
	s.pos++
	return t, true
}

// tableScan streams the snapshot of an ML-table at a fixed timestamp —
// the in-database access path of the MADlib baseline. While open it holds
// a pin on its read timestamp in the transaction manager's active-snapshot
// registry: without the pin, the version garbage collector's watermark
// (txn.Manager.SafeWatermark) only accounts for transactions, and a
// reclaimer pass during a long scan could prune the very versions the scan
// still has to visit, making rows silently vanish mid-scan.
type tableScan struct {
	tbl    *table.Table
	mgr    *txn.Manager
	ts     storage.Timestamp
	hint   table.ScanHint
	pushed bool // serve hint-filtered payloads in place, no clone

	pos    int
	n      int
	cols   []string
	pinned bool
}

// NewTableScan returns an operator streaming the version of every row of
// tbl visible at ts. The scan pins ts in mgr's active-snapshot registry
// for its Open→Close lifetime so version GC can never reclaim versions it
// still needs; mgr may be nil only for tables no reclaimer runs against
// (tests without GC).
func NewTableScan(mgr *txn.Manager, tbl *table.Table, ts storage.Timestamp) Op {
	return &tableScan{tbl: tbl, mgr: mgr, ts: ts, cols: tableCols(tbl)}
}

// NewTableScanHinted returns a pushed-down table scan: rows outside the
// hint's row-id range or failing its single-column predicate are rejected
// inside the storage layer, against the in-place version payload, and are
// never materialized. Emitted tuples alias the version payload (valid
// until the next Next call, per the Op contract) — the scan does not clone
// at all. Pinning behaves like NewTableScan.
func NewTableScanHinted(mgr *txn.Manager, tbl *table.Table, ts storage.Timestamp, h table.ScanHint) Op {
	return &tableScan{tbl: tbl, mgr: mgr, ts: ts, hint: h, pushed: true, cols: tableCols(tbl)}
}

func tableCols(tbl *table.Table) []string {
	cols := make([]string, tbl.Schema().Width())
	for i, c := range tbl.Schema().Columns() {
		cols[i] = c.Name
	}
	return cols
}

func (s *tableScan) Open() {
	if s.mgr != nil && !s.pinned {
		s.mgr.PinAt(s.ts)
		s.pinned = true
	}
	s.pos = int(s.hint.Lo)
	s.n = s.tbl.NumRows()
	if s.pushed && s.hint.Hi != 0 && int(s.hint.Hi) < s.n {
		s.n = int(s.hint.Hi)
	}
}

func (s *tableScan) Close() {
	if s.pinned {
		s.pinned = false
		s.mgr.UnpinSnapshot(s.ts)
	}
}

func (s *tableScan) Columns() []string { return s.cols }

func (s *tableScan) Next() (Tuple, bool) {
	for s.pos < s.n {
		row := table.RowID(s.pos)
		s.pos++
		if !s.pushed {
			if p, ok := s.tbl.Read(row, s.ts); ok {
				return p, true
			}
			continue
		}
		c := s.tbl.Chain(row)
		if c == nil {
			continue
		}
		rec, ok := c.VisibleMatch(s.ts, s.hint.Col, s.hint.Test)
		if !ok {
			continue
		}
		return rec.Payload, true
	}
	return nil, false
}

// filter drops tuples failing a predicate.
type filter struct {
	child Op
	pred  func(Tuple) bool
}

// NewFilter returns a selection operator.
func NewFilter(child Op, pred func(Tuple) bool) Op {
	return &filter{child: child, pred: pred}
}

func (f *filter) Open()             { f.child.Open() }
func (f *filter) Close()            { f.child.Close() }
func (f *filter) Columns() []string { return f.child.Columns() }
func (f *filter) Next() (Tuple, bool) {
	for {
		t, ok := f.child.Next()
		if !ok {
			return nil, false
		}
		if f.pred(t) {
			return t, true
		}
	}
}

// project maps tuples through scalar expressions.
type project struct {
	child Op
	cols  []string
	exprs []func(Tuple) uint64
	buf   Tuple
}

// NewProject returns a projection computing each output column with the
// corresponding expression.
func NewProject(child Op, cols []string, exprs []func(Tuple) uint64) Op {
	if len(cols) != len(exprs) {
		panic("relational: project columns/exprs mismatch")
	}
	return &project{child: child, cols: cols, exprs: exprs, buf: make(Tuple, len(cols))}
}

func (p *project) Open()             { p.child.Open() }
func (p *project) Close()            { p.child.Close() }
func (p *project) Columns() []string { return p.cols }
func (p *project) Next() (Tuple, bool) {
	t, ok := p.child.Next()
	if !ok {
		return nil, false
	}
	for i, e := range p.exprs {
		p.buf[i] = e(t)
	}
	return p.buf, true
}

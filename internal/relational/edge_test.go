package relational

import "testing"

// TestHashLeftJoinNullSideSemantics pins down the null-side contract of
// the left-outer join: every probe row appears at least once; unmatched
// probe rows appear exactly once with every build column zero; a probe
// row with k matches appears k times (never an extra null row); build
// rows without a probe partner never surface.
func TestHashLeftJoinNullSideSemantics(t *testing.T) {
	probe := rel([]string{"id", "pv"},
		[]float64{1, 10}, // unmatched
		[]float64{2, 20}, // matches twice
		[]float64{3, 30}, // unmatched
		[]float64{4, 40}, // matches once
	)
	build := rel([]string{"bid", "bv"},
		[]float64{2, 200}, []float64{2, 201}, []float64{4, 400},
		[]float64{9, 900}, // no probe partner: must not appear
	)
	out := Collect(NewHashLeftJoin(
		NewScan(probe), NewScan(build),
		func(t Tuple) int64 { return t.Int64(0) },
		func(t Tuple) int64 { return t.Int64(0) },
	))
	if len(out.Rows) != 5 {
		t.Fatalf("left join produced %d rows, want 5: %+v", len(out.Rows), out.Rows)
	}
	counts := map[int64]int{}
	for _, r := range out.Rows {
		id := r.Int64(0)
		counts[id]++
		switch id {
		case 1, 3:
			// Null side: all build columns must be zero words.
			if r.Int64(2) != 0 || r.Float64(3) != 0 {
				t.Fatalf("unmatched row %d has non-zero build cols: %v", id, r)
			}
		case 2, 4:
			if r.Int64(2) != id {
				t.Fatalf("matched row %d joined to build key %d", id, r.Int64(2))
			}
			if bv := r.Float64(3); bv < 100*float64(id) || bv >= 100*float64(id)+100 {
				t.Fatalf("row %d joined to wrong build row: %v", id, r)
			}
		case 9:
			t.Fatalf("build-only key 9 leaked into left-join output: %v", r)
		}
	}
	want := map[int64]int{1: 1, 2: 2, 3: 1, 4: 1}
	for id, n := range want {
		if counts[id] != n {
			t.Fatalf("probe id %d emitted %d times, want %d", id, counts[id], n)
		}
	}
}

// TestHashLeftJoinEmptyBuild: with an empty build side every probe row is
// a null-side row, in probe order.
func TestHashLeftJoinEmptyBuild(t *testing.T) {
	probe := rel([]string{"id", "pv"}, []float64{5, 50}, []float64{6, 60})
	build := rel([]string{"bid", "bv"})
	out := Collect(NewHashLeftJoin(
		NewScan(probe), NewScan(build),
		func(t Tuple) int64 { return t.Int64(0) },
		func(t Tuple) int64 { return t.Int64(0) },
	))
	if len(out.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(out.Rows))
	}
	for i, r := range out.Rows {
		if r.Int64(0) != probe.Rows[i].Int64(0) {
			t.Fatalf("probe order not preserved: %v", out.Rows)
		}
		if r.Int64(2) != 0 || r.Float64(3) != 0 {
			t.Fatalf("null side not zeroed: %v", r)
		}
	}
}

// TestHashAggregateSingleGroup: all input rows collapsing into one group
// is the other boundary next to empty input — one output row, correct
// sum/count, and the group key preserved.
func TestHashAggregateSingleGroup(t *testing.T) {
	in := rel([]string{"g", "v"},
		[]float64{7, 1.5}, []float64{7, 2.5}, []float64{7, 4})
	sum := Collect(NewHashAggregate(NewScan(in), Sum, "g", "total",
		func(t Tuple) int64 { return t.Int64(0) },
		func(t Tuple) float64 { return t.Float64(1) }))
	if len(sum.Rows) != 1 {
		t.Fatalf("sum groups = %d, want 1: %+v", len(sum.Rows), sum.Rows)
	}
	if sum.Rows[0].Int64(0) != 7 || sum.Rows[0].Float64(1) != 8 {
		t.Fatalf("single-group sum = %v, want (7, 8)", sum.Rows[0])
	}
	if sum.Cols[0] != "g" || sum.Cols[1] != "total" {
		t.Fatalf("output columns = %v", sum.Cols)
	}
	cnt := Collect(NewHashAggregate(NewScan(in), Count, "g", "n",
		func(t Tuple) int64 { return t.Int64(0) }, nil))
	if len(cnt.Rows) != 1 || cnt.Rows[0].Float64(1) != 3 {
		t.Fatalf("single-group count = %+v, want one row n=3", cnt.Rows)
	}
}

package relational

import "sort"

// AggKind selects the aggregation function.
type AggKind int

const (
	// Sum adds a float64 expression per group.
	Sum AggKind = iota
	// Count counts tuples per group.
	Count
)

// hashAggregate groups the child by an int64 key and aggregates one
// expression. Output tuples are (group, agg) with the group key ascending
// so results are deterministic.
type hashAggregate struct {
	child Op
	key   func(Tuple) int64
	arg   func(Tuple) float64
	kind  AggKind
	cols  []string

	hint Hints
	keys []int64
	accs map[int64]float64
	pos  int
	buf  Tuple
}

// NewHashAggregate returns a grouped aggregation: SELECT key, agg(arg)
// GROUP BY key, emitted in ascending key order. arg may be nil for Count.
func NewHashAggregate(child Op, kind AggKind, keyCol, aggCol string, key func(Tuple) int64, arg func(Tuple) float64) Op {
	return &hashAggregate{
		child: child, key: key, arg: arg, kind: kind,
		cols: []string{keyCol, aggCol},
		buf:  make(Tuple, 2),
	}
}

// OpenWith lets the planner pre-size the accumulator table from its group
// cardinality estimate, avoiding rehashes during Open's build phase.
func (a *hashAggregate) OpenWith(h Hints) {
	a.hint = h
	a.Open()
	a.hint = Hints{}
}

func (a *hashAggregate) Open() {
	a.child.Open()
	a.accs = make(map[int64]float64, a.hint.BuildRows)
	for {
		t, ok := a.child.Next()
		if !ok {
			break
		}
		k := a.key(t)
		switch a.kind {
		case Sum:
			a.accs[k] += a.arg(t)
		case Count:
			a.accs[k]++
		}
	}
	a.child.Close()
	a.keys = a.keys[:0]
	for k := range a.accs {
		a.keys = append(a.keys, k)
	}
	sort.Slice(a.keys, func(i, j int) bool { return a.keys[i] < a.keys[j] })
	a.pos = 0
}

func (a *hashAggregate) Close()            {}
func (a *hashAggregate) Columns() []string { return a.cols }

func (a *hashAggregate) Next() (Tuple, bool) {
	if a.pos >= len(a.keys) {
		return nil, false
	}
	k := a.keys[a.pos]
	a.pos++
	a.buf.SetInt64(0, k)
	a.buf.SetFloat64(1, a.accs[k])
	return a.buf, true
}

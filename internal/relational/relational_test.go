package relational

import (
	"testing"

	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

func rel(cols []string, rows ...[]float64) *Relation {
	r := &Relation{Cols: cols}
	for _, vals := range rows {
		t := make(Tuple, len(vals))
		for i, v := range vals {
			// Column 0 is conventionally an int key in these tests.
			if i == 0 {
				t.SetInt64(i, int64(v))
			} else {
				t.SetFloat64(i, v)
			}
		}
		r.Rows = append(r.Rows, t)
	}
	return r
}

func TestScanAndCollect(t *testing.T) {
	in := rel([]string{"id", "v"}, []float64{1, 10}, []float64{2, 20})
	out := Collect(NewScan(in))
	if len(out.Rows) != 2 || out.Cols[1] != "v" {
		t.Fatalf("collected %+v", out)
	}
	if out.Rows[1].Float64(1) != 20 {
		t.Fatalf("row values wrong: %v", out.Rows[1])
	}
	// Collect must deep-copy.
	out.Rows[0].SetFloat64(1, 999)
	if in.Rows[0].Float64(1) == 999 {
		t.Fatal("Collect aliased input rows")
	}
}

func TestColIndex(t *testing.T) {
	r := rel([]string{"a", "b"})
	if i, err := r.ColIndex("b"); err != nil || i != 1 {
		t.Fatalf("ColIndex = (%d, %v)", i, err)
	}
	if _, err := r.ColIndex("z"); err == nil {
		t.Fatal("missing column found")
	}
}

func TestFilter(t *testing.T) {
	in := rel([]string{"id", "v"}, []float64{1, 10}, []float64{2, 20}, []float64{3, 30})
	out := Collect(NewFilter(NewScan(in), func(t Tuple) bool { return t.Float64(1) >= 20 }))
	if len(out.Rows) != 2 {
		t.Fatalf("filter kept %d rows", len(out.Rows))
	}
	if out.Rows[0].Int64(0) != 2 {
		t.Fatalf("wrong rows kept: %v", out.Rows)
	}
}

func TestProject(t *testing.T) {
	in := rel([]string{"id", "v"}, []float64{1, 10}, []float64{2, 20})
	op := NewProject(NewScan(in),
		[]string{"id", "double"},
		[]func(Tuple) uint64{
			func(t Tuple) uint64 { return t[0] },
			func(t Tuple) uint64 {
				var out storage.Payload = make(storage.Payload, 1)
				out.SetFloat64(0, t.Float64(1)*2)
				return out[0]
			},
		})
	out := Collect(op)
	if out.Rows[1].Float64(1) != 40 {
		t.Fatalf("projection wrong: %v", out.Rows)
	}
	if out.Cols[1] != "double" {
		t.Fatalf("projected columns: %v", out.Cols)
	}
}

func TestProjectPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched project accepted")
		}
	}()
	NewProject(NewScan(rel([]string{"a"})), []string{"x", "y"}, []func(Tuple) uint64{func(Tuple) uint64 { return 0 }})
}

func TestHashJoinInner(t *testing.T) {
	left := rel([]string{"id", "lv"}, []float64{1, 10}, []float64{2, 20}, []float64{3, 30})
	right := rel([]string{"rid", "rv"}, []float64{2, 200}, []float64{3, 300}, []float64{3, 333})
	out := Collect(NewHashJoin(
		NewScan(left), NewScan(right),
		func(t Tuple) int64 { return t.Int64(0) },
		func(t Tuple) int64 { return t.Int64(0) },
	))
	// id=1 unmatched, id=2 matches once, id=3 matches twice.
	if len(out.Rows) != 3 {
		t.Fatalf("inner join produced %d rows: %+v", len(out.Rows), out.Rows)
	}
	if len(out.Cols) != 4 {
		t.Fatalf("join columns: %v", out.Cols)
	}
	for _, row := range out.Rows {
		if row.Int64(0) != row.Int64(2) {
			t.Fatalf("join key mismatch in row %v", row)
		}
	}
}

func TestHashLeftJoin(t *testing.T) {
	left := rel([]string{"id", "lv"}, []float64{1, 10}, []float64{2, 20})
	right := rel([]string{"rid", "rv"}, []float64{2, 200})
	out := Collect(NewHashLeftJoin(
		NewScan(left), NewScan(right),
		func(t Tuple) int64 { return t.Int64(0) },
		func(t Tuple) int64 { return t.Int64(0) },
	))
	if len(out.Rows) != 2 {
		t.Fatalf("left join produced %d rows", len(out.Rows))
	}
	// Unmatched row 1 has zeroed right columns.
	if out.Rows[0].Int64(0) != 1 || out.Rows[0].Float64(3) != 0 {
		t.Fatalf("unmatched row wrong: %v", out.Rows[0])
	}
	if out.Rows[1].Float64(3) != 200 {
		t.Fatalf("matched row wrong: %v", out.Rows[1])
	}
}

func TestHashJoinDuplicateProbeBufferSafety(t *testing.T) {
	// A probe tuple with multiple matches must not be corrupted by the
	// probe child's buffer reuse (project reuses its buffer).
	probe := NewProject(
		NewScan(rel([]string{"id"}, []float64{7}, []float64{8})),
		[]string{"id"},
		[]func(Tuple) uint64{func(t Tuple) uint64 { return t[0] }},
	)
	build := rel([]string{"bid", "bv"}, []float64{7, 1}, []float64{7, 2}, []float64{8, 3})
	out := Collect(NewHashJoin(
		probe, NewScan(build),
		func(t Tuple) int64 { return t.Int64(0) },
		func(t Tuple) int64 { return t.Int64(0) },
	))
	if len(out.Rows) != 3 {
		t.Fatalf("rows = %d", len(out.Rows))
	}
	for _, r := range out.Rows {
		if r.Int64(0) != r.Int64(1) {
			t.Fatalf("probe buffer corruption: %v", r)
		}
	}
}

func TestHashAggregateSumAndCount(t *testing.T) {
	in := rel([]string{"g", "v"},
		[]float64{1, 10}, []float64{2, 5}, []float64{1, 32}, []float64{2, 5})
	sum := Collect(NewHashAggregate(NewScan(in), Sum, "g", "total",
		func(t Tuple) int64 { return t.Int64(0) },
		func(t Tuple) float64 { return t.Float64(1) }))
	if len(sum.Rows) != 2 {
		t.Fatalf("groups = %d", len(sum.Rows))
	}
	if sum.Rows[0].Int64(0) != 1 || sum.Rows[0].Float64(1) != 42 {
		t.Fatalf("sum group 1 = %v", sum.Rows[0])
	}
	if sum.Rows[1].Float64(1) != 10 {
		t.Fatalf("sum group 2 = %v", sum.Rows[1])
	}
	cnt := Collect(NewHashAggregate(NewScan(in), Count, "g", "n",
		func(t Tuple) int64 { return t.Int64(0) }, nil))
	if cnt.Rows[0].Float64(1) != 2 || cnt.Rows[1].Float64(1) != 2 {
		t.Fatalf("counts = %v", cnt.Rows)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	out := Collect(NewHashAggregate(NewScan(rel([]string{"g", "v"})), Sum, "g", "s",
		func(t Tuple) int64 { return t.Int64(0) },
		func(t Tuple) float64 { return t.Float64(1) }))
	if len(out.Rows) != 0 {
		t.Fatal("aggregate of empty input produced rows")
	}
}

func TestTableScanSnapshot(t *testing.T) {
	m := txn.NewManager()
	tbl := table.New("Node", table.MustSchema(
		table.Column{Name: "NodeID", Type: table.Int64},
		table.Column{Name: "PR", Type: table.Float64},
	))
	m.PublishAt(func(ts storage.Timestamp) {
		for i := 0; i < 5; i++ {
			p := tbl.Schema().NewPayload()
			p.SetInt64(0, int64(i))
			p.SetFloat64(1, float64(i))
			if _, err := tbl.Append(ts, p); err != nil {
				t.Fatal(err)
			}
		}
	})
	snapTS := m.Stable()
	// A later OLTP update must not show up in the earlier snapshot scan.
	tx := m.Begin()
	p, _ := tx.Read(tbl, 0)
	p.SetFloat64(1, 99)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	out := Collect(NewTableScan(m, tbl, snapTS))
	if len(out.Rows) != 5 {
		t.Fatalf("scan rows = %d", len(out.Rows))
	}
	if out.Rows[0].Float64(1) != 0 {
		t.Fatalf("snapshot scan saw later commit: %v", out.Rows[0])
	}
	if out.Cols[0] != "NodeID" || out.Cols[1] != "PR" {
		t.Fatalf("scan columns = %v", out.Cols)
	}
	now := Collect(NewTableScan(m, tbl, m.Stable()))
	if now.Rows[0].Float64(1) != 99 {
		t.Fatal("current scan missed the commit")
	}
}

// A composed pipeline resembling one MADlib PageRank iteration:
// SELECT e.to, SUM(n.pr / d.cnt) FROM edge e JOIN node n ON e.from=n.id
// JOIN outdeg d ON e.from=d.id GROUP BY e.to.
func TestComposedPipeline(t *testing.T) {
	edge := rel([]string{"from", "to"}, []float64{1, 2}, []float64{1, 3}, []float64{2, 3})
	// encode "to" as int in col 1: rebuild rows properly
	edge.Rows[0].SetInt64(1, 2)
	edge.Rows[1].SetInt64(1, 3)
	edge.Rows[2].SetInt64(1, 3)
	node := rel([]string{"id", "pr"}, []float64{1, 0.6}, []float64{2, 0.4}, []float64{3, 0})
	outdeg := Collect(NewHashAggregate(NewScan(edge), Count, "id", "cnt",
		func(t Tuple) int64 { return t.Int64(0) }, nil))
	joined := NewHashJoin(
		NewHashJoin(NewScan(edge), NewScan(node),
			func(t Tuple) int64 { return t.Int64(0) },
			func(t Tuple) int64 { return t.Int64(0) }),
		NewScan(outdeg),
		func(t Tuple) int64 { return t.Int64(0) },
		func(t Tuple) int64 { return t.Int64(0) },
	)
	contrib := Collect(NewHashAggregate(joined, Sum, "to", "incoming",
		func(t Tuple) int64 { return t.Int64(1) },
		func(t Tuple) float64 { return t.Float64(3) / t.Float64(5) }))
	if len(contrib.Rows) != 2 {
		t.Fatalf("contrib groups = %d: %v", len(contrib.Rows), contrib.Rows)
	}
	// Node 2 receives 0.6/2; node 3 receives 0.6/2 + 0.4/1.
	if got := contrib.Rows[0].Float64(1); got != 0.3 {
		t.Fatalf("node 2 incoming = %v", got)
	}
	if got := contrib.Rows[1].Float64(1); got != 0.7 {
		t.Fatalf("node 3 incoming = %v", got)
	}
}

// Package crashsim is the kill-point recovery harness: it runs a real
// workload against a durable kernel, "kills" the process at an injected
// crash point (internal/chaos kill-points fired inside the commit path, the
// WAL appender, the 2PC coordinator, or the checkpointer), recovers a fresh
// kernel from the surviving log directory, and checks the recovered state
// against the committed-exactly-or-absent contract with
// check.CheckRecoveryAtomicity.
//
// A trial is three phases over one shared directory:
//
//	A (seed)    — open, create the counter table, bulk-load the baseline,
//	              close cleanly. No killer armed.
//	B (victim)  — reopen (exercising recovery), optionally checkpoint, run
//	              the increment workload into the armed kill-point. The
//	              kernel is discarded exactly as the crash left it.
//	C (witness) — reopen once more, recovering from whatever phase B's
//	              crash left on disk, and probe every row.
//
// The workload is the counter ring from internal/check's sweeps: sub-
// transaction i owns row i and increments it from the baseline (0) to
// Target, so the recovered table is its own oracle — every row must read 0
// (the commit vanished whole) or Target (it survived whole). An
// acknowledged run may only read Target.
package crashsim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"db4ml"
	"db4ml/internal/chaos"
	"db4ml/internal/check"
	"db4ml/internal/storage"
)

// jobLabel tags the trial's events in the recorded history.
const jobLabel = "crash-trial"

// tableName is the counter table.
const tableName = "C"

// Config describes one crash trial.
type Config struct {
	// Shards is the kernel count; 1 runs the single-kernel facade, >1 the
	// sharded facade (round-robin placement, so rows spread over shards and
	// the 2PC windows are real).
	Shards int
	// Kill is the armed kill-point; chaos.CrashNone runs a clean-restart
	// control trial. A point the run never reaches (CrashBetweenShardCommits
	// on one shard) also degenerates to a clean trial — the sweep asserts
	// recovery is sound either way.
	Kill chaos.CrashPoint
	// Rows is the counter-ring size (default 8).
	Rows int
	// Target is the per-row increment target (default 4).
	Target uint64
	// Policy is the WAL fsync policy (default db4ml.WALSyncAlways).
	Policy db4ml.WALSyncPolicy
	// CheckpointMid takes a checkpoint in phase B before the workload, so
	// phase C recovers from a checkpoint plus a WAL tail rather than the
	// log alone.
	CheckpointMid bool
	// BreakRecovery deliberately destroys the WAL segments between the
	// crash and recovery — a planted durability bug. A trial with an
	// acknowledged commit must then FAIL the check; the sweep uses it to
	// prove the checker convicts broken recovery rather than vacuously
	// passing.
	BreakRecovery bool
	// Dir is the WAL/checkpoint directory (required; trials sharing a Dir
	// share a history).
	Dir string
}

// Outcome reports one trial.
type Outcome struct {
	// Acked is whether the workload's uber-commit was acknowledged to the
	// caller (Wait returned nil). Acknowledged commits must survive.
	Acked bool
	// AckedTS is the acknowledged commit timestamp (zero when !Acked).
	AckedTS db4ml.Timestamp
	// Killed is whether the armed kill-point actually fired.
	Killed bool
	// RecoveredStable is the witness kernel's stable watermark.
	RecoveredStable db4ml.Timestamp
	// Report is the recovery-atomicity verdict over the witness probes.
	Report check.Report
}

// incSub increments its row by 1 per committed iteration until target.
type incSub struct {
	tbl    *db4ml.Table
	row    db4ml.RowID
	target float64
	rec    *storage.IterativeRecord
	buf    db4ml.Payload
	cur    float64
}

func (s *incSub) Begin(ctx *db4ml.Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(db4ml.Payload, 2)
}

func (s *incSub) Execute(ctx *db4ml.Ctx) {
	ctx.Read(s.rec, s.buf)
	s.cur = s.buf.Float64(1) + 1
	s.buf.SetFloat64(1, s.cur)
	ctx.Write(s.rec, s.buf)
}

func (s *incSub) Validate(ctx *db4ml.Ctx) db4ml.Action {
	if s.cur >= s.target {
		return db4ml.Done
	}
	return db4ml.Commit
}

// instance is the facade surface a trial needs; *db4ml.DB and
// *db4ml.ShardedDB both provide it.
type instance interface {
	CreateTable(name string, cols ...db4ml.Column) (*db4ml.Table, error)
	Table(name string) *db4ml.Table
	BulkLoad(tbl *db4ml.Table, rows []db4ml.Payload) error
	Checkpoint() error
	Stable() db4ml.Timestamp
	Close() error
}

func open(cfg Config, kill *db4ml.CrashKiller) instance {
	opts := []db4ml.Option{
		db4ml.WithWAL(cfg.Dir),
		db4ml.WithWALSync(cfg.Policy),
		db4ml.WithWorkers(2),
	}
	if kill != nil {
		opts = append(opts, db4ml.WithCrashPoints(kill))
	}
	if cfg.Shards > 1 {
		return db4ml.OpenSharded(append(opts,
			db4ml.WithShards(cfg.Shards),
			db4ml.WithShardScheme(db4ml.ShardRoundRobin))...)
	}
	return db4ml.Open(opts...)
}

// runJob submits the workload and waits; returns the acknowledged commit
// timestamp (zero when the run did not resolve with a commit).
func runJob(inst instance, run db4ml.MLRun) (db4ml.Timestamp, error) {
	switch db := inst.(type) {
	case *db4ml.DB:
		h, err := db.SubmitML(context.Background(), run)
		if err != nil {
			return 0, err
		}
		_, err = h.Wait()
		return h.CommitTS(), err
	case *db4ml.ShardedDB:
		h, err := db.SubmitML(context.Background(), run)
		if err != nil {
			return 0, err
		}
		_, err = h.Wait()
		return h.CommitTS(), err
	}
	return 0, errors.New("crashsim: unknown facade type")
}

// probeAll reads every counter row of the witness kernel into the history.
func probeAll(inst instance, hist *check.History, tbl *db4ml.Table, rows int) error {
	read := func(tx interface {
		Read(tbl *db4ml.Table, row db4ml.RowID) (db4ml.Payload, bool)
	}, ts db4ml.Timestamp) error {
		for i := 0; i < rows; i++ {
			p, ok := tx.Read(tbl, db4ml.RowID(i))
			if !ok {
				return fmt.Errorf("crashsim: recovered row %d is invisible", i)
			}
			hist.Probe(jobLabel, ts, int64(i), uint64(p.Float64(1)))
		}
		return nil
	}
	switch db := inst.(type) {
	case *db4ml.DB:
		tx := db.Begin()
		return read(tx, tx.BeginTS())
	case *db4ml.ShardedDB:
		tx := db.Begin()
		defer tx.Close()
		return read(tx, tx.BeginTS(0))
	}
	return errors.New("crashsim: unknown facade type")
}

// breakWAL is the planted recovery bug: it deletes every WAL segment,
// simulating a durability layer that acknowledged commits it never made
// durable. Checkpoint files survive (the seed/baseline state remains
// recoverable, so the witness can still probe).
func breakWAL(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// RunTrial runs one crash trial and returns its outcome. The returned
// Report holds the atomicity verdict; an error means the harness itself
// failed (not a contract violation).
func RunTrial(cfg Config) (*Outcome, error) {
	if cfg.Dir == "" {
		return nil, errors.New("crashsim: Config.Dir is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 8
	}
	if cfg.Target == 0 {
		cfg.Target = 4
	}

	// Phase A — seed.
	seed := open(cfg, nil)
	tbl, err := seed.CreateTable(tableName,
		db4ml.Column{Name: "ID", Type: db4ml.Int64},
		db4ml.Column{Name: "V", Type: db4ml.Float64},
	)
	if err != nil {
		seed.Close()
		return nil, err
	}
	rows := make([]db4ml.Payload, cfg.Rows)
	for i := range rows {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetFloat64(1, 0)
		rows[i] = p
	}
	if err := seed.BulkLoad(tbl, rows); err != nil {
		seed.Close()
		return nil, err
	}
	if err := seed.Close(); err != nil {
		return nil, err
	}

	// Phase B — victim: recover, arm the killer, run into the crash.
	out := &Outcome{}
	var killer *db4ml.CrashKiller
	if cfg.Kill != chaos.CrashNone {
		killer = db4ml.NewCrashKiller(cfg.Kill)
	}
	victim := open(cfg, killer)
	vtbl := victim.Table(tableName)
	if vtbl == nil {
		victim.Close()
		return nil, errors.New("crashsim: seeded table lost before the crash")
	}
	if cfg.CheckpointMid {
		if err := victim.Checkpoint(); err != nil {
			if !errors.Is(err, chaos.ErrCrashed) {
				victim.Close()
				return nil, err
			}
			out.Killed = true
		}
	}
	subs := make([]db4ml.IterativeTransaction, cfg.Rows)
	for i := range subs {
		subs[i] = &incSub{tbl: vtbl, row: db4ml.RowID(i), target: float64(cfg.Target)}
	}
	ts, err := runJob(victim, db4ml.MLRun{
		Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
		Label:     jobLabel,
		BatchSize: 4,
		Attach:    []db4ml.Attachment{{Table: vtbl}},
		Subs:      subs,
	})
	switch {
	case err == nil:
		out.Acked, out.AckedTS = true, ts
	case errors.Is(err, chaos.ErrCrashed):
		out.Killed = true
	default:
		victim.Close()
		return nil, fmt.Errorf("crashsim: workload failed for a non-crash reason: %w", err)
	}
	if cfg.Kill == chaos.CrashMidCheckpoint && !cfg.CheckpointMid {
		// The checkpointer is this point's only trigger; fire it after the
		// acknowledged workload so the crash threatens a real commit.
		switch err := victim.Checkpoint(); {
		case errors.Is(err, chaos.ErrCrashed):
			out.Killed = true
		case err != nil:
			victim.Close()
			return nil, err
		}
	}
	_ = victim.Close() // the dying kernel is discarded as the crash left it

	if cfg.BreakRecovery {
		if err := breakWAL(cfg.Dir); err != nil {
			return nil, err
		}
	}

	// Phase C — witness: recover fresh and probe.
	witness := open(cfg, nil)
	defer witness.Close()
	out.RecoveredStable = witness.Stable()
	wtbl := witness.Table(tableName)
	if wtbl == nil {
		return nil, errors.New("crashsim: recovery lost the table entirely")
	}
	hist := check.NewHistory()
	if out.Acked {
		hist.Job(jobLabel).RecordUberCommit(storage.Timestamp(out.AckedTS))
	}
	if err := probeAll(witness, hist, wtbl, cfg.Rows); err != nil {
		return nil, err
	}
	target := cfg.Target
	rule := check.VisibilityRule{
		Before: func(_ int64, v uint64) bool { return v == 0 },
		After:  func(_ int64, v uint64) bool { return v == target },
	}
	out.Report = check.CheckRecoveryAtomicity(hist.Events(), jobLabel, rule)
	return out, nil
}

package crashsim

import (
	"fmt"
	"testing"

	"db4ml"
	"db4ml/internal/chaos"
)

// TestKillPointMatrix sweeps every crash point (plus the clean-restart
// control) across 1, 2, and 4 shards and asserts the committed-exactly-or-
// absent contract holds at each — the acceptance matrix of the durability
// layer.
func TestKillPointMatrix(t *testing.T) {
	points := append([]chaos.CrashPoint{chaos.CrashNone}, chaos.CrashPoints()...)
	for _, shards := range []int{1, 2, 4} {
		for _, kp := range points {
			kp, shards := kp, shards
			t.Run(fmt.Sprintf("%s/%dshard", kp, shards), func(t *testing.T) {
				t.Parallel()
				out, err := RunTrial(Config{
					Shards: shards,
					Kill:   kp,
					Dir:    t.TempDir(),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !out.Report.Ok() {
					t.Fatalf("recovery atomicity violated: %v", out.Report.Violations)
				}
				if out.Report.RecoveryChecked == 0 {
					t.Fatal("vacuous report: no recovery probes examined")
				}

				// CrashBetweenShardCommits never fires with one shard (the 2PC
				// window needs a second CommitPrepared); everything else must.
				wantKilled := kp != chaos.CrashNone &&
					!(kp == chaos.CrashBetweenShardCommits && shards == 1)
				if out.Killed != wantKilled {
					t.Fatalf("Killed = %v, want %v", out.Killed, wantKilled)
				}
				// Points past the WAL append (or never reached) leave the commit
				// acknowledged; points inside the commit path must not ack.
				wantAcked := kp == chaos.CrashNone ||
					kp == chaos.CrashMidCheckpoint ||
					(kp == chaos.CrashBetweenShardCommits && shards == 1)
				if out.Acked != wantAcked {
					t.Fatalf("Acked = %v, want %v", out.Acked, wantAcked)
				}
				if out.Acked && out.AckedTS == 0 {
					t.Fatal("acknowledged run reported no commit timestamp")
				}
				if out.Acked && out.RecoveredStable < out.AckedTS {
					t.Fatalf("recovered stable %d below acknowledged commit %d",
						out.RecoveredStable, out.AckedTS)
				}
			})
		}
	}
}

// TestKillPointsWithMidCheckpoint reruns the commit-path kill-points with a
// checkpoint taken before the workload, so recovery exercises the
// checkpoint-plus-tail path rather than whole-log replay.
func TestKillPointsWithMidCheckpoint(t *testing.T) {
	for _, kp := range []chaos.CrashPoint{
		chaos.CrashAfterPrepare,
		chaos.CrashMidWALAppend,
		chaos.CrashAfterWALAppend,
	} {
		kp := kp
		t.Run(kp.String(), func(t *testing.T) {
			t.Parallel()
			out, err := RunTrial(Config{
				Shards:        2,
				Kill:          kp,
				CheckpointMid: true,
				Dir:           t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Killed {
				t.Fatal("kill-point never fired")
			}
			if !out.Report.Ok() {
				t.Fatalf("recovery atomicity violated: %v", out.Report.Violations)
			}
		})
	}
}

// TestPlantedViolationConvicts proves the checker is not vacuous: destroying
// the WAL after an acknowledged run MUST fail the atomicity check. A harness
// that passes this sabotage would be asserting nothing.
func TestPlantedViolationConvicts(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"single", 1}, {"sharded", 2}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := RunTrial(Config{
				Shards:        tc.shards,
				Kill:          chaos.CrashNone,
				CheckpointMid: true, // keep a checkpoint so the table survives the sabotage
				BreakRecovery: true,
				Dir:           t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Acked {
				t.Fatal("control run was not acknowledged")
			}
			if out.Report.Ok() {
				t.Fatal("planted durability bug was not convicted")
			}
		})
	}
}

// TestSyncPolicyTrials runs the clean-restart control under the relaxed
// fsync policies: a clean Close still makes everything durable.
func TestSyncPolicyTrials(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy db4ml.WALSyncPolicy
	}{{"interval", db4ml.WALSyncInterval}, {"none", db4ml.WALSyncNone}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := RunTrial(Config{
				Shards: 1,
				Kill:   chaos.CrashNone,
				Policy: tc.policy,
				Dir:    t.TempDir(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !out.Acked || !out.Report.Ok() {
				t.Fatalf("clean trial failed: acked=%v report=%+v", out.Acked, out.Report)
			}
		})
	}
}

package introspect

import (
	"fmt"
	"io"
	"math"
	"strings"

	"db4ml/internal/obs"
)

// counterMetrics maps the snapshot's cumulative counters to Prometheus
// counter families. Names follow prometheus conventions: snake case,
// `db4ml_` prefix, `_total` suffix.
func counterMetrics(c obs.CounterTotals) []struct {
	name, help string
	value      uint64
} {
	return []struct {
		name, help string
		value      uint64
	}{
		{"executions", "Sub-transaction Execute calls, including rolled-back iterations.", c.Executions},
		{"commits", "Iterations whose updates were installed.", c.Commits},
		{"rollbacks", "Iterations discarded (user-requested plus staleness).", c.Rollbacks},
		{"user_rollbacks", "Iterations discarded because Validate returned Rollback.", c.UserRollbacks},
		{"staleness_rollbacks", "Iterations discarded by a bounded-staleness violation.", c.StalenessRollbacks},
		{"forced_stop_iterations", "Sub-transactions retired by the committed-iteration cap.", c.ForcedStopIterations},
		{"forced_stop_attempts", "Sub-transactions retired by the attempt-cap livelock backstop.", c.ForcedStopAttempts},
		{"steals", "Batches popped from a foreign region's queue.", c.Steals},
		{"recirculations", "Batches re-enqueued with live sub-transactions remaining.", c.Recirculations},
		{"chaos_faults", "Injected chaos faults absorbed (test/experiment runs only).", c.ChaosFaults},
		{"panics", "Panics contained by the supervision layer.", c.Panics},
		{"retries", "Whole-job resubmissions by the abort-retry policy.", c.Retries},
		{"stall_aborts", "Jobs convicted by the progress watchdog.", c.StallAborts},
		{"deadline_aborts", "Jobs retired for exceeding their wall-clock deadline.", c.DeadlineAborts},
		{"load_sheds", "Submissions fast-failed by the admission gate.", c.LoadSheds},
		{"versions_pruned", "Row versions reclaimed by the version garbage collector.", c.VersionsPruned},
		{"gc_passes", "Completed version-GC reclaimer passes.", c.GCPasses},
		{"plan_queries", "Relational plan executions started through the plan layer.", c.PlanQueries},
		{"plan_rows", "Result tuples emitted at the root of plan executions.", c.PlanRows},
		{"wal_appends", "Uber-commit records appended to the write-ahead log.", c.WALAppendCount},
		{"wal_bytes", "Bytes written to the write-ahead log, frames included.", c.WALBytes},
		{"wal_fsyncs", "Fsync calls issued by the WAL group-commit batcher.", c.WALFsyncs},
		{"recovery_replays", "WAL records replayed into the kernel on Open.", c.RecoveryReplays},
		{"checkpoints", "Fuzzy checkpoint passes that produced a durable checkpoint file.", c.Checkpoints},
		{"ckpt_sections_written", "Checkpoint table sections freshly encoded (mutation counter moved).", c.CkptSectionsWritten},
		{"ckpt_sections_reused", "Checkpoint table sections reused from the section cache (table unchanged).", c.CkptSectionsReused},
		{"twopc_prepares", "Per-shard prepare calls in distributed uber-transaction commits.", c.TwoPCPrepares},
		{"twopc_aborts", "Distributed uber-transaction aborts this shard caused (abort-by-shard).", c.TwoPCAborts},
	}
}

// latencyFamilies pairs each histogram with its metric name.
func latencyFamilies(ls obs.LatencySnapshot) []struct {
	name, help string
	h          obs.HistogramStats
} {
	return []struct {
		name, help string
		h          obs.HistogramStats
	}{
		{"attempt_latency", "Duration of one finalized sub-transaction attempt.", ls.Attempt},
		{"batch_pass_latency", "Duration of one batch scheduling pass on one worker.", ls.BatchPass},
		{"queue_wait_latency", "Batch residence time in its region queue, push to pop.", ls.QueueWait},
		{"barrier_wait_latency", "Synchronous round barrier arrival skew, first to last.", ls.BarrierWait},
		{"job_commit_latency", "End-to-end job latency, submission to atomic publish.", ls.JobCommit},
		{"gc_pause_latency", "Duration of one version-GC reclaimer pass (background, not stop-the-world).", ls.GCPause},
		{"query_latency", "End-to-end relational plan execution latency, Execute to cursor close.", ls.Query},
		{"wal_append_latency", "WAL append latency as the committer observes it, enqueue to group-commit ack.", ls.WALAppend},
		{"wal_fsync_latency", "Duration of one WAL group-commit fsync call.", ls.WALFsync},
		{"checkpoint_pause_latency", "Commit-lock hold time of one fuzzy checkpoint's consistent-cut pin.", ls.CkptPause},
		{"checkpoint_duration", "End-to-end duration of one fuzzy checkpoint pass, cut pin to durable rename.", ls.CkptDuration},
		{"twopc_prepare_latency", "Duration of one shard's prepare in a distributed uber-commit.", ls.Prepare},
		{"twopc_commit_window_latency", "Distributed commit window: first shard prepare to last CommitPrepared.", ls.CommitWindow},
	}
}

// writePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), by hand — no client library dependency. Counter
// values come from the snapshot's Cumulative view, so retried jobs never
// make a scrape go backwards.
func writePrometheus(w io.Writer, snap obs.Snapshot, jobs []JobInfo, traceEvents int) {
	for _, m := range counterMetrics(snap.Cumulative) {
		fmt.Fprintf(w, "# HELP db4ml_%s_total %s\n", m.name, m.help)
		fmt.Fprintf(w, "# TYPE db4ml_%s_total counter\n", m.name)
		fmt.Fprintf(w, "db4ml_%s_total %d\n", m.name, m.value)
	}

	fmt.Fprintf(w, "# HELP db4ml_live_subs Not-yet-retired sub-transactions (last sample).\n")
	fmt.Fprintf(w, "# TYPE db4ml_live_subs gauge\ndb4ml_live_subs %d\n", snap.LiveSubs.Last)
	fmt.Fprintf(w, "# HELP db4ml_queue_depth Region queue length (last sample).\n")
	fmt.Fprintf(w, "# TYPE db4ml_queue_depth gauge\ndb4ml_queue_depth %d\n", snap.QueueDepth.Last)

	running := 0
	for _, j := range jobs {
		if j.State == "running" {
			running++
		}
	}
	fmt.Fprintf(w, "# HELP db4ml_jobs_running Jobs currently in flight.\n")
	fmt.Fprintf(w, "# TYPE db4ml_jobs_running gauge\ndb4ml_jobs_running %d\n", running)
	fmt.Fprintf(w, "# HELP db4ml_jobs_tracked Jobs in the debug job table (running plus settled).\n")
	fmt.Fprintf(w, "# TYPE db4ml_jobs_tracked gauge\ndb4ml_jobs_tracked %d\n", len(jobs))
	fmt.Fprintf(w, "# HELP db4ml_trace_events Events retained in the span tracer's ring buffers.\n")
	fmt.Fprintf(w, "# TYPE db4ml_trace_events gauge\ndb4ml_trace_events %d\n", traceEvents)

	for _, fam := range latencyFamilies(snap.Latencies) {
		writeHistogram(w, "db4ml_"+fam.name+"_seconds", fam.help, fam.h)
	}
	// The batch-size distribution rides the same log-bucketed machinery but
	// its unit is records, not nanoseconds — render bounds raw.
	writeHistogramRaw(w, "db4ml_wal_batch_records",
		"Group-commit batch size distribution, records per flushed batch.",
		snap.Latencies.WALBatch)
}

// writeHistogramRaw renders a histogram whose samples are raw counts (not
// nanoseconds): bucket bounds and the sum stay in the native unit.
func writeHistogramRaw(w io.Writer, name, help string, h obs.HistogramStats) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if b.UpperNanos == math.MaxInt64 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.UpperNanos, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %d\n", name, h.SumNanos)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// writeHistogram renders one log-bucketed histogram as a Prometheus
// histogram family. Bucket bounds convert from the engine's nanosecond
// buckets to seconds; counts are made cumulative as the format requires.
func writeHistogram(w io.Writer, name, help string, h obs.HistogramStats) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if b.UpperNanos == math.MaxInt64 {
			// The unbounded tail bucket is exactly the +Inf series below.
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatLe(b.UpperNanos), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.SumNanos)/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// formatLe renders a bucket's inclusive nanosecond upper bound in seconds.
func formatLe(upperNanos int64) string {
	if upperNanos == math.MaxInt64 {
		return "+Inf"
	}
	s := fmt.Sprintf("%g", float64(upperNanos)/1e9)
	// %g may emit exponent notation ("1e-06"); Prometheus accepts it, but
	// keep plain decimals for small round values to stay human-scannable.
	if strings.Contains(s, "e") {
		s = fmt.Sprintf("%.9f", float64(upperNanos)/1e9)
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
	}
	return s
}

// Package introspect is the kernel's live debug server: an opt-in HTTP
// endpoint (db4ml.WithDebugServer / db4ml-bench -http) that exposes what the
// engine is doing right now — Prometheus-format metrics built from the
// telemetry layer (internal/obs), a live job table, the span tracer's ring
// buffer as a Chrome trace download (internal/trace), and net/http/pprof.
//
// The server is deliberately dependency-free: the Prometheus text
// exposition format is plain text rendered by hand, and the trace download
// is the tracer's own Chrome trace_event export. Nothing here touches the
// hot path — handlers pull a snapshot when scraped, so an idle server costs
// one parked goroutine.
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"db4ml/internal/obs"
	"db4ml/internal/trace"
)

// JobInfo is one row of the /debug/jobs table.
type JobInfo struct {
	ID    uint64 `json:"id"`
	Label string `json:"label"`
	// State is "running", "done", or "failed: <error>".
	State string `json:"state"`
	// Attempt is the 1-based submission attempt under the facade's
	// abort-retry policy.
	Attempt int `json:"attempt"`
	// Live and Total report iteration progress: sub-transactions not yet
	// retired out of the number submitted.
	Live  int64 `json:"live"`
	Total int64 `json:"total"`
	// ElapsedMillis is the job's wall-clock age (run time, once finished).
	ElapsedMillis int64 `json:"elapsed_ms"`
	// DeadlineRemainingMillis is the time left in the job's wall-clock
	// budget; negative when expired, absent when unbounded.
	DeadlineRemainingMillis *int64 `json:"deadline_remaining_ms,omitempty"`
	// CommitTS is the uber-transaction's commit timestamp: 0 while the job
	// runs, and forever if it aborted.
	CommitTS uint64 `json:"commit_ts,omitempty"`
	// Shard is the shard this row reports on. Sharded databases emit one
	// row per (job, shard); single-kernel rows omit it.
	Shard *int `json:"shard,omitempty"`
}

// QueryInfo is one row of the /debug/query table: a recent query execution
// with its rendered EXPLAIN tree (EXPLAIN ANALYZE — measured per-operator
// rows and time — when the execution collected operator stats; the
// planner's EXPLAIN otherwise, e.g. scattered queries).
type QueryInfo struct {
	ID    uint64 `json:"id"`
	State string `json:"state"`
	// Rows is the materialized result size.
	Rows          int   `json:"rows"`
	Attempts      int   `json:"attempts"`
	ElapsedMillis int64 `json:"elapsed_ms"`
	// Explain is the rendered operator tree, one indented line per operator.
	Explain string `json:"explain,omitempty"`
}

// ShardInfo is one row of the /debug/shards table: one shard's live
// telemetry totals, worker count, stable watermark, and trace-ring
// population.
type ShardInfo struct {
	Shard       int    `json:"shard"`
	Workers     int    `json:"workers"`
	TraceEvents int    `json:"trace_events"`
	Stable      uint64 `json:"stable"`
	// Counters are the shard's cumulative counter totals (completed runs
	// folded plus live runs).
	Counters obs.CounterTotals `json:"counters"`
}

// Config wires a Server to the process's observability state. Every field
// except Addr is optional: a nil source renders as absent rather than
// failing the endpoint.
type Config struct {
	// Addr is the listen address, e.g. ":6060" or "127.0.0.1:0".
	Addr string
	// Metrics returns the snapshot /metrics renders; typically an
	// Aggregator's Snapshot method.
	Metrics func() obs.Snapshot
	// Jobs returns the live job table for /debug/jobs.
	Jobs func() []JobInfo
	// Queries returns the recent-query table for /debug/query; nil renders
	// an empty list.
	Queries func() []QueryInfo
	// Shards returns the per-shard table for /debug/shards; nil renders an
	// empty list (single-kernel databases).
	Shards func() []ShardInfo
	// Tracer is the ring-buffer tracer /debug/trace downloads; nil serves an
	// empty trace.
	Tracer *trace.Tracer
	// Sources, when non-nil, lists the tracers /debug/trace merges into one
	// cross-process Chrome trace — one named process per source (sharded
	// databases: the coordinator plus every shard). nil falls back to
	// Tracer as the single source; both paths share the same merge code.
	Sources func() []trace.Source
}

// Server is a running debug HTTP server. Construct with Start; stop with
// Close.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Start binds cfg.Addr and serves the debug endpoints in a background
// goroutine. The returned server reports its bound address via Addr (useful
// with a ":0" config).
func Start(cfg Config) (*Server, error) {
	lis, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: listen %s: %w", cfg.Addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", cfg.handleIndex)
	mux.HandleFunc("/metrics", cfg.handleMetrics)
	mux.HandleFunc("/debug/jobs", cfg.handleJobs)
	mux.HandleFunc("/debug/query", cfg.handleQueries)
	mux.HandleFunc("/debug/shards", cfg.handleShards)
	mux.HandleFunc("/debug/trace", cfg.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{lis: lis, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(lis) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the server's bound address (host:port).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

func (cfg Config) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html><title>db4ml debug</title><h1>db4ml debug server</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/debug/jobs">/debug/jobs</a> — live job table (JSON)</li>
<li><a href="/debug/query">/debug/query</a> — recent queries with EXPLAIN ANALYZE trees (JSON)</li>
<li><a href="/debug/shards">/debug/shards</a> — per-shard telemetry breakdown (JSON)</li>
<li><a href="/debug/trace">/debug/trace</a> — Chrome trace_event JSON, all shards merged (open in Perfetto / about:tracing)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go runtime profiles</li>
</ul>`)
}

func (cfg Config) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap obs.Snapshot
	if cfg.Metrics != nil {
		snap = cfg.Metrics()
	}
	var jobs []JobInfo
	if cfg.Jobs != nil {
		jobs = cfg.Jobs()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	events := cfg.Tracer.Len()
	if cfg.Sources != nil {
		events = 0
		for _, s := range cfg.Sources() {
			events += s.Tracer.Len()
		}
	}
	writePrometheus(w, snap, jobs, events)
}

func (cfg Config) handleQueries(w http.ResponseWriter, r *http.Request) {
	queries := []QueryInfo{}
	if cfg.Queries != nil {
		if q := cfg.Queries(); q != nil {
			queries = q
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(queries) //nolint:errcheck // best-effort write to the client
}

func (cfg Config) handleShards(w http.ResponseWriter, r *http.Request) {
	shards := []ShardInfo{}
	if cfg.Shards != nil {
		if s := cfg.Shards(); s != nil {
			shards = s
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(shards) //nolint:errcheck // best-effort write to the client
}

func (cfg Config) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := []JobInfo{}
	if cfg.Jobs != nil {
		if j := cfg.Jobs(); j != nil {
			jobs = j
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(jobs) //nolint:errcheck // best-effort write to the client
}

func (cfg Config) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="db4ml-trace.json"`)
	if cfg.Sources != nil {
		trace.WriteChromeTraceMulti(w, cfg.Sources()) //nolint:errcheck // best-effort write
		return
	}
	cfg.Tracer.WriteChromeTrace(w) //nolint:errcheck // best-effort write
}

// NewJobInfo assembles one job-table row from the values the facade tracks.
func NewJobInfo(id uint64, label, state string, attempt int, live, total int64, started time.Time, deadline time.Duration) JobInfo {
	info := JobInfo{
		ID: id, Label: label, State: state, Attempt: attempt,
		Live: live, Total: total,
		ElapsedMillis: time.Since(started).Milliseconds(),
	}
	if deadline > 0 {
		rem := (deadline - time.Since(started)).Milliseconds()
		info.DeadlineRemainingMillis = &rem
	}
	return info
}

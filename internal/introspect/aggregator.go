package introspect

import (
	"sync"

	"db4ml/internal/obs"
)

// Aggregator folds many jobs' observers into the single process-wide
// snapshot /metrics exposes. Observers attach when their job is submitted
// and complete when it settles; completed runs fold their cumulative
// counters and latency histograms into a base that only ever grows, so a
// scrape sees monotone totals across job lifetimes — live observers
// contribute their in-flight state on top.
type Aggregator struct {
	mu   sync.Mutex
	base obs.CounterTotals
	lat  obs.LatencySnapshot
	live map[*obs.Observer]struct{}
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{live: make(map[*obs.Observer]struct{})}
}

// Attach registers a live observer; its current state contributes to every
// Snapshot until Complete folds it. Attaching nil or an already-attached
// observer is a no-op, as is calling on a nil aggregator — callers may
// thread an optional *Aggregator through without guarding.
func (a *Aggregator) Attach(o *obs.Observer) {
	if a == nil || o == nil {
		return
	}
	a.mu.Lock()
	a.live[o] = struct{}{}
	a.mu.Unlock()
}

// Complete folds a finished observer's final snapshot into the base totals
// and detaches it. Completing an observer that was never attached still
// folds it (the job ran to completion before any scrape saw it live).
// A nil aggregator or observer is a no-op.
func (a *Aggregator) Complete(o *obs.Observer) {
	if a == nil || o == nil {
		return
	}
	snap := o.Snapshot()
	a.mu.Lock()
	delete(a.live, o)
	a.base.Add(snap.Cumulative)
	a.lat = a.lat.Merge(snap.Latencies)
	a.mu.Unlock()
}

// Snapshot returns the process-wide telemetry view: base totals from
// completed jobs plus every live observer's cumulative state. Counters and
// Cumulative carry the same (already cross-attempt) totals; gauges report
// the last-attached live observer's samples, as a point-in-time hint.
func (a *Aggregator) Snapshot() obs.Snapshot {
	a.mu.Lock()
	totals := a.base
	lat := a.lat
	liveObs := make([]*obs.Observer, 0, len(a.live))
	for o := range a.live {
		liveObs = append(liveObs, o)
	}
	a.mu.Unlock()

	var out obs.Snapshot
	for _, o := range liveObs {
		s := o.Snapshot()
		totals.Add(s.Cumulative)
		lat = lat.Merge(s.Latencies)
		out.LiveSubs = s.LiveSubs
		out.QueueDepth = s.QueueDepth
		out.Workers = s.Workers
	}
	out.Counters = totals
	out.Cumulative = totals
	out.Latencies = lat
	return out
}

package introspect

import (
	"sync"

	"db4ml/internal/obs"
)

// Aggregator folds many jobs' observers into the single process-wide
// snapshot /metrics exposes. Observers attach when their job is submitted
// and complete when it settles; completed runs fold their cumulative
// counters and latency histograms into a base that only ever grows, so a
// scrape sees monotone totals across job lifetimes — live observers
// contribute their in-flight state on top.
type Aggregator struct {
	mu   sync.Mutex
	base obs.CounterTotals
	lat  obs.LatencySnapshot
	live map[*obs.Observer]struct{}
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{live: make(map[*obs.Observer]struct{})}
}

// Attach registers a live observer; its current state contributes to every
// Snapshot until Complete folds it. Attaching nil or an already-attached
// observer is a no-op, as is calling on a nil aggregator — callers may
// thread an optional *Aggregator through without guarding.
func (a *Aggregator) Attach(o *obs.Observer) {
	if a == nil || o == nil {
		return
	}
	a.mu.Lock()
	a.live[o] = struct{}{}
	a.mu.Unlock()
}

// Complete folds a finished observer's final snapshot into the base totals
// and detaches it. Completing an observer that was never attached still
// folds it (the job ran to completion before any scrape saw it live).
// A nil aggregator or observer is a no-op.
func (a *Aggregator) Complete(o *obs.Observer) {
	if a == nil || o == nil {
		return
	}
	snap := o.Snapshot()
	a.mu.Lock()
	delete(a.live, o)
	a.base.Add(snap.Cumulative)
	a.lat = a.lat.Merge(snap.Latencies)
	a.mu.Unlock()
}

// ShardedAggregator folds a cluster's per-shard aggregators into one
// process-wide /metrics view while retaining per-shard snapshots for
// /debug/shards. Each shard's runs attach to that shard's aggregator;
// cluster-level observers (durability, coordinator) conventionally live on
// shard 0's.
type ShardedAggregator struct {
	shards []*Aggregator
}

// NewShardedAggregator returns an aggregator per shard, all empty.
func NewShardedAggregator(n int) *ShardedAggregator {
	s := &ShardedAggregator{shards: make([]*Aggregator, n)}
	for i := range s.shards {
		s.shards[i] = NewAggregator()
	}
	return s
}

// Shard returns shard i's aggregator.
func (s *ShardedAggregator) Shard(i int) *Aggregator { return s.shards[i] }

// Shards returns the shard count.
func (s *ShardedAggregator) Shards() int { return len(s.shards) }

// Snapshot merges every shard's snapshot into the cluster-wide view:
// counters and latency histograms sum across shards, gauges sum their last
// samples (cluster-wide queue depth is the sum of the shards' queues).
func (s *ShardedAggregator) Snapshot() obs.Snapshot {
	var out obs.Snapshot
	for _, a := range s.shards {
		snap := a.Snapshot()
		out.Counters.Add(snap.Counters)
		out.Cumulative.Add(snap.Cumulative)
		out.Latencies = out.Latencies.Merge(snap.Latencies)
		out.LiveSubs.Last += snap.LiveSubs.Last
		out.QueueDepth.Last += snap.QueueDepth.Last
		out.Workers += snap.Workers
	}
	return out
}

// ShardSnapshots returns each shard's own aggregated snapshot (index =
// shard id) — the per-shard breakdown behind the merged Snapshot.
func (s *ShardedAggregator) ShardSnapshots() []obs.Snapshot {
	out := make([]obs.Snapshot, len(s.shards))
	for i, a := range s.shards {
		out[i] = a.Snapshot()
	}
	return out
}

// Snapshot returns the process-wide telemetry view: base totals from
// completed jobs plus every live observer's cumulative state. Counters and
// Cumulative carry the same (already cross-attempt) totals; gauges report
// the last-attached live observer's samples, as a point-in-time hint.
func (a *Aggregator) Snapshot() obs.Snapshot {
	a.mu.Lock()
	totals := a.base
	lat := a.lat
	liveObs := make([]*obs.Observer, 0, len(a.live))
	for o := range a.live {
		liveObs = append(liveObs, o)
	}
	a.mu.Unlock()

	var out obs.Snapshot
	for _, o := range liveObs {
		s := o.Snapshot()
		totals.Add(s.Cumulative)
		lat = lat.Merge(s.Latencies)
		out.LiveSubs = s.LiveSubs
		out.QueueDepth = s.QueueDepth
		out.Workers = s.Workers
	}
	out.Counters = totals
	out.Cumulative = totals
	out.Latencies = lat
	return out
}

package introspect

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"db4ml/internal/obs"
	"db4ml/internal/trace"
)

func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func testObserver() *obs.Observer {
	o := obs.New()
	o.BeginRun(2)
	o.Inc(0, obs.Commits)
	o.Inc(1, obs.Commits)
	o.Inc(0, obs.Executions)
	o.Inc(0, obs.UserRollbacks)
	o.RecordLatency(0, obs.AttemptLatency, 1500)
	o.RecordLatency(1, obs.AttemptLatency, 90_000)
	o.RecordLatency(0, obs.JobCommitLatency, 2_000_000)
	o.ObserveLive(5)
	o.ObserveQueueDepth(3)
	return o
}

func TestServerEndpoints(t *testing.T) {
	agg := NewAggregator()
	agg.Attach(testObserver())
	tr := trace.New(2, 64)
	tr.Span(0, trace.KindJob, 1, 0, tr.Now(), 1000)
	tr.Instant(1, trace.KindSteal, 1, 0)

	jobs := func() []JobInfo {
		return []JobInfo{
			NewJobInfo(1, "pagerank", "running", 1, 5, 10, time.Now().Add(-time.Second), 5*time.Second),
			NewJobInfo(2, "sgd", "done", 2, 0, 8, time.Now().Add(-2*time.Second), 0),
		}
	}
	s, err := Start(Config{Addr: "127.0.0.1:0", Metrics: agg.Snapshot, Jobs: jobs, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	// /metrics: Prometheus text with the documented family names.
	code, body := scrape(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"db4ml_commits_total 2",
		"db4ml_executions_total 1",
		"db4ml_rollbacks_total 1",
		"db4ml_live_subs 5",
		"db4ml_queue_depth 3",
		"db4ml_jobs_running 1",
		"db4ml_jobs_tracked 2",
		"db4ml_trace_events 2",
		"# TYPE db4ml_attempt_latency_seconds histogram",
		`db4ml_attempt_latency_seconds_bucket{le="+Inf"} 2`,
		"db4ml_attempt_latency_seconds_count 2",
		"db4ml_job_commit_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	checkPrometheusShape(t, body)

	// /debug/jobs: the job table as JSON.
	code, body = scrape(t, base+"/debug/jobs")
	if code != http.StatusOK {
		t.Fatalf("/debug/jobs status %d", code)
	}
	var rows []JobInfo
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("/debug/jobs not valid JSON: %v\n%s", err, body)
	}
	if len(rows) != 2 || rows[0].Label != "pagerank" || rows[0].State != "running" {
		t.Fatalf("job table = %+v", rows)
	}
	if rows[0].DeadlineRemainingMillis == nil {
		t.Fatal("deadline-bounded job missing remaining time")
	}
	if rows[1].DeadlineRemainingMillis != nil {
		t.Fatal("unbounded job reports a deadline")
	}

	// /debug/trace: valid Chrome trace_event JSON.
	code, body = scrape(t, base+"/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace status %d", code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/debug/trace empty")
	}

	// /debug/pprof: mounted and answering.
	code, _ = scrape(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}

	// index page links the endpoints.
	code, body = scrape(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index status %d body %q", code, body)
	}
}

// checkPrometheusShape validates the text exposition line-by-line: every
// sample line must parse as `name{labels} value` with a numeric value, no
// duplicate series, and histogram bucket counts must be non-decreasing.
func checkPrometheusShape(t *testing.T, body string) {
	t.Helper()
	seen := map[string]bool{}
	var lastBucketFam string
	var lastBucketCum float64
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		if seen[series] {
			t.Fatalf("duplicate series %q", series)
		}
		seen[series] = true
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		if i := strings.Index(series, "_bucket{"); i >= 0 {
			fam := series[:i]
			if fam != lastBucketFam {
				lastBucketFam, lastBucketCum = fam, 0
			}
			if f < lastBucketCum {
				t.Fatalf("bucket counts decrease in %s: %g < %g", series, f, lastBucketCum)
			}
			lastBucketCum = f
		}
	}
}

// TestAggregatorMonotoneAcrossJobs: totals never go backwards as jobs
// complete and new ones attach — the property a Prometheus counter needs.
func TestAggregatorMonotoneAcrossJobs(t *testing.T) {
	agg := NewAggregator()

	o1 := testObserver()
	agg.Attach(o1)
	s1 := agg.Snapshot()
	if s1.Cumulative.Commits != 2 {
		t.Fatalf("live commits = %d, want 2", s1.Cumulative.Commits)
	}

	agg.Complete(o1)
	s2 := agg.Snapshot()
	if s2.Cumulative.Commits != 2 || s2.Latencies.Attempt.Count != 2 {
		t.Fatalf("folded totals = %+v", s2.Cumulative)
	}

	// A second job's observer stacks on top of the folded base.
	o2 := obs.New()
	o2.BeginRun(1)
	o2.Inc(0, obs.Commits)
	o2.RecordLatency(0, obs.AttemptLatency, 500)
	agg.Attach(o2)
	s3 := agg.Snapshot()
	if s3.Cumulative.Commits != 3 || s3.Latencies.Attempt.Count != 3 {
		t.Fatalf("stacked totals = commits %d, attempts %d", s3.Cumulative.Commits, s3.Latencies.Attempt.Count)
	}
	agg.Complete(o2)
	s4 := agg.Snapshot()
	if s4.Cumulative.Commits != 3 || s4.Latencies.Attempt.Count != 3 {
		t.Fatalf("final totals = %+v", s4.Cumulative)
	}

	// A retried observer folds its cross-attempt Cumulative, not just the
	// last attempt.
	o3 := obs.New()
	o3.BeginRun(1)
	o3.Inc(0, obs.Commits)
	o3.BeginRun(1) // retry archives attempt 1
	o3.Inc(0, obs.Commits)
	agg.Complete(o3)
	if s := agg.Snapshot(); s.Cumulative.Commits != 5 {
		t.Fatalf("retried fold lost attempts: commits = %d, want 5", s.Cumulative.Commits)
	}
}

func TestFormatLe(t *testing.T) {
	cases := map[int64]string{
		1023:          "0.000001023",
		1<<20 - 1:     "0.001048575",
		1<<30 - 1:     "1.073741823",
		1<<40 - 1:     "1099.511627775",
		math.MaxInt64: "+Inf",
	}
	for nanos, want := range cases {
		if got := formatLe(nanos); got != want {
			t.Fatalf("formatLe(%d) = %q, want %q", nanos, got, want)
		}
	}
}

func TestMetricsWithNilSources(t *testing.T) {
	s, err := Start(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := scrape(t, fmt.Sprintf("http://%s/metrics", s.Addr()))
	if code != http.StatusOK || !strings.Contains(body, "db4ml_commits_total 0") {
		t.Fatalf("nil-source metrics: status %d\n%s", code, body)
	}
	code, body = scrape(t, fmt.Sprintf("http://%s/debug/jobs", s.Addr()))
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("nil-source jobs: status %d body %q", code, body)
	}
	code, body = scrape(t, fmt.Sprintf("http://%s/debug/trace", s.Addr()))
	if code != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Fatalf("nil-source trace: status %d body %q", code, body)
	}
}

package metrics

import (
	"math/rand"
	"testing"
)

func TestPairwiseAccuracyIdentical(t *testing.T) {
	a := []float64{3, 1, 2, 5, 4}
	if got := PairwiseAccuracy(a, a, 0, 1); got != 1 {
		t.Fatalf("self accuracy = %v", got)
	}
}

func TestPairwiseAccuracyReversed(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{4, 3, 2, 1}
	if got := PairwiseAccuracy(a, b, 0, 1); got != 0 {
		t.Fatalf("reversed accuracy = %v, want 0", got)
	}
}

func TestPairwiseAccuracyHalf(t *testing.T) {
	// Swapping two adjacent ranks out of 4 flips 1 of 6 pairs.
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 1, 3, 4}
	want := 5.0 / 6.0
	if got := PairwiseAccuracy(a, b, 0, 1); got != want {
		t.Fatalf("accuracy = %v, want %v", got, want)
	}
}

func TestPairwiseAccuracyTies(t *testing.T) {
	a := []float64{1, 1}
	b := []float64{1, 2}
	if got := PairwiseAccuracy(a, b, 0, 1); got != 0 {
		t.Fatalf("tie vs non-tie counted as agreement: %v", got)
	}
	if got := PairwiseAccuracy(a, a, 0, 1); got != 1 {
		t.Fatalf("tie vs tie = %v", got)
	}
}

func TestPairwiseAccuracySampledConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5000 // above the exact limit
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = rng.Float64()
	}
	// got = ref: sampled estimate must be exactly 1.
	if got := PairwiseAccuracy(ref, ref, 10000, 3); got != 1 {
		t.Fatalf("sampled self accuracy = %v", got)
	}
	// Perturb half the entries; accuracy must drop noticeably but stay
	// above that of a random ranking (~0.5).
	gotRanks := append([]float64(nil), ref...)
	for i := 0; i < n; i += 2 {
		gotRanks[i] = rng.Float64()
	}
	acc := PairwiseAccuracy(ref, gotRanks, 200000, 3)
	if acc <= 0.5 || acc >= 0.99 {
		t.Fatalf("perturbed accuracy = %v, expected in (0.5, 0.99)", acc)
	}
	// Deterministic for a fixed seed.
	if acc2 := PairwiseAccuracy(ref, gotRanks, 200000, 3); acc2 != acc {
		t.Fatal("sampled accuracy not deterministic")
	}
}

func TestPairwiseAccuracyDegenerate(t *testing.T) {
	if PairwiseAccuracy(nil, nil, 0, 1) != 1 {
		t.Fatal("empty rankings should trivially agree")
	}
	if PairwiseAccuracy([]float64{1}, []float64{9}, 0, 1) != 1 {
		t.Fatal("single-element rankings should trivially agree")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	PairwiseAccuracy([]float64{1}, []float64{1, 2}, 0, 1)
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float64{1, 5, 3}, []float64{2, 2, 3}); got != 3 {
		t.Fatalf("MaxAbsDiff = %v", got)
	}
	if got := MaxAbsDiff(nil, nil); got != 0 {
		t.Fatalf("empty MaxAbsDiff = %v", got)
	}
}

func TestL1Diff(t *testing.T) {
	if got := L1Diff([]float64{1, 5}, []float64{2, 3}); got != 3 {
		t.Fatalf("L1Diff = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	got := Speedup(10, []float64{10, 5, 2.5, 0})
	want := []float64{1, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Speedup = %v", got)
		}
	}
}

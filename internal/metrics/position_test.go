package metrics

import "testing"

func TestPositionAccuracyIdentical(t *testing.T) {
	a := []float64{5, 1, 3, 2}
	if got := PositionAccuracy(a, a); got != 1 {
		t.Fatalf("self accuracy = %v", got)
	}
}

func TestPositionAccuracySwap(t *testing.T) {
	a := []float64{4, 3, 2, 1}
	b := []float64{3, 4, 2, 1} // items 0,1 swap places
	if got := PositionAccuracy(a, b); got != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", got)
	}
}

func TestPositionAccuracyRotation(t *testing.T) {
	// Rotating every item's rank by one leaves no position matching.
	a := []float64{4, 3, 2, 1}
	b := []float64{1, 4, 3, 2}
	if got := PositionAccuracy(a, b); got != 0 {
		t.Fatalf("accuracy = %v, want 0", got)
	}
}

func TestPositionAccuracyTiesDeterministic(t *testing.T) {
	a := []float64{1, 1, 1}
	if got := PositionAccuracy(a, a); got != 1 {
		t.Fatalf("tied self accuracy = %v", got)
	}
	// Equal-score items order by index on both sides, so a tie-only
	// difference does not flap across runs.
	b := []float64{2, 2, 2}
	if got := PositionAccuracy(a, b); got != 1 {
		t.Fatalf("tied cross accuracy = %v", got)
	}
}

func TestPositionAccuracyStricterThanPairwise(t *testing.T) {
	// One value dropped from top to bottom shifts every intermediate
	// position: pairwise accuracy stays high, position accuracy collapses.
	n := 100
	ref := make([]float64, n)
	got := make([]float64, n)
	for i := range ref {
		ref[i] = float64(n - i)
		got[i] = ref[i]
	}
	got[0] = 0 // former top item now ranks last
	pos := PositionAccuracy(ref, got)
	pair := PairwiseAccuracy(ref, got, 0, 1)
	if pos != 0 {
		t.Fatalf("position accuracy = %v, want 0 (every position shifted)", pos)
	}
	if pair < 0.9 {
		t.Fatalf("pairwise accuracy = %v, want > 0.9", pair)
	}
}

func TestPositionAccuracyEmptyAndMismatch(t *testing.T) {
	if PositionAccuracy(nil, nil) != 1 {
		t.Fatal("empty rankings should trivially agree")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	PositionAccuracy([]float64{1}, []float64{1, 2})
}

// Package metrics implements the quality measures of the paper's
// evaluation: pair-wise ranking accuracy for PageRank (Figure 9 compares
// each isolation level's ranking against the converged synchronous one)
// and small statistics helpers shared by the experiment harness.
package metrics

import (
	"math/rand"
	"sort"
)

// PairwiseAccuracy returns the fraction of node pairs that ref and got
// order identically — the paper's pair-wise accuracy with the synchronous
// result as ground truth. Ties count as agreement only if both sides tie.
// For n ≤ exactLimit (1448, ~1M pairs) every pair is checked; larger
// inputs are estimated from `samples` random pairs (deterministic in
// seed). The two slices must have equal length.
func PairwiseAccuracy(ref, got []float64, samples int, seed int64) float64 {
	n := len(ref)
	if n != len(got) {
		panic("metrics: ranking length mismatch")
	}
	if n < 2 {
		return 1
	}
	const exactLimit = 1448
	agree, total := 0, 0
	cmp := func(i, j int) {
		total++
		r := order(ref[i], ref[j])
		g := order(got[i], got[j])
		if r == g {
			agree++
		}
	}
	if n <= exactLimit {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				cmp(i, j)
			}
		}
	} else {
		if samples <= 0 {
			samples = 1 << 20
		}
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < samples; s++ {
			i := rng.Intn(n)
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			cmp(i, j)
		}
	}
	return float64(agree) / float64(total)
}

func order(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// PositionAccuracy returns the fraction of ranking positions occupied by
// the same item in both score vectors: each vector's items are sorted by
// descending score (ties broken by item id, so the measure is
// deterministic), and position i counts as correct when both orderings
// place the same item there. This is the strict variant of the paper's
// pair-wise accuracy that reproduces Figure 9's spread — a few swapped
// ranks near the top cascade into many mismatched positions, which is how
// the asynchronous level lands at ~2% under a straggler while bounded
// staleness recovers most of the ordering.
func PositionAccuracy(ref, got []float64) float64 {
	n := len(ref)
	if n != len(got) {
		panic("metrics: ranking length mismatch")
	}
	if n == 0 {
		return 1
	}
	refOrder := rankOrder(ref)
	gotOrder := rankOrder(got)
	match := 0
	for i := range refOrder {
		if refOrder[i] == gotOrder[i] {
			match++
		}
	}
	return float64(match) / float64(n)
}

func rankOrder(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		return ia < ib
	})
	return order
}

// MaxAbsDiff returns max |a[i]-b[i]|.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: length mismatch")
	}
	m := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// L1Diff returns Σ |a[i]-b[i]|.
func L1Diff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: length mismatch")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// Speedup returns base/t for each t, the scalability series of Figures 8
// and 13.
func Speedup(base float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = base / t
		}
	}
	return out
}

package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"db4ml/internal/storage"
	"db4ml/internal/table"
)

// FuzzCheckpointLoad feeds arbitrary bytes to the stream reader. The reader
// must never panic and must classify every failure as one of the package's
// typed errors; whatever decodes cleanly must re-encode to a stream that
// decodes to the same tables.
func FuzzCheckpointLoad(f *testing.F) {
	schema, err := table.NewSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "w", Type: table.Float64},
	)
	if err != nil {
		f.Fatal(err)
	}
	tbl := table.New("seed", schema)
	for i := 0; i < 8; i++ {
		if _, err := tbl.Append(1, storage.Payload{uint64(i), uint64(i)}); err != nil {
			f.Fatal(err)
		}
	}
	if err := tbl.CreateHashIndex("id"); err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := WriteStream(&seed, Meta{TS: 3, LSN: 11}, [][]byte{EncodeTable(tbl, 3), EncodeTable(tbl, 3)}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:len(seed.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte("DB4M\x02"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		meta, tables, err := ReadStream(bytes.NewReader(raw))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped error %v", err)
			}
			return
		}
		// Structural invariants of a successful decode.
		for _, d := range tables {
			for _, row := range d.Rows {
				if len(row) != len(d.Cols) {
					t.Fatalf("row width %d != %d columns", len(row), len(d.Cols))
				}
			}
		}
		// Round-trip: rebuild each table, re-encode, decode again.
		sections := make([][]byte, 0, len(tables))
		for _, d := range tables {
			rebuilt, err := d.Build(meta.TS + 1)
			if err != nil {
				return // duplicate column/index names decode fine but can't build
			}
			sections = append(sections, EncodeTable(rebuilt, meta.TS+1))
		}
		var out bytes.Buffer
		if err := WriteStream(&out, meta, sections); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		meta2, tables2, err := ReadStream(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if meta2 != meta || len(tables2) != len(sections) {
			t.Fatalf("round trip drifted: %+v vs %+v", meta2, meta)
		}
	})
}

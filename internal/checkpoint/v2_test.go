package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"db4ml/internal/storage"
	"db4ml/internal/table"
)

func buildTable(t *testing.T, name string, rows int) *table.Table {
	t.Helper()
	schema, err := table.NewSchema(
		table.Column{Name: "id", Type: table.Int64},
		table.Column{Name: "w", Type: table.Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl := table.New(name, schema)
	for i := 0; i < rows; i++ {
		if _, err := tbl.Append(1, storage.Payload{uint64(i), uint64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTypedErrorOnBitFlip(t *testing.T) {
	tbl := buildTable(t, "m", 8)
	var buf bytes.Buffer
	if err := Save(&buf, tbl, 1); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit in every byte position in turn; each mutation must yield
	// a typed error or (for meta-only positions) still decode — never panic.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x10
		_, _, err := ReadStream(bytes.NewReader(mut))
		if err == nil {
			continue // e.g. a flip inside the version byte's unused bits won't always be fatal — but
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVersion) {
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}
}

func TestPayloadBitFlipIsErrCorrupt(t *testing.T) {
	tbl := buildTable(t, "m", 8)
	var buf bytes.Buffer
	if err := Save(&buf, tbl, 1); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-5] ^= 0xff // inside the last row's payload → CRC mismatch
	_, _, err := ReadStream(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload bit flip: %v, want ErrCorrupt", err)
	}
}

func TestWrongVersionIsErrVersion(t *testing.T) {
	tbl := buildTable(t, "m", 2)
	var buf bytes.Buffer
	if err := Save(&buf, tbl, 1); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 77
	_, _, err := ReadStream(bytes.NewReader(data))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("foreign version: %v, want ErrVersion", err)
	}
}

func TestTruncationIsErrTruncated(t *testing.T) {
	tbl := buildTable(t, "m", 16)
	var buf bytes.Buffer
	if err := Save(&buf, tbl, 1); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 5, 9, 20, len(data) / 2, len(data) - 1} {
		_, _, err := ReadStream(bytes.NewReader(data[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: %v, want ErrTruncated", cut, err)
		}
	}
}

func TestIndexDefinitionsPersist(t *testing.T) {
	tbl := buildTable(t, "m", 4)
	if err := tbl.CreateHashIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateTreeIndex("w"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, tbl, 1); err != nil {
		t.Fatal(err)
	}
	_, tables, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("%d tables", len(tables))
	}
	if !reflect.DeepEqual(tables[0].HashIdx, []string{"id"}) {
		t.Fatalf("hash indexes %v", tables[0].HashIdx)
	}
	if !reflect.DeepEqual(tables[0].TreeIdx, []string{"w"}) {
		t.Fatalf("tree indexes %v", tables[0].TreeIdx)
	}
	rebuilt, err := tables[0].Build(1)
	if err != nil {
		t.Fatal(err)
	}
	gotHash, gotTree := rebuilt.IndexDefs()
	if !reflect.DeepEqual(gotHash, []string{"id"}) || !reflect.DeepEqual(gotTree, []string{"w"}) {
		t.Fatalf("rebuilt indexes: hash %v tree %v", gotHash, gotTree)
	}
}

func TestMultiTableStream(t *testing.T) {
	a := buildTable(t, "alpha", 3)
	b := buildTable(t, "beta", 5)
	var buf bytes.Buffer
	meta := Meta{TS: 7, LSN: 42}
	sections := [][]byte{EncodeTable(a, 7), EncodeTable(b, 7)}
	if err := WriteStream(&buf, meta, sections); err != nil {
		t.Fatal(err)
	}
	gotMeta, tables, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta %+v, want %+v", gotMeta, meta)
	}
	if len(tables) != 2 || tables[0].Name != "alpha" || tables[1].Name != "beta" {
		t.Fatalf("tables %+v", tables)
	}
	if len(tables[0].Rows) != 3 || len(tables[1].Rows) != 5 {
		t.Fatalf("row counts %d/%d", len(tables[0].Rows), len(tables[1].Rows))
	}
}

func TestMissingSectionIsErrTruncated(t *testing.T) {
	a := buildTable(t, "alpha", 3)
	var buf bytes.Buffer
	// Meta promises two sections but only one follows.
	if err := WriteStream(&buf, Meta{TS: 1}, [][]byte{EncodeTable(a, 1)}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Patch the meta frame's table count from 1 to 2 and re-CRC it by
	// rebuilding the stream by hand: simpler to just write meta for 2 tables.
	var buf2 bytes.Buffer
	if err := WriteStream(&buf2, Meta{TS: 1}, [][]byte{EncodeTable(a, 1), EncodeTable(a, 1)}); err != nil {
		t.Fatal(err)
	}
	short := buf2.Bytes()[:len(data)] // cut the second section off
	_, _, err := ReadStream(bytes.NewReader(short))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("missing section: %v, want ErrTruncated", err)
	}
}

func TestStoreWriteAndLatestValid(t *testing.T) {
	dir := t.TempDir()
	tbl := buildTable(t, "m", 4)

	if _, err := WriteFile(dir, 1, Meta{TS: 5, LSN: 10}, [][]byte{EncodeTable(tbl, 5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFile(dir, 2, Meta{TS: 9, LSN: 20}, [][]byte{EncodeTable(tbl, 9)}); err != nil {
		t.Fatal(err)
	}
	// A torn file at seq 3 — the debris of a crash mid-checkpoint.
	if err := os.WriteFile(filepath.Join(dir, FileName(3)), []byte("DB4M\x02torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := LatestValid(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Seq != 2 || got.Meta.LSN != 20 {
		t.Fatalf("LatestValid = %+v, want seq 2", got)
	}

	// NextSeq counts the torn file: no sequence reuse.
	seq, err := NextSeq(dir)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Fatalf("NextSeq = %d, want 4", seq)
	}
}

func TestLatestValidEmptyDir(t *testing.T) {
	got, err := LatestValid(t.TempDir())
	if err != nil || got != nil {
		t.Fatalf("empty dir: %+v, %v", got, err)
	}
	got, err = LatestValid(filepath.Join(t.TempDir(), "missing"))
	if err != nil || got != nil {
		t.Fatalf("missing dir: %+v, %v", got, err)
	}
	seq, err := NextSeq(t.TempDir())
	if err != nil || seq != 1 {
		t.Fatalf("NextSeq empty = %d, %v", seq, err)
	}
}

// Package checkpoint persists ML-table snapshots to an io.Writer and
// restores them, so trained models and loaded datasets survive process
// restarts. The paper's prototype is purely in-memory; this is the natural
// extension its Section 1 hints at ("can be extended towards disk-based
// DBMSs"). The format is a small self-describing binary layout
// (little-endian, length-prefixed), stdlib only.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// magic identifies checkpoint streams; the version byte guards layout
// changes.
var magic = [4]byte{'D', 'B', '4', 'M'}

const formatVersion = 1

// Save writes the snapshot of tbl visible at ts. Index definitions are not
// persisted (they are cheap to rebuild and their set lives in application
// code).
func Save(w io.Writer, tbl *table.Table, ts storage.Timestamp) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return err
	}
	if err := writeString(bw, tbl.Name()); err != nil {
		return err
	}
	cols := tbl.Schema().Columns()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(cols))); err != nil {
		return err
	}
	for _, c := range cols {
		if err := writeString(bw, c.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(c.Type)); err != nil {
			return err
		}
	}
	// Collect the visible rows first so the count prefix is exact.
	var rows []storage.Payload
	tbl.Scan(ts, func(_ table.RowID, p storage.Payload) bool {
		rows = append(rows, p.Clone())
		return true
	})
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(rows))); err != nil {
		return err
	}
	for _, p := range rows {
		for _, slot := range p {
			if err := binary.Write(bw, binary.LittleEndian, slot); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load restores a table saved by Save into mgr's database, publishing all
// rows atomically at a fresh commit timestamp.
func Load(r io.Reader, mgr *txn.Manager) (*table.Table, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d", ver)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var nCols uint32
	if err := binary.Read(br, binary.LittleEndian, &nCols); err != nil {
		return nil, err
	}
	if nCols > 1<<16 {
		return nil, fmt.Errorf("checkpoint: implausible column count %d", nCols)
	}
	cols := make([]table.Column, nCols)
	for i := range cols {
		cname, err := readString(br)
		if err != nil {
			return nil, err
		}
		t, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if table.ColType(t) != table.Int64 && table.ColType(t) != table.Float64 {
			return nil, fmt.Errorf("checkpoint: unknown column type %d", t)
		}
		cols[i] = table.Column{Name: cname, Type: table.ColType(t)}
	}
	schema, err := table.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	var nRows uint64
	if err := binary.Read(br, binary.LittleEndian, &nRows); err != nil {
		return nil, err
	}
	tbl := table.New(name, schema)
	width := schema.Width()
	payload := schema.NewPayload()
	var loadErr error
	mgr.PublishAt(func(ts storage.Timestamp) {
		for row := uint64(0); row < nRows; row++ {
			for i := 0; i < width; i++ {
				if err := binary.Read(br, binary.LittleEndian, &payload[i]); err != nil {
					loadErr = fmt.Errorf("checkpoint: row %d: %w", row, err)
					return
				}
			}
			if _, err := tbl.Append(ts, payload); err != nil {
				loadErr = err
				return
			}
		}
	})
	if loadErr != nil {
		return nil, loadErr
	}
	return tbl, nil
}

func writeString(w *bufio.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("checkpoint: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

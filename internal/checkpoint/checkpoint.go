// Package checkpoint persists ML-table snapshots and restores them, so
// trained models and loaded datasets survive process restarts. The paper's
// prototype is purely in-memory; this is the natural extension its Section 1
// hints at ("can be extended towards disk-based DBMSs").
//
// Format v2 is a CRC32C-framed, little-endian, length-prefixed stream:
//
//	magic "DB4M" | version byte (2)
//	frame{ meta: ts u64, lsn u64, ntables u32 }
//	frame{ table section } × ntables
//
// where each frame is [payload length u32][crc32c(payload) u32][payload].
// A table section carries the name, schema, secondary-index definitions
// (which v1 silently dropped), and the full-row snapshot visible at the
// checkpoint timestamp. A bit-flipped or truncated stream yields ErrCorrupt
// or ErrTruncated — never a panic, never a half-loaded table.
//
// The meta frame's LSN ties a checkpoint to the write-ahead log
// (internal/wal): recovery loads the checkpoint, then replays only WAL
// records the checkpoint does not already cover.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// magic identifies checkpoint streams; the version byte guards layout
// changes.
var magic = [4]byte{'D', 'B', '4', 'M'}

const formatVersion = 2

var (
	// ErrTruncated marks a stream that ends mid-frame or with fewer table
	// sections than its meta frame promised.
	ErrTruncated = errors.New("checkpoint: truncated stream")
	// ErrCorrupt marks a frame whose CRC or structure does not check out.
	ErrCorrupt = errors.New("checkpoint: corrupt stream")
	// ErrVersion marks a stream written by an unsupported format version.
	ErrVersion = errors.New("checkpoint: unsupported format version")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeadLen  = 8
	maxPayloadLen = 1 << 30 // a section holds a full table snapshot
	maxCount      = 1 << 24
)

// Meta is the checkpoint-wide header: the snapshot timestamp every section
// was scanned at, and the WAL LSN the checkpoint covers up to (records with
// LSN below it are fully reflected in the sections).
type Meta struct {
	TS  storage.Timestamp
	LSN uint64
}

// Decoded is one table section read back from a stream, ready to rebuild.
type Decoded struct {
	Name    string
	Cols    []table.Column
	HashIdx []string
	TreeIdx []string
	Rows    []storage.Payload
}

// Build materializes the decoded section as a fresh table whose rows are
// all visible from ts on, with the persisted secondary indexes recreated.
func (d *Decoded) Build(ts storage.Timestamp) (*table.Table, error) {
	schema, err := table.NewSchema(d.Cols...)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	tbl := table.New(d.Name, schema)
	for _, p := range d.Rows {
		if _, err := tbl.Append(ts, p); err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
	}
	for _, col := range d.HashIdx {
		if err := tbl.CreateHashIndex(col); err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
	}
	for _, col := range d.TreeIdx {
		if err := tbl.CreateTreeIndex(col); err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
	}
	return tbl, nil
}

// --- encoding ---

type encBuf struct{ b []byte }

func (e *encBuf) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encBuf) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encBuf) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encBuf) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *encBuf) strs(ss []string) {
	e.u32(uint32(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

// EncodeTable renders one table's section payload: the schema, the index
// definitions, and every row visible at ts. The returned bytes are
// position-independent, so the fuzzy checkpointer caches them across passes
// for tables whose mutation counter has not moved.
func EncodeTable(tbl *table.Table, ts storage.Timestamp) []byte {
	var e encBuf
	e.str(tbl.Name())
	cols := tbl.Schema().Columns()
	e.u32(uint32(len(cols)))
	for _, c := range cols {
		e.str(c.Name)
		e.u8(uint8(c.Type))
	}
	hash, tree := tbl.IndexDefs()
	e.strs(hash)
	e.strs(tree)
	nrowsAt := len(e.b)
	e.u64(0) // row count, patched below
	var n uint64
	tbl.Scan(ts, func(_ table.RowID, p storage.Payload) bool {
		for _, w := range p {
			e.u64(w)
		}
		n++
		return true
	})
	binary.LittleEndian.PutUint64(e.b[nrowsAt:], n)
	return e.b
}

func writeFrame(w io.Writer, payload []byte) error {
	var head [frameHeadLen]byte
	binary.LittleEndian.PutUint32(head[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteStream writes a complete checkpoint stream: magic, version, meta
// frame, then one frame per section (from EncodeTable).
func WriteStream(w io.Writer, meta Meta, sections [][]byte) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return err
	}
	var m encBuf
	m.u64(uint64(meta.TS))
	m.u64(meta.LSN)
	m.u32(uint32(len(sections)))
	if err := writeFrame(bw, m.b); err != nil {
		return err
	}
	for _, s := range sections {
		if err := writeFrame(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// --- decoding ---

type decBuf struct {
	b   []byte
	off int
}

func (d *decBuf) remaining() int { return len(d.b) - d.off }

func (d *decBuf) u8() (uint8, error) {
	if d.remaining() < 1 {
		return 0, ErrCorrupt
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decBuf) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decBuf) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decBuf) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if n > 1<<20 || int(n) > d.remaining() {
		return "", ErrCorrupt
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decBuf) strs() ([]string, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if n > maxCount || uint64(n) > uint64(d.remaining()/4) {
		return nil, ErrCorrupt
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = d.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// readFrame reads one frame, verifying length sanity and CRC. io.EOF at a
// frame boundary is returned as-is so callers can distinguish "stream ended
// cleanly" from "stream tore mid-frame" (ErrTruncated).
func readFrame(r io.Reader) ([]byte, error) {
	var head [frameHeadLen]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, ErrTruncated
	}
	plen := binary.LittleEndian.Uint32(head[0:])
	crc := binary.LittleEndian.Uint32(head[4:])
	if plen > maxPayloadLen {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, ErrTruncated
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("%w: frame crc mismatch", ErrCorrupt)
	}
	return payload, nil
}

// decodeSection parses one table-section payload. Every length is validated
// against the remaining bytes before allocation; hostile input cannot panic
// or balloon memory.
func decodeSection(b []byte) (*Decoded, error) {
	d := decBuf{b: b}
	out := &Decoded{}
	var err error
	if out.Name, err = d.str(); err != nil {
		return nil, err
	}
	nc, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nc > 1<<16 || uint64(nc) > uint64(d.remaining()/5) {
		return nil, fmt.Errorf("%w: implausible column count %d", ErrCorrupt, nc)
	}
	out.Cols = make([]table.Column, nc)
	for i := range out.Cols {
		if out.Cols[i].Name, err = d.str(); err != nil {
			return nil, err
		}
		t, err := d.u8()
		if err != nil {
			return nil, err
		}
		if table.ColType(t) != table.Int64 && table.ColType(t) != table.Float64 {
			return nil, fmt.Errorf("%w: unknown column type %d", ErrCorrupt, t)
		}
		out.Cols[i].Type = table.ColType(t)
	}
	if out.HashIdx, err = d.strs(); err != nil {
		return nil, err
	}
	if out.TreeIdx, err = d.strs(); err != nil {
		return nil, err
	}
	nr, err := d.u64()
	if err != nil {
		return nil, err
	}
	width := len(out.Cols)
	if width == 0 && nr > 0 {
		return nil, fmt.Errorf("%w: rows without columns", ErrCorrupt)
	}
	if nr > maxCount || (width > 0 && nr > uint64(d.remaining()/(width*8))) {
		return nil, fmt.Errorf("%w: implausible row count %d", ErrCorrupt, nr)
	}
	out.Rows = make([]storage.Payload, nr)
	for i := range out.Rows {
		p := make(storage.Payload, width)
		for j := range p {
			if p[j], err = d.u64(); err != nil {
				return nil, err
			}
		}
		out.Rows[i] = p
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in section", ErrCorrupt, d.remaining())
	}
	return out, nil
}

// ReadStream parses a complete checkpoint stream. It returns ErrVersion for
// other format versions, ErrCorrupt for CRC/structure failures, and
// ErrTruncated when the stream ends before the promised sections — never a
// partial result.
func ReadStream(r io.Reader) (Meta, []*Decoded, error) {
	br := bufio.NewReader(r)
	var meta Meta
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return meta, nil, ErrTruncated
	}
	if m != magic {
		return meta, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, m)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return meta, nil, ErrTruncated
	}
	if ver != formatVersion {
		return meta, nil, fmt.Errorf("%w: %d (want %d)", ErrVersion, ver, formatVersion)
	}
	mb, err := readFrame(br)
	if err != nil {
		if err == io.EOF {
			return meta, nil, ErrTruncated
		}
		return meta, nil, err
	}
	md := decBuf{b: mb}
	ts, err := md.u64()
	if err != nil {
		return meta, nil, err
	}
	lsn, err := md.u64()
	if err != nil {
		return meta, nil, err
	}
	nt, err := md.u32()
	if err != nil {
		return meta, nil, err
	}
	if md.remaining() != 0 {
		return meta, nil, fmt.Errorf("%w: trailing bytes in meta frame", ErrCorrupt)
	}
	if nt > 1<<16 {
		return meta, nil, fmt.Errorf("%w: implausible table count %d", ErrCorrupt, nt)
	}
	meta.TS = storage.Timestamp(ts)
	meta.LSN = lsn
	tables := make([]*Decoded, 0, nt)
	for i := uint32(0); i < nt; i++ {
		sb, err := readFrame(br)
		if err != nil {
			if err == io.EOF {
				return meta, nil, ErrTruncated
			}
			return meta, nil, err
		}
		dec, err := decodeSection(sb)
		if err != nil {
			return meta, nil, err
		}
		tables = append(tables, dec)
	}
	return meta, tables, nil
}

// Save writes the snapshot of tbl visible at ts as a single-table v2
// stream. Unlike v1, index definitions are persisted and restored.
func Save(w io.Writer, tbl *table.Table, ts storage.Timestamp) error {
	return WriteStream(w, Meta{TS: ts}, [][]byte{EncodeTable(tbl, ts)})
}

// Load restores a table saved by Save into mgr's database, publishing all
// rows atomically at a fresh commit timestamp and recreating the persisted
// secondary indexes.
func Load(r io.Reader, mgr *txn.Manager) (*table.Table, error) {
	_, tables, err := ReadStream(r)
	if err != nil {
		return nil, err
	}
	if len(tables) != 1 {
		return nil, fmt.Errorf("checkpoint: stream holds %d tables, want 1", len(tables))
	}
	var tbl *table.Table
	var loadErr error
	mgr.PublishAt(func(ts storage.Timestamp) {
		tbl, loadErr = tables[0].Build(ts)
	})
	if loadErr != nil {
		return nil, loadErr
	}
	return tbl, nil
}

package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoint files live beside the WAL segments as "ckpt-%016x.db4m", where
// the hex field is a monotonically increasing sequence number. Files are
// written to a temp name, fsynced, and renamed into place, so a crash never
// leaves a half-written file under a final name — and if one appears anyway
// (simulated by the mid-checkpoint kill-point, which deliberately writes a
// torn file at the final name), LatestValid skips it and falls back to the
// newest checkpoint that decodes cleanly.

const (
	filePrefix = "ckpt-"
	fileSuffix = ".db4m"
)

// FileName returns the checkpoint file name for a sequence number.
func FileName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", filePrefix, seq, fileSuffix)
}

// parseSeq extracts the sequence number from a checkpoint file name.
func parseSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix)
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// WriteFile durably writes one checkpoint: temp file, fsync, rename to the
// sequence's final name, directory fsync. Returns the final path.
func WriteFile(dir string, seq uint64, meta Meta, sections [][]byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	final := filepath.Join(dir, FileName(seq))
	tmp, err := os.CreateTemp(dir, filePrefix+"tmp-*")
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := WriteStream(tmp, meta, sections); err != nil {
		tmp.Close()
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return final, nil
}

// Loaded is one fully decoded on-disk checkpoint.
type Loaded struct {
	Seq    uint64
	Path   string
	Meta   Meta
	Tables []*Decoded
}

// listSeqs returns the directory's checkpoint sequence numbers, ascending.
func listSeqs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var seqs []uint64
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if seq, ok := parseSeq(ent.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// NextSeq returns one past the highest checkpoint sequence in dir (1 for an
// empty directory), counting torn files too so a failed write never gets
// its sequence number reused.
func NextSeq(dir string) (uint64, error) {
	seqs, err := listSeqs(dir)
	if err != nil {
		return 0, err
	}
	if len(seqs) == 0 {
		return 1, nil
	}
	return seqs[len(seqs)-1] + 1, nil
}

// LatestValid decodes the newest checkpoint in dir that reads back cleanly,
// scanning backwards past torn or corrupt files (each one the debris of a
// crash mid-write). Returns (nil, nil) when no valid checkpoint exists —
// recovery then replays the WAL from its beginning.
func LatestValid(dir string) (*Loaded, error) {
	seqs, err := listSeqs(dir)
	if err != nil {
		return nil, err
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		path := filepath.Join(dir, FileName(seqs[i]))
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		meta, tables, err := ReadStream(f)
		f.Close()
		if err != nil {
			// Torn/corrupt/foreign-version file: fall back to the previous.
			continue
		}
		return &Loaded{Seq: seqs[i], Path: path, Meta: meta, Tables: tables}, nil
	}
	return nil, nil
}

package checkpoint

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

func sampleTable(t *testing.T, mgr *txn.Manager, n int) *table.Table {
	t.Helper()
	tbl := table.New("Model", table.MustSchema(
		table.Column{Name: "ID", Type: table.Int64},
		table.Column{Name: "W", Type: table.Float64},
	))
	mgr.PublishAt(func(ts storage.Timestamp) {
		for i := 0; i < n; i++ {
			p := tbl.Schema().NewPayload()
			p.SetInt64(0, int64(i))
			p.SetFloat64(1, float64(i)*1.5)
			if _, err := tbl.Append(ts, p); err != nil {
				t.Fatal(err)
			}
		}
	})
	return tbl
}

func TestRoundTrip(t *testing.T) {
	mgr := txn.NewManager()
	tbl := sampleTable(t, mgr, 100)
	var buf bytes.Buffer
	if err := Save(&buf, tbl, mgr.Stable()); err != nil {
		t.Fatal(err)
	}

	mgr2 := txn.NewManager()
	got, err := Load(&buf, mgr2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "Model" || got.NumRows() != 100 {
		t.Fatalf("restored table = %s/%d rows", got.Name(), got.NumRows())
	}
	cols := got.Schema().Columns()
	if cols[0].Name != "ID" || cols[0].Type != table.Int64 || cols[1].Name != "W" || cols[1].Type != table.Float64 {
		t.Fatalf("restored schema = %+v", cols)
	}
	for i := 0; i < 100; i++ {
		p, ok := got.Read(table.RowID(i), mgr2.Stable())
		if !ok {
			t.Fatalf("row %d invisible after load", i)
		}
		if p.Int64(0) != int64(i) || p.Float64(1) != float64(i)*1.5 {
			t.Fatalf("row %d = %v", i, p)
		}
	}
}

func TestSaveSnapshotSemantics(t *testing.T) {
	mgr := txn.NewManager()
	tbl := sampleTable(t, mgr, 2)
	snap := mgr.Stable()
	// Commit a change after the snapshot.
	tx := mgr.Begin()
	p, _ := tx.Read(tbl, 0)
	p.SetFloat64(1, 999)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, tbl, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, txn.NewManager())
	if err != nil {
		t.Fatal(err)
	}
	q, _ := got.Read(0, storage.InfTS-1)
	if q.Float64(1) == 999 {
		t.Fatal("checkpoint captured a post-snapshot commit")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOPE....",
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in), txn.NewManager()); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	mgr := txn.NewManager()
	tbl := sampleTable(t, mgr, 1)
	var buf bytes.Buffer
	if err := Save(&buf, tbl, mgr.Stable()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte
	if _, err := Load(bytes.NewReader(b), txn.NewManager()); err == nil {
		t.Fatal("wrong format version accepted")
	}
}

func TestLoadTruncatedStream(t *testing.T) {
	mgr := txn.NewManager()
	tbl := sampleTable(t, mgr, 50)
	var buf bytes.Buffer
	if err := Save(&buf, tbl, mgr.Stable()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 9, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut]), txn.NewManager()); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestEmptyTableRoundTrip(t *testing.T) {
	mgr := txn.NewManager()
	tbl := table.New("Empty", table.MustSchema(table.Column{Name: "x", Type: table.Int64}))
	var buf bytes.Buffer
	if err := Save(&buf, tbl, mgr.Stable()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, txn.NewManager())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 {
		t.Fatal("empty table restored with rows")
	}
}

func TestSaveWriterError(t *testing.T) {
	mgr := txn.NewManager()
	tbl := sampleTable(t, mgr, 10)
	if err := Save(failingWriter{}, tbl, mgr.Stable()); err == nil {
		t.Fatal("writer error swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

// Package partition implements the data-partitioning schemes DB4ML offers
// for NUMA locality (Section 5.2): hash, round-robin, and range
// partitioning. A Partitioner maps a row id to the partition (NUMA region)
// that owns it; tables use it to group rows, and the execution engine uses
// the same mapping to route sub-transactions to the owning region's queue.
package partition

import "fmt"

// Scheme selects a partitioning strategy.
type Scheme int

const (
	// Range assigns contiguous row-id ranges to partitions, as the
	// paper's PageRank and both baselines do for their input data. It is
	// the zero value: graph workloads depend on contiguous partitions for
	// locality, so an unset scheme must never scatter rows.
	Range Scheme = iota
	// RoundRobin assigns row i to partition i % n. The paper's SGD use
	// case splits the GlobalParameter table this way to spread write load
	// over all memory controllers.
	RoundRobin
	// Hash scatters rows by a multiplicative hash of their id.
	Hash
)

func (s Scheme) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case Range:
		return "range"
	case Hash:
		return "hash"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Partitioner maps row ids to one of N partitions.
type Partitioner struct {
	scheme Scheme
	n      uint64
	rows   uint64 // total rows, used by Range
	per    uint64 // rows per partition, used by Range
}

// New builds a partitioner over n partitions. totalRows is required by the
// Range scheme and ignored by the others; passing 0 rows with Range yields
// a single-partition mapping (per == 0 marks the degenerate case and Of
// routes every row to partition 0 — before this was enforced, per defaulted
// to 1 and an "empty" range partitioner silently scattered rows 0..n-1
// across all partitions, which the shard router turns into misrouted rows).
func New(scheme Scheme, n int, totalRows uint64) Partitioner {
	if n < 1 {
		n = 1
	}
	p := Partitioner{scheme: scheme, n: uint64(n), rows: totalRows}
	if scheme == Range && totalRows > 0 {
		p.per = (totalRows + p.n - 1) / p.n
	}
	return p
}

// N returns the number of partitions.
func (p Partitioner) N() int { return int(p.n) }

// Scheme returns the partitioning scheme.
func (p Partitioner) Scheme() Scheme { return p.scheme }

// Of returns the partition owning row.
func (p Partitioner) Of(row uint64) int {
	switch p.scheme {
	case RoundRobin:
		return int(row % p.n)
	case Range:
		if p.per == 0 {
			// Degenerate range (0 total rows): single-partition mapping.
			return 0
		}
		part := row / p.per
		if part >= p.n {
			part = p.n - 1
		}
		return int(part)
	case Hash:
		return int((row * 0x9E3779B97F4A7C15 >> 33) % p.n)
	default:
		return 0
	}
}

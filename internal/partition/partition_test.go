package partition

import (
	"testing"
	"testing/quick"
)

func TestRoundRobin(t *testing.T) {
	p := New(RoundRobin, 4, 0)
	for row := uint64(0); row < 100; row++ {
		if got := p.Of(row); got != int(row%4) {
			t.Fatalf("Of(%d) = %d, want %d", row, got, row%4)
		}
	}
}

func TestRangeContiguous(t *testing.T) {
	p := New(Range, 4, 100)
	// 100 rows over 4 partitions: 25 each.
	checks := []struct {
		row  uint64
		want int
	}{
		{0, 0}, {24, 0}, {25, 1}, {49, 1}, {50, 2}, {75, 3}, {99, 3},
	}
	for _, c := range checks {
		if got := p.Of(c.row); got != c.want {
			t.Errorf("Of(%d) = %d, want %d", c.row, got, c.want)
		}
	}
}

func TestRangeUnevenRows(t *testing.T) {
	p := New(Range, 3, 10) // per = 4: rows 0-3, 4-7, 8-9
	wants := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for row, want := range wants {
		if got := p.Of(uint64(row)); got != want {
			t.Errorf("Of(%d) = %d, want %d", row, got, want)
		}
	}
	// Out-of-range rows clamp into the last partition rather than escaping.
	if got := p.Of(1000); got != 2 {
		t.Errorf("Of(1000) = %d, want clamp to 2", got)
	}
}

func TestRangeZeroRows(t *testing.T) {
	p := New(Range, 4, 0)
	if got := p.Of(0); got < 0 || got >= 4 {
		t.Fatalf("Of(0) = %d out of range with zero totalRows", got)
	}
}

// TestRangeZeroRowsSinglePartition pins the documented degenerate case the
// shard router surfaced: a Range partitioner built before any rows are
// loaded must map EVERY row to partition 0 — the "single-partition
// mapping" New documents — not scatter rows 0..n-1 across partitions the
// way the old per=1 fallback did. A router consulting such a partitioner
// mid-load would otherwise send rows to shards that will never own them.
func TestRangeZeroRowsSinglePartition(t *testing.T) {
	p := New(Range, 4, 0)
	for _, row := range []uint64{0, 1, 2, 3, 7, 1000, 1 << 40} {
		if got := p.Of(row); got != 0 {
			t.Fatalf("Range with 0 rows: Of(%d) = %d, want the documented single-partition mapping (0)", row, got)
		}
	}
}

// TestRangeFewerRowsThanPartitions covers the empty-partition case: with
// fewer rows than partitions the high partitions legitimately own nothing,
// and every existing row must land in its own partition (per = 1), not be
// clamped together.
func TestRangeFewerRowsThanPartitions(t *testing.T) {
	p := New(Range, 4, 2) // per = 1: row 0 -> part 0, row 1 -> part 1; parts 2,3 empty
	if p.Of(0) != 0 || p.Of(1) != 1 {
		t.Fatalf("Of(0)=%d Of(1)=%d, want 0 and 1", p.Of(0), p.Of(1))
	}
	// Out-of-range rows still clamp into the last partition.
	if got := p.Of(9); got != 3 {
		t.Fatalf("Of(9) = %d, want clamp to 3", got)
	}
}

func TestHashSpread(t *testing.T) {
	p := New(Hash, 8, 0)
	counts := make([]int, 8)
	const rows = 80000
	for row := uint64(0); row < rows; row++ {
		counts[p.Of(row)]++
	}
	for part, c := range counts {
		// Every partition should hold 12.5% ± 2% of sequential row ids.
		frac := float64(c) / rows
		if frac < 0.105 || frac > 0.145 {
			t.Errorf("hash partition %d holds %.1f%% of rows, want ~12.5%%", part, frac*100)
		}
	}
}

func TestInRangeProperty(t *testing.T) {
	f := func(schemeRaw uint8, nRaw uint8, rows uint16, row uint64) bool {
		scheme := Scheme(schemeRaw % 3)
		n := int(nRaw%16) + 1
		p := New(scheme, n, uint64(rows))
		got := p.Of(row)
		return got >= 0 && got < n && p.N() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSingularPartition(t *testing.T) {
	for _, s := range []Scheme{RoundRobin, Range, Hash} {
		p := New(s, 1, 50)
		for row := uint64(0); row < 100; row += 7 {
			if p.Of(row) != 0 {
				t.Errorf("%v single partition returned nonzero", s)
			}
		}
	}
	// n < 1 clamps to 1.
	p := New(RoundRobin, 0, 0)
	if p.N() != 1 || p.Of(12345) != 0 {
		t.Error("n=0 did not clamp to a single partition")
	}
}

func TestSchemeString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || Range.String() != "range" || Hash.String() != "hash" {
		t.Error("Scheme.String mismatch")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme has empty String")
	}
}

// Package oltpbench is a SmallBank-style OLTP workload for ML-tables: the
// paper's premise is that DB4ML's storage keeps serving classical
// transactional workloads while ML algorithms run (Section 2.1), so this
// package provides the classical side — a two-table bank schema, a
// transaction mix (balance checks, deposits, transfers), and a concurrent
// runner with first-committer-wins retry — used by tests and the mixed-
// workload benchmark to validate and quantify that claim.
package oltpbench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// Column layout shared by both tables.
const (
	ColID      = 0
	ColBalance = 1
)

// Bank bundles the workload's tables.
type Bank struct {
	Checking *table.Table
	Savings  *table.Table
	Accounts int
	mgr      *txn.Manager
}

// Setup creates and loads the bank with the given number of accounts, each
// holding initialBalance in both tables.
func Setup(mgr *txn.Manager, accounts int, initialBalance float64) (*Bank, error) {
	if accounts < 1 {
		return nil, fmt.Errorf("oltpbench: need at least one account")
	}
	schema := table.MustSchema(
		table.Column{Name: "ID", Type: table.Int64},
		table.Column{Name: "Balance", Type: table.Float64},
	)
	checking := table.New("Checking", schema)
	savings := table.New("Savings", schema)
	var loadErr error
	mgr.PublishAt(func(ts storage.Timestamp) {
		p := schema.NewPayload()
		for i := 0; i < accounts; i++ {
			p.SetInt64(ColID, int64(i))
			p.SetFloat64(ColBalance, initialBalance)
			if _, err := checking.Append(ts, p); err != nil {
				loadErr = err
				return
			}
			if _, err := savings.Append(ts, p); err != nil {
				loadErr = err
				return
			}
		}
	})
	if loadErr != nil {
		return nil, loadErr
	}
	return &Bank{Checking: checking, Savings: savings, Accounts: accounts, mgr: mgr}, nil
}

// TotalBalance sums every balance at the current stable snapshot — the
// conservation invariant the transfer mix must preserve.
func (b *Bank) TotalBalance() float64 {
	tx := b.mgr.Begin()
	total := 0.0
	for i := 0; i < b.Accounts; i++ {
		if p, ok := tx.Read(b.Checking, table.RowID(i)); ok {
			total += p.Float64(ColBalance)
		}
		if p, ok := tx.Read(b.Savings, table.RowID(i)); ok {
			total += p.Float64(ColBalance)
		}
	}
	return total
}

// Mix is the workload composition in percent; the remainder goes to
// Balance (read-only) transactions.
type Mix struct {
	// DepositPct is the share of single-row deposit transactions.
	DepositPct int
	// TransferPct is the share of two-row checking→savings transfers.
	TransferPct int
}

// DefaultMix is a write-heavy mix: 40% deposits, 30% transfers, 30%
// balance checks.
var DefaultMix = Mix{DepositPct: 40, TransferPct: 30}

// Stats reports a run.
type Stats struct {
	Committed uint64
	Conflicts uint64
	Elapsed   time.Duration
}

// Throughput returns committed transactions per second.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Committed) / s.Elapsed.Seconds()
}

// Run executes txnsPerClient transactions on each of clients goroutines,
// retrying on write-write conflicts, and returns aggregate stats.
func (b *Bank) Run(clients, txnsPerClient int, mix Mix, seed int64) (Stats, error) {
	var committed, conflicts atomic.Uint64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for i := 0; i < txnsPerClient; i++ {
				if err := b.one(rng, mix, &conflicts); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				committed.Add(1)
			}
		}(c)
	}
	wg.Wait()
	stats := Stats{Committed: committed.Load(), Conflicts: conflicts.Load(), Elapsed: time.Since(start)}
	if err, _ := firstErr.Load().(error); err != nil {
		return stats, err
	}
	return stats, nil
}

// one runs a single transaction of the mix to successful commit.
func (b *Bank) one(rng *rand.Rand, mix Mix, conflicts *atomic.Uint64) error {
	kind := rng.Intn(100)
	acct := table.RowID(rng.Intn(b.Accounts))
	amount := float64(rng.Intn(100) + 1)
	for {
		var err error
		switch {
		case kind < mix.DepositPct:
			err = b.deposit(acct, amount)
		case kind < mix.DepositPct+mix.TransferPct:
			err = b.transfer(acct, amount)
		default:
			err = b.balance(acct)
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, txn.ErrConflict) {
			return err
		}
		conflicts.Add(1)
	}
}

func (b *Bank) deposit(acct table.RowID, amount float64) error {
	tx := b.mgr.Begin()
	p, ok := tx.Read(b.Checking, acct)
	if !ok {
		return fmt.Errorf("oltpbench: account %d missing", acct)
	}
	p.SetFloat64(ColBalance, p.Float64(ColBalance)+amount)
	if err := tx.Write(b.Checking, acct, p); err != nil {
		return err
	}
	return tx.Commit()
}

// transfer moves amount from checking to savings of the same account —
// a two-table atomic update.
func (b *Bank) transfer(acct table.RowID, amount float64) error {
	tx := b.mgr.Begin()
	c, ok := tx.Read(b.Checking, acct)
	if !ok {
		return fmt.Errorf("oltpbench: account %d missing", acct)
	}
	s, ok := tx.Read(b.Savings, acct)
	if !ok {
		return fmt.Errorf("oltpbench: savings %d missing", acct)
	}
	c.SetFloat64(ColBalance, c.Float64(ColBalance)-amount)
	s.SetFloat64(ColBalance, s.Float64(ColBalance)+amount)
	if err := tx.Write(b.Checking, acct, c); err != nil {
		return err
	}
	if err := tx.Write(b.Savings, acct, s); err != nil {
		return err
	}
	return tx.Commit()
}

func (b *Bank) balance(acct table.RowID) error {
	tx := b.mgr.Begin()
	if _, ok := tx.Read(b.Checking, acct); !ok {
		return fmt.Errorf("oltpbench: account %d missing", acct)
	}
	if _, ok := tx.Read(b.Savings, acct); !ok {
		return fmt.Errorf("oltpbench: savings %d missing", acct)
	}
	return tx.Commit()
}

package oltpbench

import (
	"testing"

	"db4ml/internal/txn"
)

func TestSetupShape(t *testing.T) {
	mgr := txn.NewManager()
	b, err := Setup(mgr, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Checking.NumRows() != 16 || b.Savings.NumRows() != 16 {
		t.Fatalf("rows: %d/%d", b.Checking.NumRows(), b.Savings.NumRows())
	}
	if got := b.TotalBalance(); got != 16*2*100 {
		t.Fatalf("initial total = %v", got)
	}
	if _, err := Setup(mgr, 0, 1); err == nil {
		t.Fatal("zero accounts accepted")
	}
}

func TestDepositsIncreaseTotal(t *testing.T) {
	mgr := txn.NewManager()
	b, err := Setup(mgr, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := b.Run(1, 50, Mix{DepositPct: 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 50 {
		t.Fatalf("committed = %d", stats.Committed)
	}
	if b.TotalBalance() <= 0 {
		t.Fatal("deposits did not increase total")
	}
}

func TestTransfersConserveMoney(t *testing.T) {
	mgr := txn.NewManager()
	const accounts = 8
	const initial = 1000.0
	b, err := Setup(mgr, accounts, initial)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := b.Run(4, 200, Mix{TransferPct: 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 4*200 {
		t.Fatalf("committed = %d", stats.Committed)
	}
	if got := b.TotalBalance(); got != accounts*2*initial {
		t.Fatalf("transfer mix changed total: %v", got)
	}
}

func TestMixedWorkloadUnderContention(t *testing.T) {
	mgr := txn.NewManager()
	// Few accounts + many clients: conflicts are likely and must all be
	// retried to successful commit.
	b, err := Setup(mgr, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := b.Run(8, 100, DefaultMix, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 800 {
		t.Fatalf("committed = %d, want 800 (every txn retried to success)", stats.Committed)
	}
	if stats.Throughput() <= 0 {
		t.Fatal("throughput not measured")
	}
	t.Logf("conflicts retried: %d", stats.Conflicts)
}

func TestBalanceOnlyMixIsReadOnly(t *testing.T) {
	mgr := txn.NewManager()
	b, err := Setup(mgr, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	before := b.TotalBalance()
	if _, err := b.Run(2, 100, Mix{}, 4); err != nil {
		t.Fatal(err)
	}
	if got := b.TotalBalance(); got != before {
		t.Fatalf("read-only mix changed state: %v -> %v", before, got)
	}
}

func TestRunConcurrentWithML(t *testing.T) {
	// The paper's coexistence claim: the OLTP mix keeps committing while
	// an uber-transaction holds iterative state on a *different* table.
	mgr := txn.NewManager()
	b, err := Setup(mgr, 8, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Hold in-flight ML state on Savings? No — that would block transfers
	// (by design). Use a separate signal table instead.
	sig, err := Setup(mgr, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sig.Checking.StartIterative(mgr.Stable(), 1, nil); err != nil {
		t.Fatal(err)
	}
	stats, err := b.Run(4, 100, DefaultMix, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 400 {
		t.Fatalf("committed = %d with concurrent ML state", stats.Committed)
	}
	if err := sig.Checking.AbortIterative(nil); err != nil {
		t.Fatal(err)
	}
}

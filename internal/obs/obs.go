// Package obs is the engine's telemetry layer: per-worker-sharded event
// counters, low-frequency gauges, and a convergence time series, collected
// while an uber-transaction runs and exported as a JSON-serializable
// Snapshot. The paper's whole evaluation (Figures 8–10: per-worker
// runtimes, commit/rollback behaviour, convergence progress) is built on
// exactly these measurements; this package makes them observable mid-run
// instead of only through the final exec.Stats.
//
// Design constraints:
//
//   - Disabled must be free. A nil *Observer is the off state; every hot
//     path in the executor guards its telemetry with a single nil-check
//     and touches nothing else.
//   - Enabled must be cheap. Counters are sharded per worker (one padded
//     cache line each) so concurrent workers never contend on a counter
//     word; gauges and the convergence series are sampled at scheduling
//     granularity, not per record access.
//   - One Observer serves one Run at a time. The executor calls BeginRun,
//     which resets all state; Snapshot may be called during or after the
//     run (counters are atomics, the series is mutex-guarded).
package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one per-worker event counter.
type Counter int

const (
	// Executions counts Execute calls, including rolled-back iterations.
	Executions Counter = iota
	// Commits counts iterations whose updates were installed.
	Commits
	// UserRollbacks counts iterations discarded because Validate returned
	// Rollback.
	UserRollbacks
	// StalenessRollbacks counts iterations discarded by a bounded-staleness
	// violation at commit time.
	StalenessRollbacks
	// ForcedStopIters counts sub-transactions retired by the committed-
	// iteration cap (Config.MaxIterations).
	ForcedStopIters
	// ForcedStopAttempts counts sub-transactions retired by the attempt cap
	// (Config.MaxAttempts) — the livelock backstop for perpetual rollback.
	ForcedStopAttempts
	// Steals counts batches a worker popped from another region's queue
	// because its own region was drained.
	Steals
	// Recirculations counts batches re-enqueued because they still held
	// live sub-transactions after a pass.
	Recirculations
	// ChaosFaults counts injected faults (internal/chaos) the run absorbed:
	// stalls, preemptions, forced rollbacks, and mid-batch cancellations.
	// Always zero in production runs.
	ChaosFaults
	// Panics counts panics the supervision layer contained and converted
	// into job-level aborts (internal/resilience.ErrJobPanicked).
	Panics
	// Retries counts whole-job resubmissions by the facade's abort-retry
	// loop (charged to worker 0: retry is a job-level, not worker-level,
	// event).
	Retries
	// StallAborts counts jobs the progress watchdog convicted
	// (resilience.ErrJobStalled).
	StallAborts
	// DeadlineAborts counts jobs retired for exceeding their wall-clock
	// deadline (resilience.ErrJobDeadline).
	DeadlineAborts
	// LoadSheds counts submissions the admission gate fast-failed with
	// resilience.ErrOverloaded.
	LoadSheds
	// VersionsPruned counts row versions (and reclaimed tombstone chains'
	// members) the version garbage collector cut out of the chains.
	VersionsPruned
	// GCPasses counts completed reclaimer passes over all tables.
	GCPasses
	// PlanQueries counts relational plan executions started through the
	// plan layer (internal/plan) — one per Prepared.Execute.
	PlanQueries
	// PlanRows counts tuples emitted at the root of plan executions — the
	// result rows a query actually produced, after all pushdown.
	PlanRows
	// WALAppends counts uber-commit records appended to the write-ahead log.
	WALAppends
	// WALBytes counts bytes written to the write-ahead log (frames included).
	WALBytes
	// WALFsyncs counts fsync calls the WAL's group-commit batcher issued.
	WALFsyncs
	// RecoveryReplays counts WAL records replayed into the kernel on Open.
	RecoveryReplays
	// Checkpoints counts fuzzy checkpoint passes that produced a durable
	// checkpoint file.
	Checkpoints
	// CkptSectionsWritten counts checkpoint table sections serialized from
	// a live scan (the cold path of the unchanged-section reuse cache).
	CkptSectionsWritten
	// CkptSectionsReused counts checkpoint table sections copied from the
	// previous checkpoint because their mutation counter was unchanged.
	CkptSectionsReused
	// TwoPCPrepares counts per-shard prepare calls of distributed
	// uber-commits. On a sharded database each shard's observer counts its
	// own prepares, so the sharded aggregator can break them out by shard.
	TwoPCPrepares
	// TwoPCAborts counts distributed uber-transactions whose abort this
	// shard caused (its job failed, or its prepare was refused) — the
	// abort-by-shard counter.
	TwoPCAborts

	numCounters
)

var counterNames = [numCounters]string{
	"executions",
	"commits",
	"user_rollbacks",
	"staleness_rollbacks",
	"forced_stop_iterations",
	"forced_stop_attempts",
	"steals",
	"recirculations",
	"chaos_faults",
	"panics",
	"retries",
	"stall_aborts",
	"deadline_aborts",
	"load_sheds",
	"versions_pruned",
	"gc_passes",
	"plan_queries",
	"plan_rows",
	"wal_appends",
	"wal_bytes",
	"wal_fsyncs",
	"recovery_replays",
	"checkpoints",
	"ckpt_sections_written",
	"ckpt_sections_reused",
	"twopc_prepares",
	"twopc_aborts",
}

func (c Counter) String() string {
	if c >= 0 && c < numCounters {
		return counterNames[c]
	}
	return "counter(?)"
}

// shard is one worker's counter block, padded so adjacent workers' shards
// never share a cache line.
type shard struct {
	counts [numCounters]atomic.Uint64
	busy   atomic.Int64 // processing nanoseconds
	_      [128 - (numCounters*8+8)%128]byte
}

// gauge tracks a sampled quantity: last observed value, maximum, and the
// running sum/count for the average.
type gauge struct {
	last atomic.Int64
	max  atomic.Int64
	sum  atomic.Int64
	n    atomic.Int64
}

func (g *gauge) observe(v int64) {
	g.last.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			break
		}
	}
	g.sum.Add(v)
	g.n.Add(1)
}

func (g *gauge) reset() {
	g.last.Store(0)
	g.max.Store(0)
	g.sum.Store(0)
	g.n.Store(0)
}

func (g *gauge) snapshot() GaugeStats {
	s := GaugeStats{Last: g.last.Load(), Max: g.max.Load(), Samples: g.n.Load()}
	if s.Samples > 0 {
		s.Avg = float64(g.sum.Load()) / float64(s.Samples)
	}
	return s
}

// maxSeriesLen bounds the convergence series; when full, the series is
// decimated (every other sample dropped) so arbitrarily long runs keep a
// bounded, progressively coarser trace.
const maxSeriesLen = 2048

// Observer collects one engine run's telemetry. The zero value is not
// usable; call New. A nil *Observer means telemetry is disabled.
//
// One observer serves one run at a time, but it remembers across runs:
// BeginRun archives the outgoing run's counters into the attempt history
// (Snapshot.Attempts) before resetting the live shards, so a retried job's
// earlier attempts are never silently zeroed — Snapshot.Cumulative sums
// every archived attempt plus the live one. Gauges, the convergence
// series, and the latency histograms follow the documented reset policy:
// they describe the current attempt only and reset on BeginRun.
type Observer struct {
	start   time.Time
	workers int
	active  bool // a run has begun; the next BeginRun archives it
	shards  []shard
	hshards []histShard

	queueDepth gauge // region queue length, sampled per scheduling pass
	liveSubs   gauge // non-retired sub-transactions, sampled per pass

	mu       sync.Mutex
	job      string // label of the job this run's telemetry belongs to
	series   []Sample
	attempts []AttemptStats // archived counters of earlier runs/attempts
}

// New returns an idle observer. The executor sizes it via BeginRun.
func New() *Observer {
	return &Observer{start: time.Now(), workers: 1, shards: make([]shard, 1), hshards: make([]histShard, 1)}
}

// BeginRun archives the previous run's counters into the attempt history,
// then resets all live telemetry and sizes the per-worker shards; the
// executor calls it at the start of every Run.
func (o *Observer) BeginRun(workers int) {
	if workers < 1 {
		workers = 1
	}
	if o.active {
		arch := AttemptStats{Counters: o.counterTotals()}
		o.mu.Lock()
		arch.Job = o.job
		o.attempts = append(o.attempts, arch)
		o.mu.Unlock()
	}
	o.active = true
	o.start = time.Now()
	o.workers = workers
	o.shards = make([]shard, workers)
	o.hshards = make([]histShard, workers)
	o.queueDepth.reset()
	o.liveSubs.reset()
	o.mu.Lock()
	o.job = ""
	o.series = nil
	o.mu.Unlock()
}

// SetJob tags this run's telemetry with the owning job's label, so
// snapshots taken from concurrent uber-transactions stay attributable.
// The executor calls it right after BeginRun.
func (o *Observer) SetJob(label string) {
	o.mu.Lock()
	o.job = label
	o.mu.Unlock()
}

func (o *Observer) shard(worker int) *shard {
	if worker < 0 || worker >= len(o.shards) {
		worker = 0
	}
	return &o.shards[worker]
}

// Inc bumps worker's counter c by one.
func (o *Observer) Inc(worker int, c Counter) {
	o.shard(worker).counts[c].Add(1)
}

// Add bumps worker's counter c by n. The facade's retry loop uses it to
// re-establish the attempt count after a resubmission resets the observer.
func (o *Observer) Add(worker int, c Counter, n uint64) {
	o.shard(worker).counts[c].Add(n)
}

// AddBusy charges nanos of processing time to worker.
func (o *Observer) AddBusy(worker int, nanos int64) {
	o.shard(worker).busy.Add(nanos)
}

// ObserveQueueDepth records a queue-length sample.
func (o *Observer) ObserveQueueDepth(depth int) {
	o.queueDepth.observe(int64(depth))
}

// ObserveLive records a live-sub-transaction count sample.
func (o *Observer) ObserveLive(live int64) {
	o.liveSubs.observe(live)
}

// RecordSample appends one point to the convergence series: the number of
// still-live sub-transactions and the cumulative commit/rollback counts at
// this moment. The executor calls it per synchronous round, or from a
// periodic sampler under the queued schedulers.
func (o *Observer) RecordSample(live int64, commits, rollbacks uint64) {
	s := Sample{
		ElapsedMicros: time.Since(o.start).Microseconds(),
		Live:          live,
		Commits:       commits,
		Rollbacks:     rollbacks,
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.series) >= maxSeriesLen {
		keep := o.series[:0]
		for i := 0; i < len(o.series); i += 2 {
			keep = append(keep, o.series[i])
		}
		o.series = keep
	}
	o.series = append(o.series, s)
}

// Sample is one convergence-series point.
type Sample struct {
	// ElapsedMicros is the time since the run started.
	ElapsedMicros int64 `json:"elapsed_us"`
	// Live is the number of not-yet-retired sub-transactions.
	Live int64 `json:"live"`
	// Commits and Rollbacks are cumulative counts at sample time.
	Commits   uint64 `json:"commits"`
	Rollbacks uint64 `json:"rollbacks"`
	// CommitRate is the commit throughput (commits/s) since the previous
	// sample, filled in by Snapshot.
	CommitRate float64 `json:"commit_rate_per_sec"`
}

// CounterTotals aggregates the event counters across workers.
type CounterTotals struct {
	Executions           uint64 `json:"executions"`
	Commits              uint64 `json:"commits"`
	Rollbacks            uint64 `json:"rollbacks"` // user + staleness
	UserRollbacks        uint64 `json:"user_rollbacks"`
	StalenessRollbacks   uint64 `json:"staleness_rollbacks"`
	ForcedStopIterations uint64 `json:"forced_stop_iterations"`
	ForcedStopAttempts   uint64 `json:"forced_stop_attempts"`
	Steals               uint64 `json:"steals"`
	Recirculations       uint64 `json:"recirculations"`
	ChaosFaults          uint64 `json:"chaos_faults,omitempty"`
	Panics               uint64 `json:"panics,omitempty"`
	Retries              uint64 `json:"retries,omitempty"`
	StallAborts          uint64 `json:"stall_aborts,omitempty"`
	DeadlineAborts       uint64 `json:"deadline_aborts,omitempty"`
	LoadSheds            uint64 `json:"load_sheds,omitempty"`
	VersionsPruned       uint64 `json:"versions_pruned,omitempty"`
	GCPasses             uint64 `json:"gc_passes,omitempty"`
	PlanQueries          uint64 `json:"plan_queries,omitempty"`
	PlanRows             uint64 `json:"plan_rows,omitempty"`
	WALAppendCount       uint64 `json:"wal_appends,omitempty"`
	WALBytes             uint64 `json:"wal_bytes,omitempty"`
	WALFsyncs            uint64 `json:"wal_fsyncs,omitempty"`
	RecoveryReplays      uint64 `json:"recovery_replays,omitempty"`
	Checkpoints          uint64 `json:"checkpoints,omitempty"`
	CkptSectionsWritten  uint64 `json:"ckpt_sections_written,omitempty"`
	CkptSectionsReused   uint64 `json:"ckpt_sections_reused,omitempty"`
	TwoPCPrepares        uint64 `json:"twopc_prepares,omitempty"`
	TwoPCAborts          uint64 `json:"twopc_aborts,omitempty"`
}

// WorkerStats is one worker's share of the run — the paper's Figure 9
// per-worker runtime breakdown.
type WorkerStats struct {
	Worker             int    `json:"worker"`
	Executions         uint64 `json:"executions"`
	Commits            uint64 `json:"commits"`
	UserRollbacks      uint64 `json:"user_rollbacks"`
	StalenessRollbacks uint64 `json:"staleness_rollbacks"`
	Steals             uint64 `json:"steals"`
	BusyNanos          int64  `json:"busy_ns"`
}

// GaugeStats summarizes a sampled gauge.
type GaugeStats struct {
	Last    int64   `json:"last"`
	Max     int64   `json:"max"`
	Avg     float64 `json:"avg"`
	Samples int64   `json:"samples"`
}

// AttemptStats is the archived counter state of one earlier run (one
// retry attempt, under the facade's abort-retry loop) of this observer.
type AttemptStats struct {
	// Job is the label the archived run was tagged with.
	Job string `json:"job,omitempty"`
	// Counters are the run's final counter totals at the moment the next
	// BeginRun replaced it.
	Counters CounterTotals `json:"counters"`
}

// Snapshot is a self-contained export of one run's telemetry.
type Snapshot struct {
	// Job is the label of the job the telemetry belongs to (empty when the
	// run was not tagged via SetJob).
	Job         string          `json:"job,omitempty"`
	Workers     int             `json:"workers"`
	Counters    CounterTotals   `json:"counters"`
	PerWorker   []WorkerStats   `json:"per_worker"`
	QueueDepth  GaugeStats      `json:"queue_depth"`
	LiveSubs    GaugeStats      `json:"live_subs"`
	Latencies   LatencySnapshot `json:"latencies"`
	Convergence []Sample        `json:"convergence"`
	// Attempts archives the counters of every earlier run recorded through
	// this observer (BeginRun archives before resetting): under the
	// facade's retry policy, one entry per aborted attempt. Empty for
	// single-attempt runs.
	Attempts []AttemptStats `json:"attempts,omitempty"`
	// Cumulative sums the archived attempts' counters plus the live run's
	// — the cross-attempt view that retries can never silently zero.
	Cumulative CounterTotals `json:"cumulative"`
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// counterTotals aggregates the live shards' counters.
func (o *Observer) counterTotals() CounterTotals {
	var t CounterTotals
	for w := range o.shards {
		sh := &o.shards[w]
		t.Executions += sh.counts[Executions].Load()
		t.Commits += sh.counts[Commits].Load()
		t.UserRollbacks += sh.counts[UserRollbacks].Load()
		t.StalenessRollbacks += sh.counts[StalenessRollbacks].Load()
		t.Steals += sh.counts[Steals].Load()
		t.ForcedStopIterations += sh.counts[ForcedStopIters].Load()
		t.ForcedStopAttempts += sh.counts[ForcedStopAttempts].Load()
		t.Recirculations += sh.counts[Recirculations].Load()
		t.ChaosFaults += sh.counts[ChaosFaults].Load()
		t.Panics += sh.counts[Panics].Load()
		t.Retries += sh.counts[Retries].Load()
		t.StallAborts += sh.counts[StallAborts].Load()
		t.DeadlineAborts += sh.counts[DeadlineAborts].Load()
		t.LoadSheds += sh.counts[LoadSheds].Load()
		t.VersionsPruned += sh.counts[VersionsPruned].Load()
		t.GCPasses += sh.counts[GCPasses].Load()
		t.PlanQueries += sh.counts[PlanQueries].Load()
		t.PlanRows += sh.counts[PlanRows].Load()
		t.WALAppendCount += sh.counts[WALAppends].Load()
		t.WALBytes += sh.counts[WALBytes].Load()
		t.WALFsyncs += sh.counts[WALFsyncs].Load()
		t.RecoveryReplays += sh.counts[RecoveryReplays].Load()
		t.Checkpoints += sh.counts[Checkpoints].Load()
		t.CkptSectionsWritten += sh.counts[CkptSectionsWritten].Load()
		t.CkptSectionsReused += sh.counts[CkptSectionsReused].Load()
		t.TwoPCPrepares += sh.counts[TwoPCPrepares].Load()
		t.TwoPCAborts += sh.counts[TwoPCAborts].Load()
	}
	t.Rollbacks = t.UserRollbacks + t.StalenessRollbacks
	return t
}

// Add merges o into t field-by-field (Rollbacks included: both sides keep
// the user+staleness identity, so the sum does too).
func (t *CounterTotals) Add(o CounterTotals) {
	t.Executions += o.Executions
	t.Commits += o.Commits
	t.Rollbacks += o.Rollbacks
	t.UserRollbacks += o.UserRollbacks
	t.StalenessRollbacks += o.StalenessRollbacks
	t.ForcedStopIterations += o.ForcedStopIterations
	t.ForcedStopAttempts += o.ForcedStopAttempts
	t.Steals += o.Steals
	t.Recirculations += o.Recirculations
	t.ChaosFaults += o.ChaosFaults
	t.Panics += o.Panics
	t.Retries += o.Retries
	t.StallAborts += o.StallAborts
	t.DeadlineAborts += o.DeadlineAborts
	t.LoadSheds += o.LoadSheds
	t.VersionsPruned += o.VersionsPruned
	t.GCPasses += o.GCPasses
	t.PlanQueries += o.PlanQueries
	t.PlanRows += o.PlanRows
	t.WALAppendCount += o.WALAppendCount
	t.WALBytes += o.WALBytes
	t.WALFsyncs += o.WALFsyncs
	t.RecoveryReplays += o.RecoveryReplays
	t.Checkpoints += o.Checkpoints
	t.CkptSectionsWritten += o.CkptSectionsWritten
	t.CkptSectionsReused += o.CkptSectionsReused
	t.TwoPCPrepares += o.TwoPCPrepares
	t.TwoPCAborts += o.TwoPCAborts
}

// Snapshot aggregates the current telemetry. Safe to call concurrently
// with a running engine (counters are read atomically; a snapshot taken
// mid-run is a consistent-enough progress report, not a barrier).
func (o *Observer) Snapshot() Snapshot {
	snap := Snapshot{Workers: o.workers}
	for w := range o.shards {
		sh := &o.shards[w]
		ws := WorkerStats{
			Worker:             w,
			Executions:         sh.counts[Executions].Load(),
			Commits:            sh.counts[Commits].Load(),
			UserRollbacks:      sh.counts[UserRollbacks].Load(),
			StalenessRollbacks: sh.counts[StalenessRollbacks].Load(),
			Steals:             sh.counts[Steals].Load(),
			BusyNanos:          sh.busy.Load(),
		}
		snap.PerWorker = append(snap.PerWorker, ws)
	}
	snap.Counters = o.counterTotals()
	snap.QueueDepth = o.queueDepth.snapshot()
	snap.LiveSubs = o.liveSubs.snapshot()
	snap.Latencies = o.latencySnapshot()

	o.mu.Lock()
	snap.Job = o.job
	snap.Convergence = append([]Sample(nil), o.series...)
	snap.Attempts = append([]AttemptStats(nil), o.attempts...)
	o.mu.Unlock()
	snap.Cumulative = snap.Counters
	for _, a := range snap.Attempts {
		snap.Cumulative.Add(a.Counters)
	}
	for i := 1; i < len(snap.Convergence); i++ {
		cur, prev := &snap.Convergence[i], snap.Convergence[i-1]
		if dt := cur.ElapsedMicros - prev.ElapsedMicros; dt > 0 {
			cur.CommitRate = float64(cur.Commits-prev.Commits) / (float64(dt) / 1e6)
		}
	}
	return snap
}

package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// oracleQuantile returns the exact p-quantile of vals under the same rank
// definition the histogram uses (rank = ceil(p*n), 1-based).
func oracleQuantile(vals []int64, p float64) int64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramQuantileVsOracle: for random value sets — including values
// planted exactly on power-of-two bucket boundaries — the histogram's
// quantile must land in the same log bucket as the exact sorted-slice
// oracle, regardless of how the samples were sharded across workers.
func TestHistogramQuantileVsOracle(t *testing.T) {
	quantiles := []float64{0.5, 0.9, 0.95, 0.99, 1.0}
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + rng.Intn(8)
		n := 1 + rng.Intn(4000)
		o := New()
		o.BeginRun(workers)
		vals := make([]int64, 0, n)
		for i := 0; i < n; i++ {
			var v int64
			switch rng.Intn(4) {
			case 0: // exact bucket boundary: 2^k
				v = int64(1) << uint(rng.Intn(40))
			case 1: // one below a boundary: 2^k - 1
				v = int64(1)<<uint(1+rng.Intn(40)) - 1
			case 2: // uniform small
				v = rng.Int63n(1 << 12)
			default: // log-uniform large
				v = rng.Int63n(int64(1) << uint(10+rng.Intn(30)))
			}
			vals = append(vals, v)
			o.RecordLatency(rng.Intn(workers), AttemptLatency, v)
		}
		h := o.Snapshot().Latencies.Attempt
		if h.Count != uint64(n) {
			t.Fatalf("seed %d: count = %d, want %d", seed, h.Count, n)
		}
		var sum int64
		for _, v := range vals {
			sum += v
		}
		if h.SumNanos != sum {
			t.Fatalf("seed %d: sum = %d, want %d", seed, h.SumNanos, sum)
		}
		for _, p := range quantiles {
			got := h.Quantile(p)
			want := oracleQuantile(vals, p)
			if bucketOf(got) != bucketOf(want) {
				t.Fatalf("seed %d: q%.2f = %d (bucket %d), oracle %d (bucket %d)",
					seed, p, got, bucketOf(got), want, bucketOf(want))
			}
		}
		// The precomputed quantile fields must agree with Quantile().
		if h.P50Nanos != h.Quantile(0.50) || h.P95Nanos != h.Quantile(0.95) || h.P99Nanos != h.Quantile(0.99) {
			t.Fatalf("seed %d: precomputed quantiles disagree with Quantile()", seed)
		}
	}
}

// TestHistogramMergeEqualsUnion: merging two independently sharded
// histograms must equal the histogram of the union of their samples —
// bucket counts add exactly, and quantiles land in the oracle's bucket.
func TestHistogramMergeEqualsUnion(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		record := func(n int) (*Observer, []int64) {
			o := New()
			o.BeginRun(4)
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = rng.Int63n(int64(1) << uint(4+rng.Intn(32)))
				o.RecordLatency(i%4, BatchPassLatency, vals[i])
			}
			return o, vals
		}
		oa, va := record(1 + rng.Intn(500))
		ob, vb := record(1 + rng.Intn(500))
		ha := oa.Snapshot().Latencies.BatchPass
		hb := ob.Snapshot().Latencies.BatchPass
		merged := ha.Merge(hb)
		union := append(append([]int64(nil), va...), vb...)

		if merged.Count != uint64(len(union)) {
			t.Fatalf("seed %d: merged count = %d, want %d", seed, merged.Count, len(union))
		}
		var sum int64
		for _, v := range union {
			sum += v
		}
		if merged.SumNanos != sum {
			t.Fatalf("seed %d: merged sum = %d, want %d", seed, merged.SumNanos, sum)
		}
		wantMax := ha.MaxNanos
		if hb.MaxNanos > wantMax {
			wantMax = hb.MaxNanos
		}
		if merged.MaxNanos != wantMax {
			t.Fatalf("seed %d: merged max = %d, want %d", seed, merged.MaxNanos, wantMax)
		}
		for _, p := range []float64{0.5, 0.95, 0.99} {
			got := merged.Quantile(p)
			want := oracleQuantile(union, p)
			if bucketOf(got) != bucketOf(want) {
				t.Fatalf("seed %d: merged q%.2f = %d (bucket %d), oracle %d (bucket %d)",
					seed, p, got, bucketOf(got), want, bucketOf(want))
			}
		}
		// Per-bucket counts must add exactly.
		da, db, dm := ha.dense(), hb.dense(), merged.dense()
		for i := range dm {
			if dm[i] != da[i]+db[i] {
				t.Fatalf("seed %d: bucket %d: %d != %d + %d", seed, i, dm[i], da[i], db[i])
			}
		}
	}
}

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {math.MaxInt64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Fatalf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// The sparse snapshot form must round-trip through dense().
	o := New()
	o.BeginRun(1)
	for _, c := range cases {
		o.RecordLatency(0, QueueWaitLatency, c.v)
	}
	h := o.Snapshot().Latencies.QueueWait
	if h.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count, len(cases))
	}
	var total uint64
	for _, b := range h.Buckets {
		total += b.Count
	}
	if total != h.Count {
		t.Fatalf("sparse buckets sum to %d, want %d", total, h.Count)
	}
	if rt := h.dense(); histFromDense(rt).Count != h.Count {
		t.Fatal("dense() round trip lost samples")
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	o := New()
	o.BeginRun(4)
	var wg sync.WaitGroup
	const perWorker = 5000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				o.RecordLatency(w, AttemptLatency, int64(i%4096))
			}
		}(w)
	}
	// Concurrent snapshots must be safe (and never exceed the final count).
	for i := 0; i < 20; i++ {
		if c := o.Snapshot().Latencies.Attempt.Count; c > 4*perWorker {
			t.Fatalf("snapshot count %d exceeds recorded %d", c, 4*perWorker)
		}
	}
	wg.Wait()
	if c := o.Snapshot().Latencies.Attempt.Count; c != 4*perWorker {
		t.Fatalf("final count = %d, want %d", c, 4*perWorker)
	}
}

func TestRecordLatencyDoesNotAllocate(t *testing.T) {
	o := New()
	o.BeginRun(2)
	if allocs := testing.AllocsPerRun(200, func() {
		o.RecordLatency(1, AttemptLatency, 12345)
	}); allocs != 0 {
		t.Fatalf("RecordLatency allocates: %v allocs/op", allocs)
	}
}

// TestAttemptsAccumulateAcrossBeginRun is the observer half of the retry
// accounting fix: a second BeginRun must archive the first run's counters
// into Attempts instead of silently zeroing them, and Cumulative must sum
// both.
func TestAttemptsAccumulateAcrossBeginRun(t *testing.T) {
	o := New()
	o.BeginRun(2)
	o.SetJob("attempt-1")
	o.Inc(0, Commits)
	o.Inc(1, Commits)
	o.Inc(0, UserRollbacks)
	o.Inc(0, Panics)

	o.BeginRun(2) // retry: resets live counters, archives attempt 1
	o.SetJob("attempt-2")
	o.Inc(0, Commits)
	o.Inc(0, Retries)

	snap := o.Snapshot()
	if snap.Counters.Commits != 1 || snap.Counters.Panics != 0 {
		t.Fatalf("live counters = %+v, want the second attempt only", snap.Counters)
	}
	if len(snap.Attempts) != 1 {
		t.Fatalf("attempts archived = %d, want 1", len(snap.Attempts))
	}
	a := snap.Attempts[0]
	if a.Job != "attempt-1" || a.Counters.Commits != 2 || a.Counters.UserRollbacks != 1 || a.Counters.Panics != 1 {
		t.Fatalf("archived attempt = %+v, want attempt-1's counters", a)
	}
	if snap.Cumulative.Commits != 3 || snap.Cumulative.Panics != 1 ||
		snap.Cumulative.Retries != 1 || snap.Cumulative.Rollbacks != 1 {
		t.Fatalf("cumulative = %+v, want cross-attempt sums", snap.Cumulative)
	}
	// A fresh observer's first BeginRun must NOT archive a phantom attempt.
	if fresh := New(); func() int { fresh.BeginRun(1); return len(fresh.Snapshot().Attempts) }() != 0 {
		t.Fatal("first BeginRun archived a phantom attempt")
	}
}

package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterShardingAndAggregation(t *testing.T) {
	o := New()
	o.BeginRun(4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				o.Inc(w, Executions)
			}
			o.Inc(w, Commits)
			o.AddBusy(w, int64(w)*100)
		}(w)
	}
	wg.Wait()
	snap := o.Snapshot()
	if snap.Counters.Executions != 4000 || snap.Counters.Commits != 4 {
		t.Fatalf("totals = %+v", snap.Counters)
	}
	for w, ws := range snap.PerWorker {
		if ws.Executions != 1000 {
			t.Fatalf("worker %d executions = %d, want 1000", w, ws.Executions)
		}
		if ws.BusyNanos != int64(w)*100 {
			t.Fatalf("worker %d busy = %d", w, ws.BusyNanos)
		}
	}
}

func TestWorkerIndexClamped(t *testing.T) {
	o := New()
	o.BeginRun(2)
	o.Inc(-1, Commits)
	o.Inc(99, Commits)
	snap := o.Snapshot()
	if snap.PerWorker[0].Commits != 2 {
		t.Fatalf("out-of-range workers not clamped to shard 0: %+v", snap.PerWorker)
	}
}

func TestBeginRunResets(t *testing.T) {
	o := New()
	o.BeginRun(2)
	o.Inc(0, Commits)
	o.ObserveQueueDepth(7)
	o.RecordSample(5, 1, 0)
	o.BeginRun(3)
	snap := o.Snapshot()
	if snap.Workers != 3 || snap.Counters.Commits != 0 ||
		snap.QueueDepth.Samples != 0 || len(snap.Convergence) != 0 {
		t.Fatalf("state survived BeginRun: %+v", snap)
	}
}

func TestGaugeStats(t *testing.T) {
	o := New()
	o.BeginRun(1)
	for _, v := range []int{3, 9, 6} {
		o.ObserveQueueDepth(v)
	}
	g := o.Snapshot().QueueDepth
	if g.Last != 6 || g.Max != 9 || g.Avg != 6 || g.Samples != 3 {
		t.Fatalf("gauge = %+v", g)
	}
}

func TestSeriesDecimationKeepsBoundedCoarserTrace(t *testing.T) {
	o := New()
	o.BeginRun(1)
	n := maxSeriesLen*2 + 100
	for i := 0; i < n; i++ {
		o.RecordSample(int64(n-i), uint64(i), 0)
	}
	series := o.Snapshot().Convergence
	if len(series) > maxSeriesLen {
		t.Fatalf("series length %d exceeds cap %d", len(series), maxSeriesLen)
	}
	for i := 1; i < len(series); i++ {
		if series[i].Commits <= series[i-1].Commits {
			t.Fatalf("decimation broke sample order at %d", i)
		}
	}
	if last := series[len(series)-1]; last.Live != 1 {
		t.Fatalf("newest sample lost by decimation: %+v", last)
	}
}

func TestSnapshotCommitRate(t *testing.T) {
	o := New()
	o.BeginRun(1)
	o.RecordSample(10, 0, 0)
	time.Sleep(2 * time.Millisecond) // a measurable elapsed-time delta
	o.RecordSample(0, 500, 0)
	series := o.Snapshot().Convergence
	if series[0].CommitRate != 0 {
		t.Fatalf("first sample has a commit rate: %+v", series[0])
	}
	if series[1].CommitRate <= 0 {
		t.Fatalf("commit rate not derived: %+v", series[1])
	}
}

func TestCounterString(t *testing.T) {
	if Executions.String() != "executions" || StalenessRollbacks.String() != "staleness_rollbacks" {
		t.Fatal("counter names wrong")
	}
	if Counter(numCounters).String() != "counter(?)" {
		t.Fatal("out-of-range counter name")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	o := New()
	o.BeginRun(2)
	o.Inc(1, StalenessRollbacks)
	o.RecordSample(1, 0, 1)
	js, err := o.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters.StalenessRollbacks != 1 || back.Counters.Rollbacks != 1 {
		t.Fatalf("round trip lost counters: %+v", back.Counters)
	}
}

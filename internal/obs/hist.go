package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Latency identifies one of the engine's log-bucketed latency histograms.
type Latency int

const (
	// AttemptLatency is the duration of one finalized sub-transaction
	// attempt: Execute + Validate (+ Finalize under the queued schedulers).
	AttemptLatency Latency = iota
	// BatchPassLatency is the duration of one batch scheduling pass on one
	// worker.
	BatchPassLatency
	// QueueWaitLatency is a batch's residence time in its region queue,
	// from push to pop.
	QueueWaitLatency
	// BarrierWaitLatency is a synchronous round's barrier arrival skew:
	// the time from the first batch's arrival to the last's — how long the
	// fast batches waited for the stragglers.
	BarrierWaitLatency
	// JobCommitLatency is the end-to-end latency of one ML job: submission
	// through convergence and the uber-transaction's atomic publish.
	JobCommitLatency
	// GCPauseLatency is the duration of one version-GC reclaimer pass over
	// all tables. The reclaimer never stalls workers, so this measures
	// background cost, not a stop-the-world pause.
	GCPauseLatency
	// QueryLatency is the end-to-end latency of one relational plan
	// execution (internal/plan): Execute through cursor exhaustion/close.
	QueryLatency
	// WALAppendLatency is the duration of one WAL append as the committer
	// observes it: enqueue through group-commit acknowledgement (fsync
	// included under the sync-always policy).
	WALAppendLatency
	// CheckpointPauseLatency is the worker-visible pause of one fuzzy
	// checkpoint pass: the time commit locks are held to pin a consistent
	// cut. The scan and file write happen after release, off-worker.
	CheckpointPauseLatency
	// WALFsyncLatency is the duration of one WAL fsync call, as issued by
	// the group-commit batcher (SyncAlways: per batch; Interval: per tick).
	WALFsyncLatency
	// WALBatchRecords is the group-commit batch-size distribution. The
	// recorded unit is records per flushed batch, not nanoseconds — use the
	// raw-unit export path, never the seconds conversion.
	WALBatchRecords
	// CheckpointDuration is the end-to-end duration of one fuzzy checkpoint
	// pass: cut pin through durable rename and WAL truncation — the
	// off-worker cost CheckpointPauseLatency deliberately excludes.
	CheckpointDuration
	// TwoPCPrepareLatency is the duration of one shard's prepare call in a
	// distributed uber-commit.
	TwoPCPrepareLatency
	// TwoPCCommitWindowLatency is the distributed commit window of one
	// uber-transaction: first prepare through last per-shard commit — the
	// span during which a crash needs coordinated recovery.
	TwoPCCommitWindowLatency

	numLatencies
)

var latencyNames = [numLatencies]string{
	"attempt",
	"batch_pass",
	"queue_wait",
	"barrier_wait",
	"job_commit",
	"gc_pause",
	"query",
	"wal_append",
	"checkpoint_pause",
	"wal_fsync",
	"wal_batch_records",
	"checkpoint_duration",
	"twopc_prepare",
	"twopc_commit_window",
}

func (l Latency) String() string {
	if l >= 0 && l < numLatencies {
		return latencyNames[l]
	}
	return "latency(?)"
}

// histBuckets is the bucket count of each histogram: power-of-two
// nanosecond buckets indexed by bits.Len64(v), so bucket k holds values in
// [2^(k-1), 2^k). Bucket 48 tops out above 78 hours — far beyond any job.
const histBuckets = 48

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(nanos int64) int {
	if nanos < 0 {
		nanos = 0
	}
	b := bits.Len64(uint64(nanos))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// BucketUpperNanos returns the inclusive upper bound of bucket i
// (2^i - 1 ns); the last bucket is unbounded (MaxInt64).
func BucketUpperNanos(i int) int64 {
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// histShard is one worker's share of every latency histogram: atomic
// bucket counters plus running sums, written only by that worker's
// recordings so concurrent workers never contend.
type histShard struct {
	buckets [numLatencies][histBuckets]atomic.Uint64
	sum     [numLatencies]atomic.Int64
	max     [numLatencies]atomic.Int64
}

func (h *histShard) record(l Latency, nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	h.buckets[l][bucketOf(nanos)].Add(1)
	h.sum[l].Add(nanos)
	for {
		m := h.max[l].Load()
		if nanos <= m || h.max[l].CompareAndSwap(m, nanos) {
			break
		}
	}
}

// BucketCount is one non-empty histogram bucket in a snapshot:
// Count values fell in (previous bucket's upper bound, UpperNanos].
type BucketCount struct {
	UpperNanos int64  `json:"le_ns"`
	Count      uint64 `json:"count"`
}

// HistogramStats is the merged, exportable state of one latency histogram:
// quantiles plus the sparse bucket counts they were computed from, so
// snapshots from different workers, attempts, or jobs merge losslessly
// (bucket counts add) and quantiles can be recomputed after any merge.
type HistogramStats struct {
	Count    uint64 `json:"count"`
	SumNanos int64  `json:"sum_ns"`
	MaxNanos int64  `json:"max_ns"`
	P50Nanos int64  `json:"p50_ns"`
	P95Nanos int64  `json:"p95_ns"`
	P99Nanos int64  `json:"p99_ns"`
	// Buckets lists the non-empty buckets in ascending bound order.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// dense rebuilds the full bucket array from the sparse snapshot form.
func (h HistogramStats) dense() (out [histBuckets]uint64) {
	for _, b := range h.Buckets {
		out[bucketOf(b.UpperNanos)] += b.Count
	}
	return out
}

// Merge returns the histogram combining h's and o's samples; quantiles are
// recomputed from the summed buckets.
func (h HistogramStats) Merge(o HistogramStats) HistogramStats {
	a, b := h.dense(), o.dense()
	for i := range a {
		a[i] += b[i]
	}
	m := histFromDense(a)
	m.SumNanos = h.SumNanos + o.SumNanos
	if o.MaxNanos > h.MaxNanos {
		m.MaxNanos = o.MaxNanos
	} else {
		m.MaxNanos = h.MaxNanos
	}
	return m
}

// Quantile returns the p-quantile (0 < p <= 1) estimated from the bucket
// counts: the value returned lies inside the bucket containing the p-rank
// sample, linearly interpolated within it. 0 when the histogram is empty.
func (h HistogramStats) Quantile(p float64) int64 {
	return quantileFromDense(h.dense(), h.Count, p)
}

// Mean returns the average recorded value in nanoseconds.
func (h HistogramStats) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumNanos) / float64(h.Count)
}

func quantileFromDense(buckets [histBuckets]uint64, count uint64, p float64) int64 {
	if count == 0 || p <= 0 {
		return 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			// Interpolate within bucket i: values span [lo, hi].
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << uint(i-1)
			}
			hi := BucketUpperNanos(i)
			if i == histBuckets-1 {
				hi = lo * 2 // unbounded tail: keep the estimate finite
			}
			frac := float64(rank-cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	return BucketUpperNanos(histBuckets - 1)
}

func histFromDense(buckets [histBuckets]uint64) HistogramStats {
	var h HistogramStats
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		h.Count += c
		h.Buckets = append(h.Buckets, BucketCount{UpperNanos: BucketUpperNanos(i), Count: c})
	}
	h.P50Nanos = quantileFromDense(buckets, h.Count, 0.50)
	h.P95Nanos = quantileFromDense(buckets, h.Count, 0.95)
	h.P99Nanos = quantileFromDense(buckets, h.Count, 0.99)
	return h
}

// LatencySnapshot carries every latency histogram of one Snapshot.
type LatencySnapshot struct {
	Attempt     HistogramStats `json:"attempt"`
	BatchPass   HistogramStats `json:"batch_pass"`
	QueueWait   HistogramStats `json:"queue_wait"`
	BarrierWait HistogramStats `json:"barrier_wait"`
	JobCommit   HistogramStats `json:"job_commit"`
	GCPause     HistogramStats `json:"gc_pause"`
	Query       HistogramStats `json:"query"`
	WALAppend   HistogramStats `json:"wal_append"`
	CkptPause   HistogramStats `json:"checkpoint_pause"`
	WALFsync    HistogramStats `json:"wal_fsync"`
	// WALBatch is a size distribution (records per flushed group-commit
	// batch), recorded through the same log₂ buckets as the latencies.
	WALBatch     HistogramStats `json:"wal_batch_records"`
	CkptDuration HistogramStats `json:"checkpoint_duration"`
	Prepare      HistogramStats `json:"twopc_prepare"`
	CommitWindow HistogramStats `json:"twopc_commit_window"`
}

// ByName returns the named histogram (see Latency.String), ok=false for an
// unknown name.
func (ls LatencySnapshot) ByName(name string) (HistogramStats, bool) {
	switch name {
	case "attempt":
		return ls.Attempt, true
	case "batch_pass":
		return ls.BatchPass, true
	case "queue_wait":
		return ls.QueueWait, true
	case "barrier_wait":
		return ls.BarrierWait, true
	case "job_commit":
		return ls.JobCommit, true
	case "gc_pause":
		return ls.GCPause, true
	case "query":
		return ls.Query, true
	case "wal_append":
		return ls.WALAppend, true
	case "checkpoint_pause":
		return ls.CkptPause, true
	case "wal_fsync":
		return ls.WALFsync, true
	case "wal_batch_records":
		return ls.WALBatch, true
	case "checkpoint_duration":
		return ls.CkptDuration, true
	case "twopc_prepare":
		return ls.Prepare, true
	case "twopc_commit_window":
		return ls.CommitWindow, true
	}
	return HistogramStats{}, false
}

// Merge combines two latency snapshots histogram-by-histogram.
func (ls LatencySnapshot) Merge(o LatencySnapshot) LatencySnapshot {
	return LatencySnapshot{
		Attempt:      ls.Attempt.Merge(o.Attempt),
		BatchPass:    ls.BatchPass.Merge(o.BatchPass),
		QueueWait:    ls.QueueWait.Merge(o.QueueWait),
		BarrierWait:  ls.BarrierWait.Merge(o.BarrierWait),
		JobCommit:    ls.JobCommit.Merge(o.JobCommit),
		GCPause:      ls.GCPause.Merge(o.GCPause),
		Query:        ls.Query.Merge(o.Query),
		WALAppend:    ls.WALAppend.Merge(o.WALAppend),
		CkptPause:    ls.CkptPause.Merge(o.CkptPause),
		WALFsync:     ls.WALFsync.Merge(o.WALFsync),
		WALBatch:     ls.WALBatch.Merge(o.WALBatch),
		CkptDuration: ls.CkptDuration.Merge(o.CkptDuration),
		Prepare:      ls.Prepare.Merge(o.Prepare),
		CommitWindow: ls.CommitWindow.Merge(o.CommitWindow),
	}
}

// RecordLatency records one duration sample (in nanoseconds) into worker's
// shard of histogram l. The caller guards with a nil check, like Inc.
func (o *Observer) RecordLatency(worker int, l Latency, nanos int64) {
	if worker < 0 || worker >= len(o.hshards) {
		worker = 0
	}
	o.hshards[worker].record(l, nanos)
}

// latencySnapshot merges the per-worker histogram shards.
func (o *Observer) latencySnapshot() LatencySnapshot {
	var merged [numLatencies][histBuckets]uint64
	var sums, maxs [numLatencies]int64
	for w := range o.hshards {
		sh := &o.hshards[w]
		for l := 0; l < int(numLatencies); l++ {
			for b := 0; b < histBuckets; b++ {
				merged[l][b] += sh.buckets[l][b].Load()
			}
			sums[l] += sh.sum[l].Load()
			if m := sh.max[l].Load(); m > maxs[l] {
				maxs[l] = m
			}
		}
	}
	build := func(l Latency) HistogramStats {
		h := histFromDense(merged[l])
		h.SumNanos = sums[l]
		h.MaxNanos = maxs[l]
		return h
	}
	return LatencySnapshot{
		Attempt:      build(AttemptLatency),
		BatchPass:    build(BatchPassLatency),
		QueueWait:    build(QueueWaitLatency),
		BarrierWait:  build(BarrierWaitLatency),
		JobCommit:    build(JobCommitLatency),
		GCPause:      build(GCPauseLatency),
		Query:        build(QueryLatency),
		WALAppend:    build(WALAppendLatency),
		CkptPause:    build(CheckpointPauseLatency),
		WALFsync:     build(WALFsyncLatency),
		WALBatch:     build(WALBatchRecords),
		CkptDuration: build(CheckpointDuration),
		Prepare:      build(TwoPCPrepareLatency),
		CommitWindow: build(TwoPCCommitWindowLatency),
	}
}

package plan

import (
	"fmt"
	"strings"
	"time"
)

// ExplainNode is one operator of an EXPLAIN plan tree. Two flavors share
// the type: Prepared.Explain renders the planner's decisions (estimates,
// pushdown, pre-sizing) without executing — EXPLAIN — while Cursor.Explain
// adds the measured per-operator row counts and open-to-close elapsed time
// of one execution — EXPLAIN ANALYZE (Analyzed = true).
type ExplainNode struct {
	// Op names the operator, matching the physical tree's names exactly:
	// "scan(T)" (with "+pushdown" when a storage-level hint was compiled),
	// "filter(residual)", "filter", "project", "join"/"left-join",
	// "aggregate", "sort", "limit", "static", "iterate(T)".
	Op string `json:"op"`
	// Est and EstExact are the planner's output-cardinality upper bound and
	// whether it is provably exact (only exact estimates pre-size hash
	// builds). Planner-side explains only.
	Est      int  `json:"est,omitempty"`
	EstExact bool `json:"est_exact,omitempty"`
	// Presize is the hash-build pre-sizing hint applied to this operator
	// (join/aggregate), 0 when the build grows incrementally.
	Presize int `json:"presize,omitempty"`
	// Analyzed marks an EXPLAIN ANALYZE node: RowsIn/RowsOut/TimeNanos are
	// measured from a real execution rather than estimated.
	Analyzed bool `json:"analyzed,omitempty"`
	// RowsIn is the total tuples pulled from the children; RowsOut the
	// tuples emitted.
	RowsIn  uint64 `json:"rows_in"`
	RowsOut uint64 `json:"rows_out"`
	// TimeNanos is the operator's open-to-close elapsed time, inclusive of
	// its children (the usual EXPLAIN ANALYZE convention).
	TimeNanos int64 `json:"time_ns,omitempty"`

	Kids []*ExplainNode `json:"kids,omitempty"`
}

// Explain prepares root against env — the same validation and rewrite
// pipeline Execute would run — and returns the rewritten tree annotated
// with the planner's pushdown and pre-sizing decisions, without executing
// anything.
func Explain(root *Node, env Env) (*ExplainNode, error) {
	prep, err := Prepare(root, env)
	if err != nil {
		return nil, err
	}
	return prep.Explain(), nil
}

// Explain returns the prepared plan's operator tree with the planner's
// annotations (EXPLAIN: estimates, pushdown, pre-sizing — no execution).
func (p *Prepared) Explain() *ExplainNode { return p.explainNode(p.root) }

func (p *Prepared) explainNode(n *Node) *ExplainNode {
	kids := make([]*ExplainNode, 0, len(n.children))
	for _, c := range n.children {
		kids = append(kids, p.explainNode(c))
	}
	e := &ExplainNode{Est: n.est, EstExact: n.estExact, Kids: kids}
	switch n.kind {
	case kScan:
		e.Op = "scan(" + n.tbl.Name() + ")"
		if n.hinted {
			e.Op += "+pushdown"
		}
		if len(n.residual) > 0 {
			// Mirror build(): residual conjuncts run as a filter just above
			// the storage layer.
			e = &ExplainNode{Op: "filter(residual)", Est: n.est, Kids: []*ExplainNode{e}}
		}
	case kStatic:
		e.Op = "static"
	case kFilter:
		e.Op = "filter"
	case kProject:
		e.Op = "project"
	case kJoin:
		e.Op = "join"
		if n.outer {
			e.Op = "left-join"
		}
		if !p.env.NoPresize {
			e.Presize = presizeOf(n.children[1])
		}
	case kAgg:
		e.Op = "aggregate"
		if !p.env.NoPresize {
			e.Presize = presizeOf(n.children[0])
		}
	case kSort:
		e.Op = "sort"
	case kLimit:
		e.Op = "limit"
	case kIterate:
		e.Op = "iterate(" + n.iter.Table.Name() + ")"
	}
	return e
}

// Explain returns the execution's operator tree with measured row counts
// and per-operator elapsed time (EXPLAIN ANALYZE). Row counts and times are
// final once the stream is drained or the cursor closed; calling earlier
// reports the progress so far.
func (c *Cursor) Explain() *ExplainNode {
	if c.root == nil {
		return nil
	}
	return explainOp(c.root)
}

func explainOp(o *opNode) *ExplainNode {
	e := &ExplainNode{
		Op: o.name, Analyzed: true,
		RowsOut:   o.rowsOut,
		TimeNanos: int64(o.elapsed),
		Presize:   o.hints.BuildRows,
	}
	for _, k := range o.kids {
		e.RowsIn += k.rowsOut
		e.Kids = append(e.Kids, explainOp(k))
	}
	return e
}

// Render formats the tree as an indented multi-line string, one operator
// per line, children indented under their parent:
//
//	aggregate (rows=1 in=500 time=1.2ms presize=1000)
//	  scan(Node)+pushdown (rows=500 in=0 time=1.1ms)
func (n *ExplainNode) Render() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *ExplainNode) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Op)
	if n.Analyzed {
		fmt.Fprintf(b, " (rows=%d in=%d time=%s", n.RowsOut, n.RowsIn, time.Duration(n.TimeNanos).Round(time.Microsecond))
		if n.Presize > 0 {
			fmt.Fprintf(b, " presize=%d", n.Presize)
		}
	} else {
		fmt.Fprintf(b, " (est=%d", n.Est)
		if n.EstExact {
			b.WriteString(" exact")
		}
		if n.Presize > 0 {
			fmt.Fprintf(b, " presize=%d", n.Presize)
		}
	}
	b.WriteString(")\n")
	for _, k := range n.Kids {
		k.render(b, depth+1)
	}
}

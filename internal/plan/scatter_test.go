package plan_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"db4ml/internal/exec"
	"db4ml/internal/partition"
	"db4ml/internal/plan"
	"db4ml/internal/relational"
	"db4ml/internal/shard"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

var factSchema = table.MustSchema(
	table.Column{Name: "ID", Type: table.Int64},
	table.Column{Name: "K", Type: table.Int64},
	table.Column{Name: "V", Type: table.Float64},
)

// factRows builds the (ID, K, V) fact rows: ID = i, K = i % groups, V = i.
func factRows(n, groups int) []storage.Payload {
	rows := make([]storage.Payload, n)
	for i := 0; i < n; i++ {
		rows[i] = storage.Payload{uint64(int64(i)), uint64(int64(i % groups)), math.Float64bits(float64(i))}
	}
	return rows
}

// shardedFact loads the fact rows into a round-robin sharded table.
func shardedFact(t *testing.T, shards, n, groups int) (*shard.Cluster, *shard.Table) {
	t.Helper()
	cluster, err := shard.NewCluster(shards, exec.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	router := shard.NewRouter(partition.RoundRobin, shards, uint64(n))
	st := shard.NewTable("fact", factSchema, router)
	if _, err := st.Load(cluster, factRows(n, groups)); err != nil {
		cluster.Close()
		t.Fatal(err)
	}
	return cluster, st
}

// singleFact loads the same fact rows into one kernel for the baseline.
func singleFact(t *testing.T, n, groups int) (*txn.Manager, *table.Table) {
	t.Helper()
	m := txn.NewManager()
	tbl := table.New("fact", factSchema)
	m.PublishAt(func(ts storage.Timestamp) {
		for _, p := range factRows(n, groups) {
			if _, err := tbl.Append(ts, p); err != nil {
				t.Fatal(err)
			}
		}
	})
	return m, tbl
}

func shardEnvs(cluster *shard.Cluster) []plan.Env {
	envs := make([]plan.Env, cluster.Shards())
	for i := range envs {
		envs[i] = plan.Env{Mgr: cluster.Kernel(i).Mgr()}
	}
	return envs
}

func rebindTo(st *shard.Table) func(*table.Table, int) *table.Table {
	return func(tbl *table.Table, s int) *table.Table {
		if tbl == st.View() {
			return st.Local(s)
		}
		return nil
	}
}

func sameRel(t *testing.T, got, want *relational.Relation, label string) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: cols %v vs %v", label, got.Cols, want.Cols)
	}
	for i := range got.Cols {
		if got.Cols[i] != want.Cols[i] {
			t.Fatalf("%s: cols %v vs %v", label, got.Cols, want.Cols)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows vs %d rows", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("%s: row %d col %d: %d vs %d", label, i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// TestScatterGatherMatchesSingleKernel runs a filter→aggregate→sort plan
// over 1-, 2-, and 3-shard clusters and over one kernel holding the same
// rows; every sharded result must be word-identical to the single-kernel
// one. The filter runs scattered (pushed into each shard's local scan),
// the aggregate and sort run in the gather stage over the concatenated
// fragments.
func TestScatterGatherMatchesSingleKernel(t *testing.T) {
	const n, groups = 40, 4
	build := func(tbl *table.Table) *plan.Node {
		return plan.SortBy(
			plan.Aggregate(
				plan.Filter(plan.Scan(tbl), plan.IntCmp("K", plan.Ne, 0)),
				relational.Sum, "K", "S", plan.Col("V")),
			"K", false)
	}

	m, single := singleFact(t, n, groups)
	prep, err := plan.Prepare(build(single), plan.Env{Mgr: m})
	if err != nil {
		t.Fatal(err)
	}
	want, err := prep.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != groups-1 {
		t.Fatalf("baseline produced %d groups, want %d", len(want.Rows), groups-1)
	}

	for _, shards := range []int{1, 2, 3} {
		cluster, st := shardedFact(t, shards, n, groups)
		got, err := plan.ScatterGather(context.Background(), build(st.View()), shardEnvs(cluster), rebindTo(st))
		cluster.Close()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		sameRel(t, got, want, "shards="+string(rune('0'+shards)))
	}
}

// TestScatterGatherGlobalTopK pins the reason sort and limit must gather:
// the top 5 rows by V across a 3-shard cluster are NOT the top rows of any
// one shard. A scatter that applied the limit per shard would return 15
// candidates or the wrong 5; the gather stage must produce the global
// answer.
func TestScatterGatherGlobalTopK(t *testing.T) {
	const n = 30
	cluster, st := shardedFact(t, 3, n, 3)
	defer cluster.Close()

	p := plan.Limit(plan.SortBy(plan.Scan(st.View()), "V", true), 5)
	got, err := plan.ScatterGather(context.Background(), p, shardEnvs(cluster), rebindTo(st))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 5 {
		t.Fatalf("top-5 returned %d rows", len(got.Rows))
	}
	vi := -1
	for i, c := range got.Cols {
		if c == "V" {
			vi = i
		}
	}
	for i, row := range got.Rows {
		if wantV := float64(n - 1 - i); math.Float64frombits(row[vi]) != wantV {
			t.Fatalf("global top-5 rank %d has V=%g, want %g",
				i, math.Float64frombits(row[vi]), wantV)
		}
	}
}

// TestScatterGatherPerShardSnapshots proves each fragment pins its
// snapshot in its OWN shard's manager: rows published through shard 1's
// manager after the initial load advance only shard 1's stable watermark,
// so they are visible iff shard 1's fragment reads at shard 1's stable —
// a fragment mistakenly run at shard 0's (older) stable would miss them.
func TestScatterGatherPerShardSnapshots(t *testing.T) {
	const n = 12
	cluster, st := shardedFact(t, 2, n, 3)
	defer cluster.Close()

	cluster.Kernel(1).Mgr().PublishAt(func(ts storage.Timestamp) {
		if _, err := st.Local(1).Append(ts, storage.Payload{uint64(n), 0, math.Float64bits(float64(n))}); err != nil {
			t.Fatal(err)
		}
	})

	got, err := plan.ScatterGather(context.Background(), plan.Scan(st.View()),
		shardEnvs(cluster), rebindTo(st))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != n+1 {
		t.Fatalf("scatter scan saw %d rows, want %d (shard 1's post-load append must be visible at shard 1's own stable)",
			len(got.Rows), n+1)
	}
}

// TestScatterGatherRejections pins the error surface: joins, iterate
// bodies, and RowRange predicates cannot scatter, and each refusal must
// name its reason.
func TestScatterGatherRejections(t *testing.T) {
	cluster, st := shardedFact(t, 2, 8, 2)
	defer cluster.Close()
	envs := shardEnvs(cluster)
	ctx := context.Background()

	cases := []struct {
		name string
		p    *plan.Node
		want string
	}{
		{"join", plan.Join(plan.Scan(st.View()), plan.Scan(st.View()), "K", "K"), "join"},
		{"rowrange", plan.Filter(plan.Scan(st.View()), plan.RowRange(0, 4)), "shard-local"},
		{"static", plan.Static(&relational.Relation{Cols: []string{"X"}}), "static"},
	}
	for _, tc := range cases {
		_, err := plan.ScatterGather(ctx, tc.p, envs, rebindTo(st))
		if err == nil {
			t.Fatalf("%s: scatter accepted an unscatterable plan", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}

	// A scan of a table the rebind map does not know is a sharding error,
	// not a silent full-table read on one shard.
	other := table.New("other", factSchema)
	if _, err := plan.ScatterGather(ctx, plan.Scan(other), envs, rebindTo(st)); err == nil {
		t.Fatal("scatter accepted a scan of an unsharded table")
	}
}

package plan

import (
	"context"
	"fmt"

	"db4ml/internal/relational"
	"db4ml/internal/table"
)

// This file adds scatter-gather execution for sharded tables. A sharded
// query runs in two stages:
//
//   - Scatter: the plan's shard-safe pipeline (scans, filters, projects)
//     is cloned once per shard, every scan rebound to that shard's LOCAL
//     table, and executed under that shard's own Env — each fragment pins
//     its snapshot in its own shard's manager, which is the only sound
//     cross-shard read protocol: a row's visibility is defined by its
//     owner's stable watermark (and GC safe point), never by a global one.
//   - Gather: stages that need the whole result (aggregate, sort, limit,
//     and anything stacked above them) are peeled off the top of the plan
//     before scattering and re-applied once over the concatenated fragment
//     results, via a Static node — so the gather stage reuses the same
//     operator implementations, pushdown exclusions, and validation as any
//     other plan.
//
// Joins, iterate nodes, and Static inputs cannot be scattered (a join's
// build side would need replication, an iterate body is an ML job with its
// own distributed path), and RowRange predicates are rejected because row
// ids are shard-local after rebinding.

// kindName names a node kind in errors.
func kindName(k kind) string {
	switch k {
	case kScan:
		return "scan"
	case kStatic:
		return "static"
	case kFilter:
		return "filter"
	case kProject:
		return "project"
	case kJoin:
		return "join"
	case kAgg:
		return "aggregate"
	case kSort:
		return "sort"
	case kLimit:
		return "limit"
	case kIterate:
		return "iterate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// scatterable reports whether n can run as a per-shard fragment: only
// scans, filters, and projects, with no RowRange predicates.
func scatterable(n *Node) error {
	switch n.kind {
	case kScan:
		return nil
	case kFilter:
		for _, p := range n.preds {
			if p.isRange {
				return fmt.Errorf("plan: RowRange cannot run on a sharded table (row ids are shard-local)")
			}
		}
	case kProject:
	default:
		return fmt.Errorf("plan: %s node cannot run as a per-shard fragment", kindName(n.kind))
	}
	for _, c := range n.children {
		if err := scatterable(c); err != nil {
			return err
		}
	}
	return nil
}

// rebindScans replaces every scan's table with its shard-local binding.
func rebindScans(n *Node, shard int, rebind func(*table.Table, int) *table.Table) error {
	if n.kind == kScan {
		local := rebind(n.tbl, shard)
		if local == nil {
			return fmt.Errorf("plan: scan of table %s: no shard-%d binding", n.tbl.Name(), shard)
		}
		n.tbl = local
	}
	for _, c := range n.children {
		if err := rebindScans(c, shard, rebind); err != nil {
			return err
		}
	}
	return nil
}

// ScatterGather executes root across shards: envs holds one Env per shard
// (each with that shard's manager — fragment snapshots pin per shard), and
// rebind maps a scanned table to its shard-local counterpart (nil = the
// table is not sharded, an error). The result is the same relation the
// plan would produce over the union of the shards' rows; output order for
// plans without a sort is fragment-concatenation order (shard 0's rows
// first), not global row order.
func ScatterGather(ctx context.Context, root *Node, envs []Env,
	rebind func(tbl *table.Table, shard int) *table.Table) (*relational.Relation, error) {
	if root == nil {
		return nil, fmt.Errorf("plan: nil root")
	}
	if len(envs) == 0 {
		return nil, fmt.Errorf("plan: scatter over zero shards")
	}

	// Peel gather-side stages off the top until the remainder is a
	// shard-safe fragment. peeled[0] is the outermost stage.
	n := root.clone()
	var peeled []*Node
	cur := n
	for scatterable(cur) != nil {
		switch cur.kind {
		case kLimit, kSort, kAgg, kFilter, kProject:
			if cur.kind == kFilter {
				// A RowRange filter can neither scatter nor gather — row ids
				// are shard-local, and the gather input is not a table scan.
				for _, p := range cur.preds {
					if p.isRange {
						return nil, fmt.Errorf("plan: RowRange cannot run on a sharded table (row ids are shard-local)")
					}
				}
			}
			peeled = append(peeled, cur)
			cur = cur.children[0]
		default:
			// The offending node is not a peelable stage; surface the
			// fragment error, which names it.
			return nil, scatterable(cur)
		}
	}

	// Scatter: one fragment per shard, each prepared (pushdown and all)
	// and collected under its own shard's Env.
	var merged *relational.Relation
	for i := range envs {
		frag := cur.clone()
		if err := rebindScans(frag, i, rebind); err != nil {
			return nil, err
		}
		p, err := Prepare(frag, envs[i])
		if err != nil {
			return nil, fmt.Errorf("plan: shard %d fragment: %w", i, err)
		}
		rel, err := p.Collect(ctx)
		if err != nil {
			return nil, fmt.Errorf("plan: shard %d fragment: %w", i, err)
		}
		if merged == nil {
			merged = &relational.Relation{Cols: rel.Cols}
		}
		merged.Rows = append(merged.Rows, rel.Rows...)
	}

	if len(peeled) == 0 {
		return merged, nil
	}
	// Gather: re-apply the peeled stages, innermost first, over the merged
	// fragment output.
	gn := Static(merged)
	for i := len(peeled) - 1; i >= 0; i-- {
		stage := *peeled[i]
		stage.children = []*Node{gn}
		gn = &stage
	}
	gp, err := Prepare(gn, envs[0])
	if err != nil {
		return nil, fmt.Errorf("plan: gather stage: %w", err)
	}
	return gp.Collect(ctx)
}

// Package plan is the kernel's declarative query front door: a logical
// plan representation (scan / filter / project / join / aggregate / sort /
// limit / iterate-until-converged), a small rule-based planner, and a
// streaming executor over the Volcano operators of internal/relational.
//
// Queries are built as a tree of Node values and run in two steps —
// Prepare(root, env) validates and rewrites the tree, Execute(ctx) streams
// the result — replacing the hand-wired, fully-materialized operator
// pipelines of the MADlib baseline. The planner applies two optimizations:
//
//   - Predicate pushdown. Filter conjuncts are pushed through joins and
//     sorts toward their owning table scan and compiled into a
//     table.ScanHint (row-id range plus one single-column word test), so
//     rows a filter would discard are rejected inside the storage layer
//     against the in-place version payload and never materialized at all.
//   - Hash build pre-sizing. Bottom-up cardinality estimates pre-size the
//     hash-join build table and the hash-aggregate accumulator map, so the
//     blocking Open phases allocate once instead of growing by rehash.
//
// The iterate node embeds an ML job — an uber-transaction run on the
// internal/exec pool, snapshot-pinned per the itx protocol, convergence
// decided by the sub-transactions' Validate — directly in a relational
// plan, so PageRank and a top-k query over its result are one plan with
// one execution path (Jankov et al., "Declarative Recursive Computation
// on an RDBMS", make the case that this composition is what a relational
// kernel owes its ML workloads).
package plan

import (
	"fmt"
	"math"

	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/relational"
	"db4ml/internal/storage"
	"db4ml/internal/table"
)

type kind int

const (
	kScan kind = iota
	kStatic
	kFilter
	kProject
	kJoin
	kAgg
	kSort
	kLimit
	kIterate
)

// Node is one logical plan node. Build trees with the constructor
// functions (Scan, Filter, Join, ...); a Node is immutable once built —
// Prepare rewrites a private copy, so one tree may be prepared many times
// under different environments.
type Node struct {
	kind     kind
	children []*Node

	// scan
	tbl      *table.Table
	hint     table.ScanHint // planner-compiled pushdown, see rewrite
	hinted   bool
	residual []Pred // pushed-to-scan conjuncts the hint could not absorb

	// static
	rel *relational.Relation

	// filter
	preds []Pred

	// project
	cols  []string
	exprs []Scalar

	// join
	outer              bool
	probeCol, buildCol string

	// aggregate
	aggKind  relational.AggKind
	groupCol string
	outCol   string
	aggArg   Scalar

	// sort
	sortCol string
	desc    bool

	// limit
	limit int

	// iterate
	iter *IterateSpec

	// planner annotations: estimated output cardinality (upper bound) and
	// whether that estimate is exact. Only exact estimates become hash
	// pre-sizing hints — over-sizing from a loose upper bound costs more
	// in allocation than the rehashes it avoids.
	est      int
	estExact bool
}

// Scan reads every row of tbl visible at the query's snapshot. Filters
// above a scan are candidates for pushdown into the storage layer.
func Scan(tbl *table.Table) *Node { return &Node{kind: kScan, tbl: tbl} }

// Static reads a pre-materialized relation — the bridge for driver-side
// state (e.g. a parameter relation) into a plan.
func Static(rel *relational.Relation) *Node { return &Node{kind: kStatic, rel: rel} }

// Filter keeps only tuples satisfying the conjunction of preds.
func Filter(child *Node, preds ...Pred) *Node {
	return &Node{kind: kFilter, children: []*Node{child}, preds: preds}
}

// Project computes each named output column with the paired expression.
func Project(child *Node, cols []string, exprs ...Scalar) *Node {
	if len(cols) != len(exprs) {
		panic("plan: Project columns/exprs mismatch")
	}
	return &Node{kind: kProject, children: []*Node{child}, cols: cols, exprs: exprs}
}

// Join is an inner equi-join on int64 columns: probe.probeCol =
// build.buildCol. The build side is hashed on Open (pre-sized by the
// planner); output columns are probe's followed by build's.
func Join(probe, build *Node, probeCol, buildCol string) *Node {
	return &Node{kind: kJoin, children: []*Node{probe, build}, probeCol: probeCol, buildCol: buildCol}
}

// LeftJoin is the left-outer variant of Join: every probe tuple is emitted
// at least once, with zeroed build columns when unmatched.
func LeftJoin(probe, build *Node, probeCol, buildCol string) *Node {
	n := Join(probe, build, probeCol, buildCol)
	n.outer = true
	return n
}

// Aggregate groups by the int64 column groupCol and aggregates arg with
// agg, emitting (groupCol, outCol) in ascending group order. arg is
// ignored for relational.Count and may be the zero Scalar.
func Aggregate(child *Node, agg relational.AggKind, groupCol, outCol string, arg Scalar) *Node {
	return &Node{kind: kAgg, children: []*Node{child}, aggKind: agg, groupCol: groupCol, outCol: outCol, aggArg: arg}
}

// SortBy orders by the float64 column col (descending when desc); the
// child is materialized on Open.
func SortBy(child *Node, col string, desc bool) *Node {
	return &Node{kind: kSort, children: []*Node{child}, sortCol: col, desc: desc}
}

// Limit truncates the stream after n tuples.
func Limit(child *Node, n int) *Node {
	return &Node{kind: kLimit, children: []*Node{child}, limit: n}
}

// IterateSpec describes the body of an Iterate node: an ML job run as one
// uber-transaction on the executor pool. Table is both the state the
// iteration updates (attached to the uber-transaction with Versions
// snapshot slots) and the node's relational output — after the job
// converges and commits, the node scans Table at the job's own commit
// timestamp, so downstream operators see exactly the converged state.
type IterateSpec struct {
	// Table is the attached ML-table the iteration updates.
	Table *table.Table
	// Versions overrides the snapshot slots per iterative record; 0 uses
	// the isolation level's default.
	Versions int
	// Isolation selects the ML isolation level for the job.
	Isolation isolation.Options
	// Exec configures the executor (batch size, iteration caps, ...).
	Exec exec.Config
	// Build constructs the sub-transactions at the uber-transaction's
	// snapshot, returning the subs and the region router for exec.RunOn.
	// The convergence predicate lives inside the subs' Validate, exactly
	// as in a directly submitted job (e.g. pagerank.BuildSubs).
	Build func(ts storage.Timestamp) ([]itx.Sub, func(int) int, error)
}

// Iterate embeds an iterate-until-converged ML job in the plan. The
// executor runs spec's uber-transaction to convergence on the shared pool
// before streaming begins, then the node reads spec.Table at the commit
// timestamp.
func Iterate(spec IterateSpec) *Node {
	s := spec
	return &Node{kind: kIterate, iter: &s}
}

// CmpOp is a comparison operator for the typed single-column predicates.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// Pred is one filter conjunct. Single-column predicates (IntCmp, FloatCmp,
// ColTest) are pushable: the planner moves them through joins and sorts by
// column ownership and compiles them into the scan's storage-level hint.
// TuplePred is the opaque escape hatch and never moves. RowRange restricts
// the scanned row ids and is only legal where it can reach a table scan.
type Pred struct {
	col  string
	test func(word uint64) bool

	tuple func(relational.Tuple) bool

	lo, hi  table.RowID
	isRange bool

	desc string
}

func cmpInt(op CmpOp, v int64) func(uint64) bool {
	switch op {
	case Eq:
		return func(w uint64) bool { return int64(w) == v }
	case Ne:
		return func(w uint64) bool { return int64(w) != v }
	case Lt:
		return func(w uint64) bool { return int64(w) < v }
	case Le:
		return func(w uint64) bool { return int64(w) <= v }
	case Gt:
		return func(w uint64) bool { return int64(w) > v }
	default:
		return func(w uint64) bool { return int64(w) >= v }
	}
}

func cmpFloat(op CmpOp, v float64) func(uint64) bool {
	switch op {
	case Eq:
		return func(w uint64) bool { return math.Float64frombits(w) == v }
	case Ne:
		return func(w uint64) bool { return math.Float64frombits(w) != v }
	case Lt:
		return func(w uint64) bool { return math.Float64frombits(w) < v }
	case Le:
		return func(w uint64) bool { return math.Float64frombits(w) <= v }
	case Gt:
		return func(w uint64) bool { return math.Float64frombits(w) > v }
	default:
		return func(w uint64) bool { return math.Float64frombits(w) >= v }
	}
}

// IntCmp compares the int64 column col against v.
func IntCmp(col string, op CmpOp, v int64) Pred {
	return Pred{col: col, test: cmpInt(op, v), desc: fmt.Sprintf("%s int%v%d", col, op, v)}
}

// FloatCmp compares the float64 column col against v.
func FloatCmp(col string, op CmpOp, v float64) Pred {
	return Pred{col: col, test: cmpFloat(op, v), desc: fmt.Sprintf("%s float%v%g", col, op, v)}
}

// ColTest applies an arbitrary word-level test to one column — still
// pushable, since it names the single column it reads.
func ColTest(col string, test func(word uint64) bool) Pred {
	return Pred{col: col, test: test, desc: col + " test"}
}

// TuplePred applies an arbitrary predicate to the whole tuple, in the
// column layout of the filter's child. It is opaque to the planner and is
// never pushed.
func TuplePred(fn func(relational.Tuple) bool) Pred {
	return Pred{tuple: fn, desc: "tuple-pred"}
}

// RowRange restricts a scan to row ids in the half-open range [lo, hi);
// hi == 0 means "through the last row". Prepare rejects a RowRange whose
// filter cannot push it down to a table scan.
func RowRange(lo, hi table.RowID) Pred {
	return Pred{isRange: true, lo: lo, hi: hi, desc: fmt.Sprintf("rows [%d,%d)", lo, hi)}
}

func (p Pred) pushable() bool { return p.col != "" && p.test != nil }

// compile resolves p against a column layout into a tuple predicate.
func (p Pred) compile(cols map[string]int) (func(relational.Tuple) bool, error) {
	if p.tuple != nil {
		return p.tuple, nil
	}
	if p.pushable() {
		i, ok := cols[p.col]
		if !ok {
			return nil, fmt.Errorf("plan: predicate %q references unknown column %q", p.desc, p.col)
		}
		test := p.test
		return func(t relational.Tuple) bool { return test(t[i]) }, nil
	}
	return nil, fmt.Errorf("plan: predicate %q is not evaluable here (RowRange must reach a table scan)", p.desc)
}

type sKind int

const (
	sCol sKind = iota
	sConst
	sBin
)

// Scalar is a small expression tree for Project columns and Aggregate
// arguments: column references, float constants, and arithmetic. A column
// referenced alone passes its raw 64-bit word through (preserving int64
// columns bit-exactly); inside arithmetic it is read as float64.
type Scalar struct {
	kind     sKind
	col      string
	val      float64
	op       byte
	lhs, rhs *Scalar
}

// Col references a column by name.
func Col(name string) Scalar { return Scalar{kind: sCol, col: name} }

// Const is a float64 literal.
func Const(v float64) Scalar { return Scalar{kind: sConst, val: v} }

func bin(op byte, a, b Scalar) Scalar {
	l, r := a, b
	return Scalar{kind: sBin, op: op, lhs: &l, rhs: &r}
}

// Add is a + b over float64 values.
func Add(a, b Scalar) Scalar { return bin('+', a, b) }

// Sub is a - b over float64 values.
func Sub(a, b Scalar) Scalar { return bin('-', a, b) }

// Mul is a * b over float64 values.
func Mul(a, b Scalar) Scalar { return bin('*', a, b) }

// Div is a / b over float64 values.
func Div(a, b Scalar) Scalar { return bin('/', a, b) }

// compileF resolves s into a float64 evaluator.
func (s Scalar) compileF(cols map[string]int) (func(relational.Tuple) float64, error) {
	switch s.kind {
	case sCol:
		i, ok := cols[s.col]
		if !ok {
			return nil, fmt.Errorf("plan: expression references unknown column %q", s.col)
		}
		return func(t relational.Tuple) float64 { return t.Float64(i) }, nil
	case sConst:
		v := s.val
		return func(relational.Tuple) float64 { return v }, nil
	default:
		lf, err := s.lhs.compileF(cols)
		if err != nil {
			return nil, err
		}
		rf, err := s.rhs.compileF(cols)
		if err != nil {
			return nil, err
		}
		switch s.op {
		case '+':
			return func(t relational.Tuple) float64 { return lf(t) + rf(t) }, nil
		case '-':
			return func(t relational.Tuple) float64 { return lf(t) - rf(t) }, nil
		case '*':
			return func(t relational.Tuple) float64 { return lf(t) * rf(t) }, nil
		default:
			return func(t relational.Tuple) float64 { return lf(t) / rf(t) }, nil
		}
	}
}

// compileWord resolves s into a raw-word evaluator: bare columns pass
// their word through; computed expressions bit-cast their float64 result.
func (s Scalar) compileWord(cols map[string]int) (func(relational.Tuple) uint64, error) {
	if s.kind == sCol {
		i, ok := cols[s.col]
		if !ok {
			return nil, fmt.Errorf("plan: expression references unknown column %q", s.col)
		}
		return func(t relational.Tuple) uint64 { return t[i] }, nil
	}
	f, err := s.compileF(cols)
	if err != nil {
		return nil, err
	}
	return func(t relational.Tuple) uint64 { return math.Float64bits(f(t)) }, nil
}

// colMap indexes a column layout by name; duplicate names keep the first
// occurrence, matching relational.Relation.ColIndex.
func colMap(cols []string) map[string]int {
	m := make(map[string]int, len(cols))
	for i, c := range cols {
		if _, dup := m[c]; !dup {
			m[c] = i
		}
	}
	return m
}

// columns computes a node's output column layout.
func (n *Node) columns() []string {
	switch n.kind {
	case kScan:
		cols := make([]string, n.tbl.Schema().Width())
		for i, c := range n.tbl.Schema().Columns() {
			cols[i] = c.Name
		}
		return cols
	case kStatic:
		return n.rel.Cols
	case kProject:
		return n.cols
	case kJoin:
		cols := append([]string(nil), n.children[0].columns()...)
		return append(cols, n.children[1].columns()...)
	case kAgg:
		return []string{n.groupCol, n.outCol}
	case kIterate:
		cols := make([]string, n.iter.Table.Schema().Width())
		for i, c := range n.iter.Table.Schema().Columns() {
			cols[i] = c.Name
		}
		return cols
	default: // filter, sort, limit pass the child layout through
		return n.children[0].columns()
	}
}

func (n *Node) clone() *Node {
	c := *n
	c.children = make([]*Node, len(n.children))
	for i, ch := range n.children {
		c.children[i] = ch.clone()
	}
	c.preds = append([]Pred(nil), n.preds...)
	c.residual = append([]Pred(nil), n.residual...)
	return &c
}

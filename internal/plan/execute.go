package plan

import (
	"context"
	"fmt"
	"time"

	"db4ml/internal/exec"
	"db4ml/internal/itx"
	"db4ml/internal/obs"
	"db4ml/internal/relational"
	"db4ml/internal/storage"
	"db4ml/internal/trace"
)

// ctxCheckStride is how many root tuples flow between context checks —
// streaming stays cancellable without paying a ctx.Err() per row.
const ctxCheckStride = 256

// OpStat is one operator's account of an execution: tuples it consumed
// from its children and tuples it produced. The per-operator analogue of
// EXPLAIN ANALYZE row counts.
type OpStat struct {
	// Op names the operator (scan/filter/join/...), with "+pushdown" on
	// scans that carried a storage-level hint.
	Op string `json:"op"`
	// RowsIn is the total tuples the operator pulled from its children.
	RowsIn uint64 `json:"rows_in"`
	// RowsOut is the tuples the operator emitted.
	RowsOut uint64 `json:"rows_out"`
}

// opNode decorates every physical operator: it forwards planner hints into
// Open, counts rows out, and emits one KindPlanOp trace span per
// Open→Close lifetime (Arg = rows out).
type opNode struct {
	inner relational.Op
	name  string
	hints relational.Hints
	kids  []*opNode

	rowsOut uint64
	tracer  *trace.Tracer
	job     uint64
	openAt  int64

	// openWall/elapsed measure the operator's open-to-close wall time for
	// EXPLAIN ANALYZE, independent of whether a tracer is attached.
	openWall time.Time
	elapsed  time.Duration
}

func (o *opNode) Open() {
	o.rowsOut = 0
	o.openWall = time.Now()
	o.openAt = o.tracer.Now()
	if o.hints.BuildRows > 0 {
		relational.OpenHinted(o.inner, o.hints)
	} else {
		o.inner.Open()
	}
}

func (o *opNode) Next() (relational.Tuple, bool) {
	t, ok := o.inner.Next()
	if ok {
		o.rowsOut++
	}
	return t, ok
}

func (o *opNode) Close() {
	o.inner.Close()
	o.elapsed = time.Since(o.openWall)
	o.tracer.Span(0, trace.KindPlanOp, o.job, int64(o.rowsOut), o.openAt, o.tracer.Now()-o.openAt)
}

func (o *opNode) Columns() []string { return o.inner.Columns() }

// IterStats is the executor's account of one iterate node's ML job.
type IterStats struct {
	// Stats is the exec-pool account of the converged run.
	Stats exec.Stats
	// CommitTS is the uber-transaction's commit timestamp; the iterate
	// node's relational output is its table read at exactly this time.
	CommitTS storage.Timestamp
}

// Cursor streams one execution's result tuples. Tuples may alias operator
// buffers and are valid only until the next Next; Close releases the
// snapshot pins and flushes telemetry (it is safe to call twice).
type Cursor struct {
	p     *Prepared
	ctx   context.Context
	root  *opNode
	ops   []*opNode
	iters []IterStats

	start   time.Time
	startNs int64
	rows    uint64
	err     error
	closed  bool
}

// Execute runs the prepared plan: iterate nodes run their ML jobs to
// convergence first (each as one uber-transaction on the environment's
// pool), then the operator tree opens and the returned cursor streams the
// result. The caller must Close the cursor.
func (p *Prepared) Execute(ctx context.Context) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Cursor{p: p, ctx: ctx, start: time.Now(), startNs: p.env.Tracer.Now()}
	if p.env.Obs != nil {
		p.env.Obs.Inc(0, obs.PlanQueries)
	}
	// Phase 1: converge every embedded ML job. Each pins its own snapshot
	// through the uber-transaction protocol; commits publish before any
	// relational operator opens, so the streaming phase reads converged
	// state.
	iterTS := map[*Node]storage.Timestamp{}
	if err := p.runIterates(ctx, p.root, iterTS, &c.iters); err != nil {
		return nil, err
	}
	// Phase 2: build the physical tree. The query snapshot is the stable
	// timestamp after the iterates committed; every table scan pins its
	// read timestamp in the manager's registry for its Open→Close
	// lifetime, so version GC cannot reclaim under the query.
	ts := p.env.Mgr.Stable()
	root, err := p.build(p.root, ts, iterTS, c)
	if err != nil {
		return nil, err
	}
	c.root = root
	root.Open()
	return c, nil
}

// Collect executes the plan and materializes the whole result.
func (p *Prepared) Collect(ctx context.Context) (*relational.Relation, error) {
	c, err := p.Execute(ctx)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	out := &relational.Relation{Cols: append([]string(nil), p.cols...)}
	for {
		t, ok := c.Next()
		if !ok {
			break
		}
		out.Rows = append(out.Rows, t.Clone())
	}
	return out, c.Err()
}

// Next returns the next result tuple; false at end of stream or on
// cancellation (check Err).
func (c *Cursor) Next() (relational.Tuple, bool) {
	if c.closed || c.err != nil {
		return nil, false
	}
	if c.rows%ctxCheckStride == 0 {
		if err := c.ctx.Err(); err != nil {
			c.err = err
			return nil, false
		}
	}
	t, ok := c.root.Next()
	if !ok {
		return nil, false
	}
	c.rows++
	return t, true
}

// Err returns the error that terminated the stream early, if any
// (context cancellation or deadline).
func (c *Cursor) Err() error { return c.err }

// Columns returns the result column layout.
func (c *Cursor) Columns() []string { return c.p.cols }

// Rows returns the number of tuples emitted so far.
func (c *Cursor) Rows() uint64 { return c.rows }

// IterStats returns the executor accounts of the plan's iterate nodes, in
// plan order. Available immediately after Execute (iterates run eagerly).
func (c *Cursor) IterStats() []IterStats { return c.iters }

// Stats returns per-operator row counts, root first. Meaningful once the
// stream is drained or closed.
func (c *Cursor) Stats() []OpStat {
	out := make([]OpStat, 0, len(c.ops))
	for _, o := range c.ops {
		st := OpStat{Op: o.name, RowsOut: o.rowsOut}
		for _, k := range o.kids {
			st.RowsIn += k.rowsOut
		}
		out = append(out, st)
	}
	return out
}

// Close closes the operator tree (releasing every scan's snapshot pin) and
// flushes the query's telemetry: PlanRows, the query latency histogram,
// and the KindPlan span.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.root.Close()
	env := &c.p.env
	if env.Obs != nil {
		env.Obs.Add(0, obs.PlanRows, c.rows)
		env.Obs.RecordLatency(0, obs.QueryLatency, int64(time.Since(c.start)))
	}
	env.Tracer.Span(0, trace.KindPlan, env.Job, int64(c.rows), c.startNs, env.Tracer.Now()-c.startNs)
}

// runIterates converges every iterate node in the subtree (depth-first,
// plan order), recording each job's commit timestamp.
func (p *Prepared) runIterates(ctx context.Context, n *Node, iterTS map[*Node]storage.Timestamp, out *[]IterStats) error {
	for _, ch := range n.children {
		if err := p.runIterates(ctx, ch, iterTS, out); err != nil {
			return err
		}
	}
	if n.kind != kIterate {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	spec := n.iter
	u, err := itx.BeginUber(p.env.Mgr, spec.Isolation)
	if err != nil {
		return err
	}
	versions := spec.Versions
	if versions == 0 {
		versions = u.DefaultVersions()
	}
	if err := u.Attach(spec.Table, nil, versions); err != nil {
		return err
	}
	subs, regionOf, err := spec.Build(u.Snapshot())
	if err != nil {
		_ = u.Abort()
		return err
	}
	stats, err := exec.RunOn(p.env.Pool, spec.Exec, spec.Isolation, subs, regionOf)
	if err != nil {
		_ = u.Abort()
		return err
	}
	ts, err := u.Commit()
	if err != nil {
		return err
	}
	iterTS[n] = ts
	*out = append(*out, IterStats{Stats: stats, CommitTS: ts})
	return nil
}

// build lowers the rewritten logical tree onto the Volcano operators,
// wrapping every operator in the stats/trace decorator.
func (p *Prepared) build(n *Node, ts storage.Timestamp, iterTS map[*Node]storage.Timestamp, c *Cursor) (*opNode, error) {
	wrap := func(name string, inner relational.Op, buildRows int, kids ...*opNode) *opNode {
		o := &opNode{inner: inner, name: name, kids: kids, tracer: p.env.Tracer, job: p.env.Job}
		if buildRows > 0 && !p.env.NoPresize {
			o.hints = relational.Hints{BuildRows: buildRows}
		}
		c.ops = append(c.ops, o)
		return o
	}
	kids := make([]*opNode, len(n.children))
	for i, ch := range n.children {
		k, err := p.build(ch, ts, iterTS, c)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	cols := colMap(n.columns())
	switch n.kind {
	case kScan:
		var inner relational.Op
		name := "scan(" + n.tbl.Name() + ")"
		// The rewrite already honored NoPushdown: under it only RowRange
		// hints survive (see pushRanges).
		if n.hinted {
			inner = relational.NewTableScanHinted(p.env.Mgr, n.tbl, ts, n.hint)
			name += "+pushdown"
		} else {
			inner = relational.NewTableScan(p.env.Mgr, n.tbl, ts)
		}
		scan := wrap(name, inner, 0)
		if len(n.residual) == 0 {
			return scan, nil
		}
		pred, err := compileConj(n.residual, cols)
		if err != nil {
			return nil, err
		}
		return wrap("filter(residual)", relational.NewFilter(scan, pred), 0, scan), nil
	case kStatic:
		return wrap("static", relational.NewScan(n.rel), 0), nil
	case kFilter:
		pred, err := compileConj(n.preds, colMap(n.children[0].columns()))
		if err != nil {
			return nil, err
		}
		return wrap("filter", relational.NewFilter(kids[0], pred), 0, kids[0]), nil
	case kProject:
		exprs := make([]func(relational.Tuple) uint64, len(n.exprs))
		inCols := colMap(n.children[0].columns())
		for i, e := range n.exprs {
			f, err := e.compileWord(inCols)
			if err != nil {
				return nil, err
			}
			exprs[i] = f
		}
		return wrap("project", relational.NewProject(kids[0], n.cols, exprs), 0, kids[0]), nil
	case kJoin:
		pi := colMap(n.children[0].columns())[n.probeCol]
		bi := colMap(n.children[1].columns())[n.buildCol]
		probeKey := func(t relational.Tuple) int64 { return t.Int64(pi) }
		buildKey := func(t relational.Tuple) int64 { return t.Int64(bi) }
		var inner relational.Op
		name := "join"
		if n.outer {
			inner = relational.NewHashLeftJoin(kids[0], kids[1], probeKey, buildKey)
			name = "left-join"
		} else {
			inner = relational.NewHashJoin(kids[0], kids[1], probeKey, buildKey)
		}
		return wrap(name, inner, presizeOf(n.children[1]), kids[0], kids[1]), nil
	case kAgg:
		inCols := colMap(n.children[0].columns())
		gi := inCols[n.groupCol]
		key := func(t relational.Tuple) int64 { return t.Int64(gi) }
		var arg func(relational.Tuple) float64
		if n.aggKind == relational.Sum {
			f, err := n.aggArg.compileF(inCols)
			if err != nil {
				return nil, err
			}
			arg = f
		}
		inner := relational.NewHashAggregate(kids[0], n.aggKind, n.groupCol, n.outCol, key, arg)
		return wrap("aggregate", inner, presizeOf(n.children[0]), kids[0]), nil
	case kSort:
		si := colMap(n.children[0].columns())[n.sortCol]
		return wrap("sort", relational.NewSortByFloat(kids[0], si, n.desc), 0, kids[0]), nil
	case kLimit:
		return wrap("limit", relational.NewLimit(kids[0], n.limit), 0, kids[0]), nil
	case kIterate:
		cts, ok := iterTS[n]
		if !ok {
			return nil, fmt.Errorf("plan: iterate node was not converged before build")
		}
		inner := relational.NewTableScan(p.env.Mgr, n.iter.Table, cts)
		return wrap("iterate("+n.iter.Table.Name()+")", inner, 0), nil
	default:
		return nil, fmt.Errorf("plan: unknown node kind %v", n.kind)
	}
}

// presizeOf is the pre-sizing hint a buffering operator takes from the
// child it buffers: the child's cardinality estimate when exact, else 0
// (grow incrementally — see the exactness rationale on estimate()).
func presizeOf(n *Node) int {
	if !n.estExact {
		return 0
	}
	return n.est
}

// compileConj compiles a conjunction of predicates against one layout.
func compileConj(preds []Pred, cols map[string]int) (func(relational.Tuple) bool, error) {
	fns := make([]func(relational.Tuple) bool, len(preds))
	for i, p := range preds {
		f, err := p.compile(cols)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	if len(fns) == 1 {
		return fns[0], nil
	}
	return func(t relational.Tuple) bool {
		for _, f := range fns {
			if !f(t) {
				return false
			}
		}
		return true
	}, nil
}

package plan

import (
	"context"
	"math/rand"
	"testing"

	"db4ml/internal/relational"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// loadFact publishes a (ID, K, V) fact table: ID = row id, K = ID % groups,
// V = float64(ID).
func loadFact(t *testing.T, m *txn.Manager, name string, rows, groups int) *table.Table {
	t.Helper()
	tbl := table.New(name, table.MustSchema(
		table.Column{Name: "ID", Type: table.Int64},
		table.Column{Name: "K", Type: table.Int64},
		table.Column{Name: "V", Type: table.Float64},
	))
	m.PublishAt(func(ts storage.Timestamp) {
		p := tbl.Schema().NewPayload()
		for i := 0; i < rows; i++ {
			p.SetInt64(0, int64(i))
			p.SetInt64(1, int64(i%groups))
			p.SetFloat64(2, float64(i))
			if _, err := tbl.Append(ts, p); err != nil {
				t.Fatal(err)
			}
		}
	})
	return tbl
}

func mustCollect(t *testing.T, p *Node, env Env) (*relational.Relation, []OpStat) {
	t.Helper()
	prep, err := Prepare(p, env)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := prep.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := &relational.Relation{Cols: prep.Columns()}
	for {
		tup, ok := cur.Next()
		if !ok {
			break
		}
		out.Rows = append(out.Rows, tup.Clone())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	return out, cur.Stats()
}

func sameRelation(t *testing.T, got, want *relational.Relation, label string) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: cols %v vs %v", label, got.Cols, want.Cols)
	}
	for i := range got.Cols {
		if got.Cols[i] != want.Cols[i] {
			t.Fatalf("%s: cols %v vs %v", label, got.Cols, want.Cols)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows vs %d rows", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("%s: row %d width %d vs %d", label, i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j := range got.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("%s: row %d col %d: %d vs %d (rows %v vs %v)",
					label, i, j, got.Rows[i][j], want.Rows[i][j], got.Rows[i], want.Rows[i])
			}
		}
	}
}

func findOp(stats []OpStat, name string) (OpStat, bool) {
	for _, s := range stats {
		if s.Op == name {
			return s, true
		}
	}
	return OpStat{}, false
}

// TestPushdownEquivalenceAndScanReduction: a selective filter over a scan
// must produce identical output with and without pushdown, and with
// pushdown the scan operator itself must emit only the matching rows —
// the non-matching versions are rejected inside the storage layer.
func TestPushdownEquivalenceAndScanReduction(t *testing.T) {
	m := txn.NewManager()
	tbl := loadFact(t, m, "F", 1000, 10)
	q := Filter(Scan(tbl), IntCmp("K", Eq, 3))

	pushed, pstats := mustCollect(t, q, Env{Mgr: m})
	naive, nstats := mustCollect(t, q, Env{Mgr: m, NoPushdown: true, NoPresize: true})
	sameRelation(t, pushed, naive, "pushdown vs naive")
	if len(pushed.Rows) != 100 {
		t.Fatalf("selected %d rows, want 100", len(pushed.Rows))
	}

	ps, ok := findOp(pstats, "scan(F)+pushdown")
	if !ok {
		t.Fatalf("no pushed scan in stats: %+v", pstats)
	}
	if ps.RowsOut != 100 {
		t.Fatalf("pushed scan emitted %d rows, want 100 (filter not pushed into storage)", ps.RowsOut)
	}
	ns, ok := findOp(nstats, "scan(F)")
	if !ok {
		t.Fatalf("no naive scan in stats: %+v", nstats)
	}
	if ns.RowsOut != 1000 {
		t.Fatalf("naive scan emitted %d rows, want 1000", ns.RowsOut)
	}
}

// TestRowRangePushdown: a RowRange restricts the scanned row ids inside
// the storage layer; one that cannot reach a scan is a Prepare error.
func TestRowRangePushdown(t *testing.T) {
	m := txn.NewManager()
	tbl := loadFact(t, m, "F", 100, 10)

	out, stats := mustCollect(t, Filter(Scan(tbl), RowRange(10, 20)), Env{Mgr: m})
	if len(out.Rows) != 10 {
		t.Fatalf("row-range selected %d rows, want 10", len(out.Rows))
	}
	for i, r := range out.Rows {
		if r.Int64(0) != int64(10+i) {
			t.Fatalf("row %d: ID = %d, want %d", i, r.Int64(0), 10+i)
		}
	}
	ps, ok := findOp(stats, "scan(F)+pushdown")
	if !ok || ps.RowsOut != 10 {
		t.Fatalf("range scan stats wrong: %+v", stats)
	}

	// RowRange above an aggregate has no scan to land on.
	agg := Aggregate(Scan(tbl), relational.Sum, "K", "s", Col("V"))
	if _, err := Prepare(Filter(agg, RowRange(0, 5)), Env{Mgr: m}); err == nil {
		t.Fatal("RowRange above an aggregate must fail Prepare")
	}
}

// TestJoinPushdown: conjuncts over a join split by column ownership and
// push into both scans for an inner join; for a left-outer join the
// build-side conjunct must stay above the join (null-side semantics).
// Both rewrites must be result-identical to the unpushed plan.
func TestJoinPushdown(t *testing.T) {
	m := txn.NewManager()
	fact := loadFact(t, m, "F", 400, 8)
	dim := table.New("D", table.MustSchema(
		table.Column{Name: "DK", Type: table.Int64},
		table.Column{Name: "W", Type: table.Float64},
	))
	m.PublishAt(func(ts storage.Timestamp) {
		p := dim.Schema().NewPayload()
		for k := 0; k < 6; k++ { // keys 6,7 unmatched on the dim side
			p.SetInt64(0, int64(k))
			p.SetFloat64(1, float64(100+k))
			if _, err := dim.Append(ts, p); err != nil {
				t.Fatal(err)
			}
		}
	})

	inner := Filter(
		Join(Scan(fact), Scan(dim), "K", "DK"),
		FloatCmp("V", Lt, 200), // probe side
		FloatCmp("W", Ge, 102), // build side
	)
	got, stats := mustCollect(t, inner, Env{Mgr: m})
	want, _ := mustCollect(t, inner, Env{Mgr: m, NoPushdown: true, NoPresize: true})
	sameRelation(t, got, want, "inner-join pushdown")
	if len(got.Rows) == 0 {
		t.Fatal("inner-join query selected nothing; fixture is broken")
	}
	// Both sides' scans must carry hints.
	if _, ok := findOp(stats, "scan(F)+pushdown"); !ok {
		t.Fatalf("probe-side filter not pushed: %+v", stats)
	}
	if _, ok := findOp(stats, "scan(D)+pushdown"); !ok {
		t.Fatalf("build-side filter not pushed: %+v", stats)
	}

	outer := Filter(
		LeftJoin(Scan(fact), Scan(dim), "K", "DK"),
		FloatCmp("W", Ge, 102), // build side: must NOT push below a left join
	)
	ogot, ostats := mustCollect(t, outer, Env{Mgr: m})
	owant, _ := mustCollect(t, outer, Env{Mgr: m, NoPushdown: true, NoPresize: true})
	sameRelation(t, ogot, owant, "left-outer pushdown")
	if _, ok := findOp(ostats, "scan(D)+pushdown"); ok {
		t.Fatalf("build-side predicate pushed below a left-outer join: %+v", ostats)
	}
}

// TestCursorCancellation: a cancelled context stops the stream at the next
// stride check and surfaces through Err.
func TestCursorCancellation(t *testing.T) {
	m := txn.NewManager()
	tbl := loadFact(t, m, "F", 64, 4)
	prep, err := Prepare(Scan(tbl), Env{Mgr: m})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := prep.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	cancel()
	if _, ok := cur.Next(); ok {
		t.Fatal("Next succeeded after cancellation")
	}
	if cur.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", cur.Err())
	}
}

// TestPreparedReexecute: one Prepared may Execute repeatedly; operator
// state (counters, hash tables, pins) must fully reset between runs.
func TestPreparedReexecute(t *testing.T) {
	m := txn.NewManager()
	tbl := loadFact(t, m, "F", 200, 5)
	prep, err := Prepare(
		Aggregate(Filter(Scan(tbl), IntCmp("K", Ne, 0)), relational.Count, "K", "n", Scalar{}),
		Env{Mgr: m})
	if err != nil {
		t.Fatal(err)
	}
	var first *relational.Relation
	for run := 0; run < 3; run++ {
		out, err := prep.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = out
			if len(out.Rows) != 4 {
				t.Fatalf("groups = %d, want 4", len(out.Rows))
			}
			continue
		}
		sameRelation(t, out, first, "re-execute")
	}
	if m.ActiveSnapshots() != 0 {
		t.Fatalf("%d snapshot pins leaked across executions", m.ActiveSnapshots())
	}
}

// refStage is the hand-materialized reference: it applies one relational
// operator to a fully materialized input and materializes the output —
// exactly the pre-plan MADlib style the streaming executor replaces.
func refStage(in *relational.Relation, op func(relational.Op) relational.Op) *relational.Relation {
	return relational.Collect(op(relational.NewScan(in)))
}

func colIdx(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// TestStreamedMatchesMaterializedRandomized is the property test: random
// plans over random data must produce bit-identical results three ways —
// streamed with pushdown+presize, streamed with both disabled, and the
// stage-by-stage materialized reference pipeline.
func TestStreamedMatchesMaterializedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(0xdb4))
	for trial := 0; trial < 60; trial++ {
		m := txn.NewManager()
		rows := 20 + rng.Intn(300)
		groups := 1 + rng.Intn(12)
		tbl := loadFact(t, m, "F", rows, groups)

		// Materialize the base table for the reference pipeline.
		base := relational.Collect(relational.NewTableScan(m, tbl, m.Stable()))
		ref := base
		q := Scan(tbl)

		// Random filter(s).
		nf := rng.Intn(3)
		for f := 0; f < nf; f++ {
			switch rng.Intn(4) {
			case 0:
				k := int64(rng.Intn(groups + 2))
				op := CmpOp(rng.Intn(6))
				q = Filter(q, IntCmp("K", op, k))
				ki := colIdx(ref.Cols, "K")
				test := cmpInt(op, k)
				ref = refStage(ref, func(in relational.Op) relational.Op {
					return relational.NewFilter(in, func(tp relational.Tuple) bool { return test(tp[ki]) })
				})
			case 1:
				v := float64(rng.Intn(rows))
				op := CmpOp(rng.Intn(6))
				q = Filter(q, FloatCmp("V", op, v))
				vi := colIdx(ref.Cols, "V")
				test := cmpFloat(op, v)
				ref = refStage(ref, func(in relational.Op) relational.Op {
					return relational.NewFilter(in, func(tp relational.Tuple) bool { return test(tp[vi]) })
				})
			case 2:
				lo := table.RowID(rng.Intn(rows))
				hi := lo + table.RowID(rng.Intn(rows-int(lo)+1))
				q = Filter(q, RowRange(lo, hi))
				ii := colIdx(ref.Cols, "ID")
				ref = refStage(ref, func(in relational.Op) relational.Op {
					return relational.NewFilter(in, func(tp relational.Tuple) bool {
						id := tp.Int64(ii)
						return id >= int64(lo) && (hi == 0 || id < int64(hi))
					})
				})
			default:
				// Opaque tuple predicate: never pushed.
				mod := int64(2 + rng.Intn(3))
				ii := colIdx(ref.Cols, "ID")
				pred := func(tp relational.Tuple) bool { return tp.Int64(ii)%mod != 0 }
				q = Filter(q, TuplePred(pred))
				ref = refStage(ref, func(in relational.Op) relational.Op {
					return relational.NewFilter(in, pred)
				})
			}
		}

		// Random join against a static dimension relation.
		if rng.Intn(2) == 0 {
			dim := &relational.Relation{Cols: []string{"DK", "W"}}
			nd := rng.Intn(groups + 3)
			for k := 0; k < nd; k++ {
				tp := make(relational.Tuple, 2)
				tp.SetInt64(0, int64(rng.Intn(groups+2)))
				tp.SetFloat64(1, float64(rng.Intn(50)))
				dim.Rows = append(dim.Rows, tp)
			}
			outerJoin := rng.Intn(2) == 0
			ki := colIdx(ref.Cols, "K")
			probeKey := func(tp relational.Tuple) int64 { return tp.Int64(ki) }
			buildKey := func(tp relational.Tuple) int64 { return tp.Int64(0) }
			if outerJoin {
				q = LeftJoin(q, Static(dim), "K", "DK")
			} else {
				q = Join(q, Static(dim), "K", "DK")
			}
			refIn := ref
			joined := &relational.Relation{Cols: append(append([]string(nil), refIn.Cols...), dim.Cols...)}
			var jop relational.Op
			if outerJoin {
				jop = relational.NewHashLeftJoin(relational.NewScan(refIn), relational.NewScan(dim), probeKey, buildKey)
			} else {
				jop = relational.NewHashJoin(relational.NewScan(refIn), relational.NewScan(dim), probeKey, buildKey)
			}
			joined.Rows = relational.Collect(jop).Rows
			ref = joined
		}

		// Random tail: aggregate, or project, or sort(+limit), or nothing.
		switch rng.Intn(4) {
		case 0:
			q = Aggregate(q, relational.Sum, "K", "s", Mul(Col("V"), Const(0.5)))
			ki := colIdx(ref.Cols, "K")
			vi := colIdx(ref.Cols, "V")
			ref = refStage(ref, func(in relational.Op) relational.Op {
				return relational.NewHashAggregate(in, relational.Sum, "K", "s",
					func(tp relational.Tuple) int64 { return tp.Int64(ki) },
					func(tp relational.Tuple) float64 { return tp.Float64(vi) * 0.5 })
			})
		case 1:
			q = Project(q, []string{"ID", "half"}, Col("ID"), Div(Col("V"), Const(2)))
			ii := colIdx(ref.Cols, "ID")
			vi := colIdx(ref.Cols, "V")
			ref = refStage(ref, func(in relational.Op) relational.Op {
				return relational.NewProject(in, []string{"ID", "half"},
					[]func(relational.Tuple) uint64{
						func(tp relational.Tuple) uint64 { return tp[ii] },
						func(tp relational.Tuple) uint64 {
							w := make(relational.Tuple, 1)
							w.SetFloat64(0, tp.Float64(vi)/2)
							return w[0]
						},
					})
			})
		case 2:
			desc := rng.Intn(2) == 0
			lim := 1 + rng.Intn(20)
			q = Limit(SortBy(q, "V", desc), lim)
			vi := colIdx(ref.Cols, "V")
			ref = refStage(ref, func(in relational.Op) relational.Op {
				return relational.NewLimit(relational.NewSortByFloat(in, vi, desc), lim)
			})
		}

		got, _ := mustCollect(t, q, Env{Mgr: m})
		naive, _ := mustCollect(t, q, Env{Mgr: m, NoPushdown: true, NoPresize: true})
		sameRelation(t, got, naive, "trial pushdown-vs-naive")
		if len(got.Rows) != len(ref.Rows) {
			t.Fatalf("trial %d: streamed %d rows, reference %d", trial, len(got.Rows), len(ref.Rows))
		}
		for i := range got.Rows {
			for j := range got.Rows[i] {
				if got.Rows[i][j] != ref.Rows[i][j] {
					t.Fatalf("trial %d row %d col %d: streamed %d, reference %d",
						trial, i, j, got.Rows[i][j], ref.Rows[i][j])
				}
			}
		}
		if m.ActiveSnapshots() != 0 {
			t.Fatalf("trial %d leaked %d snapshot pins", trial, m.ActiveSnapshots())
		}
	}
}

package plan

import (
	"fmt"

	"db4ml/internal/exec"
	"db4ml/internal/obs"
	"db4ml/internal/relational"
	"db4ml/internal/trace"
	"db4ml/internal/txn"
)

// Env is everything a prepared plan needs from the engine to execute.
type Env struct {
	// Mgr is required: table scans pin their snapshot in its registry and
	// iterate nodes begin their uber-transaction through it.
	Mgr *txn.Manager
	// Pool, when non-nil, runs iterate bodies on this shared worker pool;
	// nil uses a throwaway per-job pool (exec.RunOn semantics).
	Pool *exec.Pool
	// Obs, when non-nil, receives PlanQueries/PlanRows counters and the
	// query latency histogram.
	Obs *obs.Observer
	// Tracer, when non-nil, receives one KindPlan span per execution and
	// one KindPlanOp span per operator Open→Close.
	Tracer *trace.Tracer
	// Job tags this query's trace spans (the facade's query id).
	Job uint64

	// NoPushdown disables predicate pushdown: filters stay where the plan
	// put them and scans run unhinted. For baseline comparisons.
	NoPushdown bool
	// NoPresize disables hash build pre-sizing hints. For baseline
	// comparisons.
	NoPresize bool
}

// Prepared is a validated, rewritten plan, ready to Execute any number of
// times. It is not safe for concurrent Executes (operator state is reused).
type Prepared struct {
	env  Env
	root *Node
	cols []string
}

// Prepare validates the plan, applies the rewrite rules (filter merge,
// predicate pushdown toward and into scans, cardinality-based pre-sizing
// hints), and returns the executable form. The input tree is not modified.
func Prepare(root *Node, env Env) (*Prepared, error) {
	if root == nil {
		return nil, fmt.Errorf("plan: nil root")
	}
	if env.Mgr == nil {
		return nil, fmt.Errorf("plan: Env.Mgr is required")
	}
	n := root.clone()
	n = mergeFilters(n)
	var err error
	if env.NoPushdown {
		// RowRange is a semantic scan parameter, not an optimization: it
		// must reach its scan even when predicate pushdown is disabled.
		n, err = pushRanges(n)
	} else {
		n, err = pushdown(n)
	}
	if err != nil {
		return nil, err
	}
	if err := check(n); err != nil {
		return nil, err
	}
	estimate(n)
	return &Prepared{env: env, root: n, cols: append([]string(nil), n.columns()...)}, nil
}

// Columns returns the result column layout.
func (p *Prepared) Columns() []string { return p.cols }

// mergeFilters collapses adjacent filter nodes into one conjunction, so
// pushdown sees every conjunct at once.
func mergeFilters(n *Node) *Node {
	for i, c := range n.children {
		n.children[i] = mergeFilters(c)
	}
	if n.kind == kFilter && n.children[0].kind == kFilter {
		child := n.children[0]
		n.preds = append(n.preds, child.preds...)
		n.children[0] = child.children[0]
	}
	return n
}

// pushdown moves pushable conjuncts toward their owning scan and compiles
// what arrives at a scan into its storage-level ScanHint. It returns the
// rewritten node (a filter that pushed everything disappears).
func pushdown(n *Node) (*Node, error) {
	for i, c := range n.children {
		nc, err := pushdown(c)
		if err != nil {
			return nil, err
		}
		n.children[i] = nc
	}
	if n.kind != kFilter {
		return n, nil
	}
	child := n.children[0]
	var keep []Pred
	switch child.kind {
	case kScan:
		absorbScan(child, n.preds)
		keep = nil
	case kJoin:
		probeCols := colMap(child.children[0].columns())
		buildCols := colMap(child.children[1].columns())
		var toProbe, toBuild []Pred
		for _, p := range n.preds {
			if !p.pushable() {
				keep = append(keep, p)
				continue
			}
			_, inProbe := probeCols[p.col]
			_, inBuild := buildCols[p.col]
			switch {
			case inProbe && !inBuild:
				toProbe = append(toProbe, p)
			case inBuild && !inProbe && !child.outer:
				// Under a left-outer join a build-side predicate is NOT
				// equivalent pushed down: it would turn unmatched-probe
				// rows (which pushdown preserves) into matched-with-zeros
				// rows or vice versa, so it stays above the join.
				toBuild = append(toBuild, p)
			default:
				keep = append(keep, p)
			}
		}
		var err error
		if len(toProbe) > 0 {
			child.children[0], err = pushdown(Filter(child.children[0], toProbe...))
			if err != nil {
				return nil, err
			}
		}
		if len(toBuild) > 0 {
			child.children[1], err = pushdown(Filter(child.children[1], toBuild...))
			if err != nil {
				return nil, err
			}
		}
	case kSort:
		// Filtering commutes with ordering; push the whole filter below.
		inner, err := pushdown(Filter(child.children[0], n.preds...))
		if err != nil {
			return nil, err
		}
		child.children[0] = inner
		keep = nil
	default:
		// Static, project, aggregate, limit, iterate: the filter stays.
		// (Limit must not: filtering below a limit changes which rows the
		// limit keeps. Project/aggregate renames make ownership ambiguous;
		// iterate output is only known post-commit.)
		keep = n.preds
	}
	if len(keep) == 0 {
		return child, nil
	}
	n.preds = keep
	return n, nil
}

// pushRanges is the NoPushdown-mode rewrite: it moves only RowRange
// conjuncts into their scans (through sorts, like pushdown does) and
// leaves every other predicate exactly where the plan put it.
func pushRanges(n *Node) (*Node, error) {
	for i, c := range n.children {
		nc, err := pushRanges(c)
		if err != nil {
			return nil, err
		}
		n.children[i] = nc
	}
	if n.kind != kFilter {
		return n, nil
	}
	var ranges, rest []Pred
	for _, p := range n.preds {
		if p.isRange {
			ranges = append(ranges, p)
		} else {
			rest = append(rest, p)
		}
	}
	if len(ranges) == 0 {
		return n, nil
	}
	child := n.children[0]
	switch child.kind {
	case kScan:
		absorbScan(child, ranges)
	case kSort:
		inner, err := pushRanges(Filter(child.children[0], ranges...))
		if err != nil {
			return nil, err
		}
		child.children[0] = inner
	default:
		// No scan to land on from here; keep the ranges so check() reports
		// the same error the pushdown path would.
		rest = n.preds
	}
	if len(rest) == 0 {
		return child, nil
	}
	n.preds = rest
	return n, nil
}

// absorbScan folds conjuncts into the scan's ScanHint: every RowRange
// tightens [Lo, Hi); single-column tests on one chosen column (the first
// seen) AND into the hint's word test; everything else becomes the scan's
// residual filter, applied just above the storage layer.
func absorbScan(s *Node, preds []Pred) {
	cols := colMap(s.columns())
	for _, p := range preds {
		switch {
		case p.isRange:
			if p.lo > s.hint.Lo {
				s.hint.Lo = p.lo
			}
			if p.hi != 0 && (s.hint.Hi == 0 || p.hi < s.hint.Hi) {
				s.hint.Hi = p.hi
			}
			s.hinted = true
		case p.pushable():
			ci, ok := cols[p.col]
			if !ok {
				s.residual = append(s.residual, p) // caught by check()
				continue
			}
			if s.hint.Test == nil {
				s.hint.Col, s.hint.Test = ci, p.test
				s.hinted = true
			} else if s.hint.Col == ci {
				prev, next := s.hint.Test, p.test
				s.hint.Test = func(w uint64) bool { return prev(w) && next(w) }
			} else {
				// One hint column per scan; extra columns filter above.
				s.residual = append(s.residual, p)
			}
		default:
			s.residual = append(s.residual, p)
		}
	}
}

// check validates the rewritten tree: every referenced column resolves,
// every RowRange reached a scan, aggregate/sort/join columns exist.
func check(n *Node) error {
	for _, c := range n.children {
		if err := check(c); err != nil {
			return err
		}
	}
	switch n.kind {
	case kScan:
		cols := colMap(n.columns())
		for _, p := range n.residual {
			if _, err := p.compile(cols); err != nil {
				return err
			}
		}
	case kFilter:
		cols := colMap(n.children[0].columns())
		for _, p := range n.preds {
			if _, err := p.compile(cols); err != nil {
				return err
			}
		}
	case kProject:
		cols := colMap(n.children[0].columns())
		for _, e := range n.exprs {
			if _, err := e.compileWord(cols); err != nil {
				return err
			}
		}
	case kJoin:
		if _, ok := colMap(n.children[0].columns())[n.probeCol]; !ok {
			return fmt.Errorf("plan: join probe column %q not in probe side", n.probeCol)
		}
		if _, ok := colMap(n.children[1].columns())[n.buildCol]; !ok {
			return fmt.Errorf("plan: join build column %q not in build side", n.buildCol)
		}
	case kAgg:
		cols := colMap(n.children[0].columns())
		if _, ok := cols[n.groupCol]; !ok {
			return fmt.Errorf("plan: aggregate group column %q not in input", n.groupCol)
		}
		// Count ignores its argument; Sum's expression must compile.
		if n.aggKind == relational.Sum {
			if _, err := n.aggArg.compileF(cols); err != nil {
				return err
			}
		}
	case kSort:
		if _, ok := colMap(n.children[0].columns())[n.sortCol]; !ok {
			return fmt.Errorf("plan: sort column %q not in input", n.sortCol)
		}
	case kIterate:
		if n.iter.Table == nil || n.iter.Build == nil {
			return fmt.Errorf("plan: iterate needs Table and Build")
		}
	}
	return nil
}

// estimate annotates every node with an output-cardinality upper bound —
// the planner's input to hash build pre-sizing — and whether that bound is
// exact. Only exact estimates turn into pre-sizing hints: a hash table
// over-sized from a loose upper bound (a pushed word-test's selectivity is
// unknown, a filter's survivors are unknown) pays more in allocation than
// the incremental growth it avoids, while an exact pre-size (an unfiltered
// or range-bounded scan, a static relation) skips every rehash for free.
func estimate(n *Node) int {
	for _, c := range n.children {
		estimate(c)
	}
	switch n.kind {
	case kScan:
		n.est = n.tbl.RowsInRange(n.hint)
		// A row-id range alone counts exactly; a pushed word test or a
		// residual predicate makes the count an upper bound.
		n.estExact = n.hint.Test == nil && len(n.residual) == 0
	case kStatic:
		n.est = len(n.rel.Rows)
		n.estExact = true
	case kJoin:
		n.est = n.children[0].est
	case kLimit:
		n.est = n.limit
		if c := n.children[0].est; c < n.est {
			n.est = c
		}
		n.estExact = n.children[0].estExact
	case kIterate:
		n.est = n.iter.Table.NumRows()
		n.estExact = true
	case kProject, kSort:
		// Row-preserving: pass the child's estimate and its exactness.
		n.est = n.children[0].est
		n.estExact = n.children[0].estExact
	default: // filter, aggregate: bounded by the input, never exact
		n.est = n.children[0].est
	}
	return n.est
}

package gc

import (
	"testing"

	"db4ml/internal/obs"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

func oneRowTable(t *testing.T, m *txn.Manager) *table.Table {
	t.Helper()
	tbl := table.New("T", table.MustSchema(table.Column{Name: "V", Type: table.Int64}))
	m.PublishAt(func(ts storage.Timestamp) {
		if _, err := tbl.Append(ts, storage.Payload{0}); err != nil {
			t.Fatal(err)
		}
	})
	return tbl
}

func update(t *testing.T, m *txn.Manager, tbl *table.Table, v int64) {
	t.Helper()
	tx := m.Begin()
	p, _ := tx.Read(tbl, 0)
	p.SetInt64(0, v)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPassPrunesBelowSafeWatermark(t *testing.T) {
	m := txn.NewManager()
	tbl := oneRowTable(t, m)
	for i := int64(1); i <= 5; i++ {
		update(t, m, tbl, i)
	}
	r := New(m, func() []*table.Table { return []*table.Table{tbl} })
	st := r.Pass()
	if st.Pruned != 5 || st.Tables != 1 {
		t.Fatalf("Pass = %+v, want 5 pruned over 1 table", st)
	}
	if st.Watermark != m.Stable() {
		t.Fatalf("idle pass watermark = %d, want Stable %d", st.Watermark, m.Stable())
	}
	if r.Passes() != 1 || r.TotalPruned() != 5 {
		t.Fatalf("totals = (%d, %d)", r.Passes(), r.TotalPruned())
	}
	if got, _ := m.Begin().Read(tbl, 0); got.Int64(0) != 5 {
		t.Fatalf("read after pass = %v", got.Int64(0))
	}
}

// TestPruneAtClampsToRegistry: a requested watermark above the oldest
// active snapshot must be clamped, never honored — the pinned reader's
// version survives a PruneAt(InfTS).
func TestPruneAtClampsToRegistry(t *testing.T) {
	m := txn.NewManager()
	tbl := oneRowTable(t, m)
	update(t, m, tbl, 1)
	reader := m.Begin()
	update(t, m, tbl, 2)
	update(t, m, tbl, 3)

	r := New(m, func() []*table.Table { return []*table.Table{tbl} })
	st := r.PruneAt(storage.InfTS)
	if st.Watermark != reader.BeginTS() {
		t.Fatalf("watermark = %d, want clamp to pin %d", st.Watermark, reader.BeginTS())
	}
	if p, ok := reader.Read(tbl, 0); !ok || p.Int64(0) != 1 {
		t.Fatalf("pinned read after clamped prune = (%v, %v), want 1", p, ok)
	}
	reader.Abort()

	// With the pin gone, the next pass reclaims the rest.
	if st := r.Pass(); st.Pruned == 0 {
		t.Fatal("post-unpin pass reclaimed nothing")
	}
	if tbl.Chain(0).Len() != 1 {
		t.Fatalf("chain len = %d after full GC, want 1", tbl.Chain(0).Len())
	}
}

func TestPassRecordsTelemetry(t *testing.T) {
	m := txn.NewManager()
	tbl := oneRowTable(t, m)
	update(t, m, tbl, 1)
	update(t, m, tbl, 2)
	r := New(m, func() []*table.Table { return []*table.Table{tbl} })
	ob := obs.New()
	r.SetObserver(ob)
	r.Pass()
	r.Pass() // second pass prunes nothing but still counts
	snap := ob.Snapshot()
	if snap.Counters.GCPasses != 2 || snap.Counters.VersionsPruned != 2 {
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if snap.Latencies.GCPause.Count != 2 {
		t.Fatalf("gc_pause samples = %d, want 2", snap.Latencies.GCPause.Count)
	}
}

// Package gc is the version garbage collector: it turns the passive
// pruning primitives (storage.VersionChain.Prune, table.Prune) into an
// enforced subsystem. Without it every superseded version and retired
// iterative snapshot leaks for the life of the process — the Hekaton-style
// chains only ever grow (paper Fig. 3).
//
// The safety contract is the watermark rule: a version may be reclaimed
// only when no active transaction can still read it, i.e. the prune
// watermark must not exceed the oldest active snapshot. The transaction
// manager's active-snapshot registry (txn.Manager.SafeWatermark) is the
// single source of that bound, and the Reclaimer enforces it by clamping
// every requested watermark — callers cannot over-prune even by mistake.
package gc

import (
	"sync/atomic"
	"time"

	"db4ml/internal/obs"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/trace"
	"db4ml/internal/txn"
)

// Reclaimer prunes dead row versions from a set of tables, bounded by the
// transaction manager's safe watermark. It holds no locks of its own:
// chain surgery is lock-free (atomic prev cuts), the table set is
// re-snapshotted every pass, and concurrent readers/writers are never
// stalled. Run it from a background goroutine (exec.Pool.Maintain via
// db4ml.WithVersionGC) or drive passes manually with Pass.
type Reclaimer struct {
	mgr    *txn.Manager
	tables func() []*table.Table // fresh table-set snapshot per pass

	// Telemetry, all optional (nil = off). The observer is charged on
	// worker 0: GC is engine-level, not worker-level, work.
	observer *obs.Observer
	tracer   *trace.Tracer

	passes atomic.Uint64
	pruned atomic.Uint64
}

// New builds a reclaimer over the tables returned by the tables func,
// which is called once per pass so tables created after the reclaimer
// starts are picked up automatically.
func New(mgr *txn.Manager, tables func() []*table.Table) *Reclaimer {
	return &Reclaimer{mgr: mgr, tables: tables}
}

// SetObserver attaches a telemetry observer recording VersionsPruned,
// GCPasses, and the GCPause histogram.
func (r *Reclaimer) SetObserver(o *obs.Observer) { r.observer = o }

// SetTracer attaches a tracer recording one KindGC instant per pass (Arg =
// versions pruned).
func (r *Reclaimer) SetTracer(t *trace.Tracer) { r.tracer = t }

// PassStats describes one completed reclaimer pass.
type PassStats struct {
	// Watermark is the timestamp the pass pruned below — the manager's
	// SafeWatermark at pass start (or the caller's request, clamped to it).
	Watermark storage.Timestamp
	// Pruned is the number of versions reclaimed.
	Pruned int
	// Tables is the number of tables swept.
	Tables int
	// Pause is the pass's wall-clock duration. The pass runs concurrently
	// with workers, so this is background cost, not a stop-the-world pause.
	Pause time.Duration
}

// Pass prunes every table below the manager's current safe watermark and
// returns what it did.
func (r *Reclaimer) Pass() PassStats {
	return r.PruneAt(storage.InfTS)
}

// PruneAt prunes every table below min(watermark, SafeWatermark): the
// registry is the single source of truth, so a watermark above the oldest
// active snapshot is clamped rather than honored — the caller can narrow a
// pass but never widen it past safety.
func (r *Reclaimer) PruneAt(watermark storage.Timestamp) PassStats {
	if safe := r.mgr.SafeWatermark(); watermark > safe {
		watermark = safe
	}
	start := time.Now()
	st := PassStats{Watermark: watermark}
	for _, t := range r.tables() {
		st.Pruned += t.Prune(watermark)
		st.Tables++
	}
	st.Pause = time.Since(start)
	r.passes.Add(1)
	r.pruned.Add(uint64(st.Pruned))
	if o := r.observer; o != nil {
		o.Inc(0, obs.GCPasses)
		o.Add(0, obs.VersionsPruned, uint64(st.Pruned))
		o.RecordLatency(0, obs.GCPauseLatency, int64(st.Pause))
	}
	if tr := r.tracer; tr != nil {
		tr.Instant(0, trace.KindGC, 0, int64(st.Pruned))
	}
	return st
}

// Passes returns the number of completed passes.
func (r *Reclaimer) Passes() uint64 { return r.passes.Load() }

// TotalPruned returns the number of versions reclaimed across all passes.
func (r *Reclaimer) TotalPruned() uint64 { return r.pruned.Load() }

package kmeans

import (
	"testing"

	"db4ml/internal/exec"
	"db4ml/internal/txn"
)

func TestGaussianMixtureShapes(t *testing.T) {
	pts, labels, centers := GaussianMixture(500, 3, 4, 0.5, 1)
	if len(pts) != 500 || len(labels) != 500 || len(centers) != 3 {
		t.Fatalf("shapes: %d/%d/%d", len(pts), len(labels), len(centers))
	}
	for _, p := range pts {
		if len(p) != 4 {
			t.Fatal("point dim wrong")
		}
	}
	for _, l := range labels {
		if l < 0 || l >= 3 {
			t.Fatal("label out of range")
		}
	}
	// Determinism.
	pts2, _, _ := GaussianMixture(500, 3, 4, 0.5, 1)
	if pts[0][0] != pts2[0][0] {
		t.Fatal("not deterministic")
	}
}

func TestLoadTablesShape(t *testing.T) {
	pts, _, _ := GaussianMixture(100, 4, 3, 0.3, 2)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tables.Points.NumRows() != 100 || tables.Centroids.NumRows() != 4 {
		t.Fatalf("rows: %d/%d", tables.Points.NumRows(), tables.Centroids.NumRows())
	}
	if tables.Dim != 3 || tables.K != 4 {
		t.Fatalf("dims: %d/%d", tables.Dim, tables.K)
	}
	// Centroids seeded from the first k points.
	p, _ := tables.Centroids.Read(0, mgr.Stable())
	if p.Float64(colX0) != pts[0][0] {
		t.Fatal("centroid 0 not seeded from point 0")
	}
}

func TestLoadTablesErrors(t *testing.T) {
	mgr := txn.NewManager()
	if _, err := LoadTables(mgr, nil, 2); err == nil {
		t.Fatal("empty points accepted")
	}
	pts, _, _ := GaussianMixture(10, 2, 2, 0.1, 3)
	if _, err := LoadTables(mgr, pts, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := LoadTables(mgr, pts, 11); err == nil {
		t.Fatal("k>n accepted")
	}
	bad := [][]float64{{1, 2}, {1}}
	if _, err := LoadTables(mgr, bad, 1); err == nil {
		t.Fatal("ragged points accepted")
	}
}

func TestClusteringRecoversWellSeparatedClusters(t *testing.T) {
	const k = 3
	pts, trueLabels, _ := GaussianMixture(1200, k, 2, 0.4, 7)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, pts, k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mgr, tables, Config{
		Exec:   exec.Config{Workers: 4},
		Epochs: 8, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Well-separated clusters: assignments must be pure — every true
	// cluster maps to exactly one learned centroid.
	mapTo := map[int]int{}
	agree := 0
	for i, l := range trueLabels {
		got := res.Assign[i]
		if want, ok := mapTo[l]; !ok {
			mapTo[l] = got
			agree++
		} else if want == got {
			agree++
		}
	}
	purity := float64(agree) / float64(len(pts))
	if purity < 0.97 {
		t.Fatalf("purity = %v", purity)
	}
	if len(mapTo) != k {
		t.Fatalf("true clusters map to %d centroids", len(mapTo))
	}
	if res.Inertia <= 0 {
		t.Fatal("inertia not computed")
	}
}

func TestInertiaImprovesOverSeeding(t *testing.T) {
	pts, _, _ := GaussianMixture(800, 4, 3, 0.5, 11)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	short, err := Run(mgr, tables, Config{Exec: exec.Config{Workers: 2}, Epochs: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh tables for the longer run (the first uber committed).
	mgr2 := txn.NewManager()
	tables2, err := LoadTables(mgr2, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Run(mgr2, tables2, Config{Exec: exec.Config{Workers: 2}, Epochs: 12, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if long.Inertia > short.Inertia*1.05 {
		t.Fatalf("more epochs worsened inertia: %v -> %v", short.Inertia, long.Inertia)
	}
}

func TestResultCommitted(t *testing.T) {
	pts, _, _ := GaussianMixture(200, 2, 2, 0.3, 5)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mgr, tables, Config{Exec: exec.Config{Workers: 2}, Epochs: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := tables.Centroids.Read(0, res.CommitTS)
	if !ok {
		t.Fatal("centroid unreadable at commit ts")
	}
	if p.Float64(colX0) != res.Centroids[0][0] {
		t.Fatal("committed centroid differs from result")
	}
}

// Package kmeans implements mini-batch k-means clustering as user-defined
// iterative transactions — a third use case demonstrating that DB4ML's
// programming model covers more than the paper's two examples (Section 2.3
// claims "a wide class of ML algorithms"; unsupervised clustering is one
// of the classes its introduction names).
//
// Data model: a Point table (PointID, X0..Xd-1) and a Centroid table
// (CentroidID, Count, X0..Xd-1). One sub-transaction per worker owns a
// partition of the points; each Execute pass assigns every point of a
// random mini-batch to its nearest centroid and moves that centroid toward
// the point with the standard 1/count learning rate (Bottou & Bengio's
// online k-means). Centroids are multi-writer state, updated through the
// asynchronous isolation level exactly like Hogwild!'s parameter vector.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// Centroid table column layout: CentroidID, Count, then Dim coordinates.
const (
	ColCentroidID = 0
	ColCount      = 1
	colX0         = 2
)

// Tables bundles the k-means data model.
type Tables struct {
	Points    *table.Table
	Centroids *table.Table
	// Data holds the raw coordinates referenced by PointID (the same
	// opaque-payload indirection the SGD use case uses for features).
	Data [][]float64
	Dim  int
	K    int
}

// LoadTables materializes points and k centroids. Centroids are seeded
// with the first k points (deterministic, standard Forgy-on-shuffled-data
// when the caller shuffles).
func LoadTables(mgr *txn.Manager, points [][]float64, k int) (*Tables, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if k < 1 || k > len(points) {
		return nil, fmt.Errorf("kmeans: k=%d out of range", k)
	}
	dim := len(points[0])
	ptCols := make([]table.Column, dim+1)
	ptCols[0] = table.Column{Name: "PointID", Type: table.Int64}
	for d := 0; d < dim; d++ {
		ptCols[d+1] = table.Column{Name: fmt.Sprintf("X%d", d), Type: table.Float64}
	}
	ptSchema, err := table.NewSchema(ptCols...)
	if err != nil {
		return nil, err
	}
	cCols := make([]table.Column, dim+2)
	cCols[0] = table.Column{Name: "CentroidID", Type: table.Int64}
	cCols[1] = table.Column{Name: "Count", Type: table.Float64}
	for d := 0; d < dim; d++ {
		cCols[d+2] = table.Column{Name: fmt.Sprintf("X%d", d), Type: table.Float64}
	}
	cSchema, err := table.NewSchema(cCols...)
	if err != nil {
		return nil, err
	}
	pts := table.New("Point", ptSchema)
	cts := table.New("Centroid", cSchema)
	var loadErr error
	mgr.PublishAt(func(ts storage.Timestamp) {
		p := ptSchema.NewPayload()
		for i, x := range points {
			if len(x) != dim {
				loadErr = fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(x), dim)
				return
			}
			p.SetInt64(0, int64(i))
			for d, v := range x {
				p.SetFloat64(d+1, v)
			}
			if _, err := pts.Append(ts, p); err != nil {
				loadErr = err
				return
			}
		}
		c := cSchema.NewPayload()
		for j := 0; j < k; j++ {
			c.SetInt64(ColCentroidID, int64(j))
			c.SetFloat64(ColCount, 1)
			for d, v := range points[j] {
				c.SetFloat64(colX0+d, v)
			}
			if _, err := cts.Append(ts, c); err != nil {
				loadErr = err
				return
			}
		}
	})
	if loadErr != nil {
		return nil, loadErr
	}
	return &Tables{Points: pts, Centroids: cts, Data: points, Dim: dim, K: k}, nil
}

// Config tunes one k-means uber-transaction.
type Config struct {
	Exec exec.Config
	// Epochs is the number of passes each sub-transaction makes over its
	// partition; defaults to 10.
	Epochs int
	// BatchFraction is the share of a sub-transaction's points sampled
	// per epoch; defaults to 1 (full pass in random order).
	BatchFraction float64
	Seed          int64
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.BatchFraction <= 0 || c.BatchFraction > 1 {
		c.BatchFraction = 1
	}
	return c
}

// Result of a k-means run.
type Result struct {
	// Centroids are the committed cluster centers.
	Centroids [][]float64
	// Assign maps each point to its nearest final centroid.
	Assign []int
	// Inertia is the final sum of squared distances to assigned centers.
	Inertia float64
	Stats   exec.Stats
	// CommitTS is the uber-transaction's commit timestamp.
	CommitTS storage.Timestamp
}

// sub processes one partition of the points (tx_state: cached centroid
// record handles and its point ids).
type sub struct {
	tables *Tables
	points []int // point ids in this partition
	epochs int
	frac   float64
	seed   int64

	recs []*storage.IterativeRecord
	rng  *rand.Rand
	x    []float64 // scratch centroid coordinates
}

func (s *sub) Begin(ctx *itx.Ctx) {
	s.recs = make([]*storage.IterativeRecord, s.tables.K)
	for j := range s.recs {
		s.recs[j] = s.tables.Centroids.IterRecord(table.RowID(j))
	}
	s.rng = rand.New(rand.NewSource(s.seed))
	s.x = make([]float64, s.tables.Dim)
}

func (s *sub) Execute(ctx *itx.Ctx) {
	n := int(float64(len(s.points)) * s.frac)
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		p := s.tables.Data[s.points[s.rng.Intn(len(s.points))]]
		best, bestDist := 0, math.Inf(1)
		for j, rec := range s.recs {
			dist := 0.0
			for d := 0; d < s.tables.Dim; d++ {
				delta := p[d] - math.Float64frombits(ctx.ReadCol(rec, colX0+d))
				dist += delta * delta
			}
			if dist < bestDist {
				best, bestDist = j, dist
			}
		}
		rec := s.recs[best]
		count := math.Float64frombits(ctx.ReadCol(rec, ColCount)) + 1
		ctx.WriteCol(rec, ColCount, math.Float64bits(count))
		eta := 1 / count
		for d := 0; d < s.tables.Dim; d++ {
			cur := math.Float64frombits(ctx.ReadCol(rec, colX0+d))
			ctx.WriteCol(rec, colX0+d, math.Float64bits(cur+eta*(p[d]-cur)))
		}
	}
}

func (s *sub) Validate(ctx *itx.Ctx) itx.Action {
	if int(ctx.Iteration())+1 >= s.epochs {
		return itx.Done
	}
	return itx.Commit
}

// Run executes mini-batch k-means as one uber-transaction and commits the
// centroids.
func Run(mgr *txn.Manager, tables *Tables, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	iso := isolation.Options{Level: isolation.Asynchronous}
	u, err := itx.BeginUber(mgr, iso)
	if err != nil {
		return Result{}, err
	}
	if err := u.Attach(tables.Centroids, nil, u.DefaultVersions()); err != nil {
		_ = u.Abort()
		return Result{}, err
	}
	workers := cfg.Exec.Resolved().Workers
	if workers > len(tables.Data) {
		workers = len(tables.Data)
	}
	per := len(tables.Data) / workers
	subs := make([]itx.Sub, workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if w == workers-1 {
			hi = len(tables.Data)
		}
		ids := make([]int, hi-lo)
		for i := range ids {
			ids[i] = lo + i
		}
		subs[w] = &sub{
			tables: tables, points: ids,
			epochs: cfg.Epochs, frac: cfg.BatchFraction, seed: cfg.Seed + int64(w),
		}
	}
	engine := exec.New(cfg.Exec, iso)
	stats := engine.Run(subs, nil)
	ts, err := u.Commit()
	if err != nil {
		return Result{}, err
	}
	return finish(tables, stats, ts)
}

func finish(tables *Tables, stats exec.Stats, ts storage.Timestamp) (Result, error) {
	res := Result{Stats: stats, CommitTS: ts}
	res.Centroids = make([][]float64, tables.K)
	for j := 0; j < tables.K; j++ {
		p, ok := tables.Centroids.Read(table.RowID(j), ts)
		if !ok {
			return Result{}, fmt.Errorf("kmeans: centroid %d unreadable after commit", j)
		}
		c := make([]float64, tables.Dim)
		for d := range c {
			c[d] = p.Float64(colX0 + d)
		}
		res.Centroids[j] = c
	}
	res.Assign = make([]int, len(tables.Data))
	for i, x := range tables.Data {
		best, bestDist := 0, math.Inf(1)
		for j, c := range res.Centroids {
			dist := 0.0
			for d := range c {
				delta := x[d] - c[d]
				dist += delta * delta
			}
			if dist < bestDist {
				best, bestDist = j, dist
			}
		}
		res.Assign[i] = best
		res.Inertia += bestDist
	}
	return res, nil
}

// GaussianMixture generates n points from k well-separated spherical
// Gaussians in dim dimensions, returning the points, the true component of
// each point, and the true centers. Deterministic for a given seed.
func GaussianMixture(n, k, dim int, spread float64, seed int64) (points [][]float64, labels []int, centers [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	centers = make([][]float64, k)
	for j := range centers {
		c := make([]float64, dim)
		for d := range c {
			c[d] = float64(j*10) + rng.Float64() // separated along every axis
		}
		centers[j] = c
	}
	points = make([][]float64, n)
	labels = make([]int, n)
	for i := range points {
		j := rng.Intn(k)
		labels[i] = j
		p := make([]float64, dim)
		for d := range p {
			p[d] = centers[j][d] + rng.NormFloat64()*spread
		}
		points[i] = p
	}
	return points, labels, centers
}

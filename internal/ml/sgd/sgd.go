// Package sgd implements the paper's second use case (Section 6.2):
// Hogwild!-style stochastic gradient descent for a linear SVM as iterative
// transactions inside DB4ML, plus the Hogwild++ NUMA optimizations.
//
// Data model (Figure 7): the parameter vector is the
// GlobalParameter(ParamID, Value) ML-table, one row per coordinate; the
// training set is the Sample(RandID, SampleIdx) ML-table, pre-shuffled,
// with an index on RandID for random draws. Feature vectors themselves are
// an opaque payload referenced by SampleIdx — the paper stores them in a
// vector-valued column X, which this repo's fixed-width tables represent
// by indirection (see DESIGN.md).
//
// The uber-transaction (Algorithm 3) spawns one sub-transaction per worker
// core, each owning a key range of the shuffled Sample table; execute()
// (Algorithm 4) runs one epoch of random draws from that range, writing
// model deltas through the asynchronous isolation level so updates are
// visible immediately, exactly like Hogwild!.
//
// The NUMA mode ports Hogwild++: one replica of the parameter table per
// NUMA region, a Token ML-table whose single row says which region may
// mix next, and ring mixing of adjacent replicas — all expressed with the
// same iterative-transaction primitives.
package sgd

import (
	"fmt"
	"math"
	"math/rand"

	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/storage"
	"db4ml/internal/svm"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// Column layout.
const (
	ColParamID = 0
	ColValue   = 1

	ColRandID    = 0
	ColSampleIdx = 1
)

// Tables bundles the SGD data model.
type Tables struct {
	// Params is the GlobalParameter table (ParamID, Value).
	Params *table.Table
	// Samples is the Sample table (RandID, SampleIdx), pre-shuffled.
	Samples *table.Table
	// Store holds the feature vectors referenced by SampleIdx.
	Store []svm.Sample
	// Features is the model dimensionality.
	Features int
}

// LoadTables materializes the data model: the training set is shuffled
// (the paper shuffles before the uber-transaction starts so key ranges are
// random samples), inserted with dense RandIDs, and indexed on RandID; the
// parameter table gets one zero-initialized row per feature.
func LoadTables(mgr *txn.Manager, train []svm.Sample, features int, shuffleSeed int64) (*Tables, error) {
	shuffled := append([]svm.Sample(nil), train...)
	svm.Shuffle(shuffled, shuffleSeed)

	params := table.New("GlobalParameter", table.MustSchema(
		table.Column{Name: "ParamID", Type: table.Int64},
		table.Column{Name: "Value", Type: table.Float64},
	))
	samples := table.New("Sample", table.MustSchema(
		table.Column{Name: "RandID", Type: table.Int64},
		table.Column{Name: "SampleIdx", Type: table.Int64},
	))
	var loadErr error
	mgr.PublishAt(func(ts storage.Timestamp) {
		p := params.Schema().NewPayload()
		for i := 0; i < features; i++ {
			p.SetInt64(ColParamID, int64(i))
			p.SetFloat64(ColValue, 0)
			if _, err := params.Append(ts, p); err != nil {
				loadErr = err
				return
			}
		}
		s := samples.Schema().NewPayload()
		for i := range shuffled {
			s.SetInt64(ColRandID, int64(i))
			s.SetInt64(ColSampleIdx, int64(i))
			if _, err := samples.Append(ts, s); err != nil {
				loadErr = err
				return
			}
		}
	})
	if loadErr != nil {
		return nil, loadErr
	}
	if err := samples.CreateTreeIndex("RandID"); err != nil {
		return nil, err
	}
	return &Tables{Params: params, Samples: samples, Store: shuffled, Features: features}, nil
}

// Mode selects the parameter storage layout.
type Mode int

const (
	// SharedModel is the plain Hogwild! port: one GlobalParameter table
	// updated by every sub-transaction.
	SharedModel Mode = iota
	// ReplicatedNUMA is the Hogwild++ port: one replica of the parameter
	// table per NUMA region plus token-ring mixing.
	ReplicatedNUMA
)

// Config tunes one SGD uber-transaction; zero values take the paper's
// settings (20 epochs, step 5e-2, decay 0.8, asynchronous isolation).
type Config struct {
	Exec exec.Config
	// Pool, when non-nil, runs the uber-transaction as one job on this
	// shared worker pool (alongside other concurrent jobs) instead of a
	// throwaway per-run pool; the pool then fixes workers and topology,
	// and only the per-job fields of Exec apply.
	Pool *exec.Pool
	// Isolation overrides the ML isolation level; nil keeps the paper's
	// Hogwild!-style asynchronous default. (A pointer, because the zero
	// Options value means Synchronous.) Bounded staleness turns the model
	// writes into buffered per-iteration installs with staleness-validated
	// reads — the SSP-flavoured variant.
	Isolation *isolation.Options
	Epochs    int
	StepSize  float64
	StepDecay float64
	Lambda    float64
	Mode      Mode
	// Beta is the replica mixing weight of ReplicatedNUMA mode.
	Beta float64
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.StepSize == 0 {
		c.StepSize = 5e-2
	}
	if c.StepDecay == 0 {
		c.StepDecay = 0.8
	}
	if c.Beta == 0 {
		c.Beta = 0.5
	}
	return c
}

// Result of one SGD run.
type Result struct {
	// Model is the final parameter vector (replica average in
	// ReplicatedNUMA mode), read from the committed table(s).
	Model svm.VecModel
	// Stats is the executor's account of the run.
	Stats exec.Stats
	// CommitTS is the uber-transaction's commit timestamp.
	CommitTS storage.Timestamp
}

// ctxModel adapts a cached set of parameter records to svm.Model; all
// access goes through the sub-transaction's context so the isolation level
// is enforced.
type ctxModel struct {
	ctx  *itx.Ctx
	recs []*storage.IterativeRecord
}

func (m *ctxModel) Get(i int32) float64 {
	return math.Float64frombits(m.ctx.ReadCol(m.recs[i], ColValue))
}

func (m *ctxModel) Add(i int32, delta float64) {
	v := m.Get(i)
	m.ctx.WriteCol(m.recs[i], ColValue, math.Float64bits(v+delta))
}

// sub is the iterative sub-transaction of Algorithm 4. Its tx_state caches
// the key range, hyperparameters, and the parameter record handles.
type sub struct {
	tables  *Tables
	replica *replicaSet // non-nil in ReplicatedNUMA mode
	region  int

	lowKey, highKey int64 // inclusive range of RandIDs
	snapshot        storage.Timestamp
	epochs          int
	stepSize        float64
	stepDecay       float64
	lambda          float64
	seed            int64
	beta            float64

	// tx_state built in Begin.
	model   ctxModel
	rng     *rand.Rand
	gamma   float64
	mixer   bool // first sub of its region mixes on token receipt
	rowOf   []table.RowID
	sampler func() svm.Sample
}

func (s *sub) Begin(ctx *itx.Ctx) {
	var params *table.Table
	if s.replica != nil {
		params = s.replica.tables[s.region]
	} else {
		params = s.tables.Params
	}
	recs := make([]*storage.IterativeRecord, s.tables.Features)
	for i := range recs {
		recs[i] = params.IterRecord(table.RowID(i))
	}
	s.model = ctxModel{ctx: ctx, recs: recs}
	s.rng = rand.New(rand.NewSource(s.seed))
	s.gamma = s.stepSize

	// Resolve the key range to sample rows once, via the RandID index —
	// the table.getTuple(rid) access path of Algorithm 4.
	idx := s.tables.Samples.TreeIndex("RandID")
	s.rowOf = make([]table.RowID, 0, s.highKey-s.lowKey+1)
	idx.Range(s.lowKey, s.highKey, func(_ int64, row uint64) bool {
		s.rowOf = append(s.rowOf, table.RowID(row))
		return true
	})
	idxCol := s.tables.Samples.Schema().MustCol("SampleIdx")
	s.sampler = func() svm.Sample {
		row := s.rowOf[s.rng.Intn(len(s.rowOf))]
		p, ok := s.tables.Samples.Read(row, s.snapshot)
		if !ok {
			panic(fmt.Sprintf("sgd: sample row %d invisible at uber snapshot %d", row, s.snapshot))
		}
		return s.tables.Store[p.Int64(idxCol)]
	}
}

func (s *sub) Execute(ctx *itx.Ctx) {
	s.model.ctx = ctx
	for i := 0; i < len(s.rowOf); i++ {
		sample := s.sampler()
		svm.Step(&s.model, sample, s.gamma, s.lambda)
	}
	s.gamma *= s.stepDecay
	if s.replica != nil && s.mixer {
		s.replica.maybeMix(ctx, s.region, s.beta)
	}
}

func (s *sub) Validate(ctx *itx.Ctx) itx.Action {
	if int(ctx.Iteration())+1 >= s.epochs {
		return itx.Done
	}
	return itx.Commit
}

// BuildSubs constructs the shared-model sub-transactions of Algorithm 3 at
// snapshot ts: nSubs subs (clamped to the training-set size), each owning a
// contiguous key range of the shuffled Sample table and seeded
// cfg.Seed+i. It is exported so external drivers — the sharded facade in
// particular — run the byte-identical bodies Run would, which makes
// "distributed SGD matches single-kernel SGD" checkable rather than
// approximate. SharedModel mode only; ReplicatedNUMA subs need the replica
// set Run owns.
func BuildSubs(tables *Tables, ts storage.Timestamp, nSubs int, cfg Config) ([]itx.Sub, error) {
	cfg = cfg.withDefaults()
	rows := len(tables.Store)
	if rows == 0 {
		return nil, fmt.Errorf("sgd: empty training set")
	}
	if nSubs > rows {
		nSubs = rows
	}
	if nSubs <= 0 {
		return nil, fmt.Errorf("sgd: %d sub-transactions requested", nSubs)
	}
	per := rows / nSubs
	subs := make([]itx.Sub, nSubs)
	for i := 0; i < nSubs; i++ {
		low := int64(i * per)
		high := low + int64(per) - 1
		if i == nSubs-1 {
			high = int64(rows - 1)
		}
		subs[i] = &sub{
			tables: tables,
			lowKey: low, highKey: high, snapshot: ts,
			epochs: cfg.Epochs, stepSize: cfg.StepSize, stepDecay: cfg.StepDecay,
			lambda: cfg.Lambda, seed: cfg.Seed + int64(i), beta: cfg.Beta,
		}
	}
	return subs, nil
}

// Run executes SGD as one uber-transaction over tables and commits the
// trained model.
func Run(mgr *txn.Manager, tables *Tables, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	iso := isolation.Options{Level: isolation.Asynchronous}
	if cfg.Isolation != nil {
		iso = *cfg.Isolation
	}
	resolved := cfg.Exec.Resolved()
	topo := resolved.Topology
	workers := resolved.Workers
	if cfg.Pool != nil {
		topo = cfg.Pool.Topology()
		workers = cfg.Pool.Workers()
	}
	regions := topo.Regions

	// Replica tables must exist before the uber-transaction fixes its
	// snapshot, or their rows would be invisible to StartIterative.
	var rs *replicaSet
	var err error
	if cfg.Mode == ReplicatedNUMA {
		rs, err = newReplicaSet(mgr, tables, regions)
		if err != nil {
			return Result{}, err
		}
	}
	u, err := itx.BeginUber(mgr, iso)
	if err != nil {
		return Result{}, err
	}
	if rs != nil {
		if err := rs.attach(u); err != nil {
			_ = u.Abort()
			return Result{}, err
		}
	} else {
		if err := u.Attach(tables.Params, nil, u.DefaultVersions()); err != nil {
			_ = u.Abort()
			return Result{}, err
		}
	}

	// One sub-transaction per worker core (Algorithm 3), each owning a
	// contiguous key range of the shuffled Sample table.
	nSubs := workers
	rows := len(tables.Store)
	if nSubs > rows {
		nSubs = rows
	}
	if nSubs == 0 {
		_ = u.Abort()
		return Result{}, fmt.Errorf("sgd: empty training set")
	}
	per := rows / nSubs
	subs := make([]itx.Sub, nSubs)
	seenRegion := make(map[int]bool)
	for i := 0; i < nSubs; i++ {
		low := int64(i * per)
		high := low + int64(per) - 1
		if i == nSubs-1 {
			high = int64(rows - 1)
		}
		region := topo.RegionOf(i)
		subs[i] = &sub{
			tables: tables, replica: rs, region: region,
			lowKey: low, highKey: high, snapshot: u.Snapshot(),
			epochs: cfg.Epochs, stepSize: cfg.StepSize, stepDecay: cfg.StepDecay,
			lambda: cfg.Lambda, seed: cfg.Seed + int64(i), beta: cfg.Beta,
			mixer: !seenRegion[region],
		}
		seenRegion[region] = true
	}
	stats, err := exec.RunOn(cfg.Pool, cfg.Exec, iso, subs, func(i int) int { return topo.RegionOf(i) })
	if err != nil {
		_ = u.Abort()
		return Result{}, err
	}

	ts, err := u.Commit()
	if err != nil {
		return Result{}, err
	}
	model, err := finalModel(tables, rs, ts)
	if err != nil {
		return Result{}, err
	}
	return Result{Model: model, Stats: stats, CommitTS: ts}, nil
}

// finalModel reads the committed parameter table(s); in replicated mode it
// averages the replicas, like Hogwild++'s final model.
func finalModel(tables *Tables, rs *replicaSet, ts storage.Timestamp) (svm.VecModel, error) {
	model := make(svm.VecModel, tables.Features)
	if rs == nil {
		for i := 0; i < tables.Features; i++ {
			p, ok := tables.Params.Read(table.RowID(i), ts)
			if !ok {
				return nil, fmt.Errorf("sgd: parameter %d unreadable after commit", i)
			}
			model[i] = p.Float64(ColValue)
		}
		return model, nil
	}
	for _, rep := range rs.tables {
		for i := 0; i < tables.Features; i++ {
			p, ok := rep.Read(table.RowID(i), ts)
			if !ok {
				return nil, fmt.Errorf("sgd: replica parameter %d unreadable", i)
			}
			model[i] += p.Float64(ColValue)
		}
	}
	for i := range model {
		model[i] /= float64(len(rs.tables))
	}
	return model, nil
}

package sgd

import (
	"fmt"
	"math"

	"db4ml/internal/itx"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// replicaSet is the Hogwild++ port's storage: one replica of the
// GlobalParameter table per NUMA region plus a Token table whose single
// row names the region allowed to mix next. The paper mimics Hogwild++'s
// std::atomic token with "an additional relation where each worker has a
// separate row" — here the token relation is one row updated through the
// same iterative-record primitives as the model itself.
type replicaSet struct {
	tables   []*table.Table
	tokenTbl *table.Table
	features int
	recs     [][]*storage.IterativeRecord // [region][param]
	token    *storage.IterativeRecord
}

// newReplicaSet loads one replica of the parameter table per region plus
// the Token relation. Call before BeginUber so the uber-transaction's
// snapshot includes these rows; attach wires them to the uber-transaction.
func newReplicaSet(mgr *txn.Manager, base *Tables, regions int) (*replicaSet, error) {
	rs := &replicaSet{features: base.Features}
	var loadErr error
	reps := make([]*table.Table, regions)
	tokenTbl := table.New("Token", table.MustSchema(
		table.Column{Name: "Owner", Type: table.Int64},
	))
	mgr.PublishAt(func(ts storage.Timestamp) {
		for r := 0; r < regions; r++ {
			rep := table.New(fmt.Sprintf("GlobalParameter_%d", r), base.Params.Schema())
			p := rep.Schema().NewPayload()
			for i := 0; i < base.Features; i++ {
				p.SetInt64(ColParamID, int64(i))
				p.SetFloat64(ColValue, 0)
				if _, err := rep.Append(ts, p); err != nil {
					loadErr = err
					return
				}
			}
			reps[r] = rep
		}
		tp := tokenTbl.Schema().NewPayload()
		tp.SetInt64(0, 0) // region 0 holds the token initially
		if _, err := tokenTbl.Append(ts, tp); err != nil {
			loadErr = err
		}
	})
	if loadErr != nil {
		return nil, loadErr
	}
	rs.tables = reps
	rs.tokenTbl = tokenTbl
	return rs, nil
}

// attach installs iterative records on every replica and the token
// relation, and caches the record handles the sub-transactions use.
func (rs *replicaSet) attach(u *itx.Uber) error {
	for _, rep := range rs.tables {
		if err := u.Attach(rep, nil, u.DefaultVersions()); err != nil {
			return err
		}
	}
	if err := u.Attach(rs.tokenTbl, nil, 1); err != nil {
		return err
	}
	rs.token = rs.tokenTbl.IterRecord(0)
	rs.recs = make([][]*storage.IterativeRecord, len(rs.tables))
	for r, rep := range rs.tables {
		rs.recs[r] = make([]*storage.IterativeRecord, rs.features)
		for i := range rs.recs[r] {
			rs.recs[r][i] = rep.IterRecord(table.RowID(i))
		}
	}
	return nil
}

// maybeMix checks the token relation and, if this region owns the token,
// blends its replica with the ring successor's (dst' = (1-β)dst + βsrc,
// src' = βdst + (1-β)src) and passes the token on. All accesses go through
// the context under the asynchronous level, so stores are immediate and
// lock-free like Hogwild++'s.
func (rs *replicaSet) maybeMix(ctx *itx.Ctx, region int, beta float64) {
	if len(rs.tables) < 2 {
		return
	}
	owner := int64(rs.token.LoadRelaxed(0))
	if owner != int64(region) {
		return
	}
	next := (region + 1) % len(rs.tables)
	src, dst := rs.recs[region], rs.recs[next]
	for i := range src {
		s := math.Float64frombits(ctx.ReadCol(src[i], ColValue))
		d := math.Float64frombits(ctx.ReadCol(dst[i], ColValue))
		ctx.WriteCol(dst[i], ColValue, math.Float64bits((1-beta)*d+beta*s))
		ctx.WriteCol(src[i], ColValue, math.Float64bits(beta*d+(1-beta)*s))
	}
	rs.token.StoreRelaxed(0, uint64(next))
}

package sgd

import (
	"testing"

	"db4ml/internal/exec"
	"db4ml/internal/numa"
	"db4ml/internal/svm"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

func dataset(t *testing.T) ([]svm.Sample, []svm.Sample, int) {
	t.Helper()
	const features = 30
	train, test := svm.Generate(svm.GenSpec{
		Train: 3000, Test: 600, Features: features, Density: 1, Noise: 0.05, Seed: 29,
	})
	return train, test, features
}

func TestLoadTablesShape(t *testing.T) {
	train, _, features := dataset(t)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, train, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tables.Params.NumRows() != features {
		t.Fatalf("param rows = %d", tables.Params.NumRows())
	}
	if tables.Samples.NumRows() != len(train) {
		t.Fatalf("sample rows = %d", tables.Samples.NumRows())
	}
	if tables.Samples.TreeIndex("RandID") == nil {
		t.Fatal("RandID index missing")
	}
	// Shuffled copy, not the caller's slice order.
	if &tables.Store[0] == &train[0] {
		t.Fatal("Store aliases caller slice")
	}
	// Parameters start at zero.
	p, ok := tables.Params.Read(0, mgr.Stable())
	if !ok || p.Float64(ColValue) != 0 {
		t.Fatalf("initial parameter = (%v, %v)", p, ok)
	}
}

func TestSharedModelLearns(t *testing.T) {
	train, test, features := dataset(t)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, train, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mgr, tables, Config{
		Exec:   exec.Config{Workers: 4},
		Epochs: 12, Lambda: 1e-5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := svm.Accuracy(res.Model, test); acc < 0.85 {
		t.Fatalf("test accuracy = %v", acc)
	}
	// One epoch per sub-transaction iteration: workers × epochs commits.
	if res.Stats.Commits != 4*12 {
		t.Fatalf("commits = %d, want 48", res.Stats.Commits)
	}
}

func TestReplicatedNUMALearns(t *testing.T) {
	train, test, features := dataset(t)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, train, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mgr, tables, Config{
		Exec:   exec.Config{Workers: 4, Topology: numa.NewTopology(2, 4)},
		Epochs: 12, Lambda: 1e-5, Seed: 1, Mode: ReplicatedNUMA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := svm.Accuracy(res.Model, test); acc < 0.85 {
		t.Fatalf("replicated accuracy = %v", acc)
	}
}

func TestModelInvisibleUntilCommit(t *testing.T) {
	train, _, features := dataset(t)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, train, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	preTS := mgr.Stable()
	res, err := Run(mgr, tables, Config{
		Exec: exec.Config{Workers: 2}, Epochs: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At the pre-run snapshot the parameters are still zero.
	p, ok := tables.Params.Read(0, preTS)
	if !ok || p.Float64(ColValue) != 0 {
		t.Fatalf("pre-run snapshot changed: %v", p)
	}
	// At the commit timestamp they equal the result model.
	p, _ = tables.Params.Read(0, res.CommitTS)
	if p.Float64(ColValue) != res.Model[0] {
		t.Fatalf("committed parameter %v != result %v", p.Float64(ColValue), res.Model[0])
	}
}

func TestSingleWorker(t *testing.T) {
	train, test, features := dataset(t)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, train, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mgr, tables, Config{
		Exec: exec.Config{Workers: 1}, Epochs: 12, Lambda: 1e-5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := svm.Accuracy(res.Model, test); acc < 0.85 {
		t.Fatalf("single worker accuracy = %v", acc)
	}
}

func TestEmptyTrainingSetRejected(t *testing.T) {
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(mgr, tables, Config{Exec: exec.Config{Workers: 2}}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestKeyRangesPartitionSamples(t *testing.T) {
	train, _, features := dataset(t)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, train, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Run with 3 workers; every sample row must belong to exactly one
	// sub-transaction's key range. We verify by re-deriving the ranges.
	nSubs := 3
	rows := len(tables.Store)
	per := rows / nSubs
	covered := make([]bool, rows)
	for i := 0; i < nSubs; i++ {
		low := i * per
		high := low + per - 1
		if i == nSubs-1 {
			high = rows - 1
		}
		for k := low; k <= high; k++ {
			if covered[k] {
				t.Fatalf("RandID %d in two ranges", k)
			}
			covered[k] = true
		}
	}
	for k, c := range covered {
		if !c {
			t.Fatalf("RandID %d unassigned", k)
		}
	}
}

func TestOLTPCanQueryModelAfterCommit(t *testing.T) {
	train, _, features := dataset(t)
	mgr := txn.NewManager()
	tables, err := LoadTables(mgr, train, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mgr, tables, Config{Exec: exec.Config{Workers: 2}, Epochs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tx := mgr.Begin()
	p, ok := tx.Read(tables.Params, table.RowID(0))
	if !ok {
		t.Fatal("parameter row unreadable by OLTP transaction")
	}
	if p.Float64(ColValue) != res.Model[0] {
		t.Fatalf("OLTP read %v != model %v", p.Float64(ColValue), res.Model[0])
	}
}

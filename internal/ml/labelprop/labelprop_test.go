package labelprop

import (
	"testing"

	"db4ml/internal/exec"
	"db4ml/internal/graph"
	"db4ml/internal/isolation"
	"db4ml/internal/txn"
)

// threeComponents: {0,1,2} chained, {3,4} chained, {5} isolated.
func threeComponents(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(6, []graph.Edge{{From: 2, To: 1}, {From: 1, To: 0}, {From: 4, To: 3}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRefComponents(t *testing.T) {
	g := threeComponents(t)
	ref := RefComponents(g)
	want := []int64{0, 0, 0, 3, 3, 5}
	for i := range want {
		if ref[i] != want[i] {
			t.Fatalf("ref = %v, want %v", ref, want)
		}
	}
}

func TestSyncComponentsExact(t *testing.T) {
	g := threeComponents(t)
	mgr := txn.NewManager()
	tbl, err := LoadTable(mgr, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mgr, tbl, g, Config{
		Exec:      exec.Config{Workers: 2},
		Isolation: isolation.Options{Level: isolation.Synchronous},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := RefComponents(g)
	for v := range want {
		if res.Labels[v] != want[v] {
			t.Fatalf("labels = %v, want %v", res.Labels, want)
		}
	}
	if res.Components != 3 {
		t.Fatalf("components = %d, want 3", res.Components)
	}
}

// A long path is the adversarial case for premature retirement: the
// minimum label needs n-1 rounds to reach the far end.
func TestSyncLongPathPropagation(t *testing.T) {
	const n = 64
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{From: int32(i), To: int32(i + 1)}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager()
	tbl, err := LoadTable(mgr, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mgr, tbl, g, Config{
		Exec:      exec.Config{Workers: 4},
		Isolation: isolation.Options{Level: isolation.Synchronous},
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range res.Labels {
		if l != 0 {
			t.Fatalf("node %d label %d; min label failed to traverse the path", v, l)
		}
	}
	if res.Components != 1 {
		t.Fatalf("components = %d", res.Components)
	}
	if res.Stats.Rounds < n-1 {
		t.Fatalf("rounds = %d, propagation needs at least %d", res.Stats.Rounds, n-1)
	}
}

func TestComponentsOnGeneratedGraph(t *testing.T) {
	g := graph.ErdosRenyi(300, 350, 13) // sparse: several components
	mgr := txn.NewManager()
	tbl, err := LoadTable(mgr, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mgr, tbl, g, Config{
		Exec:      exec.Config{Workers: 4},
		Isolation: isolation.Options{Level: isolation.Synchronous},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := RefComponents(g)
	for v := range want {
		if res.Labels[v] != want[v] {
			t.Fatalf("node %d: label %d, want %d", v, res.Labels[v], want[v])
		}
	}
}

func TestAsyncComponentsConverge(t *testing.T) {
	// Min-propagation is monotone, so async execution also reaches the
	// exact labeling on connected structures where every node keeps
	// iterating until quiet; verify on a modest random graph.
	g := graph.BarabasiAlbert(400, 3, 17)
	mgr := txn.NewManager()
	tbl, err := LoadTable(mgr, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(mgr, tbl, g, Config{
		Exec:      exec.Config{Workers: 4, BatchSize: 16},
		Isolation: isolation.Options{Level: isolation.Asynchronous},
	})
	if err != nil {
		t.Fatal(err)
	}
	// BA graphs are connected by construction: everything should reach 0.
	mislabeled := 0
	for _, l := range res.Labels {
		if l != 0 {
			mislabeled++
		}
	}
	if frac := float64(mislabeled) / float64(len(res.Labels)); frac > 0.05 {
		t.Fatalf("%.1f%% of nodes kept stale labels under async", frac*100)
	}
}

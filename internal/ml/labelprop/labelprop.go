// Package labelprop implements connected components via min-label
// propagation as user-defined iterative transactions — a fourth use case
// exercising the synchronous isolation level's converge-together barrier:
// a node whose label is momentarily stable must keep iterating, because a
// smaller label can still arrive through a long path. Per-node retirement
// (the default of Algorithm 2) would freeze labels too early; PageRank has
// the same structure, which is exactly why DB4ML's synchronous level
// matches Galois' global convergence (Section 7.2.1).
//
// Data model: a Node(NodeID, Label) ML-table over an undirected view of
// the graph (labels flow along both edge directions).
package labelprop

import (
	"fmt"
	"math"

	"db4ml/internal/exec"
	"db4ml/internal/graph"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// Node table column layout.
const (
	ColNodeID = 0
	ColLabel  = 1
)

// LoadTable loads the nodes with Label = NodeID.
func LoadTable(mgr *txn.Manager, g *graph.Graph) (*table.Table, error) {
	tbl := table.New("Node", table.MustSchema(
		table.Column{Name: "NodeID", Type: table.Int64},
		table.Column{Name: "Label", Type: table.Int64},
	))
	var loadErr error
	mgr.PublishAt(func(ts storage.Timestamp) {
		p := tbl.Schema().NewPayload()
		for v := 0; v < g.NumNodes(); v++ {
			p.SetInt64(ColNodeID, int64(v))
			p.SetInt64(ColLabel, int64(v))
			if _, err := tbl.Append(ts, p); err != nil {
				loadErr = err
				return
			}
		}
	})
	if loadErr != nil {
		return nil, loadErr
	}
	return tbl, nil
}

// Config tunes one components run.
type Config struct {
	Exec exec.Config
	// Isolation level; Synchronous (default) gives the exact component
	// labeling. Asynchronous usually converges too (min is monotone) and
	// is faster, but per-node retirement can freeze a label early on
	// adversarial schedules.
	Isolation isolation.Options
}

// Result of a components run.
type Result struct {
	// Labels holds the component label per node: the minimum node id
	// reachable in the undirected graph.
	Labels []int64
	// Components is the number of distinct labels.
	Components int
	Stats      exec.Stats
	CommitTS   storage.Timestamp
}

// sub propagates the minimum label over one node's undirected
// neighborhood.
type sub struct {
	tbl      *table.Table
	row      table.RowID
	nbrRows  []table.RowID
	rec      *storage.IterativeRecord
	nbrs     []*storage.IterativeRecord
	cur, old int64
	buf      storage.Payload
}

func (s *sub) Begin(ctx *itx.Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.nbrs = make([]*storage.IterativeRecord, len(s.nbrRows))
	for i, r := range s.nbrRows {
		s.nbrs[i] = s.tbl.IterRecord(r)
	}
	s.nbrRows = nil
	s.cur = int64(s.row)
	s.buf = make(storage.Payload, 2)
	s.buf.SetInt64(ColNodeID, int64(s.row))
}

func (s *sub) Execute(ctx *itx.Ctx) {
	minLabel := int64(math.MaxInt64)
	for _, rec := range s.nbrs {
		if l := int64(ctx.ReadCol(rec, ColLabel)); l < minLabel {
			minLabel = l
		}
	}
	if own := int64(ctx.ReadCol(s.rec, ColLabel)); own < minLabel {
		minLabel = own
	}
	s.old = s.cur
	s.cur = minLabel
	s.buf.SetInt64(ColLabel, minLabel)
	ctx.Write(s.rec, s.buf)
}

func (s *sub) Validate(ctx *itx.Ctx) itx.Action {
	if s.cur == s.old && ctx.Iteration() > 0 {
		return itx.Done
	}
	return itx.Commit
}

// Run computes connected components of g's undirected view as one
// uber-transaction and commits the labels.
func Run(mgr *txn.Manager, tbl *table.Table, g *graph.Graph, cfg Config) (Result, error) {
	if cfg.Isolation.Level == isolation.Synchronous {
		cfg.Exec.ConvergeTogether = true
	}
	u, err := itx.BeginUber(mgr, cfg.Isolation)
	if err != nil {
		return Result{}, err
	}
	if err := u.Attach(tbl, nil, u.DefaultVersions()); err != nil {
		_ = u.Abort()
		return Result{}, err
	}
	n := g.NumNodes()
	subs := make([]itx.Sub, n)
	for v := 0; v < n; v++ {
		// Undirected neighborhood: out- plus in-neighbors.
		outs := g.OutNeighbors(int32(v))
		ins := g.InNeighbors(int32(v))
		rows := make([]table.RowID, 0, len(outs)+len(ins))
		for _, u := range outs {
			rows = append(rows, table.RowID(u))
		}
		for _, u := range ins {
			rows = append(rows, table.RowID(u))
		}
		subs[v] = &sub{tbl: tbl, row: table.RowID(v), nbrRows: rows}
	}
	engine := exec.New(cfg.Exec, cfg.Isolation)
	stats := engine.Run(subs, nil)
	ts, err := u.Commit()
	if err != nil {
		return Result{}, err
	}
	res := Result{Stats: stats, CommitTS: ts, Labels: make([]int64, n)}
	seen := make(map[int64]bool)
	for v := 0; v < n; v++ {
		p, ok := tbl.Read(table.RowID(v), ts)
		if !ok {
			return Result{}, fmt.Errorf("labelprop: row %d unreadable after commit", v)
		}
		res.Labels[v] = p.Int64(ColLabel)
		seen[res.Labels[v]] = true
	}
	res.Components = len(seen)
	return res, nil
}

// RefComponents computes the exact component labeling (minimum reachable
// node id, undirected) with a union-find, for validating the iterative
// engine.
func RefComponents(g *graph.Graph) []int64 {
	n := g.NumNodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	for v := int32(0); int(v) < n; v++ {
		for _, u := range g.OutNeighbors(v) {
			union(v, u)
		}
	}
	out := make([]int64, n)
	// Roots chosen by union-by-min above are not guaranteed minimal after
	// path compression ordering; normalize by min per root.
	minOf := make(map[int32]int64, n)
	for v := 0; v < n; v++ {
		r := find(int32(v))
		if cur, ok := minOf[r]; !ok || int64(v) < cur {
			minOf[r] = int64(v)
		}
	}
	for v := 0; v < n; v++ {
		out[v] = minOf[find(int32(v))]
	}
	return out
}

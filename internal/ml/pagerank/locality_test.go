package pagerank

import (
	"testing"

	"db4ml/internal/exec"
	"db4ml/internal/graph"
	"db4ml/internal/isolation"
	"db4ml/internal/numa"
	"db4ml/internal/partition"
)

// ringGraph builds a directed ring: node i links to i+1. Neighbor accesses
// are maximally local under range partitioning and maximally remote under
// round-robin, which makes the locality accounting easy to verify.
func ringGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{From: int32(i), To: int32((i + 1) % n)}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func trafficFor(t *testing.T, scheme partition.Scheme) *numa.Traffic {
	t.Helper()
	g := ringGraph(t, 64)
	mgr, node, edge := load(t, g)
	var tr numa.Traffic
	_, err := Run(mgr, node, edge, Config{
		Exec: exec.Config{
			Workers:       4,
			Topology:      numa.NewTopology(4, 4),
			MaxIterations: 2,
		},
		Isolation: isolation.Options{Level: isolation.Asynchronous},
		Epsilon:   -1,
		Partition: scheme,
		Traffic:   &tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &tr
}

func TestRangePartitioningKeepsRingLocal(t *testing.T) {
	tr := trafficFor(t, partition.Range)
	if tr.Local()+tr.Remote() != 64 {
		t.Fatalf("accounted %d accesses, want 64", tr.Local()+tr.Remote())
	}
	// Ring over 4 range partitions: only the 4 boundary edges are remote.
	if tr.Remote() != 4 {
		t.Fatalf("range partitioning: %d remote accesses, want 4", tr.Remote())
	}
}

func TestRoundRobinPartitioningIsAllRemoteOnRing(t *testing.T) {
	tr := trafficFor(t, partition.RoundRobin)
	// Every ring neighbor i-1 lives in a different round-robin partition.
	if tr.Local() != 0 || tr.Remote() != 64 {
		t.Fatalf("round-robin: local=%d remote=%d, want 0/64", tr.Local(), tr.Remote())
	}
}

func TestLocalityAccountingMatchesPaperClaim(t *testing.T) {
	// The structural claim of Section 5.2: range partitioning a graph
	// with locality (here: the ring) keeps the remote fraction near the
	// partition-boundary fraction, far below round-robin's.
	rangeTr := trafficFor(t, partition.Range)
	rrTr := trafficFor(t, partition.RoundRobin)
	if rangeTr.RemoteFraction() >= rrTr.RemoteFraction() {
		t.Fatalf("range remote fraction %.2f not below round-robin %.2f",
			rangeTr.RemoteFraction(), rrTr.RemoteFraction())
	}
}

package pagerank

import (
	"testing"

	"db4ml/internal/exec"
	"db4ml/internal/graph"
	"db4ml/internal/isolation"
	"db4ml/internal/metrics"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

func load(t *testing.T, g *graph.Graph) (*txn.Manager, *table.Table, *table.Table) {
	t.Helper()
	mgr := txn.NewManager()
	node, edge, err := LoadTables(mgr, g)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, node, edge
}

func diamondGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3}, {From: 3, To: 0}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLoadTablesShape(t *testing.T) {
	g := diamondGraph(t)
	mgr, node, edge := load(t, g)
	if node.NumRows() != 4 || edge.NumRows() != 5 {
		t.Fatalf("table sizes = (%d, %d)", node.NumRows(), edge.NumRows())
	}
	p, ok := node.Read(2, mgr.Stable())
	if !ok || p.Int64(ColNodeID) != 2 || p.Float64(ColPR) != 0.25 {
		t.Fatalf("node row = (%v, %v)", p, ok)
	}
	rows, err := edge.Lookup("NID_To", 3)
	if err != nil || len(rows) != 2 {
		t.Fatalf("NID_To index lookup = (%v, %v)", rows, err)
	}
}

func TestSyncMatchesReference(t *testing.T) {
	g := diamondGraph(t)
	mgr, node, edge := load(t, g)
	want, _ := graph.PageRankRef(g, 0.85, 1e-12, 500)
	res, err := Run(mgr, node, edge, Config{
		Exec:      exec.Config{Workers: 2, BatchSize: 2},
		Isolation: isolation.Options{Level: isolation.Synchronous},
		Epsilon:   1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.MaxAbsDiff(want, res.Ranks); d > 1e-9 {
		t.Fatalf("max diff vs reference = %v (ranks %v)", d, res.Ranks)
	}
	if res.Stats.Rounds < 2 {
		t.Fatalf("rounds = %d", res.Stats.Rounds)
	}
}

func TestSyncMatchesReferenceGenerated(t *testing.T) {
	g := graph.BarabasiAlbert(800, 8, 21)
	mgr, node, edge := load(t, g)
	want, _ := graph.PageRankRef(g, 0.85, 1e-10, 300)
	res, err := Run(mgr, node, edge, Config{
		Exec:      exec.Config{Workers: 4},
		Isolation: isolation.Options{Level: isolation.Synchronous},
		Epsilon:   1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.MaxAbsDiff(want, res.Ranks); d > 1e-8 {
		t.Fatalf("max diff vs reference = %v", d)
	}
}

func TestAsyncConvergesToReferenceRanking(t *testing.T) {
	g := graph.BarabasiAlbert(600, 6, 31)
	mgr, node, edge := load(t, g)
	want, _ := graph.PageRankRef(g, 0.85, 1e-10, 300)
	res, err := Run(mgr, node, edge, Config{
		Exec:      exec.Config{Workers: 4, BatchSize: 64},
		Isolation: isolation.Options{Level: isolation.Asynchronous},
		Epsilon:   1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Asynchronous execution retires each node as soon as its own rank is
	// momentarily stable (Algorithm 2), so small deviations from the
	// exact fixpoint are expected; the ranking must still agree almost
	// everywhere.
	if acc := metrics.PairwiseAccuracy(want, res.Ranks, 0, 1); acc < 0.98 {
		t.Fatalf("pairwise accuracy vs reference = %v", acc)
	}
}

func TestBoundedStalenessConverges(t *testing.T) {
	g := graph.BarabasiAlbert(400, 6, 41)
	mgr, node, edge := load(t, g)
	want, _ := graph.PageRankRef(g, 0.85, 1e-10, 300)
	res, err := Run(mgr, node, edge, Config{
		Exec:      exec.Config{Workers: 4, BatchSize: 32},
		Isolation: isolation.Options{Level: isolation.BoundedStaleness, Staleness: 10},
		Epsilon:   1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := metrics.PairwiseAccuracy(want, res.Ranks, 0, 1); acc < 0.98 {
		t.Fatalf("pairwise accuracy = %v", acc)
	}
}

func TestGeneralMultiVersionPath(t *testing.T) {
	// Versions > 0 disables the single-writer hint and exercises the
	// seqlock multi-version storage (Figure 11's general path).
	g := graph.BarabasiAlbert(200, 5, 51)
	mgr, node, edge := load(t, g)
	want, _ := graph.PageRankRef(g, 0.85, 1e-10, 300)
	res, err := Run(mgr, node, edge, Config{
		Exec:      exec.Config{Workers: 2, BatchSize: 16},
		Isolation: isolation.Options{Level: isolation.BoundedStaleness, Staleness: 16},
		Epsilon:   1e-10,
		Versions:  18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := metrics.PairwiseAccuracy(want, res.Ranks, 0, 1); acc < 0.95 {
		t.Fatalf("pairwise accuracy = %v", acc)
	}
}

func TestFixedIterations(t *testing.T) {
	g := graph.ErdosRenyi(100, 500, 3)
	mgr, node, edge := load(t, g)
	res, err := Run(mgr, node, edge, Config{
		Exec:      exec.Config{Workers: 2, MaxIterations: 6},
		Isolation: isolation.Options{Level: isolation.Synchronous},
		Epsilon:   -1, // never converge on epsilon
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", res.Stats.Rounds)
	}
	if res.Stats.ForcedStops != 100 {
		t.Fatalf("forced stops = %d", res.Stats.ForcedStops)
	}
}

func TestResultCommittedAndVisibleToOLTP(t *testing.T) {
	g := diamondGraph(t)
	mgr, node, edge := load(t, g)
	res, err := Run(mgr, node, edge, Config{
		Exec:      exec.Config{Workers: 2},
		Isolation: isolation.Options{Level: isolation.Synchronous},
		Epsilon:   1e-10,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := mgr.Begin()
	p, ok := tx.Read(node, 3)
	if !ok {
		t.Fatal("row unreadable after ML commit")
	}
	if got := p.Float64(ColPR); got != res.Ranks[3] {
		t.Fatalf("OLTP read %v, ML result %v", got, res.Ranks[3])
	}
	// And OLTP can update the table again after the uber-transaction.
	p.SetFloat64(ColPR, 0.5)
	if err := tx.Write(node, 3, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("OLTP write after ML run failed: %v", err)
	}
}

func TestStragglerHookRuns(t *testing.T) {
	g := graph.ErdosRenyi(60, 240, 8)
	mgr, node, edge := load(t, g)
	hooks := 0
	_, err := Run(mgr, node, edge, Config{
		Exec: exec.Config{
			Workers:       1,
			MaxIterations: 3,
			IterationHook: func(worker int) { hooks++ },
		},
		Isolation: isolation.Options{Level: isolation.Asynchronous},
		Epsilon:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooks != 60*3 {
		t.Fatalf("hook ran %d times, want 180", hooks)
	}
}

// Package pagerank implements the paper's first use case (Section 6.1):
// PageRank as user-defined iterative transactions inside DB4ML. The graph
// lives in two ML-tables — Node(NodeID, PR) and Edge(NID_From, NID_To) —
// with a hash index on Edge.NID_To to retrieve a node's in-neighbors. The
// uber-transaction (Algorithm 1) spawns one iterative sub-transaction per
// node; each sub-transaction (Algorithm 2) caches its node's and
// neighbors' record handles in its tx_state and re-evaluates Equation (1)
// per iteration until its rank moves less than epsilon.
package pagerank

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"db4ml/internal/exec"
	"db4ml/internal/graph"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/numa"
	"db4ml/internal/partition"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// Column layout of the Node table.
const (
	ColNodeID = 0
	ColPR     = 1
)

// LoadTables loads g into fresh Node and Edge ML-tables, committed through
// the manager so they are immediately visible. Node RowIDs equal node ids
// (dense load); ranks are initialized to 1/N. Indexes: hash on Node.NodeID
// and on Edge.NID_To (the paper's access paths).
func LoadTables(mgr *txn.Manager, g *graph.Graph) (node, edge *table.Table, err error) {
	node = table.New("Node", table.MustSchema(
		table.Column{Name: "NodeID", Type: table.Int64},
		table.Column{Name: "PR", Type: table.Float64},
	))
	edge = table.New("Edge", table.MustSchema(
		table.Column{Name: "NID_From", Type: table.Int64},
		table.Column{Name: "NID_To", Type: table.Int64},
	))
	n := g.NumNodes()
	var loadErr error
	mgr.PublishAt(func(ts storage.Timestamp) {
		np := node.Schema().NewPayload()
		for v := 0; v < n; v++ {
			np.SetInt64(ColNodeID, int64(v))
			np.SetFloat64(ColPR, 1/float64(n))
			if _, err := node.Append(ts, np); err != nil {
				loadErr = err
				return
			}
		}
		ep := edge.Schema().NewPayload()
		for v := int32(0); int(v) < n; v++ {
			for _, to := range g.OutNeighbors(v) {
				ep.SetInt64(0, int64(v))
				ep.SetInt64(1, int64(to))
				if _, err := edge.Append(ts, ep); err != nil {
					loadErr = err
					return
				}
			}
		}
	})
	if loadErr != nil {
		return nil, nil, loadErr
	}
	if err := node.CreateHashIndex("NodeID"); err != nil {
		return nil, nil, err
	}
	if err := edge.CreateHashIndex("NID_To"); err != nil {
		return nil, nil, err
	}
	return node, edge, nil
}

// Config tunes one PageRank uber-transaction.
type Config struct {
	// Exec configures the executor (workers, topology, batch size,
	// MaxIterations cap, straggler hook).
	Exec exec.Config
	// Pool, when non-nil, runs the uber-transaction as one job on this
	// shared worker pool (alongside other concurrent jobs) instead of a
	// throwaway per-run pool; the pool then fixes workers and topology,
	// and only the per-job fields of Exec apply.
	Pool *exec.Pool
	// Isolation selects the ML isolation level. PageRank is single-writer
	// per tuple, so SingleWriterHint is forced on unless Versions
	// overrides the storage layout.
	Isolation isolation.Options
	// Damping defaults to 0.85 (the paper's choice).
	Damping float64
	// Epsilon is the per-node convergence threshold; defaults to 1e-9.
	// With exec.Config.MaxIterations set, epsilon may be 0 to run a fixed
	// number of iterations (Figures 9 and 10).
	Epsilon float64
	// Versions, when nonzero, overrides the number of snapshot slots per
	// iterative record (Figure 11 scales it 1–64). Zero uses the
	// isolation level's default.
	Versions int
	// ExecuteNanos, when non-nil, accumulates the wall-clock nanoseconds
	// spent inside Execute — the pure PageRank computation — so the
	// transaction-machinery share of a run can be derived (Figure 10(a)).
	ExecuteNanos *atomic.Int64
	// Partition selects how nodes map to NUMA regions; the default is
	// Range, the scheme the paper's baselines use.
	Partition partition.Scheme
	// Traffic, when non-nil, accounts the NUMA locality of every
	// (node, in-neighbor) access pair under the chosen partitioning —
	// each pair is dereferenced once per iteration, so the counter is the
	// per-iteration local/remote access profile.
	Traffic *numa.Traffic
}

// Result is the outcome of one PageRank run.
type Result struct {
	// Ranks holds the final PageRank per node id.
	Ranks []float64
	// Stats is the executor's account of the run.
	Stats exec.Stats
	// CommitTS is the uber-transaction's commit timestamp T_TE.
	CommitTS storage.Timestamp
}

// sub is the iterative sub-transaction of Algorithm 2. Fields are its
// tx_state: the node's own record handle, the neighbors' handles and
// out-degrees (cached once in Begin), and the current/previous rank.
type sub struct {
	node    *table.Table
	row     table.RowID
	inRows  []table.RowID
	outDegs []float64

	myRec *storage.IterativeRecord
	nRecs []*storage.IterativeRecord

	pr, oldPR     float64
	base, damping float64
	epsilon       float64
	buf           storage.Payload
	profile       *atomic.Int64
}

func (s *sub) Begin(ctx *itx.Ctx) {
	s.myRec = s.node.IterRecord(s.row)
	s.nRecs = make([]*storage.IterativeRecord, len(s.inRows))
	for i, r := range s.inRows {
		s.nRecs[i] = s.node.IterRecord(r)
	}
	s.inRows = nil // handles cached; row ids no longer needed
	s.pr = 0
	s.oldPR = 0
	s.buf = make(storage.Payload, 2)
	s.buf.SetInt64(ColNodeID, int64(s.row))
}

func (s *sub) Execute(ctx *itx.Ctx) {
	var t0 time.Time
	if s.profile != nil {
		t0 = time.Now()
		defer func() { s.profile.Add(int64(time.Since(t0))) }()
	}
	sum := 0.0
	for i, rec := range s.nRecs {
		sum += math.Float64frombits(ctx.ReadCol(rec, ColPR)) / s.outDegs[i]
	}
	s.oldPR = s.pr
	s.pr = s.base + s.damping*sum
	s.buf.SetFloat64(ColPR, s.pr)
	ctx.Write(s.myRec, s.buf)
}

func (s *sub) Validate(ctx *itx.Ctx) itx.Action {
	if d := s.pr - s.oldPR; d <= s.epsilon && d >= -s.epsilon && ctx.Iteration() > 0 {
		return itx.Done
	}
	return itx.Commit
}

// Normalized applies the config defaults Run applies before executing:
// damping/epsilon, the single-writer hint, and Galois-matching global
// convergence under the synchronous level. Exported so the plan layer's
// iterate node and Run resolve the exact same effective configuration.
func (c Config) Normalized() Config {
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.Epsilon == 0 && c.Exec.MaxIterations == 0 {
		c.Epsilon = 1e-9
	}
	// PageRank updates each tuple from exactly one sub-transaction.
	if c.Versions == 0 {
		c.Isolation.SingleWriterHint = true
	}
	// Under the synchronous level, match Galois' global convergence: a
	// node's rank can move again after a quiet round while its upstream
	// still changes, so nodes retire together at the global fixpoint
	// (Section 7.2.1: "designed ... to match Galois convergence criteria
	// and thus results in the same ranking and PageRank values").
	if c.Isolation.Level == isolation.Synchronous {
		c.Exec.ConvergeTogether = true
	}
	return c
}

// BuildSubs constructs the per-node iterative sub-transactions of
// Algorithm 1 at snapshot ts — out-degrees, in-neighbor handles, NUMA
// partitioning — returning the subs plus the region router for
// exec.RunOn. cfg must already be Normalized. It is exported so the plan
// layer's iterate node runs the byte-identical body Run would, which is
// what makes "PageRank as a plan node matches direct submission exactly"
// checkable rather than approximate.
func BuildSubs(node, edge *table.Table, ts storage.Timestamp, cfg Config) ([]itx.Sub, func(int) int, error) {
	n := node.NumRows()
	base := (1 - cfg.Damping) / float64(n)
	// Partition nodes across NUMA regions (range partitioning, like the
	// baselines) and route each sub-transaction to its region's queue.
	topo := cfg.Exec.Resolved().Topology
	if cfg.Pool != nil {
		topo = cfg.Pool.Topology()
	}
	node.SetPartitioner(partition.New(cfg.Partition, topo.Regions, uint64(n)))

	// Out-degrees, computed once by the uber-transaction at its snapshot.
	fromCol := edge.Schema().MustCol("NID_From")
	outDeg := make([]float64, n)
	edge.Scan(ts, func(_ table.RowID, p storage.Payload) bool {
		outDeg[p.Int64(fromCol)]++
		return true
	})

	subs := make([]itx.Sub, n)
	for v := 0; v < n; v++ {
		neighbors, degs, err := neighborsOf(node, edge, ts, int64(v), outDeg)
		if err != nil {
			return nil, nil, err
		}
		if cfg.Traffic != nil {
			own := node.PartitionOf(table.RowID(v))
			for _, nb := range neighbors {
				cfg.Traffic.Record(own, node.PartitionOf(nb))
			}
		}
		subs[v] = &sub{
			node: node, row: table.RowID(v),
			inRows: neighbors, outDegs: degs,
			base: base, damping: cfg.Damping, epsilon: cfg.Epsilon,
			profile: cfg.ExecuteNanos,
		}
	}
	return subs, func(i int) int { return node.PartitionOf(table.RowID(i)) }, nil
}

// Run executes PageRank as one uber-transaction over the loaded tables and
// commits the result, making it globally visible. Node RowIDs must equal
// node ids (as produced by LoadTables).
func Run(mgr *txn.Manager, node, edge *table.Table, cfg Config) (Result, error) {
	cfg = cfg.Normalized()

	u, err := itx.BeginUber(mgr, cfg.Isolation)
	if err != nil {
		return Result{}, err
	}
	versions := cfg.Versions
	if versions == 0 {
		versions = u.DefaultVersions()
	}
	if err := u.Attach(node, nil, versions); err != nil {
		return Result{}, err
	}

	n := node.NumRows()
	subs, regionOf, err := BuildSubs(node, edge, u.Snapshot(), cfg)
	if err != nil {
		_ = u.Abort()
		return Result{}, err
	}
	stats, err := exec.RunOn(cfg.Pool, cfg.Exec, cfg.Isolation, subs, regionOf)
	if err != nil {
		_ = u.Abort()
		return Result{}, err
	}

	ts, err := u.Commit()
	if err != nil {
		return Result{}, err
	}
	ranks := make([]float64, n)
	for v := 0; v < n; v++ {
		p, ok := node.Read(table.RowID(v), ts)
		if !ok {
			return Result{}, fmt.Errorf("pagerank: row %d unreadable after commit", v)
		}
		ranks[v] = p.Float64(ColPR)
	}
	return Result{Ranks: ranks, Stats: stats, CommitTS: ts}, nil
}

// neighborsOf resolves a node's in-neighbors through the Edge table's
// NID_To index — the get_neighbors step of Algorithm 1 — pairing each with
// its precomputed out-degree.
func neighborsOf(node, edge *table.Table, ts storage.Timestamp, id int64, outDeg []float64) ([]table.RowID, []float64, error) {
	edgeRows, err := edge.Lookup("NID_To", id)
	if err != nil {
		return nil, nil, err
	}
	fromCol := edge.Schema().MustCol("NID_From")
	neighbors := make([]table.RowID, 0, len(edgeRows))
	degs := make([]float64, 0, len(edgeRows))
	for _, er := range edgeRows {
		// Hot path of uber-transaction setup: read the edge tuple in
		// place instead of through the cloning Read.
		c := edge.Chain(er)
		if c == nil {
			continue
		}
		rec := c.VisibleAt(ts)
		if rec == nil {
			continue
		}
		from := rec.Payload.Int64(fromCol)
		neighbors = append(neighbors, table.RowID(from))
		degs = append(degs, outDeg[from])
	}
	return neighbors, degs, nil
}

package experiments

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"db4ml/internal/baselines/galois"
	"db4ml/internal/baselines/madlib"
	"db4ml/internal/exec"
	"db4ml/internal/graph"
	"db4ml/internal/isolation"
	"db4ml/internal/metrics"
	"db4ml/internal/ml/pagerank"
	"db4ml/internal/numa"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// prScaleDiv holds the default down-scaling of each PageRank dataset (see
// DESIGN.md: synthetic stand-ins preserve density and skew; sizes shrink
// to laptop scale). Quick mode shrinks a further 8x.
var prScaleDiv = map[string]int{
	"wikivote": 1,
	"gplus":    32,
	"patents":  512,
	"pld":      2048,
}

func prGraph(name string, quick bool) *graph.Graph {
	d, err := graph.ByName(name)
	if err != nil {
		panic(err)
	}
	div := prScaleDiv[name]
	if quick {
		div *= 8
	}
	return d.Generate(div)
}

func loadPR(g *graph.Graph) (*txn.Manager, *table.Table, *table.Table) {
	mgr := txn.NewManager()
	node, edge, err := pagerank.LoadTables(mgr, g)
	if err != nil {
		panic(err)
	}
	return mgr, node, edge
}

// timedDB4ML measures pagerank.Run alone, averaged over runs: tables are
// reloaded fresh outside the timed region (loading is not part of the
// paper's measured runtime — the data is assumed resident in the DBMS),
// while everything the uber-transaction itself does (spawning
// sub-transactions, get_neighbors via the indexes, execution, commit)
// stays inside it.
func timedDB4ML(runs int, g *graph.Graph, cfg pagerank.Config) time.Duration {
	var total time.Duration
	for r := 0; r < runs; r++ {
		mgr, node, edge := loadPR(g)
		t0 := time.Now()
		if _, err := pagerank.Run(mgr, node, edge, cfg); err != nil {
			panic(err)
		}
		total += time.Since(t0)
	}
	return total / time.Duration(runs)
}

// Fig1 reproduces Figure 1: PageRank runtime on the Wikivote graph for
// DB4ML vs Galois vs MADlib, averaged over Options.Runs (the paper
// averages 5). All three engines run the same fixed number of iterations
// so per-iteration cost is compared; their convergence equivalence is
// covered by unit tests.
func Fig1(opts Options) error {
	opts = opts.withDefaults()
	g := prGraph("wikivote", opts.Quick)
	iters := 30
	if opts.Quick {
		iters = 5
	}
	workers := runtime.GOMAXPROCS(0)

	var db4mlTime, galoisTime, madlibTime time.Duration

	db4mlTime = timedDB4ML(opts.Runs, g, pagerank.Config{
		Exec:      exec.Config{Workers: workers, MaxIterations: uint64(iters)},
		Isolation: isolation.Options{Level: isolation.Synchronous},
		Epsilon:   -1,
	})
	galoisTime = timed(opts.Runs, func() {
		galois.PageRank(g, galois.Config{Workers: workers, Epsilon: 0, MaxIters: iters})
	})
	mgr, node, edge := loadPR(g)
	madlibTime = timed(opts.Runs, func() {
		if _, _, err := madlib.PageRank(mgr, node, edge, mgr.Stable(), madlib.Config{Epsilon: 0, MaxIters: iters}); err != nil {
			panic(err)
		}
	})

	header(opts.Out, fmt.Sprintf("Figure 1: PageRank on wikivote (%d nodes, %d edges, %d iterations, %d workers, avg of %d)",
		g.NumNodes(), g.NumEdges(), iters, workers, opts.Runs))
	tw := tab(opts.Out, "system", "runtime", "vs DB4ML")
	row(tw, "DB4ML (sync)", db4mlTime, 1.0)
	row(tw, "Galois (sync pull)", galoisTime, float64(galoisTime)/float64(db4mlTime))
	row(tw, "MADlib (BSP SQL)", madlibTime, float64(madlibTime)/float64(db4mlTime))
	return tw.Flush()
}

// Table1 reproduces Table 1: the PageRank datasets — paper sizes alongside
// the generated stand-ins actually used.
func Table1(opts Options) error {
	opts = opts.withDefaults()
	header(opts.Out, "Table 1: PageRank datasets (paper vs generated stand-in)")
	tw := tab(opts.Out, "dataset", "paper nodes", "paper edges", "gen nodes", "gen edges", "gen avg-deg", "gen skew")
	for _, d := range graph.Datasets {
		if d.Name == "wikivote" {
			continue // Table 1 lists the three scalability datasets
		}
		g := prGraph(d.Name, opts.Quick)
		st := graph.Summarize(g)
		row(tw, d.Name, d.PaperNodes, d.PaperEdges, st.Nodes, st.Edges, st.AvgOutDegree, st.Skew)
	}
	return tw.Flush()
}

// Fig8 reproduces Figure 8: PageRank runtime scalability of DB4ML
// (synchronous) vs Galois across cores on gplus, patents, and pld
// stand-ins.
func Fig8(opts Options) error {
	opts = opts.withDefaults()
	datasets := []string{"gplus", "patents", "pld"}
	if opts.Quick {
		datasets = datasets[:1]
	}
	iters := 20
	if opts.Quick {
		iters = 3
	}
	header(opts.Out, fmt.Sprintf("Figure 8: PageRank runtime, 1-%d workers, %d iterations", opts.MaxWorkers, iters))
	tw := tab(opts.Out, "dataset", "workers", "DB4ML", "Galois", "DB4ML speedup", "Galois speedup")
	var dumps []func()
	sweep := opts.workerSweep()
	for _, name := range datasets {
		g := prGraph(name, opts.Quick)
		var base1, base2 time.Duration
		for _, w := range sweep {
			cfg := pagerank.Config{
				Exec:      exec.Config{Workers: w, MaxIterations: uint64(iters)},
				Isolation: isolation.Options{Level: isolation.Synchronous},
				Epsilon:   -1,
			}
			// Telemetry for the widest configuration of each dataset — the
			// one whose scheduling behavior the figure is about.
			if w == sweep[len(sweep)-1] {
				dumps = append(dumps, opts.observe(&cfg.Exec, fmt.Sprintf("fig8 %s %d workers", name, w)))
			}
			dbt := timedDB4ML(opts.Runs, g, cfg)
			gat := timed(opts.Runs, func() {
				galois.PageRank(g, galois.Config{Workers: w, Epsilon: 0, MaxIters: iters})
			})
			if w == 1 {
				base1, base2 = dbt, gat
			}
			row(tw, name, w, dbt, gat,
				float64(base1)/float64(dbt), float64(base2)/float64(gat))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, dump := range dumps {
		dump()
	}
	return nil
}

// Fig9 reproduces Figure 9: runtime and pair-wise accuracy of the three
// ML isolation levels on the gplus stand-in with a fixed number of
// iterations, with and without an injected straggler. The paper's
// straggler sleeps U(0,100ms) per iteration at full gplus scale; the sleep
// here is scaled down with the dataset (U(0,1ms)) so its relative cost is
// comparable.
func Fig9(opts Options) error {
	opts = opts.withDefaults()
	g := prGraph("gplus", opts.Quick)
	iters := uint64(36)
	if opts.Quick {
		iters = 6
	}
	// The paper uses 4 workers; never oversubscribe the host, though —
	// with more workers than cores the Go scheduler itself creates
	// stragglers (long descheduled stretches), contaminating the
	// no-straggler baseline.
	workers := 4
	if n := runtime.GOMAXPROCS(0); workers > n {
		workers = n
	}

	// Ground truth: converged synchronous ranking (the paper's baseline
	// for pair-wise accuracy).
	mgr, node, edge := loadPR(g)
	truth, err := pagerank.Run(mgr, node, edge, pagerank.Config{
		Exec:      exec.Config{Workers: workers},
		Isolation: isolation.Options{Level: isolation.Synchronous},
		Epsilon:   1e-10,
	})
	if err != nil {
		return err
	}

	type level struct {
		name string
		iso  isolation.Options
	}
	// Bounded staleness uses the SSP clock rule (isolation.ClockBound):
	// with PageRank's single writer per tuple, that is the semantics under
	// which the bound actually constrains execution — see the option's
	// documentation.
	levels := []level{
		{"sync", isolation.Options{Level: isolation.Synchronous}},
		{"bounded(S=2)", isolation.Options{Level: isolation.BoundedStaleness, Staleness: 2, ClockBound: true}},
		{"bounded(S=10)", isolation.Options{Level: isolation.BoundedStaleness, Staleness: 10, ClockBound: true}},
		{"async", isolation.Options{Level: isolation.Asynchronous}},
	}
	// The paper's straggler sleeps U(0, 100ms) per iteration on the full
	// gplus graph; scaled with the smaller stand-in, U(0, 1ms) keeps the
	// straggler's share of the runtime comparable.
	straggler := func(worker int) {
		if worker == workers-1 {
			time.Sleep(time.Duration(rngInt63n(1_000_000)))
		}
	}

	header(opts.Out, fmt.Sprintf("Figure 9: isolation levels on gplus stand-in (%d nodes, %d iterations, %d workers)",
		g.NumNodes(), iters, workers))
	tw := tab(opts.Out, "straggler", "isolation", "avg worker runtime", "rank accuracy", "pairwise accuracy")
	var dumps []func()
	for _, withStraggler := range []bool{false, true} {
		for _, lv := range levels {
			cfg := pagerank.Config{
				Exec: exec.Config{
					Workers: workers,
					// One region per worker: each worker owns its range
					// partition of the nodes, so a straggling worker's
					// partition actually lags (the paper's workers are
					// pinned to cores with partitioned data).
					Topology:      numa.NewTopology(workers, workers),
					MaxIterations: iters,
				},
				Isolation: lv.iso,
				Epsilon:   -1,
			}
			if withStraggler {
				cfg.Exec.IterationHook = straggler
			}
			dumps = append(dumps, opts.observe(&cfg.Exec,
				fmt.Sprintf("fig9 %s straggler=%v", lv.name, withStraggler)))
			mgr, node, edge := loadPR(g)
			res, err := pagerank.Run(mgr, node, edge, cfg)
			if err != nil {
				return err
			}
			pos := metrics.PositionAccuracy(truth.Ranks, res.Ranks)
			pair := metrics.PairwiseAccuracy(truth.Ranks, res.Ranks, 1<<18, 1)
			row(tw, withStraggler, lv.name, res.Stats.AvgWorkerBusy,
				fmt.Sprintf("%.1f%%", pos*100), fmt.Sprintf("%.4f", pair))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, dump := range dumps {
		dump()
	}
	return nil
}

// Fig10a reproduces Figure 10(a): the share of time spent in transaction
// machinery vs the actual PageRank computation at batch size 1 on a single
// core.
func Fig10a(opts Options) error {
	opts = opts.withDefaults()
	g := prGraph("gplus", opts.Quick)
	iters := uint64(10)
	if opts.Quick {
		iters = 3
	}
	var execNanos atomic.Int64
	mgr, node, edge := loadPR(g)
	res, err := pagerank.Run(mgr, node, edge, pagerank.Config{
		Exec:         exec.Config{Workers: 1, BatchSize: 1, MaxIterations: iters},
		Isolation:    isolation.Options{Level: isolation.Asynchronous},
		Epsilon:      -1,
		ExecuteNanos: &execNanos,
	})
	if err != nil {
		return err
	}
	// The paper measures the share of cycles inside one PageRank
	// transaction that go to transaction-related methods vs the actual
	// computation. Worker busy time covers exactly the per-transaction
	// processing (Begin/Execute/Validate/commit) and excludes queue
	// waits, so machinery = busy - execute.
	total := float64(res.Stats.AvgWorkerBusy) // 1 worker: avg == total
	compute := float64(execNanos.Load())
	if compute > total {
		compute = total
	}
	header(opts.Out, "Figure 10(a): cycle breakdown, batch size 1, 1 core (gplus stand-in)")
	tw := tab(opts.Out, "component", "share")
	row(tw, "PageRank computation", fmt.Sprintf("%.1f%%", 100*compute/total))
	row(tw, "transaction machinery", fmt.Sprintf("%.1f%%", 100*(total-compute)/total))
	return tw.Flush()
}

// Fig10b reproduces Figure 10(b): runtime vs batch size, normalized to
// batch size 256, with a fixed number of iterations.
func Fig10b(opts Options) error {
	opts = opts.withDefaults()
	datasets := []string{"gplus", "patents"}
	if opts.Quick {
		datasets = datasets[:1]
	}
	iters := uint64(36)
	if opts.Quick {
		iters = 4
	}
	batches := []int{1, 4, 16, 64, 256, 512, 1024}
	header(opts.Out, fmt.Sprintf("Figure 10(b): batch size sweep, %d iterations, %d workers (normalized to 256)", iters, opts.MaxWorkers/2))
	tw := tab(opts.Out, "dataset", "batch", "runtime", "normalized")
	for _, name := range datasets {
		g := prGraph(name, opts.Quick)
		times := make(map[int]time.Duration, len(batches))
		for _, bs := range batches {
			times[bs] = timedDB4ML(opts.Runs, g, pagerank.Config{
				Exec:      exec.Config{Workers: opts.MaxWorkers / 2, BatchSize: bs, MaxIterations: iters},
				Isolation: isolation.Options{Level: isolation.Asynchronous},
				Epsilon:   -1,
			})
		}
		for _, bs := range batches {
			row(tw, name, bs, times[bs], float64(times[bs])/float64(times[256]))
		}
	}
	return tw.Flush()
}

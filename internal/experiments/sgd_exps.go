package experiments

import (
	"fmt"
	"time"

	"db4ml/internal/baselines/hogwild"
	"db4ml/internal/baselines/hogwildpp"
	"db4ml/internal/cachesim"
	"db4ml/internal/exec"
	"db4ml/internal/ml/sgd"
	"db4ml/internal/storage"
	"db4ml/internal/svm"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// sgdScaleDiv holds the default down-scaling of each SGD dataset.
var sgdScaleDiv = map[string]int{
	"rcv1":    64,
	"susy":    512,
	"epsilon": 128,
	"news20":  16,
	"covtype": 64,
}

type sgdData struct {
	name     string
	train    []svm.Sample
	test     []svm.Sample
	features int
	lambda   float64
}

func sgdDataset(name string, quick bool) sgdData {
	d, err := svm.SGDByName(name)
	if err != nil {
		panic(err)
	}
	div := sgdScaleDiv[name]
	if quick {
		div *= 8
	}
	train, test, features := d.Generate(div)
	return sgdData{name: name, train: train, test: test, features: features, lambda: d.Lambda}
}

// Table2 reproduces Table 2: the SGD datasets — paper sizes alongside the
// generated stand-ins.
func Table2(opts Options) error {
	opts = opts.withDefaults()
	header(opts.Out, "Table 2: SGD datasets (paper vs generated stand-in)")
	tw := tab(opts.Out, "dataset", "classes", "paper train", "paper test", "paper features", "gen train", "gen test", "gen features")
	for _, d := range svm.SGDDatasets {
		data := sgdDataset(d.Name, opts.Quick)
		row(tw, d.Name, 2, d.PaperTrain, d.PaperTest, d.PaperFeatures,
			len(data.train), len(data.test), data.features)
	}
	return tw.Flush()
}

// sgdEpochs picks the epoch budget: the paper fixes 20; quick runs use 3.
func sgdEpochs(opts Options) int {
	if opts.Quick {
		return 3
	}
	return 10
}

type sgdRunResult struct {
	elapsed  time.Duration
	accuracy float64
}

func runHogwild(data sgdData, workers, epochs int) sgdRunResult {
	t0 := time.Now()
	m := hogwild.Train(data.train, data.features, hogwild.Config{
		Workers: workers, Epochs: epochs, Lambda: data.lambda, Seed: 1,
	})
	return sgdRunResult{elapsed: time.Since(t0), accuracy: svm.Accuracy(m.Snapshot(), data.test)}
}

func runHogwildPP(data sgdData, workers, epochs int) sgdRunResult {
	t0 := time.Now()
	m := hogwildpp.Train(data.train, data.features, hogwildpp.Config{
		Workers: workers, Epochs: epochs, Lambda: data.lambda, Seed: 1,
	})
	return sgdRunResult{elapsed: time.Since(t0), accuracy: svm.Accuracy(m, data.test)}
}

func runDB4ML(data sgdData, workers, epochs int) sgdRunResult {
	mgr := txn.NewManager()
	tables, err := sgd.LoadTables(mgr, data.train, data.features, 1)
	if err != nil {
		panic(err)
	}
	t0 := time.Now()
	res, err := sgd.Run(mgr, tables, sgd.Config{
		Exec:   exec.Config{Workers: workers},
		Epochs: epochs, Lambda: data.lambda, Seed: 1,
		Mode: sgd.ReplicatedNUMA,
	})
	if err != nil {
		panic(err)
	}
	return sgdRunResult{elapsed: time.Since(t0), accuracy: svm.Accuracy(res.Model, data.test)}
}

// Fig12 reproduces Figure 12: SGD runtime of Hogwild!, DB4ML and
// Hogwild++ on all five datasets at the maximum worker count.
func Fig12(opts Options) error {
	opts = opts.withDefaults()
	names := []string{"rcv1", "susy", "epsilon", "news20", "covtype"}
	if opts.Quick {
		names = []string{"covtype"}
	}
	workers := opts.MaxWorkers
	epochs := sgdEpochs(opts)
	header(opts.Out, fmt.Sprintf("Figure 12: SGD runtime, %d workers, %d epochs", workers, epochs))
	tw := tab(opts.Out, "dataset", "Hogwild!", "DB4ML", "Hogwild++", "acc HW", "acc DB4ML", "acc HW++")
	for _, name := range names {
		data := sgdDataset(name, opts.Quick)
		hw := runHogwild(data, workers, epochs)
		db := runDB4ML(data, workers, epochs)
		hpp := runHogwildPP(data, workers, epochs)
		row(tw, name, hw.elapsed, db.elapsed, hpp.elapsed, hw.accuracy, db.accuracy, hpp.accuracy)
	}
	return tw.Flush()
}

// Fig13 reproduces Figure 13: SGD scalability (runtime and accuracy)
// across worker counts on three datasets.
func Fig13(opts Options) error {
	opts = opts.withDefaults()
	names := []string{"rcv1", "epsilon", "covtype"}
	if opts.Quick {
		names = []string{"covtype"}
	}
	epochs := sgdEpochs(opts)
	header(opts.Out, fmt.Sprintf("Figure 13: SGD scalability, 1-%d workers, %d epochs", opts.MaxWorkers, epochs))
	tw := tab(opts.Out, "dataset", "workers", "Hogwild!", "DB4ML", "Hogwild++", "acc HW", "acc DB4ML", "acc HW++")
	for _, name := range names {
		data := sgdDataset(name, opts.Quick)
		for _, w := range opts.workerSweep() {
			hw := runHogwild(data, w, epochs)
			db := runDB4ML(data, w, epochs)
			hpp := runHogwildPP(data, w, epochs)
			row(tw, name, w, hw.elapsed, db.elapsed, hpp.elapsed, hw.accuracy, db.accuracy, hpp.accuracy)
		}
	}
	return tw.Flush()
}

// Fig14 reproduces Figure 14: per-sample cycles and L1 misses of DB4ML vs
// Hogwild++ in single-threaded execution, on a few-features dataset
// (covtype) and a many-features dataset (rcv1). Cycles are measured
// wall-clock; L1 misses come from replaying the model-access address
// trace through the cache simulator: Hogwild++ touches one array element
// per coordinate, DB4ML additionally touches the per-parameter record
// metadata — the version-information overhead the paper measures.
func Fig14(opts Options) error {
	opts = opts.withDefaults()
	names := []string{"covtype", "rcv1"}
	epochs := 2
	if opts.Quick {
		epochs = 1
	}
	header(opts.Out, fmt.Sprintf("Figure 14: single-thread per-sample cost, %d epochs", epochs))
	tw := tab(opts.Out, "dataset", "system", "ns/sample", "L1 miss/sample", "LLC miss/sample")
	for _, name := range names {
		data := sgdDataset(name, opts.Quick)
		samples := float64(len(data.train) * epochs)

		db := runDB4ML(data, 1, epochs)
		hpp := runHogwildPP(data, 1, epochs)

		// Address-trace replay of the model accesses of one epoch.
		dbStats := traceDB4ML(data)
		hppStats := traceArrayModel(data)

		row(tw, name, "DB4ML", float64(db.elapsed)/samples,
			float64(dbStats.L1Misses)/float64(len(data.train)),
			float64(dbStats.LLCMisses)/float64(len(data.train)))
		row(tw, name, "Hogwild++", float64(hpp.elapsed)/samples,
			float64(hppStats.L1Misses)/float64(len(data.train)),
			float64(hppStats.LLCMisses)/float64(len(data.train)))
	}
	return tw.Flush()
}

// traceDB4ML replays the model access pattern of DB4ML's SGD: every
// touched coordinate reads the parameter row's iterative record — slot
// metadata plus the value word — in a table of per-row records.
func traceDB4ML(data sgdData) cachesim.Stats {
	mgr := txn.NewManager()
	tables, err := sgd.LoadTables(mgr, data.train, data.features, 1)
	if err != nil {
		panic(err)
	}
	if err := tables.Params.StartIterative(mgr.Stable(), 1, nil); err != nil {
		panic(err)
	}
	recs := make([]*storage.IterativeRecord, data.features)
	for i := range recs {
		recs[i] = tables.Params.IterRecord(table.RowID(i))
	}
	h := cachesim.NewXeonE78830()
	for _, s := range data.train {
		traceSampleData(h, s)
		for _, idx := range s.X.Idx {
			r := recs[idx]
			h.Access(uint64(r.SlotMetaAddr(0)), 16)
			h.Access(uint64(r.SlotDataAddr(0, sgd.ColValue)), 8)
		}
	}
	return h.Stats()
}

// traceArrayModel replays Hogwild++'s model accesses: one packed array
// element per touched coordinate.
func traceArrayModel(data sgdData) cachesim.Stats {
	model := make([]float64, data.features)
	h := cachesim.NewXeonE78830()
	for _, s := range data.train {
		traceSampleData(h, s)
		for _, idx := range s.X.Idx {
			h.Access(uint64(storage.Float64SliceAddr(model, int(idx))), 8)
		}
	}
	return h.Stats()
}

// traceSampleData touches the sample's own index/value arrays — identical
// for both systems, so differences come from the model side only.
func traceSampleData(h *cachesim.Hierarchy, s svm.Sample) {
	for k := range s.X.Idx {
		h.Access(uint64(storage.Int32SliceAddr(s.X.Idx, k)), 4)
		h.Access(uint64(storage.Float64SliceAddr(s.X.Val, k)), 8)
	}
}

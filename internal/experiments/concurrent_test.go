package experiments

import (
	"sync"
	"testing"

	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/ml/pagerank"
	"db4ml/internal/ml/sgd"
	"db4ml/internal/txn"
)

// TestConcurrentJobsMatchSequentialStats is the acceptance scenario of the
// persistent engine: one pool, started once, runs an async PageRank job
// and a bounded-staleness SGD job to convergence both sequentially and
// concurrently; each job's per-job stats must match its sequential
// baseline (exactly for SGD's fixed epoch budget, within tolerance for
// async PageRank, whose convergence point depends on interleaving).
func TestConcurrentJobsMatchSequentialStats(t *testing.T) {
	g := prGraph("wikivote", true)
	data := sgdDataset("covtype", true)
	const prIters = 5
	const epochs = 3

	pool, err := exec.NewPool(exec.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	mgr := txn.NewManager()

	runPR := func() exec.Stats {
		node, edge, err := pagerank.LoadTables(mgr, g)
		if err != nil {
			t.Error(err)
			return exec.Stats{}
		}
		res, err := pagerank.Run(mgr, node, edge, pagerank.Config{
			Pool:      pool,
			Exec:      exec.Config{MaxIterations: prIters},
			Isolation: isolation.Options{Level: isolation.Asynchronous},
		})
		if err != nil {
			t.Error(err)
			return exec.Stats{}
		}
		return res.Stats
	}
	runSGD := func() exec.Stats {
		tables, err := sgd.LoadTables(mgr, data.train, data.features, 1)
		if err != nil {
			t.Error(err)
			return exec.Stats{}
		}
		res, err := sgd.Run(mgr, tables, sgd.Config{
			Pool:      pool,
			Isolation: &isolation.Options{Level: isolation.BoundedStaleness, Staleness: 64},
			Epochs:    epochs, Lambda: data.lambda, Seed: 1,
		})
		if err != nil {
			t.Error(err)
			return exec.Stats{}
		}
		return res.Stats
	}

	seqPR := runPR()
	seqSGD := runSGD()

	var conPR, conSGD exec.Stats
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); conPR = runPR() }()
	go func() { defer wg.Done(); conSGD = runSGD() }()
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// SGD runs a fixed number of epochs per sub-transaction: identical
	// commit counts, no forced stops, in both modes.
	if conSGD.Commits != seqSGD.Commits {
		t.Fatalf("sgd commits: concurrent %d != sequential %d", conSGD.Commits, seqSGD.Commits)
	}
	if seqSGD.ForcedStops != 0 || conSGD.ForcedStops != 0 {
		t.Fatalf("sgd forced stops: seq %d con %d", seqSGD.ForcedStops, conSGD.ForcedStops)
	}

	// Async PageRank retires each node at its own fixpoint; interleaving
	// shifts exactly when a node's rank stops moving, so commit counts are
	// equal within tolerance, not bit-identical.
	lo, hi := seqPR.Commits*9/10, seqPR.Commits*11/10
	if conPR.Commits < lo || conPR.Commits > hi {
		t.Fatalf("pagerank commits diverged: concurrent %d vs sequential %d (tolerance ±10%%)",
			conPR.Commits, seqPR.Commits)
	}
}

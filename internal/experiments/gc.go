package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"db4ml"
	"db4ml/internal/storage"
	"db4ml/internal/table"
)

// gcSoakSub counts its row up by one per committed iteration until the
// run's target — the same minimal counter workload the facade tests use,
// so every ML run publishes exactly one committed version per attached row.
type gcSoakSub struct {
	tbl    *db4ml.Table
	row    db4ml.RowID
	target float64
	rec    *storage.IterativeRecord
	buf    db4ml.Payload
	cur    float64
}

func (s *gcSoakSub) Begin(ctx *db4ml.Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(db4ml.Payload, 2)
}

func (s *gcSoakSub) Execute(ctx *db4ml.Ctx) {
	ctx.Read(s.rec, s.buf)
	s.cur = s.buf.Float64(1) + 1
	s.buf.SetFloat64(1, s.cur)
	ctx.Write(s.rec, s.buf)
}

func (s *gcSoakSub) Validate(ctx *db4ml.Ctx) db4ml.Action {
	if s.cur >= s.target {
		return db4ml.Done
	}
	return db4ml.Commit
}

// GCConfigResult is one soak configuration's trajectory in BENCH_GC.json.
type GCConfigResult struct {
	GC bool `json:"gc"`
	// RetainedStart/End bracket the leak: versions reachable in the
	// table's chains after the first and after the last ML run.
	RetainedStart int `json:"retained_start"`
	RetainedEnd   int `json:"retained_end"`
	// RetainedPeak is the soak-wide maximum — the number a capacity
	// planner would have to provision for.
	RetainedPeak int `json:"retained_peak"`
	// Retained is the full per-run series (one sample after each run).
	Retained []int `json:"retained"`
	// AttemptP99Nanos is the iteration-attempt p99 across the whole soak,
	// from the run observer's internal/obs histogram.
	AttemptP99Nanos int64  `json:"attempt_p99_ns"`
	Commits         uint64 `json:"commits"`
	GCPasses        uint64 `json:"gc_passes"`
	VersionsPruned  uint64 `json:"versions_pruned"`
	WallNanos       int64  `json:"wall_ns"`
}

// GCResult is the machine-readable output of the gc experiment
// (db4ml-bench -exp gc -benchjson BENCH_GC.json).
type GCResult struct {
	Experiment string         `json:"experiment"`
	Rows       int            `json:"rows"`
	Runs       int            `json:"runs"`
	Workers    int            `json:"workers"`
	Off        GCConfigResult `json:"gc_off"`
	On         GCConfigResult `json:"gc_on"`
}

// GC is the version-chain garbage-collection soak: the same counter
// workload runs many consecutive ML uber-transactions against one
// long-lived database, once with the background reclaimer off and once
// with it on. Without GC the retained-version count grows by exactly one
// version per row per run — the unbounded leak; with GC it stays flat at
// one live version per row (±1 run's worth between reclaimer passes).
// With Options.BenchFile set, the before/after trajectory is written as
// JSON (the repository's committed BENCH_GC.json).
func GC(opts Options) error {
	opts = opts.withDefaults()
	rows, runs := 32, 50
	if opts.Quick {
		rows, runs = 8, 12
	}
	workers := 4
	if opts.MaxWorkers < workers {
		workers = opts.MaxWorkers
	}

	soak := func(gcOn bool) (GCConfigResult, error) {
		res := GCConfigResult{GC: gcOn}
		dbOpts := []db4ml.Option{db4ml.WithWorkers(workers)}
		if gcOn {
			// Aggressive interval: passes interleave with live runs, so the
			// soak also exercises GC-vs-reader concurrency, not just decay.
			dbOpts = append(dbOpts, db4ml.WithVersionGC(200*time.Microsecond))
		}
		db := db4ml.Open(dbOpts...)
		defer db.Close()
		tbl, err := db.CreateTable("Soak",
			db4ml.Column{Name: "ID", Type: db4ml.Int64},
			db4ml.Column{Name: "Value", Type: db4ml.Float64})
		if err != nil {
			return res, err
		}
		load := make([]db4ml.Payload, rows)
		for i := range load {
			p := tbl.Schema().NewPayload()
			p.SetInt64(0, int64(i))
			load[i] = p
		}
		if err := db.BulkLoad(tbl, load); err != nil {
			return res, err
		}
		retained := func() int {
			n := 0
			for r := 0; r < tbl.NumRows(); r++ {
				if c := tbl.Chain(table.RowID(r)); c != nil {
					n += c.Len()
				}
			}
			return n
		}

		ob := db4ml.NewObserver()
		start := time.Now()
		for k := 1; k <= runs; k++ {
			subs := make([]db4ml.IterativeTransaction, rows)
			for i := range subs {
				subs[i] = &gcSoakSub{tbl: tbl, row: db4ml.RowID(i), target: float64(k)}
			}
			stats, err := db.RunML(db4ml.MLRun{
				Isolation: db4ml.MLOptions{Level: db4ml.BoundedStaleness, Staleness: 1},
				BatchSize: 8,
				Attach:    []db4ml.Attachment{{Table: tbl}},
				Subs:      subs,
				Observer:  ob,
			})
			if err != nil {
				return res, fmt.Errorf("run %d (gc=%v): %w", k, gcOn, err)
			}
			res.Commits += stats.Commits
			if gcOn {
				// Make the sampling deterministic: fold in one explicit pass
				// so "flat" does not depend on reclaimer timing.
				db.PruneNow()
			}
			res.Retained = append(res.Retained, retained())
		}
		res.WallNanos = int64(time.Since(start))
		res.RetainedStart = res.Retained[0]
		res.RetainedEnd = res.Retained[len(res.Retained)-1]
		for _, v := range res.Retained {
			if v > res.RetainedPeak {
				res.RetainedPeak = v
			}
		}
		res.AttemptP99Nanos = ob.Snapshot().Latencies.Attempt.P99Nanos
		res.GCPasses, res.VersionsPruned = db.GCStats()
		return res, nil
	}

	header(opts.Out, "version-chain GC soak")
	fmt.Fprintf(opts.Out, "%d rows, %d consecutive ML runs, %d workers\n\n", rows, runs, workers)

	off, err := soak(false)
	if err != nil {
		return err
	}
	on, err := soak(true)
	if err != nil {
		return err
	}

	tw := tab(opts.Out, "gc", "retained start", "retained end", "retained peak", "pruned", "passes", "attempt p99", "wall")
	row(tw, "off", off.RetainedStart, off.RetainedEnd, off.RetainedPeak, off.VersionsPruned, off.GCPasses,
		time.Duration(off.AttemptP99Nanos), time.Duration(off.WallNanos))
	row(tw, "on", on.RetainedStart, on.RetainedEnd, on.RetainedPeak, on.VersionsPruned, on.GCPasses,
		time.Duration(on.AttemptP99Nanos), time.Duration(on.WallNanos))
	tw.Flush()

	if off.RetainedEnd <= off.RetainedStart {
		return fmt.Errorf("gc: control soak did not leak (end %d <= start %d) — workload broken",
			off.RetainedEnd, off.RetainedStart)
	}
	// Flat means: never above one live version per row plus one run's worth
	// of not-yet-collected versions.
	if on.RetainedPeak > 2*rows {
		return fmt.Errorf("gc: soak with GC peaked at %d retained versions (rows=%d) — not flat",
			on.RetainedPeak, rows)
	}

	if opts.BenchFile != "" {
		out := GCResult{Experiment: "gc", Rows: rows, Runs: runs, Workers: workers, Off: off, On: on}
		js, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.BenchFile, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(opts.Out, "\nwrote %s\n", opts.BenchFile)
	}
	return nil
}

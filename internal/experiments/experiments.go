// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7). Each Fig*/Table* function runs one experiment at
// a laptop-friendly scale and prints the same rows/series the paper
// reports; the cmd/db4ml-bench binary and the repository's benchmarks are
// thin wrappers around them. DESIGN.md carries the per-experiment index,
// EXPERIMENTS.md the measured-vs-paper comparison.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"text/tabwriter"
	"time"

	"db4ml/internal/exec"
	"db4ml/internal/introspect"
	"db4ml/internal/obs"
	"db4ml/internal/trace"
)

// rngInt63n draws from the global (mutex-guarded) source — used by
// straggler hooks that run on several workers at once.
func rngInt63n(n int64) int64 { return rand.Int63n(n) }

// Options tunes all experiments.
type Options struct {
	// Out receives the experiment's printed table.
	Out io.Writer
	// MaxWorkers bounds the core sweeps; defaults to
	// max(8, 2·GOMAXPROCS) so the shape past physical cores is visible.
	MaxWorkers int
	// Runs is how many times timed configurations repeat (averaged);
	// defaults to 3 (the paper's Figure 1 averages 5).
	Runs int
	// Quick shrinks datasets and sweeps for use in unit tests and smoke
	// runs.
	Quick bool
	// Telemetry attaches an engine observer to selected configurations and
	// appends their telemetry snapshots (JSON) after the experiment's
	// table. Off by default: a nil observer keeps the engine's hot paths
	// untouched.
	Telemetry bool
	// Seeds is how many fault schedules the chaos experiment replays per
	// isolation level; defaults to 8 (4 under Quick).
	Seeds int
	// Deadline is the per-job wall-clock budget the resilience experiment
	// applies (db4ml-bench -deadline); 0 uses the experiment's default.
	Deadline time.Duration
	// Retries is the resilience experiment's whole-job retry budget after
	// a failed attempt (db4ml-bench -retries); 0 uses the default.
	Retries int
	// MaxInflight bounds the resilience experiment's concurrently admitted
	// jobs (db4ml-bench -maxinflight); 0 uses the default.
	MaxInflight int
	// Tracer, when non-nil, records every instrumented configuration's
	// scheduling timeline into its ring buffers (db4ml-bench -http serves
	// it at /debug/trace).
	Tracer *trace.Tracer
	// Aggregator, when non-nil, folds every instrumented run's telemetry
	// into a process-wide view (db4ml-bench -http serves it at /metrics).
	// Setting it attaches observers even with Telemetry off.
	Aggregator *introspect.Aggregator
	// BenchFile, when non-empty, is where experiments with a
	// machine-readable trajectory (currently gc) write their JSON result —
	// the repository's committed BENCH_*.json files (db4ml-bench
	// -benchjson).
	BenchFile string
}

func (o Options) withDefaults() Options {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = 2 * runtime.GOMAXPROCS(0)
		if o.MaxWorkers < 8 {
			o.MaxWorkers = 8
		}
	}
	if o.Runs <= 0 {
		if o.Quick {
			o.Runs = 1
		} else {
			o.Runs = 3
		}
	}
	if o.Seeds <= 0 {
		if o.Quick {
			o.Seeds = 4
		} else {
			o.Seeds = 8
		}
	}
	return o
}

// workerSweep returns the core-count series of the scalability figures:
// powers of two from 1 to MaxWorkers (the paper sweeps 1–64).
func (o Options) workerSweep() []int {
	var out []int
	for w := 1; w <= o.MaxWorkers; w *= 2 {
		out = append(out, w)
	}
	return out
}

// observe attaches a fresh observer (and the shared tracer/aggregator, when
// configured) to cfg and returns a dump function that prints the run's
// per-run summary line — p50/p95/p99 attempt latency, rollback ratio,
// steals — plus, under Options.Telemetry, the full telemetry snapshot as
// labelled JSON. With everything off, both the attachment and the dump are
// no-ops. Callers collect the dump functions and invoke them after the
// experiment's table has been flushed, so JSON never interleaves with rows.
func (o Options) observe(cfg *exec.Config, label string) func() {
	if !o.Telemetry && o.Aggregator == nil && o.Tracer == nil {
		return func() {}
	}
	ob := obs.New()
	cfg.Observer = ob
	cfg.Tracer = o.Tracer
	o.Aggregator.Attach(ob)
	return func() {
		snap := ob.Snapshot()
		fmt.Fprintf(o.Out, "\n-- summary: %s -- %s\n", label, summaryLine(snap))
		if o.Telemetry {
			if js, err := snap.JSON(); err != nil {
				fmt.Fprintf(o.Out, "-- telemetry: %s -- error: %v\n", label, err)
			} else {
				fmt.Fprintf(o.Out, "-- telemetry: %s --\n%s\n", label, js)
			}
		}
		o.Aggregator.Complete(ob)
	}
}

// summaryLine condenses one run's snapshot into the single line db4ml-bench
// appends per instrumented configuration, so BENCH_*.json trajectories
// capture latency distributions rather than wall-clock alone.
func summaryLine(snap obs.Snapshot) string {
	a := snap.Latencies.Attempt
	c := snap.Cumulative
	ratio := 0.0
	if c.Executions > 0 {
		ratio = float64(c.Rollbacks) / float64(c.Executions)
	}
	return fmt.Sprintf("attempt p50/p95/p99 %s/%s/%s  rollback %.2f%%  steals %d  commits %d",
		time.Duration(a.P50Nanos), time.Duration(a.P95Nanos), time.Duration(a.P99Nanos),
		100*ratio, c.Steals, c.Commits)
}

// timed runs fn `runs` times and returns the mean wall-clock duration.
func timed(runs int, fn func()) time.Duration {
	var total time.Duration
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		fn()
		total += time.Since(t0)
	}
	return total / time.Duration(runs)
}

// tab creates an aligned table writer with a header row.
func tab(w io.Writer, headers ...string) *tabwriter.Writer {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range headers {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	return tw
}

func row(tw *tabwriter.Writer, cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(tw, "%.4g", v)
		case time.Duration:
			fmt.Fprintf(tw, "%.2fms", float64(v)/1e6)
		default:
			fmt.Fprintf(tw, "%v", v)
		}
	}
	fmt.Fprintln(tw)
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

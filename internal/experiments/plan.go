package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"db4ml"
	"db4ml/internal/plan"
	"db4ml/internal/relational"
)

// PlanConfigResult is one execution strategy's account in BENCH_PLAN.json.
type PlanConfigResult struct {
	Name string `json:"name"`
	// WallNanos is the mean wall-clock per query over Options.Runs.
	WallNanos int64 `json:"wall_ns"`
	// ScanRowsOut is what the fact-table scan operator emitted — the
	// pushdown effect in rows (only streamed configs report it).
	ScanRowsOut uint64 `json:"scan_rows_out,omitempty"`
	// ResultRows is the query result cardinality (identical across
	// configs, recorded once per config as a cross-check).
	ResultRows int `json:"result_rows"`
}

// PlanResult is the machine-readable output of the plan experiment
// (db4ml-bench -exp plan -benchjson BENCH_PLAN.json).
type PlanResult struct {
	Experiment string             `json:"experiment"`
	FactRows   int                `json:"fact_rows"`
	DimRows    int                `json:"dim_rows"`
	SelectPct  float64            `json:"select_pct"`
	Runs       int                `json:"runs"`
	Configs    []PlanConfigResult `json:"configs"`
	// Speedup is materialized wall / streamed+pushdown+presize wall — the
	// headline number the experiment asserts on.
	Speedup float64 `json:"speedup"`
}

// Plan measures the declarative query layer against the hand-wired
// MADlib-style execution it replaces: one star query —
//
//	SELECT K, SUM(V*W) FROM Fact JOIN Dim ON K = DK WHERE V < p95 GROUP BY K
//
// with a ~5% selective filter — run four ways: (1) materialized: every
// operator's input fully collected into a Relation before the next stage,
// (2) streamed: the Volcano executor, no planner rewrites, (3)
// streamed+pushdown: the filter compiled into the storage-level scan hint,
// (4) +presize: hash join/aggregate builds pre-sized from cardinality
// estimates. All four must produce identical results; the experiment fails
// unless (4) beats (1) by the documented factor. With Options.BenchFile
// set, the timings are written as JSON (the committed BENCH_PLAN.json).
func Plan(opts Options) error {
	opts = opts.withDefaults()
	factRows, dimRows := 200_000, 25_000
	minSpeedup := 1.5
	if opts.Quick {
		factRows, dimRows = 20_000, 2_500
		minSpeedup = 1.1
	}
	const selectPct = 0.05

	db := db4ml.Open(db4ml.WithWorkers(2))
	defer db.Close()
	mgr := db.Manager()

	fact, err := db.CreateTable("Fact",
		db4ml.Column{Name: "ID", Type: db4ml.Int64},
		db4ml.Column{Name: "K", Type: db4ml.Int64},
		db4ml.Column{Name: "V", Type: db4ml.Float64})
	if err != nil {
		return err
	}
	dim, err := db.CreateTable("Dim",
		db4ml.Column{Name: "DK", Type: db4ml.Int64},
		db4ml.Column{Name: "W", Type: db4ml.Float64})
	if err != nil {
		return err
	}
	// V is a Weyl-sequence shuffle of [0, factRows): the selective filter
	// matches rows scattered across the whole table, not a prefix.
	load := make([]db4ml.Payload, factRows)
	for i := range load {
		p := fact.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetInt64(1, int64(i%dimRows))
		p.SetFloat64(2, float64((uint64(i)*2654435761)%uint64(factRows)))
		load[i] = p
	}
	if err := db.BulkLoad(fact, load); err != nil {
		return err
	}
	dload := make([]db4ml.Payload, dimRows)
	for k := range dload {
		p := dim.Schema().NewPayload()
		p.SetInt64(0, int64(k))
		p.SetFloat64(1, 1+float64(k%7))
		dload[k] = p
	}
	if err := db.BulkLoad(dim, dload); err != nil {
		return err
	}

	thresh := selectPct * float64(factRows)
	query := func() *plan.Node {
		return plan.Aggregate(
			plan.Join(
				plan.Filter(plan.Scan(fact), plan.FloatCmp("V", plan.Lt, thresh)),
				plan.Scan(dim), "K", "DK"),
			relational.Sum, "K", "s", plan.Mul(plan.Col("V"), plan.Col("W")))
	}

	ts := mgr.Stable()
	vcol, kcol := 2, 1
	// materialized is the pre-plan execution style: every stage collects
	// its full input into a Relation before the next operator runs.
	materialized := func() *relational.Relation {
		factRel := relational.Collect(relational.NewTableScan(mgr, fact, ts))
		filtered := relational.Collect(relational.NewFilter(relational.NewScan(factRel),
			func(t relational.Tuple) bool { return t.Float64(vcol) < thresh }))
		dimRel := relational.Collect(relational.NewTableScan(mgr, dim, ts))
		joined := relational.Collect(relational.NewHashJoin(
			relational.NewScan(filtered), relational.NewScan(dimRel),
			func(t relational.Tuple) int64 { return t.Int64(kcol) },
			func(t relational.Tuple) int64 { return t.Int64(0) }))
		wcol := len(factRel.Cols) + 1
		return relational.Collect(relational.NewHashAggregate(
			relational.NewScan(joined), relational.Sum, "K", "s",
			func(t relational.Tuple) int64 { return t.Int64(kcol) },
			func(t relational.Tuple) float64 { return t.Float64(vcol) * t.Float64(wcol) }))
	}

	streamed := func(env plan.Env) (*relational.Relation, []plan.OpStat, error) {
		prep, err := plan.Prepare(query(), env)
		if err != nil {
			return nil, nil, err
		}
		cur, err := prep.Execute(context.Background())
		if err != nil {
			return nil, nil, err
		}
		out := &relational.Relation{Cols: prep.Columns()}
		for {
			t, ok := cur.Next()
			if !ok {
				break
			}
			out.Rows = append(out.Rows, t.Clone())
		}
		cur.Close()
		return out, cur.Stats(), cur.Err()
	}

	type config struct {
		name string
		env  plan.Env
	}
	configs := []config{
		{"streamed", plan.Env{Mgr: mgr, NoPushdown: true, NoPresize: true}},
		{"streamed+pushdown", plan.Env{Mgr: mgr, NoPresize: true}},
		{"streamed+pushdown+presize", plan.Env{Mgr: mgr}},
	}

	// Correctness pass: every strategy must produce the identical relation,
	// including the public facade path.
	want := materialized()
	if len(want.Rows) == 0 {
		return fmt.Errorf("plan: workload selected nothing — fixture broken")
	}
	scanOut := map[string]uint64{}
	for _, c := range configs {
		got, stats, err := streamed(c.env)
		if err != nil {
			return fmt.Errorf("plan: %s: %w", c.name, err)
		}
		if err := sameRows(got, want); err != nil {
			return fmt.Errorf("plan: %s diverges from materialized: %w", c.name, err)
		}
		for _, s := range stats {
			if strings.HasPrefix(s.Op, "scan(Fact)") {
				scanOut[c.name] = s.RowsOut
			}
		}
	}
	facade, err := db.RunQuery(context.Background(), db4ml.QueryRun{Plan: query()})
	if err != nil {
		return err
	}
	if err := sameRows(facade, want); err != nil {
		return fmt.Errorf("plan: facade path diverges: %w", err)
	}
	if pushed := scanOut["streamed+pushdown"]; pushed >= uint64(factRows)/10 {
		return fmt.Errorf("plan: pushed scan emitted %d of %d rows — filter not pushed into storage",
			pushed, factRows)
	}

	header(opts.Out, "declarative plan layer: materialized vs streamed vs pushdown")
	fmt.Fprintf(opts.Out, "fact %d rows, dim %d rows, filter keeps ~%.0f%%, %d runs\n\n",
		factRows, dimRows, 100*selectPct, opts.Runs)

	res := PlanResult{Experiment: "plan", FactRows: factRows, DimRows: dimRows,
		SelectPct: selectPct, Runs: opts.Runs}
	matWall := timed(opts.Runs, func() { materialized() })
	res.Configs = append(res.Configs, PlanConfigResult{
		Name: "materialized", WallNanos: int64(matWall), ResultRows: len(want.Rows)})
	for _, c := range configs {
		w := timed(opts.Runs, func() {
			if _, _, err := streamed(c.env); err != nil {
				panic(err)
			}
		})
		res.Configs = append(res.Configs, PlanConfigResult{
			Name: c.name, WallNanos: int64(w), ScanRowsOut: scanOut[c.name],
			ResultRows: len(want.Rows)})
	}

	tw := tab(opts.Out, "strategy", "wall", "fact-scan rows out", "result rows", "vs materialized")
	for _, c := range res.Configs {
		speed := float64(res.Configs[0].WallNanos) / float64(c.WallNanos)
		scan := "-"
		if c.ScanRowsOut > 0 {
			scan = fmt.Sprintf("%d", c.ScanRowsOut)
		}
		row(tw, c.Name, time.Duration(c.WallNanos), scan, c.ResultRows, fmt.Sprintf("%.2fx", speed))
	}
	tw.Flush()

	final := res.Configs[len(res.Configs)-1]
	res.Speedup = float64(res.Configs[0].WallNanos) / float64(final.WallNanos)
	if res.Speedup < minSpeedup {
		return fmt.Errorf("plan: %s is only %.2fx over materialized (need >= %.2fx)",
			final.Name, res.Speedup, minSpeedup)
	}

	if opts.BenchFile != "" {
		js, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.BenchFile, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(opts.Out, "\nwrote %s\n", opts.BenchFile)
	}
	return nil
}

// sameRows compares two relations cell-exactly.
func sameRows(got, want *relational.Relation) error {
	if len(got.Rows) != len(want.Rows) {
		return fmt.Errorf("%d rows vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				return fmt.Errorf("row %d col %d: %d vs %d", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	return nil
}

package experiments

import (
	"fmt"

	"db4ml/internal/exec"
	"db4ml/internal/graph"
	"db4ml/internal/isolation"
	"db4ml/internal/ml/pagerank"
	"db4ml/internal/numa"
	"db4ml/internal/partition"
)

// Locality is an extra experiment (not a paper figure): it quantifies the
// Section 5.2 claim that DB4ML's partitioning keeps ML data accesses NUMA
// local. For each partitioning scheme it runs PageRank over a simulated
// 4-region topology and reports the fraction of (node, in-neighbor)
// accesses that cross regions, on two graph shapes: a ring (maximal
// locality available) and the gplus stand-in (social-graph hubs make
// perfect locality impossible).
func Locality(opts Options) error {
	opts = opts.withDefaults()
	type input struct {
		name string
		g    *graph.Graph
	}
	ring := func(n int) *graph.Graph {
		edges := make([]graph.Edge, n)
		for i := range edges {
			edges[i] = graph.Edge{From: int32(i), To: int32((i + 1) % n)}
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			panic(err)
		}
		return g
	}
	inputs := []input{
		{"ring", ring(4096)},
		{"gplus", prGraph("gplus", opts.Quick)},
	}
	schemes := []partition.Scheme{partition.Range, partition.RoundRobin, partition.Hash}

	header(opts.Out, "Locality (extra): remote access fraction by partitioning scheme, 4 NUMA regions")
	tw := tab(opts.Out, "graph", "scheme", "local", "remote", "remote fraction")
	for _, in := range inputs {
		for _, scheme := range schemes {
			var tr numa.Traffic
			mgr, node, edge := loadPR(in.g)
			if _, err := pagerank.Run(mgr, node, edge, pagerank.Config{
				Exec: exec.Config{
					Workers:       4,
					Topology:      numa.NewTopology(4, 4),
					MaxIterations: 2,
				},
				Isolation: isolation.Options{Level: isolation.Asynchronous},
				Epsilon:   -1,
				Partition: scheme,
				Traffic:   &tr,
			}); err != nil {
				return err
			}
			row(tw, in.name, scheme.String(), tr.Local(), tr.Remote(),
				fmt.Sprintf("%.1f%%", tr.RemoteFraction()*100))
		}
	}
	return tw.Flush()
}

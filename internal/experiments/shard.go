package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"db4ml"
	"db4ml/internal/itx"
	"db4ml/internal/storage"
)

// ShardConfigResult is one cluster size's account in BENCH_SHARD.json.
type ShardConfigResult struct {
	Shards int `json:"shards"`
	// WallNanos is the mean wall-clock of the distributed ML run (submit
	// to two-phase commit) over Options.Runs.
	WallNanos int64 `json:"wall_ns"`
	// Commits is the total sub-transaction iterations committed across
	// all shards in the last run.
	Commits uint64 `json:"commits"`
	// PerSec is Commits divided by the mean wall-clock.
	PerSec float64 `json:"per_sec"`
}

// ShardResult is the machine-readable output of the shard experiment
// (db4ml-bench -exp shard -benchjson BENCH_SHARD.json).
type ShardResult struct {
	Experiment string              `json:"experiment"`
	Rows       int                 `json:"rows"`
	Target     float64             `json:"target"`
	Runs       int                 `json:"runs"`
	Configs    []ShardConfigResult `json:"configs"`
	// Scaling is wall(1 shard) / wall(max shards): >1 means the cluster
	// beat the single kernel. On a single-CPU host the shards time-share
	// one core and the ratio hovers near (or below) 1 — the number is
	// recorded, not asserted.
	Scaling float64 `json:"scaling"`
}

// shardIncSub increments one row's value by 1 per iteration until it
// reaches target — the minimal iterative transaction, so the measured
// cost is the kernel's (queues, barriers, 2PC), not the algorithm's.
type shardIncSub struct {
	tbl    *db4ml.Table
	row    db4ml.RowID
	target float64
	rec    *storage.IterativeRecord
	buf    storage.Payload
	cur    float64
}

func (s *shardIncSub) Begin(ctx *itx.Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(storage.Payload, 2)
	s.buf.SetInt64(0, int64(s.row))
}

func (s *shardIncSub) Execute(ctx *itx.Ctx) {
	ctx.Read(s.rec, s.buf)
	s.cur = s.buf.Float64(1) + 1
	s.buf.SetFloat64(1, s.cur)
	ctx.Write(s.rec, s.buf)
}

func (s *shardIncSub) Validate(ctx *itx.Ctx) itx.Action {
	if s.cur >= s.target {
		return itx.Done
	}
	return itx.Commit
}

// Shard is an extra experiment (not a paper figure): shard-per-node
// scale-out. The same uber-transaction — every row incremented to a fixed
// target — runs as one distributed run on 1-, 2-, and 4-shard clusters
// (hash-partitioned rows, one kernel per shard, two-phase uber-commit),
// and the wall-clock and committed-iteration throughput are compared. Two
// invariants gate the numbers: every shard count must publish the
// identical final table (read back through cross-shard snapshot reads and
// a scatter-gather query), and the distributed commit must be atomic —
// a single commit timestamp at which all rows flip. With Options.BenchFile
// set, the timings are written as JSON (the committed BENCH_SHARD.json).
func Shard(opts Options) error {
	opts = opts.withDefaults()
	rows, target := 256, 200.0
	if opts.Quick {
		rows, target = 64, 50.0
	}

	res := ShardResult{Experiment: "shard", Rows: rows, Target: target, Runs: opts.Runs}
	header(opts.Out, "shard-per-node scale-out: distributed uber-transactions")
	fmt.Fprintf(opts.Out, "%d rows incremented to %.0f, %d runs per cluster size\n\n",
		rows, target, opts.Runs)

	oneRun := func(shards int) (time.Duration, uint64, error) {
		db := db4ml.OpenSharded(db4ml.WithShards(shards), db4ml.WithWorkers(2))
		defer db.Close()
		tbl, err := db.CreateTable("Counter",
			db4ml.Column{Name: "ID", Type: db4ml.Int64},
			db4ml.Column{Name: "Value", Type: db4ml.Float64})
		if err != nil {
			return 0, 0, err
		}
		load := make([]db4ml.Payload, rows)
		for i := range load {
			p := tbl.Schema().NewPayload()
			p.SetInt64(0, int64(i))
			p.SetFloat64(1, 0)
			load[i] = p
		}
		if err := db.BulkLoad(tbl, load); err != nil {
			return 0, 0, err
		}
		subs := make([]db4ml.IterativeTransaction, rows)
		for i := range subs {
			subs[i] = &shardIncSub{tbl: tbl, row: db4ml.RowID(i), target: target}
		}
		start := time.Now()
		h, err := db.SubmitML(context.Background(), db4ml.MLRun{
			Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
			Label:     "shard-bench",
			Attach:    []db4ml.Attachment{{Table: tbl}},
			Subs:      subs,
		})
		if err != nil {
			return 0, 0, err
		}
		stats, err := h.Wait()
		if err != nil {
			return 0, 0, err
		}
		wall := time.Since(start)
		var commits uint64
		for _, s := range stats {
			commits += s.Commits
		}
		// Invariant 1: the published state is the target, on every shard,
		// at the uber-commit timestamp.
		if ts := h.CommitTS(); ts == 0 {
			return 0, 0, fmt.Errorf("shard: %d-shard run reported no commit timestamp", shards)
		}
		tx := db.Begin()
		for i := 0; i < rows; i++ {
			p, ok := tx.Read(tbl, db4ml.RowID(i))
			if !ok || p.Float64(1) != target {
				tx.Close()
				return 0, 0, fmt.Errorf("shard: %d shards: row %d = (%v, %v), want %v",
					shards, i, p, ok, target)
			}
		}
		tx.Close()
		// Invariant 2: the scatter-gather query path agrees — every row
		// passes the at-target filter.
		rel, err := db.RunQuery(context.Background(), db4ml.QueryRun{
			Plan: db4ml.Filter(db4ml.Scan(tbl), db4ml.FloatCmp("Value", db4ml.Ge, target)),
		})
		if err != nil {
			return 0, 0, err
		}
		if len(rel.Rows) != rows {
			return 0, 0, fmt.Errorf("shard: %d shards: scatter-gather saw %d rows at target, want %d",
				shards, len(rel.Rows), rows)
		}
		return wall, commits, nil
	}

	tw := tab(opts.Out, "shards", "wall", "commits", "commits/s", "vs 1 shard")
	for _, shards := range []int{1, 2, 4} {
		var total time.Duration
		var commits uint64
		for r := 0; r < opts.Runs; r++ {
			wall, c, err := oneRun(shards)
			if err != nil {
				return err
			}
			total += wall
			commits = c
		}
		wall := total / time.Duration(opts.Runs)
		cfg := ShardConfigResult{Shards: shards, WallNanos: int64(wall), Commits: commits,
			PerSec: float64(commits) / wall.Seconds()}
		res.Configs = append(res.Configs, cfg)
		scale := float64(res.Configs[0].WallNanos) / float64(cfg.WallNanos)
		row(tw, shards, wall, commits, fmt.Sprintf("%.0f", cfg.PerSec), fmt.Sprintf("%.2fx", scale))
	}
	tw.Flush()
	res.Scaling = float64(res.Configs[0].WallNanos) / float64(res.Configs[len(res.Configs)-1].WallNanos)

	if opts.BenchFile != "" {
		js, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.BenchFile, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(opts.Out, "\nwrote %s\n", opts.BenchFile)
	}
	return nil
}

package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/ml/pagerank"
	"db4ml/internal/ml/sgd"
	"db4ml/internal/txn"
)

// Concurrent is an extra experiment (not a paper figure): it exercises the
// persistent execution engine by running two unrelated ML uber-transactions
// — asynchronous PageRank and bounded-staleness SGD — on one worker pool
// that is started once, first back to back and then concurrently, and
// compares per-job stats and wall-clocks. The workers interleave batches of
// both jobs round-robin, so the concurrent pass should finish well under
// the sum of the sequential runs whenever a single job cannot saturate the
// pool.
func Concurrent(opts Options) error {
	opts = opts.withDefaults()
	workers := opts.MaxWorkers
	if mx := runtime.GOMAXPROCS(0); workers > mx {
		workers = mx
	}
	if workers < 2 {
		workers = 2
	}

	g := prGraph("wikivote", opts.Quick)
	data := sgdDataset("covtype", opts.Quick)
	prIters := uint64(30)
	if opts.Quick {
		prIters = 5
	}
	epochs := sgdEpochs(opts)

	pool, err := exec.NewPool(exec.Config{Workers: workers})
	if err != nil {
		return err
	}
	defer pool.Close()
	mgr := txn.NewManager()

	type jobOut struct {
		stats   exec.Stats
		elapsed time.Duration
		dump    func()
	}

	// Each closure loads fresh tables (loading stays outside the measured
	// region, as everywhere in this harness), then runs its algorithm as
	// one job on the shared pool.
	runPR := func(label string) (jobOut, error) {
		node, edge, err := pagerank.LoadTables(mgr, g)
		if err != nil {
			return jobOut{}, err
		}
		cfg := pagerank.Config{
			Pool:      pool,
			Exec:      exec.Config{MaxIterations: prIters, Label: label},
			Isolation: isolation.Options{Level: isolation.Asynchronous},
		}
		dump := opts.observe(&cfg.Exec, label)
		t0 := time.Now()
		res, err := pagerank.Run(mgr, node, edge, cfg)
		if err != nil {
			return jobOut{}, err
		}
		return jobOut{stats: res.Stats, elapsed: time.Since(t0), dump: dump}, nil
	}
	runSGD := func(label string) (jobOut, error) {
		tables, err := sgd.LoadTables(mgr, data.train, data.features, 1)
		if err != nil {
			return jobOut{}, err
		}
		cfg := sgd.Config{
			Pool:      pool,
			Exec:      exec.Config{Label: label},
			Isolation: &isolation.Options{Level: isolation.BoundedStaleness, Staleness: 64},
			Epochs:    epochs, Lambda: data.lambda, Seed: 1,
		}
		dump := opts.observe(&cfg.Exec, label)
		t0 := time.Now()
		res, err := sgd.Run(mgr, tables, cfg)
		if err != nil {
			return jobOut{}, err
		}
		return jobOut{stats: res.Stats, elapsed: time.Since(t0), dump: dump}, nil
	}

	// Sequential baseline: the same pool, one job at a time.
	seqPR, err := runPR("pagerank sequential")
	if err != nil {
		return err
	}
	seqSGD, err := runSGD("sgd sequential")
	if err != nil {
		return err
	}

	// Concurrent pass: both jobs submitted together; the pool interleaves
	// their batches on the same workers.
	var conPR, conSGD jobOut
	var errPR, errSGD error
	t0 := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); conPR, errPR = runPR("pagerank concurrent") }()
	go func() { defer wg.Done(); conSGD, errSGD = runSGD("sgd concurrent") }()
	wg.Wait()
	wall := time.Since(t0)
	if errPR != nil {
		return errPR
	}
	if errSGD != nil {
		return errSGD
	}

	header(opts.Out, fmt.Sprintf(
		"Concurrent jobs (extra): async PageRank + bounded-staleness SGD on one shared pool, %d workers", workers))
	tw := tab(opts.Out, "job", "mode", "commits", "rollbacks", "elapsed")
	row(tw, "pagerank", "sequential", seqPR.stats.Commits, seqPR.stats.Rollbacks, seqPR.elapsed)
	row(tw, "sgd", "sequential", seqSGD.stats.Commits, seqSGD.stats.Rollbacks, seqSGD.elapsed)
	row(tw, "pagerank", "concurrent", conPR.stats.Commits, conPR.stats.Rollbacks, conPR.elapsed)
	row(tw, "sgd", "concurrent", conSGD.stats.Commits, conSGD.stats.Rollbacks, conSGD.elapsed)
	if err := tw.Flush(); err != nil {
		return err
	}
	seqTotal := seqPR.elapsed + seqSGD.elapsed
	speedup := float64(seqTotal) / float64(wall)
	fmt.Fprintf(opts.Out, "sequential total %.2fms, concurrent wall %.2fms, speedup %.2fx\n",
		float64(seqTotal)/1e6, float64(wall)/1e6, speedup)
	// Telemetry dumps come last so the per-job JSON (one labelled snapshot
	// per job, from its own observer) never interleaves with the table.
	for _, j := range []jobOut{seqPR, seqSGD, conPR, conSGD} {
		j.dump()
	}
	return nil
}

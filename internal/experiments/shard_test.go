package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShardQuick runs the scale-out experiment end to end at quick scale
// and checks the BENCH_SHARD.json it writes: one config per cluster size
// in 1/2/4 order, every config committed work and took measurable time,
// and the scaling ratio is derived from the recorded wall-clocks. The
// correctness invariants (identical final table, atomic commit,
// scatter-gather agreement) are asserted inside the experiment itself.
func TestShardQuick(t *testing.T) {
	var buf strings.Builder
	opts := quickOpts(&buf)
	opts.BenchFile = filepath.Join(t.TempDir(), "BENCH_SHARD.json")
	if err := Shard(opts); err != nil {
		t.Fatalf("shard experiment failed: %v\n%s", err, buf.String())
	}
	js, err := os.ReadFile(opts.BenchFile)
	if err != nil {
		t.Fatal(err)
	}
	var res ShardResult
	if err := json.Unmarshal(js, &res); err != nil {
		t.Fatalf("BENCH_SHARD.json does not parse: %v", err)
	}
	if res.Experiment != "shard" || len(res.Configs) != 3 {
		t.Fatalf("result shape wrong: %+v", res)
	}
	wantCommits := uint64(res.Rows) * uint64(res.Target)
	for i, shards := range []int{1, 2, 4} {
		cfg := res.Configs[i]
		if cfg.Shards != shards {
			t.Fatalf("config %d is for %d shards, want %d", i, cfg.Shards, shards)
		}
		if cfg.WallNanos <= 0 || cfg.PerSec <= 0 {
			t.Fatalf("%d-shard timing not populated: %+v", shards, cfg)
		}
		// Every row commits exactly target increment iterations plus its
		// retiring Done pass, so commits is at least rows*target.
		if cfg.Commits < wantCommits {
			t.Fatalf("%d shards committed %d iterations, want >= %d", shards, cfg.Commits, wantCommits)
		}
	}
	if want := float64(res.Configs[0].WallNanos) / float64(res.Configs[2].WallNanos); res.Scaling != want {
		t.Fatalf("scaling = %v, want wall(1)/wall(4) = %v", res.Scaling, want)
	}
}

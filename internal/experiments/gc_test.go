package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGCQuick runs the soak end to end at quick scale and checks the
// BENCH_GC.json it writes: the control config leaks monotonically, the GC
// config stays flat, and the p99s are populated.
func TestGCQuick(t *testing.T) {
	var buf strings.Builder
	opts := quickOpts(&buf)
	opts.BenchFile = filepath.Join(t.TempDir(), "BENCH_GC.json")
	if err := GC(opts); err != nil {
		t.Fatalf("gc experiment failed: %v\n%s", err, buf.String())
	}
	js, err := os.ReadFile(opts.BenchFile)
	if err != nil {
		t.Fatal(err)
	}
	var res GCResult
	if err := json.Unmarshal(js, &res); err != nil {
		t.Fatalf("BENCH_GC.json does not parse: %v", err)
	}
	if res.Experiment != "gc" || len(res.Off.Retained) != res.Runs || len(res.On.Retained) != res.Runs {
		t.Fatalf("result shape wrong: %+v", res)
	}
	for i := 1; i < len(res.Off.Retained); i++ {
		if res.Off.Retained[i] <= res.Off.Retained[i-1] {
			t.Fatalf("control soak not monotone at run %d: %v", i, res.Off.Retained)
		}
	}
	if res.On.RetainedPeak > 2*res.Rows {
		t.Fatalf("GC soak not flat: peak %d for %d rows", res.On.RetainedPeak, res.Rows)
	}
	if res.On.VersionsPruned == 0 || res.On.GCPasses == 0 {
		t.Fatalf("GC soak recorded no reclaimer work: %+v", res.On)
	}
	if res.Off.AttemptP99Nanos == 0 || res.On.AttemptP99Nanos == 0 {
		t.Fatalf("attempt p99 not populated: off=%d on=%d", res.Off.AttemptP99Nanos, res.On.AttemptP99Nanos)
	}
}

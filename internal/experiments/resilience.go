package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"db4ml"
	"db4ml/internal/chaos"
	"db4ml/internal/storage"
)

// Resilience is an extra experiment (not a paper figure): it drives the
// supervision layer the way an overloaded production deployment would. Each
// trial opens one admission-controlled database and fires a burst of ML
// jobs at it under a seeded chaos schedule — healthy jobs, jobs with a
// planted one-shot panic (recovered by abort-retry), and never-converging
// jobs (retired by the deadline) — then verifies the outcome against the
// uber-transaction contract: every committed job left exactly its expected
// table state, every retired job left nothing, and nothing hung or crashed.
// The per-trial row reports how much supervision actually happened: load
// sheds, whole-job retries, contained panics, deadline retirements, and
// injected faults.
func Resilience(opts Options) error {
	opts = opts.withDefaults()
	deadline := opts.Deadline
	if deadline <= 0 {
		deadline = 300 * time.Millisecond
		if opts.Quick {
			deadline = 200 * time.Millisecond
		}
	}
	retries := opts.Retries
	if retries <= 0 {
		retries = 3
	}
	maxInflight := opts.MaxInflight
	if maxInflight <= 0 {
		maxInflight = 3
	}
	jobs := 12
	rows := 16
	if opts.Quick {
		jobs, rows = 8, 8
	}
	const target = 8.0
	// Job mix: index%4==1 plants a one-shot panic (needs one retry),
	// index%4==3 never converges (needs the deadline); the rest are healthy.
	kind := func(i int) string {
		switch i % 4 {
		case 1:
			return "flaky"
		case 3:
			return "spin"
		default:
			return "healthy"
		}
	}

	fmt.Fprintf(opts.Out, "Resilience: %d-job bursts, max in-flight %d, %d retries, %v deadline, chaos %+v\n\n",
		jobs, maxInflight, retries, deadline, chaos.DefaultConfig())
	tw := tab(opts.Out, "seed", "jobs", "committed", "deadline_retired", "sheds", "retries", "panics", "faults", "oracle")

	for trial := 0; trial < opts.Seeds; trial++ {
		seed := int64(trial + 1)
		inj := chaos.NewSeeded(seed, 8, chaos.DefaultConfig())
		db := db4ml.Open(
			db4ml.WithWorkers(4),
			db4ml.WithDeadline(deadline),
			db4ml.WithRetry(db4ml.RetryPolicy{MaxAttempts: retries + 1, BaseBackoff: 2 * time.Millisecond, Seed: seed}),
			db4ml.WithMaxInflight(maxInflight),
			db4ml.WithDegradation(nil), // default pressure→batch curve
		)

		tables := make([]*db4ml.Table, jobs)
		for i := range tables {
			tbl, err := db.CreateTable(fmt.Sprintf("C%d", i),
				db4ml.Column{Name: "ID", Type: db4ml.Int64},
				db4ml.Column{Name: "V", Type: db4ml.Float64})
			if err != nil {
				db.Close()
				return err
			}
			load := make([]db4ml.Payload, rows)
			for r := range load {
				p := tbl.Schema().NewPayload()
				p.SetInt64(0, int64(r))
				load[r] = p
			}
			if err := db.BulkLoad(tbl, load); err != nil {
				db.Close()
				return err
			}
			tables[i] = tbl
		}

		var (
			sheds     uint64
			handles   = make([]*db4ml.JobHandle, jobs)
			submitErr error
			wg        sync.WaitGroup
		)
		for i := 0; i < jobs; i++ {
			var panics int64
			if kind(i) == "flaky" {
				panics = 1
			}
			run := db4ml.MLRun{
				Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
				Label:     fmt.Sprintf("resilience-%s-%d", kind(i), i),
				BatchSize: 4,
				Attach:    []db4ml.Attachment{{Table: tables[i]}},
				Subs:      burstSubs(tables[i], rows, target, panics, kind(i) == "spin"),
				Chaos:     inj,
			}
			// Fast-fail admission: a shed submission is counted and
			// re-offered until a slot frees — the burst is heavier than the
			// gate allows by construction.
			for {
				h, err := db.SubmitML(context.Background(), run)
				if err == nil {
					handles[i] = h
					break
				}
				if errors.Is(err, db4ml.ErrOverloaded) {
					sheds++
					time.Sleep(2 * time.Millisecond)
					continue
				}
				submitErr = err
				break
			}
			if submitErr != nil {
				break
			}
			wg.Add(1)
			go func(h *db4ml.JobHandle) {
				defer wg.Done()
				_, _ = h.Wait()
			}(handles[i])
		}
		wg.Wait()
		if submitErr != nil {
			db.Close()
			return submitErr
		}

		committed, retired, retriesSeen, panicsSeen := 0, 0, 0, 0
		oracle := "ok"
		fail := func(format string, args ...any) {
			if oracle == "ok" {
				oracle = fmt.Sprintf(format, args...)
			}
		}
		for i, h := range handles {
			_, err := h.Wait()
			extra := h.Attempts() - 1
			retriesSeen += extra
			if kind(i) == "flaky" {
				panicsSeen += extra // each extra attempt recovered one planted panic
			}
			switch {
			case err == nil:
				committed++
				for r, v := range readBurstRows(db, tables[i], rows) {
					if v != target {
						fail("job %d row %d = %v, want %v", i, r, v, target)
					}
				}
				if kind(i) == "spin" {
					fail("non-convergent job %d committed", i)
				}
			case errors.Is(err, db4ml.ErrJobDeadline):
				retired++
				for r, v := range readBurstRows(db, tables[i], rows) {
					if v != 0 {
						fail("retired job %d row %d = %v, want 0", i, r, v)
					}
				}
				if kind(i) != "spin" {
					fail("job %d (%s) hit the deadline", i, kind(i))
				}
			default:
				fail("job %d (%s) failed terminally: %v", i, kind(i), err)
			}
		}
		db.Close()
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			seed, jobs, committed, retired, sheds, retriesSeen, panicsSeen, inj.Faults(), oracle)
		if oracle != "ok" {
			tw.Flush()
			return fmt.Errorf("resilience: seed %d violated the outcome oracle: %s", seed, oracle)
		}
	}
	tw.Flush()
	fmt.Fprintf(opts.Out, "\nEvery job either committed its exact result (possibly after retries) or was retired with a typed error; aborted attempts left nothing behind.\n")
	return nil
}

// burstSub is the experiment workload: a per-row counter that optionally
// panics (sharing a budget with its job's siblings) or never converges.
type burstSub struct {
	tbl        *db4ml.Table
	row        db4ml.RowID
	target     float64
	spin       bool
	panicsLeft *atomic.Int64
	rec        *storage.IterativeRecord
	buf        db4ml.Payload
	cur        float64
}

func (s *burstSub) Begin(ctx *db4ml.Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(db4ml.Payload, 2)
}

func (s *burstSub) Execute(ctx *db4ml.Ctx) {
	if s.panicsLeft != nil && s.panicsLeft.Load() > 0 && s.panicsLeft.Add(-1) >= 0 {
		panic("resilience experiment: planted panic")
	}
	ctx.Read(s.rec, s.buf)
	s.cur = s.buf.Float64(1) + 1
	s.buf.SetFloat64(1, s.cur)
	ctx.Write(s.rec, s.buf)
}

func (s *burstSub) Validate(ctx *db4ml.Ctx) db4ml.Action {
	if !s.spin && s.cur >= s.target {
		return db4ml.Done
	}
	return db4ml.Commit
}

func burstSubs(tbl *db4ml.Table, rows int, target float64, panics int64, spin bool) []db4ml.IterativeTransaction {
	var budget *atomic.Int64
	if panics > 0 {
		budget = &atomic.Int64{}
		budget.Store(panics)
	}
	subs := make([]db4ml.IterativeTransaction, rows)
	for r := range subs {
		subs[r] = &burstSub{tbl: tbl, row: db4ml.RowID(r), target: target, spin: spin, panicsLeft: budget}
	}
	return subs
}

func readBurstRows(db *db4ml.DB, tbl *db4ml.Table, rows int) []float64 {
	tx := db.Begin()
	out := make([]float64, rows)
	for r := range out {
		if p, ok := tx.Read(tbl, db4ml.RowID(r)); ok {
			out[r] = p.Float64(1)
		}
	}
	return out
}

package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRecoveryQuick runs the durability experiment end to end at quick
// scale and checks the BENCH_RECOVERY.json it writes: every kill-point ×
// shard-count trial recorded a passing verdict with real probe evidence,
// and all three fsync policies produced measurable throughput. The
// crash-window expectations (killed/acked on the right side of each point)
// are asserted inside the experiment itself.
func TestRecoveryQuick(t *testing.T) {
	var buf strings.Builder
	opts := quickOpts(&buf)
	opts.BenchFile = filepath.Join(t.TempDir(), "BENCH_RECOVERY.json")
	if err := Recovery(opts); err != nil {
		t.Fatalf("recovery experiment failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"kill-point matrix", "mid-wal-append", "between-shard-commits",
		"group-commit throughput", "always", "interval", "none",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	js, err := os.ReadFile(opts.BenchFile)
	if err != nil {
		t.Fatal(err)
	}
	var res RecoveryResult
	if err := json.Unmarshal(js, &res); err != nil {
		t.Fatalf("BENCH_RECOVERY.json does not parse: %v", err)
	}
	if res.Experiment != "recovery" {
		t.Fatalf("result shape wrong: %+v", res)
	}
	// Quick mode: 2 shard counts × (none + 6 kill-points).
	if len(res.Trials) != 14 {
		t.Fatalf("%d trials recorded, want 14", len(res.Trials))
	}
	for _, tr := range res.Trials {
		if !tr.Ok || tr.Checked == 0 {
			t.Fatalf("trial not green: %+v", tr)
		}
	}
	if len(res.Policies) != 3 {
		t.Fatalf("%d policy rows, want 3", len(res.Policies))
	}
	for _, pr := range res.Policies {
		if pr.WallNanos <= 0 || pr.PerSec <= 0 {
			t.Fatalf("policy timing not populated: %+v", pr)
		}
	}
}

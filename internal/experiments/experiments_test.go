package experiments

import (
	"strings"
	"testing"
)

func quickOpts(buf *strings.Builder) Options {
	return Options{Out: buf, MaxWorkers: 4, Runs: 1, Quick: true}
}

func TestRegistryCoversEveryPaperExperiment(t *testing.T) {
	want := []string{"fig1", "tab1", "fig8", "fig9", "fig10a", "fig10b", "fig11", "tab2", "fig12", "fig13", "fig14", "locality", "mixed", "concurrent", "chaos", "resilience", "gc", "plan", "shard", "recovery", "explain"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry order = %v, want %v", got, want)
		}
	}
	for _, id := range want {
		if Describe(id) == "" {
			t.Errorf("experiment %s has no description", id)
		}
	}
	if Describe("nope") != "" {
		t.Error("unknown id has a description")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// Each experiment must run end to end in quick mode and print a table
// containing its key row labels.
func TestFig1Quick(t *testing.T) {
	var buf strings.Builder
	if err := Fig1(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DB4ML", "Galois", "MADlib", "Figure 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Quick(t *testing.T) {
	var buf strings.Builder
	if err := Table1(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"gplus", "patents", "pld", "3774768"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	var buf strings.Builder
	if err := Fig8(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gplus") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestFig9Quick(t *testing.T) {
	var buf strings.Builder
	if err := Fig9(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sync", "async", "bounded(S=2)", "bounded(S=10)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// With Options.Telemetry set, experiments that wire an observer append its
// JSON snapshot after the table.
func TestFig9TelemetryDump(t *testing.T) {
	var buf strings.Builder
	opts := quickOpts(&buf)
	opts.Telemetry = true
	if err := Fig9(opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"-- telemetry: fig9 sync straggler=false --",
		"-- telemetry: fig9 async straggler=true --",
		`"executions"`,
		`"per_worker"`,
		`"convergence"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig10aQuick(t *testing.T) {
	var buf strings.Builder
	if err := Fig10a(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "transaction machinery") || !strings.Contains(out, "%") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestFig10bQuick(t *testing.T) {
	var buf strings.Builder
	if err := Fig10b(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"256", "1024"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	var buf strings.Builder
	if err := Fig11(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "versions") || !strings.Contains(out, "L1 misses") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTable2Quick(t *testing.T) {
	var buf strings.Builder
	if err := Table2(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rcv1", "susy", "epsilon", "news20", "covtype", "1355191"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig12Quick(t *testing.T) {
	var buf strings.Builder
	if err := Fig12(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Hogwild!", "DB4ML", "covtype"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig13Quick(t *testing.T) {
	var buf strings.Builder
	if err := Fig13(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workers") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestFig14Quick(t *testing.T) {
	var buf strings.Builder
	if err := Fig14(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"covtype", "rcv1", "ns/sample"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllQuickViaRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var buf strings.Builder
	if err := Run("all", quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 14") {
		t.Fatal("all-run did not reach the last experiment")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxWorkers < 8 || o.Runs != 3 || o.Out == nil {
		t.Fatalf("defaults: %+v", o)
	}
	sweep := Options{MaxWorkers: 8}.withDefaults().workerSweep()
	want := []int{1, 2, 4, 8}
	if len(sweep) != len(want) {
		t.Fatalf("sweep = %v", sweep)
	}
	for i := range want {
		if sweep[i] != want[i] {
			t.Fatalf("sweep = %v", sweep)
		}
	}
}

func TestMixedQuick(t *testing.T) {
	var buf strings.Builder
	if err := Mixed(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"OLTP alone", "running DB4ML SGD", "throughput"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentQuick(t *testing.T) {
	var buf strings.Builder
	if err := Concurrent(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"shared pool", "pagerank", "sgd", "sequential", "concurrent", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentTelemetryPerJob(t *testing.T) {
	var buf strings.Builder
	opts := quickOpts(&buf)
	opts.Telemetry = true
	if err := Concurrent(opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"-- telemetry: pagerank sequential --",
		"-- telemetry: sgd sequential --",
		"-- telemetry: pagerank concurrent --",
		"-- telemetry: sgd concurrent --",
		`"job": "pagerank concurrent"`,
		`"job": "sgd concurrent"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestChaosQuick(t *testing.T) {
	var buf strings.Builder
	if err := Chaos(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Chaos sweep", "synchronous", "asynchronous", "bounded-staleness",
		"injected faults", "0 contract violations",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPlanQuick(t *testing.T) {
	var buf strings.Builder
	if err := Plan(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"materialized", "streamed", "streamed+pushdown",
		"streamed+pushdown+presize", "vs materialized",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLocalityQuick(t *testing.T) {
	var buf strings.Builder
	if err := Locality(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ring", "range", "round-robin", "hash", "remote fraction"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

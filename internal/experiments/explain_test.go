package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExplainQuick runs the explain experiment end to end in quick mode:
// both plan renderings must be printed, the pushdown check must pass, and
// the machine-readable result must round-trip with the measured scan
// cardinality.
func TestExplainQuick(t *testing.T) {
	var buf strings.Builder
	opts := quickOpts(&buf)
	opts.BenchFile = filepath.Join(t.TempDir(), "explain.json")
	if err := Explain(opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"EXPLAIN\n", "EXPLAIN ANALYZE\n",
		"scan(Fact)+pushdown", "presize=", "rows=", "time=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	js, err := os.ReadFile(opts.BenchFile)
	if err != nil {
		t.Fatal(err)
	}
	var res ExplainResult
	if err := json.Unmarshal(js, &res); err != nil {
		t.Fatal(err)
	}
	if res.ScanRowsOut == 0 || res.ScanRowsOut >= uint64(res.FactRows)/10 {
		t.Fatalf("result scan_rows_out = %d of %d", res.ScanRowsOut, res.FactRows)
	}
	if !strings.Contains(res.Analyzed, "rows=") {
		t.Fatalf("analyzed rendering missing measurements: %q", res.Analyzed)
	}
}

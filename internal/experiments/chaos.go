package experiments

import (
	"errors"
	"fmt"

	"db4ml/internal/chaos"
	"db4ml/internal/check"
	"db4ml/internal/isolation"
)

// Chaos is an extra experiment (not a paper figure): a seeded fault-injection
// sweep over the engine's three ML isolation levels. Each trial opens a real
// database with a deterministic chaos injector (worker stalls, preemption,
// forced rollback storms, steal vetoes, optional mid-run cancellation),
// records every read/write/validation/barrier/probe into a history, and
// checks the history against the paper's isolation contracts: bounded reads
// stay within [IterCounter−S, IterCounter], synchronous jobs never cross the
// barrier, and nothing from an uncommitted uber-transaction is visible to
// OLTP readers. Any violation fails the experiment and prints the (seed,
// level, workers) tuple that replays it.
func Chaos(opts Options) error {
	opts = opts.withDefaults()
	workers := opts.MaxWorkers
	if workers > 4 {
		workers = 4
	}
	if workers < 2 {
		workers = 2
	}
	target := uint64(30)
	if opts.Quick {
		target = 12
	}

	header(opts.Out, fmt.Sprintf(
		"Chaos sweep (extra): %d seeds x 3 isolation levels, %d workers, fault schedule replayable per seed", opts.Seeds, workers))
	tw := tab(opts.Out, "level", "seed", "faults", "events", "staleness", "barrier", "visibility", "cancelled", "violations")

	var failures []error
	totalTrials, totalFaults := 0, uint64(0)
	for _, level := range isolation.Levels() {
		for seed := int64(1); seed <= int64(opts.Seeds); seed++ {
			cfg := check.TrialConfig{
				Seed:    seed,
				Level:   check.LevelOptions(level),
				Workers: workers,
				Subs:    8,
				Target:  target,
				Chaos:   chaos.DefaultConfig(),
			}
			if seed%3 == 0 {
				// Every third seed cancels the job mid-run, exercising the
				// abort side of the visibility contract.
				cfg.Chaos.CancelAfter = 40
			}
			res, err := check.RunTrial(cfg)
			if err != nil {
				return fmt.Errorf("chaos trial level=%s seed=%d workers=%d: %w", level, seed, workers, err)
			}
			totalTrials++
			totalFaults += res.Faults
			row(tw, level, seed, res.Faults, res.Events,
				res.Report.StalenessChecked, res.Report.BarrierChecked, res.Report.VisibilityChecked,
				res.Cancelled, len(res.Report.Violations))
			for _, v := range res.Report.Violations {
				failures = append(failures, fmt.Errorf(
					"level=%s seed=%d workers=%d: %s", level, seed, workers, v))
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(opts.Out, "%d trials, %d injected faults, %d contract violations\n",
		totalTrials, totalFaults, len(failures))
	return errors.Join(failures...)
}

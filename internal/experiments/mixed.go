package experiments

import (
	"fmt"
	"sync"

	"db4ml/internal/exec"
	"db4ml/internal/ml/sgd"
	"db4ml/internal/oltpbench"
	"db4ml/internal/svm"
	"db4ml/internal/txn"
)

// Mixed is an extra experiment (not a paper figure): it quantifies Section
// 2.1's coexistence claim by measuring SmallBank-style OLTP throughput on
// ML-tables, alone and while a DB4ML SGD uber-transaction trains in the
// same database instance.
func Mixed(opts Options) error {
	opts = opts.withDefaults()
	accounts := 1024
	perClient := 3000
	clients := 2
	epochs := 200
	if opts.Quick {
		perClient = 300
		epochs = 20
	}

	runOLTP := func(withML bool) (oltpbench.Stats, error) {
		mgr := txn.NewManager()
		bank, err := oltpbench.Setup(mgr, accounts, 1000)
		if err != nil {
			return oltpbench.Stats{}, err
		}
		var wg sync.WaitGroup
		if withML {
			train, _ := svm.Generate(svm.GenSpec{
				Train: 5000, Features: 64, Density: 1, Noise: 0.05, Seed: 9,
			})
			tables, err := sgd.LoadTables(mgr, train, 64, 9)
			if err != nil {
				return oltpbench.Stats{}, err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Long-running training keeps the ML side busy for the
				// whole OLTP measurement window.
				_, _ = sgd.Run(mgr, tables, sgd.Config{
					Exec:   exec.Config{Workers: 1},
					Epochs: epochs, Lambda: 1e-5, Seed: 9,
				})
			}()
		}
		stats, err := bank.Run(clients, perClient, oltpbench.DefaultMix, 7)
		wg.Wait()
		return stats, err
	}

	alone, err := runOLTP(false)
	if err != nil {
		return err
	}
	mixed, err := runOLTP(true)
	if err != nil {
		return err
	}

	header(opts.Out, fmt.Sprintf("Mixed workload (extra): SmallBank OLTP on ML-tables, %d clients x %d txns", clients, perClient))
	tw := tab(opts.Out, "configuration", "committed", "conflicts", "throughput (txn/s)")
	row(tw, "OLTP alone", alone.Committed, alone.Conflicts, alone.Throughput())
	row(tw, "OLTP + running DB4ML SGD", mixed.Committed, mixed.Conflicts, mixed.Throughput())
	return tw.Flush()
}

package experiments

import (
	"errors"
	"fmt"
)

// registry maps experiment ids (as used by `db4ml-bench -exp`) to their
// runners, in the paper's order.
var registry = []struct {
	id  string
	fn  func(Options) error
	doc string
}{
	{"fig1", Fig1, "PageRank on Wikivote: DB4ML vs Galois vs MADlib"},
	{"tab1", Table1, "PageRank dataset catalog"},
	{"fig8", Fig8, "PageRank scalability across cores"},
	{"fig9", Fig9, "ML isolation levels: runtime and accuracy, ± straggler"},
	{"fig10a", Fig10a, "transaction overhead breakdown, batch size 1"},
	{"fig10b", Fig10b, "batch size sweep"},
	{"fig11", Fig11, "overhead of storing multiple versions"},
	{"tab2", Table2, "SGD dataset catalog"},
	{"fig12", Fig12, "SGD runtime: Hogwild! vs DB4ML vs Hogwild++"},
	{"fig13", Fig13, "SGD scalability and accuracy"},
	{"fig14", Fig14, "SGD micro-architecture: cycles and L1 misses per sample"},
	{"locality", Locality, "extra: NUMA locality by partitioning scheme"},
	{"mixed", Mixed, "extra: OLTP throughput with and without a running ML uber-transaction"},
	{"concurrent", Concurrent, "extra: concurrent ML jobs on one shared worker pool vs sequential"},
	{"chaos", Chaos, "extra: seeded fault-injection sweep checked against the isolation contracts"},
	{"resilience", Resilience, "extra: supervision under chaos — shed/retried/panicked/retired counts per burst trial"},
	{"gc", GC, "extra: version-GC soak — retained versions across consecutive ML runs with and without the reclaimer"},
	{"plan", Plan, "extra: declarative plan layer — materialized baseline vs streamed vs predicate pushdown vs hash pre-sizing"},
	{"shard", Shard, "extra: shard-per-node scale-out — distributed uber-transaction throughput on 1/2/4-shard clusters"},
	{"recovery", Recovery, "extra: durability — kill-point recovery matrix and group-commit throughput by fsync policy"},
	{"explain", Explain, "extra: EXPLAIN / EXPLAIN ANALYZE — planner annotations vs measured per-operator execution"},
}

// Run executes the experiment with the given id, or every experiment when
// id is "all". An "all" run keeps going past a failing experiment so one
// broken figure does not mask the rest; the failures are aggregated into
// the returned error.
func Run(id string, opts Options) error {
	if id == "all" {
		var errs []error
		for _, e := range registry {
			if err := e.fn(opts); err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", e.id, err))
			}
		}
		return errors.Join(errs...)
	}
	for _, e := range registry {
		if e.id == id {
			return e.fn(opts)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, IDs())
}

// IDs lists the known experiment ids in the paper's order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) string {
	for _, e := range registry {
		if e.id == id {
			return e.doc
		}
	}
	return ""
}

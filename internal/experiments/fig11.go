package experiments

import (
	"fmt"
	"time"

	"db4ml/internal/cachesim"
	"db4ml/internal/storage"
)

// Fig11 reproduces Figure 11: the overhead of physically storing 1–64
// intermediate versions per iterative record, measured for one PageRank
// iteration on the gplus stand-in. "Cycles" are wall-clock time of the
// real loop; L1/LLC misses come from replaying the loop's address trace
// through the cache simulator (the reproduction's substitute for PMU
// counters, see DESIGN.md). All numbers are relative to a single version.
func Fig11(opts Options) error {
	opts = opts.withDefaults()
	g := prGraph("gplus", opts.Quick)
	n := g.NumNodes()
	versionCounts := []int{1, 2, 4, 8, 16, 32, 64}
	if opts.Quick {
		versionCounts = []int{1, 4, 16}
	}

	type sample struct {
		cycles    time.Duration
		l1Misses  uint64
		llcMisses uint64
	}
	results := make([]sample, 0, len(versionCounts))

	for _, nv := range versionCounts {
		recs := make([]*storage.IterativeRecord, n)
		init := storage.Payload{0}
		init.SetFloat64(0, 1/float64(n))
		for v := range recs {
			recs[v] = storage.NewIterativeRecord(init, nv)
		}
		buf := make(storage.Payload, 1)
		out := make(storage.Payload, 1)
		iteration := func() {
			for v := int32(0); int(v) < n; v++ {
				sum := 0.0
				for _, u := range g.InNeighbors(v) {
					recs[u].ReadRecent(buf)
					sum += buf.Float64(0) / float64(g.OutDegree(u))
				}
				out.SetFloat64(0, 0.15/float64(n)+0.85*sum)
				recs[v].Install(out)
			}
		}
		iteration() // warm up and advance the circular buffers
		iteration()
		elapsed := timed(opts.Runs, iteration)

		// Address-trace replay of the same access pattern.
		h := cachesim.NewXeonE78830()
		for v := int32(0); int(v) < n; v++ {
			for _, u := range g.InNeighbors(v) {
				r := recs[u]
				latest := r.Latest()
				h.Access(uint64(r.HeaderAddr()), 8)
				h.Access(uint64(r.SlotMetaAddr(latest)), 16)
				h.Access(uint64(r.SlotDataAddr(latest, 0)), 8)
			}
			r := recs[v]
			next := r.Latest() + 1
			h.Access(uint64(r.HeaderAddr()), 8)
			h.Access(uint64(r.SlotMetaAddr(next)), 16)
			h.Access(uint64(r.SlotDataAddr(next, 0)), 8)
		}
		st := h.Stats()
		results = append(results, sample{cycles: elapsed, l1Misses: st.L1Misses, llcMisses: st.LLCMisses})
	}

	header(opts.Out, fmt.Sprintf("Figure 11: overhead of storing multiple versions (gplus stand-in, %d nodes; relative to 1 version)", n))
	tw := tab(opts.Out, "versions", "cycles (rel)", "L1 misses (rel)", "LLC misses (rel)")
	base := results[0]
	for i, nv := range versionCounts {
		r := results[i]
		row(tw, nv,
			float64(r.cycles)/float64(base.cycles),
			ratio(r.l1Misses, base.l1Misses),
			ratio(r.llcMisses, base.llcMisses))
	}
	return tw.Flush()
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a)
	}
	return float64(a) / float64(b)
}

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"db4ml"
)

// ExplainResult is the machine-readable output of the explain experiment
// (db4ml-bench -exp explain -benchjson ...).
type ExplainResult struct {
	Experiment string `json:"experiment"`
	FactRows   int    `json:"fact_rows"`
	DimRows    int    `json:"dim_rows"`
	// Logical is the EXPLAIN rendering: planner estimates, pushdown and
	// pre-sizing annotations, no execution.
	Logical string `json:"logical"`
	// Analyzed is the EXPLAIN ANALYZE rendering: measured per-operator
	// rows and wall time from one supervised run.
	Analyzed string `json:"analyzed"`
	// ScanRowsOut is what the fact scan measurably emitted — the pushdown
	// effect confirmed by execution, not just promised by the plan.
	ScanRowsOut uint64 `json:"scan_rows_out"`
	ResultRows  int    `json:"result_rows"`
}

// Explain demonstrates the two flavours of the plan debug surface on the
// plan experiment's star query: EXPLAIN renders the planner's decisions
// (cardinality estimates, predicate pushdown compiled into the scan,
// hash-build pre-sizing) without executing, and EXPLAIN ANALYZE re-renders
// the same tree with measured per-operator rows and time after a
// supervised run. The experiment fails unless the promises and the
// measurements agree: the plan must carry the pushdown annotation, and the
// executed scan must emit only the filtered fraction.
func Explain(opts Options) error {
	opts = opts.withDefaults()
	factRows, dimRows := 50_000, 5_000
	if opts.Quick {
		factRows, dimRows = 5_000, 500
	}
	const selectPct = 0.05

	db := db4ml.Open(db4ml.WithWorkers(2))
	defer db.Close()

	fact, err := db.CreateTable("Fact",
		db4ml.Column{Name: "ID", Type: db4ml.Int64},
		db4ml.Column{Name: "K", Type: db4ml.Int64},
		db4ml.Column{Name: "V", Type: db4ml.Float64})
	if err != nil {
		return err
	}
	dim, err := db.CreateTable("Dim",
		db4ml.Column{Name: "DK", Type: db4ml.Int64},
		db4ml.Column{Name: "W", Type: db4ml.Float64})
	if err != nil {
		return err
	}
	load := make([]db4ml.Payload, factRows)
	for i := range load {
		p := fact.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetInt64(1, int64(i%dimRows))
		p.SetFloat64(2, float64((uint64(i)*2654435761)%uint64(factRows)))
		load[i] = p
	}
	if err := db.BulkLoad(fact, load); err != nil {
		return err
	}
	dload := make([]db4ml.Payload, dimRows)
	for k := range dload {
		p := dim.Schema().NewPayload()
		p.SetInt64(0, int64(k))
		p.SetFloat64(1, 1+float64(k%7))
		dload[k] = p
	}
	if err := db.BulkLoad(dim, dload); err != nil {
		return err
	}

	thresh := selectPct * float64(factRows)
	query := db4ml.Aggregate(
		db4ml.Join(
			db4ml.Filter(db4ml.Scan(fact), db4ml.FloatCmp("V", db4ml.Lt, thresh)),
			db4ml.Scan(dim), "K", "DK"),
		db4ml.Sum, "K", "s", db4ml.Mul(db4ml.Col("V"), db4ml.Col("W")))

	// EXPLAIN: the rewritten tree with the planner's annotations.
	logical, err := db.ExplainQuery(query)
	if err != nil {
		return err
	}
	if !strings.Contains(logical.Render(), "scan(Fact)+pushdown") {
		return fmt.Errorf("explain: filter not pushed into the fact scan:\n%s", logical.Render())
	}

	// EXPLAIN ANALYZE: run it, then read the measured operator tree.
	h, err := db.SubmitQuery(context.Background(), db4ml.QueryRun{Plan: query})
	if err != nil {
		return err
	}
	rel, err := h.Wait()
	if err != nil {
		return err
	}
	analyzed := h.Explain()
	if analyzed == nil || !analyzed.Analyzed {
		return fmt.Errorf("explain: no analyzed tree on the handle after a run")
	}
	var scanOut uint64
	var walk func(n *db4ml.ExplainNode)
	walk = func(n *db4ml.ExplainNode) {
		if strings.HasPrefix(n.Op, "scan(Fact)") {
			scanOut = n.RowsOut
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(analyzed)
	if scanOut == 0 || scanOut >= uint64(factRows)/10 {
		return fmt.Errorf("explain: measured fact scan emitted %d of %d rows — pushdown promise not kept",
			scanOut, factRows)
	}
	if analyzed.RowsOut != uint64(len(rel.Rows)) {
		return fmt.Errorf("explain: root reports %d rows, relation has %d",
			analyzed.RowsOut, len(rel.Rows))
	}

	header(opts.Out, "EXPLAIN / EXPLAIN ANALYZE: planner promises vs measured execution")
	fmt.Fprintf(opts.Out, "fact %d rows, dim %d rows, filter keeps ~%.0f%%\n", factRows, dimRows, 100*selectPct)
	fmt.Fprintf(opts.Out, "\nEXPLAIN\n%s", logical.Render())
	fmt.Fprintf(opts.Out, "\nEXPLAIN ANALYZE\n%s", analyzed.Render())
	fmt.Fprintf(opts.Out, "\nfact scan emitted %d of %d rows; %d result groups\n",
		scanOut, factRows, len(rel.Rows))

	if opts.BenchFile != "" {
		res := ExplainResult{
			Experiment: "explain", FactRows: factRows, DimRows: dimRows,
			Logical: logical.Render(), Analyzed: analyzed.Render(),
			ScanRowsOut: scanOut, ResultRows: len(rel.Rows),
		}
		js, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.BenchFile, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(opts.Out, "\nwrote %s\n", opts.BenchFile)
	}
	return nil
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"db4ml"
	"db4ml/internal/chaos"
	"db4ml/internal/crashsim"
	"db4ml/internal/itx"
	"db4ml/internal/storage"
	"db4ml/internal/wal"
)

// RecoveryTrialResult is one kill-point trial's account in
// BENCH_RECOVERY.json.
type RecoveryTrialResult struct {
	Point  string `json:"point"`
	Shards int    `json:"shards"`
	// Killed is whether the armed kill-point fired during the trial.
	Killed bool `json:"killed"`
	// Acked is whether the workload's uber-commit was acknowledged before
	// the crash (acknowledged commits must survive recovery).
	Acked bool `json:"acked"`
	// Checked is how many recovered rows the atomicity checker examined.
	Checked int `json:"checked"`
	// Ok is the committed-exactly-or-absent verdict.
	Ok bool `json:"ok"`
}

// RecoveryPolicyResult is one fsync policy's group-commit throughput row.
type RecoveryPolicyResult struct {
	Policy string `json:"policy"`
	// UberCommits is how many WAL-logged uber-commits the timed loop ran.
	UberCommits int `json:"uber_commits"`
	// WallNanos is the mean wall-clock of the whole loop over Options.Runs.
	WallNanos int64 `json:"wall_ns"`
	// PerSec is UberCommits divided by the mean wall-clock.
	PerSec float64 `json:"per_sec"`
}

// RecoveryResult is the machine-readable output of the recovery experiment
// (db4ml-bench -exp recovery -benchjson BENCH_RECOVERY.json).
type RecoveryResult struct {
	Experiment string                 `json:"experiment"`
	Trials     []RecoveryTrialResult  `json:"trials"`
	Policies   []RecoveryPolicyResult `json:"policies"`
}

// recoveryIncSub increments one row by 1 per iteration until target — the
// crash-trial counter workload, reused for the group-commit timing loop.
type recoveryIncSub struct {
	tbl    *db4ml.Table
	row    db4ml.RowID
	target float64
	rec    *storage.IterativeRecord
	buf    storage.Payload
	cur    float64
}

func (s *recoveryIncSub) Begin(ctx *itx.Ctx) {
	s.rec = s.tbl.IterRecord(s.row)
	s.buf = make(storage.Payload, 2)
}

func (s *recoveryIncSub) Execute(ctx *itx.Ctx) {
	ctx.Read(s.rec, s.buf)
	s.cur = s.buf.Float64(1) + 1
	s.buf.SetFloat64(1, s.cur)
	ctx.Write(s.rec, s.buf)
}

func (s *recoveryIncSub) Validate(ctx *itx.Ctx) itx.Action {
	if s.cur >= s.target {
		return itx.Done
	}
	return itx.Commit
}

// Recovery is an extra experiment (not a paper figure): durability and
// crash recovery. Part one sweeps every injected kill-point — inside the
// commit path, the WAL appender, the 2PC coordinator's commit window, and
// the checkpointer — across 1-, 2-, and 4-shard clusters, recovering a
// fresh kernel from the surviving log after each crash and checking the
// recovered table against the committed-exactly-or-absent contract
// (internal/crashsim). The sweep is self-asserting: any atomicity
// violation, a kill-point that failed to fire, or an acknowledgement on the
// wrong side of the crash window fails the experiment. Part two measures
// group-commit throughput under the three WAL fsync policies (always /
// interval / none): the same uber-commit workload runs as a sequence of
// logged commits and the acknowledged-commit rate is compared. With
// Options.BenchFile set, both parts are written as JSON (the committed
// BENCH_RECOVERY.json).
func Recovery(opts Options) error {
	opts = opts.withDefaults()
	res := RecoveryResult{Experiment: "recovery"}

	// Part one: the kill-point matrix.
	shardCounts := []int{1, 2, 4}
	if opts.Quick {
		shardCounts = []int{1, 2}
	}
	points := append([]chaos.CrashPoint{chaos.CrashNone}, chaos.CrashPoints()...)

	header(opts.Out, "recovery: kill-point matrix (committed-exactly-or-absent)")
	tw := tab(opts.Out, "kill-point", "shards", "killed", "acked", "rows checked", "verdict")
	for _, shards := range shardCounts {
		for _, kp := range points {
			dir, err := os.MkdirTemp("", "db4ml-recovery-*")
			if err != nil {
				return err
			}
			out, err := crashsim.RunTrial(crashsim.Config{Shards: shards, Kill: kp, Dir: dir})
			os.RemoveAll(dir)
			if err != nil {
				return fmt.Errorf("recovery: trial %s/%d shards: %w", kp, shards, err)
			}
			tr := RecoveryTrialResult{
				Point:   kp.String(),
				Shards:  shards,
				Killed:  out.Killed,
				Acked:   out.Acked,
				Checked: out.Report.RecoveryChecked,
				Ok:      out.Report.Ok(),
			}
			res.Trials = append(res.Trials, tr)
			verdict := "ok"
			if !tr.Ok {
				verdict = "VIOLATED"
			}
			row(tw, tr.Point, shards, tr.Killed, tr.Acked, tr.Checked, verdict)

			// Self-asserting gates.
			if !tr.Ok {
				return fmt.Errorf("recovery: %s at %d shards violated atomicity: %v",
					kp, shards, out.Report.Violations)
			}
			if tr.Checked == 0 {
				return fmt.Errorf("recovery: %s at %d shards checked no rows (vacuous trial)", kp, shards)
			}
			wantKilled := kp != chaos.CrashNone &&
				!(kp == chaos.CrashBetweenShardCommits && shards == 1)
			if tr.Killed != wantKilled {
				return fmt.Errorf("recovery: %s at %d shards: killed=%v, want %v",
					kp, shards, tr.Killed, wantKilled)
			}
			wantAcked := kp == chaos.CrashNone || kp == chaos.CrashMidCheckpoint ||
				(kp == chaos.CrashBetweenShardCommits && shards == 1)
			if tr.Acked != wantAcked {
				return fmt.Errorf("recovery: %s at %d shards: acked=%v, want %v",
					kp, shards, tr.Acked, wantAcked)
			}
		}
	}
	tw.Flush()

	// Part two: group-commit throughput by fsync policy. Each loop pass is
	// one uber-commit whose redo record is appended (and, per policy,
	// fsynced) before the acknowledgement.
	rows, commits := 32, 20
	if opts.Quick {
		rows, commits = 8, 5
	}
	header(opts.Out, "recovery: group-commit throughput by fsync policy")
	fmt.Fprintf(opts.Out, "%d rows, %d uber-commits per pass, %d runs per policy\n\n",
		rows, commits, opts.Runs)

	onePass := func(policy wal.SyncPolicy) (time.Duration, error) {
		dir, err := os.MkdirTemp("", "db4ml-walbench-*")
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		db := db4ml.Open(db4ml.WithWAL(dir), db4ml.WithWALSync(policy), db4ml.WithWorkers(2))
		defer db.Close()
		tbl, err := db.CreateTable("Counter",
			db4ml.Column{Name: "ID", Type: db4ml.Int64},
			db4ml.Column{Name: "Value", Type: db4ml.Float64})
		if err != nil {
			return 0, err
		}
		load := make([]db4ml.Payload, rows)
		for i := range load {
			p := tbl.Schema().NewPayload()
			p.SetInt64(0, int64(i))
			p.SetFloat64(1, 0)
			load[i] = p
		}
		if err := db.BulkLoad(tbl, load); err != nil {
			return 0, err
		}
		start := time.Now()
		for c := 1; c <= commits; c++ {
			subs := make([]db4ml.IterativeTransaction, rows)
			for i := range subs {
				subs[i] = &recoveryIncSub{tbl: tbl, row: db4ml.RowID(i), target: float64(c)}
			}
			if _, err := db.RunML(db4ml.MLRun{
				Isolation: db4ml.MLOptions{Level: db4ml.Asynchronous},
				Label:     "wal-bench",
				BatchSize: 8,
				Attach:    []db4ml.Attachment{{Table: tbl}},
				Subs:      subs,
			}); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	tw = tab(opts.Out, "policy", "wall", "uber-commits", "commits/s", "vs always")
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncNone} {
		var total time.Duration
		for r := 0; r < opts.Runs; r++ {
			wallOne, err := onePass(policy)
			if err != nil {
				return err
			}
			total += wallOne
		}
		wall := total / time.Duration(opts.Runs)
		pr := RecoveryPolicyResult{
			Policy:      policy.String(),
			UberCommits: commits,
			WallNanos:   int64(wall),
			PerSec:      float64(commits) / wall.Seconds(),
		}
		res.Policies = append(res.Policies, pr)
		scale := float64(res.Policies[0].WallNanos) / float64(pr.WallNanos)
		row(tw, pr.Policy, wall, pr.UberCommits, fmt.Sprintf("%.0f", pr.PerSec), fmt.Sprintf("%.2fx", scale))
	}
	tw.Flush()

	if opts.BenchFile != "" {
		js, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.BenchFile, append(js, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(opts.Out, "\nwrote %s\n", opts.BenchFile)
	}
	return nil
}

package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestResilienceQuick runs the burst trials end to end in quick mode: the
// oracle column must read ok for every seed (all jobs committed exactly or
// were retired with a typed error), and supervision must actually have
// fired (sheds, retries, contained panics all nonzero in the report).
func TestResilienceQuick(t *testing.T) {
	var buf strings.Builder
	opts := quickOpts(&buf)
	opts.Seeds = 2
	opts.Deadline = 150 * time.Millisecond
	if err := Resilience(opts); err != nil {
		t.Fatalf("resilience experiment failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, col := range []string{"committed", "deadline_retired", "sheds", "retries", "panics", "oracle"} {
		if !strings.Contains(out, col) {
			t.Fatalf("report missing column %q:\n%s", col, out)
		}
	}
	if strings.Contains(out, "violated") {
		t.Fatalf("oracle violation:\n%s", out)
	}
}

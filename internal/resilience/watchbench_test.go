package resilience

import (
	"testing"
	"time"
)

// BenchmarkWatchStartStop prices arming and cancelling a watchdog for a job
// that finishes before its first poll — the common case on a healthy
// engine, and the reason Watch rides a time.AfterFunc chain instead of a
// dedicated goroutine (which costs a scheduler round-trip per job).
func BenchmarkWatchStartStop(b *testing.B) {
	var n uint64
	progress := func() uint64 { n++; return n }
	for i := 0; i < b.N; i++ {
		stop := Watch(WatchConfig{StallTimeout: 10 * time.Second}, progress, func(error) {})
		stop()
	}
}

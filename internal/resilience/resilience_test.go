package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestErrorTaxonomy(t *testing.T) {
	var err error = &PanicError{Value: "boom", Worker: 3, Stack: []byte("stack")}
	if !errors.Is(err, ErrJobPanicked) {
		t.Fatal("PanicError must match ErrJobPanicked")
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" || pe.Worker != 3 {
		t.Fatalf("PanicError evidence lost: %+v", pe)
	}

	err = &StallError{Quiet: 200 * time.Millisecond, Beats: 42}
	if !errors.Is(err, ErrJobStalled) {
		t.Fatal("StallError must match ErrJobStalled")
	}

	err = &DeadlineError{Deadline: time.Second}
	if !errors.Is(err, ErrJobDeadline) {
		t.Fatal("DeadlineError must match ErrJobDeadline")
	}

	// Wrapping keeps the classification.
	wrapped := fmt.Errorf("attempt 2: %w", &PanicError{Value: 1})
	if !errors.Is(wrapped, ErrJobPanicked) {
		t.Fatal("wrapped PanicError must still match ErrJobPanicked")
	}
}

func TestDefaultRetryable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&PanicError{Value: "x"}, true},
		{&StallError{Quiet: time.Second}, true},
		{&DeadlineError{Deadline: time.Second}, false},
		{ErrOverloaded, false},
		{errors.New("unrelated"), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := c.err != nil && DefaultRetryable(c.err); got != c.want {
			t.Errorf("DefaultRetryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestRetryScheduleDeterminism is the satellite contract: the same
// (seed, policy) pair produces bit-identical backoff schedules, and a
// different seed produces a different (jittered) schedule.
func TestRetryScheduleDeterminism(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  64 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
		Seed:        12345,
	}
	a, b := p.Schedule(), p.Schedule()
	if len(a) != 5 {
		t.Fatalf("schedule length = %d, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}

	other := p
	other.Seed = 54321
	c := other.Schedule()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jittered schedules")
	}

	// Jitter only ever shortens the step and never below 1ns.
	for i, d := range a {
		step := time.Millisecond << i
		if step > 64*time.Millisecond {
			step = 64 * time.Millisecond
		}
		if d > step || d < 1 {
			t.Fatalf("retry %d backoff %v outside (0, %v]", i+1, d, step)
		}
	}
}

// TestBackoffTokenDecorrelation: handles sharing one policy but carrying
// distinct tokens must follow different jittered schedules (no retry
// lockstep), each deterministically; token 0 preserves the plain stream.
func TestBackoffTokenDecorrelation(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, Jitter: 0.5, Seed: 42}
	a, b := p.ScheduleFor(1), p.ScheduleFor(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct tokens produced identical jittered schedules")
	}
	for i, d := range p.ScheduleFor(1) {
		if d != a[i] {
			t.Fatalf("ScheduleFor(1) not deterministic at %d: %v vs %v", i, d, a[i])
		}
	}
	for i, d := range p.ScheduleFor(0) {
		if got := p.Backoff(i + 1); d != got {
			t.Fatalf("token 0 diverges from Backoff at %d: %v vs %v", i, d, got)
		}
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{1, 2, 4, 8, 8, 8, 8, 8, 8}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestShouldRetry(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}
	if _, ok := p.ShouldRetry(&PanicError{Value: "x"}, 1); !ok {
		t.Fatal("attempt 1 of 3 with a panic must retry")
	}
	if _, ok := p.ShouldRetry(&PanicError{Value: "x"}, 3); ok {
		t.Fatal("attempt 3 of 3 must not retry")
	}
	if _, ok := p.ShouldRetry(ErrOverloaded, 1); ok {
		t.Fatal("overload is terminal under the default classifier")
	}
	if _, ok := p.ShouldRetry(nil, 1); ok {
		t.Fatal("nil error must not retry")
	}

	custom := RetryPolicy{MaxAttempts: 2, RetryIf: func(err error) bool { return errors.Is(err, ErrOverloaded) }}
	if _, ok := custom.ShouldRetry(ErrOverloaded, 1); !ok {
		t.Fatal("custom classifier ignored")
	}
	if zero := (RetryPolicy{}); zero.Enabled() {
		t.Fatal("zero policy must be disabled")
	}
}

package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateFastFail(t *testing.T) {
	g := NewGate(2)
	ctx := context.Background()
	if err := g.Acquire(ctx, false); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx, false); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx, false); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full gate returned %v, want ErrOverloaded", err)
	}
	if g.Shed() != 1 || g.InFlight() != 2 || g.Capacity() != 2 {
		t.Fatalf("gate accounting off: shed=%d inflight=%d cap=%d", g.Shed(), g.InFlight(), g.Capacity())
	}
	if p := g.Pressure(); p != 1 {
		t.Fatalf("pressure = %v, want 1", p)
	}
	g.Release()
	if err := g.Acquire(ctx, false); err != nil {
		t.Fatalf("slot not reusable after release: %v", err)
	}
}

func TestGateWait(t *testing.T) {
	g := NewGate(1)
	ctx := context.Background()
	if err := g.Acquire(ctx, true); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		acquired <- g.Acquire(ctx, true)
	}()
	select {
	case err := <-acquired:
		t.Fatalf("waiting acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiting acquire never got the released slot")
	}
	wg.Wait()
	if g.Shed() != 0 {
		t.Fatalf("waiting mode shed %d submissions", g.Shed())
	}
}

func TestGateWaitHonorsContext(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background(), true); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx, true); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled wait returned %v, want context.DeadlineExceeded", err)
	}
}

func TestNilGate(t *testing.T) {
	var g *Gate = NewGate(0)
	if g != nil {
		t.Fatal("NewGate(0) must be nil (unbounded)")
	}
	if err := g.Acquire(context.Background(), false); err != nil {
		t.Fatal(err)
	}
	g.Release()
	if g.InFlight() != 0 || g.Capacity() != 0 || g.Pressure() != 0 || g.Shed() != 0 {
		t.Fatal("nil gate must report zeros")
	}
}

func TestGateReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Release did not panic")
		}
	}()
	NewGate(1).Release()
}

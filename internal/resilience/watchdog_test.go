package resilience

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// expireOnce collects the watchdog's verdict and fails the test on a second
// call: Watch promises expire fires at most once.
type expireOnce struct {
	t  *testing.T
	ch chan error
	n  atomic.Int32
}

func newExpireOnce(t *testing.T) *expireOnce {
	return &expireOnce{t: t, ch: make(chan error, 1)}
}

func (e *expireOnce) fn(err error) {
	if e.n.Add(1) > 1 {
		e.t.Error("expire called more than once")
		return
	}
	e.ch <- err
}

func TestWatchConvictsStall(t *testing.T) {
	var beats atomic.Uint64
	exp := newExpireOnce(t)
	stop := Watch(WatchConfig{StallTimeout: 40 * time.Millisecond}, beats.Load, exp.fn)
	defer stop()

	// Keep the heartbeat moving for a while: no conviction.
	for i := 0; i < 5; i++ {
		beats.Add(1)
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-exp.ch:
		t.Fatalf("convicted a live job: %v", err)
	default:
	}

	// Stop beating: conviction within a few stall windows.
	select {
	case err := <-exp.ch:
		if !errors.Is(err, ErrJobStalled) {
			t.Fatalf("stall conviction error = %v, want ErrJobStalled", err)
		}
		var se *StallError
		if !errors.As(err, &se) || se.Quiet < 40*time.Millisecond {
			t.Fatalf("stall evidence wrong: %+v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never convicted a stalled job")
	}
}

func TestWatchEnforcesDeadline(t *testing.T) {
	var beats atomic.Uint64
	exp := newExpireOnce(t)
	done := make(chan struct{})
	defer close(done)
	go func() {
		// A perfectly healthy heartbeat must not save a job past its
		// deadline.
		for {
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
				beats.Add(1)
			}
		}
	}()
	start := time.Now()
	stop := Watch(WatchConfig{Deadline: 50 * time.Millisecond, StallTimeout: time.Second}, beats.Load, exp.fn)
	defer stop()
	select {
	case err := <-exp.ch:
		if !errors.Is(err, ErrJobDeadline) {
			t.Fatalf("deadline expiry error = %v, want ErrJobDeadline", err)
		}
		if e := time.Since(start); e > 2*time.Second {
			t.Fatalf("deadline enforced only after %v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never enforced the deadline")
	}
}

func TestWatchStopPreventsExpiry(t *testing.T) {
	var beats atomic.Uint64
	exp := newExpireOnce(t)
	stop := Watch(WatchConfig{StallTimeout: 30 * time.Millisecond}, beats.Load, exp.fn)
	stop()
	stop() // idempotent
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-exp.ch:
		t.Fatalf("stopped watchdog still expired: %v", err)
	default:
	}
}

func TestWatchStopFromExpireDoesNotDeadlock(t *testing.T) {
	// The executor's finish path calls stop() from inside expire (the
	// watchdog's own timer callback); Watch must not block on that. The
	// stop function is handed across via an atomic pointer, mirroring the
	// executor's handoff, since expire may run concurrently with the
	// assignment of Watch's return value.
	var beats atomic.Uint64
	var stop atomic.Pointer[func()]
	fired := make(chan struct{})
	s := Watch(WatchConfig{StallTimeout: 20 * time.Millisecond}, beats.Load, func(error) {
		if f := stop.Load(); f != nil {
			(*f)()
		}
		close(fired)
	})
	stop.Store(&s)
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("expire (with nested stop) never completed")
	}
}

func TestWatchNoopConfig(t *testing.T) {
	stop := Watch(WatchConfig{}, func() uint64 { return 0 }, func(error) {
		t.Error("no-op watchdog expired")
	})
	stop()
}

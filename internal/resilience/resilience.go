// Package resilience is the kernel's supervision layer: the error taxonomy
// of retired ML jobs, a deterministic retry policy, a per-job progress
// watchdog, and a bounded admission gate. It exists because the
// uber-transaction model makes whole-job recovery a first-class primitive —
// an aborted, panicked, or stalled job left no state visible (Section 4 of
// the paper), so retrying it from scratch is always safe — but only if the
// engine survives the fault in the first place: a panic must become a
// job-level abort instead of a process crash, a wedged worker must be
// convicted instead of hanging Wait forever, and a submission storm must be
// shed instead of oversubscribing the pool.
//
// The package is a leaf (standard library only): internal/exec consumes the
// watchdog and the panic errors, the db4ml facade consumes the retry policy
// and the gate, and tests consume all of it directly.
package resilience

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors of the supervision layer. The concrete error types below
// wrap them, so callers classify failures with errors.Is and retrieve the
// evidence (stack, quiet window, budget) with errors.As.
var (
	// ErrJobPanicked: a sub-transaction callback (Begin/Execute/Validate),
	// an iteration hook, or the engine's own batch processing panicked; the
	// supervisor contained it and aborted the job.
	ErrJobPanicked = errors.New("resilience: job panicked")
	// ErrJobStalled: the job's progress watchdog saw no iteration heartbeat
	// for the configured window and retired the job.
	ErrJobStalled = errors.New("resilience: job stalled")
	// ErrJobDeadline: the job exceeded its wall-clock deadline before
	// converging and was retired.
	ErrJobDeadline = errors.New("resilience: job deadline exceeded")
	// ErrOverloaded: admission control rejected the submission because the
	// in-flight-job limit was reached and waiting was not requested.
	ErrOverloaded = errors.New("resilience: overloaded: in-flight job limit reached")
)

// PanicError is the job-level abort produced by panic containment. It
// carries the recovered value and the goroutine stack captured at the
// recovery point, and matches ErrJobPanicked under errors.Is.
type PanicError struct {
	// Value is the value the callback panicked with.
	Value any
	// Stack is the stack trace captured by the recovering worker
	// (runtime/debug.Stack), pointing at the panicking callback.
	Stack []byte
	// Worker is the pool worker that contained the panic.
	Worker int
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("resilience: job panicked (worker %d): %v", e.Worker, e.Value)
}

// Unwrap makes errors.Is(err, ErrJobPanicked) true.
func (e *PanicError) Unwrap() error { return ErrJobPanicked }

// StallError is the watchdog's conviction of a job that stopped making
// progress. It matches ErrJobStalled under errors.Is.
type StallError struct {
	// Quiet is how long the watchdog saw no heartbeat before convicting.
	Quiet time.Duration
	// Beats is the job's heartbeat count at conviction time.
	Beats uint64
}

func (e *StallError) Error() string {
	return fmt.Sprintf("resilience: job stalled: no progress for %v (%d heartbeats total)", e.Quiet, e.Beats)
}

// Unwrap makes errors.Is(err, ErrJobStalled) true.
func (e *StallError) Unwrap() error { return ErrJobStalled }

// DeadlineError is the retirement of a job that ran past its wall-clock
// budget. It matches ErrJobDeadline under errors.Is.
type DeadlineError struct {
	// Deadline is the budget the job was given.
	Deadline time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("resilience: job exceeded its %v deadline", e.Deadline)
}

// Unwrap makes errors.Is(err, ErrJobDeadline) true.
func (e *DeadlineError) Unwrap() error { return ErrJobDeadline }

// RetryPolicy governs whole-job abort-retry: how many times a failed job is
// resubmitted and how long to back off between attempts. Backoff is
// exponential with deterministic, seeded jitter — the schedule is a pure
// function of (Seed, decorrelation token, attempt), so a failing run replays
// identically and tests can assert the exact schedule, while concurrent jobs
// with distinct tokens (the facade passes the job id) don't retry in
// lockstep. The zero policy retries nothing.
//
// Retrying a whole job is safe because of uber-transaction atomicity: a
// failed attempt's uber-transaction aborted, so none of its writes are
// visible and the retry starts from exactly the state the first attempt saw
// (plus any unrelated committed OLTP traffic — the same as any fresh
// submission).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first;
	// values <= 1 disable retry.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 1ms when
	// retries are enabled).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 250ms).
	MaxBackoff time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of each step randomized away, in [0, 1): the
	// effective delay is step × (1 − Jitter×u) with u drawn deterministically
	// from (Seed, attempt). 0 disables jitter.
	Jitter float64
	// Seed drives the deterministic jitter stream.
	Seed int64
	// RetryIf classifies errors as retryable; nil uses DefaultRetryable.
	RetryIf func(error) bool
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter >= 1 {
		p.Jitter = 0.999
	}
	return p
}

// Enabled reports whether the policy performs any retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// ShouldRetry decides whether a job that just failed attempt `attempt`
// (1-based) with err should be resubmitted, and with what backoff delay.
// Equivalent to ShouldRetryFor with token 0; concurrent jobs sharing one
// policy should use ShouldRetryFor with a per-job token so their jittered
// backoffs don't line up.
func (p RetryPolicy) ShouldRetry(err error, attempt int) (time.Duration, bool) {
	return p.ShouldRetryFor(0, err, attempt)
}

// ShouldRetryFor is ShouldRetry with a per-handle decorrelation token (e.g.
// the job id) mixed into the jitter stream: jobs inheriting the same policy
// get distinct backoff schedules instead of retrying in lockstep, while the
// schedule stays a pure function of (Seed, token, retry) — deterministic
// per run, replayable in tests.
func (p RetryPolicy) ShouldRetryFor(token uint64, err error, attempt int) (time.Duration, bool) {
	if attempt < 1 || attempt >= p.MaxAttempts || err == nil {
		return 0, false
	}
	retryable := p.RetryIf
	if retryable == nil {
		retryable = DefaultRetryable
	}
	if !retryable(err) {
		return 0, false
	}
	return p.BackoffFor(token, attempt), true
}

// Backoff returns the delay before retry number `retry` (1-based: the delay
// after the first failed attempt is Backoff(1)). Deterministic in
// (policy, Seed, retry); equivalent to BackoffFor with token 0.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	return p.BackoffFor(0, retry)
}

// BackoffFor is Backoff with a per-handle decorrelation token mixed into
// the jitter seed (token 0 leaves the stream unchanged). Deterministic in
// (policy, Seed, token, retry).
func (p RetryPolicy) BackoffFor(token uint64, retry int) time.Duration {
	p = p.withDefaults()
	if retry < 1 {
		retry = 1
	}
	step := float64(p.BaseBackoff)
	for i := 1; i < retry; i++ {
		step *= p.Multiplier
		if step >= float64(p.MaxBackoff) {
			step = float64(p.MaxBackoff)
			break
		}
	}
	if step > float64(p.MaxBackoff) {
		step = float64(p.MaxBackoff)
	}
	if p.Jitter > 0 {
		u := uniform(uint64(p.Seed)^mix64(token), uint64(retry))
		step *= 1 - p.Jitter*u
	}
	if step < 1 {
		step = 1
	}
	return time.Duration(step)
}

// Schedule materializes the full backoff schedule — one delay per possible
// retry — so tests can assert determinism without sleeping through it.
// Token-0 stream; see ScheduleFor.
func (p RetryPolicy) Schedule() []time.Duration {
	return p.ScheduleFor(0)
}

// ScheduleFor materializes the schedule a handle with the given
// decorrelation token would follow.
func (p RetryPolicy) ScheduleFor(token uint64) []time.Duration {
	if !p.Enabled() {
		return nil
	}
	out := make([]time.Duration, p.MaxAttempts-1)
	for i := range out {
		out[i] = p.BackoffFor(token, i+1)
	}
	return out
}

// DefaultRetryable is the default retry classifier: panicked and stalled
// jobs are retried (the uber-transaction aborted, so a rerun is
// side-effect-free), everything else — cancellation, context errors,
// deadline exhaustion, overload, submission errors — is terminal. A
// deadline is a budget, not a transient fault: retrying it would spend the
// same budget on the same divergence.
func DefaultRetryable(err error) bool {
	return errors.Is(err, ErrJobPanicked) || errors.Is(err, ErrJobStalled)
}

// mix64 is the splitmix64 finalizer, used to spread a decorrelation token
// over the jitter seed. mix64(0) == 0, so token-0 schedules are identical to
// the plain (Seed, retry) stream.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// uniform hashes (seed, n) into [0, 1) with splitmix64 — the same generator
// family internal/chaos uses, so schedules are replayable across platforms.
func uniform(seed, n uint64) float64 {
	x := seed ^ n*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

package resilience

import (
	"sync"
	"time"
)

// WatchConfig tunes one job's watchdog.
type WatchConfig struct {
	// Deadline, when nonzero, is the job's wall-clock budget measured from
	// Watch; on expiry the watchdog calls expire with a DeadlineError.
	Deadline time.Duration
	// StallTimeout, when nonzero, convicts the job when the progress counter
	// does not advance for this long; expire receives a StallError.
	StallTimeout time.Duration
	// Poll overrides the check cadence (default: StallTimeout/4 clamped to
	// [1ms, 50ms], or Deadline/4 under the same clamp when only a deadline
	// is set).
	Poll time.Duration
}

func (c WatchConfig) pollInterval() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	base := c.StallTimeout
	if base == 0 {
		base = c.Deadline
	}
	p := base / 4
	if p < time.Millisecond {
		p = time.Millisecond
	}
	if p > 50*time.Millisecond {
		p = 50 * time.Millisecond
	}
	return p
}

// Watch starts a progress watchdog that samples progress() — a
// monotonically increasing heartbeat counter — every poll interval and
// calls expire exactly once when the deadline passes or the counter stops
// advancing for StallTimeout. It returns a stop function that is
// idempotent, never blocks, and is safe to call from inside expire itself
// (the executor's job-finish path runs it regardless of who won the race).
// A config with neither a deadline nor a stall timeout starts nothing.
//
// The checks ride a rescheduling time.AfterFunc rather than a dedicated
// goroutine: a job that finishes before its first poll interval only ever
// pays one timer arm + cancel, and never wakes anything — which keeps
// supervision cheap for the short-job-storm case an admission-controlled
// engine actually serves. Callbacks are serialized (each schedules the
// next), so the sampling state below needs no lock.
func Watch(cfg WatchConfig, progress func() uint64, expire func(error)) (stop func()) {
	if cfg.Deadline <= 0 && cfg.StallTimeout <= 0 {
		return func() {}
	}
	var (
		mu      sync.Mutex // guards timer/stopped; never held across expire
		stopped bool
		timer   *time.Timer
		poll    = cfg.pollInterval()

		start      = time.Now()
		last       = progress()
		lastChange = start
	)
	check := func() {
		mu.Lock()
		if stopped {
			mu.Unlock()
			return
		}
		mu.Unlock()
		now := time.Now()
		var verdict error
		if cfg.Deadline > 0 && now.Sub(start) >= cfg.Deadline {
			verdict = &DeadlineError{Deadline: cfg.Deadline}
		} else if cfg.StallTimeout > 0 {
			if beats := progress(); beats != last {
				last = beats
				lastChange = now
			} else if quiet := now.Sub(lastChange); quiet >= cfg.StallTimeout {
				verdict = &StallError{Quiet: quiet, Beats: beats}
			}
		}
		if verdict != nil {
			// Late-conviction guard: the job may have finished (and called
			// stop) while this check was sampling; re-check immediately before
			// committing to the conviction so a finished job is not convicted
			// spuriously. Setting stopped here also makes expire single-shot
			// even if stop races in between.
			mu.Lock()
			if stopped {
				mu.Unlock()
				return
			}
			stopped = true
			mu.Unlock()
			expire(verdict)
			return
		}
		mu.Lock()
		if !stopped {
			timer.Reset(poll)
		}
		mu.Unlock()
	}
	mu.Lock()
	timer = time.AfterFunc(poll, check)
	mu.Unlock()
	return func() {
		mu.Lock()
		if !stopped {
			stopped = true
			timer.Stop()
		}
		mu.Unlock()
	}
}

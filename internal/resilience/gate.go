package resilience

import (
	"context"
	"sync/atomic"
)

// Gate is the admission controller: a bounded count of in-flight ML jobs.
// Submissions acquire a slot before the uber-transaction begins and release
// it when the job (including every retry attempt) finishes, so the limit
// bounds real engine load, not just momentary submission rate. A nil *Gate
// admits everything at zero cost.
type Gate struct {
	sem  chan struct{}
	shed atomic.Uint64
}

// NewGate builds a gate admitting at most max concurrent jobs; max <= 0
// returns nil (unbounded).
func NewGate(max int) *Gate {
	if max <= 0 {
		return nil
	}
	return &Gate{sem: make(chan struct{}, max)}
}

// Acquire claims one slot. With wait=false it fast-fails with ErrOverloaded
// when the gate is full (load shedding); with wait=true it blocks until a
// slot frees or ctx is cancelled. A nil gate always admits.
func (g *Gate) Acquire(ctx context.Context, wait bool) error {
	if g == nil {
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	if !wait {
		g.shed.Add(1)
		return ErrOverloaded
	}
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed by Acquire. A nil gate is a no-op.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	select {
	case <-g.sem:
	default:
		panic("resilience: Gate.Release without Acquire")
	}
}

// InFlight returns the number of currently held slots (0 for a nil gate).
func (g *Gate) InFlight() int {
	if g == nil {
		return 0
	}
	return len(g.sem)
}

// Capacity returns the admission limit (0 for a nil gate).
func (g *Gate) Capacity() int {
	if g == nil {
		return 0
	}
	return cap(g.sem)
}

// Pressure returns the load fraction in [0, 1]: held slots over capacity.
// The facade's degradation hook keys batch-size shrinking on it. A nil gate
// reports 0 — no admission control, no pressure signal.
func (g *Gate) Pressure() float64 {
	if g == nil {
		return 0
	}
	return float64(len(g.sem)) / float64(cap(g.sem))
}

// Shed returns how many submissions the gate fast-failed with ErrOverloaded.
func (g *Gate) Shed() uint64 {
	if g == nil {
		return 0
	}
	return g.shed.Load()
}

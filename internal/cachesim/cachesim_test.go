package cachesim

import "testing"

func tiny() *Cache {
	// 4 sets × 2 ways × 64B lines = 512B.
	return NewCache(Config{SizeBytes: 512, Ways: 2, LineBytes: 64})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 1, LineBytes: 64},
		{SizeBytes: 512, Ways: 2, LineBytes: 48},     // not power of two
		{SizeBytes: 96 * 64, Ways: 2, LineBytes: 64}, // 48 sets, not power of two
		{SizeBytes: 512, Ways: 0, LineBytes: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if err := (Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := tiny()
	if c.Touch(0) {
		t.Fatal("cold access hit")
	}
	if !c.Touch(0) {
		t.Fatal("repeat access missed")
	}
	if !c.Touch(63) {
		t.Fatal("same-line access missed")
	}
	if c.Touch(64) {
		t.Fatal("next line hit cold")
	}
	if c.Accesses() != 4 || c.Misses() != 2 {
		t.Fatalf("counters = (%d, %d)", c.Accesses(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()
	// These three addresses map to set 0 (4 sets × 64B = 256B stride).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Touch(a)
	c.Touch(b)
	c.Touch(d) // evicts a (LRU)
	if c.Touch(a) {
		t.Fatal("evicted line still resident")
	}
	// After reloading a, the LRU line is b.
	if c.Touch(d) {
		// d must still be resident: reloading a evicted b, not d.
	} else {
		t.Fatal("MRU line was evicted instead of LRU")
	}
}

func TestLRUTouchRefreshes(t *testing.T) {
	c := tiny()
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Touch(a)
	c.Touch(b)
	c.Touch(a) // refresh a: LRU is now b
	c.Touch(d) // evicts b
	if !c.Touch(a) {
		t.Fatal("refreshed line was evicted")
	}
	if c.Touch(b) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestSetsAreIndependent(t *testing.T) {
	c := tiny()
	// Different sets: fill set 0 beyond its ways; set 1 line must survive.
	c.Touch(64) // set 1
	for i := uint64(0); i < 8; i++ {
		c.Touch(i * 256) // all set 0
	}
	if !c.Touch(64) {
		t.Fatal("set 0 pressure evicted set 1 line")
	}
}

func TestReset(t *testing.T) {
	c := tiny()
	c.Touch(0)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("counters survive Reset")
	}
	if c.Touch(0) {
		t.Fatal("content survives Reset")
	}
}

func TestHierarchyFallThrough(t *testing.T) {
	h := NewXeonE78830()
	h.Access(0, 8)
	st := h.Stats()
	if st.L1Misses != 1 || st.LLCMisses != 1 {
		t.Fatalf("cold access stats = %+v", st)
	}
	h.Access(0, 8)
	st = h.Stats()
	if st.L1Misses != 1 {
		t.Fatalf("L1 hit recorded as miss: %+v", st)
	}
	// An access spanning two lines touches both.
	h.Reset()
	h.Access(60, 8)
	st = h.Stats()
	if st.Accesses != 2 {
		t.Fatalf("straddling access touched %d lines, want 2", st.Accesses)
	}
}

func TestHierarchyCapacityEffect(t *testing.T) {
	// A working set larger than L1 but smaller than LLC: on the second
	// pass everything misses L1 (capacity) but hits LLC.
	h := NewXeonE78830()
	const lines = 1024 // 64 KiB, 2x L1
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < lines; i++ {
			h.Access(i*64, 8)
		}
	}
	st := h.Stats()
	if st.L1Misses != 2*lines {
		t.Fatalf("L1 misses = %d, want %d (LRU capacity thrash)", st.L1Misses, 2*lines)
	}
	if st.LLCMisses != lines {
		t.Fatalf("LLC misses = %d, want %d (second pass hits)", st.LLCMisses, lines)
	}
}

func TestSmallWorkingSetStaysInL1(t *testing.T) {
	h := NewXeonE78830()
	const lines = 256 // 16 KiB, fits in 32 KiB L1
	for pass := 0; pass < 4; pass++ {
		for i := uint64(0); i < lines; i++ {
			h.Access(i*64, 8)
		}
	}
	st := h.Stats()
	if st.L1Misses != lines {
		t.Fatalf("L1 misses = %d, want %d (only cold misses)", st.L1Misses, lines)
	}
}

func TestZeroSizeAccess(t *testing.T) {
	h := NewXeonE78830()
	h.Access(100, 0)
	if h.Stats().Accesses != 1 {
		t.Fatal("zero-size access not clamped to one byte")
	}
}

func TestNewCachePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCache accepted invalid config")
		}
	}()
	NewCache(Config{SizeBytes: 100, Ways: 3, LineBytes: 50})
}

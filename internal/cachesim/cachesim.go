// Package cachesim is a set-associative LRU cache simulator standing in
// for the hardware performance counters the paper reads (L1 and LLC misses
// in Figures 10(a), 11 and 14). Experiments replay the address trace of an
// instrumented hot loop — the real addresses of the Go objects involved —
// through a two-level hierarchy modeled after the evaluation machine's
// Xeon E7-8830 (32 KiB 8-way L1D, 24 MiB 24-way LLC, 64-byte lines) and
// report per-level miss counts.
//
// The simulator is single-threaded by design: the paper's
// micro-architectural analyses are all single-thread experiments.
package cachesim

import "fmt"

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineBytes is the cache-line size.
	LineBytes int
}

// Validate reports whether the geometry is consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cachesim: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cachesim: line size %d not a power of two", c.LineBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets <= 0 {
		return fmt.Errorf("cachesim: %+v has no sets", c)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	return nil
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg       Config
	sets      [][]uint64 // per set: line tags in LRU order, front = MRU
	setMask   uint64
	lineShift uint
	accesses  uint64
	misses    uint64
}

// NewCache builds a cache level; it panics on invalid geometry (configs
// are static in this repo).
func NewCache(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	c := &Cache{cfg: cfg, sets: make([][]uint64, nSets), setMask: uint64(nSets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, cfg.Ways)
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	return c
}

// Touch accesses the line containing addr and returns false on a miss
// (after installing the line).
func (c *Cache) Touch(addr uint64) bool {
	c.accesses++
	line := addr >> c.lineShift
	set := c.sets[line&c.setMask]
	for i, tag := range set {
		if tag == line {
			// Move to front (MRU).
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	c.misses++
	if len(set) < c.cfg.Ways {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[line&c.setMask] = set
	return false
}

// Accesses returns the number of Touch calls.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of misses.
func (c *Cache) Misses() uint64 { return c.misses }

// Reset zeroes counters and empties the cache.
func (c *Cache) Reset() {
	c.accesses, c.misses = 0, 0
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// Hierarchy is an L1 + LLC stack: L1 misses fall through to the LLC.
type Hierarchy struct {
	L1  *Cache
	LLC *Cache
}

// NewXeonE78830 models the paper's evaluation CPU: 32 KiB 8-way L1D and a
// 24 MiB 24-way shared LLC, 64-byte lines.
func NewXeonE78830() *Hierarchy {
	return &Hierarchy{
		L1:  NewCache(Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}),
		LLC: NewCache(Config{SizeBytes: 24 << 20, Ways: 24, LineBytes: 64}),
	}
}

// Access simulates a load/store of size bytes at addr, touching every
// cache line the access spans.
func (h *Hierarchy) Access(addr uint64, size int) {
	if size <= 0 {
		size = 1
	}
	first := addr &^ 63
	last := (addr + uint64(size) - 1) &^ 63
	for line := first; line <= last; line += 64 {
		if !h.L1.Touch(line) {
			h.LLC.Touch(line)
		}
	}
}

// Stats is a snapshot of the hierarchy's counters.
type Stats struct {
	Accesses  uint64
	L1Misses  uint64
	LLCMisses uint64
}

// Stats returns the current counters.
func (h *Hierarchy) Stats() Stats {
	return Stats{Accesses: h.L1.Accesses(), L1Misses: h.L1.Misses(), LLCMisses: h.LLC.Misses()}
}

// Reset zeroes the whole hierarchy.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.LLC.Reset()
}

package shard

import (
	"fmt"
	"sync"

	"db4ml/internal/partition"
	"db4ml/internal/storage"
	"db4ml/internal/table"
)

// Table is one logical ML-table split across a cluster: per-shard local
// tables holding the rows each shard owns, plus a global *view* table that
// adopts every local row's version chain in global row-id order. The view
// shares storage with the locals (table.AdoptChain), so:
//
//   - global row id g on the view resolves the same MVCC chain as the
//     owning shard's local row — a version (or iterative record) published
//     by the owner is visible through the view with no copying and no
//     invalidation protocol;
//   - ML algorithms written against a single table (PageRank's neighbor
//     reads, SGD's shared model) run unchanged against the view, while
//     their writes land on records owned by — and attached through — the
//     shard that runs them.
//
// Loads go through Load, which places rows with the router and publishes
// every shard at one shared-oracle timestamp (Cluster.PublishAll), so the
// table's state always exists at a single globally comparable timestamp.
type Table struct {
	name   string
	schema table.Schema
	router *Router

	locals []*table.Table
	view   *table.Table

	mu      sync.RWMutex
	shardOf []int         // global row -> owning shard
	localOf []table.RowID // global row -> row id within the owner's local table
}

// NewTable creates an empty sharded table routed by router. The view and
// the per-shard locals share one schema; locals are named "<name>@s<i>"
// so per-shard telemetry and errors identify the shard.
func NewTable(name string, schema table.Schema, router *Router) *Table {
	t := &Table{
		name:   name,
		schema: schema,
		router: router,
		locals: make([]*table.Table, router.Shards()),
		view:   table.New(name, schema),
	}
	for i := range t.locals {
		t.locals[i] = table.New(fmt.Sprintf("%s@s%d", name, i), schema)
	}
	return t
}

// Name returns the logical table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() table.Schema { return t.schema }

// Router returns the router placing this table's rows.
func (t *Table) Router() *Router { return t.router }

// View returns the global view table: row id g is global row g, backed by
// the owning shard's version chain. Use it for reads, scans, query plans,
// and for building sub-transactions that address rows globally. It refuses
// Append — rows are created only through Load.
func (t *Table) View() *table.Table { return t.view }

// Local returns shard i's local table — the table that shard's
// uber-transaction attachments and GC passes operate on.
func (t *Table) Local(i int) *table.Table { return t.locals[i] }

// NumRows returns the number of global rows.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.shardOf)
}

// Locate maps a global row id to its owning shard and the row's id within
// that shard's local table. ok is false for out-of-range rows.
func (t *Table) Locate(row table.RowID) (shard int, local table.RowID, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(row) >= len(t.shardOf) {
		return 0, 0, false
	}
	return t.shardOf[row], t.localOf[row], true
}

// ShardOf returns the shard owning the given global row, or -1 when the
// row does not exist.
func (t *Table) ShardOf(row table.RowID) int {
	if s, _, ok := t.Locate(row); ok {
		return s
	}
	return -1
}

// LocalRows translates a set of global row ids into per-shard local row-id
// lists (index = shard; empty slices for shards owning none of the rows).
// A nil input means "all rows" and returns nil for every shard — the
// all-rows convention attachments use.
func (t *Table) LocalRows(rows []table.RowID) ([][]table.RowID, error) {
	out := make([][]table.RowID, t.router.Shards())
	if rows == nil {
		return out, nil
	}
	for _, g := range rows {
		s, l, ok := t.Locate(g)
		if !ok {
			return nil, fmt.Errorf("shard: table %s has no row %d", t.name, g)
		}
		out[s] = append(out[s], l)
	}
	return out, nil
}

// Load appends rows across the cluster in one globally atomic publish:
// rows are routed to their owning shards (global row id = current row
// count + position), appended to the local tables, published everywhere at
// one shared-oracle timestamp, and adopted into the view in global order.
//
// Loading into an empty Range-sharded table first repartitions the router
// to the final row count, so the ranges are contiguous over the whole
// load. Appending to a non-empty Range-sharded table keeps the existing
// placement — physically placed rows cannot move — and overflow rows clamp
// into the last shard; prefer one Load per Range table.
func (t *Table) Load(c *Cluster, rows []storage.Payload) (storage.Timestamp, error) {
	return t.load(c, rows, c.PublishAll)
}

// LoadAt is Load at a caller-chosen timestamp (Cluster.PublishAllAt) — the
// recovery path, which replays a logged bulk load at its original commit
// timestamp so the recovered table is bit-identical to the pre-crash one.
func (t *Table) LoadAt(c *Cluster, ts storage.Timestamp, rows []storage.Payload) error {
	_, err := t.load(c, rows, func(pub func(int, storage.Timestamp) error) (storage.Timestamp, error) {
		return ts, c.PublishAllAt(ts, pub)
	})
	return err
}

func (t *Table) load(c *Cluster, rows []storage.Payload,
	publishAll func(func(int, storage.Timestamp) error) (storage.Timestamp, error)) (storage.Timestamp, error) {
	if c.Shards() != t.router.Shards() {
		return 0, fmt.Errorf("shard: table %s is sharded %d ways, cluster has %d shards",
			t.name, t.router.Shards(), c.Shards())
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	base := len(t.shardOf)
	if base == 0 && t.router.Partitioner().Scheme() == partition.Range {
		t.router.Repartition(partition.Range, uint64(len(rows)))
	}
	// One placement snapshot for the whole load: a concurrent Repartition
	// must not split the load across two mappings.
	part := t.router.Partitioner()

	owners := make([]int, len(rows))
	perShard := make([][]storage.Payload, c.Shards())
	for gi, p := range rows {
		s := part.Of(uint64(base + gi))
		owners[gi] = s
		perShard[s] = append(perShard[s], p)
	}

	locals := make([]table.RowID, len(rows))
	next := make([]int, c.Shards())
	ts, err := publishAll(func(shard int, ts storage.Timestamp) error {
		for _, p := range perShard[shard] {
			if _, e := t.locals[shard].Append(ts, p); e != nil {
				return e
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	baseLocal := make([]int, c.Shards())
	for s := range baseLocal {
		baseLocal[s] = t.locals[s].NumRows() - len(perShard[s])
	}
	for gi := range rows {
		s := owners[gi]
		locals[gi] = table.RowID(baseLocal[s] + next[s])
		next[s]++
	}

	for gi := range rows {
		s := owners[gi]
		chain := t.locals[s].Chain(locals[gi])
		if chain == nil {
			return 0, fmt.Errorf("shard: table %s: loaded row %d has no chain on shard %d", t.name, base+gi, s)
		}
		if _, err := t.view.AdoptChain(chain); err != nil {
			return 0, err
		}
		t.shardOf = append(t.shardOf, s)
		t.localOf = append(t.localOf, locals[gi])
	}
	return ts, nil
}

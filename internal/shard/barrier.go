package shard

import "sync"

// Rendezvous is the cross-shard extension of the execution pool's per-job
// synchronous barrier. Each shard's job arrives once per barrier flip (via
// exec.JobConfig.BarrierHook, on the job's last-arriving worker); Arrive
// releases everyone when all still-active parties have arrived, so no
// shard of a distributed synchronous uber-transaction starts the next
// phase until every shard finished the current one.
//
// Unlike a fixed-size barrier, parties can Leave: a shard whose
// sub-transactions all converged stops arriving, and waiting on it forever
// would deadlock the survivors. Leave removes the party and releases the
// current generation if the remaining arrivals now suffice. Break releases
// everyone unconditionally and disables the rendezvous — the coordinator's
// teardown path, guaranteeing no worker stays parked in a hook after the
// run resolves.
type Rendezvous struct {
	mu       sync.Mutex
	cond     *sync.Cond
	active   int    // parties still participating
	arrived  int    // parties arrived in the current generation
	gen      uint64 // generation counter; bumping it releases waiters
	broken   bool
	veto     bool // a ballot cast false in the current generation
	lastVote bool // the AND of the last released generation's ballots
}

// NewRendezvous creates a rendezvous over the given number of parties.
func NewRendezvous(parties int) *Rendezvous {
	r := &Rendezvous{active: parties}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Arrive blocks until every active party arrived (or the rendezvous broke
// or drained). The caller that completes the generation releases the rest.
func (r *Rendezvous) Arrive() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken || r.active <= 0 {
		return
	}
	gen := r.gen
	r.arrived++
	if r.arrived >= r.active {
		r.release()
		return
	}
	for r.gen == gen && !r.broken {
		r.cond.Wait()
	}
}

// ArriveVote is Arrive carrying a ballot: it blocks like Arrive and
// returns the AND of every ballot cast in the generation. The execution
// pool's ConvergeTogether retirement consults it (via
// exec.JobConfig.ConvergeVote) so a distributed synchronous job retires
// collectively — a shard whose own sub-transactions all voted Done keeps
// iterating until EVERY shard's did, exactly as one kernel would. A party
// that left stops voting and counts as assent (its job finished because
// every sub converged); a broken rendezvous returns false — teardown is
// in progress and nobody should act on a half-counted vote.
func (r *Rendezvous) ArriveVote(v bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.broken {
		return false
	}
	if r.active <= 0 {
		return v
	}
	if !v {
		r.veto = true
	}
	gen := r.gen
	r.arrived++
	if r.arrived >= r.active {
		r.release()
		return r.lastVote
	}
	for r.gen == gen && !r.broken {
		r.cond.Wait()
	}
	if r.broken {
		return false
	}
	return r.lastVote
}

// Leave permanently removes one party (its job finished). If the removal
// makes the current generation complete, the waiters are released.
func (r *Rendezvous) Leave() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.active--
	if r.active <= 0 || r.arrived >= r.active {
		r.release()
	}
}

// Break releases every waiter and disables the rendezvous; subsequent
// Arrives return immediately.
func (r *Rendezvous) Break() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.broken = true
	r.cond.Broadcast()
}

// release completes the current generation: callers hold r.mu. The
// generation's vote is sealed here; waiters read it before the next
// generation can complete (they must re-arrive for it to progress).
func (r *Rendezvous) release() {
	r.lastVote = !r.veto
	r.veto = false
	r.arrived = 0
	r.gen++
	r.cond.Broadcast()
}

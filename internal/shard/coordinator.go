package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/obs"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/trace"
	"db4ml/internal/txn"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("shard: coordinator closed")

// quiesceGrace bounds how long the coordinator waits, after a forced
// retirement, for a shard job's in-flight workers to acknowledge
// cancellation before the distributed abort proceeds anyway (mirrors the
// facade's single-kernel grace).
const quiesceGrace = time.Second

// RunRecorder extends the executor's history recorder with the
// uber-transaction outcome events the coordinator emits — the same
// contract as the facade's RunRecorder, restated here so internal/check
// can drive the coordinator directly.
type RunRecorder interface {
	exec.Recorder
	RecordUberCommit(ts storage.Timestamp)
	RecordUberAbort()
}

// Attachment names one shard-LOCAL table (and optionally a local row
// subset) a shard's slice of the distributed run updates.
type Attachment struct {
	Table    *table.Table
	Rows     []table.RowID
	Versions int // 0 = the isolation level's default slot count
}

// Plan is one shard's slice of a distributed uber-transaction: the local
// tables it attaches, the sub-transactions its pool drives, and the
// per-shard job configuration (label, observer, tracer, recorder, chaos,
// deadline — everything exec.JobConfig carries). A shard with no Subs
// still attaches and votes in the two-phase commit; it just runs no job.
type Plan struct {
	Attach []Attachment
	Subs   []itx.Sub
	Config exec.JobConfig
}

// UberRun describes one logical uber-transaction spanning every shard of
// the cluster.
type UberRun struct {
	// Isolation is shared by every shard's sub-transactions.
	Isolation isolation.Options
	// Plans holds one Plan per shard (index = shard id); required length
	// is the cluster's shard count.
	Plans []Plan
	// GlobalBarrier, under the synchronous level, ties every shard's
	// per-job barrier into one cross-shard rendezvous: no shard enters a
	// phase until all shards finished the previous one. Without it each
	// shard synchronizes only internally (bulk-synchronous per shard,
	// asynchronous across shards).
	GlobalBarrier bool
}

// Handle tracks one in-flight distributed uber-transaction.
type Handle struct {
	done       chan struct{}
	cancelOnce sync.Once
	cancelCh   chan struct{}

	jobs    []*exec.Job // index = shard; nil for shards that ran no job
	stats   []exec.Stats
	traceID uint64 // correlation id shared by every shard's spans
	ts      storage.Timestamp
	err     error
}

// TraceID returns the coordinator-assigned correlation id every shard's
// trace spans of this uber-transaction carry.
func (h *Handle) TraceID() uint64 { return h.traceID }

// ShardJob returns shard i's engine job for this run, or nil when the
// shard ran no sub-transactions (it still attached and voted in the
// commit). Valid immediately after Submit; the debug server's job table
// reads per-shard progress through it.
func (h *Handle) ShardJob(i int) *exec.Job {
	if i < 0 || i >= len(h.jobs) {
		return nil
	}
	return h.jobs[i]
}

// Wait blocks until every shard's job finished and the distributed commit
// or abort settled. It returns per-shard stats (zero value for shards
// without subs), the global commit timestamp (0 on abort), and the first
// error.
func (h *Handle) Wait() ([]exec.Stats, storage.Timestamp, error) {
	<-h.done
	return h.stats, h.ts, h.err
}

// Cancel asks every shard's job to stop; the distributed uber-transaction
// aborts on all shards and nothing becomes visible anywhere.
func (h *Handle) Cancel() { h.cancelOnce.Do(func() { close(h.cancelCh) }) }

// Done returns a channel closed when the run (including the distributed
// commit/abort) resolved.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Coordinator runs distributed uber-transactions over a cluster. It owns
// the cross-shard protocol — nothing else in the system knows more than
// one shard exists.
type Coordinator struct {
	cluster *Cluster
	tracer  *trace.Tracer
	crash   *chaos.Killer
	uberSeq atomic.Uint64 // correlation ids for runs whose plans carry none

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

// NewCoordinator builds a coordinator over the cluster.
func NewCoordinator(c *Cluster) *Coordinator { return &Coordinator{cluster: c} }

// SetTracer attaches a span tracer recording coordinator-level events on
// ring 0: the begin+attach span, one prepare span per shard, the 2PC
// commit window, and the commit instant of every resolved run — all
// stamped with the run's correlation id (Handle.TraceID), so they line up
// with the per-shard job spans in a merged cross-shard trace.
func (co *Coordinator) SetTracer(t *trace.Tracer) { co.tracer = t }

// SetCrash arms a crash kill-point inside the two-phase commit: the
// coordinator simulates a process death before prepare, after prepare, or
// between per-shard commit applications (the classic 2PC window), failing
// the run with chaos.ErrCrashed instead of acknowledging an outcome. The
// recovery harness (internal/crashsim) then proves that restart-from-log
// restores committed-exactly-or-absent across the window.
func (co *Coordinator) SetCrash(k *chaos.Killer) { co.crash = k }

// Cluster returns the coordinated cluster.
func (co *Coordinator) Cluster() *Cluster { return co.cluster }

// Close rejects further Submits and waits for every in-flight run's
// distributed commit or abort. It does not stop the cluster's pools — the
// owner does that after Close returns.
func (co *Coordinator) Close() {
	co.mu.Lock()
	co.closed = true
	co.mu.Unlock()
	co.inflight.Wait()
}

// Submit starts one distributed uber-transaction and returns without
// waiting. The begin sequence is strictly ordered: every shard's
// uber-transaction is begun and its attachments installed before any
// shard's job is submitted, so a sub-transaction's cross-shard reads
// always find the sibling shards' iterative records in place.
//
// Commit is two-phase: once every shard's job converged, the coordinator
// prepares all shard managers in shard-id order, draws one timestamp from
// the shared oracle, and publishes every shard at it — so the distributed
// result appears atomically in timestamp order on all shards. Any shard
// failure (fault, deadline, stall, cancellation) aborts the
// uber-transaction on every shard; no shard ever commits a run another
// shard aborted.
func (co *Coordinator) Submit(run UberRun) (*Handle, error) {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil, ErrClosed
	}
	// Registered under the same critical section as the closed check, so a
	// concurrent Close either rejects this submission or waits for its
	// distributed commit/abort; every error return below must deregister.
	co.inflight.Add(1)
	co.mu.Unlock()

	n := co.cluster.Shards()
	if len(run.Plans) != n {
		co.inflight.Done()
		return nil, fmt.Errorf("shard: %d plans for %d shards", len(run.Plans), n)
	}

	// Correlation id: honor a caller-assigned id (the facade numbers runs
	// and queries from one sequence) or draw a coordinator-local one, then
	// stamp it on every shard's job so all fragments trace under one id.
	var uid uint64
	for i := range run.Plans {
		if run.Plans[i].Config.TraceID != 0 {
			uid = run.Plans[i].Config.TraceID
			break
		}
	}
	if uid == 0 {
		uid = co.uberSeq.Add(1)
	}
	for i := range run.Plans {
		run.Plans[i].Config.TraceID = uid
	}

	// Phase 0: begin + attach everywhere before anything executes.
	beginAt := co.tracer.Now()
	ubers := make([]*itx.Uber, 0, n)
	abortBegun := func() {
		for _, u := range ubers {
			_ = u.Abort()
		}
	}
	for i := 0; i < n; i++ {
		u, err := itx.BeginUber(co.cluster.Kernel(i).Mgr(), run.Isolation)
		if err != nil {
			abortBegun()
			co.inflight.Done()
			return nil, err
		}
		ubers = append(ubers, u)
		for _, a := range run.Plans[i].Attach {
			v := a.Versions
			if v == 0 {
				v = u.DefaultVersions()
			}
			if err := u.Attach(a.Table, a.Rows, v); err != nil {
				abortBegun()
				co.inflight.Done()
				return nil, err
			}
		}
	}

	co.tracer.Span(0, trace.KindUberBegin, uid, int64(n), beginAt, co.tracer.Now()-beginAt)

	parties := 0
	for i := range run.Plans {
		if len(run.Plans[i].Subs) > 0 {
			parties++
		}
	}
	var rz *Rendezvous
	if run.GlobalBarrier && run.Isolation.Level == isolation.Synchronous && parties > 1 {
		rz = NewRendezvous(parties)
	}

	h := &Handle{
		done:     make(chan struct{}),
		cancelCh: make(chan struct{}),
		jobs:     make([]*exec.Job, n),
		stats:    make([]exec.Stats, n),
		traceID:  uid,
	}
	for i := 0; i < n; i++ {
		if len(run.Plans[i].Subs) == 0 {
			continue
		}
		cfg := run.Plans[i].Config
		// Every shard's job is submitted held and released only once ALL
		// shards are in: without the gate the first-submitted shard runs
		// iterations — and can prematurely converge — against sibling rows
		// still frozen at their seed values.
		cfg.Hold = true
		if rz != nil {
			// The rendezvous waits are where cross-shard skew hides; span
			// them on the shard's own tracer (ring 0 — the hooks run at
			// barrier granularity) under the run's correlation id.
			shardID, str := int64(i), cfg.Tracer
			cfg.BarrierHook = func(uint64, int32) {
				at := str.Now()
				rz.Arrive()
				str.Span(0, trace.KindRendezvous, uid, shardID, at, str.Now()-at)
			}
			// ConvergeTogether must be decided globally or shards retire at
			// different rounds and the distributed fixpoint diverges from
			// the single-kernel one. Every shard's install barrier casts its
			// local tally; all retire in the same round or none do.
			cfg.ConvergeVote = func(unanimous bool) bool {
				at := str.Now()
				v := rz.ArriveVote(unanimous)
				str.Span(0, trace.KindRendezvous, uid, shardID, at, str.Now()-at)
				return v
			}
		}
		j, err := co.cluster.Kernel(i).Pool().Submit(run.Plans[i].Subs, run.Isolation, cfg)
		if err != nil {
			// Tear down the shards already running: cancel, drain, release
			// any rendezvous waiter, then abort everywhere.
			for s := 0; s < i; s++ {
				if h.jobs[s] != nil {
					h.jobs[s].Cancel()
				}
			}
			if rz != nil {
				rz.Break()
			}
			for s := 0; s < i; s++ {
				if h.jobs[s] != nil {
					// Held batches never drain; release the cancelled job
					// so Wait can observe the drained retirement.
					h.jobs[s].Release()
					_, _ = h.jobs[s].Wait()
					h.jobs[s].Quiesce(quiesceGrace)
				}
			}
			abortBegun()
			co.inflight.Done()
			return nil, err
		}
		h.jobs[i] = j
		if rz != nil {
			// The shard's party leaves when its job finishes (converged,
			// cancelled, or force-retired), so sibling barriers stop waiting
			// on it. Watching Done — not Wait — keeps this release ahead of
			// the resolve goroutine's sequential draining.
			go func(j *exec.Job) { <-j.Done(); rz.Leave() }(j)
		}
	}
	// All shards are in: start them together.
	for _, j := range h.jobs {
		if j != nil {
			j.Release()
		}
	}

	go co.resolve(h, run, ubers, rz)
	return h, nil
}

// resolve drives one submitted run to its distributed commit or abort.
func (co *Coordinator) resolve(h *Handle, run UberRun, ubers []*itx.Uber, rz *Rendezvous) {
	defer co.inflight.Done()
	defer close(h.done)
	if rz != nil {
		// No worker may stay parked in a barrier hook after the run
		// resolves — the pools must always be drainable.
		defer rz.Break()
	}

	// Cancellation propagates to every shard's job; the watcher dies with
	// the handle.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-h.cancelCh:
			for _, j := range h.jobs {
				if j != nil {
					j.Cancel()
				}
			}
		case <-stopWatch:
		}
	}()

	var firstErr error
	failedShard := -1 // the shard convicted of causing a distributed abort
	quiesced := true
	for i, j := range h.jobs {
		if j == nil {
			continue
		}
		stats, err := j.Wait()
		h.stats[i] = stats
		if !j.Quiesce(quiesceGrace) {
			quiesced = false
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
			failedShard = i
		}
	}
	_ = quiesced // informational: a non-quiesced shard still cannot publish (its uber aborts below)

	recorders := distinctRecorders(run)
	abortBy := func(shard int) {
		if shard >= 0 && shard < len(run.Plans) {
			if o := run.Plans[shard].Config.Observer; o != nil {
				o.Inc(0, obs.TwoPCAborts)
			}
		}
	}
	if firstErr != nil {
		for _, u := range ubers {
			_ = u.Abort()
		}
		for _, r := range recorders {
			r.RecordUberAbort()
		}
		abortBy(failedShard)
		h.err = firstErr
		return
	}

	// Crash kill-points: a fired point means the coordinator process "died"
	// at that instant — the run resolves with ErrCrashed and NO outcome is
	// recorded, because a dead coordinator acknowledges nothing. In-memory
	// state is left exactly as the crash would leave it (e.g. some shards
	// published, others not, for the between-commits window); the harness
	// discards this kernel and proves recovery repairs the log's view of it.
	if co.crash.At(chaos.CrashBeforePrepare) {
		for _, u := range ubers {
			_ = u.Abort()
		}
		h.err = chaos.ErrCrashed
		return
	}

	// Two-phase commit: prepare every shard in shard-id order (holding
	// each manager's commit lock), choose one timestamp, publish all. The
	// window from the first prepare to the last per-shard publish is the
	// stretch a crash turns into coordinated recovery — it gets its own
	// span and histogram.
	windowStart := time.Now()
	windowAt := co.tracer.Now()
	preps := make([]*txn.Prepared, len(ubers))
	for i, u := range ubers {
		prepStart := time.Now()
		prepAt := co.tracer.Now()
		p, err := u.Prepare()
		prepNanos := int64(time.Since(prepStart))
		co.tracer.Span(0, trace.KindPrepare, h.traceID, int64(i), prepAt, co.tracer.Now()-prepAt)
		if o := run.Plans[i].Config.Observer; o != nil {
			o.Inc(0, obs.TwoPCPrepares)
			o.RecordLatency(0, obs.TwoPCPrepareLatency, prepNanos)
		}
		if err != nil {
			for k := 0; k < i; k++ {
				preps[k].Abort()
			}
			for _, u := range ubers {
				_ = u.Abort()
			}
			for _, r := range recorders {
				r.RecordUberAbort()
			}
			abortBy(i)
			h.err = err
			return
		}
		preps[i] = p
	}
	if co.crash.At(chaos.CrashAfterPrepare) {
		for _, p := range preps {
			p.Abort()
		}
		for _, u := range ubers {
			_ = u.Abort()
		}
		h.err = chaos.ErrCrashed
		return
	}
	ts := co.cluster.Oracle().Next()
	for i, u := range ubers {
		if i > 0 && co.crash.At(chaos.CrashBetweenShardCommits) {
			// Shards [0,i) have published at ts; shards [i,n) never will.
			// Release their commit locks and abort their ubers so the dead
			// kernel stays drainable, but leave the torn publish in place —
			// that asymmetry is precisely what recovery must erase.
			for k := i; k < len(preps); k++ {
				preps[k].Abort()
			}
			for k := i; k < len(ubers); k++ {
				_ = ubers[k].Abort()
			}
			h.err = chaos.ErrCrashed
			return
		}
		if err := u.CommitPrepared(preps[i], ts); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d commit: %w", i, err)
		}
	}
	if firstErr != nil {
		// Commit-phase publish errors are config bugs (e.g. an empty
		// attachment); the timestamp is already drawn, so report rather
		// than pretend atomicity held.
		h.err = firstErr
		return
	}
	h.ts = ts
	windowNanos := int64(time.Since(windowStart))
	co.tracer.Span(0, trace.KindCommitWindow, h.traceID, int64(ts), windowAt, co.tracer.Now()-windowAt)
	co.tracer.Instant(0, trace.KindCommit, h.traceID, int64(ts))
	for i := range run.Plans {
		if o := run.Plans[i].Config.Observer; o != nil {
			o.RecordLatency(0, obs.TwoPCCommitWindowLatency, windowNanos)
		}
	}
	for _, r := range recorders {
		r.RecordUberCommit(ts)
	}
}

// distinctRecorders collects the unique RunRecorders across all shard
// plans, so an outcome event fires once per recorder even when every shard
// shares one (the facade's single-recorder convention) and once per shard
// when each shard records separately (the invariant harness).
func distinctRecorders(run UberRun) []RunRecorder {
	var out []RunRecorder
	for i := range run.Plans {
		rr, ok := run.Plans[i].Config.Recorder.(RunRecorder)
		if !ok || rr == nil {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == rr {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, rr)
		}
	}
	return out
}

// Package shard implements DB4ML's shard-per-node scale-out: N fully
// independent kernel instances — each with its own transaction manager,
// execution pool, and local tables — tied together by three pieces of
// coordination machinery:
//
//   - a Router (router.go) that generalizes the NUMA-region placement
//     model one level up, mapping global row ids to owning shards with the
//     same partition schemes tables use for region placement;
//   - a sharded Table (table.go) that splits one logical ML-table into
//     per-shard local tables plus a chain-sharing global view, so every
//     shard can read any row through MVCC without copying state;
//   - a Coordinator (coordinator.go) that runs one logical
//     uber-transaction spanning shards: per-shard sub-transaction queues
//     (each shard's own pool), a two-phase uber-commit that publishes
//     every shard at one coordinator-chosen timestamp, and — for the
//     synchronous isolation level — a global rendezvous (barrier.go) that
//     extends each pool's per-job barrier across shards.
//
// The design keeps every latency-sensitive path shard-local: sub-
// transactions run on their shard's pool against their shard's manager,
// and only the begin/commit edges of the distributed uber-transaction
// cross shards. Timestamps are the one shared resource — all shard
// managers draw from a single oracle (txn.NewManagerWithOracle), which is
// what makes a coordinator-chosen commit timestamp meaningful on every
// shard and lets cross-shard reads reason about staleness in one clock.
//
// Isolation across shards is *bounded-staleness by construction*: each
// shard pins and publishes its own snapshot watermark, so a reader on
// shard A observes shard B's rows at B's watermark, not at a global one.
// The invariant harness in internal/check (dsweep.go) re-proves the
// contracts under this model rather than assuming them.
package shard

import (
	"fmt"

	"db4ml/internal/exec"
	"db4ml/internal/storage"
	"db4ml/internal/txn"
)

// Kernel is one shard: an independent kernel instance with its own
// transaction manager (own commit lock, stable watermark, snapshot
// registry) and its own worker pool. Only the timestamp oracle is shared
// with the other shards of a Cluster.
type Kernel struct {
	id   int
	mgr  *txn.Manager
	pool *exec.Pool
}

// ID returns the shard's index within its cluster.
func (k *Kernel) ID() int { return k.id }

// Mgr returns the shard's transaction manager.
func (k *Kernel) Mgr() *txn.Manager { return k.mgr }

// Pool returns the shard's worker pool.
func (k *Kernel) Pool() *exec.Pool { return k.pool }

// Cluster is a set of shard kernels sharing one timestamp oracle.
type Cluster struct {
	oracle  *storage.Oracle
	kernels []*Kernel
}

// NewCluster starts n shard kernels, each with its own worker pool built
// from cfg (only the pool-level fields are used: Workers, Topology,
// DisableWorkStealing, Chaos). Workers is the per-shard pool size, not a
// total. Close the cluster to stop every pool.
func NewCluster(n int, cfg exec.Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: cluster needs at least 1 shard, got %d", n)
	}
	c := &Cluster{oracle: &storage.Oracle{}, kernels: make([]*Kernel, n)}
	for i := 0; i < n; i++ {
		pool, err := exec.NewPool(cfg)
		if err != nil {
			for j := 0; j < i; j++ {
				c.kernels[j].pool.Close()
			}
			return nil, err
		}
		c.kernels[i] = &Kernel{id: i, mgr: txn.NewManagerWithOracle(c.oracle), pool: pool}
	}
	return c, nil
}

// Shards returns the number of shard kernels.
func (c *Cluster) Shards() int { return len(c.kernels) }

// Kernel returns shard i.
func (c *Cluster) Kernel(i int) *Kernel { return c.kernels[i] }

// Oracle returns the cluster-wide timestamp oracle.
func (c *Cluster) Oracle() *storage.Oracle { return c.oracle }

// Close stops every shard's worker pool, draining in-flight jobs.
func (c *Cluster) Close() {
	for _, k := range c.kernels {
		k.pool.Close()
	}
}

// PublishAll runs one globally atomic publish across every shard: it
// prepares all shard managers in shard-id order (so concurrent PublishAll
// and coordinator commits cannot deadlock), draws a single timestamp from
// the shared oracle, and publishes on each shard at that timestamp. Either
// every shard's rows become visible at ts or — on a publish error — the
// loaded prefix remains, exactly like the single-kernel BulkLoad contract.
// Bulk loads use it so a sharded table's initial state exists at one
// timestamp on every shard.
func (c *Cluster) PublishAll(publish func(shard int, ts storage.Timestamp) error) (storage.Timestamp, error) {
	preps := make([]*txn.Prepared, len(c.kernels))
	for i, k := range c.kernels {
		preps[i] = k.mgr.Prepare()
	}
	ts := c.oracle.Next()
	return ts, c.commitAll(preps, ts, publish)
}

// PublishAllAt is PublishAll at a caller-chosen timestamp — the WAL replay
// path, which must re-publish recovered state at each record's original
// commit timestamp rather than drawing fresh ones. The timestamp must be at
// or above every shard's stable watermark (replay applies records in LSN
// order, so it is).
func (c *Cluster) PublishAllAt(ts storage.Timestamp, publish func(shard int, ts storage.Timestamp) error) error {
	preps := make([]*txn.Prepared, len(c.kernels))
	for i, k := range c.kernels {
		preps[i] = k.mgr.Prepare()
	}
	c.oracle.AdvanceTo(ts)
	return c.commitAll(preps, ts, publish)
}

// commitAll publishes every prepared shard at ts, in shard-id order.
func (c *Cluster) commitAll(preps []*txn.Prepared, ts storage.Timestamp, publish func(shard int, ts storage.Timestamp) error) error {
	var firstErr error
	for i, p := range preps {
		shard := i
		p.CommitAt(ts, func(ts storage.Timestamp) {
			if err := publish(shard, ts); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	return firstErr
}

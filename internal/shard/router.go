package shard

import (
	"sync/atomic"

	"db4ml/internal/partition"
)

// Router maps global row ids to owning shards. It is the shard-level
// generalization of the NUMA placement model: inside one kernel,
// partition.Partitioner routes rows to regions; across kernels, the Router
// routes rows to shards with the same schemes (range, round-robin, hash).
//
// Routing is lock-free and concurrent with repartitioning: the partitioner
// is swapped atomically, so a Route racing a Repartition observes either
// the old or the new mapping, never a torn one. Callers that need routing
// decisions to be mutually consistent (e.g. a bulk load that records the
// placement it used) should take one Partitioner() snapshot and route
// through that.
type Router struct {
	shards int
	part   atomic.Pointer[partition.Partitioner]
}

// NewRouter builds a router spreading rows over the given number of shards
// with the given scheme. totalRows is required by the Range scheme (0 rows
// is the documented degenerate single-shard mapping) and ignored by the
// others.
func NewRouter(scheme partition.Scheme, shards int, totalRows uint64) *Router {
	if shards < 1 {
		shards = 1
	}
	r := &Router{shards: shards}
	p := partition.New(scheme, shards, totalRows)
	r.part.Store(&p)
	return r
}

// Shards returns the shard count. It never changes over a router's life —
// repartitioning redistributes rows, it does not resize the cluster.
func (r *Router) Shards() int { return r.shards }

// Route returns the shard owning the given global row id.
func (r *Router) Route(row uint64) int { return r.part.Load().Of(row) }

// Partitioner returns the current placement as an immutable snapshot;
// route through it when multiple decisions must agree with each other.
func (r *Router) Partitioner() partition.Partitioner { return *r.part.Load() }

// Repartition atomically installs a new placement (typically after a load
// changed the row count a Range mapping depends on). In-flight Route calls
// see either the old or the new mapping.
func (r *Router) Repartition(scheme partition.Scheme, totalRows uint64) {
	p := partition.New(scheme, r.shards, totalRows)
	r.part.Store(&p)
}

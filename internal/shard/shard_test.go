package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/partition"
	"db4ml/internal/storage"
	"db4ml/internal/table"
)

func testSchema(t *testing.T) table.Schema {
	t.Helper()
	s, err := table.NewSchema(
		table.Column{Name: "V", Type: table.Int64},
		table.Column{Name: "VTag", Type: table.Int64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newCluster(t *testing.T, n, workers int) *Cluster {
	t.Helper()
	c, err := NewCluster(n, exec.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func loadZeros(t *testing.T, c *Cluster, st *Table, rows int) storage.Timestamp {
	t.Helper()
	payloads := make([]storage.Payload, rows)
	for i := range payloads {
		payloads[i] = storage.Payload{0, 0}
	}
	ts, err := st.Load(c, payloads)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestTableLoadPlacesRowsAndBuildsView(t *testing.T) {
	c := newCluster(t, 2, 1)
	st := NewTable("ring", testSchema(t), NewRouter(partition.Range, 2, 0))
	rows := []storage.Payload{{10, 10}, {11, 11}, {12, 12}, {13, 13}}
	ts, err := st.Load(c, rows)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows() != 4 || st.View().NumRows() != 4 {
		t.Fatalf("NumRows=%d view=%d, want 4", st.NumRows(), st.View().NumRows())
	}
	// Range over 4 rows, 2 shards: rows 0,1 on shard 0; rows 2,3 on shard 1.
	for g, wantShard := range []int{0, 0, 1, 1} {
		s, l, ok := st.Locate(table.RowID(g))
		if !ok || s != wantShard {
			t.Fatalf("Locate(%d) = (%d,%d,%v), want shard %d", g, s, l, ok, wantShard)
		}
		// The view and the owning local resolve the same payload — and the
		// same chain, so this is identity, not equality of copies.
		if st.View().Chain(table.RowID(g)) != st.Local(s).Chain(l) {
			t.Fatalf("row %d: view chain != local chain", g)
		}
		p, ok := st.View().Read(table.RowID(g), ts)
		if !ok || p[0] != uint64(10+g) {
			t.Fatalf("view read row %d = %v,%v", g, p, ok)
		}
	}
	// Every shard's stable watermark advanced to the one load timestamp.
	for i := 0; i < c.Shards(); i++ {
		if got := c.Kernel(i).Mgr().Stable(); got != ts {
			t.Fatalf("shard %d stable = %d, want %d", i, got, ts)
		}
	}
	// The view is a view: it must refuse to grow on its own.
	if _, err := st.View().Append(ts, storage.Payload{0, 0}); err == nil {
		t.Fatal("view Append succeeded, want error")
	}
}

func TestPublishAllIsGloballyAtomic(t *testing.T) {
	c := newCluster(t, 3, 1)
	before := make([]storage.Timestamp, 3)
	for i := range before {
		before[i] = c.Kernel(i).Mgr().Stable()
	}
	ts, err := c.PublishAll(func(shard int, ts storage.Timestamp) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := c.Kernel(i).Mgr().Stable(); got != ts {
			t.Fatalf("shard %d stable = %d, want %d", i, got, ts)
		}
	}
}

// distCounterSub is the distributed cousin of the sweep's counter ring:
// sub g owns global row g of the view, reads its ring neighbor — which may
// live on another shard — and counts its own row to target.
type distCounterSub struct {
	view     *table.Table
	row, nbr table.RowID
	target   uint64
	level    isolation.Level

	rec, nrec *storage.IterativeRecord
	buf, nbuf storage.Payload
	reached   uint64
}

func (s *distCounterSub) Begin(c *itx.Ctx) {
	s.rec = s.view.IterRecord(s.row)
	s.nrec = s.view.IterRecord(s.nbr)
	s.buf = make(storage.Payload, 2)
	s.nbuf = make(storage.Payload, 2)
}

func (s *distCounterSub) Execute(c *itx.Ctx) {
	c.Read(s.nrec, s.nbuf)
	c.Read(s.rec, s.buf)
	next := s.buf[0] + 1
	if next > s.target {
		next = s.target
	}
	s.reached = next
	if s.level == isolation.Asynchronous {
		c.WriteCol(s.rec, 0, next)
		c.WriteCol(s.rec, 1, next)
	} else {
		s.buf[0], s.buf[1] = next, next
		c.Write(s.rec, s.buf)
	}
}

func (s *distCounterSub) Validate(c *itx.Ctx) itx.Action {
	if s.reached >= s.target {
		return itx.Done
	}
	return itx.Commit
}

// buildRingRun assembles the per-shard plans of a distributed counter-ring
// uber-transaction over st.
func buildRingRun(st *Table, opts isolation.Options, target uint64, global bool) UberRun {
	n := st.NumRows()
	plans := make([]Plan, st.Router().Shards())
	for i := range plans {
		plans[i].Attach = []Attachment{{Table: st.Local(i)}}
		plans[i].Config = exec.JobConfig{BatchSize: 2, Label: fmt.Sprintf("ring@s%d", i)}
	}
	for g := 0; g < n; g++ {
		s := st.ShardOf(table.RowID(g))
		plans[s].Subs = append(plans[s].Subs, &distCounterSub{
			view:   st.View(),
			row:    table.RowID(g),
			nbr:    table.RowID((g + 1) % n),
			target: target,
			level:  opts.Level,
		})
	}
	return UberRun{Isolation: opts, Plans: plans, GlobalBarrier: global}
}

func TestCoordinatorDistributedCommit(t *testing.T) {
	for _, level := range isolation.Levels() {
		t.Run(level.String(), func(t *testing.T) {
			c := newCluster(t, 2, 2)
			st := NewTable("ring", testSchema(t), NewRouter(partition.Range, 2, 0))
			loadZeros(t, c, st, 4)
			co := NewCoordinator(c)
			defer co.Close()

			opts := isolation.Options{Level: level}
			if level == isolation.BoundedStaleness {
				opts.Staleness = 2
			}
			const target = 5
			h, err := co.Submit(buildRingRun(st, opts, target, true))
			if err != nil {
				t.Fatal(err)
			}
			_, ts, err := h.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if ts == 0 {
				t.Fatal("commit timestamp is 0")
			}
			// Atomic in timestamp order on every shard: all shards' stable
			// watermarks reached the one commit timestamp, and every row —
			// read through the view at ts — carries the converged value.
			for i := 0; i < c.Shards(); i++ {
				if got := c.Kernel(i).Mgr().Stable(); got != ts {
					t.Fatalf("shard %d stable = %d, want commit ts %d", i, got, ts)
				}
			}
			for g := 0; g < 4; g++ {
				p, ok := st.View().Read(table.RowID(g), ts)
				if !ok || p[0] != target || p[1] != target {
					t.Fatalf("row %d at ts %d = %v,%v, want (%d,%d)", g, ts, p, ok, target, target)
				}
				// And invisible just before it: the commit is atomic.
				if p, ok := st.View().Read(table.RowID(g), ts-1); ok && p[0] != 0 {
					t.Fatalf("row %d at ts-1 shows %d, want pre-run 0", g, p[0])
				}
			}
		})
	}
}

func TestCoordinatorAbortsAllShardsWhenOneFails(t *testing.T) {
	c := newCluster(t, 2, 2)
	st := NewTable("ring", testSchema(t), NewRouter(partition.Range, 2, 0))
	loadZeros(t, c, st, 4)
	co := NewCoordinator(c)
	defer co.Close()

	run := buildRingRun(st, isolation.Options{Level: isolation.Asynchronous}, 1_000_000, false)
	// Shard 1's job cancels itself mid-run; shard 0 would happily converge.
	run.Plans[1].Config.Chaos = chaos.NewSeeded(7, 2, chaos.Config{CancelAfter: 10})

	h, err := co.Submit(run)
	if err != nil {
		t.Fatal(err)
	}
	_, ts, err := h.Wait()
	if err == nil {
		t.Fatal("want error from cancelled shard, got nil")
	}
	if ts != 0 {
		t.Fatalf("aborted run reports commit ts %d", ts)
	}
	// 2PC atomicity: NO shard published anything — every row still 0 at
	// every shard's current stable snapshot.
	for g := 0; g < 4; g++ {
		s, l, _ := st.Locate(table.RowID(g))
		p, ok := st.Local(s).Read(l, c.Kernel(s).Mgr().Stable())
		if !ok || p[0] != 0 {
			t.Fatalf("row %d (shard %d) = %v,%v after distributed abort, want 0", g, s, p, ok)
		}
	}
}

func TestCoordinatorCancelPropagatesToAllShards(t *testing.T) {
	c := newCluster(t, 2, 2)
	st := NewTable("ring", testSchema(t), NewRouter(partition.Range, 2, 0))
	loadZeros(t, c, st, 4)
	co := NewCoordinator(c)
	defer co.Close()

	// Unreachable target: only Cancel can end this run.
	h, err := co.Submit(buildRingRun(st, isolation.Options{Level: isolation.Asynchronous}, 1<<62, false))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	h.Cancel()
	_, ts, err := h.Wait()
	if err == nil || ts != 0 {
		t.Fatalf("cancelled run: ts=%d err=%v, want abort", ts, err)
	}
}

func TestRendezvous(t *testing.T) {
	rz := NewRendezvous(3)
	var wg sync.WaitGroup
	rounds := make([]int, 3)
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				rz.Arrive()
				rounds[p]++
			}
			rz.Leave()
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("rendezvous deadlocked")
	}
	for p, r := range rounds {
		if r != 50 {
			t.Fatalf("party %d completed %d rounds, want 50", p, r)
		}
	}
}

func TestRendezvousLeaveReleasesWaiters(t *testing.T) {
	rz := NewRendezvous(2)
	released := make(chan struct{})
	go func() { rz.Arrive(); close(released) }()
	time.Sleep(time.Millisecond)
	rz.Leave() // the second party never arrives; it leaves instead
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Leave did not release the waiting party")
	}
}

// TestRendezvousVote drives three parties through voting generations:
// the AND of the ballots is returned to every party, a leaver counts as
// assent, and a broken rendezvous vetoes.
func TestRendezvousVote(t *testing.T) {
	const parties, rounds = 3, 40
	rz := NewRendezvous(parties)
	// Party p votes true in round r iff r >= p*10: round r's global AND
	// flips to true exactly when the slowest party's threshold passes.
	results := make([][rounds]bool, parties)
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				results[p][r] = rz.ArriveVote(r >= p*10)
			}
			rz.Leave()
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("voting rendezvous deadlocked")
	}
	for p := 0; p < parties; p++ {
		for r := 0; r < rounds; r++ {
			if want := r >= (parties-1)*10; results[p][r] != want {
				t.Fatalf("party %d round %d vote = %v, want %v", p, r, results[p][r], want)
			}
		}
	}

	// A departed party assents: the remaining voter's ballot decides.
	rz = NewRendezvous(2)
	got := make(chan bool, 1)
	go func() { got <- rz.ArriveVote(true) }()
	time.Sleep(time.Millisecond)
	rz.Leave()
	select {
	case v := <-got:
		if !v {
			t.Fatal("vote with a departed (assenting) party returned false")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Leave did not release the voting party")
	}

	// Break vetoes: a waiter released by teardown must not retire anyone.
	rz = NewRendezvous(2)
	go func() { got <- rz.ArriveVote(true) }()
	time.Sleep(time.Millisecond)
	rz.Break()
	if v := <-got; v {
		t.Fatal("broken rendezvous approved a vote")
	}
}

// TestRouterRouteRepartitionRace drives concurrent Route and Repartition
// calls; under -race this proves the atomic-swap design has no torn reads.
func TestRouterRouteRepartitionRace(t *testing.T) {
	r := NewRouter(partition.Range, 4, 100)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for row := uint64(0); ; row++ {
				select {
				case <-stop:
					return
				default:
				}
				if s := r.Route(row % 500); s < 0 || s >= 4 {
					panic(fmt.Sprintf("route escaped: %d", s))
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		schemes := []partition.Scheme{partition.Range, partition.Hash, partition.RoundRobin}
		for i := 0; i < 2000; i++ {
			r.Repartition(schemes[i%len(schemes)], uint64(i%300))
		}
		close(stop)
	}()
	wg.Wait()
	if r.Shards() != 4 {
		t.Fatalf("Shards() changed to %d", r.Shards())
	}
}

// TestCoordinatorSubmitCloseRace races Submit against Close (the sharded
// analogue of the facade's DB.Close vs SubmitML race): every Submit either
// fails with ErrClosed or resolves fully, and Close returns only after
// every admitted run's distributed commit/abort.
func TestCoordinatorSubmitCloseRace(t *testing.T) {
	c := newCluster(t, 2, 2)
	co := NewCoordinator(c)

	// One table per submitter: two uber-transactions may not attach the
	// same rows concurrently (by design), and this test races admission,
	// not attachment.
	const submitters = 8
	tables := make([]*Table, submitters)
	for g := range tables {
		tables[g] = NewTable(fmt.Sprintf("ring%d", g), testSchema(t), NewRouter(partition.Range, 2, 0))
		loadZeros(t, c, tables[g], 4)
	}

	var wg sync.WaitGroup
	handles := make(chan *Handle, submitters*8)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				h, err := co.Submit(buildRingRun(tables[g], isolation.Options{Level: isolation.Asynchronous}, 3, false))
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						panic(err)
					}
					return
				}
				handles <- h
				// Resolve before resubmitting on the same table: the next
				// attempt re-attaches the rows this one still holds.
				if _, _, err := h.Wait(); err != nil {
					panic(err)
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	co.Close()
	wg.Wait()
	close(handles)
	// Close has returned: every admitted handle must already be resolved.
	for h := range handles {
		select {
		case <-h.Done():
		default:
			t.Fatal("Close returned with an unresolved handle")
		}
	}
}

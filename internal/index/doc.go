// Package index provides the secondary-index structures DB4ML's ML-tables
// use: a sharded hash index for point lookups (the paper indexes Node.NodeID
// and Sample.RandID this way) and an in-memory B+tree for ordered access and
// range scans (used by range partitioning and key-range assignment of SGD
// sub-transactions).
//
// Both structures map int64 keys to uint64 row ids. Multi-valued keys are
// supported by the hash index (the paper's Edge.NID_To index maps one target
// node to many edges).
package index

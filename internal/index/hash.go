package index

import "sync"

// hashShards must be a power of two so shard selection is a mask.
const hashShards = 64

// Hash is a sharded hash index from int64 keys to one or more uint64 row
// ids. It is safe for concurrent use; reads take a shared lock on a single
// shard only.
type Hash struct {
	shards [hashShards]hashShard
}

type hashShard struct {
	mu sync.RWMutex
	m  map[int64][]uint64
}

// NewHash returns an empty hash index.
func NewHash() *Hash {
	h := &Hash{}
	for i := range h.shards {
		h.shards[i].m = make(map[int64][]uint64)
	}
	return h
}

func (h *Hash) shard(key int64) *hashShard {
	// Fibonacci hashing spreads sequential keys across shards.
	return &h.shards[(uint64(key)*0x9E3779B97F4A7C15)>>(64-6)]
}

// Insert adds a (key, row) pair. Duplicate keys accumulate rows in
// insertion order.
func (h *Hash) Insert(key int64, row uint64) {
	s := h.shard(key)
	s.mu.Lock()
	s.m[key] = append(s.m[key], row)
	s.mu.Unlock()
}

// Get returns the first row id stored under key.
func (h *Hash) Get(key int64) (uint64, bool) {
	s := h.shard(key)
	s.mu.RLock()
	rows := s.m[key]
	s.mu.RUnlock()
	if len(rows) == 0 {
		return 0, false
	}
	return rows[0], true
}

// GetAll returns a copy of every row id stored under key, in insertion
// order.
func (h *Hash) GetAll(key int64) []uint64 {
	s := h.shard(key)
	s.mu.RLock()
	rows := s.m[key]
	out := make([]uint64, len(rows))
	copy(out, rows)
	s.mu.RUnlock()
	if len(out) == 0 {
		return nil
	}
	return out
}

// Delete removes every row stored under key and reports whether the key was
// present.
func (h *Hash) Delete(key int64) bool {
	s := h.shard(key)
	s.mu.Lock()
	_, ok := s.m[key]
	delete(s.m, key)
	s.mu.Unlock()
	return ok
}

// Len returns the number of distinct keys.
func (h *Hash) Len() int {
	n := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

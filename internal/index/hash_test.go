package index

import (
	"sync"
	"testing"
)

func TestHashInsertGet(t *testing.T) {
	h := NewHash()
	if _, ok := h.Get(1); ok {
		t.Fatal("Get on empty index succeeded")
	}
	h.Insert(1, 100)
	h.Insert(2, 200)
	if v, ok := h.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = (%d, %v), want (100, true)", v, ok)
	}
	if v, ok := h.Get(2); !ok || v != 200 {
		t.Fatalf("Get(2) = (%d, %v), want (200, true)", v, ok)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
}

func TestHashMultiValue(t *testing.T) {
	h := NewHash()
	h.Insert(7, 1)
	h.Insert(7, 2)
	h.Insert(7, 3)
	got := h.GetAll(7)
	want := []uint64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("GetAll = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GetAll = %v, want %v (insertion order)", got, want)
		}
	}
	if h.Len() != 1 {
		t.Fatalf("Len counts rows not keys: %d", h.Len())
	}
	if v, ok := h.Get(7); !ok || v != 1 {
		t.Fatalf("Get on multi-value key = (%d, %v), want first row", v, ok)
	}
}

func TestHashGetAllCopies(t *testing.T) {
	h := NewHash()
	h.Insert(1, 10)
	got := h.GetAll(1)
	got[0] = 999
	if v, _ := h.Get(1); v != 10 {
		t.Fatal("GetAll returned a slice aliasing index internals")
	}
}

func TestHashDelete(t *testing.T) {
	h := NewHash()
	h.Insert(5, 50)
	if !h.Delete(5) {
		t.Fatal("Delete of present key returned false")
	}
	if h.Delete(5) {
		t.Fatal("Delete of absent key returned true")
	}
	if _, ok := h.Get(5); ok {
		t.Fatal("key readable after Delete")
	}
}

func TestHashNegativeKeys(t *testing.T) {
	h := NewHash()
	h.Insert(-1, 11)
	h.Insert(-1<<62, 22)
	if v, ok := h.Get(-1); !ok || v != 11 {
		t.Fatal("negative key lookup failed")
	}
	if v, ok := h.Get(-1 << 62); !ok || v != 22 {
		t.Fatal("large negative key lookup failed")
	}
}

func TestHashConcurrent(t *testing.T) {
	h := NewHash()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := int64(g*perG + i)
				h.Insert(key, uint64(key)*2)
				if v, ok := h.Get(key); !ok || v != uint64(key)*2 {
					t.Errorf("read-own-insert failed for key %d", key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", h.Len(), goroutines*perG)
	}
}

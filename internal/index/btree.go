package index

import "sync"

// btreeDegree is the maximum number of keys per node; chosen so a leaf fits
// in a couple of cache lines.
const btreeDegree = 64

// BTree is an in-memory B+tree from int64 keys to uint64 row ids with
// unique keys. Inserting an existing key overwrites its value. The tree is
// guarded by a single RWMutex: scans and lookups proceed concurrently,
// writers are exclusive — ML workloads build indexes once and then only
// read them, so writer throughput is not the bottleneck.
type BTree struct {
	mu   sync.RWMutex
	root *btreeNode
	size int
}

type btreeNode struct {
	keys     []int64
	vals     []uint64     // leaf only
	children []*btreeNode // interior only
	next     *btreeNode   // leaf-level sibling link for range scans
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btreeNode{}}
}

// Len returns the number of keys in the tree.
func (t *BTree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// search returns the index of the first key >= k in node keys.
func search(keys []int64, k int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key.
func (t *BTree) Get(key int64) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf() {
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return 0, false
}

// Insert stores value under key, overwriting any previous value.
func (t *BTree) Insert(key int64, value uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	mid, right := t.insert(t.root, key, value)
	if right != nil {
		t.root = &btreeNode{
			keys:     []int64{mid},
			children: []*btreeNode{t.root, right},
		}
	}
}

// insert adds key to the subtree at n. If n overflows it splits, returning
// the separator key and the new right sibling.
func (t *BTree) insert(n *btreeNode, key int64, value uint64) (int64, *btreeNode) {
	if n.leaf() {
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = value
			return 0, nil
		}
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = value
		t.size++
		if len(n.keys) <= btreeDegree {
			return 0, nil
		}
		return t.splitLeaf(n)
	}
	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	mid, right := t.insert(n.children[i], key, value)
	if right == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = mid
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
	if len(n.keys) <= btreeDegree {
		return 0, nil
	}
	return t.splitInterior(n)
}

func (t *BTree) splitLeaf(n *btreeNode) (int64, *btreeNode) {
	mid := len(n.keys) / 2
	right := &btreeNode{
		keys: append([]int64(nil), n.keys[mid:]...),
		vals: append([]uint64(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	n.next = right
	return right.keys[0], right
}

func (t *BTree) splitInterior(n *btreeNode) (int64, *btreeNode) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &btreeNode{
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Range calls fn for every (key, value) with lo <= key <= hi in ascending
// key order, stopping early if fn returns false.
func (t *BTree) Range(lo, hi int64, fn func(key int64, value uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf() {
		i := search(n.keys, lo)
		if i < len(n.keys) && n.keys[i] == lo {
			i++
		}
		n = n.children[i]
	}
	for n != nil {
		for i := search(n.keys, lo); i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Min returns the smallest key, or false on an empty tree.
func (t *BTree) Min() (int64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return 0, false
	}
	return n.keys[0], true
}

// Max returns the largest key, or false on an empty tree.
func (t *BTree) Max() (int64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		return 0, false
	}
	return n.keys[len(n.keys)-1], true
}

package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeEmpty(t *testing.T) {
	bt := NewBTree()
	if bt.Len() != 0 {
		t.Fatalf("empty tree Len = %d", bt.Len())
	}
	if _, ok := bt.Get(1); ok {
		t.Fatal("Get on empty tree succeeded")
	}
	if _, ok := bt.Min(); ok {
		t.Fatal("Min on empty tree succeeded")
	}
	if _, ok := bt.Max(); ok {
		t.Fatal("Max on empty tree succeeded")
	}
	calls := 0
	bt.Range(-100, 100, func(int64, uint64) bool { calls++; return true })
	if calls != 0 {
		t.Fatal("Range on empty tree visited keys")
	}
}

func TestBTreeInsertGetSequential(t *testing.T) {
	bt := NewBTree()
	const n = 10000
	for i := int64(0); i < n; i++ {
		bt.Insert(i, uint64(i)*3)
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d, want %d", bt.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		if v, ok := bt.Get(i); !ok || v != uint64(i)*3 {
			t.Fatalf("Get(%d) = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := bt.Get(n); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestBTreeInsertGetRandom(t *testing.T) {
	bt := NewBTree()
	rng := rand.New(rand.NewSource(42))
	ref := make(map[int64]uint64)
	for i := 0; i < 20000; i++ {
		k := int64(rng.Intn(5000)) - 2500
		v := rng.Uint64()
		bt.Insert(k, v)
		ref[k] = v
	}
	if bt.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d (overwrites must not grow the tree)", bt.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := bt.Get(k); !ok || got != v {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, got, ok, v)
		}
	}
}

func TestBTreeOverwrite(t *testing.T) {
	bt := NewBTree()
	bt.Insert(1, 10)
	bt.Insert(1, 20)
	if v, _ := bt.Get(1); v != 20 {
		t.Fatalf("overwrite lost: Get(1) = %d", v)
	}
	if bt.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", bt.Len())
	}
}

func TestBTreeRange(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 1000; i += 2 { // even keys only
		bt.Insert(i, uint64(i))
	}
	var got []int64
	bt.Range(100, 120, func(k int64, v uint64) bool {
		if v != uint64(k) {
			t.Fatalf("Range value mismatch at key %d: %d", k, v)
		}
		got = append(got, k)
		return true
	})
	want := []int64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
	if len(got) != len(want) {
		t.Fatalf("Range keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range keys = %v, want %v", got, want)
		}
	}
}

func TestBTreeRangeEarlyStop(t *testing.T) {
	bt := NewBTree()
	for i := int64(0); i < 100; i++ {
		bt.Insert(i, uint64(i))
	}
	visits := 0
	bt.Range(0, 99, func(k int64, v uint64) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("Range visited %d keys after early stop, want 5", visits)
	}
}

func TestBTreeMinMax(t *testing.T) {
	bt := NewBTree()
	keys := []int64{50, -3, 999, 0, 17}
	for _, k := range keys {
		bt.Insert(k, uint64(k))
	}
	if mn, ok := bt.Min(); !ok || mn != -3 {
		t.Fatalf("Min = (%d, %v), want (-3, true)", mn, ok)
	}
	if mx, ok := bt.Max(); !ok || mx != 999 {
		t.Fatalf("Max = (%d, %v), want (999, true)", mx, ok)
	}
}

// Property: a full-range scan returns exactly the sorted set of inserted
// keys, regardless of insertion order.
func TestBTreeSortedScanProperty(t *testing.T) {
	f := func(keys []int64) bool {
		bt := NewBTree()
		ref := make(map[int64]bool)
		for _, k := range keys {
			bt.Insert(k, uint64(k))
			ref[k] = true
		}
		want := make([]int64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []int64
		bt.Range(-1<<63, 1<<63-1, func(k int64, _ uint64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBTreeDeepSplits(t *testing.T) {
	bt := NewBTree()
	// Descending insertion exercises left-heavy splits.
	const n = 50000
	for i := int64(n); i > 0; i-- {
		bt.Insert(i, uint64(i))
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d, want %d", bt.Len(), n)
	}
	count := 0
	prev := int64(-1)
	bt.Range(1, n, func(k int64, _ uint64) bool {
		if k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d keys, want %d", count, n)
	}
}

// Package queue provides the lock-free multi-producer multi-consumer queue
// DB4ML's executor uses to (re-)schedule batches of iterative
// sub-transactions (step 1/2 in Figure 2). It is a Michael–Scott queue:
// enqueue and dequeue each succeed with a small bounded number of CAS
// operations and never block each other.
package queue

import "sync/atomic"

type node[T any] struct {
	value T
	next  atomic.Pointer[node[T]]
}

// Queue is an unbounded lock-free FIFO queue. The zero value is not usable;
// call New.
type Queue[T any] struct {
	head atomic.Pointer[node[T]] // sentinel; head.next is the front
	tail atomic.Pointer[node[T]]
	size atomic.Int64
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	sentinel := &node[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Push appends v to the back of the queue.
func (q *Queue[T]) Push(v T) {
	n := &node[T]{value: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail lagging behind; help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// Pop removes and returns the front element, or false if the queue is
// empty at the time of the call.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return zero, false
		}
		if head == tail {
			// Tail lagging behind a concurrent push; help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		// The value is read speculatively before the CAS decides the
		// winner; losers discard their copy. The node is not scrubbed
		// after a win — a concurrent loser may still be reading it — so
		// the value lives until the node itself is collected.
		v := next.value
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return v, true
		}
	}
}

// Len returns the approximate number of queued elements. It is exact when
// no push or pop is in flight.
func (q *Queue[T]) Len() int {
	n := q.size.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

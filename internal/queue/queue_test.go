package queue

import (
	"sort"
	"sync"
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	q := New[int]()
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue succeeded")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d, want 100", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on drained queue succeeded")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain", q.Len())
	}
}

func TestInterleavedPushPop(t *testing.T) {
	q := New[string]()
	q.Push("a")
	q.Push("b")
	if v, _ := q.Pop(); v != "a" {
		t.Fatalf("got %q", v)
	}
	q.Push("c")
	if v, _ := q.Pop(); v != "b" {
		t.Fatalf("got %q", v)
	}
	if v, _ := q.Pop(); v != "c" {
		t.Fatalf("got %q", v)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := New[int]()
	const producers = 4
	const consumers = 4
	const perP = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				q.Push(p*perP + i)
			}
		}(p)
	}
	var consumed [consumers][]int
	var cg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func(c int) {
			defer cg.Done()
			for {
				v, ok := q.Pop()
				if ok {
					consumed[c] = append(consumed[c], v)
					continue
				}
				select {
				case <-done:
					// Drain whatever is left after producers stopped.
					for {
						v, ok := q.Pop()
						if !ok {
							return
						}
						consumed[c] = append(consumed[c], v)
					}
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	close(done)
	cg.Wait()

	var all []int
	for _, batch := range consumed {
		all = append(all, batch...)
	}
	if len(all) != producers*perP {
		t.Fatalf("consumed %d values, want %d", len(all), producers*perP)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("value %d missing or duplicated (found %d at rank %d)", i, v, i)
		}
	}
}

// Per-producer FIFO: values from one producer must be consumed in their
// production order even under contention.
func TestPerProducerOrderPreserved(t *testing.T) {
	q := New[[2]int]() // (producer, seq)
	const producers = 3
	const perP = 3000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				q.Push([2]int{p, i})
			}
		}(p)
	}
	wg.Wait()
	lastSeq := map[int]int{0: -1, 1: -1, 2: -1}
	for {
		v, ok := q.Pop()
		if !ok {
			break
		}
		if v[1] <= lastSeq[v[0]] {
			t.Fatalf("producer %d seq %d observed after %d", v[0], v[1], lastSeq[v[0]])
		}
		lastSeq[v[0]] = v[1]
	}
	for p, last := range lastSeq {
		if last != perP-1 {
			t.Fatalf("producer %d: last seq %d, want %d", p, last, perP-1)
		}
	}
}

func TestPointerValuesReleased(t *testing.T) {
	type big struct{ buf [1024]byte }
	q := New[*big]()
	q.Push(&big{})
	if v, ok := q.Pop(); !ok || v == nil {
		t.Fatal("pointer round trip failed")
	}
}

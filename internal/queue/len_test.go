package queue

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestLenBoundsUnderConcurrency pins the accuracy contract of the
// approximate Len: while pushes and pops are in flight it must stay within
// [0, totalPushed] — the size counter is updated after the linking CAS, so
// the raw value can transiently undershoot but the clamp must hide that —
// and once the queue is quiescent it must be exact.
func TestLenBoundsUnderConcurrency(t *testing.T) {
	q := New[int]()
	const producers = 4
	const consumers = 3
	const perP = 4000
	const keep = 500 // left in the queue at the end, per producer

	var popped atomic.Int64
	wantPops := int64(producers * (perP - keep))

	var stop atomic.Bool
	var samplerErr atomic.Pointer[string]
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for !stop.Load() {
			n := q.Len()
			if n < 0 || n > producers*perP {
				msg := "Len out of bounds"
				samplerErr.Store(&msg)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				q.Push(p*perP + i)
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := popped.Load()
				if n >= wantPops {
					return
				}
				if !popped.CompareAndSwap(n, n+1) {
					continue // another consumer claimed this pop
				}
				for {
					if _, ok := q.Pop(); ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	stop.Store(true)
	samplerWG.Wait()
	if msg := samplerErr.Load(); msg != nil {
		t.Fatal(*msg)
	}

	// Quiescent: no push or pop in flight, so Len is exact.
	if got, want := q.Len(), producers*keep; got != want {
		t.Fatalf("quiescent Len = %d, want %d", got, want)
	}
	for i := 0; i < producers*keep; i++ {
		if _, ok := q.Pop(); !ok {
			t.Fatalf("queue drained after %d pops, Len had promised %d", i, producers*keep)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue still non-empty past the promised length")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d on empty queue", q.Len())
	}
}

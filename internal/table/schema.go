// Package table implements DB4ML's ML-tables: schema-typed, partitioned,
// in-memory tables whose rows are MVCC version chains from
// internal/storage. ML-tables serve classical transactional workloads
// through the txn package and iterative ML workloads through iterative
// records installed by uber-transactions (Sections 2.1 and 3).
package table

import (
	"fmt"

	"db4ml/internal/storage"
)

// ColType is the storage type of a column. Every column occupies one 64-bit
// payload slot.
type ColType int

const (
	// Int64 stores signed integers (ids, keys, counters).
	Int64 ColType = iota
	// Float64 stores floating point model parameters and features.
	Float64
)

func (t ColType) String() string {
	switch t {
	case Int64:
		return "INT64"
	case Float64:
		return "FLOAT64"
	default:
		return fmt.Sprintf("coltype(%d)", int(t))
	}
}

// Column is one named, typed column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table's columns. The zero value is an empty schema.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique and
// non-empty.
func NewSchema(cols ...Column) (Schema, error) {
	s := Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return Schema{}, fmt.Errorf("table: column %d has empty name", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return Schema{}, fmt.Errorf("table: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for statically known
// schemas.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Width returns the number of columns (payload slots per row).
func (s Schema) Width() int { return len(s.cols) }

// Columns returns the column definitions in order.
func (s Schema) Columns() []Column { return s.cols }

// Col returns the index of the named column, or an error if absent.
func (s Schema) Col(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("table: no column %q", name)
	}
	return i, nil
}

// MustCol is Col that panics on error, for statically known columns.
func (s Schema) MustCol(name string) int {
	i, err := s.Col(name)
	if err != nil {
		panic(err)
	}
	return i
}

// NewPayload allocates an empty row matching the schema width.
func (s Schema) NewPayload() storage.Payload {
	return make(storage.Payload, len(s.cols))
}

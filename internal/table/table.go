package table

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"db4ml/internal/index"
	"db4ml/internal/partition"
	"db4ml/internal/storage"
)

// RowID identifies a row slot within one table. Row ids are dense and
// assigned in insertion order, so they double as positions for range
// partitioning.
type RowID uint64

// Table is one ML-table: an append-only array of MVCC version chains plus
// optional secondary indexes and a partitioning scheme for NUMA locality.
type Table struct {
	name   string
	schema Schema

	mu   sync.RWMutex
	rows []*storage.VersionChain

	idxMu   sync.RWMutex
	hashIdx map[string]*index.Hash
	treeIdx map[string]*index.BTree

	part partition.Partitioner

	// muts counts publishes that changed visible state — appends, adopted
	// chains, OLTP write publishes, iterative commits. The fuzzy
	// checkpointer uses it as a cheap change detector: a table whose counter
	// is unchanged since the last checkpoint pass has an identical visible
	// state at any later pinned snapshot, so its encoded section can be
	// reused instead of re-scanned. Bumps happen inside the publish critical
	// section (before the stable watermark advances), which is what makes
	// "counter read after pinning" a sound equality witness.
	muts atomic.Uint64

	// view marks a table assembled from other tables' version chains via
	// AdoptChain (the shard router's cross-shard read view). Views share
	// storage with their backing tables, so growing one independently with
	// Append would desynchronize the global row-id space from the shards.
	view bool
}

// New creates an empty table with the given schema, partitioned with a
// single partition until SetPartitioner is called.
func New(name string, schema Schema) *Table {
	return &Table{
		name:    name,
		schema:  schema,
		hashIdx: make(map[string]*index.Hash),
		treeIdx: make(map[string]*index.BTree),
		part:    partition.New(partition.Range, 1, 0),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of row slots (including rows whose newest
// version may be invisible to a given snapshot).
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// SetPartitioner installs the partitioning scheme used to map rows to NUMA
// regions. Call it after loading so Range partitioning knows the row count.
func (t *Table) SetPartitioner(p partition.Partitioner) { t.part = p }

// PartitionOf returns the NUMA partition owning row.
func (t *Table) PartitionOf(row RowID) int { return t.part.Of(uint64(row)) }

// Partitioner returns the current partitioning scheme.
func (t *Table) Partitioner() partition.Partitioner { return t.part }

// Append adds a new row whose first version is valid from ts, returning its
// RowID. Payload length must match the schema width; the payload is cloned.
// Hash and tree indexes are maintained for every indexed column.
func (t *Table) Append(ts storage.Timestamp, payload storage.Payload) (RowID, error) {
	if t.view {
		return 0, fmt.Errorf("table %s: Append on a view table; load rows through the owning shard", t.name)
	}
	if len(payload) != t.schema.Width() {
		return 0, fmt.Errorf("table %s: payload width %d, schema width %d", t.name, len(payload), t.schema.Width())
	}
	rec := storage.NewRecord(ts, payload.Clone())
	t.mu.Lock()
	id := RowID(len(t.rows))
	t.rows = append(t.rows, storage.NewVersionChain(rec))
	t.mu.Unlock()
	t.muts.Add(1)

	t.idxMu.RLock()
	for col, idx := range t.hashIdx {
		idx.Insert(payload.Int64(t.schema.MustCol(col)), uint64(id))
	}
	for col, idx := range t.treeIdx {
		idx.Insert(payload.Int64(t.schema.MustCol(col)), uint64(id))
	}
	t.idxMu.RUnlock()
	return id, nil
}

// AdoptChain appends an EXISTING version chain — one owned by another
// table — as this table's next row and marks the table as a view. The
// chain is shared, not copied: versions published by the owning table
// (iterative commits included) become visible through the view instantly,
// which is how a shard-local commit at the coordinator's timestamp is
// observable from every other shard's read path. Views refuse Append;
// secondary indexes are maintained from the chain's current head.
func (t *Table) AdoptChain(c *storage.VersionChain) (RowID, error) {
	if c == nil {
		return 0, fmt.Errorf("table %s: AdoptChain of nil chain", t.name)
	}
	t.mu.Lock()
	t.view = true
	id := RowID(len(t.rows))
	t.rows = append(t.rows, c)
	t.mu.Unlock()
	t.muts.Add(1)

	if head := c.Head(); head != nil {
		t.idxMu.RLock()
		for col, idx := range t.hashIdx {
			idx.Insert(head.Payload.Int64(t.schema.MustCol(col)), uint64(id))
		}
		for col, idx := range t.treeIdx {
			idx.Insert(head.Payload.Int64(t.schema.MustCol(col)), uint64(id))
		}
		t.idxMu.RUnlock()
	}
	return id, nil
}

// IsView reports whether this table was assembled from adopted chains.
func (t *Table) IsView() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.view
}

// Chain returns the version chain of row, or nil if the row does not exist.
// The chain pointer is stable for the lifetime of the table, so hot paths
// (sub-transaction tx_state) may cache it.
func (t *Table) Chain(row RowID) *storage.VersionChain {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(row) >= len(t.rows) {
		return nil
	}
	return t.rows[row]
}

// Read returns a copy of the row version visible at ts, or false if the row
// does not exist at ts (never created, or deleted by then).
func (t *Table) Read(row RowID, ts storage.Timestamp) (storage.Payload, bool) {
	c := t.Chain(row)
	if c == nil {
		return nil, false
	}
	rec := c.VisibleAt(ts)
	if rec == nil || rec.Deleted {
		return nil, false
	}
	return rec.Payload.Clone(), true
}

// Scan calls fn with every row visible at ts, in RowID order, stopping
// early if fn returns false.
func (t *Table) Scan(ts storage.Timestamp, fn func(row RowID, payload storage.Payload) bool) {
	n := t.NumRows()
	for i := 0; i < n; i++ {
		c := t.Chain(RowID(i))
		if c == nil {
			continue
		}
		rec := c.VisibleAt(ts)
		if rec == nil || rec.Deleted {
			continue
		}
		if !fn(RowID(i), rec.Payload) {
			return
		}
	}
}

// ScanHint restricts a table scan — the table-level half of predicate
// pushdown. The planner (internal/plan) compiles a query's pushable
// conjuncts into one of these so filtered rows are rejected inside the
// scan, against the in-place version payload, instead of being
// materialized and discarded by a filter operator above.
type ScanHint struct {
	// Lo and Hi bound the scanned row ids to the half-open range [Lo, Hi);
	// Hi == 0 means "through the last row".
	Lo, Hi RowID
	// Col and Test are an optional single-column predicate: Test receives
	// the raw 64-bit word of column Col of the visible version and decides
	// membership without any payload copy. nil Test scans unconditionally.
	Col  int
	Test func(word uint64) bool
}

// ScanFiltered calls fn with every row in h's row-id range whose version
// visible at ts passes h's predicate, in RowID order, stopping early if fn
// returns false. Payloads are passed in place (not cloned) and are valid
// only inside fn, exactly like Scan; rows rejected by the predicate are
// never materialized at all (storage.VersionChain.VisibleMatch).
func (t *Table) ScanFiltered(ts storage.Timestamp, h ScanHint, fn func(row RowID, payload storage.Payload) bool) {
	hi := RowID(t.NumRows())
	if h.Hi != 0 && h.Hi < hi {
		hi = h.Hi
	}
	for i := h.Lo; i < hi; i++ {
		c := t.Chain(i)
		if c == nil {
			continue
		}
		rec, ok := c.VisibleMatch(ts, h.Col, h.Test)
		if !ok {
			continue
		}
		if !fn(i, rec.Payload) {
			return
		}
	}
}

// RowsInRange returns the number of row slots a ScanHint's range covers —
// the planner's cardinality upper bound for hash-join build-side
// pre-sizing.
func (t *Table) RowsInRange(h ScanHint) int {
	hi := RowID(t.NumRows())
	if h.Hi != 0 && h.Hi < hi {
		hi = h.Hi
	}
	if h.Lo >= hi {
		return 0
	}
	return int(hi - h.Lo)
}

// CreateHashIndex builds a hash index on column col over all current rows
// using their newest committed versions, then maintains it on Append.
func (t *Table) CreateHashIndex(col string) error {
	ci, err := t.schema.Col(col)
	if err != nil {
		return err
	}
	idx := index.NewHash()
	t.fillIndex(ci, func(key int64, row uint64) { idx.Insert(key, row) })
	t.idxMu.Lock()
	t.hashIdx[col] = idx
	t.idxMu.Unlock()
	return nil
}

// CreateTreeIndex builds an ordered index on column col over all current
// rows, then maintains it on Append. Keys must be unique per row for tree
// indexes; duplicate keys keep the most recently inserted row.
func (t *Table) CreateTreeIndex(col string) error {
	ci, err := t.schema.Col(col)
	if err != nil {
		return err
	}
	idx := index.NewBTree()
	t.fillIndex(ci, func(key int64, row uint64) { idx.Insert(key, row) })
	t.idxMu.Lock()
	t.treeIdx[col] = idx
	t.idxMu.Unlock()
	return nil
}

func (t *Table) fillIndex(ci int, add func(key int64, row uint64)) {
	n := t.NumRows()
	for i := 0; i < n; i++ {
		c := t.Chain(RowID(i))
		if c == nil {
			continue
		}
		if head := c.Head(); head != nil {
			add(head.Payload.Int64(ci), uint64(i))
		}
	}
}

// NoteMutation records one visible-state change. Publish paths that install
// new versions on existing chains (OLTP write publishes, iterative commits)
// call it inside their publish critical section; Append and AdoptChain bump
// internally.
func (t *Table) NoteMutation() { t.muts.Add(1) }

// Mutations returns the visible-state change counter. Two reads taken after
// pinning two snapshots bracket the interval: equal counters mean no publish
// changed this table between the pins.
func (t *Table) Mutations() uint64 { return t.muts.Load() }

// IndexDefs returns the columns carrying secondary indexes, sorted by name —
// the definition set checkpoints persist so indexes are rebuilt on recovery.
func (t *Table) IndexDefs() (hash, tree []string) {
	t.idxMu.RLock()
	for col := range t.hashIdx {
		hash = append(hash, col)
	}
	for col := range t.treeIdx {
		tree = append(tree, col)
	}
	t.idxMu.RUnlock()
	sort.Strings(hash)
	sort.Strings(tree)
	return hash, tree
}

// HashIndex returns the hash index on col, or nil if none exists.
func (t *Table) HashIndex(col string) *index.Hash {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	return t.hashIdx[col]
}

// TreeIndex returns the ordered index on col, or nil if none exists.
func (t *Table) TreeIndex(col string) *index.BTree {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	return t.treeIdx[col]
}

// Prune garbage-collects row versions invisible to every transaction
// reading at or after watermark (Hekaton-style version GC), returning the
// number of versions dropped. Fully-dead rows — newest reachable version a
// tombstone — have their whole chain reclaimed. The watermark must not
// exceed the oldest active transaction's snapshot; don't call this
// directly in engine code — go through internal/gc.Reclaimer, which clamps
// every watermark to the transaction manager's SafeWatermark so the
// contract is enforced rather than assumed.
func (t *Table) Prune(watermark storage.Timestamp) int {
	dropped := 0
	n := t.NumRows()
	for i := 0; i < n; i++ {
		if c := t.Chain(RowID(i)); c != nil {
			dropped += c.Prune(watermark)
		}
	}
	return dropped
}

// Lookup returns the row ids whose indexed column col equals key, using the
// hash index. It returns an error if no hash index exists on col.
func (t *Table) Lookup(col string, key int64) ([]RowID, error) {
	idx := t.HashIndex(col)
	if idx == nil {
		return nil, fmt.Errorf("table %s: no hash index on %q", t.name, col)
	}
	raw := idx.GetAll(key)
	out := make([]RowID, len(raw))
	for i, r := range raw {
		out[i] = RowID(r)
	}
	return out, nil
}

package table

import (
	"fmt"

	"db4ml/internal/storage"
)

// This file implements the uber-transaction side of iterative records
// (Section 3.2): installing an invisible iterative version on every row the
// ML algorithm will update, exposing the IterativeRecord handles that
// sub-transactions cache in their tx_state, and publishing or discarding
// the results when the uber-transaction commits or aborts.

// StartIterative installs an iterative record on every row in rows (all
// rows when rows is nil), seeded with the version visible at snapshot ts
// and holding nVersions intermediate snapshots. The new versions have
// Begin = InfTS, so no other transaction can see them until
// CommitIterative. It fails if any row already carries an in-flight
// iterative version: DB4ML runs one uber-transaction at a time per row.
func (t *Table) StartIterative(ts storage.Timestamp, nVersions int, rows []RowID) error {
	// Two passes: first validate every target chain and collect the
	// snapshot seeds, then slab-allocate all iterative versions at once
	// (the paper's contiguous tuple format, Section 7.2.1) and install
	// them.
	type target struct {
		row  RowID
		c    *storage.VersionChain
		head *storage.Record
	}
	var targets []target
	var seeds []storage.Payload
	zero := t.schema.NewPayload()
	err := t.forRows(rows, func(row RowID, c *storage.VersionChain) error {
		head := c.Head()
		if head != nil && head.Iter() != nil && head.Begin() == storage.InfTS {
			return fmt.Errorf("table %s row %d: iterative version already in flight", t.name, row)
		}
		seed := zero
		if base := c.VisibleAt(ts); base != nil {
			if base.Deleted {
				if rows == nil {
					// Whole-table attach skips deleted rows: the ML
					// algorithm must not resurrect them.
					return nil
				}
				return fmt.Errorf("table %s row %d: row deleted at snapshot %d", t.name, row, ts)
			}
			seed = base.Payload
		} else if rows == nil {
			// Row did not exist at the snapshot; skip it likewise.
			return nil
		}
		targets = append(targets, target{row: row, c: c, head: head})
		seeds = append(seeds, seed)
		return nil
	})
	if err != nil {
		return err
	}
	recs := storage.NewIterativeVersionBatch(len(targets), t.schema.Width(), nVersions,
		func(i int) storage.Payload { return seeds[i] })
	for i, tg := range targets {
		if !tg.c.Install(tg.head, recs[i]) {
			// Unwind the prefix so the table stays clean.
			for j := i - 1; j >= 0; j-- {
				targets[j].c.Unwind(recs[j])
			}
			return fmt.Errorf("table %s row %d: concurrent write during StartIterative", t.name, tg.row)
		}
	}
	return nil
}

// IterRecord returns the in-flight (or published) iterative record at the
// head of row's version chain, or nil if the head is not iterative.
// Sub-transactions call this once in begin() and cache the pointer.
func (t *Table) IterRecord(row RowID) *storage.IterativeRecord {
	c := t.Chain(row)
	if c == nil {
		return nil
	}
	head := c.Head()
	if head == nil {
		return nil
	}
	return head.Iter()
}

// CommitIterative materializes each row's latest intermediate snapshot as
// the row's new globally visible version at commitTS. Called by the
// uber-transaction after all sub-transactions converged. With rows == nil
// it publishes every in-flight iterative head and skips rows without one
// (rows StartIterative skipped because they were deleted or absent at the
// snapshot).
func (t *Table) CommitIterative(commitTS storage.Timestamp, rows []RowID) error {
	published := 0
	err := t.forRows(rows, func(row RowID, c *storage.VersionChain) error {
		head := c.Head()
		if head == nil || head.Iter() == nil {
			if rows == nil {
				return nil
			}
			return fmt.Errorf("table %s row %d: no iterative version to commit", t.name, row)
		}
		if head.Begin() != storage.InfTS {
			if rows == nil {
				return nil // already published (or from an older uber-txn)
			}
			return fmt.Errorf("table %s row %d: iterative version not in flight", t.name, row)
		}
		copy(head.Payload, head.Iter().LatestSnapshot())
		head.Publish(commitTS)
		published++
		return nil
	})
	if err != nil {
		return err
	}
	if rows == nil && published == 0 && t.NumRows() > 0 {
		return fmt.Errorf("table %s: no in-flight iterative versions to commit", t.name)
	}
	if published > 0 {
		// CommitIterative runs inside the manager's publish critical section
		// (PublishAt/CommitAt), so this bump lands before the stable
		// watermark advances — the ordering the fuzzy checkpointer's
		// change-detection relies on.
		t.muts.Add(1)
	}
	return nil
}

// AbortIterative discards the in-flight iterative versions, restoring each
// row's chain to its previous head. Only the owning uber-transaction may
// call it.
func (t *Table) AbortIterative(rows []RowID) error {
	aborted := 0
	err := t.forRows(rows, func(row RowID, c *storage.VersionChain) error {
		head := c.Head()
		if head == nil || head.Iter() == nil || head.Begin() != storage.InfTS {
			if rows == nil {
				return nil // skipped at StartIterative
			}
			return fmt.Errorf("table %s row %d: no in-flight iterative version to abort", t.name, row)
		}
		if !c.Unwind(head) {
			return fmt.Errorf("table %s row %d: concurrent write during AbortIterative", t.name, row)
		}
		aborted++
		return nil
	})
	if err != nil {
		return err
	}
	if rows == nil && aborted == 0 && t.NumRows() > 0 {
		return fmt.Errorf("table %s: no in-flight iterative versions to abort", t.name)
	}
	return nil
}

func (t *Table) forRows(rows []RowID, fn func(RowID, *storage.VersionChain) error) error {
	if rows == nil {
		n := t.NumRows()
		for i := 0; i < n; i++ {
			c := t.Chain(RowID(i))
			if c == nil {
				continue
			}
			if err := fn(RowID(i), c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, row := range rows {
		c := t.Chain(row)
		if c == nil {
			return fmt.Errorf("table %s: row %d does not exist", t.name, row)
		}
		if err := fn(row, c); err != nil {
			return err
		}
	}
	return nil
}

package table

import (
	"testing"

	"db4ml/internal/storage"
)

// deleteRow installs a tombstone version on the row at ts.
func deleteRow(t *testing.T, tbl *Table, row RowID, ts storage.Timestamp) {
	t.Helper()
	c := tbl.Chain(row)
	head := c.Head()
	tomb := storage.NewRecord(ts, tbl.Schema().NewPayload())
	tomb.Deleted = true
	if !c.Install(head, tomb) {
		t.Fatal("tombstone install failed")
	}
}

func TestStartIterativeSkipsDeletedRows(t *testing.T) {
	tbl := newNodeTable(t, 4)
	deleteRow(t, tbl, 2, 5)
	if err := tbl.StartIterative(10, 1, nil); err != nil {
		t.Fatal(err)
	}
	if tbl.IterRecord(2) != nil {
		t.Fatal("deleted row got an iterative record")
	}
	if tbl.IterRecord(0) == nil || tbl.IterRecord(3) == nil {
		t.Fatal("live rows missing iterative records")
	}
	if err := tbl.CommitIterative(20, nil); err != nil {
		t.Fatal(err)
	}
	// Deleted row stays deleted after the ML commit.
	if _, ok := tbl.Read(2, 25); ok {
		t.Fatal("ML commit resurrected a deleted row")
	}
	if _, ok := tbl.Read(0, 25); !ok {
		t.Fatal("live row unreadable after ML commit")
	}
}

func TestStartIterativeExplicitDeletedRowFails(t *testing.T) {
	tbl := newNodeTable(t, 2)
	deleteRow(t, tbl, 1, 5)
	if err := tbl.StartIterative(10, 1, []RowID{1}); err == nil {
		t.Fatal("explicit attach of deleted row accepted")
	}
}

func TestAbortIterativeWithSkippedRows(t *testing.T) {
	tbl := newNodeTable(t, 3)
	deleteRow(t, tbl, 0, 5)
	if err := tbl.StartIterative(10, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AbortIterative(nil); err != nil {
		t.Fatalf("abort with skipped rows failed: %v", err)
	}
	// Everything restored; a fresh attach works.
	if err := tbl.StartIterative(11, 1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStartIterativeRowInvisibleAtSnapshot(t *testing.T) {
	tbl := newNodeTable(t, 2)
	// Append a row that only becomes visible at ts 50.
	p := tbl.Schema().NewPayload()
	p.SetInt64(0, 99)
	if _, err := tbl.Append(50, p); err != nil {
		t.Fatal(err)
	}
	// Whole-table attach at snapshot 10 skips it.
	if err := tbl.StartIterative(10, 1, nil); err != nil {
		t.Fatal(err)
	}
	if tbl.IterRecord(2) != nil {
		t.Fatal("future row got an iterative record")
	}
	if err := tbl.CommitIterative(60, nil); err != nil {
		t.Fatal(err)
	}
	// The future row is untouched and still visible from its own ts.
	got, ok := tbl.Read(2, 70)
	if !ok || got.Int64(0) != 99 {
		t.Fatalf("future row corrupted: (%v, %v)", got, ok)
	}
}

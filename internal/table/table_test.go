package table

import (
	"sync"
	"testing"

	"db4ml/internal/partition"
	"db4ml/internal/storage"
)

func nodeSchema() Schema {
	return MustSchema(Column{"NodeID", Int64}, Column{"PR", Float64})
}

func newNodeTable(t *testing.T, n int) *Table {
	t.Helper()
	tbl := New("Node", nodeSchema())
	for i := 0; i < n; i++ {
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetFloat64(1, float64(i)/10)
		if _, err := tbl.Append(1, p); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestAppendAndRead(t *testing.T) {
	tbl := newNodeTable(t, 10)
	if tbl.NumRows() != 10 {
		t.Fatalf("NumRows = %d, want 10", tbl.NumRows())
	}
	p, ok := tbl.Read(3, 5)
	if !ok {
		t.Fatal("Read of existing row failed")
	}
	if p.Int64(0) != 3 || p.Float64(1) != 0.3 {
		t.Fatalf("row 3 = %v", p)
	}
	if _, ok := tbl.Read(99, 5); ok {
		t.Fatal("Read of absent row succeeded")
	}
	if _, ok := tbl.Read(3, 0); ok {
		t.Fatal("row visible before its Begin timestamp")
	}
}

func TestAppendRejectsWrongWidth(t *testing.T) {
	tbl := New("Node", nodeSchema())
	if _, err := tbl.Append(1, storage.Payload{1}); err == nil {
		t.Fatal("Append with wrong payload width succeeded")
	}
}

func TestAppendClonesPayload(t *testing.T) {
	tbl := New("Node", nodeSchema())
	p := tbl.Schema().NewPayload()
	p.SetInt64(0, 7)
	id, _ := tbl.Append(1, p)
	p.SetInt64(0, 999) // caller reuses the buffer
	got, _ := tbl.Read(id, 2)
	if got.Int64(0) != 7 {
		t.Fatal("table aliased the caller's payload buffer")
	}
}

func TestReadReturnsCopy(t *testing.T) {
	tbl := newNodeTable(t, 1)
	p, _ := tbl.Read(0, 5)
	p.SetFloat64(1, 123)
	q, _ := tbl.Read(0, 5)
	if q.Float64(1) == 123 {
		t.Fatal("Read returned a payload aliasing storage")
	}
}

func TestScanVisitsVisibleRows(t *testing.T) {
	tbl := newNodeTable(t, 5)
	var ids []int64
	tbl.Scan(10, func(row RowID, p storage.Payload) bool {
		ids = append(ids, p.Int64(0))
		return true
	})
	if len(ids) != 5 {
		t.Fatalf("Scan visited %d rows, want 5", len(ids))
	}
	for i, id := range ids {
		if id != int64(i) {
			t.Fatalf("Scan order wrong: %v", ids)
		}
	}
	// Early stop.
	count := 0
	tbl.Scan(10, func(RowID, storage.Payload) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("Scan early stop visited %d rows", count)
	}
	// Nothing visible at ts 0.
	count = 0
	tbl.Scan(0, func(RowID, storage.Payload) bool { count++; return true })
	if count != 0 {
		t.Fatal("Scan at ts 0 visited rows appended at ts 1")
	}
}

func TestHashIndexLookup(t *testing.T) {
	tbl := newNodeTable(t, 100)
	if err := tbl.CreateHashIndex("NodeID"); err != nil {
		t.Fatal(err)
	}
	rows, err := tbl.Lookup("NodeID", 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0] != 42 {
		t.Fatalf("Lookup(42) = %v", rows)
	}
	// Index maintained on later Append.
	p := tbl.Schema().NewPayload()
	p.SetInt64(0, 1000)
	id, _ := tbl.Append(2, p)
	rows, _ = tbl.Lookup("NodeID", 1000)
	if len(rows) != 1 || rows[0] != id {
		t.Fatalf("Lookup after Append = %v, want [%d]", rows, id)
	}
	if _, err := tbl.Lookup("PR", 1); err == nil {
		t.Fatal("Lookup without index succeeded")
	}
	if err := tbl.CreateHashIndex("missing"); err == nil {
		t.Fatal("CreateHashIndex on missing column succeeded")
	}
}

func TestTreeIndexRange(t *testing.T) {
	tbl := newNodeTable(t, 50)
	if err := tbl.CreateTreeIndex("NodeID"); err != nil {
		t.Fatal(err)
	}
	idx := tbl.TreeIndex("NodeID")
	if idx == nil {
		t.Fatal("TreeIndex returned nil after creation")
	}
	var got []int64
	idx.Range(10, 14, func(k int64, row uint64) bool {
		got = append(got, k)
		if uint64(k) != row {
			t.Fatalf("tree index row mismatch: key %d row %d", k, row)
		}
		return true
	})
	if len(got) != 5 {
		t.Fatalf("Range scan returned %v", got)
	}
}

func TestMultiValueEdgeIndex(t *testing.T) {
	// Mirrors the paper's Edge table: index on NID_To with duplicates.
	edge := New("Edge", MustSchema(Column{"NID_From", Int64}, Column{"NID_To", Int64}))
	links := [][2]int64{{1, 2}, {2, 1}, {3, 1}, {4, 1}}
	for _, l := range links {
		p := edge.Schema().NewPayload()
		p.SetInt64(0, l[0])
		p.SetInt64(1, l[1])
		if _, err := edge.Append(1, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := edge.CreateHashIndex("NID_To"); err != nil {
		t.Fatal(err)
	}
	rows, _ := edge.Lookup("NID_To", 1)
	if len(rows) != 3 {
		t.Fatalf("edges into node 1: %v, want 3 rows", rows)
	}
}

func TestPartitionerAssignment(t *testing.T) {
	tbl := newNodeTable(t, 100)
	tbl.SetPartitioner(partition.New(partition.Range, 4, 100))
	if tbl.PartitionOf(0) != 0 || tbl.PartitionOf(99) != 3 {
		t.Fatalf("range partitioning wrong: %d, %d", tbl.PartitionOf(0), tbl.PartitionOf(99))
	}
	if tbl.Partitioner().N() != 4 {
		t.Fatal("Partitioner not installed")
	}
}

func TestMVCCUpdateVisibility(t *testing.T) {
	tbl := newNodeTable(t, 1)
	c := tbl.Chain(0)
	head := c.Head()
	newer := storage.NewRecord(20, storage.Payload{0, 0})
	newer.Payload.SetFloat64(1, 9.9)
	if !c.Install(head, newer) {
		t.Fatal("Install failed")
	}
	old, _ := tbl.Read(0, 10)
	cur, _ := tbl.Read(0, 25)
	if old.Float64(1) != 0.0 {
		t.Fatalf("snapshot at 10 sees new version: %v", old)
	}
	if cur.Float64(1) != 9.9 {
		t.Fatalf("snapshot at 25 misses new version: %v", cur)
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	tbl := New("Node", nodeSchema())
	var wg sync.WaitGroup
	const writers = 4
	const perW = 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				p := tbl.Schema().NewPayload()
				p.SetInt64(0, int64(w*perW+i))
				if _, err := tbl.Append(1, p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			n := tbl.NumRows()
			if n > 0 {
				if _, ok := tbl.Read(RowID(n-1), 5); !ok {
					// A row slot always has its first version by the
					// time NumRows includes it.
					t.Error("row slot visible in NumRows but unreadable")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if tbl.NumRows() != writers*perW {
		t.Fatalf("NumRows = %d, want %d", tbl.NumRows(), writers*perW)
	}
}

package table

import "testing"

func TestNewSchemaValid(t *testing.T) {
	s, err := NewSchema(Column{"id", Int64}, Column{"pr", Float64})
	if err != nil {
		t.Fatal(err)
	}
	if s.Width() != 2 {
		t.Fatalf("Width = %d, want 2", s.Width())
	}
	if i := s.MustCol("pr"); i != 1 {
		t.Fatalf("MustCol(pr) = %d, want 1", i)
	}
	if _, err := s.Col("missing"); err == nil {
		t.Fatal("Col on missing column succeeded")
	}
	if got := len(s.Columns()); got != 2 {
		t.Fatalf("Columns() length = %d", got)
	}
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	if _, err := NewSchema(Column{"x", Int64}, Column{"x", Float64}); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestNewSchemaRejectsEmptyName(t *testing.T) {
	if _, err := NewSchema(Column{"", Int64}); err == nil {
		t.Fatal("empty column name accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema did not panic on invalid schema")
		}
	}()
	MustSchema(Column{"", Int64})
}

func TestMustColPanics(t *testing.T) {
	s := MustSchema(Column{"a", Int64})
	defer func() {
		if recover() == nil {
			t.Fatal("MustCol did not panic on missing column")
		}
	}()
	s.MustCol("nope")
}

func TestNewPayloadWidth(t *testing.T) {
	s := MustSchema(Column{"a", Int64}, Column{"b", Float64}, Column{"c", Float64})
	if p := s.NewPayload(); len(p) != 3 {
		t.Fatalf("NewPayload length = %d, want 3", len(p))
	}
}

func TestColTypeString(t *testing.T) {
	if Int64.String() != "INT64" || Float64.String() != "FLOAT64" {
		t.Error("ColType.String mismatch")
	}
	if ColType(9).String() == "" {
		t.Error("unknown ColType has empty String")
	}
}

package table

import (
	"testing"

	"db4ml/internal/storage"
)

func TestStartIterativeSeedsFromSnapshot(t *testing.T) {
	tbl := newNodeTable(t, 3)
	if err := tbl.StartIterative(5, 3, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ir := tbl.IterRecord(RowID(i))
		if ir == nil {
			t.Fatalf("row %d has no iterative record", i)
		}
		out := make(storage.Payload, 2)
		if iter := ir.ReadRecent(out); iter != 0 {
			t.Fatalf("fresh iterative record at iteration %d", iter)
		}
		if out.Float64(1) != float64(i)/10 {
			t.Fatalf("row %d seeded with %v", i, out)
		}
	}
}

func TestIterativeInvisibleUntilCommit(t *testing.T) {
	tbl := newNodeTable(t, 2)
	if err := tbl.StartIterative(5, 1, nil); err != nil {
		t.Fatal(err)
	}
	// Sub-transactions install intermediate snapshots.
	for i := 0; i < 2; i++ {
		ir := tbl.IterRecord(RowID(i))
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetFloat64(1, 0.5)
		ir.Install(p)
	}
	// Readers at any timestamp still see the old values.
	p, ok := tbl.Read(0, 100)
	if !ok || p.Float64(1) != 0.0 {
		t.Fatalf("reader saw in-flight iterative state: %v", p)
	}
	if err := tbl.CommitIterative(50, nil); err != nil {
		t.Fatal(err)
	}
	// Before the commit timestamp: old value; after: new value.
	p, _ = tbl.Read(0, 49)
	if p.Float64(1) != 0.0 {
		t.Fatalf("pre-commit snapshot changed: %v", p)
	}
	p, _ = tbl.Read(0, 50)
	if p.Float64(1) != 0.5 {
		t.Fatalf("post-commit snapshot missing result: %v", p)
	}
}

func TestStartIterativeRejectsDoubleStart(t *testing.T) {
	tbl := newNodeTable(t, 1)
	if err := tbl.StartIterative(5, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := tbl.StartIterative(6, 1, nil); err == nil {
		t.Fatal("second concurrent StartIterative succeeded")
	}
}

func TestAbortIterativeRestoresChain(t *testing.T) {
	tbl := newNodeTable(t, 2)
	if err := tbl.StartIterative(5, 1, nil); err != nil {
		t.Fatal(err)
	}
	ir := tbl.IterRecord(0)
	p := tbl.Schema().NewPayload()
	p.SetFloat64(1, 0.77)
	ir.Install(p)
	if err := tbl.AbortIterative(nil); err != nil {
		t.Fatal(err)
	}
	got, ok := tbl.Read(0, 100)
	if !ok || got.Float64(1) != 0.0 {
		t.Fatalf("abort leaked iterative state: %v", got)
	}
	if tbl.IterRecord(0) != nil {
		t.Fatal("iterative record still at chain head after abort")
	}
	// A new uber-transaction can start again after the abort.
	if err := tbl.StartIterative(7, 1, nil); err != nil {
		t.Fatalf("restart after abort failed: %v", err)
	}
}

func TestAbortIterativeWithoutStartFails(t *testing.T) {
	tbl := newNodeTable(t, 1)
	if err := tbl.AbortIterative(nil); err == nil {
		t.Fatal("AbortIterative without StartIterative succeeded")
	}
}

func TestCommitIterativeWithoutStartFails(t *testing.T) {
	tbl := newNodeTable(t, 1)
	if err := tbl.CommitIterative(9, nil); err == nil {
		t.Fatal("CommitIterative without StartIterative succeeded")
	}
}

func TestStartIterativeSubsetOfRows(t *testing.T) {
	tbl := newNodeTable(t, 5)
	rows := []RowID{1, 3}
	if err := tbl.StartIterative(5, 2, rows); err != nil {
		t.Fatal(err)
	}
	if tbl.IterRecord(0) != nil || tbl.IterRecord(2) != nil || tbl.IterRecord(4) != nil {
		t.Fatal("rows outside the subset got iterative records")
	}
	if tbl.IterRecord(1) == nil || tbl.IterRecord(3) == nil {
		t.Fatal("subset rows missing iterative records")
	}
	if err := tbl.CommitIterative(50, rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.StartIterative(60, 2, []RowID{99}); err == nil {
		t.Fatal("StartIterative on absent row succeeded")
	}
}

func TestIterRecordAfterCommitStillAccessible(t *testing.T) {
	// After commit the record is published but remains iterative, matching
	// Figure 4's committed iterative record with Begin = T_TE.
	tbl := newNodeTable(t, 1)
	if err := tbl.StartIterative(5, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := tbl.CommitIterative(50, nil); err != nil {
		t.Fatal(err)
	}
	if tbl.IterRecord(0) == nil {
		t.Fatal("published iterative record not reachable")
	}
}

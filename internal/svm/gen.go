package svm

import (
	"math"
	"math/rand"
)

// GenSpec describes a synthetic binary classification problem whose shape
// (sample count, dimensionality, sparsity) mirrors one of the paper's
// LIBSVM datasets. Samples are drawn around a hidden ground-truth
// hyperplane with label noise, so a linear SVM can learn them and accuracy
// curves behave like real data.
type GenSpec struct {
	Train    int
	Test     int
	Features int
	// Density is the fraction of nonzero features per sample; 1 generates
	// dense vectors.
	Density float64
	// Noise is the probability of flipping a label.
	Noise float64
	Seed  int64
}

// Generate materializes the dataset.
func Generate(spec GenSpec) (train, test []Sample) {
	rng := rand.New(rand.NewSource(spec.Seed))
	// Hidden hyperplane; heavier weights on a small subset of features so
	// sparse samples still usually touch informative coordinates.
	truth := make([]float64, spec.Features)
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	nnz := int(float64(spec.Features) * spec.Density)
	if nnz < 1 {
		nnz = 1
	}
	if nnz > spec.Features {
		nnz = spec.Features
	}
	gen := func(n int) []Sample {
		out := make([]Sample, n)
		for s := range out {
			x := drawSparse(rng, spec.Features, nnz)
			score := 0.0
			for k, i := range x.Idx {
				score += truth[i] * x.Val[k]
			}
			label := 1.0
			if score < 0 {
				label = -1.0
			}
			if rng.Float64() < spec.Noise {
				label = -label
			}
			out[s] = Sample{X: x, Label: label}
		}
		return out
	}
	return gen(spec.Train), gen(spec.Test)
}

// drawSparse picks nnz distinct coordinates (sorted) with N(0,1) values,
// normalized to unit L2 norm like the preprocessed LIBSVM datasets.
func drawSparse(rng *rand.Rand, features, nnz int) SparseVec {
	var idx []int32
	if nnz >= features {
		idx = make([]int32, features)
		for i := range idx {
			idx[i] = int32(i)
		}
	} else {
		// Floyd's algorithm for a sorted distinct sample.
		seen := make(map[int32]bool, nnz)
		for j := features - nnz; j < features; j++ {
			t := int32(rng.Intn(j + 1))
			if seen[t] {
				t = int32(j)
			}
			seen[t] = true
		}
		idx = make([]int32, 0, nnz)
		for i := range seen {
			idx = append(idx, i)
		}
		sortInt32(idx)
	}
	val := make([]float64, len(idx))
	norm := 0.0
	for k := range val {
		val[k] = rng.NormFloat64()
		norm += val[k] * val[k]
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for k := range val {
			val[k] *= inv
		}
	}
	return SparseVec{Idx: idx, Val: val}
}

func sortInt32(a []int32) {
	// Insertion sort is fine: nnz per sample is small for sparse data, and
	// dense vectors are generated pre-sorted.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// Shuffle permutes samples deterministically. The paper shuffles the
// Sample table before the uber-transaction starts so key-range partitions
// are random samples.
func Shuffle(samples []Sample, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(samples), func(i, j int) {
		samples[i], samples[j] = samples[j], samples[i]
	})
}

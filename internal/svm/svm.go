// Package svm provides the linear-SVM substrate for the SGD use case
// (Section 6.2): sparse feature vectors, the Hogwild!-style sparse SGD
// update rule (equation (2) of the paper), binary-classification dataset
// generators mirroring the shapes of the LIBSVM datasets in Table 2, and
// train/test evaluation.
//
// Models are accessed through the Model interface so the same training
// loop runs against plain arrays (the Hogwild!/Hogwild++ baselines) and
// DB4ML's GlobalParameter ML-table.
package svm

// SparseVec is a sparse feature vector with strictly increasing indices.
type SparseVec struct {
	Idx []int32
	Val []float64
}

// NNZ returns the number of stored (nonzero) entries.
func (v SparseVec) NNZ() int { return len(v.Idx) }

// Sample is one labeled training or test example; Label is +1 or -1.
type Sample struct {
	X     SparseVec
	Label float64
}

// Model is a mutable parameter vector. Implementations may be racy
// (Hogwild!-style lock-free updates) — the algorithm tolerates it.
type Model interface {
	// Get returns parameter i.
	Get(i int32) float64
	// Add atomically-or-racily adds delta to parameter i.
	Add(i int32, delta float64)
}

// VecModel is the plain-array model used by the baselines and tests. It is
// NOT safe for concurrent use; the baselines wrap it in atomics.
type VecModel []float64

// Get returns parameter i.
func (m VecModel) Get(i int32) float64 { return m[i] }

// Add adds delta to parameter i.
func (m VecModel) Add(i int32, delta float64) { m[i] += delta }

// Dot returns the inner product of the model with a sparse vector.
func Dot(m Model, x SparseVec) float64 {
	s := 0.0
	for k, i := range x.Idx {
		s += m.Get(i) * x.Val[k]
	}
	return s
}

// Step performs one SGD step on the hinge-loss linear SVM
//
//	min_w  λ/2 ||w||² + Σ max(0, 1 − y ⟨w, x⟩)
//
// touching only the sample's nonzero coordinates, like Hogwild!'s
// diagonally-scaled update x_v ← x_v − γ b_v G_e(x): the L2 shrinkage is
// applied to the touched coordinates only, scaled by 1/nnz so its expected
// effect matches the full gradient. It returns true when the sample was
// inside the margin (i.e. the loss part contributed a gradient).
func Step(m Model, s Sample, gamma, lambda float64) bool {
	margin := s.Label * Dot(m, s.X)
	active := margin < 1
	nnz := float64(s.X.NNZ())
	if nnz == 0 {
		return false
	}
	shrink := gamma * lambda / nnz
	for k, i := range s.Idx() {
		g := shrink * m.Get(i)
		if active {
			g -= gamma * s.Label * s.X.Val[k]
		}
		m.Add(i, -g)
	}
	return active
}

// Idx exposes the sample's nonzero coordinate indices.
func (s Sample) Idx() []int32 { return s.X.Idx }

// HingeLoss returns the regularized objective over samples.
func HingeLoss(m Model, samples []Sample, lambda float64, features int) float64 {
	loss := 0.0
	for _, s := range samples {
		if v := 1 - s.Label*Dot(m, s.X); v > 0 {
			loss += v
		}
	}
	reg := 0.0
	for i := 0; i < features; i++ {
		w := m.Get(int32(i))
		reg += w * w
	}
	return loss + lambda/2*reg
}

// Accuracy returns the fraction of samples whose sign(⟨w, x⟩) matches the
// label.
func Accuracy(m Model, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		pred := 1.0
		if Dot(m, s.X) < 0 {
			pred = -1.0
		}
		if pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

package svm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	m := VecModel{1, 2, 3, 4}
	x := SparseVec{Idx: []int32{0, 2}, Val: []float64{0.5, 2}}
	if got := Dot(m, x); got != 0.5+6 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Dot(m, SparseVec{}); got != 0 {
		t.Fatalf("empty Dot = %v", got)
	}
}

func TestStepMovesTowardLabel(t *testing.T) {
	m := make(VecModel, 3)
	s := Sample{X: SparseVec{Idx: []int32{0, 1}, Val: []float64{1, 1}}, Label: 1}
	if !Step(m, s, 0.1, 0) {
		t.Fatal("sample inside margin reported inactive")
	}
	if m[0] <= 0 || m[1] <= 0 || m[2] != 0 {
		t.Fatalf("update direction wrong: %v", m)
	}
	before := Dot(m, s.X)
	Step(m, s, 0.1, 0)
	if after := Dot(m, s.X); after <= before {
		t.Fatalf("margin did not improve: %v -> %v", before, after)
	}
}

func TestStepSkipsOutsideMargin(t *testing.T) {
	m := VecModel{10, 0}
	s := Sample{X: SparseVec{Idx: []int32{0}, Val: []float64{1}}, Label: 1}
	if Step(m, s, 0.1, 0) {
		t.Fatal("sample far outside margin reported active")
	}
	if m[0] != 10 {
		t.Fatalf("inactive step with zero lambda changed model: %v", m)
	}
}

func TestStepRegularizationShrinks(t *testing.T) {
	m := VecModel{10, 10}
	s := Sample{X: SparseVec{Idx: []int32{0}, Val: []float64{1}}, Label: 1}
	Step(m, s, 0.1, 1.0)
	if m[0] >= 10 {
		t.Fatalf("lambda shrinkage missing: %v", m)
	}
	if m[1] != 10 {
		t.Fatalf("untouched coordinate regularized: %v", m)
	}
}

func TestStepEmptySample(t *testing.T) {
	m := VecModel{1}
	if Step(m, Sample{Label: 1}, 0.1, 0.1) {
		t.Fatal("empty sample reported active")
	}
}

func TestAccuracy(t *testing.T) {
	m := VecModel{1, -1}
	samples := []Sample{
		{X: SparseVec{Idx: []int32{0}, Val: []float64{1}}, Label: 1},  // pred +1 ok
		{X: SparseVec{Idx: []int32{1}, Val: []float64{1}}, Label: -1}, // pred -1 ok
		{X: SparseVec{Idx: []int32{0}, Val: []float64{-1}}, Label: 1}, // pred -1 wrong
		{X: SparseVec{Idx: []int32{0}, Val: []float64{2}}, Label: -1}, // pred +1 wrong
	}
	if got := Accuracy(m, samples); got != 0.5 {
		t.Fatalf("Accuracy = %v", got)
	}
	if Accuracy(m, nil) != 0 {
		t.Fatal("Accuracy of empty set nonzero")
	}
}

func TestHingeLoss(t *testing.T) {
	m := VecModel{0, 0}
	samples := []Sample{{X: SparseVec{Idx: []int32{0}, Val: []float64{1}}, Label: 1}}
	if got := HingeLoss(m, samples, 0, 2); got != 1 {
		t.Fatalf("zero-model hinge loss = %v, want 1", got)
	}
	m = VecModel{3, 4}
	if got := HingeLoss(m, nil, 2, 2); got != 25 {
		t.Fatalf("pure L2 loss = %v, want 25", got)
	}
}

func TestSGDDecreasesLoss(t *testing.T) {
	train, _ := Generate(GenSpec{Train: 500, Test: 0, Features: 20, Density: 1, Noise: 0, Seed: 1})
	m := make(VecModel, 20)
	before := HingeLoss(m, train, 1e-4, 20)
	gamma := 0.05
	for epoch := 0; epoch < 10; epoch++ {
		for _, s := range train {
			Step(m, s, gamma, 1e-4)
		}
		gamma *= 0.8
	}
	after := HingeLoss(m, train, 1e-4, 20)
	if after >= before/2 {
		t.Fatalf("SGD barely reduced loss: %v -> %v", before, after)
	}
	if acc := Accuracy(m, train); acc < 0.9 {
		t.Fatalf("train accuracy %v after 10 epochs on clean data", acc)
	}
}

func TestGenerateShapes(t *testing.T) {
	train, test := Generate(GenSpec{Train: 100, Test: 40, Features: 50, Density: 0.2, Noise: 0, Seed: 3})
	if len(train) != 100 || len(test) != 40 {
		t.Fatalf("sizes = (%d, %d)", len(train), len(test))
	}
	for _, s := range train {
		if s.Label != 1 && s.Label != -1 {
			t.Fatalf("label %v", s.Label)
		}
		if s.X.NNZ() != 10 {
			t.Fatalf("nnz = %d, want 10", s.X.NNZ())
		}
		norm := 0.0
		for k, i := range s.X.Idx {
			if i < 0 || i >= 50 {
				t.Fatalf("index %d out of range", i)
			}
			if k > 0 && s.X.Idx[k-1] >= i {
				t.Fatalf("indices not strictly increasing: %v", s.X.Idx)
			}
			norm += s.X.Val[k] * s.X.Val[k]
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("sample not unit norm: %v", norm)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(GenSpec{Train: 10, Features: 8, Density: 1, Seed: 7})
	b, _ := Generate(GenSpec{Train: 10, Features: 8, Density: 1, Seed: 7})
	for i := range a {
		if a[i].Label != b[i].Label || a[i].X.Val[0] != b[i].X.Val[0] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateLearnable(t *testing.T) {
	// A model trained on the synthetic data must beat chance on held-out
	// test data — the generator encodes a real hyperplane.
	train, test := Generate(GenSpec{Train: 2000, Test: 500, Features: 30, Density: 1, Noise: 0.05, Seed: 11})
	m := make(VecModel, 30)
	gamma := 0.05
	for epoch := 0; epoch < 15; epoch++ {
		for _, s := range train {
			Step(m, s, gamma, 1e-5)
		}
		gamma *= 0.8
	}
	if acc := Accuracy(m, test); acc < 0.85 {
		t.Fatalf("test accuracy %v, want > 0.85", acc)
	}
}

func TestShuffleDeterministicPermutation(t *testing.T) {
	mk := func() []Sample {
		s := make([]Sample, 100)
		for i := range s {
			s[i].Label = float64(i)
		}
		return s
	}
	a, b := mk(), mk()
	Shuffle(a, 5)
	Shuffle(b, 5)
	moved := false
	seen := map[float64]bool{}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("Shuffle not deterministic")
		}
		if a[i].Label != float64(i) {
			moved = true
		}
		seen[a[i].Label] = true
	}
	if !moved {
		t.Fatal("Shuffle was identity")
	}
	if len(seen) != 100 {
		t.Fatal("Shuffle lost samples")
	}
}

func TestSparseIndicesSortedProperty(t *testing.T) {
	f := func(seed int64, featRaw, nnzRaw uint8) bool {
		features := int(featRaw%200) + 2
		density := float64(nnzRaw%100+1) / 100
		train, _ := Generate(GenSpec{Train: 3, Features: features, Density: density, Seed: seed})
		for _, s := range train {
			for k := 1; k < len(s.X.Idx); k++ {
				if s.X.Idx[k-1] >= s.X.Idx[k] {
					return false
				}
			}
			if s.X.NNZ() > features {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSGDDatasetCatalog(t *testing.T) {
	if len(SGDDatasets) != 5 {
		t.Fatalf("catalog has %d datasets, want 5 (Table 2)", len(SGDDatasets))
	}
	for _, want := range []string{"rcv1", "susy", "epsilon", "news20", "covtype"} {
		d, err := SGDByName(want)
		if err != nil {
			t.Fatal(err)
		}
		if d.PaperTrain <= 0 || d.PaperFeatures <= 0 || d.Density <= 0 || d.Density > 1 {
			t.Errorf("%s: bad catalog row %+v", want, d)
		}
	}
	if _, err := SGDByName("mnist"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDatasetGenerateScaled(t *testing.T) {
	d, _ := SGDByName("covtype")
	train, test, features := d.Generate(1000)
	if len(train) < 256 || len(test) < 64 {
		t.Fatalf("scaled sizes too small: %d/%d", len(train), len(test))
	}
	if features < 8 {
		t.Fatalf("features = %d", features)
	}
	for _, s := range train[:10] {
		for _, i := range s.X.Idx {
			if int(i) >= features {
				t.Fatalf("feature index %d >= %d", i, features)
			}
		}
	}
}

package svm

import "fmt"

// Dataset couples the paper's LIBSVM dataset shapes (Table 2) with
// generators producing synthetic stand-ins at a configurable fraction of
// the original size. Density figures approximate the published nonzero
// ratios of the original datasets; they drive the same cache behaviour the
// paper's micro-architectural analysis depends on (few features that fit
// in cache: covtype/susy; many features that do not: rcv1/news20).
type Dataset struct {
	Name string
	// Paper sizes from Table 2.
	PaperTrain    int64
	PaperTest     int64
	PaperFeatures int64
	// Density is the approximate nonzero fraction per sample.
	Density float64
	// Defaults for training, matching the paper's SGD setup (Section 7.3).
	Lambda float64
}

// SGDDatasets is the catalog in the paper's order.
var SGDDatasets = []Dataset{
	{Name: "rcv1", PaperTrain: 677399, PaperTest: 20242, PaperFeatures: 47236, Density: 0.0016, Lambda: 1e-5},
	{Name: "susy", PaperTrain: 4500000, PaperTest: 500000, PaperFeatures: 18, Density: 1, Lambda: 1e-5},
	{Name: "epsilon", PaperTrain: 400000, PaperTest: 100000, PaperFeatures: 2000, Density: 1, Lambda: 1e-5},
	{Name: "news20", PaperTrain: 16000, PaperTest: 3996, PaperFeatures: 1355191, Density: 0.00034, Lambda: 1e-5},
	{Name: "covtype", PaperTrain: 464810, PaperTest: 116202, PaperFeatures: 54, Density: 0.81, Lambda: 1e-5},
}

// SGDByName returns the catalog entry with the given name.
func SGDByName(name string) (Dataset, error) {
	for _, d := range SGDDatasets {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("svm: unknown dataset %q", name)
}

// Generate builds a scaled stand-in: sample counts shrink by scaleDiv
// (min 256 train / 64 test); the feature space shrinks by the square root
// of scaleDiv so sparse datasets keep many more features than samples per
// core, preserving their cache-unfriendliness relative to the dense ones.
func (d Dataset) Generate(scaleDiv int) (train, test []Sample, features int) {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	nTrain := int(d.PaperTrain / int64(scaleDiv))
	if nTrain < 256 {
		nTrain = 256
	}
	nTest := int(d.PaperTest / int64(scaleDiv))
	if nTest < 64 {
		nTest = 64
	}
	features = int(d.PaperFeatures)
	if scaleDiv > 1 {
		features = int(d.PaperFeatures / int64(isqrt(scaleDiv)))
	}
	if features < 8 {
		features = 8
	}
	spec := GenSpec{
		Train:    nTrain,
		Test:     nTest,
		Features: features,
		Density:  d.Density,
		Noise:    0.05,
		Seed:     int64(len(d.Name))*1e6 + d.PaperFeatures,
	}
	train, test = Generate(spec)
	return train, test, features
}

func isqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

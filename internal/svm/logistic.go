package svm

import "math"

// Logistic regression on the same sparse substrate: the paper's SGD
// machinery is algorithm-agnostic (any per-sample gradient works with the
// iterative-transaction mapping of Section 6.2), and logistic loss is the
// other classic binary-classification objective. Labels are ±1.

// LogisticStep performs one SGD step on L2-regularized logistic loss
//
//	min_w  λ/2 ||w||² + Σ log(1 + exp(−y ⟨w, x⟩))
//
// touching only the sample's nonzero coordinates (diagonal regularization
// scaling like Step). It returns the sample's pre-update probability of
// the positive class.
func LogisticStep(m Model, s Sample, gamma, lambda float64) float64 {
	z := Dot(m, s.X)
	p := 1 / (1 + math.Exp(-z))
	// dLoss/dz for label y∈{+1,-1}: σ(z) - 1{y=+1}.
	target := 0.0
	if s.Label > 0 {
		target = 1
	}
	g := p - target
	nnz := float64(s.X.NNZ())
	if nnz == 0 {
		return p
	}
	shrink := gamma * lambda / nnz
	for k, i := range s.X.Idx {
		m.Add(i, -gamma*g*s.X.Val[k]-shrink*m.Get(i))
	}
	return p
}

// LogisticLoss returns the regularized negative log-likelihood.
func LogisticLoss(m Model, samples []Sample, lambda float64, features int) float64 {
	loss := 0.0
	for _, s := range samples {
		z := s.Label * Dot(m, s.X)
		// log(1+exp(-z)), stable for large |z|.
		if z > 0 {
			loss += math.Log1p(math.Exp(-z))
		} else {
			loss += -z + math.Log1p(math.Exp(z))
		}
	}
	reg := 0.0
	for i := 0; i < features; i++ {
		w := m.Get(int32(i))
		reg += w * w
	}
	return loss + lambda/2*reg
}

package svm

import (
	"math"
	"testing"
)

func TestLogisticStepDirection(t *testing.T) {
	m := make(VecModel, 2)
	s := Sample{X: SparseVec{Idx: []int32{0, 1}, Val: []float64{1, 1}}, Label: 1}
	p := LogisticStep(m, s, 0.5, 0)
	if p != 0.5 {
		t.Fatalf("zero-model probability = %v, want 0.5", p)
	}
	if m[0] <= 0 || m[1] <= 0 {
		t.Fatalf("update direction wrong: %v", m)
	}
	// Negative label pushes the other way.
	m2 := make(VecModel, 2)
	LogisticStep(m2, Sample{X: s.X, Label: -1}, 0.5, 0)
	if m2[0] >= 0 {
		t.Fatalf("negative-label update direction wrong: %v", m2)
	}
}

func TestLogisticStepEmptySample(t *testing.T) {
	m := VecModel{3}
	if p := LogisticStep(m, Sample{Label: 1}, 0.1, 0.5); p != 0.5 {
		t.Fatalf("empty sample p = %v", p)
	}
	if m[0] != 3 {
		t.Fatal("empty sample moved the model")
	}
}

func TestLogisticLossStable(t *testing.T) {
	m := VecModel{100}
	sPos := Sample{X: SparseVec{Idx: []int32{0}, Val: []float64{1}}, Label: 1}
	sNeg := Sample{X: SparseVec{Idx: []int32{0}, Val: []float64{1}}, Label: -1}
	lossPos := LogisticLoss(m, []Sample{sPos}, 0, 1)
	lossNeg := LogisticLoss(m, []Sample{sNeg}, 0, 1)
	if math.IsInf(lossPos, 0) || math.IsNaN(lossPos) || lossPos > 1e-10 {
		t.Fatalf("confident correct loss = %v", lossPos)
	}
	if math.IsInf(lossNeg, 0) || math.IsNaN(lossNeg) {
		t.Fatalf("confident wrong loss overflowed: %v", lossNeg)
	}
	if lossNeg < 99 {
		t.Fatalf("confident wrong loss = %v, want ~100", lossNeg)
	}
	// L2 term.
	if got := LogisticLoss(VecModel{3}, nil, 2, 1); got != 9 {
		t.Fatalf("pure L2 = %v", got)
	}
}

func TestLogisticRegressionLearns(t *testing.T) {
	train, test := Generate(GenSpec{Train: 3000, Test: 600, Features: 25, Density: 1, Noise: 0.05, Seed: 31})
	m := make(VecModel, 25)
	before := LogisticLoss(m, train, 1e-5, 25)
	gamma := 0.5
	for epoch := 0; epoch < 12; epoch++ {
		for _, s := range train {
			LogisticStep(m, s, gamma, 1e-5)
		}
		gamma *= 0.8
	}
	after := LogisticLoss(m, train, 1e-5, 25)
	if after >= before/2 {
		t.Fatalf("logistic loss barely moved: %v -> %v", before, after)
	}
	if acc := Accuracy(m, test); acc < 0.85 {
		t.Fatalf("test accuracy = %v", acc)
	}
}

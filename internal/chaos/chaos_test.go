package chaos

import (
	"sync"
	"testing"
)

// Same seed, same per-worker call sequence → identical fault decisions,
// regardless of how calls from different workers interleave.
func TestSeededIsDeterministicPerWorkerStream(t *testing.T) {
	cfg := DefaultConfig()
	record := func(shuffle bool) [][]Fault {
		inj := NewSeeded(42, 4, cfg)
		out := make([][]Fault, 4)
		if !shuffle {
			for w := 0; w < 4; w++ {
				for i := 0; i < 200; i++ {
					out[w] = append(out[w], inj.Perturb(Point(i%int(numPoints)), w))
				}
			}
			return out
		}
		// Same per-worker call sequences, driven concurrently.
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				seq := make([]Fault, 0, 200)
				for i := 0; i < 200; i++ {
					seq = append(seq, inj.Perturb(Point(i%int(numPoints)), w))
				}
				mu.Lock()
				out[w] = seq
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		return out
	}
	a, b := record(false), record(true)
	for w := range a {
		for i := range a[w] {
			if a[w][i] != b[w][i] {
				t.Fatalf("worker %d call %d: %v (sequential) vs %v (concurrent)", w, i, a[w][i], b[w][i])
			}
		}
	}
}

func TestSeededDifferentSeedsDiffer(t *testing.T) {
	a := NewSeeded(1, 1, DefaultConfig())
	b := NewSeeded(2, 1, DefaultConfig())
	same := true
	for i := 0; i < 500 && same; i++ {
		p := Point(i % int(numPoints))
		if a.Perturb(p, 0) != b.Perturb(p, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 500-fault sequences")
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	inj := NewSeeded(7, 2, Config{})
	for i := 0; i < 1000; i++ {
		if f := inj.Perturb(Point(i%int(numPoints)), i%2); f != None {
			t.Fatalf("zero config injected %v", f)
		}
	}
	if inj.Faults() != 0 {
		t.Fatalf("Faults() = %d, want 0", inj.Faults())
	}
}

func TestCancelAfterFiresExactlyOnce(t *testing.T) {
	inj := NewSeeded(3, 2, Config{CancelAfter: 5})
	cancels := 0
	for i := 0; i < 100; i++ {
		if inj.Perturb(BatchStart, i%2) == CancelJob {
			cancels++
			if i != 4 {
				t.Fatalf("CancelJob at call %d, want call 4", i)
			}
		}
	}
	if cancels != 1 {
		t.Fatalf("CancelJob fired %d times, want 1", cancels)
	}
}

func TestBreakStalenessEmitsAtInstallOnly(t *testing.T) {
	inj := NewSeeded(9, 1, Config{BreakStaleness: true})
	for i := 0; i < 50; i++ {
		if f := inj.Perturb(Install, 0); f != OmitStalenessCheck {
			t.Fatalf("Install point returned %v, want OmitStalenessCheck", f)
		}
		if f := inj.Perturb(Validate, 0); f == OmitStalenessCheck {
			t.Fatal("OmitStalenessCheck leaked to a non-Install point")
		}
	}
}

func TestRollbackStormProbability(t *testing.T) {
	inj := NewSeeded(11, 1, Config{RollbackProb: 0.5})
	storms := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if inj.Perturb(Validate, 0) == ForceRollback {
			storms++
		}
	}
	if storms < n/3 || storms > 2*n/3 {
		t.Fatalf("rollback storm rate %d/%d far from configured 0.5", storms, n)
	}
	if inj.Faults() != uint64(storms) {
		t.Fatalf("Faults() = %d, want %d", inj.Faults(), storms)
	}
}

func TestOutOfRangeWorkerClamped(t *testing.T) {
	inj := NewSeeded(13, 2, DefaultConfig())
	// Must not panic; clamps onto stream 0.
	inj.Perturb(BatchStart, -1)
	inj.Perturb(Validate, 99)
}

package chaos

import (
	"errors"
	"sync/atomic"
)

// ErrCrashed is the error every durability path reports once a simulated
// crash fires: the "process" is considered dead from that instant, so the
// commit in flight is never acknowledged and nothing further reaches disk.
var ErrCrashed = errors.New("chaos: simulated crash")

// CrashPoint identifies where in the commit/checkpoint pipeline a simulated
// crash (kill-point) fires. Unlike Point faults, a crash is terminal: the
// kernel's durable state is frozen exactly as it was at the kill instant and
// the in-memory state is discarded, which is what the recovery harness
// (internal/crashsim) then recovers from.
type CrashPoint uint8

const (
	// CrashNone: no kill-point armed; the trial runs and shuts down cleanly.
	CrashNone CrashPoint = iota
	// CrashBeforePrepare: die before the commit protocol starts — no shard
	// prepared, nothing published, nothing logged.
	CrashBeforePrepare
	// CrashAfterPrepare: die with every shard prepared (commit locks held)
	// but no commit published. Recovery must observe the pre-commit state.
	CrashAfterPrepare
	// CrashBetweenShardCommits: die inside the 2PC window — some shards have
	// published the coordinated timestamp, others are still only prepared.
	// The WAL commit record was never written, so recovery must roll the
	// whole uber-commit back to absent.
	CrashBetweenShardCommits
	// CrashMidWALAppend: die halfway through writing the WAL frame — a torn
	// tail the recovery reader must truncate, leaving the commit absent.
	CrashMidWALAppend
	// CrashAfterWALAppend: die after the WAL frame is durable but before the
	// commit is acknowledged to the caller. Recovery may legitimately
	// resurface the commit (durable-but-unacknowledged); the atomicity
	// contract only requires all-or-nothing.
	CrashAfterWALAppend
	// CrashMidCheckpoint: die halfway through writing a checkpoint file.
	// Recovery must skip the torn checkpoint and fall back to the previous
	// valid one plus a longer WAL tail.
	CrashMidCheckpoint

	numCrashPoints
)

func (p CrashPoint) String() string {
	switch p {
	case CrashNone:
		return "none"
	case CrashBeforePrepare:
		return "before-prepare"
	case CrashAfterPrepare:
		return "after-prepare"
	case CrashBetweenShardCommits:
		return "between-shard-commits"
	case CrashMidWALAppend:
		return "mid-wal-append"
	case CrashAfterWALAppend:
		return "after-wal-append"
	case CrashMidCheckpoint:
		return "mid-checkpoint"
	default:
		return "crash(?)"
	}
}

// CrashPoints lists every real kill-point (CrashNone excluded), for sweep
// matrices.
func CrashPoints() []CrashPoint {
	out := make([]CrashPoint, 0, numCrashPoints-1)
	for p := CrashBeforePrepare; p < numCrashPoints; p++ {
		out = append(out, p)
	}
	return out
}

// Killer arms exactly one kill-point and fires it exactly once. Call sites
// ask At(point); the first call matching the armed point returns true and
// every later call returns false, so a trial dies at one well-defined
// instant. A nil Killer never fires, which is the production configuration —
// the checks cost one nil test per site.
type Killer struct {
	point CrashPoint
	fired atomic.Bool
}

// NewKiller arms a killer at the given point. NewKiller(CrashNone) returns a
// killer that never fires.
func NewKiller(p CrashPoint) *Killer { return &Killer{point: p} }

// At reports whether the armed kill-point is p, firing at most once. Nil-safe.
func (k *Killer) At(p CrashPoint) bool {
	if k == nil || k.point == CrashNone || k.point != p {
		return false
	}
	return k.fired.CompareAndSwap(false, true)
}

// Fired reports whether the killer has gone off.
func (k *Killer) Fired() bool { return k != nil && k.fired.Load() }

// Point returns the armed kill-point.
func (k *Killer) Point() CrashPoint {
	if k == nil {
		return CrashNone
	}
	return k.point
}

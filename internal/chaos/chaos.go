// Package chaos is the kernel's fault-injection layer. It defines a small
// Injector interface the execution engine (internal/exec), the iterative
// transaction contexts (internal/itx), and the storage layer consult at
// well-known scheduling points, plus a seeded, deterministic implementation
// (Seeded) whose fault decisions are a pure function of (seed, worker,
// point, call index). Production runs pass a nil Injector and pay a single
// pointer nil-check per site; chaos runs replay any failing schedule by
// re-running with the same seed.
//
// The injector never changes the semantics the engine promises — it only
// explores schedules the engine must already tolerate: worker stalls and
// preemptions, delays between a sub-transaction's validation and its
// install, forced ROLLBACK storms, steal/recirculation perturbation, and
// job cancellation mid-batch. The one deliberate exception is
// OmitStalenessCheck, a contract breaker emitted only when
// Config.BreakStaleness is set: internal/check's tests use it to prove the
// invariant checker actually catches a broken staleness bound.
package chaos

import (
	"sync/atomic"
	"time"
)

// Point identifies where in the engine a fault decision is being made.
type Point uint8

const (
	// BatchStart: a worker popped a batch and is about to process it.
	BatchStart Point = iota
	// Validate: a sub-transaction's verdict was computed but not yet
	// finalized — faults here widen the read-to-commit window.
	Validate
	// Install: inside Finalize, between staleness validation and the
	// write install.
	Install
	// Steal: a worker is about to steal from another region's queue.
	Steal
	// Recirculate: a still-live batch is about to be re-enqueued.
	Recirculate

	numPoints
)

func (p Point) String() string {
	switch p {
	case BatchStart:
		return "batch-start"
	case Validate:
		return "validate"
	case Install:
		return "install"
	case Steal:
		return "steal"
	case Recirculate:
		return "recirculate"
	default:
		return "point(?)"
	}
}

// Fault is the perturbation an injection site must apply; None means run
// undisturbed.
type Fault uint8

const (
	// None: no fault; proceed normally.
	None Fault = iota
	// Stall: sleep for StallDuration before proceeding.
	Stall
	// Preempt: yield the processor (runtime.Gosched) before proceeding.
	Preempt
	// ForceRollback: override the sub-transaction's verdict with Rollback,
	// forcing the iteration to repeat.
	ForceRollback
	// SkipSteal: pretend the victim region's queue was empty.
	SkipSteal
	// CancelJob: cancel the owning job mid-batch.
	CancelJob
	// OmitStalenessCheck: skip bounded-staleness validation and commit
	// anyway. This breaks the isolation contract on purpose; it exists only
	// so internal/check can prove its checker catches real violations.
	OmitStalenessCheck
)

func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Stall:
		return "stall"
	case Preempt:
		return "preempt"
	case ForceRollback:
		return "force-rollback"
	case SkipSteal:
		return "skip-steal"
	case CancelJob:
		return "cancel-job"
	case OmitStalenessCheck:
		return "omit-staleness-check"
	default:
		return "fault(?)"
	}
}

// StallDuration is how long injection sites sleep on a Stall fault — long
// enough to reorder schedules, short enough that chaos sweeps stay fast.
const StallDuration = 25 * time.Microsecond

// Injector decides, at each injection point, which fault (if any) the call
// site must apply. Implementations are called concurrently from every
// worker and must be safe for concurrent use. A nil Injector disables
// injection entirely.
type Injector interface {
	Perturb(p Point, worker int) Fault
}

// Config sets the per-point fault probabilities of a Seeded injector. All
// probabilities are in [0, 1]; the zero Config injects nothing.
type Config struct {
	// StallProb is the probability of a Stall at BatchStart, Validate,
	// Install, and Recirculate points.
	StallProb float64
	// PreemptProb is the probability of a Preempt at BatchStart and
	// Recirculate points.
	PreemptProb float64
	// RollbackProb is the probability of a ForceRollback at Validate
	// points — the forced-ROLLBACK storm knob.
	RollbackProb float64
	// SkipStealProb is the probability of a SkipSteal at Steal points.
	SkipStealProb float64
	// CancelAfter, when nonzero, emits exactly one CancelJob fault at the
	// Nth BatchStart point observed across all workers.
	CancelAfter uint64
	// BreakStaleness makes every Install point return OmitStalenessCheck,
	// deliberately breaking the bounded-staleness contract. Test-only: it
	// exists to verify the invariant checker catches violations.
	BreakStaleness bool
}

// DefaultConfig returns a moderately hostile configuration: frequent small
// stalls and preemptions, a rollback storm, and steal perturbation, but no
// cancellation and no contract breaking.
func DefaultConfig() Config {
	return Config{
		StallProb:     0.10,
		PreemptProb:   0.15,
		RollbackProb:  0.20,
		SkipStealProb: 0.25,
	}
}

// stream is one worker's call counter, padded so concurrent workers never
// share a cache line.
type stream struct {
	n atomic.Uint64
	_ [120]byte
}

// Seeded is a deterministic Injector: the fault at a site is a pure
// function of (seed, worker, point, per-worker call index), so a failing
// schedule is replayable from its seed alone — worker interleaving changes
// which decision lands where in wall-clock time, but never the decision
// sequence each worker observes.
type Seeded struct {
	seed    uint64
	cfg     Config
	streams []stream
	starts  atomic.Uint64 // BatchStart points seen, for CancelAfter
	faults  atomic.Uint64 // non-None decisions handed out
}

// NewSeeded builds a deterministic injector for a pool of `workers`
// workers. Out-of-range worker ids are clamped onto stream 0.
func NewSeeded(seed int64, workers int, cfg Config) *Seeded {
	if workers < 1 {
		workers = 1
	}
	return &Seeded{seed: uint64(seed), cfg: cfg, streams: make([]stream, workers)}
}

// Seed returns the injector's seed, for replay bookkeeping.
func (s *Seeded) Seed() int64 { return int64(s.seed) }

// Faults returns how many non-None faults the injector has handed out.
func (s *Seeded) Faults() uint64 { return s.faults.Load() }

// Perturb implements Injector.
func (s *Seeded) Perturb(p Point, worker int) Fault {
	f := s.decide(p, worker)
	if f != None {
		s.faults.Add(1)
	}
	return f
}

func (s *Seeded) decide(p Point, worker int) Fault {
	if worker < 0 || worker >= len(s.streams) {
		worker = 0
	}
	if p == BatchStart && s.cfg.CancelAfter > 0 && s.starts.Add(1) == s.cfg.CancelAfter {
		return CancelJob
	}
	n := s.streams[worker].n.Add(1)
	u := uniform(s.seed, uint64(worker), uint64(p), n)
	switch p {
	case BatchStart:
		if u < s.cfg.StallProb {
			return Stall
		}
		if u < s.cfg.StallProb+s.cfg.PreemptProb {
			return Preempt
		}
	case Validate:
		if u < s.cfg.RollbackProb {
			return ForceRollback
		}
		if u < s.cfg.RollbackProb+s.cfg.StallProb {
			return Stall
		}
	case Install:
		if s.cfg.BreakStaleness {
			return OmitStalenessCheck
		}
		if u < s.cfg.StallProb {
			return Stall
		}
	case Steal:
		if u < s.cfg.SkipStealProb {
			return SkipSteal
		}
	case Recirculate:
		if u < s.cfg.PreemptProb {
			return Preempt
		}
		if u < s.cfg.PreemptProb+s.cfg.StallProb {
			return Stall
		}
	}
	return None
}

// uniform hashes (seed, worker, point, n) into [0, 1) with splitmix64.
func uniform(seed, worker, point, n uint64) float64 {
	x := seed ^ worker*0x9e3779b97f4a7c15 ^ point<<56 ^ n*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/obs"
	"db4ml/internal/trace"
)

// Options configures a Log.
type Options struct {
	// Dir is the log directory; created if absent.
	Dir string
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the SyncInterval fsync period (default 2ms).
	Interval time.Duration
	// SegmentBytes is the segment roll threshold (default 8 MiB).
	SegmentBytes int64
	// Observer, when non-nil, receives wal_appends/wal_bytes/wal_fsyncs
	// counters, wal_append/wal_fsync latency samples, and the
	// wal_batch_records group-commit size distribution (all charged to
	// worker 0 — WAL work is log-level, not worker-level).
	Observer *obs.Observer
	// Tracer, when non-nil, receives a KindWAL span per group-commit batch
	// flush (Arg = batch size, Job = the batch's first traced record's
	// correlation id) and a KindFsync span per fsync.
	Tracer *trace.Tracer
	// Killer, when non-nil, arms the mid-append / after-append kill-points
	// inside the appender.
	Killer *chaos.Killer
}

type appendReq struct {
	rec     *Record
	err     error
	done    chan struct{}
	settled bool // appender-only: done already closed
}

// Log is the append side of the WAL: a single appender goroutine drains a
// request channel in batches, writes one buffer per batch, fsyncs per
// policy, and acknowledges each request. Append is safe for concurrent use.
type Log struct {
	opts    Options
	nextLSN atomic.Uint64

	mu      sync.RWMutex // guards closed against in-flight Append senders
	closed  bool
	senders sync.WaitGroup

	ch     chan *appendReq
	doneCh chan struct{} // appender exited

	frozen atomic.Bool  // simulated crash: nothing more reaches disk
	broken atomic.Value // sticky I/O error (error)

	// Appender-owned state.
	f        *os.File
	segBytes int64
	lastSync time.Time
}

// Open opens (or creates) the log in o.Dir for appending: it scans existing
// segments to find the next LSN, truncates a torn tail so the last segment
// is append-clean, and starts the group-commit appender. Call Close to
// flush and stop it.
func Open(o Options) (*Log, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.Interval <= 0 {
		o.Interval = defaultSyncInterval
	}

	scan, err := scanDir(o.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		opts:   o,
		ch:     make(chan *appendReq, 256),
		doneCh: make(chan struct{}),
	}
	l.nextLSN.Store(scan.nextLSN)

	// Drop segments that start beyond the first tear — they hold only
	// unreachable post-tear history (e.g. a roll raced the crash) and their
	// header LSNs no longer line up with what the appender will write next.
	live := scan.segs[:0]
	for _, seg := range scan.segs {
		if seg.firstLSN > scan.nextLSN {
			if err := os.Remove(filepath.Join(o.Dir, seg.name)); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			continue
		}
		live = append(live, seg)
	}
	if len(live) == 0 {
		if err := l.newSegment(scan.nextLSN); err != nil {
			return nil, err
		}
	} else {
		// Truncate every surviving segment to its valid bytes (a no-op for
		// clean ones) so no torn garbage outlives recovery anywhere.
		for _, seg := range live[:len(live)-1] {
			if err := os.Truncate(filepath.Join(o.Dir, seg.name), seg.goodBytes); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
		}
		last := live[len(live)-1]
		// Truncate the torn tail (a no-op when the segment ends cleanly) and
		// position for append.
		f, err := os.OpenFile(filepath.Join(o.Dir, last.name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err := f.Truncate(last.goodBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if _, err := f.Seek(last.goodBytes, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
		l.segBytes = last.goodBytes
	}
	go l.appender()
	return l, nil
}

// newSegment creates and opens the segment starting at firstLSN.
// Appender-side (or pre-appender) only.
func (l *Log) newSegment(firstLSN uint64) error {
	if l.f != nil {
		if l.opts.Policy != SyncNone {
			l.syncFile()
		}
		l.f.Close()
	}
	path := filepath.Join(l.opts.Dir, segName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segHeader(firstLSN)); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	syncDir(l.opts.Dir)
	l.f = f
	l.segBytes = segHeaderLen
	return nil
}

func (l *Log) syncFile() {
	start := time.Now()
	at := l.opts.Tracer.Now()
	if err := l.f.Sync(); err != nil {
		l.broken.Store(err)
		return
	}
	l.lastSync = time.Now()
	if o := l.opts.Observer; o != nil {
		o.Inc(0, obs.WALFsyncs)
		o.RecordLatency(0, obs.WALFsyncLatency, l.lastSync.Sub(start).Nanoseconds())
	}
	l.opts.Tracer.Span(0, trace.KindFsync, 0, 0, at, l.opts.Tracer.Now()-at)
}

func (l *Log) err() error {
	if l.frozen.Load() {
		return chaos.ErrCrashed
	}
	if e, _ := l.broken.Load().(error); e != nil {
		return e
	}
	return nil
}

// NextLSN returns the LSN the next appended record will receive. The fuzzy
// checkpointer captures it (after rolling the segment, before pinning its
// snapshot) as the replay lower bound the checkpoint covers.
func (l *Log) NextLSN() uint64 { return l.nextLSN.Load() }

// Append assigns the record an LSN, writes it through the group-commit
// batcher, and returns once the append is acknowledged under the sync
// policy. The record's LSN field is set on success.
func (l *Log) Append(rec *Record) error {
	return l.submit(&appendReq{rec: rec, done: make(chan struct{})})
}

// Roll asks the appender to start a new segment, making the previous one
// eligible for TruncateBelow. It returns once the roll happened.
func (l *Log) Roll() error {
	return l.submit(&appendReq{done: make(chan struct{})}) // nil rec = roll
}

func (l *Log) submit(req *appendReq) error {
	if err := l.err(); err != nil {
		return err
	}
	l.mu.RLock()
	if l.closed {
		l.mu.RUnlock()
		return ErrClosed
	}
	l.senders.Add(1)
	l.mu.RUnlock()
	start := time.Now()
	l.ch <- req
	l.senders.Done()
	<-req.done
	if req.err == nil && req.rec != nil && l.opts.Observer != nil {
		l.opts.Observer.RecordLatency(0, obs.WALAppendLatency, time.Since(start).Nanoseconds())
	}
	return req.err
}

// Freeze simulates the process dying: every in-flight and future append
// fails with chaos.ErrCrashed and nothing more reaches disk. The durable
// state stays exactly as it was at the freeze instant.
func (l *Log) Freeze() { l.frozen.Store(true) }

// Close drains pending appends, flushes, fsyncs (broken/frozen logs skip
// the flush — their durable state is already final), and stops the
// appender. Further Appends return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	l.senders.Wait()
	close(l.ch)
	<-l.doneCh
	return l.err()
}

// appender is the single goroutine that owns the segment file.
func (l *Log) appender() {
	defer close(l.doneCh)
	ticker := time.NewTicker(l.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case req, ok := <-l.ch:
			if !ok {
				if !l.frozen.Load() && l.err() == nil && l.f != nil {
					l.syncFile()
				}
				if l.f != nil {
					l.f.Close()
					l.f = nil
				}
				return
			}
			batch := []*appendReq{req}
		drain:
			for len(batch) < 256 {
				select {
				case r, ok := <-l.ch:
					if !ok {
						// Channel closed mid-drain: process what we have;
						// the next loop iteration handles shutdown.
						break drain
					}
					batch = append(batch, r)
				default:
					break drain
				}
			}
			l.processBatch(batch)
		case <-ticker.C:
			if l.opts.Policy == SyncInterval && l.err() == nil && time.Since(l.lastSync) >= l.opts.Interval {
				l.syncFile()
			}
		}
	}
}

// processBatch writes a batch of records as one buffered write, applies the
// sync policy, and acknowledges every request. Kill-points fire here, inside
// the appender, so a "crash" tears the log at a byte-exact, single-threaded
// point.
func (l *Log) processBatch(batch []*appendReq) {
	batchAt := l.opts.Tracer.Now()
	settleOne := func(r *appendReq, err error) {
		r.settled = true
		r.err = err
		close(r.done)
	}
	// settleRest fails every not-yet-settled request; no error path may
	// leave a request open or its sender blocks forever.
	settleRest := func(err error) {
		for _, r := range batch {
			if !r.settled {
				settleOne(r, err)
			}
		}
	}
	if err := l.err(); err != nil {
		settleRest(err)
		return
	}
	if l.segBytes >= l.opts.SegmentBytes {
		if err := l.newSegment(l.nextLSN.Load()); err != nil {
			l.broken.Store(err)
			settleRest(err)
			return
		}
	}

	var buf []byte
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		err := l.write(buf)
		buf = nil
		return err
	}
	for _, r := range batch {
		if r.rec == nil { // roll request
			if err := flush(); err != nil {
				settleRest(err)
				return
			}
			if err := l.newSegment(l.nextLSN.Load()); err != nil {
				l.broken.Store(err)
				settleRest(err)
				return
			}
			settleOne(r, nil)
			continue
		}
		// Encode before consuming the LSN: a rejected record must not burn
		// one, or replay would see a gap and truncate everything after it.
		r.rec.LSN = l.nextLSN.Load()
		payload, err := encodePayload(r.rec)
		if err != nil {
			settleOne(r, err)
			continue
		}
		l.nextLSN.Add(1)
		frame := encodeFrame(payload)

		if l.opts.Killer.At(chaos.CrashMidWALAppend) {
			// Die halfway through this frame: flush everything before it
			// plus a torn prefix, then freeze. Earlier records in the batch
			// are durable-but-unacknowledged; this one is torn.
			buf = append(buf, frame[:len(frame)/2]...)
			_ = flush()
			l.Freeze()
			settleRest(chaos.ErrCrashed)
			return
		}
		buf = append(buf, frame...)
		if l.opts.Killer.At(chaos.CrashAfterWALAppend) {
			// Die after this frame is durable but before anyone is told:
			// write and fsync everything up to and including it, then
			// freeze. Every request in the batch dies unacknowledged.
			if flush() == nil {
				l.syncFile()
			}
			l.Freeze()
			settleRest(chaos.ErrCrashed)
			return
		}
	}
	if err := flush(); err != nil {
		settleRest(err)
		return
	}
	switch l.opts.Policy {
	case SyncAlways:
		l.syncFile()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.Interval {
			l.syncFile()
		}
	}
	if err := l.err(); err != nil {
		settleRest(err)
		return
	}
	n := 0
	var uid uint64 // correlation id for the batch span: first traced record wins
	for _, r := range batch {
		if !r.settled && r.rec != nil {
			n++
			if uid == 0 {
				uid = r.rec.Trace
			}
		}
	}
	settleRest(nil)
	if n > 0 {
		if o := l.opts.Observer; o != nil {
			o.Add(0, obs.WALAppends, uint64(n))
			// Batch-size distribution: the recorded unit is records per
			// flushed batch, through the same log₂ buckets as the latencies.
			o.RecordLatency(0, obs.WALBatchRecords, int64(n))
		}
		l.opts.Tracer.Span(0, trace.KindWAL, uid, int64(n), batchAt, l.opts.Tracer.Now()-batchAt)
	}
}

func (l *Log) write(b []byte) error {
	n, err := l.f.Write(b)
	if o := l.opts.Observer; o != nil && n > 0 {
		o.Add(0, obs.WALBytes, uint64(n))
	}
	if err != nil {
		l.broken.Store(err)
		return err
	}
	l.segBytes += int64(len(b))
	return nil
}

// TruncateBelow deletes whole segments every record of which has LSN < lsn:
// a segment goes iff its successor exists and starts at or below lsn. The
// active segment has no successor and is never deleted. Safe to call from
// the checkpointer while appends are in flight.
func (l *Log) TruncateBelow(lsn uint64) (removed int, err error) {
	scan, err := listSegments(l.opts.Dir)
	if err != nil {
		return 0, err
	}
	for i := 0; i+1 < len(scan); i++ {
		if scan[i+1].firstLSN <= lsn {
			if rmErr := os.Remove(filepath.Join(l.opts.Dir, scan[i].name)); rmErr != nil {
				return removed, fmt.Errorf("wal: %w", rmErr)
			}
			removed++
		}
	}
	if removed > 0 {
		syncDir(l.opts.Dir)
	}
	return removed, nil
}

// segInfo is one on-disk segment, by header LSN order.
type segInfo struct {
	name     string
	firstLSN uint64
}

// listSegments returns the directory's parseable segments in LSN order.
// Files without a valid header are ignored (never deleted, never read).
func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, ent := range ents {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".seg" {
			continue
		}
		hdr := make([]byte, segHeaderLen)
		f, err := os.Open(filepath.Join(dir, ent.Name()))
		if err != nil {
			continue
		}
		n, _ := f.Read(hdr)
		f.Close()
		if n < segHeaderLen {
			continue
		}
		first, err := parseSegHeader(hdr)
		if err != nil {
			continue
		}
		segs = append(segs, segInfo{name: ent.Name(), firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

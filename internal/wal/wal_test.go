package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"db4ml/internal/chaos"
	"db4ml/internal/storage"
	"db4ml/internal/table"
)

func commitRec(ts storage.Timestamp, tbl string, row uint64, vals ...uint64) *Record {
	return &Record{
		Kind: KindCommit,
		TS:   ts,
		Tables: []TableUpdate{{
			Table: tbl,
			Rows:  []RowUpdate{{Row: row, Payload: storage.Payload(vals)}},
		}},
	}
}

func TestAppendAndReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Kind: KindCreateTable, Table: "m", Cols: []table.Column{
			{Name: "id", Type: table.Int64}, {Name: "w", Type: table.Float64}}},
		{Kind: KindLoad, Table: "m", TS: 1, FirstRow: 0,
			Rows: []storage.Payload{{1, 2}, {3, 4}, {5, 6}}},
		commitRec(2, "m", 1, 7, 8),
		commitRec(3, "m", 0, 9, 10),
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, g := range got {
		if g.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, g.LSN)
		}
		if !reflect.DeepEqual(g, recs[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, g, recs[i])
		}
	}
}

func TestConcurrentAppendsAssignDenseLSNs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Policy: SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	const G, N = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				if err := l.Append(commitRec(storage.Timestamp(g*N+i+1), "t", uint64(g), uint64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != G*N {
		t.Fatalf("replayed %d records, want %d", len(got), G*N)
	}
	for i, g := range got {
		if g.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d: not dense", i, g.LSN)
		}
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	for i := 1; i <= 3; i++ {
		if err := l.Append(commitRec(storage.Timestamp(i), "t", 0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.NextLSN(); got != 4 {
		t.Fatalf("NextLSN after reopen = %d, want 4", got)
	}
	if err := l2.Append(commitRec(4, "t", 0, 4)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	recs, err := Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[3].LSN != 4 {
		t.Fatalf("replay after reopen: %d records", len(recs))
	}
}

func TestTornTailTruncatedNotFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	for i := 1; i <= 5; i++ {
		if err := l.Append(commitRec(storage.Timestamp(i), "t", 0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the tail: chop bytes off the live segment, mid-frame.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := filepath.Join(dir, segs[0].name)
	info, _ := os.Stat(path)
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	recs, err := Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("torn tail: replayed %d records, want 4", len(recs))
	}

	// Reopen truncates the tear and appends cleanly after it.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.NextLSN(); got != 5 {
		t.Fatalf("NextLSN after tear = %d, want 5", got)
	}
	if err := l2.Append(commitRec(9, "t", 0, 99)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	recs, _ = Records(dir)
	if len(recs) != 5 || recs[4].TS != 9 {
		t.Fatalf("replay after reopen-over-tear: %d records", len(recs))
	}
}

func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	for i := 1; i <= 3; i++ {
		if err := l.Append(commitRec(storage.Timestamp(i), "t", 0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0xff // flip a bit in the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("corrupt frame: replayed %d records, want 2", len(recs))
	}
}

func TestRollAndTruncateBelow(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	for i := 1; i <= 3; i++ {
		if err := l.Append(commitRec(storage.Timestamp(i), "t", 0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Roll(); err != nil {
		t.Fatal(err)
	}
	cut := l.NextLSN() // 4: records 1..3 live below the new segment
	for i := 4; i <= 6; i++ {
		if err := l.Append(commitRec(storage.Timestamp(i), "t", 0, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := l.TruncateBelow(cut)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("TruncateBelow removed %d segments, want 1", removed)
	}
	l.Close()
	recs, err := Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].LSN != 4 {
		t.Fatalf("after truncation: %d records, first LSN %v", len(recs), recs)
	}
	// The active segment is never deleted.
	if removed, _ := l.TruncateBelow(1 << 60); removed != 0 {
		t.Fatalf("active segment deleted (%d)", removed)
	}
}

func TestSegmentRollAtSizeThreshold(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir, SegmentBytes: 256})
	for i := 1; i <= 20; i++ {
		if err := l.Append(commitRec(storage.Timestamp(i), "table-with-a-name", 0, uint64(i), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("no roll at size threshold: %d segments", len(segs))
	}
	recs, err := Records(dir)
	if err != nil || len(recs) != 20 {
		t.Fatalf("replay across segments: %d records, %v", len(recs), err)
	}
}

func TestAppendAfterFreezeFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	if err := l.Append(commitRec(1, "t", 0, 1)); err != nil {
		t.Fatal(err)
	}
	l.Freeze()
	if err := l.Append(commitRec(2, "t", 0, 2)); !errors.Is(err, chaos.ErrCrashed) {
		t.Fatalf("append after freeze: %v, want ErrCrashed", err)
	}
	l.Close()
	recs, _ := Records(dir)
	if len(recs) != 1 {
		t.Fatalf("%d records survived the freeze, want 1", len(recs))
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, _ := Open(Options{Dir: t.TempDir()})
	l.Close()
	if err := l.Append(commitRec(1, "t", 0, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestKillPointsProduceRecoverableLogs(t *testing.T) {
	for _, kp := range []chaos.CrashPoint{chaos.CrashMidWALAppend, chaos.CrashAfterWALAppend} {
		t.Run(kp.String(), func(t *testing.T) {
			dir := t.TempDir()
			k := chaos.NewKiller(kp)
			l, _ := Open(Options{Dir: dir, Policy: SyncAlways, Killer: k})
			// First append trips the kill-point.
			err := l.Append(commitRec(1, "t", 0, 1))
			if !errors.Is(err, chaos.ErrCrashed) {
				t.Fatalf("killed append returned %v, want ErrCrashed", err)
			}
			// Everything after is dead too.
			if err := l.Append(commitRec(2, "t", 0, 2)); !errors.Is(err, chaos.ErrCrashed) {
				t.Fatalf("post-crash append returned %v", err)
			}
			l.Close()

			recs, err := Records(dir)
			if err != nil {
				t.Fatal(err)
			}
			switch kp {
			case chaos.CrashMidWALAppend:
				// Torn frame: the record must be absent.
				if len(recs) != 0 {
					t.Fatalf("mid-append kill left %d records", len(recs))
				}
			case chaos.CrashAfterWALAppend:
				// Durable but unacknowledged: the record must be present.
				if len(recs) != 1 {
					t.Fatalf("after-append kill left %d records, want 1", len(recs))
				}
			}
			// A fresh Open over the debris must succeed and append cleanly.
			l2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if err := l2.Append(commitRec(5, "t", 0, 5)); err != nil {
				t.Fatal(err)
			}
			l2.Close()
		})
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(Options{Dir: dir})
	for i := 1; i <= 10; i++ {
		if err := l.Append(commitRec(storage.Timestamp(i), fmt.Sprintf("t%d", i%3), uint64(i%4), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	a, err := Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Records(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two replays of the same log differ")
	}
}

func TestEncodeDecodeAllKinds(t *testing.T) {
	recs := []*Record{
		{Kind: KindCreateTable, LSN: 7, Table: "x", Cols: []table.Column{{Name: "a", Type: table.Int64}}},
		{Kind: KindLoad, LSN: 8, TS: 3, Table: "x", FirstRow: 5, Rows: []storage.Payload{{1}, {2}}},
		{Kind: KindCommit, LSN: 9, TS: 4, Tables: []TableUpdate{
			{Table: "x", Rows: []RowUpdate{{Row: 0, Payload: storage.Payload{42}}}},
			{Table: "y", Rows: []RowUpdate{}},
		}},
	}
	for _, r := range recs {
		b, err := encodePayload(r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodePayload(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
	}
}

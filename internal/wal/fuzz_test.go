package wal

import (
	"os"
	"path/filepath"
	"testing"

	"db4ml/internal/storage"
	"db4ml/internal/table"
)

// FuzzWALReplay feeds arbitrary bytes to the segment scanner as the contents
// of a single WAL segment file. The scanner must never panic, never return a
// record with inconsistent shape (ragged rows), and must be prefix-monotone:
// whatever it decodes from a mutated file is a valid record sequence with
// dense LSNs starting at the segment's first LSN.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real segment containing all three record kinds.
	seedDir := f.TempDir()
	l, err := Open(Options{Dir: seedDir})
	if err != nil {
		f.Fatal(err)
	}
	seeds := []*Record{
		{Kind: KindCreateTable, Table: "t", Cols: []table.Column{
			{Name: "a", Type: table.Int64}, {Name: "b", Type: table.Float64}}},
		{Kind: KindLoad, TS: 1, Table: "t", FirstRow: 0,
			Rows: []storage.Payload{{1, 2}, {3, 4}}},
		{Kind: KindCommit, TS: 2, Tables: []TableUpdate{
			{Table: "t", Rows: []RowUpdate{{Row: 1, Payload: storage.Payload{9, 9}}}}}},
	}
	for _, r := range seeds {
		if err := l.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	l.Close()
	segs, err := listSegments(seedDir)
	if err != nil || len(segs) != 1 {
		f.Fatalf("seed segment: %v %v", segs, err)
	}
	data, err := os.ReadFile(filepath.Join(seedDir, segs[0].name))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte{})
	f.Add([]byte("D4WL"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), raw, 0o644); err != nil {
			t.Skip()
		}
		recs, err := Records(dir)
		if err != nil {
			return // I/O-level errors are fine; panics are not
		}
		want := uint64(1)
		for _, r := range recs {
			if r.LSN != want {
				t.Fatalf("non-dense LSN %d, want %d", r.LSN, want)
			}
			want++
			switch r.Kind {
			case KindCreateTable, KindLoad, KindCommit:
			default:
				t.Fatalf("decoded unknown kind %d", r.Kind)
			}
			for _, row := range r.Rows {
				if len(r.Rows) > 0 && len(row) != len(r.Rows[0]) {
					t.Fatal("ragged load rows survived decode")
				}
			}
			for _, tu := range r.Tables {
				for _, ru := range tu.Rows {
					if len(tu.Rows) > 0 && len(ru.Payload) != len(tu.Rows[0].Payload) {
						t.Fatal("ragged commit rows survived decode")
					}
				}
			}
		}
		// Re-encoding what we decoded must replay to the same records.
		if len(recs) > 0 {
			dir2 := t.TempDir()
			l2, err := Open(Options{Dir: dir2})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				rc := *r
				rc.LSN = 0
				if err := l2.Append(&rc); err != nil {
					t.Fatalf("re-append of decoded record failed: %v", err)
				}
			}
			l2.Close()
			again, err := Records(dir2)
			if err != nil || len(again) != len(recs) {
				t.Fatalf("re-encoded replay: %d records, %v", len(again), err)
			}
		}
	})
}

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// scanResult is everything a directory scan learns: the decodable records in
// LSN order, the next LSN to assign, and where the live segment's valid
// bytes end (the torn-tail truncation point).
type scanResult struct {
	recs    []*Record
	nextLSN uint64
	segs    []segState
}

// segState is one scanned segment: its identity plus how many of its bytes
// decode cleanly.
type segState struct {
	name      string
	firstLSN  uint64
	goodBytes int64
}

// Records reads every valid record under dir in LSN order, stopping at the
// first torn or corrupt frame — the read-only replay view. A missing
// directory yields no records and no error: recovery from an empty state is
// not a failure.
func Records(dir string) ([]*Record, error) {
	scan, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	return scan.recs, nil
}

// scanDir walks the directory's segments in LSN order, decoding frames
// until the first invalid one. Everything from that point on — the rest of
// the segment AND any later segments — is a torn tail: segments are written
// strictly in order, so bytes past the first tear can only exist if a crash
// interleaved with a roll, and replaying them would reorder history.
func scanDir(dir string) (scanResult, error) {
	var res scanResult
	res.nextLSN = 1
	segs, err := listSegments(dir)
	if os.IsNotExist(err) {
		return res, nil
	}
	if err != nil {
		return res, err
	}
	torn := false
	for _, seg := range segs {
		st := segState{name: seg.name, firstLSN: seg.firstLSN, goodBytes: segHeaderLen}
		if torn {
			// A predecessor tore: this whole segment is unreachable tail.
			st.goodBytes = segHeaderLen
			res.segs = append(res.segs, st)
			continue
		}
		if seg.firstLSN != res.nextLSN && len(res.segs) > 0 {
			// LSN gap between segments (e.g. a middle segment vanished):
			// stop replay at the gap rather than reordering history.
			torn = true
			res.segs = append(res.segs, st)
			continue
		}
		if len(res.segs) == 0 {
			// The first (oldest surviving) segment defines where replayable
			// history starts — earlier segments were checkpoint-truncated.
			res.nextLSN = seg.firstLSN
		}
		data, err := os.ReadFile(filepath.Join(dir, seg.name))
		if err != nil {
			return res, fmt.Errorf("wal: %w", err)
		}
		good, recs := decodeFrames(data, res.nextLSN)
		st.goodBytes = good
		res.recs = append(res.recs, recs...)
		res.nextLSN += uint64(len(recs))
		if good < int64(len(data)) {
			torn = true
		}
		res.segs = append(res.segs, st)
	}
	return res, nil
}

// decodeFrames walks one segment's frames, validating structure, CRC, and
// dense LSN assignment. It returns the byte offset through the last valid
// frame and the decoded records; anything after the returned offset is torn.
func decodeFrames(data []byte, wantLSN uint64) (int64, []*Record) {
	if len(data) < segHeaderLen {
		return segHeaderLen, nil
	}
	var recs []*Record
	off := int64(segHeaderLen)
	for {
		rest := data[off:]
		if len(rest) < frameHeadLen {
			return off, recs
		}
		plen := binary.LittleEndian.Uint32(rest[0:])
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen > maxPayloadLen || int(plen) > len(rest)-frameHeadLen {
			return off, recs
		}
		payload := rest[frameHeadLen : frameHeadLen+int(plen)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, recs
		}
		rec, err := decodePayload(payload)
		if err != nil || rec.LSN != wantLSN {
			return off, recs
		}
		recs = append(recs, rec)
		wantLSN++
		off += frameHeadLen + int64(plen)
	}
}

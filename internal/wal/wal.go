// Package wal is the kernel's write-ahead log: an append-only, CRC32C-framed,
// length-prefixed log of logical redo records — table creations, bulk loads,
// and uber-commits (table, row, column versions, commit timestamp) — written
// behind a group-commit batcher with a configurable fsync policy.
//
// Durability ordering: the facade publishes a commit in memory first, then
// appends its WAL record, and acknowledges the caller only after the append
// is acknowledged under the configured policy. A crash between publish and
// append therefore loses an *unacknowledged* commit — exactly the
// "committed-exactly-or-absent" contract the recovery harness
// (internal/crashsim) verifies.
//
// On-disk layout: numbered segment files ("wal-%016x.seg"), each a fixed
// header (magic, version, first LSN) followed by frames of
//
//	[payload length u32][crc32c(payload) u32][payload]
//
// all little-endian. Replay reads segments in LSN order and stops at the
// first torn or corrupt frame; Open physically truncates that tail so the
// log is append-clean again. Log sequence numbers are assigned densely by
// the appender, so a gap or regression is itself corruption.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"db4ml/internal/storage"
	"db4ml/internal/table"
)

// SyncPolicy controls when the group-commit batcher calls fsync.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs once per group-commit batch before acknowledging the
	// batch's appends — every acknowledged commit is on disk. This is still
	// group commit: all appends queued while the previous fsync ran share
	// the next one.
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges after the buffered write and fsyncs at most
	// once per interval — a crash can lose up to one interval of
	// acknowledged commits.
	SyncInterval
	// SyncNone never fsyncs; the OS flushes on its own schedule.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return "policy(?)"
	}
}

// Kind identifies a redo record's type.
type Kind uint8

const (
	// KindCreateTable records a table creation (name + schema).
	KindCreateTable Kind = 1
	// KindLoad records a bulk load: rows appended starting at FirstRow,
	// published at TS.
	KindLoad Kind = 2
	// KindCommit records an uber-commit: the rows each attached table
	// published at TS, as full-row after-images.
	KindCommit Kind = 3
)

// RowUpdate is one row's after-image within a commit record.
type RowUpdate struct {
	Row     uint64
	Payload storage.Payload
}

// TableUpdate is one table's share of a commit record.
type TableUpdate struct {
	Table string
	Rows  []RowUpdate
}

// Record is one logical redo record. Exactly the fields for its Kind are
// meaningful: Table+Cols for KindCreateTable, Table+FirstRow+Rows for
// KindLoad, Tables for KindCommit. LSN is assigned by the appender.
type Record struct {
	Kind Kind
	LSN  uint64
	TS   storage.Timestamp

	// Trace is the appending transaction's correlation id, stamped on the
	// group-commit batch's trace span. In-memory only — never serialized,
	// zero after replay.
	Trace uint64

	Table    string
	Cols     []table.Column
	FirstRow uint64
	Rows     []storage.Payload
	Tables   []TableUpdate
}

var (
	// ErrClosed is returned by Append on a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt marks a frame or record that fails its CRC, length sanity,
	// or structural decode — replay stops at (and Open truncates) the first
	// such frame.
	ErrCorrupt = errors.New("wal: corrupt record")
)

// castagnoli is the CRC32C polynomial table (the iSCSI/ext4 checksum).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Segment header: magic, format version, first LSN of the segment.
var segMagic = [4]byte{'D', '4', 'W', 'L'}

const (
	segVersion    = 1
	segHeaderLen  = 4 + 1 + 8
	frameHeadLen  = 8
	maxPayloadLen = 1 << 28 // 256 MiB: no sane record is bigger
	// maxCount caps every decoded element count before allocation, so a
	// corrupt or fuzzed length prefix cannot demand gigabytes.
	maxCount = 1 << 24
)

// defaultSegmentBytes is the roll threshold for segment files.
const defaultSegmentBytes = 8 << 20

// --- record payload codec ---

type encBuf struct{ b []byte }

func (e *encBuf) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encBuf) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encBuf) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encBuf) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *encBuf) payload(p storage.Payload) {
	for _, w := range p {
		e.u64(w)
	}
}

// encodePayload renders the record body (everything the frame CRC covers).
func encodePayload(r *Record) ([]byte, error) {
	var e encBuf
	e.u8(uint8(r.Kind))
	e.u64(r.LSN)
	e.u64(uint64(r.TS))
	switch r.Kind {
	case KindCreateTable:
		e.str(r.Table)
		e.u32(uint32(len(r.Cols)))
		for _, c := range r.Cols {
			e.str(c.Name)
			e.u8(uint8(c.Type))
		}
	case KindLoad:
		e.str(r.Table)
		e.u64(r.FirstRow)
		width := 0
		if len(r.Rows) > 0 {
			width = len(r.Rows[0])
		}
		e.u32(uint32(width))
		e.u64(uint64(len(r.Rows)))
		for _, row := range r.Rows {
			if len(row) != width {
				return nil, fmt.Errorf("wal: ragged load row (width %d, want %d)", len(row), width)
			}
			e.payload(row)
		}
	case KindCommit:
		e.u32(uint32(len(r.Tables)))
		for _, tu := range r.Tables {
			e.str(tu.Table)
			width := 0
			if len(tu.Rows) > 0 {
				width = len(tu.Rows[0].Payload)
			}
			e.u32(uint32(width))
			e.u64(uint64(len(tu.Rows)))
			for _, ru := range tu.Rows {
				if len(ru.Payload) != width {
					return nil, fmt.Errorf("wal: ragged commit row (width %d, want %d)", len(ru.Payload), width)
				}
				e.u64(ru.Row)
				e.payload(ru.Payload)
			}
		}
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return e.b, nil
}

type decBuf struct {
	b   []byte
	off int
}

func (d *decBuf) remaining() int { return len(d.b) - d.off }

func (d *decBuf) u8() (uint8, error) {
	if d.remaining() < 1 {
		return 0, ErrCorrupt
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decBuf) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decBuf) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, ErrCorrupt
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decBuf) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if n > 1<<20 || int(n) > d.remaining() {
		return "", ErrCorrupt
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decBuf) payload(width int) (storage.Payload, error) {
	if d.remaining() < width*8 {
		return nil, ErrCorrupt
	}
	p := make(storage.Payload, width)
	for i := range p {
		p[i] = binary.LittleEndian.Uint64(d.b[d.off:])
		d.off += 8
	}
	return p, nil
}

// count validates an element count against both the hard cap and the bytes
// actually present (each element needs at least minBytes).
func (d *decBuf) count(n uint64, minBytes int) (int, error) {
	if n > maxCount || (minBytes > 0 && n > uint64(d.remaining()/minBytes)) {
		return 0, ErrCorrupt
	}
	return int(n), nil
}

// decodePayload parses one record body. It never panics on hostile input:
// every length is validated against the remaining bytes before allocation.
func decodePayload(b []byte) (*Record, error) {
	d := decBuf{b: b}
	kind, err := d.u8()
	if err != nil {
		return nil, err
	}
	r := &Record{Kind: Kind(kind)}
	if r.LSN, err = d.u64(); err != nil {
		return nil, err
	}
	ts, err := d.u64()
	if err != nil {
		return nil, err
	}
	r.TS = storage.Timestamp(ts)
	switch r.Kind {
	case KindCreateTable:
		if r.Table, err = d.str(); err != nil {
			return nil, err
		}
		nc, err := d.u32()
		if err != nil {
			return nil, err
		}
		n, err := d.count(uint64(nc), 5)
		if err != nil {
			return nil, err
		}
		r.Cols = make([]table.Column, n)
		for i := range r.Cols {
			if r.Cols[i].Name, err = d.str(); err != nil {
				return nil, err
			}
			ct, err := d.u8()
			if err != nil {
				return nil, err
			}
			r.Cols[i].Type = table.ColType(ct)
		}
	case KindLoad:
		if r.Table, err = d.str(); err != nil {
			return nil, err
		}
		if r.FirstRow, err = d.u64(); err != nil {
			return nil, err
		}
		w32, err := d.u32()
		if err != nil {
			return nil, err
		}
		width, err := d.count(uint64(w32), 8)
		if err != nil {
			return nil, err
		}
		nr, err := d.u64()
		if err != nil {
			return nil, err
		}
		// max(1,·): zero-width rows occupy no bytes, so without the floor a
		// hostile count could demand an arbitrary allocation.
		n, err := d.count(nr, max(1, width*8))
		if err != nil {
			return nil, err
		}
		r.Rows = make([]storage.Payload, n)
		for i := range r.Rows {
			if r.Rows[i], err = d.payload(width); err != nil {
				return nil, err
			}
		}
	case KindCommit:
		nt, err := d.u32()
		if err != nil {
			return nil, err
		}
		n, err := d.count(uint64(nt), 16)
		if err != nil {
			return nil, err
		}
		r.Tables = make([]TableUpdate, n)
		for i := range r.Tables {
			tu := &r.Tables[i]
			if tu.Table, err = d.str(); err != nil {
				return nil, err
			}
			w32, err := d.u32()
			if err != nil {
				return nil, err
			}
			width, err := d.count(uint64(w32), 8)
			if err != nil {
				return nil, err
			}
			nr, err := d.u64()
			if err != nil {
				return nil, err
			}
			rows, err := d.count(nr, 8+width*8)
			if err != nil {
				return nil, err
			}
			tu.Rows = make([]RowUpdate, rows)
			for j := range tu.Rows {
				if tu.Rows[j].Row, err = d.u64(); err != nil {
					return nil, err
				}
				if tu.Rows[j].Payload, err = d.payload(width); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrCorrupt, kind)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return r, nil
}

// encodeFrame wraps a record payload in the [len][crc][payload] frame.
func encodeFrame(payload []byte) []byte {
	out := make([]byte, frameHeadLen+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.Checksum(payload, castagnoli))
	copy(out[frameHeadLen:], payload)
	return out
}

func segName(firstLSN uint64) string { return fmt.Sprintf("wal-%016x.seg", firstLSN) }

func segHeader(firstLSN uint64) []byte {
	h := make([]byte, segHeaderLen)
	copy(h, segMagic[:])
	h[4] = segVersion
	binary.LittleEndian.PutUint64(h[5:], firstLSN)
	return h
}

// parseSegHeader validates a segment header and returns its first LSN.
func parseSegHeader(b []byte) (uint64, error) {
	if len(b) < segHeaderLen || [4]byte(b[:4]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if b[4] != segVersion {
		return 0, fmt.Errorf("%w: segment version %d (want %d)", ErrCorrupt, b[4], segVersion)
	}
	return binary.LittleEndian.Uint64(b[5:]), nil
}

// syncDir fsyncs a directory so a just-created or just-removed file's
// directory entry is durable. Best-effort: some filesystems refuse directory
// fsync, which is not worth failing a commit over.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Interval defaults for the SyncInterval policy.
const defaultSyncInterval = 2 * time.Millisecond

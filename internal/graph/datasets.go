package graph

import "fmt"

// Dataset describes one PageRank input of the paper (Table 1 plus the
// Wikivote graph of Figure 1) together with a generator that reproduces
// its shape at a configurable fraction of the original size. The paper's
// datasets are real SNAP/WDC downloads; this reproduction substitutes
// synthetic graphs with matching density and degree skew (see DESIGN.md).
type Dataset struct {
	// Name matches the paper ("wikivote", "gplus", "patents", "pld").
	Name string
	// PaperNodes and PaperEdges are the sizes reported by the paper.
	PaperNodes int64
	PaperEdges int64
	// Generate builds the stand-in graph scaled so it has roughly
	// PaperNodes/scaleDiv nodes with the original edge density. scaleDiv
	// < 1 is treated as 1 (full scale).
	Generate func(scaleDiv int) *Graph
}

// Datasets is the catalog of PageRank inputs, in the paper's order.
var Datasets = []Dataset{
	{
		// Figure 1 runs on wiki-Vote: 7,115 nodes, 103,689 edges, a dense
		// social voting graph. Small enough to generate at full scale.
		Name:       "wikivote",
		PaperNodes: 7115,
		PaperEdges: 103689,
		Generate: func(scaleDiv int) *Graph {
			n, m := scaled(7115, 103689, scaleDiv)
			return BarabasiAlbert(n, int(m/int64(n)), 7115)
		},
	},
	{
		// gplus: social circles graph, extremely dense (avg degree ~168)
		// and heavily skewed — Barabási–Albert preferential attachment.
		Name:       "gplus",
		PaperNodes: 107614,
		PaperEdges: 18112696,
		Generate: func(scaleDiv int) *Graph {
			n, m := scaled(107614, 18112696, scaleDiv)
			return BarabasiAlbert(n, int(m/int64(n)), 107614)
		},
	},
	{
		// patents: citation network, sparse (avg degree ~6) and much more
		// uniform than a social graph — Erdős–Rényi is the closest shape.
		Name:       "patents",
		PaperNodes: 3774768,
		PaperEdges: 22637404,
		Generate: func(scaleDiv int) *Graph {
			n, m := scaled(3774768, 22637404, scaleDiv)
			return ErdosRenyi(n, m, 3774768)
		},
	},
	{
		// pld: web hyperlink graph (pay-level domains), skewed web
		// structure — RMAT with the standard Graph500 parameters.
		Name:       "pld",
		PaperNodes: 39497204,
		PaperEdges: 704376276,
		Generate: func(scaleDiv int) *Graph {
			n, m := scaled(39497204, 704376276, scaleDiv)
			scale := log2ceil(n)
			ef := int(m / int64(uint64(1)<<scale))
			if ef < 1 {
				ef = 1
			}
			return RMAT(scale, ef, 0.57, 0.19, 0.19, 39497204)
		},
	},
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Dataset, error) {
	for _, d := range Datasets {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q", name)
}

// scaled shrinks (nodes, edges) by scaleDiv while preserving density and
// keeping at least 64 nodes.
func scaled(nodes, edges int64, scaleDiv int) (int, int64) {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	n := nodes / int64(scaleDiv)
	if n < 64 {
		n = 64
	}
	m := edges * n / nodes
	if m < n {
		m = n
	}
	return int(n), m
}

func log2ceil(n int) int {
	s := 0
	for (1 << s) < n {
		s++
	}
	return s
}

package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseEdgeList reads a whitespace-separated "from to" edge list in the
// SNAP dataset format: one edge per line, '#' lines are comments. Node ids
// may be sparse; they are densified to [0, n) in first-appearance order.
// It returns the graph and the mapping from dense id back to the original
// id.
func ParseEdgeList(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	idOf := make(map[int64]int32)
	var original []int64
	dense := func(raw int64) int32 {
		if id, ok := idOf[raw]; ok {
			return id
		}
		id := int32(len(original))
		idOf[raw] = id
		original = append(original, raw)
		return id
	}
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want 'from to', got %q", line, text)
		}
		from, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		edges = append(edges, Edge{From: dense(from), To: dense(to)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	g, err := FromEdges(len(original), edges)
	if err != nil {
		return nil, nil, err
	}
	return g, original, nil
}

// WriteEdgeList writes the graph in the same format ParseEdgeList reads.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := int32(0); int(v) < g.NumNodes(); v++ {
		for _, to := range g.OutNeighbors(v) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", v, to); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

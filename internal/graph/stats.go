package graph

import "fmt"

// Stats summarizes a graph for the dataset tables (Table 1 format).
type Stats struct {
	Nodes        int
	Edges        int64
	AvgOutDegree float64
	MaxOutDegree int
	MaxInDegree  int
	// Skew is MaxInDegree / AvgInDegree — a crude heavy-tail indicator
	// used to check that generated stand-ins preserve the originals'
	// degree skew.
	Skew float64
}

// Summarize computes stats for g.
func Summarize(g *Graph) Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	if s.Nodes == 0 {
		return s
	}
	for v := int32(0); int(v) < s.Nodes; v++ {
		if d := g.OutDegree(v); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := g.InDegree(v); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
	}
	avg := float64(s.Edges) / float64(s.Nodes)
	s.AvgOutDegree = avg
	if avg > 0 {
		s.Skew = float64(s.MaxInDegree) / avg
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d avg-deg=%.1f max-out=%d max-in=%d skew=%.1f",
		s.Nodes, s.Edges, s.AvgOutDegree, s.MaxOutDegree, s.MaxInDegree, s.Skew)
}

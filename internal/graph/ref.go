package graph

// PageRankRef is the sequential reference PageRank every engine in this
// repository is validated against. It evaluates Equation (1) of the paper
// with damping factor d, running pull-based Jacobi iterations until either
// no rank moves by more than epsilon or maxIters is reached. It returns the
// ranks and the number of iterations executed.
func PageRankRef(g *Graph, d, epsilon float64, maxIters int) ([]float64, int) {
	n := g.NumNodes()
	cur := make([]float64, n)
	next := make([]float64, n)
	for v := range cur {
		cur[v] = 1.0 / float64(n)
	}
	base := (1 - d) / float64(n)
	iters := 0
	for iters < maxIters {
		iters++
		moved := false
		for v := int32(0); int(v) < n; v++ {
			sum := 0.0
			for _, u := range g.InNeighbors(v) {
				if deg := g.OutDegree(u); deg > 0 {
					sum += cur[u] / float64(deg)
				}
			}
			nv := base + d*sum
			next[v] = nv
			if diff := nv - cur[v]; diff > epsilon || diff < -epsilon {
				moved = true
			}
		}
		cur, next = next, cur
		if !moved {
			break
		}
	}
	return cur, iters
}

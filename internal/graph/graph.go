// Package graph provides the directed-graph substrate for the PageRank use
// case and its baselines: a compressed sparse row (CSR) representation with
// both out- and in-adjacency, synthetic generators reproducing the shape of
// the paper's datasets (Table 1), an edge-list loader, and a sequential
// reference PageRank used to validate every engine.
package graph

import "fmt"

// Graph is an immutable directed graph in CSR form. Node ids are dense
// [0, N). Both adjacency directions are materialized because pull-based
// PageRank iterates incoming edges while out-degrees weight the
// contributions.
type Graph struct {
	n          int
	outOffsets []int64
	outEdges   []int32
	inOffsets  []int64
	inEdges    []int32
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.outEdges)) }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v int32) int {
	return int(g.outOffsets[v+1] - g.outOffsets[v])
}

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v int32) int {
	return int(g.inOffsets[v+1] - g.inOffsets[v])
}

// OutNeighbors returns the targets of v's outgoing edges. The slice aliases
// the graph's storage; callers must not modify it.
func (g *Graph) OutNeighbors(v int32) []int32 {
	return g.outEdges[g.outOffsets[v]:g.outOffsets[v+1]]
}

// InNeighbors returns the sources of v's incoming edges. The slice aliases
// the graph's storage; callers must not modify it.
func (g *Graph) InNeighbors(v int32) []int32 {
	return g.inEdges[g.inOffsets[v]:g.inOffsets[v+1]]
}

// Edge is one directed edge.
type Edge struct {
	From, To int32
}

// FromEdges builds a CSR graph with n nodes from an edge list. Self-loops
// and duplicate edges are kept (PageRank treats them like any other edge,
// matching the raw SNAP datasets). Node ids must lie in [0, n).
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	g := &Graph{
		n:          n,
		outOffsets: make([]int64, n+1),
		inOffsets:  make([]int64, n+1),
		outEdges:   make([]int32, len(edges)),
		inEdges:    make([]int32, len(edges)),
	}
	for _, e := range edges {
		if e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside [0,%d)", e.From, e.To, n)
		}
		g.outOffsets[e.From+1]++
		g.inOffsets[e.To+1]++
	}
	for v := 0; v < n; v++ {
		g.outOffsets[v+1] += g.outOffsets[v]
		g.inOffsets[v+1] += g.inOffsets[v]
	}
	outPos := make([]int64, n)
	inPos := make([]int64, n)
	copy(outPos, g.outOffsets[:n])
	copy(inPos, g.inOffsets[:n])
	for _, e := range edges {
		g.outEdges[outPos[e.From]] = e.To
		outPos[e.From]++
		g.inEdges[inPos[e.To]] = e.From
		inPos[e.To]++
	}
	return g, nil
}

// Edges reconstructs the edge list in out-adjacency order, mostly for tests
// and export.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.outEdges))
	for v := int32(0); int(v) < g.n; v++ {
		for _, to := range g.OutNeighbors(v) {
			out = append(out, Edge{From: v, To: to})
		}
	}
	return out
}

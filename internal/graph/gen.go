package graph

import "math/rand"

// ErdosRenyi generates a uniform random directed graph with n nodes and m
// edges (G(n, m) model, sampling with replacement). Deterministic for a
// given seed.
func ErdosRenyi(n int, m int64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err) // generated ids are in range by construction
	}
	return g
}

// BarabasiAlbert generates a directed preferential-attachment graph: each
// new node draws k out-edges whose targets are picked proportionally to
// current in-degree (plus one, so isolated nodes stay reachable). The
// result has the heavy-tailed in-degree distribution of social graphs like
// the paper's gplus dataset. Deterministic for a given seed.
func BarabasiAlbert(n, k int, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, n*k)
	// targets holds one entry per (in-degree + 1) unit of attachment mass.
	targets := make([]int32, 0, n*(k+1))
	for v := 0; v < n; v++ {
		targets = append(targets, int32(v))
		for e := 0; e < k && v > 0; e++ {
			to := targets[rng.Intn(len(targets)-1)] // exclude v's own fresh entry
			edges = append(edges, Edge{From: int32(v), To: to})
			targets = append(targets, to)
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// RMAT generates a recursive-matrix (Kronecker-like) graph with 2^scale
// nodes and edgeFactor × 2^scale edges using partition probabilities
// (a, b, c, d). RMAT graphs reproduce the skewed degree distribution and
// community structure of web graphs like the paper's pld dataset.
// Deterministic for a given seed.
func RMAT(scale int, edgeFactor int, a, b, c float64, seed int64) *Graph {
	n := 1 << scale
	m := int64(edgeFactor) * int64(n)
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		var from, to int32
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant: neither bit set
			case r < a+b:
				to |= 1 << bit
			case r < a+b+c:
				from |= 1 << bit
			default:
				from |= 1 << bit
				to |= 1 << bit
			}
		}
		edges[i] = Edge{From: from, To: to}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

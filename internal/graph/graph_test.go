package graph

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
func diamond(t *testing.T) *Graph {
	t.Helper()
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := diamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 5 {
		t.Fatalf("size = (%d, %d)", g.NumNodes(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 || g.OutDegree(3) != 1 {
		t.Fatal("degrees wrong")
	}
	out := append([]int32(nil), g.OutNeighbors(0)...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(out) != 2 || out[0] != 1 || out[1] != 2 {
		t.Fatalf("OutNeighbors(0) = %v", out)
	}
	in := append([]int32(nil), g.InNeighbors(3)...)
	sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	if len(in) != 2 || in[0] != 1 || in[1] != 2 {
		t.Fatalf("InNeighbors(3) = %v", in)
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2}}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Fatal("negative node count accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	st := Summarize(g)
	if st.Nodes != 0 {
		t.Fatal("stats of empty graph")
	}
}

func TestSelfLoopsAndDuplicatesKept(t *testing.T) {
	g, err := FromEdges(2, []Edge{{0, 0}, {0, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.OutDegree(0) != 3 || g.InDegree(1) != 2 {
		t.Fatal("self loops or duplicates dropped")
	}
}

// Property: in/out adjacency are transposes of each other.
func TestCSRTransposeProperty(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		edges := make([]Edge, 0, len(raw)/2*2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{From: int32(int(raw[i]) % n), To: int32(int(raw[i+1]) % n)})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		type pair struct{ f, t int32 }
		fwd := map[pair]int{}
		for v := int32(0); int(v) < n; v++ {
			for _, to := range g.OutNeighbors(v) {
				fwd[pair{v, to}]++
			}
		}
		for v := int32(0); int(v) < n; v++ {
			for _, from := range g.InNeighbors(v) {
				fwd[pair{from, v}]--
			}
		}
		for _, c := range fwd {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := diamond(t)
	edges := g.Edges()
	g2, err := FromEdges(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("Edges() round trip lost edges")
	}
}

func TestErdosRenyiShape(t *testing.T) {
	g := ErdosRenyi(1000, 5000, 1)
	if g.NumNodes() != 1000 || g.NumEdges() != 5000 {
		t.Fatalf("ER shape = (%d, %d)", g.NumNodes(), g.NumEdges())
	}
	// Determinism.
	g2 := ErdosRenyi(1000, 5000, 1)
	if g2.OutNeighbors(0)[0] != g.OutNeighbors(0)[0] {
		t.Fatal("ER not deterministic for fixed seed")
	}
	g3 := ErdosRenyi(1000, 5000, 2)
	if g3.NumEdges() != 5000 {
		t.Fatal("different seed changed edge count")
	}
}

func TestBarabasiAlbertSkew(t *testing.T) {
	g := BarabasiAlbert(2000, 8, 42)
	st := Summarize(g)
	if st.Nodes != 2000 {
		t.Fatalf("BA nodes = %d", st.Nodes)
	}
	er := Summarize(ErdosRenyi(2000, st.Edges, 42))
	if st.Skew <= 2*er.Skew {
		t.Fatalf("BA skew %.1f not clearly heavier than ER skew %.1f", st.Skew, er.Skew)
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(10, 8, 0.57, 0.19, 0.19, 7)
	if g.NumNodes() != 1024 || g.NumEdges() != 8*1024 {
		t.Fatalf("RMAT shape = (%d, %d)", g.NumNodes(), g.NumEdges())
	}
	st := Summarize(g)
	if st.Skew < 3 {
		t.Fatalf("RMAT skew %.1f suspiciously uniform", st.Skew)
	}
}

func TestParseEdgeList(t *testing.T) {
	in := `# comment line
10 20
20 30

10 30
`
	g, orig, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed shape = (%d, %d)", g.NumNodes(), g.NumEdges())
	}
	if orig[0] != 10 || orig[1] != 20 || orig[2] != 30 {
		t.Fatalf("original ids = %v", orig)
	}
	if g.OutDegree(0) != 2 { // node "10"
		t.Fatal("adjacency of densified node wrong")
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	if _, _, err := ParseEdgeList(strings.NewReader("1\n")); err == nil {
		t.Fatal("single-field line accepted")
	}
	if _, _, err := ParseEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-numeric ids accepted")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	g := ErdosRenyi(50, 200, 3)
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ParseEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges %d != %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestDatasetCatalog(t *testing.T) {
	names := map[string]bool{}
	for _, d := range Datasets {
		names[d.Name] = true
		if d.PaperNodes <= 0 || d.PaperEdges <= 0 {
			t.Errorf("%s: missing paper sizes", d.Name)
		}
	}
	for _, want := range []string{"wikivote", "gplus", "patents", "pld"} {
		if !names[want] {
			t.Errorf("catalog missing %q", want)
		}
	}
	if _, err := ByName("gplus"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDatasetGenerationScaled(t *testing.T) {
	for _, d := range Datasets {
		div := int(d.PaperNodes / 1000)
		if div < 1 {
			div = 1
		}
		g := d.Generate(div)
		if g.NumNodes() < 64 {
			t.Errorf("%s: scaled graph too small: %d nodes", d.Name, g.NumNodes())
		}
		paperDensity := float64(d.PaperEdges) / float64(d.PaperNodes)
		gotDensity := float64(g.NumEdges()) / float64(g.NumNodes())
		if gotDensity < paperDensity/4 || gotDensity > paperDensity*4 {
			t.Errorf("%s: density %.1f far from paper's %.1f", d.Name, gotDensity, paperDensity)
		}
	}
}

func TestPageRankRefProperties(t *testing.T) {
	g := diamond(t)
	ranks, iters := PageRankRef(g, 0.85, 1e-12, 500)
	if iters <= 1 {
		t.Fatalf("converged suspiciously fast: %d iterations", iters)
	}
	sum := 0.0
	for _, r := range ranks {
		if r <= 0 {
			t.Fatalf("non-positive rank %v", r)
		}
		sum += r
	}
	// With no dangling nodes the ranks form a probability distribution.
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("ranks sum to %v, want ~1", sum)
	}
	// Node 3 has two strong in-links; node 0 receives all of 3's mass.
	if !(ranks[3] > ranks[1] && ranks[0] > ranks[1]) {
		t.Fatalf("ranking implausible: %v", ranks)
	}
	if ranks[1] != ranks[2] {
		t.Fatalf("symmetric nodes differ: %v vs %v", ranks[1], ranks[2])
	}
}

func TestPageRankRefIterationCap(t *testing.T) {
	g := ErdosRenyi(100, 500, 9)
	_, iters := PageRankRef(g, 0.85, 0, 5) // epsilon 0 never converges
	if iters != 5 {
		t.Fatalf("iteration cap ignored: %d", iters)
	}
}

func TestSummarize(t *testing.T) {
	g := diamond(t)
	st := Summarize(g)
	if st.Nodes != 4 || st.Edges != 5 || st.MaxOutDegree != 2 || st.MaxInDegree != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
}

// Package numa simulates the multi-socket NUMA topology of the paper's
// evaluation machine (8 regions × 8 cores). Go cannot pin goroutines to
// cores or allocate on specific sockets, so the topology here is a
// *placement model*: it decides which region a worker belongs to and which
// partition of the data that region owns, and it accounts local vs. remote
// accesses so experiments can verify that the engine's NUMA-aware layout
// (per-region queues, region-partitioned tables, Section 5.2) actually
// eliminates cross-region traffic. The structural effects the paper
// attributes to NUMA awareness — private queues, partitioned data, no
// cross-region writes — are all reproduced; only the physical memory
// latency is not.
package numa

import (
	"fmt"
	"sync/atomic"
)

// Topology describes a machine as a set of NUMA regions with workers spread
// evenly across them.
type Topology struct {
	Regions int // number of NUMA regions (sockets)
	Workers int // total worker threads
}

// NewTopology builds a topology with the given number of regions and total
// workers. Regions is clamped to [1, workers] so every region has at least
// one worker.
func NewTopology(regions, workers int) Topology {
	if workers < 1 {
		workers = 1
	}
	if regions < 1 {
		regions = 1
	}
	if regions > workers {
		regions = workers
	}
	return Topology{Regions: regions, Workers: workers}
}

// PaperTopology mirrors the evaluation machine of the paper: 8 NUMA regions,
// 8 cores each, for a total of workers cores (workers ≤ 64 uses
// ceil(workers/8) regions like the paper's core sweeps do).
func PaperTopology(workers int) Topology {
	regions := (workers + 7) / 8
	if regions > 8 {
		regions = 8
	}
	return NewTopology(regions, workers)
}

// RegionOf returns the region a worker is "pinned" to. Workers fill regions
// round-robin so every core sweep uses all regions as evenly as possible,
// matching how the paper spreads threads across sockets.
func (t Topology) RegionOf(worker int) int {
	return worker % t.Regions
}

// WorkersIn returns the number of workers pinned to region r.
func (t Topology) WorkersIn(r int) int {
	n := t.Workers / t.Regions
	if worker := t.Workers % t.Regions; r < worker {
		n++
	}
	return n
}

func (t Topology) String() string {
	return fmt.Sprintf("numa(%d regions, %d workers)", t.Regions, t.Workers)
}

// Traffic counts local vs. remote (cross-region) data accesses. Experiments
// use it to verify the engine's locality claims; the hot paths only touch it
// when tracing is enabled.
type Traffic struct {
	local  atomic.Uint64
	remote atomic.Uint64
}

// Record notes one access by a worker in workerRegion to data owned by
// dataRegion.
func (c *Traffic) Record(workerRegion, dataRegion int) {
	if workerRegion == dataRegion {
		c.local.Add(1)
	} else {
		c.remote.Add(1)
	}
}

// Local returns the number of same-region accesses recorded.
func (c *Traffic) Local() uint64 { return c.local.Load() }

// Remote returns the number of cross-region accesses recorded.
func (c *Traffic) Remote() uint64 { return c.remote.Load() }

// RemoteFraction returns the fraction of accesses that crossed regions,
// or 0 if nothing was recorded.
func (c *Traffic) RemoteFraction() float64 {
	l, r := c.Local(), c.Remote()
	if l+r == 0 {
		return 0
	}
	return float64(r) / float64(l+r)
}

// Reset zeroes both counters.
func (c *Traffic) Reset() {
	c.local.Store(0)
	c.remote.Store(0)
}

package numa

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewTopologyClamps(t *testing.T) {
	cases := []struct {
		regions, workers         int
		wantRegions, wantWorkers int
	}{
		{8, 64, 8, 64},
		{8, 4, 4, 4},   // regions clamp to workers
		{0, 4, 1, 4},   // at least one region
		{4, 0, 1, 1},   // at least one worker
		{-3, -5, 1, 1}, // nonsense input
	}
	for _, c := range cases {
		top := NewTopology(c.regions, c.workers)
		if top.Regions != c.wantRegions || top.Workers != c.wantWorkers {
			t.Errorf("NewTopology(%d, %d) = %v, want (%d regions, %d workers)",
				c.regions, c.workers, top, c.wantRegions, c.wantWorkers)
		}
	}
}

func TestPaperTopology(t *testing.T) {
	cases := []struct {
		workers, wantRegions int
	}{
		{1, 1}, {8, 1}, {9, 2}, {16, 2}, {64, 8}, {128, 8},
	}
	for _, c := range cases {
		top := PaperTopology(c.workers)
		if top.Regions != c.wantRegions {
			t.Errorf("PaperTopology(%d).Regions = %d, want %d", c.workers, top.Regions, c.wantRegions)
		}
	}
}

func TestRegionAssignmentBalanced(t *testing.T) {
	f := func(regions, workers uint8) bool {
		top := NewTopology(int(regions%16), int(workers%128))
		counts := make([]int, top.Regions)
		for w := 0; w < top.Workers; w++ {
			r := top.RegionOf(w)
			if r < 0 || r >= top.Regions {
				return false
			}
			counts[r]++
		}
		min, max := top.Workers, 0
		for r, c := range counts {
			if c != top.WorkersIn(r) {
				return false
			}
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1 // even spread
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrafficCounters(t *testing.T) {
	var tr Traffic
	if tr.RemoteFraction() != 0 {
		t.Fatal("empty counter has nonzero remote fraction")
	}
	tr.Record(0, 0)
	tr.Record(0, 1)
	tr.Record(1, 1)
	tr.Record(2, 0)
	if tr.Local() != 2 || tr.Remote() != 2 {
		t.Fatalf("local/remote = %d/%d, want 2/2", tr.Local(), tr.Remote())
	}
	if tr.RemoteFraction() != 0.5 {
		t.Fatalf("RemoteFraction = %f, want 0.5", tr.RemoteFraction())
	}
	tr.Reset()
	if tr.Local() != 0 || tr.Remote() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestTrafficConcurrent(t *testing.T) {
	var tr Traffic
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(g%2, i%2)
			}
		}(g)
	}
	wg.Wait()
	if tr.Local()+tr.Remote() != 8000 {
		t.Fatalf("lost updates: %d + %d != 8000", tr.Local(), tr.Remote())
	}
}

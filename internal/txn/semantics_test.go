package txn

import "testing"

// TestWriteSkewAllowed documents the isolation level: DB4ML's OLTP side is
// snapshot isolation (first-committer-wins on write-write conflicts), like
// the Hekaton design it follows — NOT serializable. Two transactions that
// read the same two rows and write disjoint rows both commit, even though
// no serial order produces that result. This is intentional and matches
// the paper's storage manager (Section 3.1).
func TestWriteSkewAllowed(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 2, 100)
	t1 := m.Begin()
	t2 := m.Begin()
	// Both enforce "sum must stay >= 0" by checking the snapshot sum and
	// withdrawing from different accounts.
	p10, _ := t1.Read(tbl, 0)
	p11, _ := t1.Read(tbl, 1)
	if p10.Float64(1)+p11.Float64(1) < 150 {
		t.Fatal("setup")
	}
	p10.SetFloat64(1, p10.Float64(1)-150)
	if err := t1.Write(tbl, 0, p10); err != nil {
		t.Fatal(err)
	}
	p20, _ := t2.Read(tbl, 0)
	p21, _ := t2.Read(tbl, 1)
	if p20.Float64(1)+p21.Float64(1) < 150 {
		t.Fatal("setup")
	}
	p21.SetFloat64(1, p21.Float64(1)-150)
	if err := t2.Write(tbl, 1, p21); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("write skew rejected: %v — SI should allow disjoint write sets", err)
	}
	a, _ := m.Begin().Read(tbl, 0)
	b, _ := m.Begin().Read(tbl, 1)
	if a.Float64(1)+b.Float64(1) != -100 {
		t.Fatalf("unexpected final state: %v + %v", a.Float64(1), b.Float64(1))
	}
}

// TestInsertMaintainsIndexes: rows inserted through a transaction become
// visible in the table's indexes once committed.
func TestInsertMaintainsIndexes(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 3, 10)
	if err := tbl.CreateHashIndex("ID"); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	p := tbl.Schema().NewPayload()
	p.SetInt64(0, 777)
	p.SetFloat64(1, 1)
	if err := tx.Insert(tbl, p); err != nil {
		t.Fatal(err)
	}
	if rows, _ := tbl.Lookup("ID", 777); len(rows) != 0 {
		t.Fatal("uncommitted insert visible in index")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := tbl.Lookup("ID", 777)
	if err != nil || len(rows) != 1 {
		t.Fatalf("Lookup after commit = (%v, %v)", rows, err)
	}
	got, ok := m.Begin().Read(tbl, rows[0])
	if !ok || got.Int64(0) != 777 {
		t.Fatalf("indexed row = (%v, %v)", got, ok)
	}
}

// TestTablePruneAfterUpdates: version GC drops superseded versions while
// keeping every read at or after the watermark correct.
func TestTablePruneAfterUpdates(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 0)
	for i := 0; i < 10; i++ {
		tx := m.Begin()
		p, _ := tx.Read(tbl, 0)
		p.SetFloat64(1, float64(i+1))
		if err := tx.Write(tbl, 0, p); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	chain := tbl.Chain(0)
	if chain.Len() != 11 {
		t.Fatalf("chain length = %d, want 11", chain.Len())
	}
	dropped := tbl.Prune(m.Stable())
	if dropped != 10 {
		t.Fatalf("Prune dropped %d, want 10", dropped)
	}
	got, ok := m.Begin().Read(tbl, 0)
	if !ok || got.Float64(1) != 10 {
		t.Fatalf("read after prune = (%v, %v)", got, ok)
	}
	// And the table remains writable.
	tx := m.Begin()
	p, _ := tx.Read(tbl, 0)
	p.SetFloat64(1, 42)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestPruneDoesNotBreakOlderSnapshotHeldBeforePrune: a transaction that
// began before the prune watermark is the caller's responsibility (the
// watermark contract); one that begins at the watermark still reads
// correctly.
func TestPruneWatermarkContract(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 1)
	tx0 := m.Begin() // snapshot at load time
	for i := 0; i < 3; i++ {
		tx := m.Begin()
		p, _ := tx.Read(tbl, 0)
		p.SetFloat64(1, float64(100+i))
		if err := tx.Write(tbl, 0, p); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Prune only up to tx0's snapshot: tx0 must still read its version.
	tbl.Prune(tx0.BeginTS())
	got, ok := tx0.Read(tbl, 0)
	if !ok || got.Float64(1) != 1 {
		t.Fatalf("pre-prune snapshot read = (%v, %v), want original value", got, ok)
	}
}

// Package txn implements classical transactions over ML-tables: snapshot
// isolation with first-committer-wins write-conflict handling, the
// transaction model the paper's storage manager inherits from Larson et
// al.'s main-memory MVCC design. Uber-transactions (package itx) are built
// on top of these transactions, which keeps ML-tables fully usable by
// normal OLTP workloads while an ML algorithm runs.
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"db4ml/internal/storage"
	"db4ml/internal/table"
)

// ErrConflict is returned by Commit when another transaction committed a
// conflicting write first (first-committer-wins) or holds an in-flight
// version of a row in the write set.
var ErrConflict = errors.New("txn: write-write conflict")

// ErrDone is returned when a committed or aborted transaction is used.
var ErrDone = errors.New("txn: transaction already finished")

// Manager hands out transactions against a shared timestamp oracle.
//
// Transactions begin at the manager's *stable* timestamp — the newest
// commit timestamp whose writes are fully published — never at the raw
// oracle value. Without this distinction a transaction could begin exactly
// at a commit timestamp mid-publish, read the pre-commit versions, and
// still pass first-committer-wins validation, losing the earlier commit's
// update. Publishing is serialized by commitMu, so the stable watermark
// advances only over complete snapshots.
type Manager struct {
	oracle   *storage.Oracle
	commitMu sync.Mutex
	stable   atomic.Uint64

	// Active-snapshot registry: every live reader — OLTP transactions and
	// uber-transactions — pins the begin timestamp it reads at, and the
	// version garbage collector prunes only below the oldest pin
	// (SafeWatermark). pins is a begin-timestamp -> reader-count multiset;
	// it stays small (one entry per distinct active begin timestamp).
	snapMu sync.Mutex
	pins   map[storage.Timestamp]int
}

// NewManager creates a transaction manager with a fresh oracle.
func NewManager() *Manager {
	return &Manager{oracle: &storage.Oracle{}, pins: make(map[storage.Timestamp]int)}
}

// NewManagerWithOracle creates a transaction manager drawing timestamps
// from a shared oracle. Shard kernels use it so commit timestamps are
// globally comparable across shards — a prerequisite for the coordinator's
// two-phase uber-commit, which publishes the same timestamp on every
// shard. Each manager still owns its commit lock, stable watermark, and
// active-snapshot registry; only the counter is shared.
func NewManagerWithOracle(o *storage.Oracle) *Manager {
	if o == nil {
		o = &storage.Oracle{}
	}
	return &Manager{oracle: o, pins: make(map[storage.Timestamp]int)}
}

// Oracle exposes the manager's timestamp oracle, shared with bulk loaders
// and uber-transactions.
func (m *Manager) Oracle() *storage.Oracle { return m.oracle }

// Stable returns the newest fully published commit timestamp. Reads at
// Stable() observe a consistent snapshot.
func (m *Manager) Stable() storage.Timestamp {
	return storage.Timestamp(m.stable.Load())
}

// PublishAt draws a fresh commit timestamp, runs publish with it while
// holding the commit lock, then advances the stable watermark past it.
// Every path that makes new versions visible — transaction commits, bulk
// loads, uber-transaction commits — must go through PublishAt so
// transactions never begin inside a half-published snapshot.
func (m *Manager) PublishAt(publish func(ts storage.Timestamp)) storage.Timestamp {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	ts := m.oracle.Next()
	publish(ts)
	m.stable.Store(uint64(ts))
	return ts
}

// RestoreStable advances the stable watermark (and the shared oracle) to ts
// without publishing anything. Recovery calls it after rebuilding state at
// original commit timestamps so new transactions begin at or above the
// newest replayed commit. It never moves the watermark backwards and must
// not race live publishes — recovery runs before the kernel accepts work.
func (m *Manager) RestoreStable(ts storage.Timestamp) {
	m.commitMu.Lock()
	m.oracle.AdvanceTo(ts)
	if uint64(ts) > m.stable.Load() {
		m.stable.Store(uint64(ts))
	}
	m.commitMu.Unlock()
}

// Prepared is a shard's side of a two-phase commit: the manager's commit
// lock, held between the coordinator's prepare and commit (or abort)
// decisions. While a Prepared is open no other publish — OLTP commit, bulk
// load, single-kernel uber-commit — can interleave on this manager, so the
// shard's stable watermark cannot move between the prepare vote and the
// coordinated publish. Exactly one of CommitAt or Abort must be called.
type Prepared struct {
	m    *Manager
	done bool
}

// Prepare locks the manager for a coordinated publish and returns the
// handle the commit phase settles. Multiple managers must be prepared in a
// deterministic order (the coordinator uses shard-id order) so concurrent
// coordinators cannot deadlock against each other.
func (m *Manager) Prepare() *Prepared {
	m.commitMu.Lock()
	return &Prepared{m: m}
}

// CommitAt runs publish with the coordinator-chosen timestamp, advances
// the stable watermark to it, and releases the prepare lock. ts must come
// from the shared oracle and be drawn after every participating shard
// prepared: commits on this manager serialize on the commit lock, so every
// earlier publish here drew a smaller timestamp and the watermark only
// moves forward. A stale ts (below the current watermark) panics — it
// would re-expose a half-published snapshot to new transactions.
func (p *Prepared) CommitAt(ts storage.Timestamp, publish func(ts storage.Timestamp)) {
	if p.done {
		panic("txn: CommitAt on a settled Prepared")
	}
	p.done = true
	if cur := p.m.Stable(); ts < cur {
		p.m.commitMu.Unlock()
		panic(fmt.Sprintf("txn: coordinated commit ts %d below stable watermark %d", ts, cur))
	}
	publish(ts)
	p.m.stable.Store(uint64(ts))
	p.m.commitMu.Unlock()
}

// Abort releases the prepare lock without publishing anything.
func (p *Prepared) Abort() {
	if p.done {
		return
	}
	p.done = true
	p.m.commitMu.Unlock()
}

// PinSnapshot atomically reads the current stable timestamp and registers
// an active reader on it, so SafeWatermark can never advance past it until
// the matching UnpinSnapshot. Begin and itx.BeginUber pin through here;
// direct callers (read replicas, long scans) may too, but must guarantee
// the unpin — a leaked pin freezes garbage collection at its timestamp.
func (m *Manager) PinSnapshot() storage.Timestamp {
	m.snapMu.Lock()
	ts := m.Stable()
	m.pins[ts]++
	m.snapMu.Unlock()
	return ts
}

// PinAt registers an active reader on the given timestamp without reading
// the stable watermark — the pin long-running scans (relational table
// scans, query plans) take around their whole lifetime so the version
// garbage collector cannot reclaim the versions they still have to visit.
// Unlike PinSnapshot, the caller chooses ts, and with that inherits an
// obligation: ts must still be at or above SafeWatermark when PinAt runs,
// which in practice means it was obtained while another pin covered it (a
// transaction's snapshot, an uber-transaction's begin, an enclosing query
// pin) or is the current stable timestamp read moments ago on a path where
// no GC pass can interleave. Release with UnpinSnapshot(ts).
func (m *Manager) PinAt(ts storage.Timestamp) {
	m.snapMu.Lock()
	m.pins[ts]++
	m.snapMu.Unlock()
}

// UnpinSnapshot releases one PinSnapshot (or PinAt) registration of ts.
func (m *Manager) UnpinSnapshot(ts storage.Timestamp) {
	m.snapMu.Lock()
	if n := m.pins[ts]; n <= 1 {
		delete(m.pins, ts)
	} else {
		m.pins[ts] = n - 1
	}
	m.snapMu.Unlock()
}

// SafeWatermark returns the newest timestamp version garbage collection
// may prune at: the oldest active pinned begin timestamp, or the stable
// timestamp when no reader is active. Pruning a chain at SafeWatermark
// keeps the newest version at or below it, so every registered reader
// (begin >= watermark) still resolves the version it pinned. The registry
// is the single source of watermarks — internal/gc clamps every requested
// watermark to this value rather than trusting callers.
func (m *Manager) SafeWatermark() storage.Timestamp {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	w := m.Stable()
	for ts := range m.pins {
		if ts < w {
			w = ts
		}
	}
	return w
}

// ActiveSnapshots returns the number of currently pinned readers (distinct
// transactions, not distinct timestamps).
func (m *Manager) ActiveSnapshots() int {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	n := 0
	for _, c := range m.pins {
		n += c
	}
	return n
}

// Begin starts a transaction reading the most recent stable snapshot. The
// snapshot is pinned in the active-snapshot registry until the transaction
// commits or aborts, holding the GC watermark back so the versions it
// reads stay reachable.
func (m *Manager) Begin() *Txn {
	return &Txn{m: m, beginTS: m.PinSnapshot(), writeIdx: make(map[writeKey]int)}
}

type txnState int

const (
	active txnState = iota
	committed
	aborted
)

type writeKey struct {
	tbl *table.Table
	row table.RowID
}

type writeOp struct {
	key     writeKey
	payload storage.Payload
	delete  bool
}

type insertOp struct {
	tbl     *table.Table
	payload storage.Payload
}

// Txn is a snapshot-isolation transaction. All reads observe the snapshot
// at Begin; writes are buffered and installed atomically at Commit. A Txn
// must be used from a single goroutine.
type Txn struct {
	m        *Manager
	beginTS  storage.Timestamp
	state    txnState
	writes   []writeOp
	writeIdx map[writeKey]int
	inserts  []insertOp
	inserted []table.RowID
}

// BeginTS returns the transaction's snapshot timestamp.
func (tx *Txn) BeginTS() storage.Timestamp { return tx.beginTS }

// Read returns a copy of the row as of the transaction snapshot, with
// read-your-writes (and read-your-deletes) semantics for rows this
// transaction has written.
func (tx *Txn) Read(tbl *table.Table, row table.RowID) (storage.Payload, bool) {
	if tx.state != active {
		return nil, false
	}
	if i, ok := tx.writeIdx[writeKey{tbl, row}]; ok {
		if tx.writes[i].delete {
			return nil, false
		}
		return tx.writes[i].payload.Clone(), true
	}
	return tbl.Read(row, tx.beginTS)
}

// Write buffers a full-row update. The payload is cloned. The write becomes
// visible to other transactions only after Commit succeeds.
func (tx *Txn) Write(tbl *table.Table, row table.RowID, payload storage.Payload) error {
	if tx.state != active {
		return ErrDone
	}
	if len(payload) != tbl.Schema().Width() {
		return fmt.Errorf("txn: payload width %d, schema width %d", len(payload), tbl.Schema().Width())
	}
	key := writeKey{tbl, row}
	if i, ok := tx.writeIdx[key]; ok {
		copy(tx.writes[i].payload, payload)
		tx.writes[i].delete = false
		return nil
	}
	tx.writeIdx[key] = len(tx.writes)
	tx.writes = append(tx.writes, writeOp{key: key, payload: payload.Clone()})
	return nil
}

// Delete buffers the removal of a row. After a successful Commit the row
// is invisible to transactions whose snapshot is at or after the commit;
// earlier snapshots still see it (a tombstone version is installed, not a
// physical removal). Deleting an absent row is an error.
func (tx *Txn) Delete(tbl *table.Table, row table.RowID) error {
	if tx.state != active {
		return ErrDone
	}
	if _, ok := tx.Read(tbl, row); !ok {
		return fmt.Errorf("txn: delete of absent row %d", row)
	}
	key := writeKey{tbl, row}
	if i, ok := tx.writeIdx[key]; ok {
		tx.writes[i].delete = true
		return nil
	}
	tx.writeIdx[key] = len(tx.writes)
	tx.writes = append(tx.writes, writeOp{
		key:     key,
		payload: tbl.Schema().NewPayload(),
		delete:  true,
	})
	return nil
}

// UpdateCol reads the row, applies fn to column col, and buffers the
// result — the common read-modify-write step of OLTP workloads.
func (tx *Txn) UpdateCol(tbl *table.Table, row table.RowID, col int, fn func(old uint64) uint64) error {
	p, ok := tx.Read(tbl, row)
	if !ok {
		return fmt.Errorf("txn: row %d not visible", row)
	}
	p[col] = fn(p[col])
	return tx.Write(tbl, row, p)
}

// Insert buffers a new row for tbl; it is appended with the commit
// timestamp when the transaction commits. The new RowID is available from
// InsertedRows after Commit.
func (tx *Txn) Insert(tbl *table.Table, payload storage.Payload) error {
	if tx.state != active {
		return ErrDone
	}
	if len(payload) != tbl.Schema().Width() {
		return fmt.Errorf("txn: payload width %d, schema width %d", len(payload), tbl.Schema().Width())
	}
	tx.inserts = append(tx.inserts, insertOp{tbl: tbl, payload: payload.Clone()})
	return nil
}

// InsertedRows returns the RowIDs assigned to this transaction's inserts,
// in Insert order. Valid only after a successful Commit.
func (tx *Txn) InsertedRows() []table.RowID { return tx.inserted }

// settle moves the transaction out of the active state exactly once,
// releasing its snapshot pin so the GC watermark can advance past it.
func (tx *Txn) settle(st txnState) {
	if tx.state == active {
		tx.m.UnpinSnapshot(tx.beginTS)
	}
	tx.state = st
}

// Abort discards all buffered writes.
func (tx *Txn) Abort() {
	if tx.state == active {
		tx.settle(aborted)
	}
}

// Commit atomically installs the write set. The protocol is two-phase:
// first every written row gets an invisible pending version (Begin = InfTS)
// installed with a CAS — failing if any row has a newer committed version
// than the snapshot or a pending version from another transaction — then a
// commit timestamp is drawn and every pending version is published. On
// conflict, already-installed pending versions are unwound and ErrConflict
// is returned; the transaction is finished either way.
func (tx *Txn) Commit() error {
	if tx.state != active {
		return ErrDone
	}
	// Deterministic install order keeps conflict behaviour reproducible.
	order := make([]int, len(tx.writes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := tx.writes[order[a]], tx.writes[order[b]]
		if wa.key.tbl != wb.key.tbl {
			return wa.key.tbl.Name() < wb.key.tbl.Name()
		}
		return wa.key.row < wb.key.row
	})

	installed := make([]*storage.Record, 0, len(tx.writes))
	chains := make([]*storage.VersionChain, 0, len(tx.writes))
	unwind := func() {
		for i := len(installed) - 1; i >= 0; i-- {
			chains[i].Unwind(installed[i])
		}
	}
	for _, i := range order {
		w := tx.writes[i]
		chain := w.key.tbl.Chain(w.key.row)
		if chain == nil {
			unwind()
			tx.settle(aborted)
			return fmt.Errorf("txn: row %d vanished", w.key.row)
		}
		head := chain.Head()
		if head != nil {
			if head.Begin() == storage.InfTS {
				// In-flight version from another transaction (or an
				// uber-transaction's iterative record).
				unwind()
				tx.settle(aborted)
				return ErrConflict
			}
			if head.Begin() > tx.beginTS {
				// Someone committed after our snapshot: first committer won.
				unwind()
				tx.settle(aborted)
				return ErrConflict
			}
		}
		pending := storage.NewRecord(0, w.payload)
		pending.Deleted = w.delete
		pending.SetBegin(storage.InfTS)
		if !chain.Install(head, pending) {
			unwind()
			tx.settle(aborted)
			return ErrConflict
		}
		installed = append(installed, pending)
		chains = append(chains, chain)
	}

	tx.m.PublishAt(func(commitTS storage.Timestamp) {
		for _, rec := range installed {
			rec.Publish(commitTS)
		}
		// One mutation note per distinct written table, inside the publish
		// critical section (inserts bump via Append below).
		var last *table.Table
		for _, i := range order {
			if tbl := tx.writes[i].key.tbl; tbl != last {
				tbl.NoteMutation()
				last = tbl
			}
		}
		for _, ins := range tx.inserts {
			row, err := ins.tbl.Append(commitTS, ins.payload)
			if err != nil {
				// Inserts were validated at buffer time; failure here means
				// a schema change mid-flight, which tables do not support.
				panic(fmt.Sprintf("txn: insert failed at commit: %v", err))
			}
			tx.inserted = append(tx.inserted, row)
		}
	})
	tx.settle(committed)
	return nil
}

package txn

import (
	"math/rand"
	"testing"

	"db4ml/internal/table"
)

// Model-based test: a long random stream of single-threaded transactions
// (reads, writes, deletes, inserts, aborts) is applied both to the real
// engine and to a plain map oracle. Because execution is sequential, every
// commit must succeed and the visible state must match the oracle exactly
// after every transaction.
func TestRandomWorkloadMatchesOracle(t *testing.T) {
	m := NewManager()
	tbl := table.New("T", table.MustSchema(
		table.Column{Name: "ID", Type: table.Int64},
		table.Column{Name: "V", Type: table.Float64},
	))
	oracle := map[table.RowID]float64{}
	var rows []table.RowID

	rng := rand.New(rand.NewSource(99))
	const txns = 600
	for i := 0; i < txns; i++ {
		tx := m.Begin()
		shadow := map[table.RowID]*float64{} // this txn's pending view (nil = deleted)
		var inserts []float64
		ops := rng.Intn(6) + 1
		for o := 0; o < ops; o++ {
			switch op := rng.Intn(10); {
			case op < 4 && len(rows) > 0: // read
				r := rows[rng.Intn(len(rows))]
				p, ok := tx.Read(tbl, r)
				want, exists := oracle[r]
				if sh, pending := shadow[r]; pending {
					if sh == nil {
						exists = false
					} else {
						want, exists = *sh, true
					}
				}
				if ok != exists {
					t.Fatalf("txn %d: Read(%d) ok=%v, oracle exists=%v", i, r, ok, exists)
				}
				if ok && p.Float64(1) != want {
					t.Fatalf("txn %d: Read(%d) = %v, oracle %v", i, r, p.Float64(1), want)
				}
			case op < 7 && len(rows) > 0: // write
				r := rows[rng.Intn(len(rows))]
				if _, ok := tx.Read(tbl, r); !ok {
					continue // deleted; writing would resurrect, skip for clarity
				}
				v := rng.Float64() * 100
				p := tbl.Schema().NewPayload()
				p.SetInt64(0, int64(r))
				p.SetFloat64(1, v)
				if err := tx.Write(tbl, r, p); err != nil {
					t.Fatalf("txn %d: write: %v", i, err)
				}
				vv := v
				shadow[r] = &vv
			case op < 8 && len(rows) > 0: // delete
				r := rows[rng.Intn(len(rows))]
				if _, ok := tx.Read(tbl, r); !ok {
					continue
				}
				if err := tx.Delete(tbl, r); err != nil {
					t.Fatalf("txn %d: delete: %v", i, err)
				}
				shadow[r] = nil
			default: // insert
				v := rng.Float64() * 100
				p := tbl.Schema().NewPayload()
				p.SetFloat64(1, v)
				if err := tx.Insert(tbl, p); err != nil {
					t.Fatalf("txn %d: insert: %v", i, err)
				}
				inserts = append(inserts, v)
			}
		}
		if rng.Intn(5) == 0 {
			tx.Abort()
			continue // oracle unchanged
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("txn %d: sequential commit failed: %v", i, err)
		}
		for r, sh := range shadow {
			if sh == nil {
				delete(oracle, r)
			} else {
				oracle[r] = *sh
			}
		}
		for k, r := range tx.InsertedRows() {
			oracle[r] = inserts[k]
			rows = append(rows, r)
		}

		// Full-state check against the oracle via a fresh snapshot.
		check := m.Begin()
		seen := 0
		for _, r := range rows {
			p, ok := check.Read(tbl, r)
			want, exists := oracle[r]
			if ok != exists {
				t.Fatalf("after txn %d: row %d visible=%v oracle=%v", i, r, ok, exists)
			}
			if ok {
				seen++
				if p.Float64(1) != want {
					t.Fatalf("after txn %d: row %d = %v, oracle %v", i, r, p.Float64(1), want)
				}
			}
		}
		if seen != len(oracle) {
			t.Fatalf("after txn %d: %d visible rows, oracle has %d", i, seen, len(oracle))
		}
	}
	if len(rows) == 0 {
		t.Fatal("workload never inserted anything")
	}
}

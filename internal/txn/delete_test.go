package txn

import (
	"errors"
	"testing"

	"db4ml/internal/storage"
	"db4ml/internal/table"
)

func TestDeleteVisibility(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 3, 100)
	before := m.Begin() // snapshot with the row alive
	tx := m.Begin()
	if err := tx.Delete(tbl, 1); err != nil {
		t.Fatal(err)
	}
	// Read-your-deletes.
	if _, ok := tx.Read(tbl, 1); ok {
		t.Fatal("deleted row readable inside the deleting transaction")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Earlier snapshot still sees the row.
	if _, ok := before.Read(tbl, 1); !ok {
		t.Fatal("pre-delete snapshot lost the row")
	}
	// New snapshots do not.
	if _, ok := m.Begin().Read(tbl, 1); ok {
		t.Fatal("deleted row visible to later snapshot")
	}
	// Scan skips it too.
	count := 0
	tbl.Scan(m.Stable(), func(_ table.RowID, _ storage.Payload) bool {
		count++
		return true
	})
	if count != 2 {
		t.Fatalf("scan visited %d rows after delete, want 2", count)
	}
}

func TestDeleteAbsentRow(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	tx := m.Begin()
	if err := tx.Delete(tbl, 42); err == nil {
		t.Fatal("delete of absent row accepted")
	}
	// Double delete within one transaction: second must fail (row gone
	// from this transaction's view).
	tx2 := m.Begin()
	if err := tx2.Delete(tbl, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Delete(tbl, 0); err == nil {
		t.Fatal("second delete of same row accepted")
	}
}

func TestDeleteConflict(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	t1 := m.Begin()
	t2 := m.Begin()
	if err := t1.Delete(tbl, 0); err != nil {
		t.Fatal(err)
	}
	p, _ := t2.Read(tbl, 0)
	p.SetFloat64(1, 5)
	if err := t2.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("write over concurrent delete = %v, want conflict", err)
	}
}

func TestWriteAfterDeleteInSameTxnResurrects(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	tx := m.Begin()
	if err := tx.Delete(tbl, 0); err != nil {
		t.Fatal(err)
	}
	p := tbl.Schema().NewPayload()
	p.SetInt64(0, 0)
	p.SetFloat64(1, 7)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Begin().Read(tbl, 0)
	if !ok || got.Float64(1) != 7 {
		t.Fatalf("resurrected row = (%v, %v)", got, ok)
	}
}

func TestDeleteAbortLeavesRow(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	tx := m.Begin()
	if err := tx.Delete(tbl, 0); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if _, ok := m.Begin().Read(tbl, 0); !ok {
		t.Fatal("aborted delete removed the row")
	}
}

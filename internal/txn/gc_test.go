package txn

import (
	"testing"

	"db4ml/internal/table"
)

// commitUpdate commits one balance update on row 0, advancing the stable
// timestamp by one version.
func commitUpdate(t *testing.T, m *Manager, tbl *table.Table, v float64) {
	t.Helper()
	tx := m.Begin()
	p, _ := tx.Read(tbl, 0)
	p.SetFloat64(1, v)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSafeWatermarkTracksActiveSnapshots(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 0)
	if m.ActiveSnapshots() != 0 {
		t.Fatalf("fresh manager has %d pins", m.ActiveSnapshots())
	}
	if m.SafeWatermark() != m.Stable() {
		t.Fatal("idle watermark should be Stable")
	}

	reader := m.Begin()
	pinTS := reader.BeginTS()
	if m.ActiveSnapshots() != 1 {
		t.Fatalf("pins = %d after Begin, want 1", m.ActiveSnapshots())
	}
	// Stable advances past the pin; the watermark must not follow.
	commitUpdate(t, m, tbl, 1)
	commitUpdate(t, m, tbl, 2)
	if m.Stable() <= pinTS {
		t.Fatal("stable did not advance")
	}
	if w := m.SafeWatermark(); w != pinTS {
		t.Fatalf("SafeWatermark = %d with a reader pinned at %d", w, pinTS)
	}

	// A second reader at the newer snapshot does not move the minimum.
	reader2 := m.Begin()
	if w := m.SafeWatermark(); w != pinTS {
		t.Fatalf("SafeWatermark = %d, want oldest pin %d", w, pinTS)
	}
	reader.Abort()
	if w := m.SafeWatermark(); w != reader2.BeginTS() {
		t.Fatalf("SafeWatermark = %d after oldest unpinned, want %d", w, reader2.BeginTS())
	}
	reader2.Abort()
	if m.ActiveSnapshots() != 0 || m.SafeWatermark() != m.Stable() {
		t.Fatal("pins not drained after all readers settled")
	}
}

func TestCommitAndAbortBothUnpin(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 2, 0)

	tx := m.Begin()
	p, _ := tx.Read(tbl, 0)
	p.SetFloat64(1, 1)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.ActiveSnapshots() != 0 {
		t.Fatal("commit leaked a snapshot pin")
	}

	// A failed commit (write-write conflict) must unpin too.
	a, b := m.Begin(), m.Begin()
	for _, tx := range []*Txn{a, b} {
		p, _ := tx.Read(tbl, 1)
		p.SetFloat64(1, p.Float64(1)+1)
		if err := tx.Write(tbl, 1, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != ErrConflict {
		t.Fatalf("second committer got %v, want ErrConflict", err)
	}
	if m.ActiveSnapshots() != 0 {
		t.Fatal("aborted commit leaked a snapshot pin")
	}
}

// TestOverEagerWatermarkWouldBreakPinnedRead is the conviction test for the
// watermark contract: pruning at the raw stable timestamp — ignoring the
// active-snapshot registry — destroys a version a pinned reader still
// needs, while pruning at SafeWatermark (what internal/gc actually does)
// keeps every pinned read intact. The registry is not an optimization; it
// is the difference between GC and data corruption.
func TestOverEagerWatermarkWouldBreakPinnedRead(t *testing.T) {
	setup := func() (*Manager, *table.Table, *Txn) {
		m := NewManager()
		tbl := accountsTable(t, m, 1, 0)
		commitUpdate(t, m, tbl, 10)
		reader := m.Begin() // pins the snapshot where Balance = 10
		commitUpdate(t, m, tbl, 20)
		commitUpdate(t, m, tbl, 30)
		return m, tbl, reader
	}

	// Clamped path: prune at SafeWatermark — the pinned read survives.
	m, tbl, reader := setup()
	if dropped := tbl.Prune(m.SafeWatermark()); dropped != 1 {
		t.Fatalf("safe prune dropped %d, want 1 (the pre-pin version)", dropped)
	}
	if p, ok := reader.Read(tbl, 0); !ok || p.Float64(1) != 10 {
		t.Fatalf("pinned read after safe prune = (%v, %v), want 10", p, ok)
	}
	reader.Abort()

	// Over-eager path: prune at Stable while the reader is still pinned —
	// this is exactly what the registry exists to prevent.
	m, tbl, reader = setup()
	tbl.Prune(m.Stable())
	if _, ok := reader.Read(tbl, 0); ok {
		t.Fatal("over-eager prune left the pinned version intact; conviction test is vacuous")
	}
	reader.Abort()
}

// TestTombstoneChurnChainsEmptied: an insert/delete churn loop must not
// retain one tombstone per dead row forever — after a prune at the safe
// watermark every churned chain is fully reclaimed.
func TestTombstoneChurnChainsEmptied(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 0) // row 0 stays live throughout
	const churn = 25
	for i := 0; i < churn; i++ {
		tx := m.Begin()
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(1000+i))
		if err := tx.Insert(tbl, p); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		row := tx.InsertedRows()[0]
		tx = m.Begin()
		if err := tx.Delete(tbl, row); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	versions := func() int {
		n := 0
		for r := 0; r < tbl.NumRows(); r++ {
			n += tbl.Chain(table.RowID(r)).Len()
		}
		return n
	}
	// Before GC: every churned row retains insert + tombstone.
	if v := versions(); v != 1+2*churn {
		t.Fatalf("pre-prune versions = %d, want %d", v, 1+2*churn)
	}
	dropped := tbl.Prune(m.SafeWatermark())
	if v := versions(); v != 1 {
		t.Fatalf("post-prune versions = %d (dropped %d), want only the live row's", v, dropped)
	}
	// Deleted rows stay deleted, the live row stays readable.
	tx := m.Begin()
	if _, ok := tx.Read(tbl, 1); ok {
		t.Fatal("reclaimed row became visible again")
	}
	if p, ok := tx.Read(tbl, 0); !ok || p.Float64(1) != 0 {
		t.Fatalf("live row read = (%v, %v)", p, ok)
	}
	tx.Abort()
}

package txn

import (
	"errors"
	"sync"
	"testing"

	"db4ml/internal/storage"
	"db4ml/internal/table"
)

func accountsTable(t *testing.T, m *Manager, n int, balance float64) *table.Table {
	t.Helper()
	tbl := table.New("Account", table.MustSchema(
		table.Column{Name: "ID", Type: table.Int64},
		table.Column{Name: "Balance", Type: table.Float64},
	))
	m.PublishAt(func(ts storage.Timestamp) {
		for i := 0; i < n; i++ {
			p := tbl.Schema().NewPayload()
			p.SetInt64(0, int64(i))
			p.SetFloat64(1, balance)
			if _, err := tbl.Append(ts, p); err != nil {
				t.Fatal(err)
			}
		}
	})
	return tbl
}

func TestReadCommittedSnapshot(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 3, 100)
	tx := m.Begin()
	p, ok := tx.Read(tbl, 1)
	if !ok || p.Float64(1) != 100 {
		t.Fatalf("Read = (%v, %v)", p, ok)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("read-only commit failed: %v", err)
	}
}

func TestReadYourWrites(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	tx := m.Begin()
	p, _ := tx.Read(tbl, 0)
	p.SetFloat64(1, 55)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	got, ok := tx.Read(tbl, 0)
	if !ok || got.Float64(1) != 55 {
		t.Fatalf("read-your-writes = (%v, %v)", got, ok)
	}
	// Other transactions do not see the buffered write.
	other := m.Begin()
	theirs, _ := other.Read(tbl, 0)
	if theirs.Float64(1) != 100 {
		t.Fatalf("buffered write leaked: %v", theirs)
	}
}

func TestCommitPublishesAtomically(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 2, 100)
	// Transfer 40 from account 0 to account 1.
	tx := m.Begin()
	from, _ := tx.Read(tbl, 0)
	to, _ := tx.Read(tbl, 1)
	from.SetFloat64(1, from.Float64(1)-40)
	to.SetFloat64(1, to.Float64(1)+40)
	if err := tx.Write(tbl, 0, from); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(tbl, 1, to); err != nil {
		t.Fatal(err)
	}
	before := m.Begin() // snapshot taken before the commit
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after := m.Begin()
	b0, _ := before.Read(tbl, 0)
	b1, _ := before.Read(tbl, 1)
	if b0.Float64(1) != 100 || b1.Float64(1) != 100 {
		t.Fatalf("earlier snapshot observes later commit: %v %v", b0, b1)
	}
	a0, _ := after.Read(tbl, 0)
	a1, _ := after.Read(tbl, 1)
	if a0.Float64(1) != 60 || a1.Float64(1) != 140 {
		t.Fatalf("transfer lost: %v %v", a0, a1)
	}
	if a0.Float64(1)+a1.Float64(1) != 200 {
		t.Fatal("money created or destroyed")
	}
}

func TestFirstCommitterWins(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	t1 := m.Begin()
	t2 := m.Begin()
	p1, _ := t1.Read(tbl, 0)
	p2, _ := t2.Read(tbl, 0)
	p1.SetFloat64(1, 1)
	p2.SetFloat64(1, 2)
	if err := t1.Write(tbl, 0, p1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(tbl, 0, p2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("first committer failed: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer got %v, want ErrConflict", err)
	}
	final, _ := m.Begin().Read(tbl, 0)
	if final.Float64(1) != 1 {
		t.Fatalf("lost update: balance %v", final.Float64(1))
	}
}

func TestConflictUnwindsPartialInstall(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 2, 100)
	// t2 will conflict on row 1 only; its pending install on row 0 must be
	// unwound so t3 can still write row 0.
	t1 := m.Begin()
	t2 := m.Begin()
	p, _ := t1.Read(tbl, 1)
	p.SetFloat64(1, 500)
	if err := t1.Write(tbl, 1, p); err != nil {
		t.Fatal(err)
	}
	q0, _ := t2.Read(tbl, 0)
	q1, _ := t2.Read(tbl, 1)
	q0.SetFloat64(1, 7)
	q1.SetFloat64(1, 7)
	if err := t2.Write(tbl, 0, q0); err != nil {
		t.Fatal(err)
	}
	if err := t2.Write(tbl, 1, q1); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("t2 commit = %v, want conflict", err)
	}
	t3 := m.Begin()
	r, _ := t3.Read(tbl, 0)
	r.SetFloat64(1, 42)
	if err := t3.Write(tbl, 0, r); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatalf("row 0 still blocked after unwind: %v", err)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	tx := m.Begin()
	p, _ := tx.Read(tbl, 0)
	p.SetFloat64(1, 0)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Fatalf("commit after abort = %v, want ErrDone", err)
	}
	got, _ := m.Begin().Read(tbl, 0)
	if got.Float64(1) != 100 {
		t.Fatal("aborted write became visible")
	}
}

func TestUseAfterFinish(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	tx := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write(tbl, 0, tbl.Schema().NewPayload()); !errors.Is(err, ErrDone) {
		t.Fatalf("Write after commit = %v", err)
	}
	if _, ok := tx.Read(tbl, 0); ok {
		t.Fatal("Read after commit succeeded")
	}
	if err := tx.Insert(tbl, tbl.Schema().NewPayload()); !errors.Is(err, ErrDone) {
		t.Fatalf("Insert after commit = %v", err)
	}
}

func TestInsertVisibleAfterCommit(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	tx := m.Begin()
	p := tbl.Schema().NewPayload()
	p.SetInt64(0, 99)
	p.SetFloat64(1, 5)
	if err := tx.Insert(tbl, p); err != nil {
		t.Fatal(err)
	}
	concurrent := m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows := tx.InsertedRows()
	if len(rows) != 1 {
		t.Fatalf("InsertedRows = %v", rows)
	}
	if _, ok := concurrent.Read(tbl, rows[0]); ok {
		t.Fatal("concurrent snapshot sees later insert")
	}
	got, ok := m.Begin().Read(tbl, rows[0])
	if !ok || got.Int64(0) != 99 {
		t.Fatalf("inserted row = (%v, %v)", got, ok)
	}
}

func TestWriteWidthValidation(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	tx := m.Begin()
	if err := tx.Write(tbl, 0, storage.Payload{1}); err == nil {
		t.Fatal("Write with wrong width accepted")
	}
	if err := tx.Insert(tbl, storage.Payload{1, 2, 3}); err == nil {
		t.Fatal("Insert with wrong width accepted")
	}
}

func TestUpdateCol(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	tx := m.Begin()
	err := tx.UpdateCol(tbl, 0, 1, func(old uint64) uint64 {
		p := storage.Payload{old}
		p.SetFloat64(0, p.Float64(0)+1)
		return p[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Begin().Read(tbl, 0)
	if got.Float64(1) != 101 {
		t.Fatalf("UpdateCol result = %v", got.Float64(1))
	}
	tx2 := m.Begin()
	if err := tx2.UpdateCol(tbl, 42, 1, func(v uint64) uint64 { return v }); err == nil {
		t.Fatal("UpdateCol on absent row succeeded")
	}
}

func TestConcurrentIncrementsSerialize(t *testing.T) {
	m := NewManager()
	tbl := accountsTable(t, m, 1, 0)
	const workers = 8
	const eachAdds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < eachAdds; i++ {
				for { // retry on conflict
					tx := m.Begin()
					p, ok := tx.Read(tbl, 0)
					if !ok {
						t.Error("row unreadable")
						return
					}
					p.SetFloat64(1, p.Float64(1)+1)
					if err := tx.Write(tbl, 0, p); err != nil {
						t.Error(err)
						return
					}
					if err := tx.Commit(); err == nil {
						break
					} else if !errors.Is(err, ErrConflict) {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	final, _ := m.Begin().Read(tbl, 0)
	if got := final.Float64(1); got != workers*eachAdds {
		t.Fatalf("counter = %v, want %d (updates lost or duplicated)", got, workers*eachAdds)
	}
}

func TestOLTPBlockedByInFlightIterative(t *testing.T) {
	// A normal transaction writing a row that an uber-transaction holds an
	// in-flight iterative version on must abort, not read or overwrite
	// in-flight ML state.
	m := NewManager()
	tbl := accountsTable(t, m, 1, 100)
	if err := tbl.StartIterative(m.Stable(), 1, nil); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	p, _ := tx.Read(tbl, 0)
	if p.Float64(1) != 100 {
		t.Fatalf("OLTP read saw in-flight iterative state: %v", p)
	}
	p.SetFloat64(1, 1)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("commit against in-flight iterative version = %v, want conflict", err)
	}
}

// Package itx implements DB4ML's programming model for iterative
// transactions (Section 2.3, Listing 1). Users add an ML algorithm by
// implementing the Sub interface — one iteration of the algorithm per
// Execute call — and an uber-transaction (Uber) that installs iterative
// records on the tables the algorithm updates, spawns the sub-transactions,
// and commits the converged result globally.
//
// Sub-transactions interact with ML-table state exclusively through their
// Ctx, which enforces the uber-transaction's isolation level: it tracks
// reads for bounded-staleness validation, buffers writes, and installs them
// on commit with the cheapest mechanism the level allows (Section 5.1).
package itx

import "fmt"

// Action is the verdict of a sub-transaction's Validate call (the T_Action
// enum of Listing 1).
type Action int

const (
	// Commit publishes the iteration's updates to the sibling
	// sub-transactions and re-schedules the sub-transaction.
	Commit Action = iota
	// Rollback discards the iteration's updates and re-schedules the
	// sub-transaction to repeat the iteration.
	Rollback
	// Done publishes the updates and retires the sub-transaction: it has
	// converged.
	Done
)

func (a Action) String() string {
	switch a {
	case Commit:
		return "COMMIT"
	case Rollback:
		return "ROLLBACK"
	case Done:
		return "DONE"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Sub is an iterative sub-transaction. Implementations keep their
// transaction-local state (tx_state in the paper) in their own fields:
// Begin is called exactly once before the first iteration and typically
// caches row handles and algorithm parameters; Execute runs one iteration;
// Validate decides what happens to the iteration's updates.
//
// A Sub is always driven by a single worker at a time, so its fields need
// no synchronization of their own; all shared state must go through the
// Ctx.
type Sub interface {
	Begin(ctx *Ctx)
	Execute(ctx *Ctx)
	Validate(ctx *Ctx) Action
}

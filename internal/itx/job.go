package itx

import (
	"sync/atomic"
)

// ForceStop says why a sub-transaction must be retired before it converged
// on its own, if at all.
type ForceStop int

const (
	// ForceNone: the sub-transaction may keep iterating.
	ForceNone ForceStop = iota
	// ForceIterations: the committed-iteration cap was reached (the
	// paper's "pre-set and fixed number of iterations").
	ForceIterations
	// ForceAttempts: the finalized-attempt cap was reached — the livelock
	// backstop for sub-transactions that perpetually roll back.
	ForceAttempts
	// ForceDeadline: the job's wall-clock deadline passed — the cooperative
	// half of the supervision layer's deadline enforcement. The watchdog
	// flips a flag at expiry and every finalize observes it, so a huge
	// batch retires mid-pass without the hot path ever reading the clock.
	ForceDeadline
)

// JobState is the per-job lifecycle state of one uber-transaction's
// sub-transactions while a shared executor drives them: how many are still
// live, and the caps that force-retire stragglers. One executor pool runs
// many jobs concurrently; each job tracks its own convergence through its
// own JobState, so one uber-transaction finishing never depends on another.
type JobState struct {
	maxIterations uint64
	maxAttempts   uint64
	expired       atomic.Bool // set by the watchdog when the deadline passes
	live          atomic.Int64
}

// NewJobState tracks subs live sub-transactions under the given caps
// (0 disables a cap).
func NewJobState(subs int64, maxIterations, maxAttempts uint64) *JobState {
	s := &JobState{maxIterations: maxIterations, maxAttempts: maxAttempts}
	s.live.Store(subs)
	return s
}

// ExpireDeadline marks the job's wall-clock budget as spent: every
// subsequent ShouldForceStop call answers ForceDeadline. The watchdog
// calls it at expiry; keeping the hot path to one atomic bool load (no
// time.Now) costs only the watchdog's poll interval in deadline precision.
func (s *JobState) ExpireDeadline() { s.expired.Store(true) }

// Live returns the number of not-yet-retired sub-transactions.
func (s *JobState) Live() int64 { return s.live.Load() }

// Converged reports whether every sub-transaction has been retired.
func (s *JobState) Converged() bool { return s.live.Load() == 0 }

// Retire removes n sub-transactions from the live count and returns the
// new count.
func (s *JobState) Retire(n int64) int64 { return s.live.Add(-n) }

// ShouldForceStop checks a sub-transaction's context against the job's
// caps: the iteration cap counts committed iterations only, the attempt
// cap also counts rollbacks.
func (s *JobState) ShouldForceStop(c *Ctx) ForceStop {
	if s.maxIterations > 0 && c.Iteration() >= s.maxIterations {
		return ForceIterations
	}
	if s.maxAttempts > 0 && c.Attempts() >= s.maxAttempts {
		return ForceAttempts
	}
	if s.expired.Load() {
		return ForceDeadline
	}
	return ForceNone
}

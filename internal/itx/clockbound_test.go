package itx

import (
	"testing"

	"db4ml/internal/isolation"
	"db4ml/internal/storage"
)

func clockOpts(s uint64) isolation.Options {
	return isolation.Options{
		Level:            isolation.BoundedStaleness,
		Staleness:        s,
		SingleWriterHint: true,
		ClockBound:       true,
	}
}

// A fast sub-transaction reading a lagging record must roll back once its
// own clock runs more than S ahead of the read snapshot.
func TestClockBoundThrottlesFastReader(t *testing.T) {
	lagging := storage.NewIterativeRecord(storage.Payload{0}, 1)
	mine := storage.NewIterativeRecord(storage.Payload{0}, 1)
	ctx := NewCtx(clockOpts(2), 0)
	out := make(storage.Payload, 1)
	// Iterations 1 and 2 commit fine (own clock within S of the lagging
	// record's iteration 0).
	for i := 0; i < 2; i++ {
		ctx.Read(lagging, out)
		ctx.Write(mine, storage.Payload{uint64(i)})
		if _, rolledBack := ctx.Finalize(Commit); rolledBack {
			t.Fatalf("iteration %d rolled back within clock bound", i)
		}
	}
	// Iteration 3 would commit clock 3 from a clock-0 read: violation.
	ctx.Read(lagging, out)
	ctx.Write(mine, storage.Payload{9})
	if _, rolledBack := ctx.Finalize(Commit); !rolledBack {
		t.Fatal("commit 3 iterations ahead of a clock-0 read succeeded")
	}
	if ctx.Iteration() != 2 {
		t.Fatalf("rolled-back iteration advanced the clock: %d", ctx.Iteration())
	}
	// Once the lagging record catches up, the retry commits.
	lagging.InstallRelaxed(storage.Payload{5})
	ctx.Read(lagging, out)
	ctx.Write(mine, storage.Payload{9})
	if _, rolledBack := ctx.Finalize(Commit); rolledBack {
		t.Fatal("retry after catch-up still rolled back")
	}
}

// Without ClockBound the same pattern never rolls back (the overwrite rule
// alone is vacuous for single-writer records).
func TestNoClockBoundNeverThrottlesSingleWriter(t *testing.T) {
	lagging := storage.NewIterativeRecord(storage.Payload{0}, 1)
	mine := storage.NewIterativeRecord(storage.Payload{0}, 1)
	opts := clockOpts(2)
	opts.ClockBound = false
	ctx := NewCtx(opts, 0)
	out := make(storage.Payload, 1)
	for i := 0; i < 20; i++ {
		ctx.Read(lagging, out)
		ctx.Write(mine, storage.Payload{uint64(i)})
		if _, rolledBack := ctx.Finalize(Commit); rolledBack {
			t.Fatalf("iteration %d rolled back without clock bound", i)
		}
	}
}

// Reading one's own record never violates the clock rule: its iteration
// trails the committing clock by exactly one.
func TestClockBoundSelfReadsAlwaysFresh(t *testing.T) {
	mine := storage.NewIterativeRecord(storage.Payload{0}, 1)
	ctx := NewCtx(clockOpts(1), 0)
	out := make(storage.Payload, 1)
	for i := 0; i < 10; i++ {
		ctx.Read(mine, out)
		ctx.Write(mine, storage.Payload{uint64(i)})
		if _, rolledBack := ctx.Finalize(Commit); rolledBack {
			t.Fatalf("self-read iteration %d rolled back", i)
		}
	}
}

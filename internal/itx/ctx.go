package itx

import (
	"runtime"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/isolation"
	"db4ml/internal/obs"
	"db4ml/internal/storage"
	"db4ml/internal/trace"
)

// Recorder receives the isolation-relevant history of a sub-transaction:
// every mediated read, the per-read staleness evidence weighed at commit
// time, every snapshot install, and each attempt's outcome. internal/check
// implements it to validate the isolation contracts post-hoc; a nil
// Recorder (the default) costs the hot path one pointer nil-check per site.
// Implementations are called concurrently from every worker.
type Recorder interface {
	// ObserveRead: the sub-transaction read snapshot readIter of rec while
	// the record's iteration counter stood at counter.
	ObserveRead(worker, sub int, attempt uint64, rec *storage.IterativeRecord, readIter, counter uint64)
	// ObserveValidation: at finalize time, the read of rec at readIter was
	// validated against the record's then-current counter latest; committed
	// says whether the iteration's writes were installed.
	ObserveValidation(worker, sub int, iter uint64, rec *storage.IterativeRecord, readIter, latest uint64, committed bool)
	// ObserveInstall: the iteration installed a snapshot on rec, advancing
	// its counter to counter.
	ObserveInstall(worker, sub int, iter uint64, rec *storage.IterativeRecord, counter uint64)
	// ObserveOutcome: one finalize finished with the given verdict;
	// committed is false for rollbacks (user-requested or staleness).
	ObserveOutcome(worker, sub int, iter uint64, action Action, committed bool)
}

// Ctx is the per-sub-transaction execution context. It mediates every
// access to iterative records according to the uber-transaction's isolation
// level, and it is reused across the sub-transaction's iterations so the
// hot path allocates nothing.
type Ctx struct {
	opts      isolation.Options
	worker    int
	sub       int
	iteration uint64
	attempts  uint64
	obs       *obs.Observer  // nil when telemetry is disabled
	rec       Recorder       // nil when history recording is disabled
	chaos     chaos.Injector // nil when fault injection is disabled
	tracer    *trace.Tracer  // nil when span tracing is disabled
	job       uint64         // pool job id, for trace event attribution

	reads     []readEntry
	latests   []uint64                         // per-read counters sampled at validation (recording only)
	readIdx   map[*storage.IterativeRecord]int // rec -> index into reads
	rowWrites []rowWrite
	colWrites []colWrite
	arena     []uint64 // backing storage for buffered row writes

	// bumped tracks which records already had their IterCounter advanced
	// this iteration, so interleaved column-write runs (A,B,A) bump each
	// record exactly once. The linear scan covers the common few-record
	// case; bumpIdx takes over past bumpedScanMax distinct records.
	bumped  []*storage.IterativeRecord
	bumpIdx map[*storage.IterativeRecord]struct{}
}

// bumpedScanMax is the crossover from linear scan to map lookup for the
// per-iteration counter-bump dedup set.
const bumpedScanMax = 16

type readEntry struct {
	rec  *storage.IterativeRecord
	iter uint64
}

type rowWrite struct {
	rec    *storage.IterativeRecord
	off, n int // slice of arena
}

type colWrite struct {
	rec  *storage.IterativeRecord
	col  int
	bits uint64
}

// NewCtx builds a context enforcing opts for a sub-transaction run by the
// given worker.
func NewCtx(opts isolation.Options, worker int) *Ctx {
	return &Ctx{opts: opts, worker: worker}
}

// Worker returns the id of the worker currently driving this
// sub-transaction.
func (c *Ctx) Worker() int { return c.worker }

// SetWorker is called by the executor when a different worker picks the
// sub-transaction's batch up.
func (c *Ctx) SetWorker(w int) { c.worker = w }

// Iteration returns the number of successfully committed iterations of
// this sub-transaction so far (0 during the first attempt).
func (c *Ctx) Iteration() uint64 { return c.iteration }

// Attempts returns the number of finalized iteration attempts, committed or
// rolled back. Unlike Iteration it advances under perpetual rollback, which
// is what the executor's livelock backstop keys on.
func (c *Ctx) Attempts() uint64 { return c.attempts }

// SetObserver attaches a telemetry observer; the context reports rollback
// causes (user-requested vs. staleness violation) through it. nil disables.
func (c *Ctx) SetObserver(o *obs.Observer) { c.obs = o }

// SetSub tags the context with the sub-transaction's index within its job,
// so recorded history events are attributable. The executor sets it at
// submission.
func (c *Ctx) SetSub(i int) { c.sub = i }

// Sub returns the sub-transaction's index within its job.
func (c *Ctx) Sub() int { return c.sub }

// SetRecorder attaches a history recorder (see Recorder). nil disables.
func (c *Ctx) SetRecorder(r Recorder) { c.rec = r }

// SetChaos attaches a fault injector consulted at the context's Install
// point (between staleness validation and write install). nil disables.
func (c *Ctx) SetChaos(inj chaos.Injector) { c.chaos = inj }

// SetTracer attaches a span tracer; the context marks the chaos faults it
// absorbs at its Install point as instants attributed to the given job.
// nil disables.
func (c *Ctx) SetTracer(t *trace.Tracer, job uint64) { c.tracer, c.job = t, job }

// Options returns the isolation options in force.
func (c *Ctx) Options() isolation.Options { return c.opts }

// Read copies the record's current snapshot into out under the
// uber-transaction's isolation level:
//
//   - Synchronous: a relaxed read; the executor's barrier guarantees that
//     the only installed snapshots are from the previous iteration.
//   - Asynchronous: a relaxed read of the newest (possibly torn) state.
//   - BoundedStaleness: a consistent seqlock read (or a relaxed read under
//     the single-writer hint), recorded so staleness can be validated at
//     commit.
//
// It returns the iteration number of the snapshot read.
func (c *Ctx) Read(rec *storage.IterativeRecord, out storage.Payload) uint64 {
	switch c.opts.Level {
	case isolation.BoundedStaleness:
		var iter uint64
		if c.opts.SingleWriterHint {
			iter = rec.ReadRelaxed(out)
		} else {
			iter = rec.ReadRecent(out)
		}
		c.reads = append(c.reads, readEntry{rec, iter})
		if c.rec != nil {
			c.rec.ObserveRead(c.worker, c.sub, c.iteration, rec, iter, rec.Latest())
		}
		return iter
	default:
		iter := rec.ReadRelaxed(out)
		if c.rec != nil {
			c.rec.ObserveRead(c.worker, c.sub, c.iteration, rec, iter, rec.Latest())
		}
		return iter
	}
}

// ReadCol reads a single column without copying the whole row — the SGD
// hot path. Under bounded staleness the access is recorded like Read.
func (c *Ctx) ReadCol(rec *storage.IterativeRecord, col int) uint64 {
	bits := rec.LoadRelaxed(col)
	if c.opts.Level == isolation.BoundedStaleness {
		// Stamp the read with the counter observed *after* the load: an
		// install landing between the two then yields a stamp newer than
		// the value, never older — stamping first would charge the already-
		// observed install as staleness and roll the iteration back
		// spuriously.
		c.noteRead(rec, rec.Latest())
	}
	if c.rec != nil {
		latest := rec.Latest()
		c.rec.ObserveRead(c.worker, c.sub, c.iteration, rec, latest, latest)
	}
	return bits
}

// noteRead records a bounded-staleness column read, keeping at most one
// entry per record (with the oldest observed iteration — the strictest
// bound, equivalent to validating every entry separately). Column loops
// that sweep one record (SGD over the model row) hit the last-entry fast
// path; arbitrary interleavings fall back to the index map. Either way
// stalenessViolated is O(distinct records), not O(column reads).
func (c *Ctx) noteRead(rec *storage.IterativeRecord, iter uint64) {
	if n := len(c.reads); n > 0 && c.reads[n-1].rec == rec {
		if iter < c.reads[n-1].iter {
			c.reads[n-1].iter = iter
		}
		return
	}
	if c.readIdx == nil {
		c.readIdx = make(map[*storage.IterativeRecord]int)
	}
	if j, ok := c.readIdx[rec]; ok {
		if iter < c.reads[j].iter {
			c.reads[j].iter = iter
		}
		return
	}
	c.readIdx[rec] = len(c.reads)
	c.reads = append(c.reads, readEntry{rec, iter})
}

// Write buffers a full-row update of rec. The payload is copied into the
// context's arena; it is installed when the iteration commits.
func (c *Ctx) Write(rec *storage.IterativeRecord, payload storage.Payload) {
	off := len(c.arena)
	c.arena = append(c.arena, payload...)
	c.rowWrites = append(c.rowWrites, rowWrite{rec: rec, off: off, n: len(payload)})
}

// WriteCol updates a single column. Under the asynchronous level the store
// is installed immediately, Hogwild!-style, so sibling sub-transactions
// (and later samples of the same iteration) observe it right away; under
// the other levels it is buffered until commit.
func (c *Ctx) WriteCol(rec *storage.IterativeRecord, col int, bits uint64) {
	if c.opts.Level == isolation.Asynchronous {
		rec.StoreRelaxed(col, bits)
		return
	}
	c.colWrites = append(c.colWrites, colWrite{rec: rec, col: col, bits: bits})
}

// Finalize ends the current iteration attempt with the sub-transaction's
// validate verdict. It reports whether the sub-transaction converged and
// whether the iteration was rolled back (either requested by the user or
// forced by a staleness violation, Section 4.1). A rolled-back iteration
// leaves no trace and the sub-transaction repeats it.
func (c *Ctx) Finalize(action Action) (converged, rolledBack bool) {
	c.attempts++
	skipCheck := false
	if c.chaos != nil {
		f := c.chaos.Perturb(chaos.Install, c.worker)
		if f != chaos.None {
			c.tracer.Instant(c.worker, trace.KindFault, c.job, int64(f))
		}
		switch f {
		case chaos.Stall:
			time.Sleep(chaos.StallDuration)
		case chaos.Preempt:
			runtime.Gosched()
		case chaos.OmitStalenessCheck:
			skipCheck = true
		}
	}
	if action == Rollback {
		if c.obs != nil {
			c.obs.Inc(c.worker, obs.UserRollbacks)
		}
		if c.rec != nil {
			c.rec.ObserveOutcome(c.worker, c.sub, c.iteration, action, false)
		}
		c.clear()
		return false, true
	}
	if c.opts.Level == isolation.BoundedStaleness {
		violated := c.stalenessViolated()
		if skipCheck {
			// Chaos contract breaker (test-only): commit regardless. The
			// recorded validation evidence keeps the true counters, so the
			// post-hoc checker must flag the violation this commits.
			violated = false
		}
		if violated {
			if c.obs != nil {
				c.obs.Inc(c.worker, obs.StalenessRollbacks)
			}
			c.recordValidations(false)
			if c.rec != nil {
				c.rec.ObserveOutcome(c.worker, c.sub, c.iteration, action, false)
			}
			c.clear()
			return false, true
		}
	}
	c.recordValidations(true)
	c.installWrites()
	if c.rec != nil {
		c.rec.ObserveOutcome(c.worker, c.sub, c.iteration, action, true)
	}
	c.clear()
	c.iteration++
	return action == Done, false
}

// stalenessViolated reports whether any value read this iteration violates
// the staleness bound: superseded by more than S newer snapshots between
// read and commit, or — under ClockBound — older than the committing
// sub-transaction's own iteration minus S (the SSP clock rule). When a
// recorder is attached it also captures, per read, the counter value the
// decision was based on (into c.latests, aligned with c.reads), so the
// recorded evidence is exactly what validation saw — re-sampling later
// would race with concurrent installs and accuse correct commits.
func (c *Ctx) stalenessViolated() bool {
	s := c.opts.Staleness
	own := c.iteration + 1 // iteration being committed
	record := c.rec != nil
	if record {
		c.latests = c.latests[:0]
	}
	violated := false
	for _, r := range c.reads {
		latest := r.rec.Latest()
		if record {
			c.latests = append(c.latests, latest)
		}
		if latest > r.iter && latest-r.iter > s {
			violated = true
		}
		if c.opts.ClockBound && own > r.iter+s {
			violated = true
		}
		if violated && !record {
			return true
		}
	}
	return violated
}

// recordValidations emits one validation event per tracked read with the
// counter evidence captured by stalenessViolated. No-op without a recorder
// or outside bounded staleness (c.reads stays empty on the other levels).
func (c *Ctx) recordValidations(committed bool) {
	if c.rec == nil || len(c.reads) == 0 || len(c.latests) != len(c.reads) {
		return
	}
	for i, r := range c.reads {
		c.rec.ObserveValidation(c.worker, c.sub, c.iteration, r.rec, r.iter, c.latests[i], committed)
	}
}

// installWrites publishes the buffered writes using the cheapest mechanism
// the isolation level allows (Section 5.1): relaxed single-version stores
// for synchronous (the barrier provides the ordering) and asynchronous
// levels as well as bounded staleness under the single-writer hint; the
// general multi-version seqlock install otherwise.
func (c *Ctx) installWrites() {
	general := c.opts.Level == isolation.BoundedStaleness && !c.opts.SingleWriterHint
	for _, w := range c.rowWrites {
		data := c.arena[w.off : w.off+w.n]
		// The relaxed fast path only exists for single-version records;
		// multi-version records always take the seqlock install so their
		// snapshot array stays consistent.
		var iter uint64
		if general || w.rec.NumVersions() > 1 {
			iter = w.rec.Install(data)
		} else {
			iter = w.rec.InstallRelaxed(data)
		}
		if c.rec != nil {
			c.rec.ObserveInstall(c.worker, c.sub, c.iteration, w.rec, iter)
		}
	}
	for i, w := range c.colWrites {
		w.rec.StoreRelaxed(w.col, w.bits)
		// Bump each record's counter once per iteration, not once per
		// column, so staleness is counted in iterations. Consecutive writes
		// to the same record (a column sweep) are handled by run detection
		// alone; when the record shows up again after other records in
		// between (A,B,A), the bumped set prevents a second bump, which
		// would double-charge readers' staleness budgets.
		if i+1 < len(c.colWrites) && c.colWrites[i+1].rec == w.rec {
			continue
		}
		if c.firstBump(w.rec) {
			iter := w.rec.AddCounter()
			if c.rec != nil {
				c.rec.ObserveInstall(c.worker, c.sub, c.iteration, w.rec, iter)
			}
		}
	}
}

// firstBump records rec in the per-iteration bump set and reports whether
// it was absent before (i.e. whether the caller should bump its counter).
func (c *Ctx) firstBump(rec *storage.IterativeRecord) bool {
	if c.bumpIdx != nil {
		if _, ok := c.bumpIdx[rec]; ok {
			return false
		}
		c.bumpIdx[rec] = struct{}{}
		return true
	}
	for _, r := range c.bumped {
		if r == rec {
			return false
		}
	}
	c.bumped = append(c.bumped, rec)
	if len(c.bumped) > bumpedScanMax {
		c.bumpIdx = make(map[*storage.IterativeRecord]struct{}, 2*bumpedScanMax)
		for _, r := range c.bumped {
			c.bumpIdx[r] = struct{}{}
		}
	}
	return true
}

func (c *Ctx) clear() {
	c.reads = c.reads[:0]
	c.latests = c.latests[:0]
	if len(c.readIdx) > 0 {
		clear(c.readIdx)
	}
	c.rowWrites = c.rowWrites[:0]
	c.colWrites = c.colWrites[:0]
	c.arena = c.arena[:0]
	c.bumped = c.bumped[:0]
	if len(c.bumpIdx) > 0 {
		clear(c.bumpIdx)
	}
}

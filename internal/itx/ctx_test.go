package itx

import (
	"testing"

	"db4ml/internal/isolation"
	"db4ml/internal/obs"
	"db4ml/internal/storage"
)

func asyncOpts() isolation.Options {
	return isolation.Options{Level: isolation.Asynchronous}
}

func boundedOpts(s uint64, hint bool) isolation.Options {
	return isolation.Options{Level: isolation.BoundedStaleness, Staleness: s, SingleWriterHint: hint}
}

func TestActionString(t *testing.T) {
	if Commit.String() != "COMMIT" || Rollback.String() != "ROLLBACK" || Done.String() != "DONE" {
		t.Error("Action.String mismatch")
	}
	if Action(9).String() == "" {
		t.Error("unknown Action has empty String")
	}
}

func TestWriteBufferedUntilFinalize(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 1)
	ctx := NewCtx(asyncOpts(), 0)
	ctx.Write(rec, storage.Payload{42})
	out := make(storage.Payload, 1)
	if rec.ReadRelaxed(out); out[0] != 0 {
		t.Fatal("buffered write visible before Finalize")
	}
	converged, rolledBack := ctx.Finalize(Commit)
	if converged || rolledBack {
		t.Fatalf("Finalize(Commit) = (%v, %v)", converged, rolledBack)
	}
	if rec.ReadRelaxed(out); out[0] != 42 {
		t.Fatal("committed write not installed")
	}
	if ctx.Iteration() != 1 {
		t.Fatalf("Iteration = %d after one commit", ctx.Iteration())
	}
}

func TestRollbackDiscardsWrites(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{7}, 1)
	ctx := NewCtx(asyncOpts(), 0)
	ctx.Write(rec, storage.Payload{99})
	ctx.WriteCol(rec, 0, 100) // async column writes install immediately...
	converged, rolledBack := ctx.Finalize(Rollback)
	if converged || !rolledBack {
		t.Fatalf("Finalize(Rollback) = (%v, %v)", converged, rolledBack)
	}
	out := make(storage.Payload, 1)
	rec.ReadRelaxed(out)
	// ...so the async column store is visible (Hogwild!-style), but the
	// buffered row write must be gone.
	if out[0] != 100 {
		t.Fatalf("state after rollback = %d, want only the immediate column store (100)", out[0])
	}
	if ctx.Iteration() != 0 {
		t.Fatal("rolled-back iteration counted")
	}
}

func TestFinalizeDoneConverges(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 1)
	ctx := NewCtx(asyncOpts(), 0)
	ctx.Write(rec, storage.Payload{5})
	converged, rolledBack := ctx.Finalize(Done)
	if !converged || rolledBack {
		t.Fatalf("Finalize(Done) = (%v, %v)", converged, rolledBack)
	}
	out := make(storage.Payload, 1)
	if rec.ReadRelaxed(out); out[0] != 5 {
		t.Fatal("Done did not install the final write")
	}
}

func TestAsyncWriteColImmediate(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0, 0}, 1)
	ctx := NewCtx(asyncOpts(), 0)
	ctx.WriteCol(rec, 1, 77)
	if rec.LoadRelaxed(1) != 77 {
		t.Fatal("async WriteCol not immediately visible")
	}
}

func TestSyncWriteColBuffered(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0, 0}, 1)
	ctx := NewCtx(isolation.Options{Level: isolation.Synchronous}, 0)
	ctx.WriteCol(rec, 1, 77)
	if rec.LoadRelaxed(1) != 0 {
		t.Fatal("sync WriteCol visible before Finalize")
	}
	ctx.Finalize(Commit)
	if rec.LoadRelaxed(1) != 77 {
		t.Fatal("sync WriteCol not installed at Finalize")
	}
	if rec.Latest() != 1 {
		t.Fatalf("iteration counter = %d after column commit, want 1", rec.Latest())
	}
}

func TestColWritesBumpCounterOncePerRecord(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0, 0, 0}, 1)
	ctx := NewCtx(isolation.Options{Level: isolation.Synchronous}, 0)
	ctx.WriteCol(rec, 0, 1)
	ctx.WriteCol(rec, 1, 2)
	ctx.WriteCol(rec, 2, 3)
	ctx.Finalize(Commit)
	if rec.Latest() != 1 {
		t.Fatalf("counter = %d after 3 column writes in one iteration, want 1", rec.Latest())
	}
}

func TestBoundedStalenessWithinBoundCommits(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 8)
	target := storage.NewIterativeRecord(storage.Payload{0}, 8)
	ctx := NewCtx(boundedOpts(3, false), 0)
	out := make(storage.Payload, 1)
	ctx.Read(rec, out)
	// Exactly S newer snapshots appear before commit: still within bound.
	for i := 0; i < 3; i++ {
		rec.Install(storage.Payload{uint64(i)})
	}
	ctx.Write(target, storage.Payload{1})
	_, rolledBack := ctx.Finalize(Commit)
	if rolledBack {
		t.Fatal("commit rolled back although staleness == S")
	}
	if target.Latest() != 1 {
		t.Fatal("write not installed")
	}
}

func TestBoundedStalenessViolationRollsBack(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 8)
	target := storage.NewIterativeRecord(storage.Payload{0}, 8)
	ctx := NewCtx(boundedOpts(3, false), 0)
	out := make(storage.Payload, 1)
	ctx.Read(rec, out)
	for i := 0; i < 4; i++ { // S+1 newer snapshots: violation
		rec.Install(storage.Payload{uint64(i)})
	}
	ctx.Write(target, storage.Payload{1})
	converged, rolledBack := ctx.Finalize(Commit)
	if converged || !rolledBack {
		t.Fatalf("Finalize under staleness violation = (%v, %v), want rollback", converged, rolledBack)
	}
	if target.Latest() != 0 {
		t.Fatal("rolled-back write was installed")
	}
	// The next, fresh iteration commits cleanly (reads re-tracked).
	ctx.Read(rec, out)
	ctx.Write(target, storage.Payload{2})
	if _, rolledBack := ctx.Finalize(Commit); rolledBack {
		t.Fatal("retry after staleness rollback failed")
	}
}

func TestBoundedStalenessReadColTracked(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{5}, 8)
	ctx := NewCtx(boundedOpts(1, false), 0)
	if got := ctx.ReadCol(rec, 0); got != 5 {
		t.Fatalf("ReadCol = %d", got)
	}
	rec.Install(storage.Payload{6})
	rec.Install(storage.Payload{7})
	if _, rolledBack := ctx.Finalize(Commit); !rolledBack {
		t.Fatal("ReadCol access not tracked for staleness")
	}
}

func TestBoundedStalenessSingleWriterHintUsesSingleVersion(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{9}, 1)
	ctx := NewCtx(boundedOpts(2, true), 0)
	out := make(storage.Payload, 1)
	iter := ctx.Read(rec, out)
	if iter != 0 || out[0] != 9 {
		t.Fatalf("hinted read = (iter %d, %v)", iter, out)
	}
	ctx.Write(rec, storage.Payload{10})
	if _, rolledBack := ctx.Finalize(Commit); rolledBack {
		t.Fatal("single-writer commit rolled back")
	}
	if rec.ReadRelaxed(out); out[0] != 10 {
		t.Fatal("hinted install missing")
	}
}

func TestSyncReadSeesPreviousRoundOnly(t *testing.T) {
	// Under the sync level the context uses relaxed reads; the engine's
	// barrier provides the ordering. Here we just check reads return the
	// installed snapshot.
	rec := storage.NewIterativeRecord(storage.Payload{3}, 1)
	ctx := NewCtx(isolation.Options{Level: isolation.Synchronous}, 0)
	out := make(storage.Payload, 1)
	if iter := ctx.Read(rec, out); iter != 0 || out[0] != 3 {
		t.Fatalf("sync read = (iter %d, %v)", iter, out)
	}
}

func TestCtxWorkerBookkeeping(t *testing.T) {
	ctx := NewCtx(asyncOpts(), 4)
	if ctx.Worker() != 4 {
		t.Fatal("Worker() wrong")
	}
	ctx.SetWorker(7)
	if ctx.Worker() != 7 {
		t.Fatal("SetWorker ignored")
	}
	if ctx.Options().Level != isolation.Asynchronous {
		t.Fatal("Options() wrong")
	}
}

func TestAttemptsCountRollbacksToo(t *testing.T) {
	ctx := NewCtx(asyncOpts(), 0)
	ctx.Finalize(Commit)
	ctx.Finalize(Rollback)
	ctx.Finalize(Rollback)
	ctx.Finalize(Commit)
	if ctx.Iteration() != 2 {
		t.Fatalf("Iteration = %d, want 2 (commits only)", ctx.Iteration())
	}
	if ctx.Attempts() != 4 {
		t.Fatalf("Attempts = %d, want 4 (commits and rollbacks)", ctx.Attempts())
	}
}

func TestAttemptsCountStalenessRollbacks(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 8)
	ctx := NewCtx(boundedOpts(1, false), 0)
	out := make(storage.Payload, 1)
	ctx.Read(rec, out)
	rec.Install(storage.Payload{1})
	rec.Install(storage.Payload{2})
	if _, rolledBack := ctx.Finalize(Commit); !rolledBack {
		t.Fatal("expected staleness rollback")
	}
	if ctx.Attempts() != 1 || ctx.Iteration() != 0 {
		t.Fatalf("Attempts = %d, Iteration = %d after staleness rollback", ctx.Attempts(), ctx.Iteration())
	}
}

func TestReadColDedupsPerRecord(t *testing.T) {
	a := storage.NewIterativeRecord(storage.Payload{1, 2, 3}, 8)
	b := storage.NewIterativeRecord(storage.Payload{4, 5, 6}, 8)
	ctx := NewCtx(boundedOpts(10, false), 0)
	// A column sweep over one record must collapse to a single entry (the
	// SGD hot path: one model row, thousands of column reads).
	for i := 0; i < 100; i++ {
		ctx.ReadCol(a, i%3)
	}
	if len(ctx.reads) != 1 {
		t.Fatalf("reads = %d entries after 100 column reads of one record, want 1", len(ctx.reads))
	}
	// Interleaved records dedup through the index map, not just the
	// last-entry fast path.
	for i := 0; i < 50; i++ {
		ctx.ReadCol(a, 0)
		ctx.ReadCol(b, 0)
	}
	if len(ctx.reads) != 2 {
		t.Fatalf("reads = %d entries for 2 interleaved records, want 2", len(ctx.reads))
	}
	// The dedup state resets with the iteration.
	ctx.Finalize(Commit)
	ctx.ReadCol(a, 0)
	if len(ctx.reads) != 1 {
		t.Fatalf("reads = %d after Finalize + one read, want 1", len(ctx.reads))
	}
}

func TestReadColDedupKeepsOldestIteration(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 8)
	ctx := NewCtx(boundedOpts(1, false), 0)
	ctx.ReadCol(rec, 0) // stamped with iteration 0
	rec.Install(storage.Payload{1})
	rec.Install(storage.Payload{2})
	ctx.ReadCol(rec, 0) // stamped with iteration 2, merged into the entry
	if len(ctx.reads) != 1 {
		t.Fatalf("reads = %d entries, want 1", len(ctx.reads))
	}
	if ctx.reads[0].iter != 0 {
		t.Fatalf("deduped entry iter = %d, want 0 (the oldest observed — the strictest bound)", ctx.reads[0].iter)
	}
	// The merged entry still triggers the violation the first read earned.
	if _, rolledBack := ctx.Finalize(Commit); !rolledBack {
		t.Fatal("dedup lost the staleness violation of the older read")
	}
}

// TestReadColStampsAfterLoad: the staleness stamp is taken after the value
// load, so installs that land before the read cannot be double-counted
// against the bound. (The old order — stamp, then load — charged an
// install racing between the two as staleness the reader never suffered.)
func TestReadColStampsAfterLoad(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0}, 8)
	// Advance through the column path (StoreRelaxed + AddCounter), the same
	// way SGD publishes model updates that ReadCol observes.
	for i := 1; i <= 5; i++ {
		rec.StoreRelaxed(0, uint64(i))
		rec.AddCounter()
	}
	ctx := NewCtx(boundedOpts(0, false), 0) // S = 0: any post-read install violates
	if got := ctx.ReadCol(rec, 0); got != 5 {
		t.Fatalf("ReadCol = %d, want the latest install", got)
	}
	if ctx.reads[0].iter != 5 {
		t.Fatalf("read stamped iteration %d, want 5 (the state actually observed)", ctx.reads[0].iter)
	}
	if _, rolledBack := ctx.Finalize(Commit); rolledBack {
		t.Fatal("spurious staleness rollback: no install happened after the read")
	}
}

func TestCtxObserverCountsRollbackCauses(t *testing.T) {
	o := obs.New()
	o.BeginRun(1)
	rec := storage.NewIterativeRecord(storage.Payload{0}, 8)
	ctx := NewCtx(boundedOpts(0, false), 0)
	ctx.SetObserver(o)
	ctx.Finalize(Rollback) // user rollback
	ctx.ReadCol(rec, 0)
	rec.Install(storage.Payload{1})
	if _, rolledBack := ctx.Finalize(Commit); !rolledBack {
		t.Fatal("expected staleness rollback")
	}
	ctx.Finalize(Commit) // clean commit: no rollback counters
	snap := o.Snapshot()
	if snap.Counters.UserRollbacks != 1 || snap.Counters.StalenessRollbacks != 1 {
		t.Fatalf("rollback split = user %d / staleness %d, want 1 / 1",
			snap.Counters.UserRollbacks, snap.Counters.StalenessRollbacks)
	}
}

func TestCtxArenaReuseAcrossIterations(t *testing.T) {
	rec := storage.NewIterativeRecord(storage.Payload{0, 0}, 1)
	ctx := NewCtx(asyncOpts(), 0)
	for i := uint64(1); i <= 100; i++ {
		ctx.Write(rec, storage.Payload{i, i * 2})
		ctx.Finalize(Commit)
	}
	out := make(storage.Payload, 2)
	rec.ReadRelaxed(out)
	if out[0] != 100 || out[1] != 200 {
		t.Fatalf("final state = %v", out)
	}
	if ctx.Iteration() != 100 {
		t.Fatalf("Iteration = %d", ctx.Iteration())
	}
}

// Regression: interleaved column writes to the same record (A,B,A) must
// bump its IterCounter once per iteration, not once per write run —
// double bumps inflate the staleness every reader is charged with.
func TestInstallWritesBumpOncePerRecordPerIteration(t *testing.T) {
	a := storage.NewIterativeRecord(storage.Payload{0}, 1)
	b := storage.NewIterativeRecord(storage.Payload{0}, 1)
	ctx := NewCtx(boundedOpts(4, true), 0)
	ctx.WriteCol(a, 0, 1)
	ctx.WriteCol(b, 0, 2)
	ctx.WriteCol(a, 0, 3)
	if _, rolledBack := ctx.Finalize(Commit); rolledBack {
		t.Fatal("unexpected rollback")
	}
	if a.Latest() != 1 {
		t.Fatalf("interleaved writes bumped A's counter %d times in one iteration", a.Latest())
	}
	if b.Latest() != 1 {
		t.Fatalf("B's counter = %d, want 1", b.Latest())
	}
	// The dedup set is per iteration: the next iteration bumps again, and
	// a consecutive run still counts as one bump.
	ctx.WriteCol(a, 0, 4)
	ctx.WriteCol(a, 0, 5)
	ctx.Finalize(Commit)
	if a.Latest() != 2 {
		t.Fatalf("A's counter = %d after two iterations, want 2", a.Latest())
	}
}

// The dedup must hold past the linear-scan crossover into the map path.
func TestInstallWritesBumpDedupManyRecords(t *testing.T) {
	const n = 3 * bumpedScanMax
	recs := make([]*storage.IterativeRecord, n)
	for i := range recs {
		recs[i] = storage.NewIterativeRecord(storage.Payload{0}, 1)
	}
	ctx := NewCtx(boundedOpts(8, true), 0)
	for iter := uint64(1); iter <= 2; iter++ {
		// Two interleaved passes over every record.
		for _, rec := range recs {
			ctx.WriteCol(rec, 0, iter)
		}
		for _, rec := range recs {
			ctx.WriteCol(rec, 0, iter+10)
		}
		ctx.Finalize(Commit)
		for i, rec := range recs {
			if rec.Latest() != iter {
				t.Fatalf("iteration %d: record %d counter = %d, want %d", iter, i, rec.Latest(), iter)
			}
		}
	}
}

package itx_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
)

// scriptedSub replays a precomputed verdict plan: attempt k returns
// plan[k], and the plan always ends with Done. Because the executor must
// repeat rolled-back attempts and advance committed ones in order, the
// exact number of Execute calls, commits, and rollbacks of the whole job is
// known in advance — the accounting properties the tests below assert.
type scriptedSub struct {
	plan  []itx.Action
	calls atomic.Int64 // Execute calls so far
	over  *atomic.Bool // set when executed past its Done
}

func (s *scriptedSub) Begin(*itx.Ctx) {}

func (s *scriptedSub) Execute(*itx.Ctx) {
	if int(s.calls.Add(1)) > len(s.plan) {
		s.over.Store(true)
	}
}

func (s *scriptedSub) Validate(*itx.Ctx) itx.Action {
	n := int(s.calls.Load())
	if n > len(s.plan) {
		return itx.Done // already over; flagged via s.over
	}
	return s.plan[n-1]
}

// randomPlan builds a verdict sequence of iters committed iterations, each
// preceded by 0–3 rollbacks, with the last commit replaced by Done.
func randomPlan(rng *rand.Rand) []itx.Action {
	iters := 1 + rng.Intn(6)
	var plan []itx.Action
	for i := 0; i < iters; i++ {
		for r := rng.Intn(4); r > 0; r-- {
			plan = append(plan, itx.Rollback)
		}
		plan = append(plan, itx.Commit)
	}
	plan[len(plan)-1] = itx.Done
	return plan
}

// TestScriptedAccountingProperty: for randomized rollback/commit plans,
// batch sizes, and isolation levels, the job's final stats must equal the
// plan totals exactly — every attempt executed once (no double-count),
// every Done honored (no lost convergence, no execution past it), every
// rollback repeated exactly once.
func TestScriptedAccountingProperty(t *testing.T) {
	const nSubs = 17 // prime: every batch size yields a ragged final batch
	for _, level := range isolation.Levels() {
		for _, batch := range []int{1, 3, 7, 64} {
			for seed := int64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%s/batch%d/seed%d", level, batch, seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(seed))
					var over atomic.Bool
					subs := make([]itx.Sub, nSubs)
					var wantExec, wantCommits, wantRollbacks uint64
					for i := range subs {
						plan := randomPlan(rng)
						subs[i] = &scriptedSub{plan: plan, over: &over}
						wantExec += uint64(len(plan))
						for _, a := range plan {
							if a == itx.Rollback {
								wantRollbacks++
							} else {
								wantCommits++ // Commit and the final Done both install
							}
						}
					}
					stats, err := exec.Run(
						exec.Config{Workers: 4, BatchSize: batch},
						isolation.Options{Level: level, Staleness: 2},
						subs, nil)
					if err != nil {
						t.Fatal(err)
					}
					if over.Load() {
						t.Fatal("a sub-transaction was executed after returning Done")
					}
					if stats.Executions != wantExec {
						t.Errorf("executions = %d, want %d", stats.Executions, wantExec)
					}
					if stats.Commits != wantCommits {
						t.Errorf("commits = %d, want %d", stats.Commits, wantCommits)
					}
					if stats.Rollbacks != wantRollbacks {
						t.Errorf("rollbacks = %d, want %d", stats.Rollbacks, wantRollbacks)
					}
					if stats.ForcedStops != 0 {
						t.Errorf("forced stops = %d on converging plans", stats.ForcedStops)
					}
					for i, s := range subs {
						ss := s.(*scriptedSub)
						if got, want := int(ss.calls.Load()), len(ss.plan); got != want {
							t.Errorf("sub %d executed %d attempts, want %d", i, got, want)
						}
					}
				})
			}
		}
	}
}

// fixedVerdictSub returns the same verdict forever — the workload shape the
// executor's caps exist for.
type fixedVerdictSub struct {
	verdict itx.Action
	calls   atomic.Int64
}

func (s *fixedVerdictSub) Begin(*itx.Ctx)               {}
func (s *fixedVerdictSub) Execute(*itx.Ctx)             { s.calls.Add(1) }
func (s *fixedVerdictSub) Validate(*itx.Ctx) itx.Action { return s.verdict }

// TestAttemptCapAccounting: perpetually rolling-back sub-transactions are
// retired by the attempt cap after exactly MaxAttempts executions each —
// all charged as rollbacks, none as commits.
func TestAttemptCapAccounting(t *testing.T) {
	const nSubs, cap = 9, 7
	for _, level := range []isolation.Level{isolation.Asynchronous, isolation.BoundedStaleness} {
		subs := make([]itx.Sub, nSubs)
		for i := range subs {
			subs[i] = &fixedVerdictSub{verdict: itx.Rollback}
		}
		stats, err := exec.Run(
			exec.Config{Workers: 4, BatchSize: 2, MaxAttempts: cap},
			isolation.Options{Level: level, Staleness: 2},
			subs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ForcedStops != nSubs {
			t.Errorf("%s: forced stops = %d, want %d", level, stats.ForcedStops, nSubs)
		}
		if stats.Executions != nSubs*cap || stats.Rollbacks != nSubs*cap {
			t.Errorf("%s: executions/rollbacks = %d/%d, want %d each",
				level, stats.Executions, stats.Rollbacks, nSubs*cap)
		}
		if stats.Commits != 0 {
			t.Errorf("%s: %d commits from all-rollback plans", level, stats.Commits)
		}
		for i, s := range subs {
			if got := s.(*fixedVerdictSub).calls.Load(); got != cap {
				t.Errorf("%s: sub %d executed %d attempts, want %d", level, i, got, cap)
			}
		}
	}
}

// TestIterationCapAccounting: never-converging (always-Commit)
// sub-transactions are retired by the committed-iteration cap after exactly
// MaxIterations commits each, and a 50% rollback mix doubles the attempts
// without disturbing the committed count.
func TestIterationCapAccounting(t *testing.T) {
	const nSubs, cap = 9, 5
	subs := make([]itx.Sub, nSubs)
	for i := range subs {
		subs[i] = &fixedVerdictSub{verdict: itx.Commit}
	}
	stats, err := exec.Run(
		exec.Config{Workers: 4, BatchSize: 2, MaxIterations: cap},
		isolation.Options{Level: isolation.Asynchronous},
		subs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ForcedStops != nSubs || stats.Commits != nSubs*cap || stats.Rollbacks != 0 {
		t.Errorf("always-commit: stops/commits/rollbacks = %d/%d/%d, want %d/%d/0",
			stats.ForcedStops, stats.Commits, stats.Rollbacks, nSubs, nSubs*cap)
	}

	// Alternating rollback/commit: the iteration cap ignores rollbacks, so
	// each sub finalizes 2×cap attempts, half committed, half rolled back.
	alt := make([]itx.Sub, nSubs)
	var over atomic.Bool
	for i := range alt {
		plan := make([]itx.Action, 0, 4*cap)
		for k := 0; k < 2*cap; k++ {
			plan = append(plan, itx.Rollback, itx.Commit)
		}
		alt[i] = &scriptedSub{plan: plan, over: &over}
	}
	stats, err = exec.Run(
		exec.Config{Workers: 4, BatchSize: 2, MaxIterations: cap},
		isolation.Options{Level: isolation.Asynchronous},
		alt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ForcedStops != nSubs || stats.Commits != nSubs*cap || stats.Rollbacks != nSubs*cap {
		t.Errorf("alternating: stops/commits/rollbacks = %d/%d/%d, want %d/%d/%d",
			stats.ForcedStops, stats.Commits, stats.Rollbacks, nSubs, nSubs*cap, nSubs*cap)
	}
}

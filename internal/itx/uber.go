package itx

import (
	"errors"
	"fmt"

	"db4ml/internal/isolation"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

// ErrUberDone is returned when a committed or aborted uber-transaction is
// used again.
var ErrUberDone = errors.New("itx: uber-transaction already finished")

// Uber is the top-level transaction of a running ML algorithm (Section
// 2.1). It fixes the snapshot all sub-transactions start from, owns the
// iterative records installed on the attached tables, and makes the final
// result visible to the rest of the DBMS atomically when it commits.
type Uber struct {
	mgr      *txn.Manager
	opts     isolation.Options
	snapshot storage.Timestamp
	attached []attachment
	done     bool
	pinned   bool
}

type attachment struct {
	tbl  *table.Table
	rows []table.RowID // nil means all rows
}

// BeginUber starts an uber-transaction under the given isolation options.
// Its begin timestamp T_TB is the manager's current stable snapshot, which
// every sub-transaction inherits (Section 4.1). The snapshot is pinned in
// the manager's active-snapshot registry until Commit or Abort, so the
// version garbage collector can never reclaim the versions the
// uber-transaction seeds and restores from.
func BeginUber(mgr *txn.Manager, opts isolation.Options) (*Uber, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Uber{mgr: mgr, opts: opts, snapshot: mgr.PinSnapshot(), pinned: true}, nil
}

// release drops the uber-transaction's snapshot pin exactly once.
func (u *Uber) release() {
	if u.pinned {
		u.pinned = false
		u.mgr.UnpinSnapshot(u.snapshot)
	}
}

// Snapshot returns the uber-transaction's begin timestamp T_TB.
func (u *Uber) Snapshot() storage.Timestamp { return u.snapshot }

// Options returns the isolation options shared by all sub-transactions.
func (u *Uber) Options() isolation.Options { return u.opts }

// DefaultVersions returns the number of intermediate snapshot slots each
// iterative record needs under the uber-transaction's isolation level: one
// for the single-version fast paths, S+2 for general bounded staleness (a
// reader must find some snapshot in [IterCounter-S, IterCounter] even while
// the newest slot is mid-write).
func (u *Uber) DefaultVersions() int {
	if u.opts.Level == isolation.BoundedStaleness && !u.opts.SingleWriterHint {
		return int(u.opts.Staleness) + 2
	}
	return 1
}

// Attach installs iterative records (with nVersions snapshot slots; use
// DefaultVersions unless an experiment dictates otherwise) on the given
// rows of tbl — all rows when rows is nil — seeded from the
// uber-transaction's snapshot. The records stay invisible to every other
// transaction until Commit.
func (u *Uber) Attach(tbl *table.Table, rows []table.RowID, nVersions int) error {
	if u.done {
		return ErrUberDone
	}
	if err := tbl.StartIterative(u.snapshot, nVersions, rows); err != nil {
		return err
	}
	u.attached = append(u.attached, attachment{tbl: tbl, rows: rows})
	return nil
}

// Commit publishes the latest intermediate snapshot of every attached row
// as a new global version and returns the commit timestamp T_TE. Call it
// only after every sub-transaction converged.
func (u *Uber) Commit() (storage.Timestamp, error) {
	if u.done {
		return 0, ErrUberDone
	}
	var firstErr error
	ts := u.mgr.PublishAt(func(ts storage.Timestamp) {
		for _, a := range u.attached {
			if err := a.tbl.CommitIterative(ts, a.rows); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("itx: commit of table %s: %w", a.tbl.Name(), err)
			}
		}
	})
	// Release the snapshot pin even on a partial-commit error: the publish
	// already happened, and a stuck pin would freeze the GC watermark.
	u.release()
	if firstErr != nil {
		return 0, firstErr
	}
	u.done = true
	return ts, nil
}

// Manager returns the transaction manager this uber-transaction publishes
// through — the shard coordinator prepares it for two-phase commit.
func (u *Uber) Manager() *txn.Manager { return u.mgr }

// Prepare is the uber-transaction's vote in a coordinated two-phase
// commit: it verifies the transaction can still commit and locks its
// manager for publishing (txn.Manager.Prepare). The coordinator then
// draws one commit timestamp from the shared oracle and settles every
// prepared shard with CommitPrepared, or backs out with p.Abort followed
// by u.Abort. A nil return with a nil error never happens.
func (u *Uber) Prepare() (*txn.Prepared, error) {
	if u.done {
		return nil, ErrUberDone
	}
	return u.mgr.Prepare(), nil
}

// CommitPrepared is the commit phase of a coordinated two-phase commit:
// it publishes the latest intermediate snapshot of every attached row at
// the coordinator-chosen timestamp ts under the already-held prepare
// lock. Unlike Commit, the timestamp is imposed, not drawn — every shard
// of one distributed uber-transaction publishes at the same ts, which is
// what makes the distributed commit atomic in timestamp order: a reader
// snapshot either precedes every shard's publish or follows all of them.
func (u *Uber) CommitPrepared(p *txn.Prepared, ts storage.Timestamp) error {
	if u.done {
		p.Abort()
		return ErrUberDone
	}
	var firstErr error
	p.CommitAt(ts, func(ts storage.Timestamp) {
		for _, a := range u.attached {
			if err := a.tbl.CommitIterative(ts, a.rows); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("itx: commit of table %s: %w", a.tbl.Name(), err)
			}
		}
	})
	u.release()
	if firstErr != nil {
		return firstErr
	}
	u.done = true
	return nil
}

// Abort discards all in-flight iterative state, restoring every attached
// table to its pre-uber-transaction version chains.
func (u *Uber) Abort() error {
	if u.done {
		return ErrUberDone
	}
	u.release()
	for _, a := range u.attached {
		if err := a.tbl.AbortIterative(a.rows); err != nil {
			return fmt.Errorf("itx: abort of table %s: %w", a.tbl.Name(), err)
		}
	}
	u.done = true
	return nil
}

package itx

import "testing"

func TestJobStateRetire(t *testing.T) {
	s := NewJobState(3, 0, 0)
	if s.Live() != 3 || s.Converged() {
		t.Fatalf("fresh state: live=%d converged=%v", s.Live(), s.Converged())
	}
	if got := s.Retire(2); got != 1 {
		t.Fatalf("Retire(2) = %d, want 1", got)
	}
	if got := s.Retire(1); got != 0 || !s.Converged() {
		t.Fatalf("after final retire: live=%d converged=%v", got, s.Converged())
	}
}

func TestJobStateForceStopCaps(t *testing.T) {
	ctx := NewCtx(asyncOpts(), 0)

	uncapped := NewJobState(1, 0, 0)
	if got := uncapped.ShouldForceStop(ctx); got != ForceNone {
		t.Fatalf("uncapped ShouldForceStop = %v", got)
	}

	// Two committed iterations.
	for i := 0; i < 2; i++ {
		if _, rolledBack := ctx.Finalize(Commit); rolledBack {
			t.Fatal("unexpected rollback")
		}
	}
	iterCap := NewJobState(1, 2, 0)
	if got := iterCap.ShouldForceStop(ctx); got != ForceIterations {
		t.Fatalf("at iteration cap: ShouldForceStop = %v, want ForceIterations", got)
	}

	// A rollback advances attempts but not iterations, so only the attempt
	// cap sees it.
	if _, rolledBack := ctx.Finalize(Rollback); !rolledBack {
		t.Fatal("Finalize(Rollback) did not roll back")
	}
	attemptCap := NewJobState(1, 0, 3)
	if got := attemptCap.ShouldForceStop(ctx); got != ForceAttempts {
		t.Fatalf("at attempt cap: ShouldForceStop = %v, want ForceAttempts", got)
	}
	looseIterCap := NewJobState(1, 3, 0)
	if got := looseIterCap.ShouldForceStop(ctx); got != ForceNone {
		t.Fatalf("rollback counted toward iteration cap: %v", got)
	}
}

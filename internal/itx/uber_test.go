package itx

import (
	"errors"
	"testing"

	"db4ml/internal/isolation"
	"db4ml/internal/storage"
	"db4ml/internal/table"
	"db4ml/internal/txn"
)

func loadedTable(t *testing.T, m *txn.Manager, n int) *table.Table {
	t.Helper()
	tbl := table.New("Node", table.MustSchema(
		table.Column{Name: "NodeID", Type: table.Int64},
		table.Column{Name: "PR", Type: table.Float64},
	))
	m.PublishAt(func(ts storage.Timestamp) {
		for i := 0; i < n; i++ {
			p := tbl.Schema().NewPayload()
			p.SetInt64(0, int64(i))
			p.SetFloat64(1, 1.0)
			if _, err := tbl.Append(ts, p); err != nil {
				t.Fatal(err)
			}
		}
	})
	return tbl
}

func TestUberLifecycle(t *testing.T) {
	m := txn.NewManager()
	tbl := loadedTable(t, m, 4)
	u, err := BeginUber(m, isolation.Options{Level: isolation.Asynchronous})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Attach(tbl, nil, u.DefaultVersions()); err != nil {
		t.Fatal(err)
	}
	// Sub-transactions update via the iterative records.
	for i := 0; i < 4; i++ {
		rec := tbl.IterRecord(table.RowID(i))
		ctx := NewCtx(u.Options(), 0)
		p := tbl.Schema().NewPayload()
		p.SetInt64(0, int64(i))
		p.SetFloat64(1, 2.5)
		ctx.Write(rec, p)
		ctx.Finalize(Done)
	}
	// Still invisible to OLTP.
	tx := m.Begin()
	got, _ := tx.Read(tbl, 0)
	if got.Float64(1) != 1.0 {
		t.Fatalf("OLTP saw in-flight ML state: %v", got)
	}
	ts, err := u.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if ts == 0 {
		t.Fatal("commit timestamp zero")
	}
	got, _ = m.Begin().Read(tbl, 0)
	if got.Float64(1) != 2.5 {
		t.Fatalf("committed ML result missing: %v", got)
	}
	if _, err := u.Commit(); !errors.Is(err, ErrUberDone) {
		t.Fatalf("second Commit = %v", err)
	}
}

func TestUberAbortRestores(t *testing.T) {
	m := txn.NewManager()
	tbl := loadedTable(t, m, 2)
	u, _ := BeginUber(m, isolation.Options{Level: isolation.Asynchronous})
	if err := u.Attach(tbl, nil, 1); err != nil {
		t.Fatal(err)
	}
	rec := tbl.IterRecord(0)
	rec.InstallRelaxed(storage.Payload{0, 1 << 62})
	if err := u.Abort(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Begin().Read(tbl, 0)
	if got.Float64(1) != 1.0 {
		t.Fatalf("abort leaked: %v", got)
	}
	if err := u.Abort(); !errors.Is(err, ErrUberDone) {
		t.Fatalf("second Abort = %v", err)
	}
}

func TestUberRejectsInvalidOptions(t *testing.T) {
	m := txn.NewManager()
	if _, err := BeginUber(m, isolation.Options{Level: isolation.Level(42)}); err == nil {
		t.Fatal("invalid isolation level accepted")
	}
}

func TestUberAttachAfterDone(t *testing.T) {
	m := txn.NewManager()
	tbl := loadedTable(t, m, 1)
	u, _ := BeginUber(m, isolation.Options{Level: isolation.Asynchronous})
	if err := u.Attach(tbl, nil, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := u.Attach(tbl, nil, 1); !errors.Is(err, ErrUberDone) {
		t.Fatalf("Attach after commit = %v", err)
	}
}

func TestDefaultVersions(t *testing.T) {
	m := txn.NewManager()
	cases := []struct {
		opts isolation.Options
		want int
	}{
		{isolation.Options{Level: isolation.Asynchronous}, 1},
		{isolation.Options{Level: isolation.Synchronous}, 1},
		{isolation.Options{Level: isolation.BoundedStaleness, Staleness: 3}, 5},
		{isolation.Options{Level: isolation.BoundedStaleness, Staleness: 3, SingleWriterHint: true}, 1},
	}
	for _, c := range cases {
		u, err := BeginUber(m, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := u.DefaultVersions(); got != c.want {
			t.Errorf("DefaultVersions under %v = %d, want %d", c.opts.Level, got, c.want)
		}
	}
}

func TestUberSnapshotIsolatesFromLaterCommits(t *testing.T) {
	m := txn.NewManager()
	tbl := loadedTable(t, m, 1)
	u, _ := BeginUber(m, isolation.Options{Level: isolation.Asynchronous})
	// An OLTP transaction commits a new value after the uber began but
	// before Attach: the uber's snapshot must not include it.
	tx := m.Begin()
	p, _ := tx.Read(tbl, 0)
	p.SetFloat64(1, 777)
	if err := tx.Write(tbl, 0, p); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := u.Attach(tbl, nil, 1); err == nil {
		rec := tbl.IterRecord(0)
		out := make(storage.Payload, 2)
		rec.ReadRelaxed(out)
		if out.Float64(1) == 777 {
			t.Fatal("uber snapshot included a commit after T_TB")
		}
	}
	// (Attach may also legitimately fail here because the OLTP commit
	// changed the chain head; both outcomes preserve snapshot isolation.)
}

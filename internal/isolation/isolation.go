// Package isolation defines DB4ML's ML isolation levels (Section 4.2).
// They coordinate the visibility of intermediate model updates between the
// iterative sub-transactions of one uber-transaction:
//
//   - Synchronous: parallelized bulk-synchronous execution — every
//     sub-transaction of iteration k reads only snapshots of iteration k-1.
//     Implemented with a per-iteration barrier (Section 5.1), which removes
//     all version checking.
//   - Asynchronous: Hogwild!-style — read whatever is newest, install with
//     plain atomic stores, no checks. Fastest; converges for sparse
//     problems only.
//   - BoundedStaleness: reads may use any snapshot whose version lies in
//     [IterCounter-S, IterCounter]; violations detected at commit roll the
//     iteration back.
package isolation

import "fmt"

// Level selects the synchronization scheme for one uber-transaction's
// sub-transactions.
type Level int

const (
	// Synchronous runs iterations in lockstep behind a barrier.
	Synchronous Level = iota
	// Asynchronous runs with no coordination at all.
	Asynchronous
	// BoundedStaleness allows at most S intervening updates between a read
	// and the commit that used it.
	BoundedStaleness
)

func (l Level) String() string {
	switch l {
	case Synchronous:
		return "synchronous"
	case Asynchronous:
		return "asynchronous"
	case BoundedStaleness:
		return "bounded-staleness"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Levels returns every isolation level, in declaration order. Sweeps (the
// chaos harness in particular) iterate it instead of hard-coding the list.
func Levels() []Level {
	return []Level{Synchronous, Asynchronous, BoundedStaleness}
}

// Options carries the isolation configuration of one uber-transaction.
type Options struct {
	Level Level
	// Staleness is the bound S for BoundedStaleness; ignored otherwise.
	Staleness uint64
	// SingleWriterHint tells the engine that every tuple is updated by at
	// most one sub-transaction (true for PageRank, where a node's rank is
	// written only by its own sub-transaction). Under this hint bounded
	// staleness needs only a single stored version (Section 5.1), because
	// staleness can be checked from iteration counters alone.
	SingleWriterHint bool
	// ClockBound additionally enforces stale-synchronous-parallel clocks
	// under BoundedStaleness (Cipar et al., the paper's reference [7]): a
	// sub-transaction committing its own iteration k must not have read
	// any snapshot older than iteration k-S, so fast sub-transactions can
	// run at most S iterations ahead of the slowest one and roll back
	// until it catches up. This is the semantics under which bounded
	// staleness differs from asynchronous execution for single-writer
	// algorithms like PageRank (Figure 9). Only meaningful for
	// fixed-iteration runs: with convergence-based retirement, a retired
	// neighbor's clock stops and its readers would roll back forever.
	ClockBound bool
}

// Validate reports whether the combination is usable.
func (o Options) Validate() error {
	switch o.Level {
	case Synchronous, Asynchronous, BoundedStaleness:
		return nil
	default:
		return fmt.Errorf("isolation: unknown level %d", int(o.Level))
	}
}

package isolation

import "testing"

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		Synchronous:      "synchronous",
		Asynchronous:     "asynchronous",
		BoundedStaleness: "bounded-staleness",
	}
	for level, want := range cases {
		if got := level.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(level), got, want)
		}
	}
	if Level(42).String() == "" {
		t.Error("unknown level has empty String")
	}
}

func TestOptionsValidate(t *testing.T) {
	valid := []Options{
		{Level: Synchronous},
		{Level: Asynchronous},
		{Level: BoundedStaleness, Staleness: 5},
		{Level: BoundedStaleness, Staleness: 0}, // S=0 is sequential-consistency-tight but legal
		{Level: Asynchronous, SingleWriterHint: true},
	}
	for _, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", o, err)
		}
	}
	if err := (Options{Level: Level(7)}).Validate(); err == nil {
		t.Error("invalid level accepted")
	}
}

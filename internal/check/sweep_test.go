package check

import (
	"testing"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/isolation"
)

// TestInvariantSweep replays 36 seeded chaos schedules — 6 seeds × all
// three isolation levels × two worker counts — through real engine runs
// and checks every recorded history against the paper's isolation
// contracts. Every third seed additionally injects a mid-run job
// cancellation, exercising the abort path of the visibility contract. Any
// violation is reported with its seed, so the exact fault schedule can be
// replayed with RunTrial alone.
func TestInvariantSweep(t *testing.T) {
	trials := 0
	for _, level := range isolation.Levels() {
		for _, workers := range []int{2, 4} {
			for seed := int64(1); seed <= 6; seed++ {
				cfg := TrialConfig{
					Seed:    seed,
					Level:   LevelOptions(level),
					Workers: workers,
					Subs:    8,
					Target:  30,
					Chaos:   chaos.DefaultConfig(),
				}
				if seed%3 == 0 {
					cfg.Chaos.CancelAfter = 40
				}
				res, err := RunTrial(cfg)
				if err != nil {
					t.Fatalf("trial level=%s seed=%d workers=%d: %v", level, seed, workers, err)
				}
				trials++
				for _, v := range res.Report.Violations {
					t.Errorf("trial level=%s seed=%d workers=%d: %s", level, seed, workers, v)
				}
				if res.Events == 0 {
					t.Fatalf("trial level=%s seed=%d workers=%d recorded no history", level, seed, workers)
				}
				if res.Report.VisibilityChecked == 0 {
					t.Fatalf("trial level=%s seed=%d workers=%d checked no probes", level, seed, workers)
				}
				if !res.Cancelled {
					// A completed trial must have produced real evidence for
					// its level's contract, not vacuously passed.
					switch level {
					case isolation.BoundedStaleness:
						if res.Report.StalenessChecked == 0 {
							t.Fatalf("bounded trial seed=%d workers=%d validated no reads", seed, workers)
						}
					case isolation.Synchronous:
						if res.Report.BarrierChecked == 0 {
							t.Fatalf("sync trial seed=%d workers=%d checked no barrier windows", seed, workers)
						}
					}
				}
			}
		}
	}
	if trials < 32 {
		t.Fatalf("swept %d schedules, want at least 32", trials)
	}
}

// TestFaultFreeControlRun pins down that a zero chaos config really injects
// nothing: the trial must complete uncancelled with a clean report and zero
// fired faults.
func TestFaultFreeControlRun(t *testing.T) {
	for _, level := range isolation.Levels() {
		res, err := RunTrial(TrialConfig{
			Seed:    1,
			Level:   LevelOptions(level),
			Workers: 2,
			Subs:    4,
			Target:  20,
		})
		if err != nil {
			t.Fatalf("%s control run: %v", level, err)
		}
		if res.Cancelled {
			t.Fatalf("%s control run was cancelled without faults", level)
		}
		if res.Faults != 0 {
			t.Fatalf("%s control run fired %d faults from a zero config", level, res.Faults)
		}
		if !res.Report.Ok() {
			t.Fatalf("%s control run violations: %v", level, res.Report.Violations)
		}
	}
}

// TestCheckerCatchesBrokenStalenessBound is the harness's own end-to-end
// test: chaos.Config.BreakStaleness makes the engine skip its commit-time
// staleness check (a deliberately broken bound, injected — never compiled
// into production paths), so iterations whose reads exceed S=0 commit
// anyway. The recorded validation evidence keeps the true counters, and the
// checker must convict at least one of those commits. A checker that stays
// green here could never be trusted on the real sweep.
func TestCheckerCatchesBrokenStalenessBound(t *testing.T) {
	broken := chaos.Config{
		StallProb:      0.5, // widen the read→validate windows
		PreemptProb:    0.2,
		BreakStaleness: true,
	}
	for seed := int64(1); seed <= 5; seed++ {
		res, err := RunTrial(TrialConfig{
			Seed:    seed,
			Level:   isolation.Options{Level: isolation.BoundedStaleness, Staleness: 0},
			Workers: 4,
			Subs:    8,
			Target:  50,
			Chaos:   broken,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Report.StalenessChecked == 0 {
			t.Fatalf("seed %d validated no reads", seed)
		}
		for _, v := range res.Report.Violations {
			if v.Contract == "bounded-staleness" {
				return // convicted: the checker caught the broken bound
			}
		}
		t.Logf("seed %d produced no staleness violation (checked %d validations); retrying",
			seed, res.Report.StalenessChecked)
	}
	t.Fatal("checker never caught the deliberately broken staleness bound across 5 seeds")
}

// TestInvariantSweepWithGC re-runs seeded chaos schedules with the
// background version reclaimer spinning at an aggressive interval: GC
// passes interleave with live iterations, OLTP probes, forced rollbacks,
// and job cancellations. Pass criterion: the report and the workload
// oracle are exactly as strict as in the GC-off sweep — reclamation must
// never change what any reader observes.
func TestInvariantSweepWithGC(t *testing.T) {
	for _, level := range isolation.Levels() {
		for seed := int64(1); seed <= 4; seed++ {
			cfg := TrialConfig{
				Seed:    seed,
				Level:   LevelOptions(level),
				Workers: 4,
				Subs:    8,
				Target:  30,
				Chaos:   chaos.DefaultConfig(),
				GC:      100 * time.Microsecond,
			}
			if seed%3 == 0 {
				cfg.Chaos.CancelAfter = 40
			}
			res, err := RunTrial(cfg)
			if err != nil {
				t.Fatalf("GC trial level=%s seed=%d: %v", level, seed, err)
			}
			for _, v := range res.Report.Violations {
				t.Errorf("GC trial level=%s seed=%d: %s", level, seed, v)
			}
			if res.Report.VisibilityChecked == 0 {
				t.Fatalf("GC trial level=%s seed=%d checked no probes", level, seed)
			}
		}
	}
}

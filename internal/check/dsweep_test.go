package check

import (
	"testing"
	"time"

	"db4ml/internal/chaos"
	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/partition"
	"db4ml/internal/shard"
	"db4ml/internal/storage"
	"db4ml/internal/table"
)

// TestShardInvariantSweep replays 36 seeded chaos schedules — 6 seeds ×
// all three isolation levels × two cluster sizes — through real
// distributed uber-transactions (one coordinator run per trial, every
// shard with its own independently seeded fault injector) and checks every
// recorded history against the per-shard contracts, 2PC atomicity,
// cross-shard staleness, and per-shard visibility. Every third seed
// additionally cancels ONE shard's job mid-run, exercising the
// coordinator's all-or-nothing abort. Any violation reports its seed, so
// the exact per-shard fault schedules replay with RunShardTrial alone.
func TestShardInvariantSweep(t *testing.T) {
	trials := 0
	for _, level := range isolation.Levels() {
		for _, shards := range []int{2, 3} {
			for seed := int64(1); seed <= 6; seed++ {
				cfg := ShardTrialConfig{
					Seed:    seed,
					Level:   LevelOptions(level),
					Shards:  shards,
					Workers: 2,
					Subs:    8,
					Target:  25,
					Chaos:   chaos.DefaultConfig(),
				}
				if seed%3 == 0 {
					cfg.Chaos.CancelAfter = 40
				}
				res, err := RunShardTrial(cfg)
				if err != nil {
					t.Fatalf("trial level=%s seed=%d shards=%d: %v", level, seed, shards, err)
				}
				trials++
				for _, v := range res.Report.Violations {
					t.Errorf("trial level=%s seed=%d shards=%d: %s", level, seed, shards, v)
				}
				if res.Events == 0 {
					t.Fatalf("trial level=%s seed=%d shards=%d recorded no history", level, seed, shards)
				}
				if res.Report.VisibilityChecked == 0 {
					t.Fatalf("trial level=%s seed=%d shards=%d checked no probes", level, seed, shards)
				}
				if res.Report.AtomicityChecked < shards {
					t.Fatalf("trial level=%s seed=%d shards=%d examined %d uber outcomes, want >= %d",
						level, seed, shards, res.Report.AtomicityChecked, shards)
				}
				if !res.Cancelled {
					// A completed trial must have produced real evidence for
					// its level's contracts, not vacuously passed.
					switch level {
					case isolation.BoundedStaleness:
						if res.Report.StalenessChecked == 0 {
							t.Fatalf("bounded trial seed=%d shards=%d validated no reads", seed, shards)
						}
						if res.Report.CrossShardChecked == 0 {
							t.Fatalf("bounded trial seed=%d shards=%d validated no cross-shard reads", seed, shards)
						}
					case isolation.Synchronous:
						if res.Report.BarrierChecked == 0 {
							t.Fatalf("sync trial seed=%d shards=%d checked no barrier windows", seed, shards)
						}
					}
				}
			}
		}
	}
	if trials < 36 {
		t.Fatalf("swept %d distributed schedules, want at least 36", trials)
	}
}

// TestShardFaultFreeControl pins down the fault-free distributed baseline
// on clusters of 1, 2, and 4 shards: no faults fired, no cancellation, a
// clean report. The 1-shard cluster is the degenerate case — the
// coordinator and checkers must behave exactly like a single kernel.
func TestShardFaultFreeControl(t *testing.T) {
	for _, level := range isolation.Levels() {
		for _, shards := range []int{1, 2, 4} {
			res, err := RunShardTrial(ShardTrialConfig{
				Seed:    1,
				Level:   LevelOptions(level),
				Shards:  shards,
				Workers: 2,
				Subs:    8,
				Target:  15,
			})
			if err != nil {
				t.Fatalf("%s control run shards=%d: %v", level, shards, err)
			}
			if res.Cancelled {
				t.Fatalf("%s control run shards=%d was cancelled without faults", level, shards)
			}
			if res.Faults != 0 {
				t.Fatalf("%s control run shards=%d fired %d faults from a zero config", level, shards, res.Faults)
			}
			if !res.Report.Ok() {
				t.Fatalf("%s control run shards=%d violations: %v", level, shards, res.Report.Violations)
			}
		}
	}
}

// TestCheckerCatchesSplitBrainCommit plants the 2PC failure the coordinator
// exists to prevent: two shards run their slices of one logical
// uber-transaction, then a deliberately broken "coordinator" commits shard
// 0's uber locally while aborting shard 1's — a real split-brain publish,
// with shard 0's rows visible and shard 1's rolled back. The atomicity
// checker must convict; a checker that stays green here could never be
// trusted on the real sweep.
func TestCheckerCatchesSplitBrainCommit(t *testing.T) {
	cluster, err := shard.NewCluster(2, exec.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	router := shard.NewRouter(partition.RoundRobin, 2, 4)
	st := shard.NewTable("split_ring", shardTrialSchema, router)
	rows := make([]storage.Payload, 4)
	for i := range rows {
		rows[i] = storage.Payload{0, 0}
	}
	if _, err := st.Load(cluster, rows); err != nil {
		t.Fatal(err)
	}

	hist := NewHistory()
	const base = "split"
	opts := LevelOptions(isolation.Asynchronous)
	// Begin and attach every shard's uber before any job runs (the
	// coordinator's own ordering), so cross-shard neighbor reads find the
	// sibling shard's iterative records in place.
	ubers := make([]*itx.Uber, 2)
	for s := 0; s < 2; s++ {
		u, err := itx.BeginUber(cluster.Kernel(s).Mgr(), opts)
		if err != nil {
			t.Fatalf("shard %d begin: %v", s, err)
		}
		if err := u.Attach(st.Local(s), nil, u.DefaultVersions()); err != nil {
			t.Fatalf("shard %d attach: %v", s, err)
		}
		ubers[s] = u
	}
	for s := 0; s < 2; s++ {
		u := ubers[s]
		var subs []itx.Sub
		var subMap []int
		for g := 0; g < 4; g++ {
			if st.ShardOf(table.RowID(g)) != s {
				continue
			}
			subs = append(subs, &counterSub{
				tbl: st.View(), row: table.RowID(g), nbr: table.RowID((g + 1) % 4),
				target: 5, level: opts.Level,
			})
			subMap = append(subMap, g)
		}
		rec := hist.ShardJob(ShardLabel(base, s), s, subMap)
		j, err := cluster.Kernel(s).Pool().Submit(subs, opts, exec.JobConfig{
			BatchSize: 2, Label: ShardLabel(base, s), Recorder: rec,
		})
		if err != nil {
			t.Fatalf("shard %d submit: %v", s, err)
		}
		if _, err := j.Wait(); err != nil {
			t.Fatalf("shard %d job: %v", s, err)
		}
		j.Quiesce(time.Second)
		// The planted bug: no vote collection — shard 0 commits
		// unilaterally, shard 1 aborts.
		if s == 0 {
			ts, err := u.Commit()
			if err != nil {
				t.Fatalf("shard 0 commit: %v", err)
			}
			rec.RecordUberCommit(ts)
		} else {
			if err := u.Abort(); err != nil {
				t.Fatalf("shard 1 abort: %v", err)
			}
			rec.RecordUberAbort()
		}
	}

	rep := CheckUberAtomicity(hist.Events(), base, 2)
	if rep.AtomicityChecked != 2 {
		t.Fatalf("examined %d uber outcomes, want 2", rep.AtomicityChecked)
	}
	for _, v := range rep.Violations {
		if v.Contract == "2pc-atomicity" {
			return // convicted: the checker caught the split-brain commit
		}
	}
	t.Fatalf("checker missed the one-shard-commits/one-shard-aborts split (violations: %v)", rep.Violations)
}

// TestCheckerCatchesBrokenCrossShardStaleness is the distributed analogue
// of TestCheckerCatchesBrokenStalenessBound: chaos.BreakStaleness makes
// every shard's engine skip its commit-time staleness check under S=0, so
// stale neighbor reads commit anyway. On a 2-shard round-robin ring every
// neighbor read crosses the shard boundary, so the cross-shard checker —
// not just the per-shard one — must convict at least one committed read.
func TestCheckerCatchesBrokenCrossShardStaleness(t *testing.T) {
	broken := chaos.Config{
		StallProb:      0.5, // widen the read→validate windows
		PreemptProb:    0.2,
		BreakStaleness: true,
	}
	for seed := int64(1); seed <= 5; seed++ {
		res, err := RunShardTrial(ShardTrialConfig{
			Seed:    seed,
			Level:   isolation.Options{Level: isolation.BoundedStaleness, Staleness: 0},
			Shards:  2,
			Workers: 4,
			Subs:    8,
			Target:  50,
			Chaos:   broken,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Report.CrossShardChecked == 0 {
			t.Fatalf("seed %d validated no cross-shard reads", seed)
		}
		for _, v := range res.Report.Violations {
			if v.Contract == "cross-shard-staleness" {
				return // convicted: the checker caught the broken bound across shards
			}
		}
		t.Logf("seed %d produced no cross-shard staleness violation (checked %d); retrying",
			seed, res.Report.CrossShardChecked)
	}
	t.Fatal("checker never caught the broken staleness bound on cross-shard reads across 5 seeds")
}

package check

import (
	"fmt"

	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/storage"
)

// Violation is one contract breach found in a recorded history, anchored to
// the event that exposes it.
type Violation struct {
	// Contract names the breached contract: "bounded-staleness",
	// "sync-barrier", or "visibility".
	Contract string
	// Event is the exposing event (its Seq locates it in the full log).
	Event Event
	// Msg explains the breach.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violation at event %d (%s, job %s, worker %d, sub %d): %s",
		v.Contract, v.Event.Seq, v.Event.Kind, v.Event.Job, v.Event.Worker, v.Event.Sub, v.Msg)
}

// Report is the outcome of checking one job's history: every violation
// found plus how much evidence each contract was checked against, so a
// green report over an empty history cannot masquerade as a passing one.
type Report struct {
	Violations []Violation
	// StalenessChecked counts committed validation events examined.
	StalenessChecked int
	// BarrierChecked counts reads and installs examined against barrier
	// windows.
	BarrierChecked int
	// VisibilityChecked counts probe events examined.
	VisibilityChecked int
	// AtomicityChecked counts per-shard uber-outcome events examined by the
	// 2PC atomicity checker (distributed runs only).
	AtomicityChecked int
	// CrossShardChecked counts committed validations of cross-shard reads
	// examined against the staleness bound (distributed runs only).
	CrossShardChecked int
	// RecoveryChecked counts post-recovery probes examined against the
	// committed-exactly-or-absent contract (crash trials only).
	RecoveryChecked int
}

// Ok reports whether no contract was violated.
func (r Report) Ok() bool { return len(r.Violations) == 0 }

func (r *Report) add(contract string, e Event, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Contract: contract, Event: e, Msg: fmt.Sprintf(format, args...)})
}

// merge folds another report's violations and evidence counters into r.
func (r *Report) merge(o Report) {
	r.Violations = append(r.Violations, o.Violations...)
	r.StalenessChecked += o.StalenessChecked
	r.BarrierChecked += o.BarrierChecked
	r.VisibilityChecked += o.VisibilityChecked
	r.AtomicityChecked += o.AtomicityChecked
	r.CrossShardChecked += o.CrossShardChecked
	r.RecoveryChecked += o.RecoveryChecked
}

// CheckStaleness validates contract 1 on job's events: every read a
// committed iteration relied on must lie in [IterCounter-S, IterCounter] of
// its record at validation time, where the validation event carries exactly
// the counter evidence the engine's own staleness check weighed. A rolled-
// back iteration may violate the bound (that is why it rolled back); a
// committed one never may.
func CheckStaleness(events []Event, job string, s uint64) Report {
	var rep Report
	for _, e := range events {
		if e.Job != job || e.Kind != KindValidation || !e.Committed {
			continue
		}
		rep.StalenessChecked++
		if e.Latest > e.ReadIter && e.Latest-e.ReadIter > s {
			rep.add("bounded-staleness", e,
				"committed read of record %d at iteration %d with counter %d: staleness %d exceeds bound %d",
				e.Rec, e.ReadIter, e.Latest, e.Latest-e.ReadIter, s)
		}
	}
	return rep
}

// CheckSyncBarrier validates contract 2 on job's events: replaying the
// barrier flips, every install must land inside an install phase, every
// read inside an execute phase, and an execute-phase read of round r must
// observe at most r installed snapshots (the synchronous level's "reads see
// exactly the previous iteration" guarantee; fewer than r is legal when an
// iteration rolled back and installed nothing).
//
// The log order is sound evidence: a worker's installs are appended before
// it arrives at the barrier, the flip is appended by the last arriver
// before any batch of the next phase is pushed, and the History mutex
// serializes the appends, so no install can legitimately appear outside its
// phase window in the log.
func CheckSyncBarrier(events []Event, job string) Report {
	var rep Report
	phase := exec.PhaseExecute
	round := uint64(0)
	seen := false // a barrier event was recorded; without one, windows are unknown
	for _, e := range events {
		if e.Job != job {
			continue
		}
		switch e.Kind {
		case KindBarrier:
			phase, round, seen = e.Phase, e.Round, true
		case KindInstall:
			if !seen {
				continue
			}
			rep.BarrierChecked++
			if phase != exec.PhaseInstall {
				rep.add("sync-barrier", e,
					"install on record %d during the execute phase of round %d", e.Rec, round)
			}
		case KindRead:
			if !seen {
				continue
			}
			rep.BarrierChecked++
			if phase != exec.PhaseExecute {
				rep.add("sync-barrier", e,
					"read of record %d during the install phase of round %d", e.Rec, round)
			} else if e.ReadIter > round {
				rep.add("sync-barrier", e,
					"read of record %d in round %d observed snapshot %d from a future round",
					e.Rec, round, e.ReadIter)
			}
		}
	}
	return rep
}

// VisibilityRule tells CheckVisibility which probed values are legal before
// and after the uber-transaction's commit timestamp.
type VisibilityRule struct {
	// Before reports whether value is a legal pre-commit read of row — the
	// state the table held before the run started. Applied to every probe
	// when the run aborted or never committed.
	Before func(row int64, value uint64) bool
	// After reports whether value is a legal post-commit read of row — the
	// run's final state.
	After func(row int64, value uint64) bool
}

// CheckVisibility validates contract 3 on job's events: probes with a begin
// timestamp before the run's commit timestamp (or any probe, when the run
// aborted) must see pre-run state — nothing written by the uncommitted
// uber-transaction — and probes at or past the commit timestamp must see
// the final committed state.
func CheckVisibility(events []Event, job string, rule VisibilityRule) Report {
	var rep Report
	committed := false
	var commitTS storage.Timestamp
	for _, e := range events {
		if e.Job == job && e.Kind == KindUberCommit {
			committed, commitTS = true, e.TS
		}
	}
	for _, e := range events {
		if e.Job != job || e.Kind != KindProbe {
			continue
		}
		rep.VisibilityChecked++
		if committed && e.TS >= commitTS {
			if !rule.After(e.Row, e.Value) {
				rep.add("visibility", e,
					"probe at ts %d (commit ts %d) read %d from row %d: not the committed final state",
					e.TS, commitTS, e.Value, e.Row)
			}
		} else if !rule.Before(e.Row, e.Value) {
			rep.add("visibility", e,
				"probe at ts %d read %d from row %d: observed uncommitted uber-transaction state",
				e.TS, e.Value, e.Row)
		}
	}
	return rep
}

// Check runs every contract applicable to the job's isolation level and
// merges the reports: staleness for BoundedStaleness, the barrier contract
// for Synchronous, and — when a rule is given — visibility for every level.
func Check(events []Event, job string, opts isolation.Options, rule *VisibilityRule) Report {
	var rep Report
	switch opts.Level {
	case isolation.BoundedStaleness:
		rep = CheckStaleness(events, job, opts.Staleness)
	case isolation.Synchronous:
		rep = CheckSyncBarrier(events, job)
	}
	if rule != nil {
		vis := CheckVisibility(events, job, *rule)
		rep.Violations = append(rep.Violations, vis.Violations...)
		rep.VisibilityChecked = vis.VisibilityChecked
	}
	return rep
}

package check

import (
	"strings"
	"testing"
)

// ruleAt builds the counter-trial rule: pre-run rows read base, post-run
// rows read target.
func ruleAt(base, target uint64) VisibilityRule {
	return VisibilityRule{
		Before: func(_ int64, v uint64) bool { return v == base },
		After:  func(_ int64, v uint64) bool { return v == target },
	}
}

func probes(job string, vals ...uint64) []Event {
	evs := make([]Event, len(vals))
	for i, v := range vals {
		evs[i] = Event{Kind: KindProbe, Job: job, TS: 100, Row: int64(i), Value: v}
	}
	return evs
}

func TestRecoveryAckedSurvivesWhole(t *testing.T) {
	evs := append(probes("j", 5, 5, 5), Event{Kind: KindUberCommit, Job: "j", TS: 42})
	rep := CheckRecoveryAtomicity(evs, "j", ruleAt(0, 5))
	if !rep.Ok() || rep.RecoveryChecked != 3 {
		t.Fatalf("clean acked trial: %+v", rep)
	}
}

func TestRecoveryAckedLostConvicts(t *testing.T) {
	evs := append(probes("j", 5, 0, 5), Event{Kind: KindUberCommit, Job: "j", TS: 42})
	rep := CheckRecoveryAtomicity(evs, "j", ruleAt(0, 5))
	if rep.Ok() {
		t.Fatal("lost acknowledged commit not convicted")
	}
	if !strings.Contains(rep.Violations[0].Msg, "acknowledged commit lost") {
		t.Fatalf("wrong conviction: %v", rep.Violations[0])
	}
}

func TestRecoveryUnackedUnanimousBeforeOk(t *testing.T) {
	rep := CheckRecoveryAtomicity(probes("j", 0, 0, 0), "j", ruleAt(0, 5))
	if !rep.Ok() || rep.RecoveryChecked != 3 {
		t.Fatalf("unanimous pre-run state flagged: %+v", rep)
	}
}

func TestRecoveryUnackedUnanimousAfterOk(t *testing.T) {
	// Durable-but-unacknowledged (a crash after the WAL fsync, before the
	// ack): the commit legally survives whole.
	rep := CheckRecoveryAtomicity(probes("j", 5, 5, 5), "j", ruleAt(0, 5))
	if !rep.Ok() {
		t.Fatalf("unanimous committed state flagged: %+v", rep)
	}
}

func TestRecoveryTornMixConvicts(t *testing.T) {
	rep := CheckRecoveryAtomicity(probes("j", 5, 0, 5), "j", ruleAt(0, 5))
	if rep.Ok() {
		t.Fatal("torn recovery not convicted")
	}
	if !strings.Contains(rep.Violations[0].Msg, "torn recovery") {
		t.Fatalf("wrong conviction: %v", rep.Violations[0])
	}
}

func TestRecoveryNeitherStateConvicts(t *testing.T) {
	rep := CheckRecoveryAtomicity(probes("j", 3), "j", ruleAt(0, 5))
	if rep.Ok() {
		t.Fatal("half-applied value not convicted")
	}
	if !strings.Contains(rep.Violations[0].Msg, "neither pre-run nor committed") {
		t.Fatalf("wrong conviction: %v", rep.Violations[0])
	}
}

func TestRecoveryAmbiguousValuesPinNothing(t *testing.T) {
	// base == target: every probe matches both states, so nothing can tear.
	rep := CheckRecoveryAtomicity(probes("j", 7, 7), "j", ruleAt(7, 7))
	if !rep.Ok() || rep.RecoveryChecked != 2 {
		t.Fatalf("ambiguous probes misjudged: %+v", rep)
	}
}

func TestRecoveryIgnoresOtherJobs(t *testing.T) {
	evs := append(probes("other", 3, 3), probes("j", 0)...)
	rep := CheckRecoveryAtomicity(evs, "j", ruleAt(0, 5))
	if !rep.Ok() || rep.RecoveryChecked != 1 {
		t.Fatalf("foreign job's probes leaked in: %+v", rep)
	}
}

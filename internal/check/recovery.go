package check

// Recovery atomicity: the durability layer's contract is committed-exactly-
// or-absent. A commit the caller was acknowledged for must survive a crash
// in full; a commit the caller was NOT acknowledged for must, after
// recovery, either exist in full or not at all — never partially. The
// partial case is exactly what the crash windows threaten: a kill between
// two shards' commit applications, or mid-way through a WAL append, leaves
// in-memory (or on-disk) state that recovery is obliged to erase or
// complete.
//
// CheckRecoveryAtomicity consumes the same probe/uber-commit event
// vocabulary as CheckVisibility, but the probes are reads of the RECOVERED
// kernel: the harness (internal/crashsim) runs a workload, "kills" the
// process at an injected crash point, recovers a fresh kernel from the
// surviving log, and probes every row the workload owned.

// CheckRecoveryAtomicity validates committed-exactly-or-absent for one
// job's crash trial. A KindUberCommit event for the job means the commit
// was acknowledged: every probe must then satisfy rule.After. Without one,
// the run was never acknowledged, and the probes must be unanimous — all
// rule.After (the commit survived whole) or all rule.Before (it vanished
// whole). A probe matching neither state, or a mix of Before and After
// rows, is a violation.
func CheckRecoveryAtomicity(events []Event, job string, rule VisibilityRule) Report {
	var rep Report
	acked := false
	for _, e := range events {
		if e.Job == job && e.Kind == KindUberCommit {
			acked = true
		}
	}
	var afterEv, beforeEv *Event // first probe pinned to each exclusive state
	for i := range events {
		e := events[i]
		if e.Job != job || e.Kind != KindProbe {
			continue
		}
		rep.RecoveryChecked++
		after := rule.After(e.Row, e.Value)
		before := rule.Before(e.Row, e.Value)
		switch {
		case acked:
			if !after {
				rep.add("recovery-atomicity", e,
					"acknowledged commit lost: recovered row %d reads %d, not the committed final state",
					e.Row, e.Value)
			}
		case !after && !before:
			rep.add("recovery-atomicity", e,
				"recovered row %d reads %d: neither pre-run nor committed state — a torn or corrupt replay",
				e.Row, e.Value)
		default:
			// A value legal in both states pins nothing (e.g. a row the run
			// never changed); only exclusive sightings can tear.
			if after && !before && afterEv == nil {
				afterEv = &events[i]
			}
			if before && !after && beforeEv == nil {
				beforeEv = &events[i]
			}
		}
	}
	if afterEv != nil && beforeEv != nil {
		rep.add("recovery-atomicity", *afterEv,
			"torn recovery: row %d recovered the commit's final state while row %d recovered pre-run state",
			afterEv.Row, beforeEv.Row)
	}
	return rep
}

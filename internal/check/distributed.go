package check

import (
	"fmt"
	"strings"

	"db4ml/internal/isolation"
	"db4ml/internal/storage"
)

// This file extends the checkers to distributed (sharded) runs. A
// distributed uber-transaction is recorded as one History shared by every
// shard: shard i's job events arrive through a ShardJob recorder labelled
// ShardLabel(base, i) with the shard id stamped on each event, record
// ownership is declared with TagRecordOwner, and the coordinator's global
// outcome lands once per shard recorder. Two contracts join the paper's
// three:
//
//  4. 2PC atomicity: every shard of an uber-transaction reaches the same
//     outcome — no shard commits a run another shard aborted — and all
//     committing shards publish at one shared-oracle timestamp.
//  5. Cross-shard bounded staleness: a committed read of a record owned by
//     another shard respects the same staleness bound S as local reads;
//     sharding must not widen the window.

// ShardLabel returns the per-shard job label convention the distributed
// harness uses: "<base>@s<shard>".
func ShardLabel(base string, shard int) string {
	return fmt.Sprintf("%s@s%d", base, shard)
}

// MergeShards rewrites per-shard job labels ("<base>@s<i>", i < shards)
// back to the base label, returning a copy of the log in which the
// distributed run reads as one logical job. Probes and any other events
// already recorded under the base label pass through unchanged, so the
// single-job checkers (visibility in particular) apply directly to the
// merged log.
func MergeShards(events []Event, base string, shards int) []Event {
	labels := make(map[string]bool, shards)
	for i := 0; i < shards; i++ {
		labels[ShardLabel(base, i)] = true
	}
	out := make([]Event, len(events))
	for i, e := range events {
		if labels[e.Job] {
			e.Job = base
		}
		out[i] = e
	}
	return out
}

// CheckUberAtomicity validates contract 4 on a distributed run's events:
// replaying every shard's uber-outcome events, all shards must agree —
// a shard may not record both a commit and an abort, no shard may commit
// when a sibling aborted (or recorded no outcome at all), and every
// committing shard must carry the same global commit timestamp.
func CheckUberAtomicity(events []Event, base string, shards int) Report {
	var rep Report
	type outcome struct {
		committed, aborted bool
		ts                 storage.Timestamp
		ev                 Event
	}
	outs := make([]outcome, shards)
	label := make(map[string]int, shards)
	for i := 0; i < shards; i++ {
		label[ShardLabel(base, i)] = i
	}
	for _, e := range events {
		if e.Kind != KindUberCommit && e.Kind != KindUberAbort {
			continue
		}
		i, ok := label[e.Job]
		if !ok {
			continue
		}
		rep.AtomicityChecked++
		o := &outs[i]
		switch e.Kind {
		case KindUberCommit:
			if o.aborted {
				rep.add("2pc-atomicity", e, "shard %d committed at ts %d after recording an abort", i, e.TS)
			}
			if o.committed && o.ts != e.TS {
				rep.add("2pc-atomicity", e,
					"shard %d committed twice at differing timestamps %d and %d", i, o.ts, e.TS)
			}
			o.committed, o.ts, o.ev = true, e.TS, e
		case KindUberAbort:
			if o.committed {
				rep.add("2pc-atomicity", e, "shard %d aborted after committing at ts %d", i, o.ts)
			}
			o.aborted, o.ev = true, e
		}
	}
	// Cross-shard agreement: if any shard committed, every shard must have
	// committed, and at the same timestamp.
	firstCommit := -1
	for i := range outs {
		if outs[i].committed {
			firstCommit = i
			break
		}
	}
	if firstCommit >= 0 {
		ref := outs[firstCommit]
		for i := range outs {
			switch {
			case outs[i].aborted:
				rep.add("2pc-atomicity", outs[i].ev,
					"shard %d aborted an uber-transaction shard %d committed at ts %d", i, firstCommit, ref.ts)
			case !outs[i].committed:
				rep.add("2pc-atomicity", ref.ev,
					"shard %d recorded no outcome for an uber-transaction shard %d committed at ts %d",
					i, firstCommit, ref.ts)
			case outs[i].ts != ref.ts:
				rep.add("2pc-atomicity", outs[i].ev,
					"shard %d committed at ts %d but shard %d committed at ts %d — not one atomic publish",
					i, outs[i].ts, firstCommit, ref.ts)
			}
		}
	}
	return rep
}

// CheckCrossShardStaleness validates contract 5: committed validations of
// reads that crossed a shard boundary (the reading event's shard differs
// from the record's owner per the owners map) must respect the staleness
// bound S, exactly as local reads must. Local reads are left to
// CheckStaleness; records without a tagged owner are skipped.
func CheckCrossShardStaleness(events []Event, base string, owners map[int]int, s uint64) Report {
	var rep Report
	prefix := base + "@s"
	for _, e := range events {
		if e.Kind != KindValidation || !e.Committed || e.Shard < 0 || !strings.HasPrefix(e.Job, prefix) {
			continue
		}
		owner, ok := owners[e.Rec]
		if !ok || owner == e.Shard {
			continue
		}
		rep.CrossShardChecked++
		if e.Latest > e.ReadIter && e.Latest-e.ReadIter > s {
			rep.add("cross-shard-staleness", e,
				"shard %d committed a read of shard %d's record %d at iteration %d with counter %d: staleness %d exceeds bound %d",
				e.Shard, owner, e.Rec, e.ReadIter, e.Latest, e.Latest-e.ReadIter, s)
		}
	}
	return rep
}

// CheckDistributed runs every contract applicable to a distributed run and
// merges the reports: the per-shard level contracts (staleness or the
// barrier replay, per shard label — under a global barrier the per-shard
// replay also convicts cross-shard drift, since a read observing a sibling
// shard's future-round install violates ReadIter <= round), 2PC atomicity
// across shards, cross-shard staleness under the bounded level, and — when
// a rule is given — visibility over the merged log.
func CheckDistributed(events []Event, base string, shards int, opts isolation.Options, owners map[int]int, rule *VisibilityRule) Report {
	var rep Report
	for i := 0; i < shards; i++ {
		label := ShardLabel(base, i)
		switch opts.Level {
		case isolation.BoundedStaleness:
			rep.merge(CheckStaleness(events, label, opts.Staleness))
		case isolation.Synchronous:
			rep.merge(CheckSyncBarrier(events, label))
		}
	}
	rep.merge(CheckUberAtomicity(events, base, shards))
	if opts.Level == isolation.BoundedStaleness {
		rep.merge(CheckCrossShardStaleness(events, base, owners, opts.Staleness))
	}
	if rule != nil {
		merged := MergeShards(events, base, shards)
		vis := CheckVisibility(merged, base, *rule)
		rep.Violations = append(rep.Violations, vis.Violations...)
		rep.VisibilityChecked += vis.VisibilityChecked
	}
	return rep
}

package check

import (
	"testing"

	"db4ml/internal/exec"
	"db4ml/internal/isolation"
	"db4ml/internal/itx"
	"db4ml/internal/storage"
)

func TestHistoryRecordsInOrderWithDenseRecordIDs(t *testing.T) {
	h := NewHistory()
	r := h.Job("j")
	recA := storage.NewIterativeRecord(storage.Payload{0}, 2)
	recB := storage.NewIterativeRecord(storage.Payload{0}, 2)

	r.ObserveRead(1, 0, 0, recA, 0, 0)
	r.ObserveRead(2, 1, 0, recB, 0, 0)
	r.ObserveInstall(1, 0, 0, recA, 1)
	r.ObserveValidation(1, 0, 0, recA, 0, 1, true)
	r.ObserveOutcome(1, 0, 0, itx.Commit, true)
	r.RecordBarrier(3, exec.PhaseInstall)
	r.RecordUberCommit(42)
	r.RecordUberAbort()
	h.Probe("j", 7, 5, 99)

	ev := h.Events()
	if len(ev) != 9 || h.Len() != 9 {
		t.Fatalf("recorded %d events, want 9", len(ev))
	}
	for i, e := range ev {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Job != "j" {
			t.Fatalf("event %d has job %q", i, e.Job)
		}
	}
	if ev[0].Rec != 0 || ev[1].Rec != 1 || ev[2].Rec != 0 {
		t.Fatalf("record ids not dense/stable: %d %d %d", ev[0].Rec, ev[1].Rec, ev[2].Rec)
	}
	if ev[2].Kind != KindInstall || ev[2].Latest != 1 || ev[2].Slot != 1 {
		t.Fatalf("install event mangled: %+v", ev[2])
	}
	if ev[5].Round != 3 || ev[5].Phase != exec.PhaseInstall {
		t.Fatalf("barrier event mangled: %+v", ev[5])
	}
	if ev[6].TS != 42 {
		t.Fatalf("uber-commit ts = %d", ev[6].TS)
	}
	if ev[8].Row != 5 || ev[8].Value != 99 || ev[8].TS != 7 {
		t.Fatalf("probe event mangled: %+v", ev[8])
	}
}

func TestCheckStaleness(t *testing.T) {
	events := []Event{
		// Within bound: staleness 2 with S=2.
		{Kind: KindValidation, Job: "j", Rec: 0, ReadIter: 3, Latest: 5, Committed: true},
		// Rolled back: exempt no matter how stale.
		{Kind: KindValidation, Job: "j", Rec: 0, ReadIter: 0, Latest: 9, Committed: false},
		// Other job: ignored.
		{Kind: KindValidation, Job: "other", Rec: 0, ReadIter: 0, Latest: 9, Committed: true},
		// Committed beyond the bound: the violation.
		{Kind: KindValidation, Job: "j", Seq: 3, Rec: 1, ReadIter: 2, Latest: 5, Committed: true},
	}
	rep := CheckStaleness(events, "j", 2)
	if rep.StalenessChecked != 2 {
		t.Fatalf("checked %d committed validations, want 2", rep.StalenessChecked)
	}
	if len(rep.Violations) != 1 || rep.Violations[0].Event.Seq != 3 {
		t.Fatalf("violations = %v, want exactly the seq-3 event", rep.Violations)
	}
	if rep.Ok() {
		t.Fatal("report with violations claims Ok")
	}
	if clean := CheckStaleness(events[:3], "j", 2); !clean.Ok() || clean.StalenessChecked != 1 {
		t.Fatalf("clean history misjudged: %+v", clean)
	}
}

func TestCheckSyncBarrier(t *testing.T) {
	ok := []Event{
		{Kind: KindBarrier, Job: "j", Round: 0, Phase: exec.PhaseExecute},
		{Kind: KindRead, Job: "j", Rec: 0, ReadIter: 0},
		{Kind: KindBarrier, Job: "j", Round: 0, Phase: exec.PhaseInstall},
		{Kind: KindInstall, Job: "j", Rec: 0, Latest: 1},
		{Kind: KindBarrier, Job: "j", Round: 1, Phase: exec.PhaseExecute},
		{Kind: KindRead, Job: "j", Rec: 0, ReadIter: 1},
	}
	if rep := CheckSyncBarrier(ok, "j"); !rep.Ok() || rep.BarrierChecked != 3 {
		t.Fatalf("legal history misjudged: %+v", rep)
	}

	crossInstall := append(append([]Event{}, ok[:2]...),
		Event{Kind: KindInstall, Job: "j", Seq: 9, Rec: 0, Latest: 1})
	rep := CheckSyncBarrier(crossInstall, "j")
	if len(rep.Violations) != 1 || rep.Violations[0].Event.Seq != 9 {
		t.Fatalf("execute-phase install not flagged: %+v", rep)
	}

	crossRead := append(append([]Event{}, ok[:4]...),
		Event{Kind: KindRead, Job: "j", Seq: 9, Rec: 0, ReadIter: 1})
	rep = CheckSyncBarrier(crossRead, "j")
	if len(rep.Violations) != 1 || rep.Violations[0].Event.Seq != 9 {
		t.Fatalf("install-phase read not flagged: %+v", rep)
	}

	future := append(append([]Event{}, ok...),
		Event{Kind: KindRead, Job: "j", Seq: 9, Rec: 0, ReadIter: 2})
	rep = CheckSyncBarrier(future, "j")
	if len(rep.Violations) != 1 || rep.Violations[0].Event.Seq != 9 {
		t.Fatalf("future-snapshot read not flagged: %+v", rep)
	}
}

func TestCheckVisibility(t *testing.T) {
	rule := VisibilityRule{
		Before: func(row int64, v uint64) bool { return v == 0 },
		After:  func(row int64, v uint64) bool { return v == 10 },
	}
	committed := []Event{
		{Kind: KindProbe, Job: "j", TS: 5, Row: 0, Value: 0},
		{Kind: KindUberCommit, Job: "j", TS: 7},
		{Kind: KindProbe, Job: "j", TS: 8, Row: 0, Value: 10},
	}
	if rep := CheckVisibility(committed, "j", rule); !rep.Ok() || rep.VisibilityChecked != 2 {
		t.Fatalf("legal committed history misjudged: %+v", rep)
	}

	leak := append(append([]Event{}, committed...),
		Event{Kind: KindProbe, Job: "j", Seq: 9, TS: 6, Row: 0, Value: 4})
	rep := CheckVisibility(leak, "j", rule)
	if len(rep.Violations) != 1 || rep.Violations[0].Event.Seq != 9 {
		t.Fatalf("pre-commit leak not flagged: %+v", rep)
	}

	// After an abort every probe must see pre-run state, timestamps or not.
	aborted := []Event{
		{Kind: KindUberAbort, Job: "j"},
		{Kind: KindProbe, Job: "j", TS: 100, Row: 0, Value: 0},
		{Kind: KindProbe, Job: "j", Seq: 2, TS: 101, Row: 0, Value: 10},
	}
	rep = CheckVisibility(aborted, "j", rule)
	if len(rep.Violations) != 1 || rep.Violations[0].Event.Seq != 2 {
		t.Fatalf("post-abort leak not flagged: %+v", rep)
	}
}

func TestCheckDispatchesPerLevel(t *testing.T) {
	events := []Event{
		{Kind: KindValidation, Job: "j", ReadIter: 0, Latest: 9, Committed: true},
		{Kind: KindBarrier, Job: "j", Round: 0, Phase: exec.PhaseExecute},
		{Kind: KindInstall, Job: "j", Latest: 1},
	}
	if rep := Check(events, "j", isolation.Options{Level: isolation.BoundedStaleness, Staleness: 2}, nil); len(rep.Violations) != 1 {
		t.Fatalf("bounded dispatch: %+v", rep)
	}
	if rep := Check(events, "j", isolation.Options{Level: isolation.Synchronous}, nil); len(rep.Violations) != 1 {
		t.Fatalf("sync dispatch: %+v", rep)
	}
	// Asynchronous has no staleness or barrier contract; only visibility
	// applies, and without a rule the report is empty.
	if rep := Check(events, "j", isolation.Options{Level: isolation.Asynchronous}, nil); !rep.Ok() {
		t.Fatalf("async dispatch: %+v", rep)
	}
}
